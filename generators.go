package overlaymatch

import (
	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/rng"
)

// Convenience topology generators for the public API: each returns an
// edge list ready for Spec.Edges. All are deterministic in the seed.

func edgesOf(g *graph.Graph) []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for _, e := range g.Edges() {
		out = append(out, Edge{U: e.U, V: e.V})
	}
	return out
}

// RandomEdges returns an Erdős–Rényi G(n, p) edge list.
func RandomEdges(seed uint64, n int, p float64) []Edge {
	return edgesOf(gen.GNP(rng.New(seed), n, p))
}

// GeometricEdges places n peers uniformly in the unit square and
// connects pairs within the radius, returning the edges and the
// coordinates (useful with a distance Metric).
func GeometricEdges(seed uint64, n int, radius float64) ([]Edge, [][2]float64) {
	g, pts := gen.Geometric(rng.New(seed), n, radius)
	return edgesOf(g), pts
}

// ScaleFreeEdges returns a Barabási–Albert preferential-attachment
// edge list where each arriving peer links to m existing peers.
func ScaleFreeEdges(seed uint64, n, m int) []Edge {
	return edgesOf(gen.BarabasiAlbert(rng.New(seed), n, m))
}

// SmallWorldEdges returns a Watts–Strogatz edge list (ring lattice of
// even degree k, rewired with probability beta).
func SmallWorldEdges(seed uint64, n, k int, beta float64) []Edge {
	return edgesOf(gen.WattsStrogatz(rng.New(seed), n, k, beta))
}

// RingEdges returns the cycle on n peers.
func RingEdges(n int) []Edge { return edgesOf(gen.Ring(n)) }

// CompleteEdges returns all pairs among n peers.
func CompleteEdges(n int) []Edge { return edgesOf(gen.Complete(n)) }

// GridEdges returns the rows×cols grid; peer (r,c) has index r*cols+c.
func GridEdges(rows, cols int) []Edge { return edgesOf(gen.Grid(rows, cols)) }
