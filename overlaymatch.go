// Package overlaymatch is a Go implementation of
//
//	Georgiadis & Papatriantafilou, "Overlays with preferences:
//	Approximation algorithms for matching with preference lists"
//	(IPDPS 2010; Chalmers TR 09-06).
//
// Peers in an overlay each rank their potential neighbors with a
// private suitability metric (distance, interests, transaction
// history, resources — anything) and want at most b_i connections. The
// paper turns this generalized stable roommates setting into an
// optimization problem — maximize total *satisfaction* (eq. 1) — and
// solves it with a fully distributed greedy algorithm, LID, that
// exchanges only PROP/REJ messages between immediate neighbors yet
// guarantees a ¼(1+1/bmax) fraction of the optimal satisfaction
// (Theorem 3) and a ½ fraction of the optimal many-to-many weighted
// matching (Theorem 2). It terminates on every preference system,
// including the cyclic ones that break stabilization in prior work.
//
// This package is the public facade: build a Network from an edge list
// plus either explicit preference lists or a metric function, then run
// the distributed algorithm (deterministic event simulation or real
// goroutines) or the centralized equivalent, and inspect the resulting
// connections and satisfaction. The full machinery (topology
// generators, exact optimum oracles, baseline strategies, churn
// repair, the experiment suite) lives under internal/ and is exercised
// by cmd/experiments.
package overlaymatch

import (
	"fmt"
	"time"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// Edge is an undirected potential connection between two peers,
// identified by their indices in [0, NumNodes).
type Edge struct {
	U, V int
}

// Metric scores how desirable peer j looks to peer i; higher is
// better. It is evaluated once per directed neighbor pair at build
// time and must be deterministic. Each peer's metric output stays
// private: the protocol only ever transmits the derived satisfaction
// increases (eq. 5), never the metric itself.
type Metric func(i, j int) float64

// Spec describes an overlay instance.
type Spec struct {
	// NumNodes is the number of peers; peers are 0..NumNodes-1.
	NumNodes int
	// Edges lists the potential connections (the overlay graph).
	Edges []Edge
	// Quota returns b_i, how many connections peer i wants. nil means
	// 1 for everyone. Values are clamped to [1, deg(i)] (0 for
	// isolated peers), as the paper assumes.
	Quota func(i int) int
	// Metric ranks each neighborhood (ties broken by peer ID).
	// Exactly one of Metric and Lists must be set.
	Metric Metric
	// Lists gives each peer's explicit preference list: Lists[i] must
	// be a permutation of i's neighbors, most preferred first.
	Lists [][]int
	// Workers fans the edge-weight table construction out over this
	// many goroutines. The result is bit-identical for every value
	// (internal/par's deterministic-parallelism contract); <= 1 builds
	// on the calling goroutine only, which is also the zero-value
	// default so existing callers spawn nothing new.
	Workers int
}

// Network is a built overlay instance, ready to run. It is immutable
// and safe for concurrent use.
type Network struct {
	sys *pref.System
	tbl *satisfaction.Table
}

// Build validates a Spec and constructs the Network, computing every
// peer's preference ranks and the symmetric eq.-9 edge weights.
func Build(spec Spec) (*Network, error) {
	if spec.NumNodes < 0 {
		return nil, fmt.Errorf("overlaymatch: negative NumNodes")
	}
	b := graph.NewBuilder(spec.NumNodes)
	for _, e := range spec.Edges {
		b.AddEdge(e.U, e.V)
	}
	g, err := b.Graph()
	if err != nil {
		return nil, fmt.Errorf("overlaymatch: %w", err)
	}
	quota := spec.Quota
	if quota == nil {
		quota = func(int) int { return 1 }
	}
	var sys *pref.System
	switch {
	case spec.Metric != nil && spec.Lists != nil:
		return nil, fmt.Errorf("overlaymatch: set either Metric or Lists, not both")
	case spec.Metric != nil:
		sys, err = pref.Build(g, pref.MetricFunc(spec.Metric), quota)
	case spec.Lists != nil:
		lists := make([][]graph.NodeID, len(spec.Lists))
		for i, l := range spec.Lists {
			lists[i] = append([]graph.NodeID(nil), l...)
		}
		quotas := make([]int, g.NumNodes())
		for i := range quotas {
			quotas[i] = quota(i)
		}
		sys, err = pref.FromRanks(g, lists, quotas)
	default:
		return nil, fmt.Errorf("overlaymatch: one of Metric or Lists must be set")
	}
	if err != nil {
		return nil, fmt.Errorf("overlaymatch: %w", err)
	}
	workers := spec.Workers
	if workers < 1 {
		workers = 1
	}
	return &Network{sys: sys, tbl: satisfaction.NewTableParallel(sys, workers)}, nil
}

// MustBuild is Build but panics on error, for statically-correct specs.
func MustBuild(spec Spec) *Network {
	n, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return n
}

// NumNodes returns the number of peers.
func (n *Network) NumNodes() int { return n.sys.Graph().NumNodes() }

// NumEdges returns the number of potential connections.
func (n *Network) NumEdges() int { return n.sys.Graph().NumEdges() }

// Quota returns b_i after clamping.
func (n *Network) Quota(i int) int { return n.sys.Quota(i) }

// PreferenceList returns peer i's neighbors, most preferred first.
func (n *Network) PreferenceList(i int) []int {
	return append([]int(nil), n.sys.List(i)...)
}

// ApproximationBound returns the end-to-end guarantee of Theorem 3 for
// this instance: the distributed algorithm achieves at least this
// fraction of the optimal total satisfaction. For an edgeless network
// it returns 1.
func (n *Network) ApproximationBound() float64 {
	bmax := n.sys.MaxQuota()
	if bmax == 0 {
		return 1
	}
	return satisfaction.Theorem3Bound(bmax)
}

// Acyclic reports whether the preference system is acyclic in the
// sense of Gai et al. — the restriction prior stabilization results
// need and this algorithm does not.
func (n *Network) Acyclic() bool { return pref.IsAcyclic(n.sys) }

// RunOptions tunes a distributed run.
type RunOptions struct {
	// Seed drives the simulated message latencies (event runtime).
	Seed uint64
	// LatencyJitter > 0 adds heavy-tailed (exponential) latency jitter
	// of the given scale on top of the unit latency; 0 keeps unit
	// latency, whose final virtual time counts causal rounds.
	LatencyJitter float64
}

// RunDistributed executes LID on the deterministic event simulator and
// returns the resulting connections. The outcome is the same for every
// seed (Lemmas 3–6); the message/round statistics vary.
func (n *Network) RunDistributed(opts RunOptions) (*Result, error) {
	lat := simnet.UnitLatency
	if opts.LatencyJitter > 0 {
		lat = simnet.ExponentialLatency(opts.LatencyJitter)
	}
	res, err := lid.RunEvent(n.sys, n.tbl, simnet.Options{Seed: opts.Seed, Latency: lat})
	if err != nil {
		return nil, err
	}
	return n.newResult(res.Matching, &res), nil
}

// RunDistributedGoroutines executes LID with one goroutine per peer —
// real concurrency under the Go scheduler. timeout bounds the run
// (0 means 30s).
func (n *Network) RunDistributedGoroutines(timeout time.Duration) (*Result, error) {
	res, err := lid.RunGoroutines(n.sys, n.tbl, timeout)
	if err != nil {
		return nil, err
	}
	return n.newResult(res.Matching, &res), nil
}

// RunCentralized executes the LIC scan (Algorithm 2); by Lemmas 3–6 it
// returns the same connections as the distributed runs, with no
// message statistics.
func (n *Network) RunCentralized() *Result {
	return n.newResult(matching.LIC(n.sys, n.tbl), nil)
}

func (n *Network) newResult(m *matching.Matching, lr *lid.Result) *Result {
	r := &Result{net: n, m: m}
	if lr != nil {
		r.PropMessages = lr.PropMessages
		r.RejMessages = lr.RejMessages
		r.Rounds = lr.Stats.FinalTime
		r.MessagesByNode = append([]int(nil), lr.Stats.SentByNode...)
	}
	return r
}

// Result is the outcome of one run: a feasible set of connections plus
// run statistics (distributed runs only).
type Result struct {
	net *Network
	m   *matching.Matching

	// PropMessages and RejMessages count protocol messages (0 for
	// centralized runs).
	PropMessages int
	RejMessages  int
	// Rounds is the virtual time of the last delivery; under unit
	// latency it equals the longest causal message chain.
	Rounds float64
	// MessagesByNode is the per-peer sent-message count (nil for
	// centralized runs).
	MessagesByNode []int
}

// Connections returns the peers i got matched with, ascending.
func (r *Result) Connections(i int) []int { return r.m.Connections(i) }

// NumConnections returns the total number of established connections.
func (r *Result) NumConnections() int { return r.m.Size() }

// Satisfaction returns S_i (eq. 1) of peer i, in [0, 1].
func (r *Result) Satisfaction(i int) float64 {
	return satisfaction.Value(r.net.sys, i, r.m.Connections(i))
}

// TotalSatisfaction returns Σ S_i, the paper's objective.
func (r *Result) TotalSatisfaction() float64 { return r.m.TotalSatisfaction(r.net.sys) }

// Weight returns the matching's total eq.-9 weight.
func (r *Result) Weight() float64 { return r.m.Weight(r.net.sys) }

// Matched reports whether peers i and j ended up connected.
func (r *Result) Matched(i, j int) bool { return r.m.Has(i, j) }

// Edges returns all established connections in canonical order.
func (r *Result) Edges() []Edge {
	out := make([]Edge, 0, r.m.Size())
	for _, e := range r.m.Edges() {
		out = append(out, Edge{U: e.U, V: e.V})
	}
	return out
}
