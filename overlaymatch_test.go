package overlaymatch

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBuildValidation(t *testing.T) {
	cases := map[string]Spec{
		"negative nodes": {NumNodes: -1, Metric: func(i, j int) float64 { return 0 }},
		"no prefs":       {NumNodes: 3, Edges: []Edge{{0, 1}}},
		"both prefs": {NumNodes: 2, Edges: []Edge{{0, 1}},
			Metric: func(i, j int) float64 { return 0 }, Lists: [][]int{{1}, {0}}},
		"bad edge": {NumNodes: 2, Edges: []Edge{{0, 5}},
			Metric: func(i, j int) float64 { return 0 }},
		"self loop": {NumNodes: 2, Edges: []Edge{{1, 1}},
			Metric: func(i, j int) float64 { return 0 }},
		"bad list": {NumNodes: 3, Edges: []Edge{{0, 1}},
			Lists: [][]int{{1, 2}, {0}, {}}},
	}
	for name, spec := range cases {
		if _, err := Build(spec); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustBuild(Spec{NumNodes: 1})
}

func demoNetwork(t testing.TB) *Network {
	t.Helper()
	return MustBuild(Spec{
		NumNodes: 60,
		Edges:    RandomEdges(7, 60, 0.15),
		Quota:    func(i int) int { return 2 },
		Metric:   func(i, j int) float64 { return float64((i*31 + j*17) % 97) },
	})
}

func TestAccessors(t *testing.T) {
	n := demoNetwork(t)
	if n.NumNodes() != 60 || n.NumEdges() == 0 {
		t.Fatal("sizes wrong")
	}
	if q := n.Quota(0); q < 0 || q > 2 {
		t.Fatalf("quota = %d", q)
	}
	if len(n.PreferenceList(0)) > 0 {
		// Most preferred first: each successive neighbor scores <=.
		list := n.PreferenceList(0)
		for k := 0; k+1 < len(list); k++ {
			a := float64((0*31 + list[k]*17) % 97)
			b := float64((0*31 + list[k+1]*17) % 97)
			if a < b {
				t.Fatal("preference list not descending by metric")
			}
		}
	}
	if b := n.ApproximationBound(); math.Abs(b-0.25*(1+0.5)) > 1e-12 {
		t.Fatalf("bound = %v", b)
	}
}

func TestDistributedCentralizedAgree(t *testing.T) {
	n := demoNetwork(t)
	cent := n.RunCentralized()
	dist, err := n.RunDistributed(RunOptions{Seed: 1, LatencyJitter: 5})
	if err != nil {
		t.Fatal(err)
	}
	goRes, err := n.RunDistributedGoroutines(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if cent.Weight() != dist.Weight() || cent.Weight() != goRes.Weight() {
		t.Fatal("runtimes disagree on weight")
	}
	if cent.NumConnections() != dist.NumConnections() {
		t.Fatal("runtimes disagree on size")
	}
	for i := 0; i < n.NumNodes(); i++ {
		a, b := cent.Connections(i), dist.Connections(i)
		if len(a) != len(b) {
			t.Fatalf("node %d connection counts differ", i)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("node %d connections differ", i)
			}
		}
	}
}

func TestResultStatistics(t *testing.T) {
	n := demoNetwork(t)
	r, err := n.RunDistributed(RunOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.PropMessages == 0 {
		t.Fatal("no proposals counted")
	}
	if r.PropMessages+r.RejMessages > 2*n.NumEdges() {
		t.Fatal("message bound violated")
	}
	if r.Rounds <= 0 {
		t.Fatal("rounds not recorded")
	}
	if len(r.MessagesByNode) != n.NumNodes() {
		t.Fatal("per-node messages missing")
	}
	cent := n.RunCentralized()
	if cent.PropMessages != 0 || cent.MessagesByNode != nil {
		t.Fatal("centralized run should have no message stats")
	}
}

func TestSatisfactionInRangeAndConsistent(t *testing.T) {
	n := demoNetwork(t)
	r := n.RunCentralized()
	var total float64
	for i := 0; i < n.NumNodes(); i++ {
		s := r.Satisfaction(i)
		if s < -1e-12 || s > 1+1e-12 {
			t.Fatalf("satisfaction %v out of range", s)
		}
		total += s
	}
	if math.Abs(total-r.TotalSatisfaction()) > 1e-9 {
		t.Fatal("per-node sum != total")
	}
	// Theorem 3 sanity: satisfaction is at least bound × an upper bound
	// proxy cannot be checked without the oracle here; check positivity
	// and that connections respect Matched symmetry instead.
	for _, e := range r.Edges() {
		if !r.Matched(e.U, e.V) || !r.Matched(e.V, e.U) {
			t.Fatal("Matched not symmetric")
		}
	}
}

func TestExplicitListsSpec(t *testing.T) {
	// Triangle with explicit cyclic preferences, quota 1: the public
	// API must accept explicit lists and produce a single connection.
	n := MustBuild(Spec{
		NumNodes: 3,
		Edges:    []Edge{{0, 1}, {1, 2}, {0, 2}},
		Lists:    [][]int{{1, 2}, {2, 0}, {0, 1}},
	})
	if n.Acyclic() {
		t.Fatal("cyclic triangle reported acyclic")
	}
	r, err := n.RunDistributed(RunOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumConnections() != 1 {
		t.Fatalf("connections = %d, want 1", r.NumConnections())
	}
}

func TestGeneratorsProduceValidSpecs(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%30 + 5
		for _, edges := range [][]Edge{
			RandomEdges(seed, n, 0.3),
			ScaleFreeEdges(seed, n, 2),
			RingEdges(n),
			GridEdges(3, n/3+1),
		} {
			net, err := Build(Spec{
				NumNodes: maxNode(edges) + 1,
				Edges:    edges,
				Metric:   func(i, j int) float64 { return float64(j) },
			})
			if err != nil || net == nil {
				return false
			}
		}
		geo, pts := GeometricEdges(seed, n, 0.4)
		net, err := Build(Spec{
			NumNodes: n,
			Edges:    geo,
			Metric: func(i, j int) float64 {
				dx := pts[i][0] - pts[j][0]
				dy := pts[i][1] - pts[j][1]
				return -(dx*dx + dy*dy)
			},
		})
		if err != nil || net == nil {
			return false
		}
		sw := SmallWorldEdges(seed, 20, 4, 0.2)
		if _, err := Build(Spec{NumNodes: 20, Edges: sw,
			Metric: func(i, j int) float64 { return 1 }}); err != nil {
			return false
		}
		return len(CompleteEdges(5)) == 10
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func maxNode(edges []Edge) int {
	m := 0
	for _, e := range edges {
		if e.U > m {
			m = e.U
		}
		if e.V > m {
			m = e.V
		}
	}
	return m
}

func TestEdgelessNetwork(t *testing.T) {
	n := MustBuild(Spec{NumNodes: 4, Metric: func(i, j int) float64 { return 0 }})
	if n.ApproximationBound() != 1 {
		t.Fatal("edgeless bound should be 1")
	}
	r, err := n.RunDistributed(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumConnections() != 0 || r.TotalSatisfaction() != 0 {
		t.Fatal("edgeless run should be empty")
	}
}
