package simnet

import (
	"fmt"
	"sync"
	"time"

	"overlaymatch/internal/metrics"
	"overlaymatch/internal/obs"
)

// GoRunner executes a protocol with one goroutine per node and
// unbounded mailboxes between them. Unlike Runner it is actually
// concurrent: interleavings come from the Go scheduler, so running
// under -race exercises the protocol's per-node isolation. Global
// termination is detected exactly: the run ends when every node has
// halted, every mailbox is empty, and no handler is mid-flight.
type GoRunner struct {
	n        int
	timeout  time.Duration
	timeUnit time.Duration // real duration of one virtual time unit (timers)

	mu          sync.Mutex
	cond        *sync.Cond
	outstanding int // sent but not yet fully processed messages
	initPending int // nodes that have not finished Init
	halted      []bool
	haltedCount int
	closed      bool

	boxes []*mailbox
	ins   *instruments
	sink  *metrics.Registry
	trace func(TraceEntry)
	rec   *obs.Recorder

	polMu  sync.Mutex // serializes policy verdicts (policies are single-threaded)
	policy LinkPolicy
}

// NewGoRunner returns a GoRunner for n nodes. timeout bounds Run's
// wall-clock duration (a protocol that never terminates globally would
// otherwise hang); 0 means a 30s default.
func NewGoRunner(n int, timeout time.Duration) *GoRunner {
	if n < 0 {
		panic("simnet: negative node count")
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	r := &GoRunner{
		n:           n,
		timeout:     timeout,
		timeUnit:    time.Millisecond,
		initPending: n,
		halted:      make([]bool, n),
		boxes:       make([]*mailbox, n),
		ins:         newInstruments(n),
	}
	r.cond = sync.NewCond(&r.mu)
	for i := range r.boxes {
		r.boxes[i] = newMailbox()
	}
	return r
}

type goCtx struct {
	r  *GoRunner
	id int
}

func (c *goCtx) ID() int       { return c.id }
func (c *goCtx) Time() float64 { return 0 }

// Observer implements Observable (nil when telemetry is off).
func (c *goCtx) Observer() *obs.Recorder { return c.r.rec }

func (c *goCtx) Halt() {
	r := c.r
	r.mu.Lock()
	if !r.halted[c.id] {
		r.halted[c.id] = true
		r.haltedCount++
		r.cond.Broadcast()
	}
	r.mu.Unlock()
}

// SetTimeUnit changes the real duration of one virtual time unit used
// by timers (default 1ms). Call before Run.
func (r *GoRunner) SetTimeUnit(d time.Duration) {
	if d <= 0 {
		panic("simnet: non-positive time unit")
	}
	r.timeUnit = d
}

// SetTrace installs a delivery callback, making -tracelog work under
// the goroutine runtime. fn is invoked from the per-node goroutines —
// concurrently, in scheduler order, with Time 0 (the GoRunner has no
// global clock) — so it must be safe for concurrent use
// (trace.Collector is). Call before Run.
func (r *GoRunner) SetTrace(fn func(TraceEntry)) { r.trace = fn }

// SetMetricsSink sets a shared registry that receives a Merge of the
// run's private instrument registry when Run finishes. Call before
// Run.
func (r *GoRunner) SetMetricsSink(sink *metrics.Registry) { r.sink = sink }

// SetObserver installs a telemetry recorder (package obs). The
// recorder is mutex-guarded, so the per-node goroutines record
// concurrently in scheduler order: Lamport stamps stay causally
// consistent (a delivery always merges its send's stamp), but unlike
// the event runtime the record ORDER is not reproducible across runs.
// Times are recorded as 0 — the GoRunner has no global clock. Call
// before Run.
func (r *GoRunner) SetObserver(rec *obs.Recorder) { r.rec = rec }

// SetPolicy installs a fault-injection link policy (see LinkPolicy).
// The runner serializes Verdict calls under an internal mutex, so the
// same deterministic policy implementations work on both runtimes —
// but the GoRunner has no global clock, so verdicts see now == 0 and
// the ORDER of verdicts follows the Go scheduler: probabilistic faults
// apply, time-windowed ones do not, and exact replay is only defined
// on the event runtime. Call before Run.
func (r *GoRunner) SetPolicy(p LinkPolicy) { r.policy = p }

// Metrics returns the run's private instrument registry.
func (r *GoRunner) Metrics() *metrics.Registry { return r.ins.reg }

// SentTotals returns the cumulative (messages, bytes) send counters.
func (r *GoRunner) SentTotals() (msgs, bytes int64) { return r.ins.sentTotals() }

// SetTimer implements TimerSetter: msg is pushed back to this node's
// own mailbox after delay virtual time units of wall-clock time.
// Pending timers keep the run alive (they count as outstanding work).
func (c *goCtx) SetTimer(delay float64, msg Message) {
	if delay <= 0 {
		panic("simnet: SetTimer needs a positive delay")
	}
	r := c.r
	r.mu.Lock()
	r.outstanding++
	r.mu.Unlock()
	d := time.Duration(delay * float64(r.timeUnit))
	id := c.id
	time.AfterFunc(d, func() {
		r.boxes[id].push(delivery{from: id, msg: msg, timer: true})
	})
}

func (c *goCtx) Send(to int, msg Message) {
	r := c.r
	if to < 0 || to >= r.n {
		panic(fmt.Sprintf("simnet: send to %d outside [0,%d)", to, r.n))
	}
	// The message counters are atomic registry instruments; they no
	// longer need r.mu.
	kind := KindOf(msg)
	r.ins.countSend(c.id, kind, SizeOf(msg))
	lam := r.rec.Send(c.id, to, kind, 0)
	var v LinkVerdict
	if r.policy != nil {
		r.polMu.Lock()
		v = r.policy.Verdict(0, c.id, to, msg)
		r.polMu.Unlock()
		r.ins.countVerdict(v)
		if v.Drop {
			r.ins.dropped.Inc()
			return
		}
		if v.Corrupt {
			msg = Corrupted{Original: msg}
		}
	}
	for i := 0; i < 1+v.Copies; i++ {
		r.mu.Lock()
		r.outstanding++
		r.mu.Unlock()
		if v.ExtraDelay > 0 {
			// A delayed copy rides a wall-clock timer like SetTimer;
			// the outstanding count above keeps the run alive while it
			// is in flight.
			from := c.id
			payload := msg
			d := time.Duration(v.ExtraDelay * float64(r.timeUnit))
			time.AfterFunc(d, func() {
				depth := r.boxes[to].push(delivery{from: from, msg: payload, lam: lam})
				r.ins.queueDepthMax.SetMax(float64(depth))
			})
			continue
		}
		depth := r.boxes[to].push(delivery{from: c.id, msg: msg, lam: lam})
		r.ins.queueDepthMax.SetMax(float64(depth))
	}
}

// done reports (under r.mu) whether the run has globally terminated.
func (r *GoRunner) doneLocked() bool {
	return r.initPending == 0 && r.outstanding == 0 && r.haltedCount == r.n
}

// Run executes the protocol and blocks until global termination or
// timeout. On timeout it returns an error describing the stuck nodes.
func (r *GoRunner) Run(handlers []Handler) (Stats, error) {
	defer func() { r.ins.mergeInto(r.sink) }()
	if len(handlers) != r.n {
		return r.ins.stats(), fmt.Errorf("simnet: %d handlers for %d nodes", len(handlers), r.n)
	}
	var wg sync.WaitGroup
	for id := 0; id < r.n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := &goCtx{r: r, id: id}
			handlers[id].Init(ctx)
			r.mu.Lock()
			r.initPending--
			r.cond.Broadcast()
			r.mu.Unlock()
			for {
				d, ok := r.boxes[id].pop()
				if !ok {
					return
				}
				if r.trace != nil {
					r.trace(TraceEntry{From: d.from, To: id, Msg: d.msg})
				}
				if r.rec != nil && !d.timer {
					r.rec.Deliver(id, d.from, KindOf(d.msg), 0, d.lam)
				}
				handlers[id].HandleMessage(ctx, d.from, d.msg)
				if d.timer {
					r.ins.timersFired.Inc()
				} else {
					r.ins.deliveries.Inc()
					r.ins.receivedByNode.Inc(id)
				}
				r.mu.Lock()
				r.outstanding--
				r.cond.Broadcast()
				r.mu.Unlock()
			}
		}(id)
	}

	// Watcher: wake on every state change; close mailboxes when done.
	finished := make(chan struct{})
	go func() {
		r.mu.Lock()
		for !r.doneLocked() && !r.closed {
			r.cond.Wait()
		}
		r.closed = true
		r.mu.Unlock()
		for _, b := range r.boxes {
			b.close()
		}
		close(finished)
	}()

	timer := time.NewTimer(r.timeout)
	defer timer.Stop()
	select {
	case <-finished:
		wg.Wait()
		return r.snapshotStats(), nil
	case <-timer.C:
		// Force shutdown and report which nodes were stuck.
		r.mu.Lock()
		r.closed = true
		var stuck []int
		for id, h := range r.halted {
			if !h {
				stuck = append(stuck, id)
			}
		}
		r.cond.Broadcast()
		r.mu.Unlock()
		for _, b := range r.boxes {
			b.close()
		}
		wg.Wait()
		<-finished
		return r.snapshotStats(), fmt.Errorf("simnet: timeout after %v; non-halted nodes: %v", r.timeout, stuck)
	}
}

func (r *GoRunner) snapshotStats() Stats { return r.ins.stats() }
