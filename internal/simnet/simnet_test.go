package simnet

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// floodMsg is the token of the flood test protocol.
type floodMsg struct{ hop int }

func (floodMsg) Kind() string { return "FLOOD" }

// floodHandler: node 0 sends one token to every neighbor at Init and
// halts; other nodes halt upon first token and forward nothing. Total
// messages = deg(0).
type floodHandler struct {
	neighbors []int
	gotToken  bool
}

func (h *floodHandler) Init(ctx Context) {
	if ctx.ID() == 0 {
		for _, nb := range h.neighbors {
			ctx.Send(nb, floodMsg{hop: 1})
		}
	}
	if ctx.ID() == 0 || len(h.neighbors) == 0 {
		ctx.Halt()
	}
}

func (h *floodHandler) HandleMessage(ctx Context, from int, msg Message) {
	h.gotToken = true
	ctx.Halt()
}

// starHandlers builds flood handlers for a star centered at 0.
func starHandlers(n int) []Handler {
	hs := make([]Handler, n)
	var center []int
	for i := 1; i < n; i++ {
		center = append(center, i)
	}
	hs[0] = &floodHandler{neighbors: center}
	for i := 1; i < n; i++ {
		hs[i] = &floodHandler{neighbors: []int{0}}
	}
	return hs
}

func TestRunnerFlood(t *testing.T) {
	const n = 6
	r := NewRunner(n, Options{Seed: 1})
	stats, err := r.Run(starHandlers(n))
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalSent() != n-1 || stats.Deliveries != n-1 {
		t.Fatalf("sent %d delivered %d, want %d", stats.TotalSent(), stats.Deliveries, n-1)
	}
	if stats.SentByNode[0] != n-1 || stats.SentByNode[1] != 0 {
		t.Fatalf("per-node sends wrong: %v", stats.SentByNode)
	}
	if stats.ReceivedByNode[0] != 0 || stats.ReceivedByNode[3] != 1 {
		t.Fatalf("per-node receives wrong: %v", stats.ReceivedByNode)
	}
	if stats.SentByKind["FLOOD"] != n-1 {
		t.Fatalf("kind accounting wrong: %v", stats.SentByKind)
	}
	if stats.FinalTime != 1 { // unit latency
		t.Fatalf("final time %v, want 1", stats.FinalTime)
	}
}

func TestRunnerDeterministicTrace(t *testing.T) {
	run := func() []TraceEntry {
		var trace []TraceEntry
		r := NewRunner(6, Options{
			Seed:    42,
			Latency: ExponentialLatency(2.0),
			Trace:   func(e TraceEntry) { trace = append(trace, e) },
		})
		if _, err := r.Run(starHandlers(6)); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds produced different traces")
	}
}

func TestRunnerSeedChangesOrder(t *testing.T) {
	order := func(seed uint64) []int {
		var to []int
		r := NewRunner(8, Options{
			Seed:    seed,
			Latency: ExponentialLatency(5),
			Trace:   func(e TraceEntry) { to = append(to, e.To) },
		})
		if _, err := r.Run(starHandlers(8)); err != nil {
			t.Fatal(err)
		}
		return to
	}
	if reflect.DeepEqual(order(1), order(2)) {
		t.Fatal("different seeds gave identical delivery orders (suspicious)")
	}
}

// stubborn never halts and sends nothing.
type stubborn struct{}

func (stubborn) Init(Context)                        {}
func (stubborn) HandleMessage(Context, int, Message) {}

func TestRunnerDetectsNonHaltedNode(t *testing.T) {
	r := NewRunner(2, Options{Seed: 1})
	_, err := r.Run([]Handler{stubborn{}, stubborn{}})
	if err == nil || !strings.Contains(err.Error(), "never halted") {
		t.Fatalf("err = %v, want deadlock detection", err)
	}
}

// pingpong bounces a message between nodes 0 and 1 forever.
type pingpong struct{}

func (pingpong) Init(ctx Context) {
	if ctx.ID() == 0 {
		ctx.Send(1, "ping")
	}
}
func (pingpong) HandleMessage(ctx Context, from int, msg Message) {
	ctx.Send(from, msg)
}

func TestRunnerMaxDeliveriesGuard(t *testing.T) {
	r := NewRunner(2, Options{Seed: 1, MaxDeliveries: 100})
	_, err := r.Run([]Handler{pingpong{}, pingpong{}})
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("err = %v, want delivery-cap error", err)
	}
}

func TestRunnerHandlerCountMismatch(t *testing.T) {
	r := NewRunner(3, Options{})
	if _, err := r.Run([]Handler{stubborn{}}); err == nil {
		t.Fatal("expected handler count error")
	}
}

func TestRunnerSingleUse(t *testing.T) {
	r := NewRunner(1, Options{})
	h := []Handler{&floodHandler{}}
	if _, err := r.Run(h); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(h); err == nil {
		t.Fatal("second Run should error")
	}
}

func TestRunnerSendOutOfRangePanics(t *testing.T) {
	r := NewRunner(1, Options{})
	bad := handlerFunc{
		init: func(ctx Context) { ctx.Send(5, "x") },
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, _ = r.Run([]Handler{bad})
}

// handlerFunc adapts closures to Handler.
type handlerFunc struct {
	init   func(Context)
	handle func(Context, int, Message)
}

func (h handlerFunc) Init(ctx Context) {
	if h.init != nil {
		h.init(ctx)
	}
}
func (h handlerFunc) HandleMessage(ctx Context, from int, msg Message) {
	if h.handle != nil {
		h.handle(ctx, from, msg)
	}
}

func TestLatencyFuncs(t *testing.T) {
	if UnitLatency(0, 1, nil) != 1 {
		t.Fatal("unit latency != 1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("UniformLatency(0,..) should panic")
		}
	}()
	UniformLatency(0, 1)
}

func TestGoRunnerFlood(t *testing.T) {
	const n = 10
	r := NewGoRunner(n, 10*time.Second)
	stats, err := r.Run(starHandlers(n))
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalSent() != n-1 || stats.Deliveries != n-1 {
		t.Fatalf("sent %d delivered %d, want %d", stats.TotalSent(), stats.Deliveries, n-1)
	}
	if stats.SentByKind["FLOOD"] != n-1 {
		t.Fatalf("kind accounting: %v", stats.SentByKind)
	}
}

func TestGoRunnerTimeoutOnStuckProtocol(t *testing.T) {
	r := NewGoRunner(2, 200*time.Millisecond)
	_, err := r.Run([]Handler{stubborn{}, stubborn{}})
	if err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("err = %v, want timeout", err)
	}
	if !strings.Contains(err.Error(), "[0 1]") {
		t.Fatalf("err should name stuck nodes: %v", err)
	}
}

// chainHandler forwards a counter down a line of nodes; node n-1 halts
// the chain. Every node halts after its part. Exercises cross-node
// sequencing in the concurrent runtime.
type chainHandler struct{ n int }

func (h chainHandler) Init(ctx Context) {
	if ctx.ID() == 0 {
		ctx.Send(1, 1)
		ctx.Halt()
	}
}

func (h chainHandler) HandleMessage(ctx Context, from int, msg Message) {
	v := msg.(int)
	if next := ctx.ID() + 1; next < h.n {
		ctx.Send(next, v+1)
	}
	ctx.Halt()
}

func TestGoRunnerChain(t *testing.T) {
	const n = 50
	hs := make([]Handler, n)
	for i := range hs {
		hs[i] = chainHandler{n: n}
	}
	r := NewGoRunner(n, 10*time.Second)
	stats, err := r.Run(hs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Deliveries != n-1 {
		t.Fatalf("deliveries = %d, want %d", stats.Deliveries, n-1)
	}
}

func TestGoRunnerHandlerCountMismatch(t *testing.T) {
	r := NewGoRunner(2, time.Second)
	if _, err := r.Run([]Handler{stubborn{}}); err == nil {
		t.Fatal("expected handler count error")
	}
}

func TestMailboxFIFO(t *testing.T) {
	mb := newMailbox()
	for i := 0; i < 10; i++ {
		mb.push(delivery{from: i})
	}
	if mb.len() != 10 {
		t.Fatalf("len = %d", mb.len())
	}
	for i := 0; i < 10; i++ {
		d, ok := mb.pop()
		if !ok || d.from != i {
			t.Fatalf("pop %d = (%v,%v)", i, d.from, ok)
		}
	}
	if _, ok := mb.tryPop(); ok {
		t.Fatal("tryPop on empty should fail")
	}
}

func TestMailboxCloseUnblocksPop(t *testing.T) {
	mb := newMailbox()
	done := make(chan bool)
	go func() {
		_, ok := mb.pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	mb.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("pop on closed empty mailbox returned ok")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop did not unblock on close")
	}
	// Pushes after close are dropped.
	mb.push(delivery{from: 1})
	if mb.len() != 0 {
		t.Fatal("push after close was queued")
	}
}

func TestMailboxConcurrentPushers(t *testing.T) {
	mb := newMailbox()
	const pushers, each = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				mb.push(delivery{from: p, msg: i})
			}
		}(p)
	}
	last := make(map[int]int)
	for p := 0; p < pushers; p++ {
		last[p] = -1
	}
	for i := 0; i < pushers*each; i++ {
		d, ok := mb.pop()
		if !ok {
			t.Fatal("pop failed mid-stream")
		}
		// Per-sender FIFO: each pusher's messages arrive in push order.
		if v := d.msg.(int); v != last[d.from]+1 {
			t.Fatalf("per-sender order violated for %d: got %d after %d", d.from, v, last[d.from])
		} else {
			last[d.from] = v
		}
	}
	wg.Wait()
	if mb.len() != 0 {
		t.Fatal("messages left over")
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{SentByNode: []int{3, 1, 4}}
	if s.TotalSent() != 8 || s.MaxSentByNode() != 4 {
		t.Fatalf("TotalSent/Max = %d/%d", s.TotalSent(), s.MaxSentByNode())
	}
	if KindOf("plain") != "" {
		t.Fatal("plain message should have empty kind")
	}
	if KindOf(floodMsg{}) != "FLOOD" {
		t.Fatal("kinder not honored")
	}
	if !strings.Contains(s.String(), "sent=8") {
		t.Fatalf("String = %q", s.String())
	}
}
