package simnet

import (
	"bytes"
	"testing"
	"time"

	"overlaymatch/internal/obs"
)

// sizedMsg reports a wire size for the byte-accounting tests.
type sizedMsg struct{ hop int }

func (sizedMsg) Kind() string  { return "SIZED" }
func (sizedMsg) WireSize() int { return 16 }

// sizedStar is floodHandler with sized tokens.
type sizedStar struct{ neighbors []int }

func (h *sizedStar) Init(ctx Context) {
	if ctx.ID() == 0 {
		for _, nb := range h.neighbors {
			ctx.Send(nb, sizedMsg{hop: 1})
		}
	}
	if ctx.ID() == 0 || len(h.neighbors) == 0 {
		ctx.Halt()
	}
}

func (h *sizedStar) HandleMessage(ctx Context, from int, msg Message) { ctx.Halt() }

func sizedHandlers(n int) []Handler {
	hs := make([]Handler, n)
	var center []int
	for i := 1; i < n; i++ {
		center = append(center, i)
	}
	hs[0] = &sizedStar{neighbors: center}
	for i := 1; i < n; i++ {
		hs[i] = &sizedStar{neighbors: []int{0}}
	}
	return hs
}

func TestRunnerObserverRecordsCausality(t *testing.T) {
	const n = 4
	rec := obs.NewRecorder(n)
	r := NewRunner(n, Options{Seed: 1, Obs: rec})
	if _, err := r.Run(sizedHandlers(n)); err != nil {
		t.Fatal(err)
	}
	ev := rec.Events()
	sends, delivers := 0, 0
	sendLam := map[uint64]bool{}
	for _, e := range ev {
		switch e.Type {
		case obs.EvSend:
			sends++
			sendLam[e.Lam] = true
		case obs.EvDeliver:
			delivers++
			if e.SendLam == 0 || !sendLam[e.SendLam] {
				t.Fatalf("deliver %+v has no matching send stamp", e)
			}
			if e.Lam <= e.SendLam {
				t.Fatalf("deliver lam=%d not causally after send lam=%d", e.Lam, e.SendLam)
			}
		}
	}
	if sends != n-1 || delivers != n-1 {
		t.Fatalf("recorded %d sends / %d delivers, want %d/%d", sends, delivers, n-1, n-1)
	}
	// Byte accounting: n-1 sized messages of 16 bytes.
	msgs, bytesSent := r.SentTotals()
	if msgs != n-1 || bytesSent != int64(16*(n-1)) {
		t.Fatalf("SentTotals = (%d, %d), want (%d, %d)", msgs, bytesSent, n-1, 16*(n-1))
	}
	// Context capability: a handler sees the recorder via ObserverOf.
	if got := ObserverOf(&runnerCtx{r: r}); got != rec {
		t.Fatal("ObserverOf(runnerCtx) did not return the recorder")
	}
}

func TestRunnerObserverDeterministic(t *testing.T) {
	render := func() string {
		rec := obs.NewRecorder(6)
		r := NewRunner(6, Options{Seed: 42, Latency: ExponentialLatency(2), Obs: rec})
		if _, err := r.Run(sizedHandlers(6)); err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := rec.WriteNDJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if render() != render() {
		t.Fatal("event-runtime telemetry differs across identical runs")
	}
}

func TestGoRunnerObserverRecordsCausality(t *testing.T) {
	const n = 4
	rec := obs.NewRecorder(n)
	r := NewGoRunner(n, 5*time.Second)
	r.SetObserver(rec)
	if _, err := r.Run(sizedHandlers(n)); err != nil {
		t.Fatal(err)
	}
	sends, delivers := 0, 0
	for _, e := range rec.Events() {
		switch e.Type {
		case obs.EvSend:
			sends++
		case obs.EvDeliver:
			delivers++
			if e.Lam <= e.SendLam {
				t.Fatalf("deliver lam=%d not causally after send lam=%d", e.Lam, e.SendLam)
			}
		}
	}
	if sends != n-1 || delivers != n-1 {
		t.Fatalf("recorded %d sends / %d delivers, want %d/%d", sends, delivers, n-1, n-1)
	}
	msgs, bytesSent := r.SentTotals()
	if msgs != n-1 || bytesSent != int64(16*(n-1)) {
		t.Fatalf("SentTotals = (%d, %d)", msgs, bytesSent)
	}
}

func TestRunnerProbeSchedule(t *testing.T) {
	// chainHandler (simnet_test.go) delivers one hop per unit-latency
	// round: deliveries at t = 1, 2, 3, 4 for n = 5.
	const n = 5
	var times []float64
	hs := make([]Handler, n)
	for i := range hs {
		hs[i] = chainHandler{n: n}
	}
	r := NewRunner(n, Options{
		Seed:          1,
		Probe:         func(tm float64) { times = append(times, tm) },
		ProbeInterval: 1,
	})
	if _, err := r.Run(hs); err != nil {
		t.Fatal(err)
	}
	// Probe k fires after all events strictly before time k, plus one
	// final end-state sample: 0, 1, 2, 3 in-loop, then 4 at drain.
	want := []float64{0, 1, 2, 3, 4}
	if len(times) != len(want) {
		t.Fatalf("probe times %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("probe times %v, want %v", times, want)
		}
	}
}

func TestRunnerProbeTickAligned(t *testing.T) {
	// Regression: probe times were accumulated by repeated addition of
	// the interval, so a non-dyadic interval drifted off the tick grid
	// (ten 0.1-steps sum to 0.9999999999999999 < 1.0, squeezing an
	// eleventh sample into the first unit-latency round). Probe times
	// must be exact multiples of the interval — float64(k) * interval —
	// with exactly one sample per tick.
	const n = 5
	for _, interval := range []float64{0.1, 0.25, 0.2} {
		var times []float64
		hs := make([]Handler, n)
		for i := range hs {
			hs[i] = chainHandler{n: n}
		}
		r := NewRunner(n, Options{
			Seed:          1,
			Probe:         func(tm float64) { times = append(times, tm) },
			ProbeInterval: interval,
		})
		if _, err := r.Run(hs); err != nil {
			t.Fatal(err)
		}
		// chainHandler's last delivery is at t = 4: ticks 0..ceil(4/iv)
		// in-loop coverage plus the final drain sample.
		for k, tm := range times {
			if want := float64(k) * interval; tm != want {
				t.Fatalf("interval %v: probe %d at t=%v, want exact tick %v (times %v)",
					interval, k, tm, want, times)
			}
		}
		wantLen := int(4/interval) + 1
		if float64(wantLen-1)*interval < 4 {
			wantLen++
		}
		if len(times) != wantLen {
			t.Fatalf("interval %v: %d probes %v, want %d (one per tick, no drift duplicates)",
				interval, len(times), times, wantLen)
		}
	}
}

// BenchmarkRunnerHotPathNoObs enforces the zero-cost contract: with
// telemetry and probes off, the per-delivery path must not allocate.
func BenchmarkRunnerHotPathNoObs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewRunner(6, Options{Seed: uint64(i + 1)})
		if _, err := r.Run(starHandlers(6)); err != nil {
			b.Fatal(err)
		}
	}
}

// budgetPingpong bounces a PRE-ALLOCATED message between nodes 0 and 1 so
// that neither the handler nor the runner should allocate per
// delivery; each side sends until its own budget runs out (Quiesce
// mode, no Halt bookkeeping).
type budgetPingpong struct {
	budget int
	msg    Message
}

func (h *budgetPingpong) Init(ctx Context) {
	if ctx.ID() == 0 {
		ctx.Send(1, h.msg)
	}
}

func (h *budgetPingpong) HandleMessage(ctx Context, from int, msg Message) {
	if h.budget--; h.budget > 0 {
		ctx.Send(from, h.msg)
	}
}

func TestRunnerHotPathAllocBudgetNoObs(t *testing.T) {
	// The zero-cost contract: with telemetry and probes off, the
	// per-delivery path allocates nothing. Per-run setup (instruments,
	// registry, queue) does allocate, so compare total allocations at
	// two message volumes — the difference is pure per-delivery cost.
	measure := func(budget int) float64 {
		return testing.AllocsPerRun(20, func() {
			hs := []Handler{
				&budgetPingpong{budget: budget, msg: floodMsg{hop: 1}},
				&budgetPingpong{budget: budget, msg: floodMsg{hop: 1}},
			}
			r := NewRunner(2, Options{Seed: 7, Quiesce: true})
			if _, err := r.Run(hs); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := measure(20), measure(320)
	// ~600 extra deliveries between the two volumes; allow a little
	// slack for map growth inside the kind family.
	if large-small > 8 {
		t.Fatalf("per-delivery path allocates: %v allocs at 20 msgs vs %v at 320", small, large)
	}
}
