// Package simnet is the message-passing substrate the distributed LID
// protocol runs on. The paper's execution model (§5) is a static
// overlay of peers exchanging messages with immediate neighbors over
// reliable asynchronous links; simnet provides that model twice:
//
//   - Runner: a deterministic discrete-event simulator. Message
//     latencies are drawn from a seeded source, deliveries are ordered
//     by (time, sequence), and the whole execution is reproducible —
//     the tool the experiment suite uses to sweep thousands of
//     interleavings.
//   - GoRunner: a real concurrent runtime, one goroutine per peer with
//     an unbounded mailbox. It exercises true parallelism and the Go
//     race detector; results must agree with Runner on every workload
//     (experiment E2).
//
// Both runtimes share the Handler interface, so a protocol is written
// once. Termination is structural — a handler calls Context.Halt when
// its protocol finishes locally (Ui = ∅ in LID) — so a run that
// completes certifies global termination rather than timing out.
package simnet

import (
	"fmt"
)

// Message is an opaque protocol payload. Implementations must be
// immutable after sending (they are shared across runtimes and threads).
type Message interface{}

// Handler is a protocol's per-node behaviour. Implementations must be
// self-contained per node: the runtimes guarantee that all calls for
// one node happen sequentially, but calls for different nodes may be
// concurrent (GoRunner).
type Handler interface {
	// Init is called once before any delivery; the handler typically
	// sends its opening messages here and may already Halt.
	Init(ctx Context)
	// HandleMessage delivers one message from a neighbor.
	HandleMessage(ctx Context, from int, msg Message)
}

// Context is the per-node view of the runtime, passed to every Handler
// call. It is only valid for the duration of the call.
type Context interface {
	// ID returns the node this call is for.
	ID() int
	// Send queues a message for asynchronous delivery; it never blocks.
	Send(to int, msg Message)
	// Halt marks this node locally terminated. Messages may still
	// arrive afterwards (and are delivered); Halt is idempotent.
	Halt()
	// Time returns the current virtual time (Runner) or 0 (GoRunner,
	// which has no global clock).
	Time() float64
}

// Stats summarizes one run. It is a snapshot view over the run's
// registry-backed instruments (package metrics): both runtimes count
// into atomic counters/vectors/families in a private per-run registry,
// and Stats is materialized from that registry when Run returns, so
// existing consumers stay bit-identical while the same numbers are
// available through Runner.Metrics / GoRunner.Metrics and any shared
// sink registry.
type Stats struct {
	// SentByNode[i] = messages node i sent.
	SentByNode []int
	// ReceivedByNode[i] = messages delivered to node i.
	ReceivedByNode []int
	// SentByKind counts messages by the protocol-reported kind (see
	// KindOf); key "" collects messages with no kind.
	SentByKind map[string]int
	// FinalTime is the virtual time of the last delivery (Runner only).
	FinalTime float64
	// Deliveries is the total number of delivered messages.
	Deliveries int
	// Dropped counts messages lost by the loss model (Runner only).
	Dropped int
	// TimersFired counts local timer deliveries.
	TimersFired int
}

// TotalSent returns the total number of messages sent.
func (s Stats) TotalSent() int {
	total := 0
	for _, c := range s.SentByNode {
		total += c
	}
	return total
}

// MaxSentByNode returns the maximum per-node sent count (0 if empty).
func (s Stats) MaxSentByNode() int {
	max := 0
	for _, c := range s.SentByNode {
		if c > max {
			max = c
		}
	}
	return max
}

func (s Stats) String() string {
	return fmt.Sprintf("stats{sent=%d delivered=%d t=%.2f}", s.TotalSent(), s.Deliveries, s.FinalTime)
}

// Kinder lets a Message report a kind label for per-kind accounting.
type Kinder interface {
	Kind() string
}

// KindOf returns msg's kind label, or "".
func KindOf(msg Message) string {
	if k, ok := msg.(Kinder); ok {
		return k.Kind()
	}
	return ""
}

// TraceEntry records one delivery for debugging and the trace tests.
type TraceEntry struct {
	Time     float64
	From, To int
	Msg      Message
}
