package simnet

import "sync"

// LinkVerdict is a LinkPolicy's decision for one message in transit.
// The zero value means "deliver normally, exactly once, undamaged".
type LinkVerdict struct {
	// Drop loses the message entirely. The paper's model assumes
	// reliable links; package reliable restores delivery on top of a
	// dropping policy, exactly as it does for Options.Drop.
	Drop bool
	// Copies is the number of EXTRA deliveries beyond the first
	// (duplication). Each copy draws its own link latency, so copies
	// also reorder against each other.
	Copies int
	// ExtraDelay is added to every copy's drawn latency — the hook for
	// heavy-tailed delay distributions and targeted reordering. Must be
	// >= 0.
	ExtraDelay float64
	// Corrupt replaces the payload with Corrupted{original} before
	// delivery. A transport that checksums frames (package reliable)
	// discards corrupted frames and recovers by retransmission; a bare
	// protocol handler treats one as a protocol violation.
	Corrupt bool
}

// LinkPolicy is the fault-injection hook shared by both runtimes: every
// network send (never timers) is submitted to the policy, and the
// returned verdict is applied by the mailbox/event machinery. now is
// the sender's virtual time on the event Runner and 0 on the GoRunner,
// which has no global clock — time-windowed faults are therefore only
// meaningful on the event runtime.
//
// Implementations must be deterministic functions of their own seeded
// state: they must NOT draw from the runner's latency source, so that a
// zero policy leaves a run bit-identical to no policy at all
// (TestTablesUnchangedByFaultsOff). The event Runner calls the policy
// from its single scheduler thread; the GoRunner serializes calls under
// an internal mutex, so implementations need no locking of their own.
type LinkPolicy interface {
	Verdict(now float64, from, to int, msg Message) LinkVerdict
}

// Corrupted marks a payload mangled in transit by a LinkPolicy. The
// original message is kept so traces stay readable; transports must
// treat the whole frame as garbage (a failed checksum), not look
// inside.
type Corrupted struct {
	Original Message
}

// Kind implements Kinder.
func (Corrupted) Kind() string { return "CORRUPT" }

// delivery is one queued message inside a mailbox.
type delivery struct {
	from  int
	msg   Message
	lam   uint64 // sender's Lamport stamp (telemetry only; 0 when off)
	timer bool   // local timer, not a network message
}

// mailbox is an unbounded MPSC queue: any number of senders Push
// without ever blocking, one owner Pops. Unboundedness matters: the
// paper's model assumes reliable asynchronous links, so the transport
// must never apply backpressure that could entangle protocol waits
// into artificial deadlocks.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []delivery
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// push enqueues d and returns the resulting queue depth (for the
// high-water-mark gauge); it never blocks. Pushing to a closed mailbox
// drops the message (the owner has stopped reading for good).
func (mb *mailbox) push(d delivery) int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return len(mb.items)
	}
	mb.items = append(mb.items, d)
	mb.cond.Signal()
	return len(mb.items)
}

// pop dequeues the oldest message, blocking until one arrives or the
// mailbox is closed. The second result is false once the mailbox is
// closed and drained.
func (mb *mailbox) pop() (delivery, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.items) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	if len(mb.items) == 0 {
		return delivery{}, false
	}
	d := mb.items[0]
	mb.items = mb.items[1:]
	return d, true
}

// tryPop dequeues without blocking; the second result is false if the
// mailbox is currently empty.
func (mb *mailbox) tryPop() (delivery, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if len(mb.items) == 0 {
		return delivery{}, false
	}
	d := mb.items[0]
	mb.items = mb.items[1:]
	return d, true
}

// close wakes any blocked pop and makes future pushes no-ops.
func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.cond.Broadcast()
}

// len reports the number of queued messages.
func (mb *mailbox) len() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.items)
}
