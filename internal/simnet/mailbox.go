package simnet

import "sync"

// delivery is one queued message inside a mailbox.
type delivery struct {
	from  int
	msg   Message
	timer bool // local timer, not a network message
}

// mailbox is an unbounded MPSC queue: any number of senders Push
// without ever blocking, one owner Pops. Unboundedness matters: the
// paper's model assumes reliable asynchronous links, so the transport
// must never apply backpressure that could entangle protocol waits
// into artificial deadlocks.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []delivery
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// push enqueues d and returns the resulting queue depth (for the
// high-water-mark gauge); it never blocks. Pushing to a closed mailbox
// drops the message (the owner has stopped reading for good).
func (mb *mailbox) push(d delivery) int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return len(mb.items)
	}
	mb.items = append(mb.items, d)
	mb.cond.Signal()
	return len(mb.items)
}

// pop dequeues the oldest message, blocking until one arrives or the
// mailbox is closed. The second result is false once the mailbox is
// closed and drained.
func (mb *mailbox) pop() (delivery, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.items) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	if len(mb.items) == 0 {
		return delivery{}, false
	}
	d := mb.items[0]
	mb.items = mb.items[1:]
	return d, true
}

// tryPop dequeues without blocking; the second result is false if the
// mailbox is currently empty.
func (mb *mailbox) tryPop() (delivery, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if len(mb.items) == 0 {
		return delivery{}, false
	}
	d := mb.items[0]
	mb.items = mb.items[1:]
	return d, true
}

// close wakes any blocked pop and makes future pushes no-ops.
func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.cond.Broadcast()
}

// len reports the number of queued messages.
func (mb *mailbox) len() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.items)
}
