package simnet

import (
	"sync"
	"testing"
	"time"

	"overlaymatch/internal/metrics"
)

// lineHandler forwards one token down a line of nodes: node 0 sends
// to node 1 at Init and halts; every receiver forwards to its
// successor (if any) and halts. Exactly n-1 deliveries.
type lineHandler struct {
	n int
}

type token struct{}

func (token) Kind() string { return "TOKEN" }

func (h *lineHandler) Init(ctx Context) {
	if ctx.ID() == 0 {
		ctx.Send(1, token{})
		ctx.Halt()
	}
}

func (h *lineHandler) HandleMessage(ctx Context, from int, msg Message) {
	if ctx.ID() < h.n-1 {
		ctx.Send(ctx.ID()+1, token{})
	}
	ctx.Halt()
}

func lineHandlers(n int) []Handler {
	hs := make([]Handler, n)
	for i := range hs {
		hs[i] = &lineHandler{n: n}
	}
	return hs
}

// TestRunnerStatsMatchRegistry: the public Stats struct must be an
// exact view of the registry instruments.
func TestRunnerStatsMatchRegistry(t *testing.T) {
	n := 5
	r := NewRunner(n, Options{Seed: 1})
	st, err := r.Run(lineHandlers(n))
	if err != nil {
		t.Fatal(err)
	}
	reg := r.Metrics()
	snap := reg.Snapshot()
	byName := map[string]metrics.Sample{}
	for _, s := range snap.Samples {
		byName[s.Name] = s
	}
	if int(byName["simnet_deliveries_total"].Count) != st.Deliveries {
		t.Fatalf("deliveries: registry %d, stats %d",
			byName["simnet_deliveries_total"].Count, st.Deliveries)
	}
	var sent int64
	for _, v := range byName["simnet_sent_by_node"].Values {
		sent += v
	}
	if int(sent) != st.TotalSent() {
		t.Fatalf("sent: registry %d, stats %d", sent, st.TotalSent())
	}
	if got := reg.Family("simnet_sent_total", "", "kind").Value("TOKEN"); int(got) != st.SentByKind["TOKEN"] {
		t.Fatalf("kind counts: registry %d, stats %d", got, st.SentByKind["TOKEN"])
	}
	if byName["simnet_final_time"].Value != st.FinalTime {
		t.Fatalf("final time: registry %v, stats %v", byName["simnet_final_time"].Value, st.FinalTime)
	}
	if byName["simnet_queue_depth_max"].Value < 1 {
		t.Fatal("queue depth high-water mark never recorded")
	}
	if byName["simnet_send_latency"].Count != sent-int64(st.Dropped) {
		t.Fatalf("latency observations %d != undropped sends %d",
			byName["simnet_send_latency"].Count, sent-int64(st.Dropped))
	}
}

// TestRunnerMetricsSinkAggregates: two runs merging into one sink must
// add their counters.
func TestRunnerMetricsSinkAggregates(t *testing.T) {
	sink := metrics.New()
	var total int
	for _, seed := range []uint64{1, 2} {
		r := NewRunner(4, Options{Seed: seed, Metrics: sink})
		st, err := r.Run(lineHandlers(4))
		if err != nil {
			t.Fatal(err)
		}
		total += st.Deliveries
	}
	if got := sink.Counter("simnet_deliveries_total", "").Value(); int(got) != total {
		t.Fatalf("sink deliveries = %d, want %d", got, total)
	}
}

// TestGoRunnerTraceAndMetrics: the goroutine runtime must feed a
// thread-safe trace callback and the same registry instruments.
func TestGoRunnerTraceAndMetrics(t *testing.T) {
	n := 6
	sink := metrics.New()
	r := NewGoRunner(n, 10*time.Second)
	r.SetMetricsSink(sink)
	var mu sync.Mutex
	var entries []TraceEntry
	r.SetTrace(func(e TraceEntry) {
		mu.Lock()
		entries = append(entries, e)
		mu.Unlock()
	})
	st, err := r.Run(lineHandlers(n))
	if err != nil {
		t.Fatal(err)
	}
	if st.Deliveries == 0 {
		t.Fatal("no deliveries")
	}
	mu.Lock()
	captured := len(entries)
	mu.Unlock()
	if captured != st.Deliveries+st.TimersFired {
		t.Fatalf("trace captured %d, stats delivered %d", captured, st.Deliveries+st.TimersFired)
	}
	if got := r.Metrics().Counter("simnet_deliveries_total", "").Value(); int(got) != st.Deliveries {
		t.Fatalf("registry deliveries %d != stats %d", got, st.Deliveries)
	}
	if got := sink.Counter("simnet_deliveries_total", "").Value(); int(got) != st.Deliveries {
		t.Fatalf("sink deliveries %d != stats %d", got, st.Deliveries)
	}
	if sink.Family("simnet_sent_total", "", "kind").Value("TOKEN") == 0 {
		t.Fatal("sink missing per-kind counts")
	}
}
