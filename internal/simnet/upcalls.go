package simnet

// Upcall interfaces let a transport or failure-detection layer deliver
// out-of-band signals to the protocol handler it wraps. They are
// optional: a wrapper type-asserts its inner handler and silently
// drops the signal when the interface is not implemented, so existing
// handlers keep working unchanged.
//
// The calls happen on the node's own delivery thread (the wrapper's
// HandleMessage or timer), so implementations may use ctx exactly as
// they would inside HandleMessage — including Send and SetTimer.

// SuspectHandler receives failure-detector verdicts about peers. A
// detector calls HandleSuspect when a monitored peer stops responding
// (it may be crashed, partitioned, or merely slow — suspicion is a
// local, revocable judgment) and HandleRestore when a suspected peer
// is heard from again (crash-recovery). HandleRestore is invoked
// before the message that revived the peer is delivered, so the
// handler sees a consistent order: suspect ... restore, message.
type SuspectHandler interface {
	HandleSuspect(ctx Context, peer int)
	HandleRestore(ctx Context, peer int)
}

// LinkDownHandler receives transport-level link-death escalations. A
// reliable transport calls HandleLinkDown when it exhausts its
// retransmission budget toward peer — the link is unusable, frames to
// it were abandoned, and the protocol above should stop counting on
// that neighbor. Unlike suspicion there is no automatic restore
// signal: the transport reports again only on the next down
// transition after traffic from the peer resumes.
type LinkDownHandler interface {
	HandleLinkDown(ctx Context, peer int)
}
