package simnet

import (
	"overlaymatch/internal/metrics"
)

// instruments is the registry-backed counter set shared by both
// runtimes. Each run owns a private registry (so per-run Stats stay
// exact even when many runs execute in one process); a caller-supplied
// sink registry, if any, receives a Merge of the private registry when
// the run finishes. Stats (the public result struct) is built as a
// snapshot view over these instruments, which keeps the experiment
// tables bit-identical to the pre-registry implementation.
type instruments struct {
	reg            *metrics.Registry
	deliveries     *metrics.Counter
	dropped        *metrics.Counter
	timersFired    *metrics.Counter
	sent           *metrics.Family
	sentByNode     *metrics.Vector
	receivedByNode *metrics.Vector
	sentBytes      *metrics.Counter
	bytesByKind    *metrics.Family
	finalTime      *metrics.Gauge
	queueDepthMax  *metrics.Gauge
	sendLatency    *metrics.Histogram
	faults         *metrics.Family
}

func newInstruments(n int) *instruments {
	reg := metrics.New()
	return &instruments{
		reg:            reg,
		deliveries:     reg.Counter("simnet_deliveries_total", "network messages delivered"),
		dropped:        reg.Counter("simnet_dropped_total", "messages lost by the loss model"),
		timersFired:    reg.Counter("simnet_timers_fired_total", "local timer deliveries"),
		sent:           reg.Family("simnet_sent_total", "messages sent by protocol kind", "kind"),
		sentBytes:      reg.Counter("simnet_sent_bytes_total", "payload bytes sent (messages implementing Sizer)"),
		bytesByKind:    reg.Family("simnet_sent_bytes_by_kind", "payload bytes sent by protocol kind", "kind"),
		sentByNode:     reg.Vector("simnet_sent_by_node", "messages sent per node", n),
		receivedByNode: reg.Vector("simnet_received_by_node", "messages delivered per node", n),
		finalTime:      reg.Gauge("simnet_final_time", "virtual time of the last delivery (event runtime)"),
		queueDepthMax:  reg.Gauge("simnet_queue_depth_max", "high-water mark of the event queue / mailbox depth"),
		sendLatency:    reg.Histogram("simnet_send_latency", "per-message link latency in virtual time units (event runtime)", nil),
		faults:         reg.Family("simnet_fault_injections_total", "fault injections applied by the link policy", "kind"),
	}
}

// countSend records one network send's kind and byte accounting; both
// runtimes call it from their Send paths.
func (ins *instruments) countSend(node int, kind string, size int) {
	ins.sentByNode.Inc(node)
	ins.sent.With(kind).Inc()
	if size > 0 {
		ins.sentBytes.Add(int64(size))
		ins.bytesByKind.With(kind).Add(int64(size))
	}
}

// sentTotals reads the cumulative (messages, bytes) send counters —
// the per-probe traffic attribution of the stability prober. Called at
// probe frequency, never per message.
func (ins *instruments) sentTotals() (msgs, bytes int64) {
	for _, v := range ins.sentByNode.Values() {
		msgs += v
	}
	return msgs, ins.sentBytes.Value()
}

// countVerdict records one applied link-policy verdict by kind; a zero
// verdict records nothing.
func (ins *instruments) countVerdict(v LinkVerdict) {
	if v.Drop {
		ins.faults.With("drop").Inc()
		return
	}
	if v.Copies > 0 {
		ins.faults.With("dup").Inc()
	}
	if v.ExtraDelay > 0 {
		ins.faults.With("delay").Inc()
	}
	if v.Corrupt {
		ins.faults.With("corrupt").Inc()
	}
}

// stats builds the public Stats snapshot view from the instruments.
func (ins *instruments) stats() Stats {
	sentVals := ins.sentByNode.Values()
	recvVals := ins.receivedByNode.Values()
	s := Stats{
		SentByNode:     make([]int, len(sentVals)),
		ReceivedByNode: make([]int, len(recvVals)),
		SentByKind:     make(map[string]int),
		FinalTime:      ins.finalTime.Value(),
		Deliveries:     int(ins.deliveries.Value()),
		Dropped:        int(ins.dropped.Value()),
		TimersFired:    int(ins.timersFired.Value()),
	}
	for i, v := range sentVals {
		s.SentByNode[i] = int(v)
	}
	for i, v := range recvVals {
		s.ReceivedByNode[i] = int(v)
	}
	for kind, c := range ins.sent.Counts() {
		s.SentByKind[kind] = int(c)
	}
	return s
}

// mergeInto folds the private registry into a caller-supplied sink
// (nil-safe).
func (ins *instruments) mergeInto(sink *metrics.Registry) {
	if sink != nil {
		sink.Merge(ins.reg.Snapshot())
	}
}
