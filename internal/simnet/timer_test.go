package simnet

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// timerToken marks timer deliveries in the tests.
type timerToken struct{ n int }

// timedHandler sets a chain of timers at Init and records fire order.
type timedHandler struct {
	mu     sync.Mutex
	fired  []int
	limit  int
	halted bool
}

func (h *timedHandler) Init(ctx Context) {
	SetTimerOn(ctx, 5, timerToken{0})
	SetTimerOn(ctx, 2, timerToken{1})
	SetTimerOn(ctx, 9, timerToken{2})
}

func (h *timedHandler) HandleMessage(ctx Context, from int, msg Message) {
	tok, ok := msg.(timerToken)
	if !ok {
		return
	}
	if from != ctx.ID() {
		panic("timer delivered with foreign from")
	}
	h.mu.Lock()
	h.fired = append(h.fired, tok.n)
	done := len(h.fired) == 3
	h.mu.Unlock()
	if done {
		ctx.Halt()
	}
}

func TestRunnerTimersFireInVirtualOrder(t *testing.T) {
	h := &timedHandler{}
	r := NewRunner(1, Options{Seed: 1})
	stats, err := r.Run([]Handler{h})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.fired) != 3 || h.fired[0] != 1 || h.fired[1] != 0 || h.fired[2] != 2 {
		t.Fatalf("fire order = %v, want [1 0 2]", h.fired)
	}
	if stats.TimersFired != 3 || stats.Deliveries != 0 {
		t.Fatalf("stats: timers %d deliveries %d", stats.TimersFired, stats.Deliveries)
	}
	if stats.FinalTime != 9 {
		t.Fatalf("final time %v, want 9", stats.FinalTime)
	}
}

func TestGoRunnerTimers(t *testing.T) {
	h := &timedHandler{}
	r := NewGoRunner(1, 10*time.Second)
	r.SetTimeUnit(time.Millisecond)
	stats, err := r.Run([]Handler{h})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.fired) != 3 {
		t.Fatalf("fired %v", h.fired)
	}
	if stats.TimersFired != 3 {
		t.Fatalf("TimersFired = %d", stats.TimersFired)
	}
	// Wall-clock ordering should match virtual order with these gaps.
	if h.fired[0] != 1 {
		t.Fatalf("first timer = %d, want 1", h.fired[0])
	}
}

func TestSetTimerPanicsOnBadDelay(t *testing.T) {
	r := NewRunner(1, Options{})
	bad := handlerFunc{init: func(ctx Context) { SetTimerOn(ctx, 0, "x") }}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, _ = r.Run([]Handler{bad})
}

func TestUniformDropLosesMessages(t *testing.T) {
	// Node 0 sends 200 messages to node 1; with p=0.5 roughly half are
	// dropped. Node 1 halts at Init (it may receive afterwards).
	sender := handlerFunc{
		init: func(ctx Context) {
			for i := 0; i < 200; i++ {
				ctx.Send(1, i)
			}
			ctx.Halt()
		},
	}
	receiver := handlerFunc{init: func(ctx Context) { ctx.Halt() }}
	r := NewRunner(2, Options{Seed: 3, Drop: UniformDrop(0.5)})
	stats, err := r.Run([]Handler{sender, receiver})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalSent() != 200 {
		t.Fatalf("sent = %d", stats.TotalSent())
	}
	if stats.Dropped == 0 || stats.Dropped == 200 {
		t.Fatalf("dropped = %d, expected strictly between 0 and 200", stats.Dropped)
	}
	if stats.Deliveries+stats.Dropped != 200 {
		t.Fatalf("deliveries %d + dropped %d != 200", stats.Deliveries, stats.Dropped)
	}
	if stats.Dropped < 60 || stats.Dropped > 140 {
		t.Fatalf("dropped = %d, implausible for p=0.5", stats.Dropped)
	}
}

func TestUniformDropValidation(t *testing.T) {
	for _, p := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("UniformDrop(%v) should panic", p)
				}
			}()
			UniformDrop(p)
		}()
	}
}

func TestTimersNotDropped(t *testing.T) {
	// Even with 90% loss, timers always fire.
	h := &timedHandler{}
	r := NewRunner(1, Options{Seed: 1, Drop: UniformDrop(0.9)})
	stats, err := r.Run([]Handler{h})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TimersFired != 3 {
		t.Fatalf("timers fired = %d", stats.TimersFired)
	}
}

func TestSetTimerOnUnsupportedContextPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "timers") {
			t.Fatalf("expected timer-support panic, got %v", r)
		}
	}()
	SetTimerOn(bareCtx{}, 1, "x")
}

// bareCtx implements only the base Context interface.
type bareCtx struct{}

func (bareCtx) ID() int           { return 0 }
func (bareCtx) Send(int, Message) {}
func (bareCtx) Halt()             {}
func (bareCtx) Time() float64     { return 0 }
