package simnet

import (
	"fmt"

	"overlaymatch/internal/metrics"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/rng"
)

// LatencyFunc returns the link latency for one message from -> to. It
// must be positive. Implementations draw jitter from src, which the
// Runner seeds deterministically.
type LatencyFunc func(from, to int, src *rng.Source) float64

// UnitLatency delivers every message after exactly 1 time unit, so the
// final virtual time equals the longest causal message chain — the
// "rounds" metric of experiment E6.
func UnitLatency(int, int, *rng.Source) float64 { return 1 }

// ExponentialLatency returns latencies 1 + Exp(1)·jitter: always
// positive, unbounded, and different for every message — the harshest
// asynchrony the termination experiments use.
func ExponentialLatency(jitter float64) LatencyFunc {
	return func(_, _ int, src *rng.Source) float64 {
		return 1 + jitter*src.ExpFloat64()
	}
}

// UniformLatency returns latencies uniform in [lo, hi).
func UniformLatency(lo, hi float64) LatencyFunc {
	if lo <= 0 || hi < lo {
		panic("simnet: UniformLatency needs 0 < lo <= hi")
	}
	return func(_, _ int, src *rng.Source) float64 {
		return lo + (hi-lo)*src.Float64()
	}
}

// DropFunc decides whether one message from -> to is lost in transit.
// Timers are never dropped.
type DropFunc func(from, to int, src *rng.Source) bool

// Admitter schedules node initialization in batches instead of the
// default all-at-time-0 sweep. The Runner calls NextBatch once before
// any delivery (the batch is initialized at time 0, in the returned
// order) and again every time the event queue drains (initialized at
// the virtual time of the last delivery); the run ends when the queue
// is empty and NextBatch returns an empty batch. Un-admitted nodes
// never received Init, so the usual deadlock check applies to them
// unless the admitter guarantees full coverage. Package lid provides
// the heaviest-frontier implementation (greedy admission scheduling).
type Admitter interface {
	NextBatch() []int
}

// UniformDrop loses every message independently with probability p.
func UniformDrop(p float64) DropFunc {
	if p < 0 || p >= 1 {
		panic("simnet: UniformDrop needs 0 <= p < 1")
	}
	return func(_, _ int, src *rng.Source) bool { return src.Bool(p) }
}

// Options configures a Runner.
type Options struct {
	// Seed drives all randomness (latency jitter, drops). Runs with
	// equal seeds and workloads are identical.
	Seed uint64
	// Latency models per-message delay; nil means UnitLatency.
	Latency LatencyFunc
	// Drop models message loss; nil means a lossless network. The
	// paper's model assumes reliable links — package reliable restores
	// that assumption on top of a lossy Drop.
	Drop DropFunc
	// Policy, if non-nil, is the deterministic fault-injection hook:
	// every network send is submitted to it and the verdict
	// (drop/duplicate/extra-delay/corrupt) is applied on top of the
	// Latency and Drop models. Package faults provides the standard
	// implementation. Timers bypass the policy.
	Policy LinkPolicy
	// Trace, if non-nil, receives every delivery in order.
	Trace func(TraceEntry)
	// MaxDeliveries aborts a run that exceeds this many deliveries
	// (default 0 = no limit); the guard the non-termination tests use.
	MaxDeliveries int
	// Quiesce makes Run return successfully when the event queue
	// drains even if nodes never called Halt — the mode for long-lived
	// maintenance protocols (package dlid) that idle between injected
	// events rather than terminating.
	Quiesce bool
	// Metrics, if non-nil, is a shared sink registry: when Run
	// finishes (normally or not), the run's private instrument
	// registry is merged into it (counters/histograms add, gauges take
	// the max). The runner never writes to the sink on the hot path,
	// so a sink shared across runs costs nothing per message.
	Metrics *metrics.Registry
	// Obs, if non-nil, is the telemetry recorder (package obs): the
	// runner records every network send/delivery with Lamport stamps
	// carried across the link, and exposes the recorder to protocol
	// layers through the Observable context capability. nil costs one
	// branch per event.
	Obs *obs.Recorder
	// Probe, together with a positive ProbeInterval, installs the
	// per-round stability probe: the run loop invokes Probe(t) at
	// every multiple t of ProbeInterval, after all events strictly
	// before t have been processed (plus once more after the queue
	// drains), so a probe at t sees the state "after round t". Probes
	// observe protocol state but must not mutate it.
	Probe         func(t float64)
	ProbeInterval float64
	// Admitter, if non-nil, batches node initialization: only released
	// nodes run Init, and further batches are released whenever the
	// event queue drains. nil keeps the canonical all-at-time-0 sweep.
	Admitter Admitter
}

// Runner is the deterministic discrete-event simulator. Its counters
// are registry-backed (see instruments); Stats is derived from them as
// a snapshot view when Run returns.
type Runner struct {
	n       int
	opts    Options
	src     *rng.Source
	queue   eventQueue
	seq     int
	halted  []bool
	ins     *instruments
	running bool
}

type event struct {
	time     float64
	seq      int // FIFO tie-break: lower seq delivered first at equal times
	from, to int
	msg      Message
	lam      uint64 // sender's Lamport stamp (telemetry only; 0 when off)
	timer    bool   // local timer delivery, not a network message
}

// eventQueue is a binary min-heap ordered by (time, seq). It is
// hand-rolled rather than container/heap because the interface{}
// boxing there costs one allocation per message — measurably the
// hottest path of large event-driven runs.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release references for GC
	*q = h[:n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// NewRunner returns a Runner for n nodes.
func NewRunner(n int, opts Options) *Runner {
	if n < 0 {
		panic("simnet: negative node count")
	}
	if opts.Latency == nil {
		opts.Latency = UnitLatency
	}
	return &Runner{
		n:      n,
		opts:   opts,
		src:    rng.New(opts.Seed),
		halted: make([]bool, n),
		ins:    newInstruments(n),
	}
}

// Metrics returns the run's private instrument registry — render or
// merge it after Run for per-run observability.
func (r *Runner) Metrics() *metrics.Registry { return r.ins.reg }

// SentTotals returns the cumulative (messages, bytes) send counters —
// safe to call from an Options.Probe callback to attribute traffic to
// convergence phases.
func (r *Runner) SentTotals() (msgs, bytes int64) { return r.ins.sentTotals() }

// runnerCtx implements Context for one delivery.
type runnerCtx struct {
	r    *Runner
	id   int
	time float64
}

func (c *runnerCtx) ID() int       { return c.id }
func (c *runnerCtx) Time() float64 { return c.time }
func (c *runnerCtx) Halt()         { c.r.halted[c.id] = true }

// Observer implements Observable, handing protocol layers the run's
// telemetry recorder (nil when telemetry is off).
func (c *runnerCtx) Observer() *obs.Recorder { return c.r.opts.Obs }

func (c *runnerCtx) Send(to int, msg Message) {
	r := c.r
	if to < 0 || to >= r.n {
		panic(fmt.Sprintf("simnet: send to %d outside [0,%d)", to, r.n))
	}
	kind := KindOf(msg)
	r.ins.countSend(c.id, kind, SizeOf(msg))
	// The send is recorded (and the clock ticked) before the loss
	// model, matching the sent counters: a dropped message was still
	// sent, and its stamp documents the causal gap.
	lam := r.opts.Obs.Send(c.id, to, kind, c.time)
	if r.opts.Drop != nil && r.opts.Drop(c.id, to, r.src) {
		r.ins.dropped.Inc()
		return
	}
	copies := 1
	extra := 0.0
	if r.opts.Policy != nil {
		v := r.opts.Policy.Verdict(c.time, c.id, to, msg)
		r.ins.countVerdict(v)
		if v.Drop {
			r.ins.dropped.Inc()
			return
		}
		if v.Corrupt {
			msg = Corrupted{Original: msg}
		}
		if v.Copies > 0 {
			copies += v.Copies
		}
		if v.ExtraDelay < 0 {
			panic("simnet: negative policy delay")
		}
		extra = v.ExtraDelay
	}
	for i := 0; i < copies; i++ {
		lat := r.opts.Latency(c.id, to, r.src) + extra
		if lat <= 0 {
			panic("simnet: non-positive latency")
		}
		r.ins.sendLatency.Observe(lat)
		r.seq++
		r.queue.push(event{time: c.time + lat, seq: r.seq, from: c.id, to: to, msg: msg, lam: lam})
	}
	r.ins.queueDepthMax.SetMax(float64(len(r.queue)))
}

// SetTimer implements TimerSetter: deliver msg back to this node after
// delay time units. Timers are exempt from the loss model and from the
// network message statistics.
func (c *runnerCtx) SetTimer(delay float64, msg Message) {
	if delay <= 0 {
		panic("simnet: SetTimer needs a positive delay")
	}
	r := c.r
	r.seq++
	r.queue.push(event{time: c.time + delay, seq: r.seq, from: c.id, to: c.id, msg: msg, timer: true})
	r.ins.queueDepthMax.SetMax(float64(len(r.queue)))
}

// Run executes the protocol: Init on every node (in ID order, at time
// 0), then deliveries in (time, seq) order until the queue drains. It
// returns the run statistics and an error if MaxDeliveries was
// exceeded or if the queue drained while some node had not halted
// (which for a correct protocol means a node is waiting forever — the
// situation Lemma 5 excludes for LID).
func (r *Runner) Run(handlers []Handler) (Stats, error) {
	defer r.ins.mergeInto(r.opts.Metrics)
	if len(handlers) != r.n {
		return r.ins.stats(), fmt.Errorf("simnet: %d handlers for %d nodes", len(handlers), r.n)
	}
	if r.running {
		return r.ins.stats(), fmt.Errorf("simnet: Runner is single-use")
	}
	r.running = true
	// admit releases one admitter batch at virtual time t. Batches are
	// initialized in the returned order; double or out-of-range release
	// is an admitter bug and fails the run.
	var inited []bool
	var batches *metrics.Counter
	admit := func(t float64) (int, error) {
		batch := r.opts.Admitter.NextBatch()
		for _, id := range batch {
			if id < 0 || id >= r.n {
				return 0, fmt.Errorf("simnet: admitter released node %d outside [0,%d)", id, r.n)
			}
			if inited[id] {
				return 0, fmt.Errorf("simnet: admitter released node %d twice", id)
			}
			inited[id] = true
			handlers[id].Init(&runnerCtx{r: r, id: id, time: t})
		}
		if len(batch) > 0 {
			batches.Inc()
		}
		return len(batch), nil
	}
	if r.opts.Admitter != nil {
		inited = make([]bool, r.n)
		batches = r.ins.reg.Counter("simnet_admission_batches_total", "admission batches released by Options.Admitter")
		if _, err := admit(0); err != nil {
			return r.ins.stats(), err
		}
	} else {
		for id := 0; id < r.n; id++ {
			handlers[id].Init(&runnerCtx{r: r, id: id, time: 0})
		}
	}
	// ctx is reused across deliveries: Contexts are documented as only
	// valid for the duration of the handler call, and reusing the one
	// allocation removes per-delivery garbage. delivered mirrors the
	// delivery counters locally to keep the MaxDeliveries guard off
	// the atomic read path.
	ctx := &runnerCtx{r: r}
	delivered := 0
	probing := r.opts.Probe != nil && r.opts.ProbeInterval > 0
	// Probe times are tick-aligned — float64(tick) * interval — instead
	// of accumulated by repeated addition: summing a non-dyadic interval
	// (0.1, 0.25·1.1, ...) drifts off the grid within a handful of
	// probes (ten 0.1-steps give 0.9999999999999999 < 1.0, an eleventh
	// sample where ten belong) and every later probe time carries the
	// accumulated error.
	probeTick := 0
	nextProbe := func() float64 { return float64(probeTick) * r.opts.ProbeInterval }
	lastTime := 0.0
	for {
		for len(r.queue) > 0 {
			e := r.queue.pop()
			if r.opts.MaxDeliveries > 0 && delivered >= r.opts.MaxDeliveries {
				return r.ins.stats(), fmt.Errorf("simnet: exceeded %d deliveries", r.opts.MaxDeliveries)
			}
			delivered++
			if probing {
				// A probe at t fires once every event strictly before t is
				// processed: with unit latency, probe k reports the state
				// after round k.
				for nextProbe() < e.time {
					r.opts.Probe(nextProbe())
					probeTick++
				}
			}
			if e.timer {
				r.ins.timersFired.Inc()
			} else {
				r.ins.deliveries.Inc()
				r.ins.receivedByNode.Inc(e.to)
				if r.opts.Obs != nil {
					r.opts.Obs.Deliver(e.to, e.from, KindOf(e.msg), e.time, e.lam)
				}
			}
			r.ins.finalTime.SetMax(e.time)
			lastTime = e.time
			if r.opts.Trace != nil {
				r.opts.Trace(TraceEntry{Time: e.time, From: e.from, To: e.to, Msg: e.msg})
			}
			ctx.id, ctx.time = e.to, e.time
			handlers[e.to].HandleMessage(ctx, e.from, e.msg)
		}
		if r.opts.Admitter == nil {
			break
		}
		// Queue drained: release the next admission batch at the time
		// of the last delivery (keeping virtual time monotone). The run
		// ends when the admitter is exhausted too.
		k, err := admit(lastTime)
		if err != nil {
			return r.ins.stats(), err
		}
		if k == 0 {
			break
		}
	}
	if probing {
		// Final sample at the next round boundary: the end state of the
		// run, after the last delivery.
		r.opts.Probe(nextProbe())
	}
	if !r.opts.Quiesce {
		for id, h := range r.halted {
			if !h {
				return r.ins.stats(), fmt.Errorf("simnet: node %d never halted (deadlock)", id)
			}
		}
	}
	return r.ins.stats(), nil
}

// Schedule enqueues an external command to be delivered to node `to`
// at the given virtual time (from == to, like a timer). Call before
// Run; commands model environment events such as churn. Scheduling
// after Run has started panics.
func (r *Runner) Schedule(at float64, to int, msg Message) {
	if r.running {
		panic("simnet: Schedule after Run started")
	}
	if to < 0 || to >= r.n {
		panic(fmt.Sprintf("simnet: Schedule to %d outside [0,%d)", to, r.n))
	}
	if at < 0 {
		panic("simnet: Schedule with negative time")
	}
	r.seq++
	r.queue.push(event{time: at, seq: r.seq, from: to, to: to, msg: msg, timer: true})
	r.ins.queueDepthMax.SetMax(float64(len(r.queue)))
}
