package simnet

// Transport is the runtime-agnostic execution substrate the protocol
// stack runs on: something that takes one Handler per node, drives
// Init and HandleMessage (sequentially per node, possibly concurrently
// across nodes), delivers timers, and reports the run's statistics.
//
// Three implementations exist:
//
//   - Runner — the deterministic discrete-event simulator. The
//     conformance harness: every protocol result is defined by what
//     the Runner computes, and the experiment registry (E1–E19) gates
//     against it bit-for-bit.
//   - GoRunner — one goroutine per node with unbounded mailboxes;
//     exercises real concurrency and the race detector.
//   - transport.Cluster — real UDP sockets (package
//     internal/transport): per-peer send loops, length-prefixed binary
//     frames, message coalescing. The deployable backend; its runs
//     must produce the same matchings the Runner certifies.
//
// The interface is deliberately minimal: protocols never see it (they
// are written against Handler/Context), but harnesses, experiments and
// CLIs can hold any backend behind one variable. Both simnet runtimes
// implement it unchanged — the compile-time assertions below are the
// whole "refactor" on their side.
type Transport interface {
	// Run executes the protocol to termination: Init on every node,
	// then message deliveries until the backend's termination condition
	// holds (global halt for Runner/GoRunner, quiescence for the
	// socket backend). One Transport value runs once.
	Run(handlers []Handler) (Stats, error)
}

// Endpoint is the per-node attachment surface a Transport hands its
// handlers on every call: the Context (identity, send, halt, clock)
// plus local timers. Every built-in runtime context provides it; layer
// wrappers (reliable.Endpoint's relCtx, package robust's adaptive
// timers) rely on exactly this surface and nothing more, which is what
// lets the whole stack move between backends without edits.
type Endpoint interface {
	Context
	TimerSetter
}

// Compile-time conformance: both simulator runtimes are Transports and
// both their contexts are Endpoints. The real-socket backend asserts
// the same in package internal/transport (it cannot be asserted here
// without an import cycle).
var (
	_ Transport = (*Runner)(nil)
	_ Transport = (*GoRunner)(nil)
	_ Endpoint  = (*runnerCtx)(nil)
	_ Endpoint  = (*goCtx)(nil)
)
