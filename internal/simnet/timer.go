package simnet

// Timer support. Protocol hardening (proposal timeouts in package
// robust) and transport reliability (retransmission in package
// reliable) both need local timers. A timer is delivered back to the
// node that set it as a HandleMessage call with from == the node's own
// ID and the token as the message; timers are local events and are
// never dropped by the loss model.
//
// The event Runner implements timers exactly on its virtual clock. The
// GoRunner maps one virtual time unit to Options-configurable real
// time (default 1ms); its timers are wall-clock approximations, which
// is fine because the protocols only use timers for conservative
// timeouts.

// TimerSetter is implemented by Contexts that support timers. Both
// runtimes do; the interface is separate so simple protocols don't
// need to care.
type TimerSetter interface {
	// SetTimer schedules msg to be delivered to this node itself
	// (from == own ID) after delay virtual time units. delay must be
	// positive.
	SetTimer(delay float64, msg Message)
}

// SetTimerOn sets a timer via ctx, panicking if the runtime does not
// support timers (both built-in runtimes do).
func SetTimerOn(ctx Context, delay float64, msg Message) {
	ts, ok := ctx.(TimerSetter)
	if !ok {
		panic("simnet: context does not support timers")
	}
	ts.SetTimer(delay, msg)
}
