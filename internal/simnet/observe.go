package simnet

import "overlaymatch/internal/obs"

// Sizer lets a Message report its wire size in bytes for the byte
// accounting instruments (simnet_sent_bytes_total and the per-kind
// family). The sizes are nominal protocol-header models, not Go object
// sizes: what matters is that they are deterministic and comparable
// across protocol phases. Messages without a Sizer count zero bytes
// (they still count as messages).
type Sizer interface {
	WireSize() int
}

// SizeOf returns msg's reported wire size, or 0.
func SizeOf(msg Message) int {
	if s, ok := msg.(Sizer); ok {
		return s.WireSize()
	}
	return 0
}

// Observable is the optional Context capability handing protocol
// layers the run's telemetry recorder, following the upcall pattern
// (TimerSetter, SuspectHandler): layers that open spans type-assert
// the capability through ObserverOf and work unchanged — at zero
// recording cost — when telemetry is off, because a nil *obs.Recorder
// is inert. Context wrappers (reliable, detector) must forward this
// interface like they forward TimerSetter.
type Observable interface {
	Observer() *obs.Recorder
}

// ObserverOf extracts the telemetry recorder from a Context, or nil.
func ObserverOf(ctx Context) *obs.Recorder {
	if o, ok := ctx.(Observable); ok {
		return o.Observer()
	}
	return nil
}
