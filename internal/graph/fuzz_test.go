package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadEdgeList: the parser must never panic on arbitrary input,
// and anything it accepts must round-trip through WriteEdgeList.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("n 3\n0 1\n1 2\n")
	f.Add("# comment\n\nn 5\n0 4\n")
	f.Add("n 0\n")
	f.Add("0 1\n")
	f.Add("n -1\n")
	f.Add("n 3\n1 1\n")
	f.Add("n x\n0 1")
	f.Add(strings.Repeat("n 2\n", 3))
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("serializing accepted graph: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("reparsing own output: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || !reflect.DeepEqual(g2.Edges(), g.Edges()) {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzGraphJSON: Unmarshal must never panic and accepted graphs must
// satisfy the structural invariants.
func FuzzGraphJSON(f *testing.F) {
	f.Add(`{"n":3,"edges":[[0,1],[1,2]]}`)
	f.Add(`{"n":0,"edges":[]}`)
	f.Add(`{"n":-1}`)
	f.Add(`{"n":2,"edges":[[0,0]]}`)
	f.Add(`{"n":1e9,"edges":[]}`)
	f.Fuzz(func(t *testing.T, input string) {
		var g Graph
		if err := g.UnmarshalJSON([]byte(input)); err != nil {
			return
		}
		if g.NumNodes() > 1<<20 {
			t.Skip("absurdly large accepted graph; skip invariant scan")
		}
		degSum := 0
		for u := 0; u < g.NumNodes(); u++ {
			degSum += g.Degree(u)
		}
		if degSum != 2*g.NumEdges() {
			t.Fatal("degree sum invariant violated")
		}
	})
}

// FuzzEdgeIndexRoundTrip: the CSR edge index must stay consistent with
// the adjacency view for arbitrary graphs. The input bytes are decoded
// as a node count plus a sequence of endpoint pairs (self loops and
// duplicates are dropped by the builder), and every public index
// accessor is cross-checked against every other.
func FuzzEdgeIndexRoundTrip(f *testing.F) {
	f.Add([]byte{3, 0, 1, 1, 2})
	f.Add([]byte{1})
	f.Add([]byte{5, 0, 4, 4, 0, 2, 2})
	f.Add([]byte{8, 0, 1, 0, 2, 0, 3, 1, 2, 6, 7})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0])%64 + 1
		b := NewBuilder(n)
		for i := 1; i+1 < len(data); i += 2 {
			u, v := NodeID(data[i])%n, NodeID(data[i+1])%n
			if u != v && !b.HasEdge(u, v) {
				b.AddEdge(u, v)
			}
		}
		g := b.MustGraph()
		seen := make([]bool, g.NumEdges())
		for u := 0; u < n; u++ {
			inc := g.IncidentEdges(u)
			adj := g.Neighbors(u)
			if len(inc) != len(adj) {
				t.Fatalf("node %d: %d incident edges, %d neighbors", u, len(inc), len(adj))
			}
			if int(g.IncidenceOffset(u+1)-g.IncidenceOffset(u)) != len(adj) {
				t.Fatalf("node %d: offset span disagrees with degree", u)
			}
			for k, id := range inc {
				v := adj[k]
				e := g.EdgeByID(id)
				if e.Other(u) != v || g.OtherEndpoint(id, u) != v {
					t.Fatalf("edge %d at slot (%d,%d): %v does not join them", id, u, k, e)
				}
				if got, ok := g.EdgeIDOf(u, v); !ok || got != id {
					t.Fatalf("EdgeIDOf(%d,%d) = %d,%v, want %d", u, v, got, ok, id)
				}
				if k2, ok := g.NeighborIndex(u, v); !ok || k2 != k {
					t.Fatalf("NeighborIndex(%d,%d) = %d,%v, want %d", u, v, k2, ok, k)
				}
				seen[id] = true
			}
		}
		for id, ok := range seen {
			if !ok {
				t.Fatalf("edge %d missing from every incidence list", id)
			}
		}
		for id, e := range g.Edges() {
			if e2 := g.EdgeByID(EdgeID(id)); e2 != e {
				t.Fatalf("EdgeByID(%d) = %v, Edges()[%d] = %v", id, e2, id, e)
			}
		}
	})
}
