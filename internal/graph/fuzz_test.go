package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadEdgeList: the parser must never panic on arbitrary input,
// and anything it accepts must round-trip through WriteEdgeList.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("n 3\n0 1\n1 2\n")
	f.Add("# comment\n\nn 5\n0 4\n")
	f.Add("n 0\n")
	f.Add("0 1\n")
	f.Add("n -1\n")
	f.Add("n 3\n1 1\n")
	f.Add("n x\n0 1")
	f.Add(strings.Repeat("n 2\n", 3))
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("serializing accepted graph: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("reparsing own output: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || !reflect.DeepEqual(g2.Edges(), g.Edges()) {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzGraphJSON: Unmarshal must never panic and accepted graphs must
// satisfy the structural invariants.
func FuzzGraphJSON(f *testing.F) {
	f.Add(`{"n":3,"edges":[[0,1],[1,2]]}`)
	f.Add(`{"n":0,"edges":[]}`)
	f.Add(`{"n":-1}`)
	f.Add(`{"n":2,"edges":[[0,0]]}`)
	f.Add(`{"n":1e9,"edges":[]}`)
	f.Fuzz(func(t *testing.T, input string) {
		var g Graph
		if err := g.UnmarshalJSON([]byte(input)); err != nil {
			return
		}
		if g.NumNodes() > 1<<20 {
			t.Skip("absurdly large accepted graph; skip invariant scan")
		}
		degSum := 0
		for u := 0; u < g.NumNodes(); u++ {
			degSum += g.Degree(u)
		}
		if degSum != 2*g.NumEdges() {
			t.Fatal("degree sum invariant violated")
		}
	})
}
