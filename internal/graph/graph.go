// Package graph implements the undirected graphs that model peer-to-peer
// overlays in the paper's problem model (§2): nodes are peers, edges are
// potential connections. The package provides construction, validation,
// structural queries (degrees, components, distances) and serialization;
// preference lists and quotas live in package pref, matchings in package
// matching.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. Nodes of a Graph with n nodes are exactly
// 0..n-1; algorithms rely on this density to use slices instead of maps.
type NodeID = int

// Edge is an undirected edge between two distinct nodes. The canonical
// form has U < V; Normalize establishes it.
type Edge struct {
	U, V NodeID
}

// Normalize returns the edge with endpoints ordered so that U < V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Other returns the endpoint of e that is not x. It panics if x is not
// an endpoint of e.
func (e Edge) Other(x NodeID) NodeID {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %v", x, e))
}

func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is a simple undirected graph over nodes 0..n-1 with no self
// loops and no parallel edges. The zero value is an empty graph with no
// nodes. Graph is immutable once built through a Builder; the read
// methods are safe for concurrent use.
type Graph struct {
	n     int
	adj   [][]NodeID // adj[u] sorted ascending
	edges []Edge     // canonical, sorted lexicographically
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Degree returns the degree of node u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// Neighbors returns the sorted neighbor list of u. The returned slice
// is shared with the graph and must not be modified.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.adj[u] }

// Edges returns all edges in canonical form, sorted lexicographically.
// The returned slice is shared with the graph and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// HasEdge reports whether {u,v} is an edge. Runs in O(log deg(u)).
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// MaxDegree returns the maximum degree over all nodes (0 for an empty
// graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// MinDegree returns the minimum degree over all nodes (0 for an empty
// graph).
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := len(g.adj[0])
	for _, a := range g.adj[1:] {
		if len(a) < min {
			min = len(a)
		}
	}
	return min
}

// AvgDegree returns the average degree 2m/n, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(len(g.edges)) / float64(g.n)
}

// Components returns the connected components as sorted node slices,
// ordered by their smallest node.
func (g *Graph) Components() [][]NodeID {
	seen := make([]bool, g.n)
	var comps [][]NodeID
	queue := make([]NodeID, 0, g.n)
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		queue = queue[:0]
		queue = append(queue, s)
		comp := []NodeID{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
					comp = append(comp, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether the graph has at most one connected
// component. The empty graph and the single-node graph are connected.
func (g *Graph) IsConnected() bool {
	return len(g.Components()) <= 1
}

// BFSDistances returns the hop distance from src to every node, with -1
// for unreachable nodes.
func (g *Graph) BFSDistances(src NodeID) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Subgraph returns the subgraph induced by keep (node IDs are
// relabelled 0..len(keep)-1 in the order given) together with the
// mapping from new IDs back to original IDs. Duplicate or out-of-range
// nodes in keep cause an error.
func (g *Graph) Subgraph(keep []NodeID) (*Graph, []NodeID, error) {
	newID := make(map[NodeID]int, len(keep))
	for i, u := range keep {
		if u < 0 || u >= g.n {
			return nil, nil, fmt.Errorf("graph: subgraph node %d out of range [0,%d)", u, g.n)
		}
		if _, dup := newID[u]; dup {
			return nil, nil, fmt.Errorf("graph: subgraph node %d duplicated", u)
		}
		newID[u] = i
	}
	b := NewBuilder(len(keep))
	for _, e := range g.edges {
		iu, okU := newID[e.U]
		iv, okV := newID[e.V]
		if okU && okV {
			b.AddEdge(iu, iv)
		}
	}
	sub, err := b.Graph()
	if err != nil {
		return nil, nil, err
	}
	back := append([]NodeID(nil), keep...)
	return sub, back, nil
}

// String returns a compact description such as "graph{n=5 m=7}".
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.n, len(g.edges))
}

// Builder accumulates edges and produces an immutable Graph. Adding an
// edge twice, a self loop, or an out-of-range endpoint is recorded and
// reported by Graph().
type Builder struct {
	n    int
	seen map[Edge]struct{}
	errs []error
}

// NewBuilder returns a Builder for a graph on n nodes. It panics if n
// is negative.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: NewBuilder with negative n")
	}
	return &Builder{n: n, seen: make(map[Edge]struct{})}
}

// AddEdge records the undirected edge {u,v}. Violations (self loop,
// out-of-range, duplicate) are collected and surfaced by Graph().
func (b *Builder) AddEdge(u, v NodeID) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		b.errs = append(b.errs, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
		return
	}
	if u == v {
		b.errs = append(b.errs, fmt.Errorf("graph: self loop at node %d", u))
		return
	}
	e := Edge{u, v}.Normalize()
	if _, dup := b.seen[e]; dup {
		b.errs = append(b.errs, fmt.Errorf("graph: duplicate edge %v", e))
		return
	}
	b.seen[e] = struct{}{}
}

// TryAddEdge records {u,v} if it is a valid new edge and reports
// whether it was added. Unlike AddEdge it treats duplicates and self
// loops as a normal "no" rather than an error, which is what random
// generators want.
func (b *Builder) TryAddEdge(u, v NodeID) bool {
	if u < 0 || u >= b.n || v < 0 || v >= b.n || u == v {
		return false
	}
	e := Edge{u, v}.Normalize()
	if _, dup := b.seen[e]; dup {
		return false
	}
	b.seen[e] = struct{}{}
	return true
}

// HasEdge reports whether {u,v} has been added.
func (b *Builder) HasEdge(u, v NodeID) bool {
	_, ok := b.seen[Edge{u, v}.Normalize()]
	return ok
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.seen) }

// Graph finalizes the builder. It returns an error if any AddEdge call
// was invalid.
func (b *Builder) Graph() (*Graph, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("graph: %d invalid edge(s), first: %w", len(b.errs), b.errs[0])
	}
	g := &Graph{
		n:     b.n,
		adj:   make([][]NodeID, b.n),
		edges: make([]Edge, 0, len(b.seen)),
	}
	for e := range b.seen {
		g.edges = append(g.edges, e)
	}
	sort.Slice(g.edges, func(i, j int) bool {
		if g.edges[i].U != g.edges[j].U {
			return g.edges[i].U < g.edges[j].U
		}
		return g.edges[i].V < g.edges[j].V
	})
	deg := make([]int, b.n)
	for _, e := range g.edges {
		deg[e.U]++
		deg[e.V]++
	}
	for u := range g.adj {
		g.adj[u] = make([]NodeID, 0, deg[u])
	}
	for _, e := range g.edges {
		g.adj[e.U] = append(g.adj[e.U], e.V)
		g.adj[e.V] = append(g.adj[e.V], e.U)
	}
	for u := range g.adj {
		sort.Ints(g.adj[u])
	}
	return g, nil
}

// MustGraph is Graph() but panics on error; for use with statically
// correct construction (tests, examples).
func (b *Builder) MustGraph() *Graph {
	g, err := b.Graph()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges builds a graph on n nodes from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Graph()
}

// MustFromEdges is FromEdges but panics on error.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}
