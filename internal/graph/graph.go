// Package graph implements the undirected graphs that model peer-to-peer
// overlays in the paper's problem model (§2): nodes are peers, edges are
// potential connections. The package provides construction, validation,
// structural queries (degrees, components, distances) and serialization;
// preference lists and quotas live in package pref, matchings in package
// matching.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// edgeLimit is the largest edge count a Graph can index: EdgeID is
// int32 and the CSR incidence offsets count 2m directed slots in
// int32, so m must satisfy 2m <= MaxInt32. It is a variable only so
// the overflow test can lower it; real code treats it as a constant.
var edgeLimit = math.MaxInt32 / 2

// NodeID identifies a node. Nodes of a Graph with n nodes are exactly
// 0..n-1; algorithms rely on this density to use slices instead of maps.
type NodeID = int

// EdgeID is the dense identifier of an edge: edges of a Graph with m
// edges are exactly 0..m-1, numbered in canonical lexicographic order
// (the order of Edges()). Hot paths index flat arrays by EdgeID instead
// of keying maps by Edge; int32 keeps edge-indexed tables compact (the
// model's graphs are overlays, far below 2³¹ edges).
type EdgeID = int32

// Edge is an undirected edge between two distinct nodes. The canonical
// form has U < V; Normalize establishes it.
type Edge struct {
	U, V NodeID
}

// Normalize returns the edge with endpoints ordered so that U < V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Other returns the endpoint of e that is not x. It panics if x is not
// an endpoint of e.
func (e Edge) Other(x NodeID) NodeID {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %v", x, e))
}

func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is a simple undirected graph over nodes 0..n-1 with no self
// loops and no parallel edges. The zero value is an empty graph with no
// nodes. Graph is immutable once built through a Builder; the read
// methods are safe for concurrent use.
type Graph struct {
	n     int
	adj   [][]NodeID // adj[u] sorted ascending
	edges []Edge     // canonical, sorted lexicographically; index = EdgeID

	// CSR incidence: inc[incOff[u]:incOff[u+1]] are the EdgeIDs of the
	// edges incident to u, aligned with adj[u] (inc entry k is the edge
	// {u, adj[u][k]}). One offsets+ids pair serves the whole graph; the
	// per-node views are subslices, never copies.
	incOff []int32
	inc    []EdgeID
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Degree returns the degree of node u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// Neighbors returns the sorted neighbor list of u. The returned slice
// is shared with the graph and must not be modified.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.adj[u] }

// Edges returns all edges in canonical form, sorted lexicographically.
// The returned slice is shared with the graph and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// HasEdge reports whether {u,v} is an edge. Runs in O(log deg(u)).
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.NeighborIndex(u, v)
	return ok
}

// NeighborIndex returns v's position in u's sorted neighbor list, and
// whether v is a neighbor of u at all. The position is the shared
// index all CSR-aligned per-node arrays use (adjacency, incidence,
// preference ranks, weight-list positions). Runs in O(log deg(u)).
func (g *Graph) NeighborIndex(u, v NodeID) (int, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return 0, false
	}
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	if i < len(a) && a[i] == v {
		return i, true
	}
	return 0, false
}

// IncidentEdges returns the EdgeIDs of the edges incident to u, aligned
// with Neighbors(u): entry k is the edge {u, Neighbors(u)[k]}. The
// slice is a view into the graph's shared CSR arrays and must not be
// modified.
func (g *Graph) IncidentEdges(u NodeID) []EdgeID {
	return g.inc[g.incOff[u]:g.incOff[u+1]]
}

// IncidenceOffset returns the start of u's slot in the graph's shared
// CSR arrays: a per-node array flattened over all nodes in CSR layout
// stores node u's entry for neighbor position k at
// IncidenceOffset(u)+k. Packages pref and satisfaction lay their rank
// and weight-list tables out this way.
func (g *Graph) IncidenceOffset(u NodeID) int32 { return g.incOff[u] }

// EdgeByID returns the canonical edge with the given dense id. It
// panics if the id is out of range.
func (g *Graph) EdgeByID(id EdgeID) Edge { return g.edges[id] }

// EdgeIDOf returns the dense id of edge {u,v} and whether the edge
// exists. Runs in O(log deg(u)).
func (g *Graph) EdgeIDOf(u, v NodeID) (EdgeID, bool) {
	k, ok := g.NeighborIndex(u, v)
	if !ok {
		return 0, false
	}
	return g.inc[g.incOff[u]+int32(k)], true
}

// OtherEndpoint returns the endpoint of edge id that is not x. It
// panics if x is not an endpoint.
func (g *Graph) OtherEndpoint(id EdgeID, x NodeID) NodeID {
	return g.edges[id].Other(x)
}

// MaxDegree returns the maximum degree over all nodes (0 for an empty
// graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// MinDegree returns the minimum degree over all nodes (0 for an empty
// graph).
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := len(g.adj[0])
	for _, a := range g.adj[1:] {
		if len(a) < min {
			min = len(a)
		}
	}
	return min
}

// AvgDegree returns the average degree 2m/n, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(len(g.edges)) / float64(g.n)
}

// Components returns the connected components as sorted node slices,
// ordered by their smallest node.
func (g *Graph) Components() [][]NodeID {
	seen := make([]bool, g.n)
	var comps [][]NodeID
	queue := make([]NodeID, 0, g.n)
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		queue = queue[:0]
		queue = append(queue, s)
		comp := []NodeID{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
					comp = append(comp, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether the graph has at most one connected
// component. The empty graph and the single-node graph are connected.
func (g *Graph) IsConnected() bool {
	return len(g.Components()) <= 1
}

// BFSDistances returns the hop distance from src to every node, with -1
// for unreachable nodes.
func (g *Graph) BFSDistances(src NodeID) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Subgraph returns the subgraph induced by keep (node IDs are
// relabelled 0..len(keep)-1 in the order given) together with the
// mapping from new IDs back to original IDs. Duplicate or out-of-range
// nodes in keep cause an error.
func (g *Graph) Subgraph(keep []NodeID) (*Graph, []NodeID, error) {
	newID := make(map[NodeID]int, len(keep))
	for i, u := range keep {
		if u < 0 || u >= g.n {
			return nil, nil, fmt.Errorf("graph: subgraph node %d out of range [0,%d)", u, g.n)
		}
		if _, dup := newID[u]; dup {
			return nil, nil, fmt.Errorf("graph: subgraph node %d duplicated", u)
		}
		newID[u] = i
	}
	b := NewBuilder(len(keep))
	for _, e := range g.edges {
		iu, okU := newID[e.U]
		iv, okV := newID[e.V]
		if okU && okV {
			b.AddEdge(iu, iv)
		}
	}
	sub, err := b.Graph()
	if err != nil {
		return nil, nil, err
	}
	back := append([]NodeID(nil), keep...)
	return sub, back, nil
}

// String returns a compact description such as "graph{n=5 m=7}".
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.n, len(g.edges))
}

// Builder accumulates edges and produces an immutable Graph. Adding an
// edge twice, a self loop, or an out-of-range endpoint is recorded and
// reported by Graph().
type Builder struct {
	n    int
	seen map[Edge]struct{}
	errs []error
}

// NewBuilder returns a Builder for a graph on n nodes. It panics if n
// is negative.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: NewBuilder with negative n")
	}
	return &Builder{n: n, seen: make(map[Edge]struct{})}
}

// AddEdge records the undirected edge {u,v}. Violations (self loop,
// out-of-range, duplicate) are collected and surfaced by Graph().
func (b *Builder) AddEdge(u, v NodeID) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		b.errs = append(b.errs, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
		return
	}
	if u == v {
		b.errs = append(b.errs, fmt.Errorf("graph: self loop at node %d", u))
		return
	}
	e := Edge{u, v}.Normalize()
	if _, dup := b.seen[e]; dup {
		b.errs = append(b.errs, fmt.Errorf("graph: duplicate edge %v", e))
		return
	}
	b.seen[e] = struct{}{}
}

// TryAddEdge records {u,v} if it is a valid new edge and reports
// whether it was added. Unlike AddEdge it treats duplicates and self
// loops as a normal "no" rather than an error, which is what random
// generators want.
func (b *Builder) TryAddEdge(u, v NodeID) bool {
	if u < 0 || u >= b.n || v < 0 || v >= b.n || u == v {
		return false
	}
	e := Edge{u, v}.Normalize()
	if _, dup := b.seen[e]; dup {
		return false
	}
	b.seen[e] = struct{}{}
	return true
}

// HasEdge reports whether {u,v} has been added.
func (b *Builder) HasEdge(u, v NodeID) bool {
	_, ok := b.seen[Edge{u, v}.Normalize()]
	return ok
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.seen) }

// Graph finalizes the builder. It returns an error if any AddEdge call
// was invalid.
func (b *Builder) Graph() (*Graph, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("graph: %d invalid edge(s), first: %w", len(b.errs), b.errs[0])
	}
	// Dense EdgeIDs are int32 and the incidence offsets accumulate 2m in
	// int32; beyond this the ids and offsets would silently wrap, so the
	// builder refuses instead.
	if len(b.seen) > edgeLimit {
		return nil, fmt.Errorf(
			"graph: %d edges exceed the dense-index limit of %d (EdgeID and CSR incidence offsets are int32; 2m must fit)",
			len(b.seen), edgeLimit)
	}
	g := &Graph{
		n:     b.n,
		adj:   make([][]NodeID, b.n),
		edges: make([]Edge, 0, len(b.seen)),
	}
	for e := range b.seen {
		g.edges = append(g.edges, e)
	}
	sort.Slice(g.edges, func(i, j int) bool {
		if g.edges[i].U != g.edges[j].U {
			return g.edges[i].U < g.edges[j].U
		}
		return g.edges[i].V < g.edges[j].V
	})
	deg := make([]int, b.n)
	for _, e := range g.edges {
		deg[e.U]++
		deg[e.V]++
	}
	// One flat buffer per array (adjacency, incidence); per-node views
	// are subslices. A single pass over the lexicographically sorted
	// edge list appends each node's neighbors in ascending order — the
	// V-side entries (U < v, by ascending U) all precede the U-side
	// entries (V > v, by ascending V) — so no per-node sort is needed
	// and inc stays aligned with adj by construction.
	g.incOff = make([]int32, b.n+1)
	for u := 0; u < b.n; u++ {
		g.incOff[u+1] = g.incOff[u] + int32(deg[u])
	}
	adjBuf := make([]NodeID, 2*len(g.edges))
	g.inc = make([]EdgeID, 2*len(g.edges))
	cursor := make([]int32, b.n)
	copy(cursor, g.incOff[:b.n])
	for id, e := range g.edges {
		adjBuf[cursor[e.U]] = e.V
		g.inc[cursor[e.U]] = EdgeID(id)
		cursor[e.U]++
		adjBuf[cursor[e.V]] = e.U
		g.inc[cursor[e.V]] = EdgeID(id)
		cursor[e.V]++
	}
	for u := range g.adj {
		g.adj[u] = adjBuf[g.incOff[u]:g.incOff[u+1]:g.incOff[u+1]]
	}
	return g, nil
}

// MustGraph is Graph() but panics on error; for use with statically
// correct construction (tests, examples).
func (b *Builder) MustGraph() *Graph {
	g, err := b.Graph()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges builds a graph on n nodes from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Graph()
}

// MustFromEdges is FromEdges but panics on error.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}
