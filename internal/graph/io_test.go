package graph

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"overlaymatch/internal/rng"
)

func randomGraph(seed uint64, n int) *Graph {
	src := rng.New(seed)
	b := NewBuilder(n)
	for k := 0; k < n*3; k++ {
		b.TryAddEdge(src.Intn(n), src.Intn(n))
	}
	return b.MustGraph()
}

func TestEdgeListRoundTrip(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		g := randomGraph(seed, int(nRaw)%30+1)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		return g2.NumNodes() == g.NumNodes() && reflect.DeepEqual(g2.Edges(), g.Edges())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nn 4\n0 1\n# another\n2 3\n\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 2 {
		t.Fatalf("parsed %v", g)
	}
}

func TestReadEdgeListIsolatedNodes(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("n 10\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 10 || g.Degree(9) != 0 {
		t.Fatal("isolated nodes lost")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"no header":        "0 1\n",
		"missing header":   "# nothing\n",
		"double header":    "n 3\nn 3\n",
		"bad header":       "n x\n",
		"negative header":  "n -1\n",
		"short edge":       "n 3\n1\n",
		"long edge":        "n 3\n1 2 3\n",
		"non-integer edge": "n 3\na b\n",
		"self loop":        "n 3\n1 1\n",
		"duplicate":        "n 3\n0 1\n1 0\n",
		"out of range":     "n 3\n0 7\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := randomGraph(5, 12)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var g2 Graph
	if err := json.Unmarshal(data, &g2); err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || !reflect.DeepEqual(g2.Edges(), g.Edges()) {
		t.Fatal("JSON round trip changed the graph")
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var g Graph
	for name, in := range map[string]string{
		"negative n": `{"n":-1,"edges":[]}`,
		"bad edge":   `{"n":2,"edges":[[0,5]]}`,
		"self loop":  `{"n":2,"edges":[[1,1]]}`,
		"not json":   `{`,
	} {
		if err := json.Unmarshal([]byte(in), &g); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestJSONWireFormat(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}, {1, 2}})
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"n":3,"edges":[[0,1],[1,2]]}`; string(data) != want {
		t.Fatalf("wire format = %s, want %s", data, want)
	}
}
