package graph

import (
	"strings"
	"testing"
)

// TestBuilderEdgeLimit exercises the int32 overflow guard of
// Builder.Graph by lowering the limit to a mockable size: a graph
// cannot allocate 2³⁰ real edges in a unit test, but the guard only
// compares a count, so a lowered edgeLimit drives the exact production
// branch.
func TestBuilderEdgeLimit(t *testing.T) {
	old := edgeLimit
	defer func() { edgeLimit = old }()
	edgeLimit = 4

	// 5 edges on 5 nodes: one beyond the mocked limit.
	b := NewBuilder(5)
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}} {
		b.AddEdge(e[0], e[1])
	}
	if b.NumEdges() != 5 {
		t.Fatalf("builder holds %d edges, want 5", b.NumEdges())
	}
	_, err := b.Graph()
	if err == nil {
		t.Fatal("Graph() accepted an edge count beyond the dense-index limit")
	}
	for _, want := range []string{"5 edges", "dense-index limit of 4", "int32"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("overflow error %q does not mention %q", err, want)
		}
	}

	// Exactly at the limit still builds.
	b2 := NewBuilder(5)
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}} {
		b2.AddEdge(e[0], e[1])
	}
	g, err := b2.Graph()
	if err != nil {
		t.Fatalf("Graph() rejected an edge count at the limit: %v", err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("built graph has %d edges, want 4", g.NumEdges())
	}

	// The guard reports through MustGraph and FromEdges too.
	b3 := NewBuilder(5)
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}} {
		b3.AddEdge(e[0], e[1])
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MustGraph did not panic on overflow")
			}
		}()
		b3.MustGraph()
	}()
}
