package graph

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"overlaymatch/internal/rng"
)

func path5(t *testing.T) *Graph {
	t.Helper()
	return MustFromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
}

func TestEdgeNormalize(t *testing.T) {
	if got := (Edge{3, 1}).Normalize(); got != (Edge{1, 3}) {
		t.Fatalf("Normalize(3,1) = %v", got)
	}
	if got := (Edge{1, 3}).Normalize(); got != (Edge{1, 3}) {
		t.Fatalf("Normalize(1,3) = %v", got)
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{2, 7}
	if e.Other(2) != 7 || e.Other(7) != 2 {
		t.Fatal("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	e.Other(5)
}

func TestBuilderBasics(t *testing.T) {
	g := path5(t)
	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Fatalf("got %v", g)
	}
	wantDeg := []int{1, 2, 2, 2, 1}
	for u, w := range wantDeg {
		if g.Degree(u) != w {
			t.Fatalf("deg(%d) = %d, want %d", u, g.Degree(u), w)
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge symmetric lookup failed")
	}
	if g.HasEdge(0, 2) || g.HasEdge(0, 0) || g.HasEdge(-1, 2) || g.HasEdge(0, 9) {
		t.Fatal("HasEdge accepted a non-edge")
	}
}

func TestBuilderErrorCollection(t *testing.T) {
	cases := map[string]func(b *Builder){
		"self loop":    func(b *Builder) { b.AddEdge(1, 1) },
		"duplicate":    func(b *Builder) { b.AddEdge(0, 1); b.AddEdge(1, 0) },
		"out of range": func(b *Builder) { b.AddEdge(0, 5) },
		"negative":     func(b *Builder) { b.AddEdge(-1, 0) },
	}
	for name, mutate := range cases {
		b := NewBuilder(3)
		mutate(b)
		if _, err := b.Graph(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestTryAddEdge(t *testing.T) {
	b := NewBuilder(3)
	if !b.TryAddEdge(0, 1) {
		t.Fatal("first TryAddEdge rejected")
	}
	if b.TryAddEdge(1, 0) {
		t.Fatal("duplicate TryAddEdge accepted")
	}
	if b.TryAddEdge(1, 1) {
		t.Fatal("self-loop TryAddEdge accepted")
	}
	if b.TryAddEdge(0, 3) {
		t.Fatal("out-of-range TryAddEdge accepted")
	}
	if b.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", b.NumEdges())
	}
	g := b.MustGraph()
	if g.NumEdges() != 1 {
		t.Fatalf("graph edges = %d", g.NumEdges())
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := MustFromEdges(5, []Edge{{4, 2}, {2, 0}, {2, 3}, {2, 1}})
	if !sort.IntsAreSorted(g.Neighbors(2)) {
		t.Fatalf("neighbors of 2 not sorted: %v", g.Neighbors(2))
	}
	if want := []NodeID{0, 1, 3, 4}; !reflect.DeepEqual(g.Neighbors(2), want) {
		t.Fatalf("neighbors of 2 = %v, want %v", g.Neighbors(2), want)
	}
}

func TestEdgesCanonicalSorted(t *testing.T) {
	g := MustFromEdges(4, []Edge{{3, 2}, {1, 0}, {2, 0}})
	want := []Edge{{0, 1}, {0, 2}, {2, 3}}
	if !reflect.DeepEqual(g.Edges(), want) {
		t.Fatalf("edges = %v, want %v", g.Edges(), want)
	}
}

func TestDegreeStats(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	if g.MaxDegree() != 3 || g.MinDegree() != 1 {
		t.Fatalf("max/min degree = %d/%d", g.MaxDegree(), g.MinDegree())
	}
	if got := g.AvgDegree(); got != 1.5 {
		t.Fatalf("avg degree = %v", got)
	}
	empty := NewBuilder(0).MustGraph()
	if empty.MaxDegree() != 0 || empty.MinDegree() != 0 || empty.AvgDegree() != 0 {
		t.Fatal("empty graph degree stats nonzero")
	}
}

func TestComponents(t *testing.T) {
	g := MustFromEdges(7, []Edge{{0, 1}, {1, 2}, {4, 5}})
	comps := g.Components()
	want := [][]NodeID{{0, 1, 2}, {3}, {4, 5}, {6}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("components = %v, want %v", comps, want)
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !path5(t).IsConnected() {
		t.Fatal("path reported disconnected")
	}
	if !NewBuilder(0).MustGraph().IsConnected() {
		t.Fatal("empty graph reported disconnected")
	}
}

func TestBFSDistances(t *testing.T) {
	g := MustFromEdges(6, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 4}})
	dist := g.BFSDistances(0)
	want := []int{0, 1, 2, 3, 1, -1}
	if !reflect.DeepEqual(dist, want) {
		t.Fatalf("distances = %v, want %v", dist, want)
	}
}

func TestSubgraph(t *testing.T) {
	g := MustFromEdges(6, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	sub, back, err := g.Subgraph([]NodeID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("subgraph = %v", sub)
	}
	if !reflect.DeepEqual(back, []NodeID{1, 2, 3}) {
		t.Fatalf("back mapping = %v", back)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Fatal("subgraph edges wrong")
	}
}

func TestSubgraphErrors(t *testing.T) {
	g := path5(t)
	if _, _, err := g.Subgraph([]NodeID{0, 0}); err == nil {
		t.Fatal("duplicate keep node accepted")
	}
	if _, _, err := g.Subgraph([]NodeID{0, 9}); err == nil {
		t.Fatal("out-of-range keep node accepted")
	}
}

// TestAdjacencyEdgeConsistency is a property test: for random graphs,
// the adjacency structure and the edge list must describe the same
// relation, degrees must sum to 2m, and HasEdge must agree with both.
func TestAdjacencyEdgeConsistency(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%20 + 2
		src := rng.New(seed)
		b := NewBuilder(n)
		for k := 0; k < n*2; k++ {
			b.TryAddEdge(src.Intn(n), src.Intn(n))
		}
		g := b.MustGraph()

		degSum := 0
		for u := 0; u < n; u++ {
			degSum += g.Degree(u)
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(u, v) {
					return false
				}
			}
		}
		if degSum != 2*g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if e.U >= e.V || !g.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if got := path5(t).String(); got != "graph{n=5 m=4}" {
		t.Fatalf("String = %q", got)
	}
}
