package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The textual edge-list format is line oriented:
//
//	# comment
//	n <numNodes>
//	<u> <v>
//	<u> <v>
//	...
//
// Blank lines and lines starting with '#' are ignored. The "n" header
// must appear before any edge line. Isolated nodes are representable
// because n is explicit.

// WriteEdgeList serializes g in the textual edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.NumNodes()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the textual edge-list format.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "n" {
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate n header", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: malformed n header %q", lineNo, line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: invalid node count %q", lineNo, fields[1])
			}
			b = NewBuilder(n)
			continue
		}
		if b == nil {
			return nil, fmt.Errorf("graph: line %d: edge before n header", lineNo)
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: malformed edge %q", lineNo, line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph: line %d: non-integer endpoint in %q", lineNo, line)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: missing n header")
	}
	return b.Graph()
}

// jsonGraph is the JSON wire form: {"n": 4, "edges": [[0,1],[1,2]]}.
type jsonGraph struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// MarshalJSON implements json.Marshaler.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{N: g.n, Edges: make([][2]int, len(g.edges))}
	for i, e := range g.edges {
		jg.Edges[i] = [2]int{e.U, e.V}
	}
	return json.Marshal(jg)
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	if jg.N < 0 {
		return fmt.Errorf("graph: negative node count %d", jg.N)
	}
	b := NewBuilder(jg.N)
	for _, e := range jg.Edges {
		b.AddEdge(e[0], e[1])
	}
	built, err := b.Graph()
	if err != nil {
		return err
	}
	*g = *built
	return nil
}
