package satisfaction

import (
	"fmt"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/pref"
)

// PrefixCache remembers, per node, how much of the node's weight list
// is exhausted — every entry before the cursor was, when last scanned,
// unusable for a persistent reason (the neighbor was down, or the edge
// was already matched). Repair loops that repeatedly walk weight lists
// from the heavy end (dynamic.Engine's shed epochs, most visibly) use
// it to resume each scan where the previous epoch stopped finding new
// candidates, instead of re-skipping the same heavy prefix every time.
//
// The contract has two sides:
//
//   - The scanner advances the cursor (Advance) only past a contiguous
//     prefix of entries it skipped for a persistent reason. Entries it
//     consumed as candidates — or skipped for a transient reason — end
//     the advance; they must be revisited next scan.
//   - The mutator invalidates (InvalidateEdge / InvalidateNode) at
//     every point a persistent reason stops holding: an unmatch rewinds
//     both endpoints to the edge's list positions, a node coming back
//     up rewinds every neighbor to that node's position. A new weight
//     table invalidates everything (build a fresh cache).
//
// Under that contract the cache is exact: a cached scan visits exactly
// the candidates a from-zero scan would, so consumers stay
// bit-identical to their uncached form. The invalidation rules are
// spelled out in DESIGN.md §13.
type PrefixCache struct {
	s   *pref.System
	tbl *Table
	cur []int32
	// active flips on the first Advance that actually grows a cursor.
	// While every cursor is still 0 a rewind cannot move anything, so
	// the Invalidate methods return before touching the table's sorted
	// index — consumers that never scan (an engine that never sheds)
	// must not pay the weight-list materialization just for
	// invalidation bookkeeping.
	active bool
	// skipped accumulates the entries Start let scanners not revisit —
	// the cache's value, observable by tests and telemetry.
	skipped int64
}

// NewPrefixCache returns an empty cache (every cursor at 0) over the
// given system and table. The cache is only meaningful for that exact
// table: rebuild the cache whenever the table is rebuilt.
func NewPrefixCache(s *pref.System, tbl *Table) *PrefixCache {
	return &PrefixCache{
		s:   s,
		tbl: tbl,
		cur: make([]int32, s.Graph().NumNodes()),
	}
}

// Start returns the weight-list position node u's scan may resume from:
// every earlier entry is exhausted under the cache contract.
func (c *PrefixCache) Start(u graph.NodeID) int {
	start := int(c.cur[u])
	c.skipped += int64(start)
	return start
}

// Advance extends u's exhausted prefix to end at pos (exclusive). The
// scanner must have verified entries Start(u)..pos-1 exhausted in the
// scan that just finished; the cursor never moves backward here.
func (c *PrefixCache) Advance(u graph.NodeID, pos int) {
	if pos > int(c.tbl.g.Degree(u)) {
		panic(fmt.Sprintf("satisfaction: prefix cursor %d beyond degree %d of node %d",
			pos, c.tbl.g.Degree(u), u))
	}
	if int32(pos) > c.cur[u] {
		c.cur[u] = int32(pos)
		c.active = true
	}
}

// InvalidateEdge rewinds both endpoints of edge {u,v} to the edge's
// weight-list positions: call it when the edge leaves the matching, so
// both nodes rescan it. It panics if u and v are not neighbors.
func (c *PrefixCache) InvalidateEdge(u, v graph.NodeID) {
	if !c.active {
		return
	}
	c.rewind(u, c.tbl.SortedIndex(c.s, u, v))
	c.rewind(v, c.tbl.SortedIndex(c.s, v, u))
}

// InvalidateNode handles node u becoming usable again (a rejoin): every
// neighbor's cursor rewinds to u's position in that neighbor's list,
// and u's own cursor resets — u's world may have changed arbitrarily
// while it was down.
func (c *PrefixCache) InvalidateNode(u graph.NodeID) {
	if !c.active {
		return
	}
	c.cur[u] = 0
	for _, w := range c.tbl.g.Neighbors(u) {
		c.rewind(w, c.tbl.SortedIndex(c.s, w, u))
	}
}

// InvalidateAll resets every cursor.
func (c *PrefixCache) InvalidateAll() {
	clear(c.cur)
}

func (c *PrefixCache) rewind(u graph.NodeID, pos int32) {
	if pos < c.cur[u] {
		c.cur[u] = pos
	}
}

// SkippedTotal returns the cumulative number of list entries Start has
// saved scanners from revisiting.
func (c *PrefixCache) SkippedTotal() int64 { return c.skipped }
