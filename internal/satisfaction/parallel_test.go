package satisfaction

import (
	"sync"
	"testing"

	"overlaymatch/internal/graph"
)

// workerGrid is the worker-count sweep every parallel-equivalence test
// runs: 1 is the legacy serial path, 2/3 exercise uneven shard splits,
// 8 oversubscribes any test machine.
var workerGrid = []int{1, 2, 3, 8}

// TestNewTableParallelBitIdentical verifies the whole deterministic-
// parallelism contract of the table layer at once: for every worker
// count, the edge-key arrays, the packed order keys, and every node's
// lazily-built weight list, incident-edge list, and inverse position
// table must be byte-identical to the serial build.
func TestNewTableParallelBitIdentical(t *testing.T) {
	s := randomSystem(t, 404, 800, 0.02, 3)
	g := s.Graph()
	ref := NewTable(s)
	for _, w := range workerGrid {
		tbl := NewTableParallel(s, w)
		for id := 0; id < g.NumEdges(); id++ {
			if tbl.KeyByID(graph.EdgeID(id)) != ref.KeyByID(graph.EdgeID(id)) {
				t.Fatalf("workers=%d: key of edge %d diverged", w, id)
			}
			if tbl.OrderKeys()[id] != ref.OrderKeys()[id] {
				t.Fatalf("workers=%d: order key of edge %d diverged", w, id)
			}
		}
		for v := 0; v < g.NumNodes(); v++ {
			gotN, wantN := tbl.SortedNeighbors(s, v), ref.SortedNeighbors(s, v)
			gotI, wantI := tbl.SortedIncident(s, v), ref.SortedIncident(s, v)
			gotP, wantP := tbl.WeightListPos(s, v), ref.WeightListPos(s, v)
			for k := range wantN {
				if gotN[k] != wantN[k] || gotI[k] != wantI[k] || gotP[k] != wantP[k] {
					t.Fatalf("workers=%d: node %d weight list diverged at slot %d", w, v, k)
				}
			}
		}
	}
}

// TestBuildSortedOnceRace hammers the sync.Once guarding the lazy
// weight-list build from many goroutines mixing all three accessor
// entry points, on a table whose internal build itself fans out — the
// race detector (make race-core) must stay silent and every caller
// must observe the same fully-built arrays.
func TestBuildSortedOnceRace(t *testing.T) {
	s := randomSystem(t, 405, 300, 0.05, 3)
	g := s.Graph()
	ref := NewTable(s) // built serially up front as the comparison oracle
	for v := 0; v < g.NumNodes(); v++ {
		ref.SortedNeighbors(s, v)
	}
	tbl := NewTableParallel(s, 4) // buildSorted will fan out inside the Once
	const goroutines = 24
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := w % g.NumNodes(); v < g.NumNodes(); v += 3 {
				switch w % 3 {
				case 0:
					got := tbl.SortedNeighbors(s, v)
					want := ref.SortedNeighbors(s, v)
					for k := range want {
						if got[k] != want[k] {
							errs <- "SortedNeighbors diverged"
							return
						}
					}
				case 1:
					got := tbl.SortedIncident(s, v)
					want := ref.SortedIncident(s, v)
					for k := range want {
						if got[k] != want[k] {
							errs <- "SortedIncident diverged"
							return
						}
					}
				default:
					got := tbl.WeightListPos(s, v)
					want := ref.WeightListPos(s, v)
					for k := range want {
						if got[k] != want[k] {
							errs <- "WeightListPos diverged"
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestValueAllocBudget pins the hot-path fix: Value must not allocate
// per call (the duplicate check borrows pooled epoch-stamped scratch
// instead of building a map).
func TestValueAllocBudget(t *testing.T) {
	s := randomSystem(t, 406, 120, 0.2, 4)
	g := s.Graph()
	var node graph.NodeID = -1
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(v) >= 4 {
			node = v
			break
		}
	}
	if node < 0 {
		t.Fatal("no node with degree >= 4 in the test system")
	}
	conns := append([]graph.NodeID(nil), g.Neighbors(node)[:4]...)
	if avg := testing.AllocsPerRun(200, func() {
		_ = Value(s, node, conns)
	}); avg > 0 {
		t.Fatalf("Value allocates %v per call, want 0", avg)
	}
}

// TestValueScratchReuse drives the pooled scratch through growth and
// many stamps: repeated calls across nodes of different degrees keep
// detecting duplicates correctly.
func TestValueScratchReuse(t *testing.T) {
	s := randomSystem(t, 407, 80, 0.3, 3)
	g := s.Graph()
	for round := 0; round < 5; round++ {
		for v := 0; v < g.NumNodes(); v++ {
			if g.Degree(v) == 0 {
				continue
			}
			k := min(s.Quota(v), g.Degree(v))
			conns := append([]graph.NodeID(nil), g.Neighbors(v)[:k]...)
			if got := Value(s, v, conns); got <= 0 || got > 1+eps {
				t.Fatalf("round %d node %d: Value = %v out of range", round, v, got)
			}
		}
	}
	// Duplicates must still panic after all that reuse.
	var v graph.NodeID = -1
	for u := 0; u < g.NumNodes(); u++ {
		if g.Degree(u) >= 1 && s.Quota(u) >= 2 {
			v = u
			break
		}
	}
	if v < 0 {
		t.Fatal("no suitable node")
	}
	j := g.Neighbors(v)[0]
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate connection did not panic")
		}
	}()
	Value(s, v, []graph.NodeID{j, j})
}
