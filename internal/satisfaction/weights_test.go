package satisfaction

import (
	"sort"
	"testing"
	"testing/quick"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/pref"
)

func TestEdgeWeightSymmetric(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		s := randomSystem(t, seed, int(nRaw)%15+3, 0.5, 2)
		for _, e := range s.Graph().Edges() {
			rev := graph.Edge{U: e.V, V: e.U}
			if EdgeWeight(s, e) != EdgeWeight(s, rev) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeWeightIsSumOfStaticDeltas(t *testing.T) {
	s := randomSystem(t, 7, 12, 0.6, 3)
	for _, e := range s.Graph().Edges() {
		want := StaticDelta(s, e.U, e.V) + StaticDelta(s, e.V, e.U)
		if got := EdgeWeight(s, e); !almostEqual(got, want) {
			t.Fatalf("edge %v weight %v, want %v", e, got, want)
		}
	}
}

func TestEdgeWeightRange(t *testing.T) {
	// Each static delta is in (0, 1/bi], so weights lie in (0, 2].
	check := func(seed uint64, nRaw, bRaw uint8) bool {
		s := randomSystem(t, seed, int(nRaw)%15+3, 0.6, int(bRaw)%4+1)
		for _, e := range s.Graph().Edges() {
			w := EdgeWeight(s, e)
			if w <= 0 || w > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExactEdgeWeightMatchesFloat(t *testing.T) {
	// The float weight order must agree with the exact rational order
	// whenever the rationals differ by a representable margin; on the
	// test sizes the agreement must be exact.
	s := randomSystem(t, 21, 14, 0.7, 3)
	edges := s.Graph().Edges()
	for a := 0; a < len(edges); a++ {
		for b := a + 1; b < len(edges); b++ {
			exact := ExactEdgeWeight(s, edges[a]).Cmp(ExactEdgeWeight(s, edges[b]))
			fa, fb := EdgeWeight(s, edges[a]), EdgeWeight(s, edges[b])
			switch {
			case exact > 0 && fa <= fb:
				t.Fatalf("order mismatch: %v exact-heavier than %v but floats %v <= %v",
					edges[a], edges[b], fa, fb)
			case exact < 0 && fa >= fb:
				t.Fatalf("order mismatch: %v exact-lighter than %v but floats %v >= %v",
					edges[a], edges[b], fa, fb)
			}
		}
	}
}

func TestWeightKeyStrictTotalOrder(t *testing.T) {
	s := randomSystem(t, 31, 16, 0.5, 2)
	tbl := NewTable(s)
	edges := s.Graph().Edges()
	keys := make([]WeightKey, len(edges))
	for i, e := range edges {
		keys[i] = tbl.Key(e.U, e.V)
	}
	// Antisymmetric and total: exactly one of a≻b, b≻a for a≠b.
	for a := range keys {
		for b := range keys {
			ha, hb := keys[a].Heavier(keys[b]), keys[b].Heavier(keys[a])
			if a == b {
				if ha || hb {
					t.Fatal("key heavier than itself")
				}
				continue
			}
			if ha == hb {
				t.Fatalf("order not strict between %v and %v", keys[a], keys[b])
			}
		}
	}
	// Transitive: sort then verify adjacent chain implies full chain.
	sort.Slice(keys, func(i, j int) bool { return keys[i].Heavier(keys[j]) })
	for i := 0; i+1 < len(keys); i++ {
		if keys[i+1].Heavier(keys[i]) {
			t.Fatal("sorted order violated")
		}
	}
}

func TestWeightKeyTieBreakByID(t *testing.T) {
	// A 4-cycle with uniform quotas and "everyone equally liked" has
	// all edge weights equal; IDs must break ties deterministically.
	g := gen.Ring(4)
	lists := [][]graph.NodeID{{1, 3}, {0, 2}, {1, 3}, {0, 2}}
	s, err := pref.FromRanks(g, lists, []int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(s)
	k01 := tbl.Key(0, 1)
	k23 := tbl.Key(2, 3)
	if !k01.Heavier(k23) {
		t.Fatal("tie-break should prefer lower canonical IDs")
	}
	if k01.Edge() != (graph.Edge{U: 0, V: 1}) {
		t.Fatalf("Edge() = %v", k01.Edge())
	}
}

func TestTableKeyPanicsOnMissingEdge(t *testing.T) {
	s := randomSystem(t, 1, 8, 0.3, 2)
	tbl := NewTable(s)
	// Find a non-edge.
	g := s.Graph()
	for u := 0; u < g.NumNodes(); u++ {
		for v := u + 1; v < g.NumNodes(); v++ {
			if !g.HasEdge(u, v) {
				defer func() {
					if recover() == nil {
						t.Fatal("Key on non-edge did not panic")
					}
				}()
				tbl.Key(u, v)
				return
			}
		}
	}
	t.Skip("graph complete; no non-edge to test")
}

func TestSortedNeighborsDescending(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		s := randomSystem(t, seed, int(nRaw)%15+3, 0.6, 2)
		tbl := NewTable(s)
		for u := 0; u < s.Graph().NumNodes(); u++ {
			sorted := tbl.SortedNeighbors(s, u)
			if len(sorted) != s.Graph().Degree(u) {
				return false
			}
			for i := 0; i+1 < len(sorted); i++ {
				if tbl.Key(u, sorted[i+1]).Heavier(tbl.Key(u, sorted[i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableHeavierConvenience(t *testing.T) {
	s := randomSystem(t, 3, 10, 0.8, 2)
	tbl := NewTable(s)
	u := 0
	neigh := s.Graph().Neighbors(u)
	if len(neigh) < 2 {
		t.Skip("node 0 too sparse for this seed")
	}
	a, b := neigh[0], neigh[1]
	want := tbl.Key(u, a).Heavier(tbl.Key(u, b))
	if got := tbl.Heavier(u, a, b); got != want {
		t.Fatalf("Heavier = %v, want %v", got, want)
	}
}
