// Package satisfaction implements the paper's optimization metric (§3)
// and its static approximation (§4): node satisfaction (eq. 1), the
// per-connection satisfaction increase ΔSij and its static/dynamic
// decomposition (eq. 4, eq. 7), the modified static-only forms
// (eq. 5, 6), the symmetric edge weights that convert the modified
// problem into a many-to-many maximum weighted matching (eq. 9), and
// the proven bounds of Lemma 1 and Theorem 3.
//
// Conventions follow the paper exactly: ranks are 0-based
// (Ri(j) ∈ {0,...,|Li|−1}, 0 = most desirable), Qi(j) is j's 0-based
// position in node i's connection list ordered by decreasing
// preference, ci = |Ci| ≤ bi, and Li denotes (by abuse of notation, as
// in the paper) both the preference list and its length.
package satisfaction

import (
	"fmt"
	"math"
	"math/big"
	"slices"
	"sort"
	"sync"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/par"
	"overlaymatch/internal/pref"
)

// dupScratch is the epoch-stamped duplicate detector Value borrows per
// call (the same pattern as pref's validator): seen[r] == stamp marks
// rank r as taken in the current call, and bumping stamp invalidates
// every mark in O(1), so the slice is cleared only when it grows or the
// stamp wraps. Pooled so the hot churn/experiment loops that call Value
// per node per event stop paying a map allocation each time.
type dupScratch struct {
	seen  []uint32
	stamp uint32
}

var dupScratchPool = sync.Pool{New: func() any { return new(dupScratch) }}

// next prepares the scratch for one call needing `size` slots.
func (d *dupScratch) next(size int) {
	if cap(d.seen) < size {
		d.seen = make([]uint32, size)
		d.stamp = 0
	}
	d.seen = d.seen[:size]
	d.stamp++
	if d.stamp == 0 {
		clear(d.seen)
		d.stamp = 1
	}
}

// Value computes Si (eq. 1) for node i connected to the given
// neighbors. The connection set need not be sorted; it is ranked
// internally. Nodes with an empty preference list have satisfaction 0.
// It panics if the connections exceed the quota, repeat, or are not
// neighbors of i — callers must pass a feasible connection set.
func Value(s *pref.System, i graph.NodeID, conns []graph.NodeID) float64 {
	li := float64(s.ListLen(i))
	bi := float64(s.Quota(i))
	if li == 0 || bi == 0 {
		if len(conns) > 0 {
			panic(fmt.Sprintf("satisfaction: node %d has quota 0 but %d connections", i, len(conns)))
		}
		return 0
	}
	ci := float64(len(conns))
	if len(conns) > s.Quota(i) {
		panic(fmt.Sprintf("satisfaction: node %d has %d connections, quota %d", i, len(conns), s.Quota(i)))
	}
	// Duplicate detection rides on the ranks: Li is a strict total
	// order, so two equal connections are exactly two equal ranks. The
	// rank-indexed epoch scratch replaces the map this loop used to
	// allocate per call.
	var rankSum float64
	d := dupScratchPool.Get().(*dupScratch)
	d.next(s.ListLen(i))
	for _, j := range conns {
		r := s.Rank(i, j) // panics if j is not a neighbor
		if d.seen[r] == d.stamp {
			dupScratchPool.Put(d)
			panic(fmt.Sprintf("satisfaction: node %d connected to %d twice", i, j))
		}
		d.seen[r] = d.stamp
		rankSum += float64(r)
	}
	dupScratchPool.Put(d)
	// Eq. 1: Si = ci/bi + ci(ci−1)/(2 bi Li) − Σ Ri(j)/(bi Li).
	return ci/bi + ci*(ci-1)/(2*bi*li) - rankSum/(bi*li)
}

// Delta computes ΔSij (eq. 4): the increase in node i's satisfaction
// from taking neighbor j as its (q+1)-th best connection, where q is
// j's 0-based position Qi(j) in the final connection list. It panics if
// j is not i's neighbor or q is outside [0, bi).
func Delta(s *pref.System, i, j graph.NodeID, q int) float64 {
	bi := float64(s.Quota(i))
	li := float64(s.ListLen(i))
	if q < 0 || q >= s.Quota(i) {
		panic(fmt.Sprintf("satisfaction: connection position %d outside [0,%d)", q, s.Quota(i)))
	}
	ri := float64(s.Rank(i, j))
	// Eq. 4: ΔSij = (1 − Ri(j)/Li)/bi + Qi(j)/(bi·Li).
	return (1-ri/li)/bi + float64(q)/(bi*li)
}

// StaticDelta computes the execution-independent part of ΔSij (eq. 5):
// ΔS̄ij = (1 − Ri(j)/Li)/bi. This is the quantity peers disclose to
// each other; it never reveals the metric itself.
func StaticDelta(s *pref.System, i, j graph.NodeID) float64 {
	bi := float64(s.Quota(i))
	li := float64(s.ListLen(i))
	ri := float64(s.Rank(i, j))
	return (1 - ri/li) / bi
}

// DynamicDelta computes the execution-varying part of ΔSij (eq. 4,
// second parenthesis): Qi(j)/(bi·Li) for connection position q = Qi(j).
func DynamicDelta(s *pref.System, i graph.NodeID, q int) float64 {
	bi := float64(s.Quota(i))
	li := float64(s.ListLen(i))
	if li == 0 {
		return 0
	}
	return float64(q) / (bi * li)
}

// ModifiedValue computes S̄i (eq. 6), the static-only satisfaction:
// S̄i = ci/bi − Σ Ri(j)/(bi Li) = Σ_j ΔS̄ij.
func ModifiedValue(s *pref.System, i graph.NodeID, conns []graph.NodeID) float64 {
	li := float64(s.ListLen(i))
	bi := float64(s.Quota(i))
	if li == 0 || bi == 0 {
		return 0
	}
	if len(conns) > s.Quota(i) {
		panic(fmt.Sprintf("satisfaction: node %d has %d connections, quota %d", i, len(conns), s.Quota(i)))
	}
	var rankSum float64
	for _, j := range conns {
		rankSum += float64(s.Rank(i, j))
	}
	ci := float64(len(conns))
	return ci/bi - rankSum/(bi*li)
}

// Split returns the static and dynamic parts (Sis, Sid) of node i's
// satisfaction (eq. 7); Value(s,i,conns) == Sis + Sid up to rounding.
func Split(s *pref.System, i graph.NodeID, conns []graph.NodeID) (static, dynamic float64) {
	static = ModifiedValue(s, i, conns)
	for q := 0; q < len(conns); q++ {
		dynamic += DynamicDelta(s, i, q)
	}
	return static, dynamic
}

// sortByPreference returns conns ordered by decreasing preference of
// node i (the connection list Ci of the paper).
func sortByPreference(s *pref.System, i graph.NodeID, conns []graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), conns...)
	slices.SortFunc(out, func(a, b graph.NodeID) int {
		return s.Rank(i, a) - s.Rank(i, b)
	})
	return out
}

// ConnectionList returns Ci for node i: the connections ordered by
// decreasing preference, so that Qi(Ci[q]) = q.
func ConnectionList(s *pref.System, i graph.NodeID, conns []graph.NodeID) []graph.NodeID {
	return sortByPreference(s, i, conns)
}

// Lemma1Bound returns ½(1 + 1/b), the approximation factor the modified
// (static-only) problem guarantees for the true satisfaction objective
// when every quota is at most b (Lemma 1). It panics for b < 1.
func Lemma1Bound(b int) float64 {
	if b < 1 {
		panic("satisfaction: Lemma1Bound needs b >= 1")
	}
	return 0.5 * (1 + 1/float64(b))
}

// Theorem3Bound returns ¼(1 + 1/bmax), the end-to-end approximation
// factor of LID for the maximizing-satisfaction b-matching problem
// (Theorem 3). It panics for bmax < 1.
func Theorem3Bound(bmax int) float64 {
	if bmax < 1 {
		panic("satisfaction: Theorem3Bound needs bmax >= 1")
	}
	return 0.25 * (1 + 1/float64(bmax))
}

// EdgeWeight computes w(i,j) (eq. 9): the sum of the two endpoints'
// static satisfaction increases. Symmetric by construction.
func EdgeWeight(s *pref.System, e graph.Edge) float64 {
	return StaticDelta(s, e.U, e.V) + StaticDelta(s, e.V, e.U)
}

// ExactEdgeWeight returns w(i,j) as an exact rational
// (Li−Ri(j))/(Li·bi) + (Lj−Rj(i))/(Lj·bj), for validating the float
// total order in tests.
func ExactEdgeWeight(s *pref.System, e graph.Edge) *big.Rat {
	term := func(i, j graph.NodeID) *big.Rat {
		li := int64(s.ListLen(i))
		bi := int64(s.Quota(i))
		ri := int64(s.Rank(i, j))
		return big.NewRat(li-ri, li*bi)
	}
	return new(big.Rat).Add(term(e.U, e.V), term(e.V, e.U))
}

// WeightKey is the strict total order on edges that LIC and LID share:
// weight descending, ties broken by canonical endpoint IDs ascending.
// The paper assumes unique edge weights with "ties broken using node
// identities"; WeightKey realizes that assumption. The order is
// symmetric (both endpoints of an edge compute the same key), which is
// what Lemma 5's termination argument needs.
type WeightKey struct {
	W    float64
	U, V graph.NodeID // canonical: U < V
}

// KeyFor builds the WeightKey of edge e under system s.
func KeyFor(s *pref.System, e graph.Edge) WeightKey {
	e = e.Normalize()
	return WeightKey{W: EdgeWeight(s, e), U: e.U, V: e.V}
}

// Heavier reports whether a is strictly heavier than b in the shared
// total order.
func (a WeightKey) Heavier(b WeightKey) bool {
	if a.W != b.W {
		return a.W > b.W
	}
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// Edge returns the canonical edge this key refers to.
func (a WeightKey) Edge() graph.Edge { return graph.Edge{U: a.U, V: a.V} }

// Table precomputes every edge's WeightKey for a system, providing the
// weight lists the LID description calls for. Keys live in one flat
// array indexed by the graph's dense EdgeID; the per-node weight lists
// and their inverse position tables are flat CSR-aligned arrays shared
// by all nodes. It is immutable after construction and safe for
// concurrent reads (the weight-list cache is built once, guarded by a
// sync.Once).
type Table struct {
	g       *graph.Graph
	keys    []WeightKey // indexed by graph.EdgeID
	ord     []uint64    // packed order keys, aligned with keys (see OrderKeys)
	workers int         // fan-out of buildSorted (1 = the legacy serial path)

	sortedOnce sync.Once
	sorted     [][]graph.NodeID // per-node neighbors by descending weight (views into one buffer)
	sortedInc  []graph.EdgeID   // flat, aligned with sorted: the incident EdgeID per entry
	// posInSorted is CSR-aligned with the graph's adjacency: entry
	// IncidenceOffset(u)+k is the weight-list position of neighbor
	// Neighbors(u)[k] — the inverse of sorted, as one flat array
	// instead of a map per node.
	posInSorted []int32
}

// NewTable computes weights for every edge of the system's graph on
// the calling goroutine (the workers=1 path of NewTableParallel).
func NewTable(s *pref.System) *Table { return NewTableParallel(s, 1) }

// NewTableParallel is NewTable with the per-edge weight computation
// fanned out over `workers` goroutines (0 = GOMAXPROCS) in contiguous
// EdgeID-range shards. Each shard writes only its own disjoint slice of
// the two flat EdgeID-indexed arrays and each entry depends only on the
// immutable System, so the result is bit-identical to NewTable for any
// worker count; workers <= 1 runs the loop inline with no goroutines.
// The worker count is retained: the table's lazily-built weight lists
// (buildSorted) use the same fan-out on first access.
func NewTableParallel(s *pref.System, workers int) *Table {
	g := s.Graph()
	t := &Table{
		g:       g,
		keys:    make([]WeightKey, g.NumEdges()),
		ord:     make([]uint64, g.NumEdges()),
		workers: par.Workers(workers),
	}
	edges := g.Edges()
	par.ForEachChunk(len(edges), t.workers, func(lo, hi int) {
		for id := lo; id < hi; id++ {
			t.keys[id] = KeyFor(s, edges[id])
			t.ord[id] = orderKey(t.keys[id].W)
		}
	})
	return t
}

// orderKey maps a weight to a uint64 such that heavier sorts as
// numerically smaller: the standard monotone float64→uint64 bit
// transform, complemented. Equal weights collide, where the shared
// order falls back to canonical endpoints ascending — which for dense
// EdgeIDs is simply the smaller id (edges are stored in lexicographic
// order), so (OrderKeys()[id], id) ascending IS the total order.
func orderKey(w float64) uint64 {
	b := math.Float64bits(w)
	if b&(1<<63) != 0 {
		b = ^b
	} else {
		b |= 1 << 63
	}
	return ^b
}

// OrderKeys returns the EdgeID-aligned packed order keys: sorting
// EdgeIDs by (OrderKeys()[id], id) ascending yields exactly the
// heaviest-first total order of Heavier. The slice is shared and must
// not be mutated.
func (t *Table) OrderKeys() []uint64 { return t.ord }

// Key returns the WeightKey of edge {u,v}. It panics if the edge does
// not exist.
func (t *Table) Key(u, v graph.NodeID) WeightKey {
	id, ok := t.g.EdgeIDOf(u, v)
	if !ok {
		panic(fmt.Sprintf("satisfaction: no weight for edge (%d,%d)", u, v))
	}
	return t.keys[id]
}

// KeyByID returns the WeightKey of the edge with the given dense id —
// the O(1) lookup for callers already holding EdgeIDs.
func (t *Table) KeyByID(id graph.EdgeID) WeightKey { return t.keys[id] }

// Heavier reports whether edge {u,a} is strictly heavier than {u,b}
// under the table's order (a convenience for per-node weight lists).
func (t *Table) Heavier(u, a, b graph.NodeID) bool {
	return t.Key(u, a).Heavier(t.Key(u, b))
}

// SortedNeighbors returns u's neighbors ordered by decreasing edge
// weight — the node's "weight list" from §5. Lists for all nodes are
// computed once on first use and cached (protocol runs re-create their
// per-run node state, but the weight lists never change); the caller
// must not modify the result.
func (t *Table) SortedNeighbors(s *pref.System, u graph.NodeID) []graph.NodeID {
	t.buildSorted(s)
	return t.sorted[u]
}

// SortedIncident returns the EdgeIDs of u's incident edges in
// decreasing weight order, aligned with SortedNeighbors (entry k is
// the edge {u, SortedNeighbors(u)[k]}). Shared and read-only.
func (t *Table) SortedIncident(s *pref.System, u graph.NodeID) []graph.EdgeID {
	t.buildSorted(s)
	off := t.g.IncidenceOffset(u)
	return t.sortedInc[off : int(off)+t.g.Degree(u)]
}

// SortedIndex returns the position of neighbor v in u's weight list
// (the inverse of SortedNeighbors); shared and read-only like the
// lists themselves. It panics if v is not a neighbor of u.
func (t *Table) SortedIndex(s *pref.System, u, v graph.NodeID) int32 {
	t.buildSorted(s)
	k, ok := t.g.NeighborIndex(u, v)
	if !ok {
		panic(fmt.Sprintf("satisfaction: %d is not a neighbor of %d", v, u))
	}
	return t.posInSorted[t.g.IncidenceOffset(u)+int32(k)]
}

// WeightListPos returns u's full CSR-aligned position table: entry k is
// the weight-list position of Neighbors(u)[k] (shared, read-only).
// Protocol nodes use it as their neighbor→weight-list index, replacing
// the per-node maps they used to allocate.
func (t *Table) WeightListPos(s *pref.System, u graph.NodeID) []int32 {
	t.buildSorted(s)
	off := t.g.IncidenceOffset(u)
	return t.posInSorted[off : int(off)+t.g.Degree(u)]
}

// buildSorted materializes the per-node weight lists once. Node shards
// fan out over the table's worker count: every node's output region
// (its CSR slice of buf/sortedInc/posInSorted and its t.sorted entry)
// is disjoint from every other node's, each node's sort reads only the
// immutable keys, and per-worker `perm` scratch lives at the top of
// the chunk — so the arrays are bit-identical for any worker count,
// and workers <= 1 is the legacy serial loop verbatim.
func (t *Table) buildSorted(s *pref.System) {
	t.sortedOnce.Do(func() {
		g := s.Graph()
		n := g.NumNodes()
		total := 2 * g.NumEdges()
		buf := make([]graph.NodeID, total)
		t.sorted = make([][]graph.NodeID, n)
		t.sortedInc = make([]graph.EdgeID, total)
		t.posInSorted = make([]int32, total)
		par.ForEachChunk(n, t.workers, func(lo, hi int) {
			perm := make([]int32, g.MaxDegree())
			for v := lo; v < hi; v++ {
				off := int(g.IncidenceOffset(v))
				neigh := g.Neighbors(v)
				incident := g.IncidentEdges(v)
				p := perm[:len(neigh)]
				for i := range p {
					p[i] = int32(i)
				}
				sort.Slice(p, func(a, b int) bool {
					return t.keys[incident[p[a]]].Heavier(t.keys[incident[p[b]]])
				})
				list := buf[off : off+len(neigh)]
				for k, orig := range p {
					list[k] = neigh[orig]
					t.sortedInc[off+k] = incident[orig]
					t.posInSorted[off+int(orig)] = int32(k)
				}
				t.sorted[v] = list
			}
		})
	})
}
