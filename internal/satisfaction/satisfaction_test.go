package satisfaction

import (
	"math"
	"testing"
	"testing/quick"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
)

const eps = 1e-12

func almostEqual(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

// starSystem builds a star with node 0 in the center ranking leaves
// 1..n-1 in ascending-ID order (leaf k has rank k-1) and quota b.
func starSystem(t *testing.T, n, b int) *pref.System {
	t.Helper()
	g := gen.Star(n)
	s, err := pref.Build(g,
		pref.MetricFunc(func(i, j graph.NodeID) float64 { return -float64(j) }),
		pref.UniformQuota(b))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomSystem builds a random graph + random preferences.
func randomSystem(t testing.TB, seed uint64, n int, p float64, b int) *pref.System {
	src := rng.New(seed)
	g := gen.GNP(src, n, p)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(b))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValueEmptyConnections(t *testing.T) {
	s := starSystem(t, 6, 2)
	if got := Value(s, 0, nil); got != 0 {
		t.Fatalf("empty connection satisfaction = %v", got)
	}
}

func TestValueTopChoicesIsOne(t *testing.T) {
	// Eq. 1 attains 1 exactly when the bi connections are the top-bi
	// ranked neighbors.
	s := starSystem(t, 8, 3)
	if got := Value(s, 0, []graph.NodeID{1, 2, 3}); !almostEqual(got, 1) {
		t.Fatalf("top-3 satisfaction = %v, want 1", got)
	}
}

func TestValueWorstChoices(t *testing.T) {
	// Bottom-bi choices: ranks Li−bi .. Li−1.
	// Si = 1 + bi(bi−1)/(2 bi Li) − Σranks/(bi Li).
	s := starSystem(t, 8, 3) // center: Li = 7, b = 3, bottom ranks 4,5,6
	got := Value(s, 0, []graph.NodeID{5, 6, 7})
	want := 1.0 + 3.0*2.0/(2*3*7) - float64(4+5+6)/(3*7)
	if !almostEqual(got, want) {
		t.Fatalf("bottom-3 satisfaction = %v, want %v", got, want)
	}
}

func TestValueRangeProperty(t *testing.T) {
	// Si ∈ [0,1] for every feasible connection set.
	check := func(seed uint64, nRaw, bRaw, pick uint8) bool {
		n := int(nRaw)%12 + 3
		b := int(bRaw)%3 + 1
		s := randomSystem(t, seed, n, 0.6, b)
		src := rng.New(seed ^ 0xabcdef)
		for i := 0; i < n; i++ {
			neigh := s.Graph().Neighbors(i)
			if len(neigh) == 0 {
				continue
			}
			k := int(pick) % (min(s.Quota(i), len(neigh)) + 1)
			conns := make([]graph.NodeID, 0, k)
			for _, idx := range src.Sample(len(neigh), k) {
				conns = append(conns, neigh[idx])
			}
			v := Value(s, i, conns)
			if v < -eps || v > 1+eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValueEqualsSumOfDeltas(t *testing.T) {
	// Eq. 1 must equal Σ_j ΔSij with Qi(j) = position in the
	// preference-ordered connection list (the derivation in §3).
	check := func(seed uint64, nRaw, bRaw uint8) bool {
		n := int(nRaw)%12 + 3
		b := int(bRaw)%4 + 1
		s := randomSystem(t, seed, n, 0.6, b)
		src := rng.New(seed + 1)
		for i := 0; i < n; i++ {
			neigh := s.Graph().Neighbors(i)
			if len(neigh) == 0 {
				continue
			}
			k := min(s.Quota(i), len(neigh))
			conns := make([]graph.NodeID, 0, k)
			for _, idx := range src.Sample(len(neigh), k) {
				conns = append(conns, neigh[idx])
			}
			want := Value(s, i, conns)
			var got float64
			for q, j := range ConnectionList(s, i, conns) {
				got += Delta(s, i, j, q)
			}
			if !almostEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperWorkedExampleShape(t *testing.T) {
	// §3's example: satisfaction is ci/bi minus, for each connection,
	// (Ri(j) − Qi(j))/(bi·Li). Construct a concrete instance mirroring
	// Fig. 1: bi = 4, |Li| = 14, connections at preference ranks
	// 0, 1, 3, 5 (so nodes deviate from the optimal slots by 0,0,1,2).
	g := gen.Star(15)
	lists := make([][]graph.NodeID, 15)
	lists[0] = []graph.NodeID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}
	for i := 1; i < 15; i++ {
		lists[i] = []graph.NodeID{0}
	}
	quotas := make([]int, 15)
	quotas[0] = 4
	for i := 1; i < 15; i++ {
		quotas[i] = 1
	}
	s, err := pref.FromRanks(g, lists, quotas)
	if err != nil {
		t.Fatal(err)
	}
	conns := []graph.NodeID{1, 2, 4, 6} // ranks 0,1,3,5
	got := Value(s, 0, conns)
	// ci/bi = 1; penalties (Ri−Qi)/(bi·Li): (0−0),(1−1),(3−2),(5−3)
	want := 1.0 - (1.0+2.0)/(4*14)
	if !almostEqual(got, want) {
		t.Fatalf("worked example = %v, want %v", got, want)
	}
	// And it must agree with the defining eq. 1 (which Value uses).
	direct := 4.0/4.0 + 4*3/(2*4*14.0) - float64(0+1+3+5)/(4*14)
	if !almostEqual(got, direct) {
		t.Fatalf("eq.1 direct %v != Value %v", direct, got)
	}
}

func TestValuePanics(t *testing.T) {
	s := starSystem(t, 6, 2)
	for name, f := range map[string]func(){
		"over quota":   func() { Value(s, 0, []graph.NodeID{1, 2, 3}) },
		"duplicate":    func() { Value(s, 0, []graph.NodeID{1, 1}) },
		"non-neighbor": func() { Value(s, 1, []graph.NodeID{2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDeltaStaticDynamicDecomposition(t *testing.T) {
	// Eq. 4 = eq. 5 static part + dynamic part, for every rank and slot.
	s := starSystem(t, 10, 4)
	for _, j := range s.Graph().Neighbors(0) {
		for q := 0; q < 4; q++ {
			want := StaticDelta(s, 0, j) + DynamicDelta(s, 0, q)
			if got := Delta(s, 0, j, q); !almostEqual(got, want) {
				t.Fatalf("Delta(0,%d,%d) = %v, want %v", j, q, got, want)
			}
		}
	}
}

func TestDeltaPanicsOnBadSlot(t *testing.T) {
	s := starSystem(t, 6, 2)
	for _, q := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("q=%d: expected panic", q)
				}
			}()
			Delta(s, 0, 1, q)
		}()
	}
}

func TestSplitSumsToValue(t *testing.T) {
	check := func(seed uint64, nRaw, bRaw uint8) bool {
		n := int(nRaw)%12 + 3
		b := int(bRaw)%4 + 1
		s := randomSystem(t, seed, n, 0.5, b)
		src := rng.New(seed + 2)
		for i := 0; i < n; i++ {
			neigh := s.Graph().Neighbors(i)
			if len(neigh) == 0 {
				continue
			}
			k := min(s.Quota(i), len(neigh))
			conns := make([]graph.NodeID, 0, k)
			for _, idx := range src.Sample(len(neigh), k) {
				conns = append(conns, neigh[idx])
			}
			static, dynamic := Split(s, i, conns)
			if !almostEqual(static+dynamic, Value(s, i, conns)) {
				return false
			}
			if static < -eps || dynamic < -eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestModifiedValueEqualsStaticDeltaSum(t *testing.T) {
	s := starSystem(t, 9, 3)
	conns := []graph.NodeID{2, 5, 8}
	var want float64
	for _, j := range conns {
		want += StaticDelta(s, 0, j)
	}
	if got := ModifiedValue(s, 0, conns); !almostEqual(got, want) {
		t.Fatalf("ModifiedValue = %v, want %v", got, want)
	}
}

func TestLemma1WorstCaseInstance(t *testing.T) {
	// Lemma 1's proof: with connections drawn from the bottom of the
	// preference list and ci = bi, the static share equals exactly
	// (bi+1)/(2Li) / (bi/Li) ... i.e. Sis/(Sis+Sid) = ½(1+1/bi).
	// Reconstruct that instance and check the arithmetic of the proof.
	for _, tc := range []struct{ li, bi int }{{4, 2}, {6, 3}, {10, 5}, {7, 1}, {12, 4}} {
		g := gen.Star(tc.li + 1)
		lists := make([][]graph.NodeID, tc.li+1)
		quotas := make([]int, tc.li+1)
		lists[0] = make([]graph.NodeID, tc.li)
		for k := 0; k < tc.li; k++ {
			lists[0][k] = k + 1
			lists[k+1] = []graph.NodeID{0}
			quotas[k+1] = 1
		}
		quotas[0] = tc.bi
		s, err := pref.FromRanks(g, lists, quotas)
		if err != nil {
			t.Fatal(err)
		}
		// Bottom bi of the list: ranks Li−bi .. Li−1.
		conns := lists[0][tc.li-tc.bi:]
		static, dynamic := Split(s, 0, conns)
		wantStatic := (float64(tc.bi) + 1) / (2 * float64(tc.li))
		wantDynamic := (float64(tc.bi) - 1) / (2 * float64(tc.li))
		if !almostEqual(static, wantStatic) || !almostEqual(dynamic, wantDynamic) {
			t.Fatalf("Li=%d bi=%d: split = (%v,%v), want (%v,%v)",
				tc.li, tc.bi, static, dynamic, wantStatic, wantDynamic)
		}
		share := static / (static + dynamic)
		if !almostEqual(share, Lemma1Bound(tc.bi)) {
			t.Fatalf("Li=%d bi=%d: static share %v != Lemma1Bound %v",
				tc.li, tc.bi, share, Lemma1Bound(tc.bi))
		}
	}
}

func TestStaticShareAlwaysAtLeastLemma1Bound(t *testing.T) {
	// For any connection set, Sis/(Sis+Sid) ≥ ½(1+1/bi) — the lemma
	// says the reconstructed case is the worst.
	check := func(seed uint64, nRaw, bRaw uint8) bool {
		n := int(nRaw)%12 + 3
		b := int(bRaw)%4 + 1
		s := randomSystem(t, seed, n, 0.7, b)
		src := rng.New(seed + 3)
		for i := 0; i < n; i++ {
			neigh := s.Graph().Neighbors(i)
			if len(neigh) == 0 {
				continue
			}
			k := min(s.Quota(i), len(neigh))
			if k == 0 {
				continue
			}
			kk := src.Intn(k) + 1
			conns := make([]graph.NodeID, 0, kk)
			for _, idx := range src.Sample(len(neigh), kk) {
				conns = append(conns, neigh[idx])
			}
			static, dynamic := Split(s, i, conns)
			if static+dynamic <= eps {
				continue
			}
			if static/(static+dynamic) < Lemma1Bound(s.Quota(i))-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBounds(t *testing.T) {
	if !almostEqual(Lemma1Bound(1), 1) {
		t.Fatalf("Lemma1Bound(1) = %v", Lemma1Bound(1))
	}
	if !almostEqual(Lemma1Bound(4), 0.625) {
		t.Fatalf("Lemma1Bound(4) = %v", Lemma1Bound(4))
	}
	if !almostEqual(Theorem3Bound(1), 0.5) {
		t.Fatalf("Theorem3Bound(1) = %v", Theorem3Bound(1))
	}
	if !almostEqual(Theorem3Bound(4), 0.3125) {
		t.Fatalf("Theorem3Bound(4) = %v", Theorem3Bound(4))
	}
	for name, f := range map[string]func(){
		"lemma1":   func() { Lemma1Bound(0) },
		"theorem3": func() { Theorem3Bound(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bound with b=0: expected panic", name)
				}
			}()
			f()
		}()
	}
}
