package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	mreg "overlaymatch/internal/metrics"
)

// TestTablesUnchangedByMetrics: the rendered tables must be
// byte-identical with and without a sink registry attached — the
// EXPERIMENTS.md acceptance condition for the observability layer.
func TestTablesUnchangedByMetrics(t *testing.T) {
	for _, id := range []string{"E5", "E6", "E11", "E14"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		var plain, instrumented bytes.Buffer
		if err := RunAndRender(e, Config{Seed: 1, Quick: true}, &plain, false); err != nil {
			t.Fatalf("%s plain: %v", id, err)
		}
		sink := mreg.New()
		if err := RunAndRender(e, Config{Seed: 1, Quick: true, Metrics: sink}, &instrumented, false); err != nil {
			t.Fatalf("%s instrumented: %v", id, err)
		}
		if !bytes.Equal(plain.Bytes(), instrumented.Bytes()) {
			t.Fatalf("%s: tables differ with metrics attached", id)
		}
		if len(sink.Snapshot().Samples) == 0 {
			t.Fatalf("%s: sink registry stayed empty", id)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	cfg := Config{Seed: 9, Quick: true, Metrics: mreg.New()}
	e, _ := Lookup("E6")
	if _, err := e.Run(cfg); err != nil {
		t.Fatal(err)
	}
	m := NewManifest(cfg)
	m.Record(e, 1500*time.Microsecond)
	var buf bytes.Buffer
	if err := m.Write(&buf, cfg.Metrics); err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if got.Seed != 9 || !got.Quick || got.GoVersion == "" {
		t.Fatalf("manifest fields wrong: %+v", got)
	}
	if len(got.Experiments) != 1 || got.Experiments[0].ID != "E6" || got.Experiments[0].WallMS != 1.5 {
		t.Fatalf("experiment meta wrong: %+v", got.Experiments)
	}
	var snap map[string]any
	if err := json.Unmarshal(got.Metrics, &snap); err != nil {
		t.Fatalf("embedded metrics invalid: %v", err)
	}
	if _, ok := snap["simnet_deliveries_total"]; !ok {
		t.Fatal("embedded metrics missing simnet_deliveries_total")
	}
}

func TestManifestWithoutRegistry(t *testing.T) {
	m := NewManifest(Config{Seed: 1})
	var buf bytes.Buffer
	if err := m.Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got["metrics"] != nil {
		t.Fatalf("metrics should be null, got %v", got["metrics"])
	}
}
