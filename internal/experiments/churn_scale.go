package experiments

import (
	"fmt"
	"time"

	"overlaymatch/internal/dynamic"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/stats"
)

// E9Churn (§7 extension): run leave/join churn through the dynamic
// overlay under both repair policies and report repair cost (edges
// examined/changed per event) and repair quality (live weight vs a
// fresh LIC of the live subgraph). Expected shape: preemptive repair
// holds quality ≈ 1 at a modest extra cost; completion-only repair is
// cheaper but drifts below 1.
func E9Churn(cfg Config) ([]*stats.Table, error) {
	t := stats.NewTable("E9 (§7): churn repair cost and quality",
		"topology", "policy", "events", "mean examined", "mean added", "mean removed",
		"mean quality", "min quality", "mean live sat")
	n := cfg.pick(30, 120)
	events := cfg.pick(20, 120)
	for _, topo := range topologies()[:3] {
		for _, policy := range []struct {
			name string
			p    dynamic.Policy
		}{{"complete", dynamic.CompleteOnly}, {"preempt", dynamic.PreemptLighter}} {
			w, err := buildWorkload(cfg.Seed^0x99, topo, metrics()[0], n, 3)
			if err != nil {
				return nil, err
			}
			o := dynamic.NewOverlay(w.System, policy.p)
			recs, err := dynamic.RunChurn(o, dynamic.ChurnOptions{
				Events: events, Seed: cfg.Seed + 17, LeaveProb: 0.5, MinAlive: n / 3,
			})
			if err != nil {
				return nil, err
			}
			if err := o.Validate(); err != nil {
				return nil, fmt.Errorf("E9: overlay invalid after churn: %w", err)
			}
			var ex, add, rem, qual, sat []float64
			for _, r := range recs {
				ex = append(ex, float64(r.Stats.Examined))
				add = append(add, float64(r.Stats.Added))
				rem = append(rem, float64(r.Stats.Removed))
				qual = append(qual, r.Quality)
				sat = append(sat, r.Satisfaction)
			}
			t.AddRowf(topo.name, policy.name, len(recs),
				stats.Mean(ex), stats.Mean(add), stats.Mean(rem),
				stats.Mean(qual), stats.Min(qual), stats.Mean(sat))
		}
	}
	return []*stats.Table{t}, nil
}

// E10Scalability: scalability of the centralized LIC scan, the
// event-driven LID simulation, and the goroutine LID runtime as the
// network grows. The rendered table carries only the deterministic
// workload and agreement columns, so the golden output file is
// byte-identical across machines and runs; the machine-dependent
// wall-clock measurements are routed to the run's metric sink (and
// from there into the manifest) as e10_*_ms gauges instead of leaking
// into golden stdout. The shape to verify there is near-linear growth
// in m for LIC and the event runtime.
func E10Scalability(cfg Config) ([]*stats.Table, error) {
	t := stats.NewTable("E10: scalability workloads (avg deg ~8, b=3; timings in manifest/metrics)",
		"n", "edges", "matched", "LIC weight", "runtimes agree")
	ns := []int{500, 1000, 2000, 4000, 8000}
	if cfg.Quick {
		ns = []int{200, 400}
	}
	for _, n := range ns {
		w, err := buildWorkload(cfg.Seed^uint64(10*n), topologies()[0], metrics()[0], n, 3)
		if err != nil {
			return nil, err
		}
		sys := w.System
		tbl := satisfaction.NewTableParallel(sys, cfg.Workers)

		t0 := time.Now()
		lic := matching.LICParallel(sys, tbl, cfg.Workers)
		licM := lic.Weight(sys)
		licDur := time.Since(t0)

		t1 := time.Now()
		resE, err := lid.RunEvent(sys, tbl, simnet.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		evDur := time.Since(t1)

		t2 := time.Now()
		resG, err := lid.RunGoroutines(sys, tbl, 120*time.Second)
		if err != nil {
			return nil, err
		}
		goDur := time.Since(t2)

		if resE.Matching.Weight(sys) != licM || resG.Matching.Weight(sys) != licM {
			return nil, fmt.Errorf("E10: runtimes disagree at n=%d", n)
		}
		if cfg.Metrics != nil {
			ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
			cfg.Metrics.Gauge(fmt.Sprintf("e10_lic_ms{n=%d}", n),
				"E10 wall clock of the centralized LIC scan (machine-dependent)").Set(ms(licDur))
			cfg.Metrics.Gauge(fmt.Sprintf("e10_lid_event_ms{n=%d}", n),
				"E10 wall clock of the event-driven LID run (machine-dependent)").Set(ms(evDur))
			cfg.Metrics.Gauge(fmt.Sprintf("e10_lid_goroutine_ms{n=%d}", n),
				"E10 wall clock of the goroutine LID run (machine-dependent)").Set(ms(goDur))
		}
		t.AddRowf(n, sys.Graph().NumEdges(), lic.Size(), licM, "yes")
	}
	return []*stats.Table{t}, nil
}
