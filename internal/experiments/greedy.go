package experiments

import (
	"fmt"

	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	mreg "overlaymatch/internal/metrics"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/stats"
	"overlaymatch/internal/workload"
)

// e20Workers is the worker sweep of E20's determinism check: the full
// metric snapshot of a greedy run must be byte-identical for every
// worker count (workers only parallelize the preference-table build;
// the admission schedule is a pure function of the table).
var e20Workers = []int{1, 2, 8}

// e20ImprovedFamilies is the acceptance floor: the greedy scheduler
// must cut messages or rounds by at least e20MinReduction percent on
// at least this many families, or the experiment fails.
const (
	e20ImprovedFamilies = 2
	e20MinReduction     = 20.0
)

// E20GreedyScheduler: the payoff of heaviest-frontier admission
// scheduling (DESIGN.md §13). Per family — the three random E-registry
// topologies plus every internal/workload scenario family — LID runs
// once under the canonical all-at-time-0 admission sweep and once
// under -scheduler greedy, both on the unit-latency event runtime with
// the same seed. The table reports total messages and convergence
// rounds (virtual FinalTime — causal rounds under unit latency) for
// both schedules and the percentage reductions.
//
// Three properties are enforced as hard errors, not just tabulated:
//
//   - Exactness: both schedules terminate in exactly the LIC matching
//     (the scheduler is a scheduling win, never a quality trade).
//   - Worker determinism: the greedy run's full metric snapshot is
//     byte-identical across worker counts {1, 2, 8}.
//   - Payoff: at least 2 families see >= 20% reduction in messages or
//     rounds. Greedy serializes admission into drain-separated
//     batches, so rounds typically grow while messages shrink — the
//     OR keeps the criterion honest about which axis a family wins on.
func E20GreedyScheduler(cfg Config) ([]*stats.Table, error) {
	table := stats.NewTable("E20: canonical vs greedy admission scheduling (unit latency)",
		"family", "n", "b", "msgs canonical", "msgs greedy", "msg red %",
		"rounds canonical", "rounds greedy", "round red %")

	type e20Case struct {
		name string
		sys  *pref.System
	}
	var cases []e20Case
	n := cfg.pick(32, 200)
	for _, topo := range topologies()[:3] { // gnp, geometric, ba
		w, err := buildWorkload(cfg.Seed^uint64(20*n), topo, metrics()[0], n, 3)
		if err != nil {
			return nil, err
		}
		cases = append(cases, e20Case{topo.name, w.System})
	}
	wn := cfg.pick(48, 256)
	for _, spec := range workload.DefaultSuite(wn) {
		inst, err := workload.Build(spec, cfg.Seed^0x20e2, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("E20 %s: %w", spec.Family, err)
		}
		cases = append(cases, e20Case{spec.Family, inst.System})
	}

	improved := 0
	for i, c := range cases {
		sys := c.sys
		tbl := satisfaction.NewTable(sys)
		want := matching.LIC(sys, tbl)
		opts := simnet.Options{Seed: cfg.Seed + uint64(200+i)}

		canon, err := lid.RunEvent(sys, tbl, opts)
		if err != nil {
			return nil, fmt.Errorf("E20 %s canonical: %w", c.name, err)
		}
		if !canon.Matching.Equal(want) {
			return nil, fmt.Errorf("E20 %s: canonical run diverged from LIC", c.name)
		}

		spec := lid.SchedulerSpec{Kind: lid.SchedGreedy}
		var greedy lid.Result
		var baseline string
		for k, workers := range e20Workers {
			wtbl := satisfaction.NewTableParallel(sys, workers)
			sink := mreg.New()
			gopts := opts
			gopts.Metrics = sink
			res, err := lid.RunEventScheduled(sys, wtbl, gopts, spec)
			if err != nil {
				return nil, fmt.Errorf("E20 %s greedy workers=%d: %w", c.name, workers, err)
			}
			if !res.Matching.Equal(want) {
				return nil, fmt.Errorf("E20 %s workers=%d: greedy run diverged from LIC", c.name, workers)
			}
			raw, err := sink.Snapshot().MarshalJSON()
			if err != nil {
				return nil, err
			}
			if k == 0 {
				greedy, baseline = res, string(raw)
			} else if string(raw) != baseline {
				return nil, fmt.Errorf("E20 %s: greedy run with %d workers differs from %d workers — the schedule must be a pure function of the table",
					c.name, workers, e20Workers[0])
			}
		}

		msgRed := reductionPct(canon.Stats.TotalSent(), greedy.Stats.TotalSent())
		roundRed := reductionPct(int(canon.Stats.FinalTime), int(greedy.Stats.FinalTime))
		if msgRed >= e20MinReduction || roundRed >= e20MinReduction {
			improved++
		}
		table.AddRowf(c.name, sys.Graph().NumNodes(), sys.MaxQuota(),
			canon.Stats.TotalSent(), greedy.Stats.TotalSent(), msgRed,
			canon.Stats.FinalTime, greedy.Stats.FinalTime, roundRed)
	}
	if improved < e20ImprovedFamilies {
		return nil, fmt.Errorf("E20: only %d families improved >= %.0f%% in messages or rounds, want >= %d — the greedy scheduler lost its payoff",
			improved, e20MinReduction, e20ImprovedFamilies)
	}
	return []*stats.Table{table}, nil
}

// reductionPct returns the percentage reduction from canon to greedy
// (positive = greedy cheaper), 0 for an empty baseline.
func reductionPct(canon, greedy int) float64 {
	if canon == 0 {
		return 0
	}
	return 100 * float64(canon-greedy) / float64(canon)
}
