package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// TestE17SubUnitProbeInterval is the regression test for the probe
// drift bug: `experiments -quick -probe-interval 0.25` used to
// accumulate probe times by repeated addition, drifting off the tick
// grid within a round and collapsing the sub-second samples the flag
// was asked for. Tick-aligned probing must deliver one row per exact
// multiple of the interval — roughly 1/interval times the rows of the
// unit-interval run — with every probe time on the grid.
func TestE17SubUnitProbeInterval(t *testing.T) {
	rows := func(interval float64) [][]string {
		cfg := quickCfg()
		cfg.ProbeInterval = interval
		tables, err := E17StabilityCurve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := tables[0].WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(b.String()), "\n")
		out := make([][]string, 0, len(lines)-1)
		for _, line := range lines[1:] {
			out = append(out, strings.Split(line, ","))
		}
		return out
	}

	const interval = 0.25
	unit, fine := rows(1), rows(interval)
	if len(fine) < 3*len(unit) {
		t.Fatalf("interval %v produced %d curve rows vs %d at interval 1 — sub-unit probes collapsed",
			interval, len(fine), len(unit))
	}
	for _, r := range fine {
		tm, err := strconv.ParseFloat(r[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		ticks := tm / interval
		if ticks != math.Trunc(ticks) {
			t.Fatalf("probe time %v is not a multiple of %v (drifted off the tick grid)", tm, interval)
		}
	}
}
