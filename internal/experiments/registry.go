package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"overlaymatch/internal/stats"
)

// Experiment is one entry of the suite.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) ([]*stats.Table, error)
}

// All returns the full registry in ID order.
func All() []Experiment {
	exps := []Experiment{
		{"E1", "Theorem 2: LIC weight vs exact optimum", E1LICWeightRatio},
		{"E2", "Lemmas 3-6: LID equals LIC under asynchrony", E2LIDEquivalence},
		{"E3", "Theorem 3: LID satisfaction vs exact optimum", E3SatisfactionRatio},
		{"E4", "Lemma 1: static share bound and tightness", E4StaticShare},
		{"E5", "Lemma 5: termination and message complexity", E5MessageComplexity},
		{"E6", "Convergence rounds", E6ConvergenceRounds},
		{"E7", "Baseline comparison", E7Baselines},
		{"E8", "Satisfaction identities (Fig. 1 semantics)", E8Identities},
		{"E9", "Churn repair (future-work extension)", E9Churn},
		{"E10", "Wall-clock scalability", E10Scalability},
		{"E11", "Lossy links with the reliability substrate", E11LossyLinks},
		{"E12", "Adversaries vs tolerant LID (future-work extension)", E12Adversaries},
		{"E13", "Coverage-first and local-search variants (future-work ablations)", E13Variants},
		{"E14", "Distributed churn maintenance protocol (future-work extension)", E14Maintenance},
		{"E15", "Fault-injection sweep through the reliability substrate", E15FaultSweep},
		{"E16", "Self-healing under crash windows (detector + repair)", E16SelfHealing},
		{"E17", "Convergence telemetry: rounds vs blocking pairs", E17StabilityCurve},
		{"E18", "Stability tournament: LID vs Gale-Shapley vs backup placement", E18Tournament},
		{"E19", "Churn-survival engine: bounded repair under sustained churn", E19ChurnEngine},
		{"E20", "Greedy admission scheduling: messages and rounds vs canonical", E20GreedyScheduler},
	}
	sort.Slice(exps, func(i, j int) bool { return idLess(exps[i].ID, exps[j].ID) })
	return exps
}

// idLess orders E1 < E2 < ... < E10 numerically.
func idLess(a, b string) bool {
	var na, nb int
	fmt.Sscanf(a, "E%d", &na)
	fmt.Sscanf(b, "E%d", &nb)
	return na < nb
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAndRender executes one experiment and writes its tables.
func RunAndRender(e Experiment, cfg Config, w io.Writer, markdown bool) error {
	fmt.Fprintf(w, "== %s: %s ==\n\n", e.ID, e.Title)
	tables, err := e.Run(cfg)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	for _, t := range tables {
		if markdown {
			if err := t.WriteMarkdown(w); err != nil {
				return err
			}
		} else {
			if err := t.WriteText(w); err != nil {
				return err
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RunToCSV executes one experiment and writes each of its tables as a
// CSV file "<ID>_<k>.csv" under dir (created if needed), returning the
// file names written.
func RunToCSV(e Experiment, cfg Config, dir string) ([]string, error) {
	tables, err := e.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.ID, err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var files []string
	for k, t := range tables {
		name := fmt.Sprintf("%s_%d.csv", e.ID, k+1)
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return files, err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return files, err
		}
		if err := f.Close(); err != nil {
			return files, err
		}
		files = append(files, name)
	}
	return files, nil
}
