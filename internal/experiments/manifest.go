package experiments

import (
	"encoding/json"
	"io"
	"runtime"
	"strings"
	"time"

	mreg "overlaymatch/internal/metrics"
	"overlaymatch/internal/obs"
)

// Manifest records the provenance of one suite run: what was run, with
// which parameters, on which toolchain, how long each experiment took,
// and the final metric snapshot of the shared registry. It is the
// machine-readable companion of the rendered tables — enough to tell
// whether two table files came from comparable runs.
type Manifest struct {
	GeneratedAt string           `json:"generated_at"`
	GoVersion   string           `json:"go_version"`
	NumCPU      int              `json:"num_cpu"`
	Seed        uint64           `json:"seed"`
	Quick       bool             `json:"quick"`
	Workers     int              `json:"workers"`
	Experiments []ExperimentMeta `json:"experiments"`
	TotalWallMS float64          `json:"total_wall_ms"`
	// Metrics is the shared-registry snapshot (deterministic key order),
	// null when the run had no sink attached.
	Metrics json.RawMessage `json:"metrics"`
	// Stability is the rounds-to-ε convergence summary, extracted from
	// the stability_rounds_to_eps_* gauges the probed experiments (E17)
	// publish: ε → first probe time with blocking pairs ≤ ε·|E|
	// (-1 = never reached). Omitted when no probed experiment ran.
	Stability map[string]float64 `json:"stability_rounds_to_eps,omitempty"`
}

// ExperimentMeta is one experiment's row in the manifest.
type ExperimentMeta struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	WallMS float64 `json:"wall_ms"`
}

// NewManifest starts a manifest for the given configuration.
func NewManifest(cfg Config) *Manifest {
	return &Manifest{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Seed:        cfg.Seed,
		Quick:       cfg.Quick,
		Workers:     cfg.Workers,
	}
}

// Record appends one finished experiment.
func (m *Manifest) Record(e Experiment, wall time.Duration) {
	m.Experiments = append(m.Experiments, ExperimentMeta{
		ID: e.ID, Title: e.Title, WallMS: float64(wall.Microseconds()) / 1000,
	})
	m.TotalWallMS += float64(wall.Microseconds()) / 1000
}

// Write finalizes the manifest with the registry snapshot (nil-safe)
// and emits indented JSON.
func (m *Manifest) Write(w io.Writer, reg *mreg.Registry) error {
	if reg != nil {
		snap := reg.Snapshot()
		raw, err := snap.MarshalJSON()
		if err != nil {
			return err
		}
		m.Metrics = raw
		for _, smp := range snap.Samples {
			if smp.Kind != mreg.KindGauge || !strings.HasPrefix(smp.Name, obs.SummaryPrefix) {
				continue
			}
			if m.Stability == nil {
				m.Stability = make(map[string]float64)
			}
			m.Stability[strings.TrimPrefix(smp.Name, obs.SummaryPrefix)] = smp.Value
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
