package experiments

import (
	"fmt"

	"overlaymatch/internal/dlid"
	"overlaymatch/internal/dynamic"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/stats"
)

// E14Maintenance (§7, the distributed answer): run the dlid
// maintenance protocol through churn schedules and compare its repair
// quality and message cost against (a) a fresh LIC recomputation of
// the live subgraph and (b) the centralized completion repair
// (dynamic.CompleteOnly) on the same event sequence. The shape to
// verify: the distributed protocol matches the centralized
// completion-repair quality band (both are greedy completions) at a
// per-event message cost of a few times the affected degree, with
// every run quiescing and passing the structural invariants (Run
// enforces them).
func E14Maintenance(cfg Config) ([]*stats.Table, error) {
	t := stats.NewTable("E14 (§7): distributed churn maintenance (dlid) vs fresh LIC and centralized repair",
		"topology", "events", "msgs/event", "props/event", "quality dlid", "quality centralized", "final alive")
	n := cfg.pick(30, 120)
	events := cfg.pick(15, 100)
	for _, topo := range topologies()[:3] {
		w, err := buildWorkload(cfg.Seed^0x14e, topo, metrics()[0], n, 3)
		if err != nil {
			return nil, err
		}
		sys := w.System
		tbl := satisfaction.NewTable(sys)
		schedule := dlid.Schedule(sys, rng.New(cfg.Seed+3), events, 60, 0.5, n/3)
		res, err := dlid.Run(sys, tbl, schedule, simnet.Options{
			Seed:    cfg.Seed,
			Latency: simnet.ExponentialLatency(0.5),
			Metrics: cfg.Metrics,
		})
		if err != nil {
			return nil, fmt.Errorf("E14 %s: %w", topo.name, err)
		}
		fresh, err := dlid.LiveLICWeight(sys, res.Nodes)
		if err != nil {
			return nil, err
		}
		quality := 1.0
		if fresh > 0 {
			quality = res.Live.Weight(sys) / fresh
		}

		// Centralized completion repair on the same event sequence.
		o := dynamic.NewOverlay(sys, dynamic.CompleteOnly)
		for _, ev := range schedule {
			if ev.Leave {
				o.Leave(ev.Node)
			} else {
				o.Join(ev.Node)
			}
		}
		centralQ, err := o.QualityRatio()
		if err != nil {
			return nil, err
		}

		alive := 0
		for _, nd := range res.Nodes {
			if nd.Alive() {
				alive++
			}
		}
		nEvents := len(schedule)
		t.AddRowf(topo.name, nEvents,
			float64(res.Stats.TotalSent())/float64(nEvents),
			float64(res.Proposals)/float64(nEvents),
			quality, centralQ, alive)
		if quality < 0.5 {
			return nil, fmt.Errorf("E14 %s: distributed repair quality %v under the greedy floor", topo.name, quality)
		}
	}
	return []*stats.Table{t}, nil
}
