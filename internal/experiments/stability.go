package experiments

import (
	"fmt"

	"overlaymatch/internal/lid"
	mreg "overlaymatch/internal/metrics"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/stats"
)

// e17Workers is the worker sweep of E17's determinism check: the probe
// series must be byte-identical for every worker count (workers only
// parallelize the deterministic preference-table build, so any
// divergence means the telemetry plane leaked scheduling state).
var e17Workers = []int{1, 2, 4}

// E17StabilityCurve: the convergence trajectory of LID, measured by
// the per-round stability prober (obs.Prober through
// lid.RunEventProbed). Per topology the event runtime runs under unit
// latency with a probe every cfg.ProbeInterval time units; each probe
// records blocking pairs (under the eq.-9 weight order — the order LID
// actually proposes in), unmatched node mass, the matched-weight
// fraction of the LIC optimum, and cumulative message/byte totals.
//
// Two properties are enforced as hard errors, not just tabulated:
//
//   - Monotone improvement: blocking pairs never increase and the
//     matched-weight fraction never decreases between probes, ending at
//     exactly 0 and exactly 1 (LID terminates in the LIC matching, so
//     the final state is exactly stable under the weight order).
//   - Worker determinism: the full probe-registry snapshot is
//     byte-identical across worker counts {1, 2, 4}.
//
// The summary table reports the rounds-to-ε ladder (first probe time
// with blocking pairs ≤ ε·|E|); the canonical gnp summary is also
// published into cfg.Metrics as stability_rounds_to_eps_* gauges, which
// the run manifest collects into its convergence block.
func E17StabilityCurve(cfg Config) ([]*stats.Table, error) {
	curve := stats.NewTable("E17: rounds vs blocking pairs (probed LID, unit latency)",
		"topology", "n", "round", "blocking pairs", "unmatched", "weight frac", "msgs", "bytes")
	summary := stats.NewTable("E17 summary: rounds to eps-stability (first probe with bp <= eps*|E|)",
		"topology", "n", "eps=0.1", "eps=0.01", "eps=0.001", "eps=0", "workers")
	n := cfg.pick(24, 100)
	interval := cfg.probeInterval()
	for _, topo := range topologies()[:3] {
		w, err := buildWorkload(cfg.Seed^uint64(17*n), topo, metrics()[0], n, 2)
		if err != nil {
			return nil, err
		}
		sys := w.System

		var (
			prober   *obs.Prober
			reg      *mreg.Registry
			baseline string
		)
		for i, workers := range e17Workers {
			tbl := satisfaction.NewTableParallel(sys, workers)
			r := mreg.New()
			_, p, err := lid.RunEventProbed(sys, tbl, simnet.Options{Seed: cfg.Seed + 17}, interval, r)
			if err != nil {
				return nil, fmt.Errorf("E17 %s workers=%d: %w", topo.name, workers, err)
			}
			raw, err := r.Snapshot().MarshalJSON()
			if err != nil {
				return nil, err
			}
			if i == 0 {
				prober, reg, baseline = p, r, string(raw)
			} else if string(raw) != baseline {
				return nil, fmt.Errorf("E17 %s: probe series with %d workers differ from %d workers — the telemetry plane must be schedule-free",
					topo.name, workers, e17Workers[0])
			}
		}

		// The monotone-improving invariant, enforced (see the package
		// comment of lid.StabilitySampler for why each piece holds).
		bp := prober.Curve()
		frac := reg.Series("probe_matched_weight_frac", "").Points()
		for i := 1; i < len(bp); i++ {
			if bp[i].V > bp[i-1].V {
				return nil, fmt.Errorf("E17 %s: blocking pairs increased %v -> %v at t=%v",
					topo.name, bp[i-1].V, bp[i].V, bp[i].T)
			}
			if frac[i].V < frac[i-1].V {
				return nil, fmt.Errorf("E17 %s: matched-weight fraction decreased at t=%v", topo.name, frac[i].T)
			}
		}
		if last := bp[len(bp)-1].V; last != 0 {
			return nil, fmt.Errorf("E17 %s: %v blocking pairs at termination, want 0 (LID must end exactly stable)",
				topo.name, last)
		}
		if last := frac[len(frac)-1].V; last != 1 {
			return nil, fmt.Errorf("E17 %s: final weight fraction %v, want 1 (LID must end in the LIC matching)",
				topo.name, last)
		}

		unmatched := reg.Series("probe_unmatched_nodes", "").Points()
		msgs := reg.Series("probe_msgs_sent", "").Points()
		bytes := reg.Series("probe_bytes_sent", "").Points()
		for i := range bp {
			curve.AddRowf(topo.name, n, bp[i].T, int64(bp[i].V), int64(unmatched[i].V),
				frac[i].V, int64(msgs[i].V), int64(bytes[i].V))
		}
		// Rungs are read through obs.SummaryValue, never by bare map
		// index: an absent rung must render as the NeverConverged
		// sentinel, not as the zero value (instant convergence).
		s := prober.RoundsToEps(nil)
		summary.AddRowf(topo.name, n,
			obs.SummaryValue(s, 0.1), obs.SummaryValue(s, 0.01),
			obs.SummaryValue(s, 0.001), obs.SummaryValue(s, 0),
			fmt.Sprintf("identical x%d", len(e17Workers)))
		if topo.name == "gnp" {
			// The canonical workload's summary feeds the run manifest
			// (nil-safe when no sink registry is attached).
			prober.PublishSummary(cfg.Metrics, nil)
		}
	}
	return []*stats.Table{curve, summary}, nil
}
