package experiments

import (
	"fmt"

	"overlaymatch/internal/detector"
	"overlaymatch/internal/dlid"
	"overlaymatch/internal/faults"
	"overlaymatch/internal/matching"
	mreg "overlaymatch/internal/metrics"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/stats"
)

// e16Window is the healing crash window swept by E16: the victim is
// silenced at Start and comes back at End, well before quiescence.
const (
	e16CrashStart = 40.0
	e16CrashEnd   = 260.0
)

// E16SelfHealing: the self-healing overlay (dlid Rematch + heartbeat
// failure detection, see dlid.RunSelfHeal) through healing crash
// windows. Per (topology, b) the highest-degree matched node is cut
// off during [40, 260): the detector must suspect it on both sides,
// the survivors repair around it, and the HELLO resync after the heal
// must re-knit the overlay into exactly the LIC matching of the full
// topology — a hard error otherwise, mirroring E15's equivalence
// enforcement. The sweep reports detection latency (virtual time from
// the cut to each monitor's first suspicion of the victim), the
// repair bill (protocol frames beyond heartbeat traffic — an idle
// Rematch overlay sends none), and the detector verdict counts.
//
// The second table is the zero-fault control: the same workloads with
// the detector on but no adversary must produce zero suspicions and a
// matching byte-identical to a detector-free run — the monitoring
// layer is observationally free when nothing fails.
func E16SelfHealing(cfg Config) ([]*stats.Table, error) {
	sweep := stats.NewTable("E16: self-healing under crash windows (cut [40,260), Rematch + detector)",
		"topology", "b", "runs", "healed = LIC", "suspicions", "restores", "false susp",
		"synth byes", "resyncs", "detect latency", "repair frames")
	control := stats.NewTable("E16 control: zero faults, detector on vs off",
		"topology", "b", "runs", "false suspicions", "identical matching", "hb frames")
	n := cfg.pick(30, 80)
	runs := cfg.pick(2, 5)
	for _, topo := range topologies()[:3] {
		for b := 1; b <= 3; b++ {
			var (
				equal, suspicions, restores, synthByes, resyncs, repairFrames int
				latSum                                                        float64
				latN                                                          int
			)
			// vreg accumulates the registry-scored verdicts of the cell:
			// every suspicion is checked against the crash-window ground
			// truth (faults.Spec.NodeDownAt). The victim's own mirror-image
			// suspicions of its healthy neighbors land in the false column.
			vreg := mreg.New()
			for r := 0; r < runs; r++ {
				w, err := buildWorkload(cfg.Seed^uint64(16*n)^uint64(r)*7919, topo, metrics()[0], n, b)
				if err != nil {
					return nil, err
				}
				sys := w.System
				tbl := satisfaction.NewTable(sys)
				lic := matching.LIC(sys, tbl)
				crash := 0
				for i := 1; i < sys.Graph().NumNodes(); i++ {
					if lic.DegreeOf(i) > lic.DegreeOf(crash) {
						crash = i
					}
				}
				spec := faults.Spec{Crashes: []faults.Crash{
					{Start: e16CrashStart, End: e16CrashEnd, Node: crash}}}
				res, err := dlid.RunSelfHeal(sys, tbl, dlid.SelfHealConfig{
					Mode:     dlid.Rematch,
					Detector: cfg.detectorConfig(),
				}, nil, simnet.Options{
					Seed:    cfg.Seed + uint64(r)*131 + 16,
					Latency: simnet.ExponentialLatency(0.5),
					Policy:  faults.NewInjector(spec, cfg.FaultsSeed^(cfg.Seed+uint64(r)*104729)),
					Metrics: cfg.Metrics,
				})
				if err != nil {
					return nil, fmt.Errorf("E16 %s/b=%d run %d: %w", topo.name, b, r, err)
				}
				if res.Live.Equal(lic) {
					equal++
				}
				suspicions += res.Suspicions
				restores += res.Restores
				synthByes += res.SynthByes
				resyncs += res.Resyncs
				detector.PublishVerdicts(vreg, res.Monitors, spec.NodeDownAt)
				detector.PublishVerdicts(cfg.Metrics, res.Monitors, spec.NodeDownAt)
				for _, mon := range res.Monitors {
					for _, ev := range mon.Events {
						if ev.Peer == crash && !ev.Restore && ev.Time >= e16CrashStart {
							latSum += ev.Time - e16CrashStart
							latN++
							break
						}
					}
				}
				for kind, cnt := range res.Stats.SentByKind {
					if kind != "HB" && kind != "HB-ACK" {
						repairFrames += cnt
					}
				}
			}
			lat := 0.0
			if latN > 0 {
				lat = latSum / float64(latN)
			}
			falseSusp := int(vreg.Counter("detector_false_suspicions_total", "").Value())
			if got := int(vreg.Counter("detector_suspicions_total", "").Value()); got != suspicions {
				return nil, fmt.Errorf("E16: %s/b=%d registry counted %d suspicions, monitors say %d",
					topo.name, b, got, suspicions)
			}
			sweep.AddRowf(topo.name, b, runs, equal, suspicions, restores, falseSusp,
				synthByes, resyncs, lat, repairFrames/runs)
			if equal != runs {
				return nil, fmt.Errorf("E16: %s/b=%d healed into a non-LIC matching (%d/%d) — repair must converge to the stable greedy state",
					topo.name, b, equal, runs)
			}
			if suspicions == 0 || resyncs == 0 {
				return nil, fmt.Errorf("E16: %s/b=%d crash went undetected (suspicions=%d resyncs=%d)",
					topo.name, b, suspicions, resyncs)
			}
		}

		// Zero-fault control at b=2: detector on vs off, same seeds. The
		// zero-false-suspicion gate reads the verdict instruments of a
		// per-control registry (PublishVerdicts with a nil truth function
		// — nothing was ever down, so every suspicion scores false)
		// instead of scraping the monitors' event logs.
		const cb = 2
		creg := mreg.New()
		var identical, hbFrames int
		for r := 0; r < runs; r++ {
			w, err := buildWorkload(cfg.Seed^uint64(16*n)^uint64(r)*7919, topo, metrics()[0], n, cb)
			if err != nil {
				return nil, err
			}
			sys := w.System
			tbl := satisfaction.NewTable(sys)
			opts := simnet.Options{
				Seed:    cfg.Seed + uint64(r)*131 + 16,
				Latency: simnet.ExponentialLatency(0.5),
			}
			on, err := dlid.RunSelfHeal(sys, tbl, dlid.SelfHealConfig{
				Mode:     dlid.Rematch,
				Detector: cfg.detectorConfig(),
			}, nil, opts)
			if err != nil {
				return nil, fmt.Errorf("E16 control %s run %d (detector on): %w", topo.name, r, err)
			}
			off, err := dlid.RunSelfHeal(sys, tbl, dlid.SelfHealConfig{Mode: dlid.Rematch}, nil, opts)
			if err != nil {
				return nil, fmt.Errorf("E16 control %s run %d (detector off): %w", topo.name, r, err)
			}
			detector.PublishVerdicts(creg, on.Monitors, nil)
			if on.Live.Equal(off.Live) {
				identical++
			}
			hbFrames += on.Stats.SentByKind["HB"] + on.Stats.SentByKind["HB-ACK"]
		}
		falseSusp := int(creg.Counter("detector_false_suspicions_total", "").Value())
		control.AddRowf(topo.name, cb, runs, falseSusp, identical, hbFrames/runs)
		if falseSusp != 0 {
			return nil, fmt.Errorf("E16 control: %s reported %d suspicions with zero faults",
				topo.name, falseSusp)
		}
		if identical != runs {
			return nil, fmt.Errorf("E16 control: %s matching changed under monitoring (%d/%d identical) — the detector must be observationally free",
				topo.name, identical, runs)
		}
	}
	return []*stats.Table{sweep, control}, nil
}
