package experiments

import (
	"fmt"

	"overlaymatch/internal/faults"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/reliable"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/stats"
)

// e15Intensity is one rung of the fault-intensity ladder.
type e15Intensity struct {
	name string
	spec faults.Spec
}

func e15Ladder() []e15Intensity {
	return []e15Intensity{
		{"off", faults.Spec{}},
		{"light", faults.Spec{Drop: 0.02, Dup: 0.01, Corrupt: 0.01, Delay: 0.05, DelayScale: 4}},
		{"medium", faults.Spec{Drop: 0.08, Dup: 0.05, Corrupt: 0.03, Delay: 0.1, DelayScale: 6}},
		{"heavy", faults.Spec{Drop: 0.2, Dup: 0.1, Corrupt: 0.08, Delay: 0.2, DelayScale: 8}},
	}
}

// E15FaultSweep: LID through the reliable substrate under the faults
// adversary at increasing intensity (package faults: independent
// drop/duplicate/corrupt plus Pareto delay tails, all per-message).
// Since reliable restores the paper's link model, the outcome must
// equal LIC at every intensity — the table quantifies what the
// adversary costs in retransmissions and convergence-time inflation
// (virtual final time relative to the fault-free row of the same
// topology). A Config.Faults spec, when set, is appended as an extra
// "custom" rung.
func E15FaultSweep(cfg Config) ([]*stats.Table, error) {
	t := stats.NewTable("E15: LID+reliable under the fault-injection adversary",
		"intensity", "topology", "runs", "equal to LIC", "injections",
		"frames sent", "retransmits", "corrupt discarded", "rounds", "inflation")
	n := cfg.pick(30, 80)
	runs := cfg.pick(3, 12)
	ladder := e15Ladder()
	if cfg.Faults != nil && !cfg.Faults.IsZero() {
		ladder = append(ladder, e15Intensity{"custom", *cfg.Faults})
	}
	baseRounds := map[string]float64{} // topology -> fault-free mean rounds
	for _, step := range ladder {
		for _, topo := range topologies()[:3] {
			var (
				equal, injections, frames, retrans, corrupted int
				rounds                                        float64
			)
			for r := 0; r < runs; r++ {
				w, err := buildWorkload(cfg.Seed^uint64(15*n)^uint64(r)*7919, topo, metrics()[0], n, 2)
				if err != nil {
					return nil, err
				}
				sys := w.System
				tbl := satisfaction.NewTable(sys)
				nodes := lid.NewNodes(sys, tbl)
				eps := reliable.WrapConfig(lid.Handlers(nodes), cfg.reliableConfig())
				var policy simnet.LinkPolicy
				var inj *faults.Injector
				if !step.spec.IsZero() {
					inj = faults.NewInjector(step.spec, cfg.FaultsSeed^(cfg.Seed+uint64(r)*104729))
					policy = inj
				}
				runner := simnet.NewRunner(sys.Graph().NumNodes(), simnet.Options{
					Seed:    cfg.Seed + uint64(r)*131 + 15,
					Latency: simnet.ExponentialLatency(3),
					Policy:  policy,
					Metrics: cfg.Metrics,
				})
				st, err := runner.Run(reliable.Handlers(eps))
				if err != nil {
					return nil, fmt.Errorf("E15 %s/%s run %d: %w", step.name, topo.name, r, err)
				}
				reliable.PublishMetrics(cfg.Metrics, eps)
				m, err := lid.BuildMatching(nodes)
				if err != nil {
					return nil, fmt.Errorf("E15 %s/%s run %d: %w", step.name, topo.name, r, err)
				}
				if m.Equal(matching.LIC(sys, tbl)) {
					equal++
				}
				if inj != nil {
					injections += len(inj.Events())
				}
				frames += st.TotalSent()
				retrans += reliable.TotalRetransmits(eps)
				corrupted += reliable.TotalCorrupted(eps)
				rounds += st.FinalTime
			}
			mean := rounds / float64(runs)
			if step.name == "off" {
				baseRounds[topo.name] = mean
			}
			inflation := 0.0
			if base := baseRounds[topo.name]; base > 0 {
				inflation = mean / base
			}
			t.AddRowf(step.name, topo.name, runs, equal, injections,
				frames/runs, retrans/runs, corrupted/runs, mean, inflation)
			if equal != runs {
				return nil, fmt.Errorf("E15: %s/%s broke the LIC equivalence (%d/%d) — delivery restored by reliable must preserve Lemmas 3-6",
					step.name, topo.name, equal, runs)
			}
		}
	}
	return []*stats.Table{t}, nil
}
