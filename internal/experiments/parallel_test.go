package experiments

import (
	"errors"
	"strings"
	"testing"

	"overlaymatch/internal/stats"
)

func TestParallelForOrderedResults(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		got, err := parallelFor(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d]=%d", workers, i, v)
			}
		}
	}
}

func TestParallelForError(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := parallelFor(4, 20, func(i int) (int, error) {
		if i == 7 || i == 13 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestParallelForEmpty(t *testing.T) {
	got, err := parallelFor(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty case: %v %v", got, err)
	}
}

// TestParallelDeterminism: the oracle experiments must produce
// bit-identical tables for every worker count.
func TestParallelDeterminism(t *testing.T) {
	render := func(workers int) string {
		cfg := quickCfg()
		cfg.Workers = workers
		var b strings.Builder
		for _, run := range []func(Config) ([]*stats.Table, error){E1LICWeightRatio, E3SatisfactionRatio} {
			tables, err := run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, tbl := range tables {
				if err := tbl.WriteCSV(&b); err != nil {
					t.Fatal(err)
				}
			}
		}
		return b.String()
	}
	serial := render(1)
	for _, w := range []int{2, 4, 0} {
		if render(w) != serial {
			t.Fatalf("workers=%d output differs from serial", w)
		}
	}
}
