package experiments

import (
	"fmt"
	"time"

	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/stats"
)

// E2LIDEquivalence (Lemmas 3–6): LID must lock exactly the LIC edge set
// on every workload under (a) many random asynchronous interleavings of
// the event simulator and (b) the real goroutine runtime. The table
// reports equality rates; anything under 100% is a reproduction
// failure and returns an error.
func E2LIDEquivalence(cfg Config) ([]*stats.Table, error) {
	t := stats.NewTable("E2 (Lemmas 3-6): LID == LIC equality rate",
		"topology", "metric", "n", "event runs", "goroutine runs", "equal", "rate")
	ns := []int{12, 40, 120}
	if cfg.Quick {
		ns = []int{12, 30}
	}
	eventRuns := cfg.pick(5, 40)
	goRuns := cfg.pick(2, 8)
	for _, topo := range topologies()[:3] {
		for _, metric := range []metricSpec{metrics()[0], metrics()[1]} {
			for _, n := range ns {
				w, err := buildWorkload(cfg.Seed^uint64(n), topo, metric, n, 3)
				if err != nil {
					return nil, err
				}
				sys := w.System
				tbl := satisfaction.NewTable(sys)
				want := matching.LIC(sys, tbl)
				equal, total := 0, 0
				for r := 0; r < eventRuns; r++ {
					res, err := lid.RunEvent(sys, tbl, simnet.Options{
						Seed:    cfg.Seed + uint64(r)*131,
						Latency: simnet.ExponentialLatency(6),
						Policy:  cfg.policy(uint64(n)*1009 + uint64(r)),
					})
					if err != nil {
						return nil, fmt.Errorf("E2 event run: %w", err)
					}
					total++
					if res.Matching.Equal(want) {
						equal++
					}
				}
				for r := 0; r < goRuns; r++ {
					res, err := lid.RunGoroutinesOpts(sys, tbl, lid.GoOptions{
						Timeout: 30 * time.Second,
						Policy:  cfg.policy(uint64(n)*2027 + uint64(r)),
					})
					if err != nil {
						return nil, fmt.Errorf("E2 goroutine run: %w", err)
					}
					total++
					if res.Matching.Equal(want) {
						equal++
					}
				}
				rate := float64(equal) / float64(total)
				t.AddRowf(topo.name, metric.name, n, eventRuns, goRuns, equal, rate)
				if equal != total {
					return nil, fmt.Errorf("E2: %s/%s n=%d equality rate %v < 1", topo.name, metric.name, n, rate)
				}
			}
		}
	}
	return []*stats.Table{t}, nil
}

// E5MessageComplexity (Lemma 5 + §5): messages per node as n scales
// (figure series 1), as quota b scales (series 2), and as density
// scales (series 3). Every run must terminate; per-node messages are
// bounded by degree (one message per directed pair), so the shape to
// verify is "mean msgs/node tracks average degree, independent of n".
func E5MessageComplexity(cfg Config) ([]*stats.Table, error) {
	scale := stats.NewTable("E5a (Lemma 5): messages vs network size (b=3, avg deg ~8)",
		"topology", "n", "edges", "total msgs", "msgs/node mean", "msgs/node max", "PROP", "REJ")
	ns := []int{50, 100, 200, 400, 800}
	if cfg.Quick {
		ns = []int{50, 100}
	}
	for _, topo := range topologies()[:3] {
		for _, n := range ns {
			w, err := buildWorkload(cfg.Seed^uint64(3*n), topo, metrics()[0], n, 3)
			if err != nil {
				return nil, err
			}
			sys := w.System
			res, err := lid.RunEvent(sys, satisfaction.NewTable(sys), simnet.Options{
				Seed:    cfg.Seed + uint64(n),
				Latency: simnet.ExponentialLatency(4),
				Metrics: cfg.Metrics,
				Policy:  cfg.policy(uint64(5 * n)),
			})
			if err != nil {
				return nil, err
			}
			perNode := make([]float64, len(res.Stats.SentByNode))
			for i, c := range res.Stats.SentByNode {
				perNode[i] = float64(c)
			}
			sum := stats.Summarize(perNode)
			scale.AddRowf(topo.name, n, sys.Graph().NumEdges(), res.Stats.TotalSent(),
				sum.Mean, sum.Max, res.PropMessages, res.RejMessages)
			if res.Stats.TotalSent() > 2*sys.Graph().NumEdges() {
				return nil, fmt.Errorf("E5: message count exceeded 2m")
			}
		}
	}

	quota := stats.NewTable("E5b: messages vs quota b (gnp, n fixed)",
		"b", "total msgs", "msgs/node mean", "PROP", "REJ", "locked edges")
	n := cfg.pick(100, 400)
	for _, b := range []int{1, 2, 4, 8, 16} {
		w, err := buildWorkload(cfg.Seed^0xb0b^uint64(b), topologies()[0], metrics()[0], n, b)
		if err != nil {
			return nil, err
		}
		sys := w.System
		res, err := lid.RunEvent(sys, satisfaction.NewTable(sys), simnet.Options{
			Seed:    cfg.Seed + uint64(b),
			Latency: simnet.ExponentialLatency(4),
			Metrics: cfg.Metrics,
			Policy:  cfg.policy(0xb0b ^ uint64(b)),
		})
		if err != nil {
			return nil, err
		}
		quota.AddRowf(b, res.Stats.TotalSent(),
			float64(res.Stats.TotalSent())/float64(n), res.PropMessages, res.RejMessages,
			res.Matching.Size())
	}

	density := stats.NewTable("E5c: messages vs density (gnp, n fixed, b=3)",
		"avg degree", "edges", "total msgs", "msgs/node mean", "msgs per edge")
	for _, deg := range []float64{4, 8, 16, 32} {
		sys, err := smallishGNP(cfg.Seed^0xdd, n, deg, 3)
		if err != nil {
			return nil, err
		}
		res, err := lid.RunEvent(sys, satisfaction.NewTable(sys), simnet.Options{
			Seed:    cfg.Seed + uint64(deg),
			Latency: simnet.ExponentialLatency(4),
			Metrics: cfg.Metrics,
			Policy:  cfg.policy(0xdd ^ uint64(deg)),
		})
		if err != nil {
			return nil, err
		}
		m := sys.Graph().NumEdges()
		density.AddRowf(deg, m, res.Stats.TotalSent(),
			float64(res.Stats.TotalSent())/float64(n), float64(res.Stats.TotalSent())/float64(m))
	}
	return []*stats.Table{scale, quota, density}, nil
}

// E6ConvergenceRounds: with unit latency the final virtual time is the
// longest causal message chain — the round count to global quiescence.
// Series: rounds vs n per topology, and rounds vs b.
func E6ConvergenceRounds(cfg Config) ([]*stats.Table, error) {
	bySize := stats.NewTable("E6a: convergence rounds vs network size (unit latency, b=3)",
		"topology", "n", "rounds", "deliveries")
	ns := []int{50, 100, 200, 400, 800}
	if cfg.Quick {
		ns = []int{50, 100}
	}
	for _, topo := range topologies()[:4] { // include ring: the adversarial chain case
		for _, n := range ns {
			w, err := buildWorkload(cfg.Seed^uint64(5*n), topo, metrics()[0], n, 3)
			if err != nil {
				return nil, err
			}
			sys := w.System
			res, err := lid.RunEvent(sys, satisfaction.NewTable(sys), simnet.Options{
				Seed: cfg.Seed, Metrics: cfg.Metrics, Policy: cfg.policy(uint64(7 * n)),
			})
			if err != nil {
				return nil, err
			}
			bySize.AddRowf(topo.name, n, res.Stats.FinalTime, res.Stats.Deliveries)
		}
	}

	byQuota := stats.NewTable("E6b: convergence rounds vs quota (gnp, unit latency)",
		"b", "rounds", "deliveries")
	n := cfg.pick(100, 400)
	for _, b := range []int{1, 2, 4, 8} {
		w, err := buildWorkload(cfg.Seed^0xe6^uint64(b), topologies()[0], metrics()[0], n, b)
		if err != nil {
			return nil, err
		}
		sys := w.System
		res, err := lid.RunEvent(sys, satisfaction.NewTable(sys), simnet.Options{
			Seed: cfg.Seed, Metrics: cfg.Metrics, Policy: cfg.policy(0xe6 ^ uint64(b)),
		})
		if err != nil {
			return nil, err
		}
		byQuota.AddRowf(b, res.Stats.FinalTime, res.Stats.Deliveries)
	}
	return []*stats.Table{bySize, byQuota}, nil
}

// smallishGNP builds a G(n, deg/(n-1)) system with random preferences.
func smallishGNP(seed uint64, n int, avgDeg float64, b int) (*pref.System, error) {
	p := avgDeg / float64(n-1)
	if p > 1 {
		p = 1
	}
	return smallGNPSystem(seed, n, p, b)
}
