package experiments

import (
	"bytes"
	"strings"
	"testing"

	"overlaymatch/internal/faults"
	mreg "overlaymatch/internal/metrics"
)

// TestTablesUnchangedByFaultsOff mirrors TestTablesUnchangedByMetrics
// for the fault-injection hook: attaching a zero-spec adversary (the
// injector is constructed and consulted on every send, but never
// fires) must leave the policy-threaded experiments byte-identical to
// no adversary at all.
func TestTablesUnchangedByFaultsOff(t *testing.T) {
	zero := &faults.Spec{}
	for _, id := range []string{"E2", "E5", "E6"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		var plain, faulted bytes.Buffer
		if err := RunAndRender(e, Config{Seed: 1, Quick: true}, &plain, false); err != nil {
			t.Fatalf("%s plain: %v", id, err)
		}
		if err := RunAndRender(e, Config{Seed: 1, Quick: true, Faults: zero, FaultsSeed: 42}, &faulted, false); err != nil {
			t.Fatalf("%s with zero faults: %v", id, err)
		}
		if !bytes.Equal(plain.Bytes(), faulted.Bytes()) {
			t.Fatalf("%s: tables differ with a zero-spec adversary attached", id)
		}
	}
}

// TestE15Quick runs the sweep in quick mode: every rung must preserve
// the LIC equivalence, faults must actually be injected above "off",
// and the transport counters must land in the sink registry.
func TestE15Quick(t *testing.T) {
	e, ok := Lookup("E15")
	if !ok {
		t.Fatal("E15 missing from the registry")
	}
	sink := mreg.New()
	tables, err := e.Run(Config{Seed: 1, Quick: true, Metrics: sink})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("E15 returned %d tables, want 1", len(tables))
	}
	var buf bytes.Buffer
	if err := tables[0].WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, rung := range []string{"off", "light", "medium", "heavy"} {
		if !strings.Contains(out, rung) {
			t.Fatalf("E15 table missing intensity %q:\n%s", rung, out)
		}
	}
	found := false
	for _, s := range sink.Snapshot().Samples {
		if s.Name == "reliable_retransmits_total" && s.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("E15 under heavy drop produced no retransmits in the sink")
	}
}

// TestE15CustomRung: a Config.Faults spec appends a "custom" row.
func TestE15CustomRung(t *testing.T) {
	tables, err := E15FaultSweep(Config{
		Seed: 2, Quick: true,
		Faults: &faults.Spec{Drop: 0.05, Delay: 0.1, DelayScale: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tables[0].WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "custom") {
		t.Fatal("custom fault spec did not add a table rung")
	}
}

// TestRegistryQuickCoverage runs EVERY registered experiment in quick
// mode and requires it to succeed with at least one non-empty table —
// so registering an experiment (like E15) without it being runnable,
// or `cmd/experiments -run all` silently skipping one, cannot pass CI.
func TestRegistryQuickCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite")
	}
	all := All()
	if len(all) < 16 {
		t.Fatalf("registry lists %d experiments, want >= 16", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		tables, err := e.Run(Config{Seed: 1, Quick: true})
		if err != nil {
			t.Fatalf("%s (%s): %v", e.ID, e.Title, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s returned no tables", e.ID)
		}
		for k, tbl := range tables {
			var buf bytes.Buffer
			if err := tbl.WriteText(&buf); err != nil {
				t.Fatalf("%s table %d: %v", e.ID, k, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s table %d rendered empty", e.ID, k)
			}
		}
	}
}
