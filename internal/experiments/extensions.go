package experiments

import (
	"fmt"

	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/phased"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/reliable"
	"overlaymatch/internal/robust"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/stats"
	"overlaymatch/internal/variants"
)

// E11LossyLinks: the paper assumes reliable links; E11 runs LID through
// the ack/retransmit substrate (package reliable) over 0–50% message
// loss and verifies the outcome still equals LIC, reporting the
// transport overhead the assumption really costs.
func E11LossyLinks(cfg Config) ([]*stats.Table, error) {
	t := stats.NewTable("E11: LID over lossy links with the reliability substrate",
		"loss", "runs", "equal to LIC", "frames sent", "retransmits", "dup suppressed", "rounds")
	n := cfg.pick(25, 80)
	runs := cfg.pick(4, 20)
	for _, loss := range []float64{0, 0.1, 0.2, 0.3, 0.5} {
		equal, frames, retrans, dups := 0, 0, 0, 0
		var rounds float64
		for r := 0; r < runs; r++ {
			sys, err := smallGNPSystem(cfg.Seed+uint64(r)*7919, n, 8.0/float64(n-1), 2)
			if err != nil {
				return nil, err
			}
			tbl := satisfaction.NewTable(sys)
			nodes := lid.NewNodes(sys, tbl)
			eps := reliable.WrapConfig(lid.Handlers(nodes), cfg.reliableConfig())
			var drop simnet.DropFunc
			if loss > 0 {
				drop = simnet.UniformDrop(loss)
			}
			runner := simnet.NewRunner(sys.Graph().NumNodes(), simnet.Options{
				Seed:    cfg.Seed + uint64(r) + uint64(loss*1000),
				Drop:    drop,
				Latency: simnet.ExponentialLatency(3),
				Metrics: cfg.Metrics,
			})
			st, err := runner.Run(reliable.Handlers(eps))
			if err != nil {
				return nil, fmt.Errorf("E11 loss=%.1f: %w", loss, err)
			}
			reliable.PublishMetrics(cfg.Metrics, eps)
			m, err := lid.BuildMatching(nodes)
			if err != nil {
				return nil, err
			}
			if m.Equal(matching.LIC(sys, tbl)) {
				equal++
			}
			frames += st.TotalSent()
			retrans += reliable.TotalRetransmits(eps)
			dups += reliable.TotalDuplicates(eps)
			rounds += st.FinalTime
		}
		t.AddRowf(loss, runs, equal, frames/runs, retrans/runs, dups/runs, rounds/float64(runs))
		if equal != runs {
			return nil, fmt.Errorf("E11: loss %.1f broke the LIC equivalence (%d/%d)", loss, equal, runs)
		}
	}
	return []*stats.Table{t}, nil
}

// E12Adversaries (§7 "malicious nodes"): hardened TolerantNode against
// crash, crash-after and spammer adversaries at increasing fractions.
// Reported: honest satisfaction relative to the adversary-free LIC on
// the honest subgraph, revocations/dissolutions, dead locks.
func E12Adversaries(cfg Config) ([]*stats.Table, error) {
	t := stats.NewTable("E12 (§7): honest satisfaction under adversaries (tolerant LID)",
		"adversary", "fraction", "runs", "sat ratio mean", "sat ratio min",
		"revocations", "dissolved", "dead locks")
	n := cfg.pick(30, 100)
	runs := cfg.pick(4, 20)
	for _, kind := range []robust.AdversaryKind{robust.AdvCrash, robust.AdvCrashAfter, robust.AdvSpammer} {
		for _, frac := range []float64{0.1, 0.2, 0.3} {
			var ratios []float64
			rev, dis, dead := 0, 0, 0
			for r := 0; r < runs; r++ {
				sys, err := smallGNPSystem(cfg.Seed+uint64(r)*104729, n, 8.0/float64(n-1), 2)
				if err != nil {
					return nil, err
				}
				sc := robust.Scenario{
					System:      sys,
					Adversaries: robust.FractionAdversaries(n, frac, kind),
					Timeout:     60,
					CrashAfterK: 3,
					Options: simnet.Options{
						Seed:    cfg.Seed + uint64(r),
						Latency: simnet.UniformLatency(1, 3),
					},
				}
				out, err := sc.Run()
				if err != nil {
					return nil, fmt.Errorf("E12 %v/%v: %w", kind, frac, err)
				}
				if out.BaselineSatisfaction > 0 {
					ratios = append(ratios, out.HonestSatisfaction/out.BaselineSatisfaction)
				}
				rev += out.Revocations
				dis += out.DissolvedLocks
				dead += out.DeadLocks
			}
			if len(ratios) == 0 {
				continue
			}
			sum := stats.Summarize(ratios)
			t.AddRowf(kind.String(), frac, sum.N, sum.Mean, sum.Min, rev, dis, dead)
		}
	}
	return []*stats.Table{t}, nil
}

// E13Variants (§7 ablations): coverage-first vs LIC on worst-off
// metrics, and the local-search pass's gap closure toward the exact
// optimum.
func E13Variants(cfg Config) ([]*stats.Table, error) {
	coverage := stats.NewTable("E13a (§7): coverage-first vs LIC (worst-off peers); 'dist' = distributed two-phase protocol equality",
		"topology", "b", "LIC zero-conn", "cov zero-conn", "LIC min sat", "cov min sat",
		"LIC total sat", "cov total sat", "dist")
	n := cfg.pick(40, 150)
	for _, topo := range topologies()[:3] {
		for _, b := range []int{2, 3} {
			w, err := buildWorkload(cfg.Seed^0x13a^uint64(b), topo, metrics()[0], n, b)
			if err != nil {
				return nil, err
			}
			sys := w.System
			tbl := satisfaction.NewTable(sys)
			lic := matching.LIC(sys, tbl)
			cov := variants.CoverageFirst(sys, tbl)
			dist, _, err := phased.Run(sys, tbl, simnet.Options{
				Seed:    cfg.Seed + uint64(b),
				Latency: simnet.ExponentialLatency(4),
			})
			if err != nil {
				return nil, fmt.Errorf("E13 phased: %w", err)
			}
			distEq := "=="
			if !dist.Equal(cov) {
				distEq = "DIFFERS"
			}
			coverage.AddRowf(topo.name, b,
				zeroConn(sys, lic), zeroConn(sys, cov),
				stats.Min(lic.PerNodeSatisfaction(sys)), stats.Min(cov.PerNodeSatisfaction(sys)),
				lic.TotalSatisfaction(sys), cov.TotalSatisfaction(sys), distEq)
			if distEq != "==" {
				return nil, fmt.Errorf("E13: distributed coverage-first diverged on %s b=%d", topo.name, b)
			}
		}
	}

	improve := stats.NewTable("E13b (§7): local-search pass closing the LIC-to-OPT gap",
		"instances", "LIC/OPT mean", "improved/OPT mean", "gap closed", "augmentations")
	var licSum, impSum, optSum float64
	augs := 0
	count := 0
	seeds := cfg.pick(10, 60)
	for s := 0; s < seeds; s++ {
		sys, err := smallGNPSystem(cfg.Seed+uint64(s)*31, 10, 0.4, 2)
		if err != nil {
			return nil, err
		}
		if sys.Graph().NumEdges() > matching.MaxOracleEdges || sys.Graph().NumEdges() == 0 {
			continue
		}
		tbl := satisfaction.NewTable(sys)
		lic := matching.LIC(sys, tbl)
		licW := lic.Weight(sys)
		imp := lic.Clone()
		ist := variants.Improve(sys, tbl, imp)
		_, optW, err := matching.MaxWeightBMatching(sys, tbl)
		if err != nil {
			return nil, err
		}
		if optW == 0 {
			continue
		}
		licSum += licW
		impSum += imp.Weight(sys)
		optSum += optW
		augs += ist.Augmentations
		count++
	}
	if count > 0 {
		gapClosed := 0.0
		if optSum > licSum {
			gapClosed = (impSum - licSum) / (optSum - licSum)
		}
		improve.AddRowf(count, licSum/optSum, impSum/optSum, gapClosed, augs)
	}
	return []*stats.Table{coverage, improve}, nil
}

// zeroConn counts non-isolated peers that ended with no connection.
func zeroConn(sys *pref.System, m *matching.Matching) int {
	c := 0
	for i := 0; i < sys.Graph().NumNodes(); i++ {
		if sys.Graph().Degree(i) > 0 && m.DegreeOf(i) == 0 {
			c++
		}
	}
	return c
}
