// Package experiments implements the empirical validation suite of
// DESIGN.md §3. The paper (IPDPS 2010) is an algorithms paper with no
// experimental tables or figures of its own — its claims are theorems —
// so the reproduction's "tables and figures" are one experiment per
// theorem/lemma plus the scaling studies a systems audience expects:
//
//	E1  Theorem 2  — LIC ≥ ½·OPT on the weight objective
//	E2  Lemmas 3–6 — LID ≡ LIC under arbitrary asynchrony
//	E3  Theorem 3  — LID satisfaction ≥ ¼(1+1/bmax)·OPT
//	E4  Lemma 1    — static-share lower bound ½(1+1/b)
//	E5  Lemma 5    — termination + message complexity
//	E6  convergence time (causal rounds)
//	E7  baseline comparison (random / selfish / best-response)
//	E8  eq.-1/eq.-4 identities (the Fig.-1 worked example, quantified)
//	E9  §7 churn extension — repair cost and quality
//	E10 wall-clock scalability of LIC and both LID runtimes
//
// Every experiment is deterministic given Config.Seed and returns
// stats.Tables; cmd/experiments renders them and EXPERIMENTS.md records
// claimed-versus-measured values.
package experiments

import (
	"fmt"

	"overlaymatch/internal/detector"
	"overlaymatch/internal/dynamic"
	"overlaymatch/internal/faults"
	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	mreg "overlaymatch/internal/metrics"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/reliable"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/simnet"
)

// Config parameterizes a run of the suite.
type Config struct {
	// Seed drives every workload and latency draw.
	Seed uint64
	// Quick shrinks sizes/repetitions so the whole suite runs in
	// seconds; the full suite is sized for minutes. Tests use Quick.
	Quick bool
	// Workers bounds the parallelism of embarrassingly-parallel sweeps
	// (the exact-oracle comparisons); 0 means GOMAXPROCS. Output is
	// bit-identical for any worker count.
	Workers int
	// Metrics, when non-nil, is the shared sink registry the
	// message-heavy experiments (E5, E6, E11, E14) merge their simnet
	// instruments into. Purely additive: the tables are computed from
	// the per-run Stats views and are bit-identical with or without it.
	Metrics *mreg.Registry
	// Faults, when non-nil, is the link-level adversary threaded into
	// the message-level experiments (E2, E5, E6 and E15's custom row)
	// as a simnet.LinkPolicy. The zero spec constructs an injector
	// that never fires and leaves every table byte-identical to a nil
	// Faults — the hook's no-op guarantee. Non-delivery-preserving
	// specs (drops, corruption) make the bare-LID experiments fail
	// honestly; E15 is the experiment designed to run them, through
	// the reliable substrate.
	Faults *faults.Spec
	// FaultsSeed salts the per-run injection streams so the adversary
	// varies independently of the workload seed.
	FaultsSeed uint64
	// RTO overrides the retransmission timeout of the
	// transport-backed experiments (E11, E15); 0 keeps the historical
	// default of 30 virtual time units, so default tables stay
	// byte-identical.
	RTO float64
	// AdaptiveRTO switches the transport-backed experiments to the
	// RFC-6298 adaptive estimator (reliable.Config.Adaptive). Off by
	// default for the same byte-stability reason.
	AdaptiveRTO bool
	// Detector, when non-nil, overrides the failure-detector
	// configuration of the self-healing experiment (E16); nil means
	// detector.Default().
	Detector *detector.Config
	// ProbeInterval is the virtual-time spacing of the per-round
	// stability probes (E17); 0 means 1, one probe per unit-latency
	// round.
	ProbeInterval float64
	// Churn overrides the membership feed of the churn-survival
	// experiment (E19); the zero spec keeps E19's built-in feed, so
	// default tables stay byte-identical.
	Churn dynamic.ChurnSpec
	// RepairRounds, when positive, replaces E19's truncated-budget
	// sweep {1, 2, 4} with the single budget k = RepairRounds. 0 keeps
	// the sweep.
	RepairRounds int
	// ShedDepth overrides the shedding threshold of E19's overload
	// row; 0 keeps the built-in depth of 2.
	ShedDepth int
}

// probeInterval resolves the stability-probe spacing.
func (c Config) probeInterval() float64 {
	if c.ProbeInterval > 0 {
		return c.ProbeInterval
	}
	return 1
}

// policy returns the fault-injection policy for one run (nil when no
// adversary is configured). salt decorrelates the injection streams of
// different runs within one experiment.
func (c Config) policy(salt uint64) simnet.LinkPolicy {
	if c.Faults == nil {
		return nil
	}
	return faults.NewInjector(*c.Faults, c.FaultsSeed^(salt*0x9e3779b97f4a7c15+0x7f4a7c15))
}

// reliableConfig is the transport configuration of the
// transport-backed experiments; the zero Config reproduces the
// historical reliable.Wrap(handlers, 30, 0).
func (c Config) reliableConfig() reliable.Config {
	rto := c.RTO
	if rto <= 0 {
		rto = 30
	}
	return reliable.Config{RTO: rto, Adaptive: c.AdaptiveRTO}
}

// detectorConfig is E16's failure-detector configuration.
func (c Config) detectorConfig() detector.Config {
	if c.Detector != nil {
		return *c.Detector
	}
	return detector.Default()
}

func (c Config) pick(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Workload is one (graph, preferences) instance plus labels.
type Workload struct {
	Name   string
	Metric string
	System *pref.System
}

// topologySpec names a generator at a target size.
type topologySpec struct {
	name  string
	build func(src *rng.Source, n int) (*graph.Graph, [][2]float64)
}

// topologies returns the standard topology family, each returning
// optional coordinates (for the distance metric).
func topologies() []topologySpec {
	return []topologySpec{
		{"gnp", func(src *rng.Source, n int) (*graph.Graph, [][2]float64) {
			// Constant expected average degree ~8 keeps density
			// comparable across sizes.
			p := 8.0 / float64(n-1)
			if p > 1 {
				p = 1
			}
			return gen.GNP(src, n, p), nil
		}},
		{"geometric", func(src *rng.Source, n int) (*graph.Graph, [][2]float64) {
			// Radius for expected degree ≈ 8: deg ≈ πr²n ⇒ r ≈ 1.6/√n.
			radius := 1.0
			if n > 0 {
				radius = 1.6 / sqrtFloat(float64(n))
			}
			g, pts := gen.Geometric(src, n, radius)
			return g, pts
		}},
		{"ba", func(src *rng.Source, n int) (*graph.Graph, [][2]float64) {
			m := 4
			if n <= m {
				m = n - 1
			}
			if m < 1 {
				return graph.NewBuilder(n).MustGraph(), nil
			}
			return gen.BarabasiAlbert(src, n, m), nil
		}},
		{"ring", func(_ *rng.Source, n int) (*graph.Graph, [][2]float64) {
			return gen.Ring(n), nil
		}},
		{"ws", func(src *rng.Source, n int) (*graph.Graph, [][2]float64) {
			k := 6
			if k >= n {
				k = (n - 1) / 2 * 2
			}
			if k < 2 {
				return gen.Ring(n), nil
			}
			return gen.WattsStrogatz(src, n, k, 0.2), nil
		}},
	}
}

func sqrtFloat(x float64) float64 {
	// Newton's iterations would be silly; math.Sqrt via the math import
	// kept out of this file's head — tiny helper for readability.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// metricSpec names a metric builder.
type metricSpec struct {
	name  string
	build func(src *rng.Source, g *graph.Graph, coords [][2]float64) pref.Metric
}

// metrics returns the standard metric family from the paper's intro:
// private random scores (cyclic-prone), symmetric affinity (acyclic),
// geometric distance, global resources, transaction history.
func metrics() []metricSpec {
	return []metricSpec{
		{"random", func(src *rng.Source, _ *graph.Graph, _ [][2]float64) pref.Metric {
			return pref.NewRandomMetric(src)
		}},
		{"symmetric", func(src *rng.Source, _ *graph.Graph, _ [][2]float64) pref.Metric {
			return pref.NewSymmetricRandomMetric(src)
		}},
		{"distance", func(src *rng.Source, g *graph.Graph, coords [][2]float64) pref.Metric {
			if coords == nil {
				// Synthesize coordinates when the topology has none.
				coords = make([][2]float64, g.NumNodes())
				for i := range coords {
					coords[i] = [2]float64{src.Float64(), src.Float64()}
				}
			}
			return pref.DistanceMetric{Coords: coords}
		}},
		{"resource", func(src *rng.Source, g *graph.Graph, _ [][2]float64) pref.Metric {
			capacity := make([]float64, g.NumNodes())
			for i := range capacity {
				capacity[i] = src.Float64()
			}
			return pref.ResourceMetric{Capacity: capacity}
		}},
		{"transactions", func(src *rng.Source, g *graph.Graph, _ [][2]float64) pref.Metric {
			n := g.NumNodes()
			history := make([][]float64, n)
			for i := range history {
				history[i] = make([]float64, n)
				for _, j := range g.Neighbors(i) {
					history[i][j] = src.NormFloat64()
				}
			}
			return pref.TransactionMetric{History: history}
		}},
	}
}

// buildWorkload constructs one named workload deterministically.
func buildWorkload(seed uint64, topo topologySpec, metric metricSpec, n, b int) (Workload, error) {
	src := rng.New(seed)
	g, coords := topo.build(src.Split(), n)
	m := metric.build(src.Split(), g, coords)
	s, err := pref.Build(g, m, pref.UniformQuota(b))
	if err != nil {
		return Workload{}, fmt.Errorf("experiments: workload %s/%s n=%d: %w", topo.name, metric.name, n, err)
	}
	return Workload{Name: topo.name, Metric: metric.name, System: s}, nil
}

// smallGNPSystem builds an oracle-sized instance (for E1/E3).
func smallGNPSystem(seed uint64, n int, p float64, b int) (*pref.System, error) {
	src := rng.New(seed)
	g := gen.GNP(src, n, p)
	return pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(b))
}
