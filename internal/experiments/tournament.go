package experiments

import (
	"encoding/json"
	"fmt"

	"overlaymatch/internal/faults"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/stats"
	"overlaymatch/internal/tournament"
	"overlaymatch/internal/workload"
)

// e18Workers is the worker sweep of E18's determinism check: the entire
// scored bracket — every cell of every scenario, JSON-marshalled — must
// be byte-identical for every worker count, the same bar E17 holds the
// probe series to.
var e18Workers = []int{1, 2, 4}

// E18Tournament: the stability tournament. One production-shaped
// scenario per workload family (workload.DefaultSuite) hosts the three
// contenders — LID (the paper's Algorithm 1), a distributed
// Gale–Shapley propose/accept loop over the same shared eq.-9 weight
// order, and the Barenboim–Oren-style one-round backup placement — and
// every (scenario, algorithm) cell is scored with the PR 6 stability
// yardsticks: matched-weight fraction of the LIC optimum, blocking
// pairs under the weight order, the rounds-to-ε ladder, and cumulative
// message/byte cost.
//
// Beyond tabulating the bracket, four properties are enforced as hard
// errors:
//
//   - LID ends exactly stable on every scenario: weight fraction
//     exactly 1 and exactly 0 blocking pairs (Lemmas 3–6: LID
//     terminates in LIC, and LIC is stable under the shared order).
//   - On every non-adversarial scenario no contender beats LID's
//     weight fraction (the adversarial families master/antilocal are
//     exactly the distributions built to dethrone greedy locality, so
//     they are exempt — that is what makes them interesting columns).
//   - Every cell's stability accounting is populated: the full
//     rounds-to-ε ladder, positive message and byte totals, ranks a
//     strict 1..k per scenario.
//   - The whole bracket is byte-identical across worker counts
//     {1, 2, 4} and the instance derivation is spec-keyed, so the
//     bracket a CLI replay of any single spec produces agrees with the
//     suite's cell.
//
// A second, faulted axis reruns the bracket under a seeded pair of
// healing crash windows with the reliable transport stacked beneath
// every contender. Only the fault-tolerant contenders enter
// (tournament.FaultTolerantAlgorithms — Gale–Shapley's FSM needs
// per-link FIFO delivery, which retransmission violates); the gates
// weaken accordingly: every cell must still be valid with weight
// fraction in [0, 1], and LID must re-stabilize completely (weight
// fraction 1, zero blocking pairs) on the non-adversarial families
// once the windows heal. Worker byte-identity holds here too.
func E18Tournament(cfg Config) ([]*stats.Table, error) {
	n := cfg.pick(48, 240)
	specs := workload.DefaultSuite(n)
	opts := tournament.Options{Seed: cfg.Seed + 18, ProbeInterval: cfg.ProbeInterval}

	var (
		results  []tournament.ScenarioResult
		baseline string
	)
	for i, workers := range e18Workers {
		opts.Workers = workers
		res, err := tournament.RunBracket(specs, tournament.DefaultAlgorithms(), opts)
		if err != nil {
			return nil, fmt.Errorf("E18 workers=%d: %w", workers, err)
		}
		var cells []tournament.Cell
		for _, r := range res {
			cells = append(cells, r.Cells...)
		}
		raw, err := json.Marshal(cells)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			results, baseline = res, string(raw)
		} else if string(raw) != baseline {
			return nil, fmt.Errorf("E18: bracket with %d workers differs from %d workers — scoring must be schedule-free",
				workers, e18Workers[0])
		}
	}

	bracket := stats.NewTable("E18: stability tournament (scenario x algorithm, ranked per scenario)",
		"scenario", "alg", "rank", "weight frac", "blocking pairs", "unmatched",
		"eps=0.01", "eps=0", "msgs", "bytes", "final t")
	summary := stats.NewTable("E18 summary: per-scenario podium",
		"scenario", "spec", "n", "edges", "winner", "lid frac", "gs frac", "bp frac", "workers")

	for _, r := range results {
		frac := map[string]float64{}
		var lidCell *tournament.Cell
		for i := range r.Cells {
			c := &r.Cells[i]
			if c.Rank != i+1 {
				return nil, fmt.Errorf("E18 %s: cell %d carries rank %d", r.Spec, i, c.Rank)
			}
			if c.Msgs <= 0 || c.Bytes <= 0 {
				return nil, fmt.Errorf("E18 %s/%s: empty message accounting (msgs=%d bytes=%d)",
					r.Spec, c.Algorithm, c.Msgs, c.Bytes)
			}
			for _, eps := range obs.Epsilons {
				if _, ok := c.RoundsToEps[obs.EpsKey(eps)]; !ok {
					return nil, fmt.Errorf("E18 %s/%s: rounds-to-eps ladder misses %s", r.Spec, c.Algorithm, obs.EpsKey(eps))
				}
			}
			frac[c.Algorithm] = c.WeightFrac
			if c.Algorithm == "lid" {
				lidCell = c
			}
			bracket.AddRowf(c.Scenario, c.Algorithm, c.Rank,
				fmt.Sprintf("%.4f", c.WeightFrac), c.BlockingPairs, c.Unmatched,
				obs.SummaryValue(c.RoundsToEps, 0.01), obs.SummaryValue(c.RoundsToEps, 0),
				c.Msgs, c.Bytes, c.FinalTime)
		}
		if lidCell == nil {
			return nil, fmt.Errorf("E18 %s: no LID cell", r.Spec)
		}
		if lidCell.WeightFrac != 1 || lidCell.BlockingPairs != 0 {
			return nil, fmt.Errorf("E18 %s: LID ended at weight frac %v with %d blocking pairs — LID must terminate in LIC, exactly stable",
				r.Spec, lidCell.WeightFrac, lidCell.BlockingPairs)
		}
		for _, c := range r.Cells {
			if !r.Spec.Adversarial() && c.WeightFrac > lidCell.WeightFrac {
				return nil, fmt.Errorf("E18 %s: %s weight fraction %v beats LID's %v on a non-adversarial scenario",
					r.Spec, c.Algorithm, c.WeightFrac, lidCell.WeightFrac)
			}
		}
		win := r.Cells[0]
		summary.AddRowf(win.Scenario, r.Spec.String(), win.N, win.Edges, win.Algorithm,
			fmt.Sprintf("%.4f", frac["lid"]), fmt.Sprintf("%.4f", frac["gs"]), fmt.Sprintf("%.4f", frac["bp"]),
			fmt.Sprintf("identical x%d", len(e18Workers)))
	}

	faulted, err := e18Faulted(cfg, specs)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{bracket, summary, faulted}, nil
}

// e18Faulted runs E18's faulted axis: the fault-tolerant contenders on
// the same scenario suite under two seeded healing crash windows, with
// the reliable transport restoring exactly-once delivery. The injector
// is rebuilt per cell from the same seed, so the adversary's schedule
// is identical across contenders and worker counts.
func e18Faulted(cfg Config, specs []workload.Spec) (*stats.Table, error) {
	n := cfg.pick(48, 240)
	fs := faults.Spec{Crashes: []faults.Crash{
		{Start: 3, End: 25, Node: 2},
		{Start: 10, End: 30, Node: (n - 1) / 2},
	}}
	if err := fs.Validate(); err != nil {
		return nil, fmt.Errorf("E18 faulted: %w", err)
	}
	opts := tournament.Options{
		Seed:          cfg.Seed + 18,
		ProbeInterval: cfg.ProbeInterval,
		Faults:        fs,
		FaultsSeed:    cfg.Seed*77 + 18,
		Reliable:      true,
		RTO:           15,
	}

	var (
		results  []tournament.ScenarioResult
		baseline string
	)
	for i, workers := range e18Workers {
		opts.Workers = workers
		res, err := tournament.RunBracket(specs, tournament.FaultTolerantAlgorithms(), opts)
		if err != nil {
			return nil, fmt.Errorf("E18 faulted workers=%d: %w", workers, err)
		}
		var cells []tournament.Cell
		for _, r := range res {
			cells = append(cells, r.Cells...)
		}
		raw, err := json.Marshal(cells)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			results, baseline = res, string(raw)
		} else if string(raw) != baseline {
			return nil, fmt.Errorf("E18 faulted: bracket with %d workers differs from %d workers",
				workers, e18Workers[0])
		}
	}

	table := stats.NewTable("E18 faulted bracket: crash windows + reliable transport (fault-tolerant contenders)",
		"scenario", "alg", "rank", "weight frac", "blocking pairs", "unmatched", "msgs", "bytes", "final t")
	for _, r := range results {
		for _, c := range r.Cells {
			if c.WeightFrac < 0 || c.WeightFrac > 1+1e-9 {
				return nil, fmt.Errorf("E18 faulted %s/%s: weight fraction %v out of [0,1]",
					r.Spec, c.Algorithm, c.WeightFrac)
			}
			if c.Algorithm == "lid" && !r.Spec.Adversarial() {
				if c.WeightFrac != 1 || c.BlockingPairs != 0 {
					return nil, fmt.Errorf("E18 faulted %s: LID ended at weight frac %v with %d blocking pairs — repair must resynchronize after the windows heal",
						r.Spec, c.WeightFrac, c.BlockingPairs)
				}
			}
			table.AddRowf(c.Scenario, c.Algorithm, c.Rank,
				fmt.Sprintf("%.4f", c.WeightFrac), c.BlockingPairs, c.Unmatched,
				c.Msgs, c.Bytes, c.FinalTime)
		}
	}
	return table, nil
}
