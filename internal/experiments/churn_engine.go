package experiments

import (
	"encoding/json"
	"fmt"
	"sort"

	"overlaymatch/internal/dynamic"
	"overlaymatch/internal/stats"
	"overlaymatch/internal/workload"
)

// e19Workers is the worker sweep of E19's determinism check: every
// cell's epoch records and final matching must be byte-identical for
// every worker count.
var e19Workers = []int{1, 2, 4}

// e19Families are the workload families of the churn-intensity sweep:
// swarm and geo exercise join/leave churn on production-shaped
// topologies; drift additionally replays its preference epochs as
// rerank events through the same engine queue, so membership and
// preference churn coalesce into shared repair epochs.
var e19Families = []string{"swarm", "geo", "drift"}

// e19Cell is the JSON-marshalled worker-identity fingerprint of one
// (family, budget) cell: the full epoch-record stream plus the final
// matching and its weight.
type e19Cell struct {
	Family  string                `json:"family"`
	Budget  string                `json:"budget"`
	Records []dynamic.EpochRecord `json:"records"`
	Edges   [][2]int              `json:"edges"`
	Weight  float64               `json:"weight"`
}

// e19Budget is one row configuration of the repair-budget sweep.
type e19Budget struct {
	label  string
	rounds int // EngineOptions.RepairRounds (0 = full)
	shed   int // EngineOptions.ShedDepth (0 = never shed)
}

// E19ChurnEngine: the churn-survival engine under sustained churn — a
// churn-intensity × repair-budget sweep over internal/dynamic's epoch
// engine. Every cell streams the same seeded membership feed (plus
// drift's rerank epochs for the drift family) through the update
// queue and scores the epochs it produced:
//
//	p99 lat     99th-percentile virtual repair latency per epoch
//	region      mean / max bounded-repair region size (nodes touched)
//	deferred    certified blocking-edge bound left after the last epoch
//	blocking    measured blocking edges at the end (MeasureStability)
//	w/inh-LIC   final weight over the live-LIC weight under the
//	            inherited order — the degradation the budget bought
//
// Hard gates, enforced as errors:
//
//   - Full budget converges exactly: zero deferred, zero blocking, and
//     the final matching equals Overlay.LiveLICInherited — the unique
//     stable matching of the live edge set under the inherited weight
//     order (PR 3's equivalence, replayed through the epoch queue).
//   - Every truncated epoch keeps the certified bound: measured
//     blocking edges ≤ the deferred count, on every record of every
//     cell (the Floréen-style degradation bound of DESIGN.md §11).
//   - The overload row actually sheds (TotalSheds > 0) and still
//     yields a valid matching: shedding drops repair work, never
//     correctness.
//   - Every cell is byte-identical across worker counts {1, 2, 4}.
func E19ChurnEngine(cfg Config) ([]*stats.Table, error) {
	n := cfg.pick(48, 192)
	churn := cfg.Churn
	if churn.IsZero() {
		churn = dynamic.ChurnSpec{
			Events:    cfg.pick(40, 160),
			LeaveProb: 0.55,
			MinAlive:  n / 4,
			Rate:      4,
		}
	}
	if err := churn.Validate(); err != nil {
		return nil, fmt.Errorf("E19: churn spec: %w", err)
	}
	shedDepth := cfg.ShedDepth
	if shedDepth <= 0 {
		shedDepth = 2
	}
	truncated := []int{1, 2, 4}
	if cfg.RepairRounds > 0 {
		truncated = []int{cfg.RepairRounds}
	}
	budgets := []e19Budget{{label: "full", rounds: 0}}
	for _, k := range truncated {
		budgets = append(budgets, e19Budget{label: fmt.Sprintf("k=%d", k), rounds: k})
	}
	budgets = append(budgets, e19Budget{label: fmt.Sprintf("shed=%d", shedDepth), rounds: 0, shed: shedDepth})

	table := stats.NewTable(fmt.Sprintf("E19: churn-survival engine, %s (family x repair budget)", churn),
		"family", "budget", "epochs", "retries", "sheds", "p99 lat", "mean region", "max region",
		"deferred", "blocking", "w/inh-LIC", "workers")

	for _, family := range e19Families {
		spec, err := workload.Parse(fmt.Sprintf("%s:n=%d", family, n))
		if err != nil {
			return nil, fmt.Errorf("E19 %s: %w", family, err)
		}
		for _, b := range budgets {
			var (
				cell     e19Cell
				eng      *dynamic.Engine
				baseline string
			)
			for i, workers := range e19Workers {
				c, e, err := runE19Cell(cfg, spec, b, churn, workers)
				if err != nil {
					return nil, fmt.Errorf("E19 %s/%s workers=%d: %w", family, b.label, workers, err)
				}
				raw, err := json.Marshal(c)
				if err != nil {
					return nil, err
				}
				if i == 0 {
					cell, eng, baseline = c, e, string(raw)
				} else if string(raw) != baseline {
					return nil, fmt.Errorf("E19 %s/%s: cell with %d workers differs from %d workers — repair must be schedule-free",
						family, b.label, workers, e19Workers[0])
				}
			}
			row, err := e19Score(family, b, cell, eng)
			if err != nil {
				return nil, err
			}
			table.AddRowf(row...)
		}
	}
	return []*stats.Table{table}, nil
}

// runE19Cell streams one cell's schedule through a fresh engine.
func runE19Cell(cfg Config, spec workload.Spec, b e19Budget, churn dynamic.ChurnSpec, workers int) (e19Cell, *dynamic.Engine, error) {
	inst, err := workload.Build(spec, cfg.Seed+19, workers)
	if err != nil {
		return e19Cell{}, nil, err
	}
	sys := inst.System
	if len(inst.Epochs) > 0 {
		// Drift starts at the first epoch and reaches System through
		// rerank events, so preference churn flows through the queue.
		sys = inst.Epochs[0]
	}
	eng, err := dynamic.NewEngine(sys, dynamic.EngineOptions{
		RepairRounds:     b.rounds,
		ShedDepth:        b.shed,
		Workers:          workers,
		MeasureStability: true,
	})
	if err != nil {
		return e19Cell{}, nil, err
	}
	n := sys.Graph().NumNodes()
	evs, err := churn.Schedule(n, cfg.Seed+19)
	if err != nil {
		return e19Cell{}, nil, err
	}
	if len(inst.Epochs) > 1 {
		evs = dynamic.MergeSchedules(evs, dynamic.DriftSchedule(inst.Epochs, 2.0, 3.0))
	}
	if _, err := dynamic.RunSchedule(eng, evs); err != nil {
		return e19Cell{}, nil, err
	}
	o := eng.Overlay()
	if err := o.Validate(); err != nil {
		return e19Cell{}, nil, fmt.Errorf("invalid matching after drain: %w", err)
	}
	cell := e19Cell{
		Family:  spec.Family,
		Budget:  b.label,
		Records: eng.Records(),
		Weight:  o.Matching().Weight(o.System()),
	}
	for _, e := range o.System().Graph().Edges() {
		if o.Matching().Has(e.U, e.V) {
			cell.Edges = append(cell.Edges, [2]int{int(e.U), int(e.V)})
		}
	}
	return cell, eng, nil
}

// e19Score gates one cell and renders its table row.
func e19Score(family string, b e19Budget, cell e19Cell, eng *dynamic.Engine) ([]interface{}, error) {
	o := eng.Overlay()
	var (
		latencies      []float64
		regionSum      int
		maxRegion      int
		retries, sheds int
		lastDeferred   int
		lastBlocking   int
	)
	for _, r := range cell.Records {
		latencies = append(latencies, r.Latency())
		regionSum += r.Region
		maxRegion = max(maxRegion, r.Region)
		retries += r.Retries
		if r.Shed {
			sheds++
		}
		if r.Blocking < 0 {
			return nil, fmt.Errorf("E19 %s/%s: epoch %d missing stability measurement", family, b.label, r.Epoch)
		}
		if r.Blocking > r.Deferred {
			return nil, fmt.Errorf("E19 %s/%s: epoch %d has %d blocking edges above its certified bound %d",
				family, b.label, r.Epoch, r.Blocking, r.Deferred)
		}
		lastDeferred, lastBlocking = r.Deferred, r.Blocking
	}
	if len(cell.Records) == 0 {
		return nil, fmt.Errorf("E19 %s/%s: schedule produced no epochs", family, b.label)
	}

	inherited := o.LiveLICInherited()
	inhWeight := inherited.Weight(o.System())
	degradation := 1.0
	if inhWeight > 0 {
		degradation = cell.Weight / inhWeight
	}
	if b.rounds == 0 && b.shed == 0 {
		if lastDeferred != 0 || lastBlocking != 0 {
			return nil, fmt.Errorf("E19 %s/full: ended with deferred=%d blocking=%d — full budget must converge",
				family, lastDeferred, lastBlocking)
		}
		if !o.Matching().Equal(inherited) {
			return nil, fmt.Errorf("E19 %s/full: final matching differs from the live inherited LIC", family)
		}
	}
	if b.shed > 0 && eng.TotalSheds() == 0 {
		return nil, fmt.Errorf("E19 %s/%s: overload row never shed — threshold too high for the feed", family, b.label)
	}

	sort.Float64s(latencies)
	meanRegion := float64(regionSum) / float64(len(cell.Records))
	return []interface{}{
		family, b.label, len(cell.Records), retries, sheds,
		fmt.Sprintf("%.2f", stats.Percentile(latencies, 0.99)),
		fmt.Sprintf("%.1f", meanRegion), maxRegion,
		lastDeferred, lastBlocking,
		fmt.Sprintf("%.4f", degradation),
		fmt.Sprintf("identical x%d", len(e19Workers)),
	}, nil
}
