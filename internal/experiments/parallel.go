package experiments

import (
	"runtime"
	"sync"
)

// parallelFor evaluates fn(0..n-1) across `workers` goroutines
// (workers <= 0 means GOMAXPROCS) and returns the results in index
// order, so output is bit-identical to the serial run regardless of
// scheduling — experiment determinism is non-negotiable. The first
// error encountered (lowest index) wins; remaining work still drains.
func parallelFor[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					results[i], errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
