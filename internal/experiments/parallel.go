package experiments

import (
	"overlaymatch/internal/par"
)

// parallelFor evaluates fn(0..n-1) across `workers` goroutines
// (workers <= 0 means GOMAXPROCS) and returns the results in index
// order, so output is bit-identical to the serial run regardless of
// scheduling — experiment determinism is non-negotiable. The first
// error encountered (lowest index) wins; remaining work still drains.
// Oracle sweeps have wildly uneven per-item cost (branch-and-bound),
// hence the dynamic queue of par.Map rather than block partitioning.
func parallelFor[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return par.Map(par.Workers(workers), n, fn)
}
