package experiments

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	mreg "overlaymatch/internal/metrics"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/workload"
)

// The experiment runners enforce the paper's bounds internally
// (returning errors on violation), so running each in Quick mode is
// itself a meaningful end-to-end test of the whole stack.

func quickCfg() Config { return Config{Seed: 12345, Quick: true} }

func TestAllRegistryComplete(t *testing.T) {
	exps := All()
	if len(exps) != 20 {
		t.Fatalf("registry has %d experiments, want 20", len(exps))
	}
	for i, e := range exps {
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Fatalf("registry order wrong at %d: %s", i, e.ID)
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("%s incomplete", e.ID)
		}
	}
	if _, ok := Lookup("E5"); !ok {
		t.Fatal("Lookup(E5) failed")
	}
	if _, ok := Lookup("E99"); ok {
		t.Fatal("Lookup(E99) should fail")
	}
}

func TestE1(t *testing.T) {
	tables, err := E1LICWeightRatio(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].NumRows() == 0 {
		t.Fatal("E1 produced no rows")
	}
}

func TestE2(t *testing.T) {
	tables, err := E2LIDEquivalence(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].NumRows() == 0 {
		t.Fatal("E2 produced no rows")
	}
}

func TestE3(t *testing.T) {
	tables, err := E3SatisfactionRatio(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].NumRows() == 0 {
		t.Fatal("E3 produced no rows")
	}
}

func TestE4(t *testing.T) {
	tables, err := E4StaticShare(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("E4 should produce sweep + tightness tables, got %d", len(tables))
	}
	// The tightness table's gap column must be ~0 (bound attained).
	var b strings.Builder
	if err := tables[1].WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	for _, line := range lines[1:] {
		cells := strings.Split(line, ",")
		gap, err := strconv.ParseFloat(cells[len(cells)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if gap > 1e-9 || gap < -1e-9 {
			t.Fatalf("adversarial instance gap %v, want 0", gap)
		}
	}
}

func TestE5(t *testing.T) {
	tables, err := E5MessageComplexity(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("E5 should produce 3 series, got %d", len(tables))
	}
}

func TestE6(t *testing.T) {
	tables, err := E6ConvergenceRounds(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].NumRows() == 0 {
		t.Fatal("E6 rows missing")
	}
}

func TestE7LIDWinsOnSatisfaction(t *testing.T) {
	tables, err := E7Baselines(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Parse the CSV and verify that per (topology, metric) group, lid's
	// total weight is the maximum among strategies, and lid's mean
	// satisfaction beats random's.
	var b strings.Builder
	if err := tables[0].WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	type row struct {
		strategy string
		sat, wgt float64
	}
	groups := map[string][]row{}
	for _, line := range lines[1:] {
		c := strings.Split(line, ",")
		sat, _ := strconv.ParseFloat(c[4], 64)
		wgt, _ := strconv.ParseFloat(c[5], 64)
		key := c[0] + "/" + c[1]
		groups[key] = append(groups[key], row{c[3], sat, wgt})
	}
	// LID holds only an approximation guarantee on the true objective,
	// so a lucky baseline can edge it on one instance; the shape claim
	// is aggregate dominance across the whole grid, plus per-group
	// weight dominance (LID greedily maximizes exactly the weight).
	sums := map[string]float64{}
	for key, rows := range groups {
		var lidW float64
		found := map[string]bool{}
		for _, r := range rows {
			sums[r.strategy] += r.sat
			found[r.strategy] = true
			if r.strategy == "lid" {
				lidW = r.wgt
			}
		}
		for _, want := range []string{"lid", "random", "selfish", "bestresp"} {
			if !found[want] {
				t.Fatalf("%s: strategy %s missing", key, want)
			}
		}
		for _, r := range rows {
			if r.strategy == "selfish" && r.wgt > lidW+1e-9 {
				t.Fatalf("%s: selfish weight %v above lid %v", key, r.wgt, lidW)
			}
		}
	}
	if sums["lid"] <= sums["random"] {
		t.Fatalf("aggregate: lid satisfaction %v not above random %v", sums["lid"], sums["random"])
	}
	if sums["lid"] <= sums["selfish"] {
		t.Fatalf("aggregate: lid satisfaction %v not above selfish %v", sums["lid"], sums["selfish"])
	}
}

func TestE8(t *testing.T) {
	if _, err := E8Identities(quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestE9(t *testing.T) {
	tables, err := E9Churn(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].NumRows() == 0 {
		t.Fatal("E9 produced no rows")
	}
}

func TestE10(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tables, err := E10Scalability(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].NumRows() == 0 {
		t.Fatal("E10 produced no rows")
	}
}

func TestRunAndRenderTextAndMarkdown(t *testing.T) {
	e, _ := Lookup("E4")
	var txt, md strings.Builder
	if err := RunAndRender(e, quickCfg(), &txt, false); err != nil {
		t.Fatal(err)
	}
	if err := RunAndRender(e, quickCfg(), &md, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "== E4") || !strings.Contains(md.String(), "### ") {
		t.Fatal("render output malformed")
	}
}

func TestDeterministicTables(t *testing.T) {
	render := func() string {
		var b strings.Builder
		tables, err := E5MessageComplexity(quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		for _, tbl := range tables {
			if err := tbl.WriteCSV(&b); err != nil {
				t.Fatal(err)
			}
		}
		return b.String()
	}
	if render() != render() {
		t.Fatal("experiment output not deterministic")
	}
}

func TestE11(t *testing.T) {
	tables, err := E11LossyLinks(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].NumRows() != 5 {
		t.Fatalf("E11 rows = %d, want 5 loss levels", tables[0].NumRows())
	}
}

func TestE12(t *testing.T) {
	tables, err := E12Adversaries(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].NumRows() == 0 {
		t.Fatal("E12 produced no rows")
	}
	// Every satisfaction ratio column must be within (0, 1.05]: honest
	// peers cannot beat their own adversary-free baseline by much
	// (small overshoot possible since LIC is not optimal).
	var b strings.Builder
	if err := tables[0].WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	for _, line := range lines[1:] {
		c := strings.Split(line, ",")
		mean, err := strconv.ParseFloat(c[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if mean <= 0 || mean > 1.3 {
			t.Fatalf("implausible mean satisfaction ratio %v in %q", mean, line)
		}
	}
}

func TestE13(t *testing.T) {
	tables, err := E13Variants(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].NumRows() == 0 || tables[1].NumRows() == 0 {
		t.Fatal("E13 tables missing rows")
	}
}

func TestRunToCSV(t *testing.T) {
	dir := t.TempDir()
	e, _ := Lookup("E4")
	files, err := RunToCSV(e, quickCfg(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("E4 should write 2 csv files, got %v", files)
	}
	data, err := os.ReadFile(filepath.Join(dir, files[0]))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "topology,b,") {
		t.Fatalf("csv header missing: %.80s", data)
	}
}

func TestE16(t *testing.T) {
	tables, err := E16SelfHealing(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("E16 should produce sweep + control tables, got %d", len(tables))
	}
	if tables[0].NumRows() != 9 {
		t.Fatalf("E16 sweep rows = %d, want 3 topologies x 3 quotas", tables[0].NumRows())
	}
	if tables[1].NumRows() != 3 {
		t.Fatalf("E16 control rows = %d, want 3 topologies", tables[1].NumRows())
	}
	// The sweep's own hard errors enforce healed=LIC, detection and the
	// zero-fault control; here we additionally pin that detection
	// latency was measured (column 9 non-zero in every row).
	var b strings.Builder
	if err := tables[0].WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	for _, line := range lines[1:] {
		c := strings.Split(line, ",")
		lat, err := strconv.ParseFloat(c[9], 64)
		if err != nil {
			t.Fatal(err)
		}
		if lat <= 0 {
			t.Fatalf("no detection latency measured in %q", line)
		}
	}
}

func TestE17(t *testing.T) {
	cfg := quickCfg()
	cfg.Metrics = mreg.New()
	tables, err := E17StabilityCurve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("E17 should produce curve + summary tables, got %d", len(tables))
	}
	if tables[1].NumRows() != 3 {
		t.Fatalf("E17 summary rows = %d, want 3 topologies", tables[1].NumRows())
	}
	// The runner's hard errors enforce monotonicity, terminal stability
	// and worker determinism; here we pin that the canonical summary
	// reached the sink registry for the manifest to collect.
	g := cfg.Metrics.Gauge(obs.SummaryPrefix+obs.EpsKey(0), "")
	if g.Value() <= 0 {
		t.Fatalf("stability summary gauge not published (eps=0 at %v)", g.Value())
	}
}

func TestE19(t *testing.T) {
	tables, err := E19ChurnEngine(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("E19 should produce one table, got %d", len(tables))
	}
	// 3 families x (full + truncated sweep {1,2,4} + shed row).
	if got, want := tables[0].NumRows(), 15; got != want {
		t.Fatalf("E19 rows = %d, want %d (families x budgets)", got, want)
	}
}

func TestE18(t *testing.T) {
	tables, err := E18Tournament(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("E18 should produce bracket + summary + faulted tables, got %d", len(tables))
	}
	families := workload.Families()
	if got, want := tables[0].NumRows(), 3*len(families); got != want {
		t.Fatalf("E18 bracket rows = %d, want %d (3 contenders x %d families)", got, want, len(families))
	}
	if got, want := tables[2].NumRows(), 2*len(families); got != want {
		t.Fatalf("E18 faulted rows = %d, want %d (2 fault-tolerant contenders x %d families)", got, want, len(families))
	}
	if got, want := tables[1].NumRows(), len(families); got != want {
		t.Fatalf("E18 summary rows = %d, want one per family (%d)", got, want)
	}
	// Scenario-family coverage: every workload family must appear in the
	// summary, so adding a family without it entering the tournament (or
	// the suite silently dropping one) cannot pass the registry sweep.
	var b strings.Builder
	if err := tables[1].WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	seen := map[string]bool{}
	for _, line := range lines[1:] {
		seen[strings.Split(line, ",")[0]] = true
	}
	for _, fam := range families {
		if !seen[fam] {
			t.Fatalf("E18 summary misses workload family %q", fam)
		}
	}
}

func TestE14(t *testing.T) {
	tables, err := E14Maintenance(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].NumRows() != 3 {
		t.Fatalf("E14 rows = %d, want 3 topologies", tables[0].NumRows())
	}
}
