package experiments

import (
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/stats"
)

// E7Baselines: who wins, and by how much. For each topology × metric
// the table compares mean per-node satisfaction, total weight, matched
// quota fraction, and Jain fairness of:
//
//	lid       — the paper's algorithm (LIC ≡ LID edge set)
//	random    — preference-oblivious maximal b-matching
//	selfish   — uncoordinated mutual top-b proposals
//	bestresp  — blocking-pair dynamics (prior work; converges only on
//	            acyclic systems, capped otherwise)
//
// Expected shape: lid ≥ random and lid ≥ selfish everywhere in total
// satisfaction; bestresp competitive on acyclic metrics but failing to
// converge on cyclic ones (the "conv" column).
func E7Baselines(cfg Config) ([]*stats.Table, error) {
	t := stats.NewTable("E7: strategy comparison (mean node satisfaction / total weight / fill / fairness)",
		"topology", "metric", "acyclic", "strategy", "mean sat", "total weight", "fill", "fairness", "conv")
	n := cfg.pick(40, 150)
	b := 3
	for _, topo := range topologies()[:3] {
		for _, metric := range metrics() {
			w, err := buildWorkload(cfg.Seed^0x77, topo, metric, n, b)
			if err != nil {
				return nil, err
			}
			sys := w.System
			acyclic := pref.IsAcyclic(sys)
			tbl := satisfaction.NewTable(sys)

			type entry struct {
				name string
				m    *matching.Matching
				conv string
			}
			var entries []entry
			entries = append(entries, entry{"lid", matching.LIC(sys, tbl), "yes"})
			entries = append(entries, entry{"random", matching.RandomMaximal(sys, rng.New(cfg.Seed+1)), "yes"})
			entries = append(entries, entry{"selfish", matching.SelfishTopB(sys), "yes"})
			br := matching.BestResponse(sys, rng.New(cfg.Seed+2), 20*n*b)
			conv := "yes"
			if !br.Converged {
				conv = "NO"
			}
			entries = append(entries, entry{"bestresp", br.M, conv})

			for _, e := range entries {
				per := e.m.PerNodeSatisfaction(sys)
				fill := quotaFill(sys, e.m)
				t.AddRowf(topo.name, metric.name, boolStr(acyclic), e.name,
					stats.Mean(per), e.m.Weight(sys), fill, stats.JainFairness(per), e.conv)
			}
		}
	}
	return []*stats.Table{t}, nil
}

// quotaFill returns Σci / Σbi — the fraction of wanted connections
// actually established.
func quotaFill(s *pref.System, m *matching.Matching) float64 {
	var used, want int
	for i := 0; i < s.Graph().NumNodes(); i++ {
		used += m.DegreeOf(i)
		want += s.Quota(i)
	}
	if want == 0 {
		return 1
	}
	return float64(used) / float64(want)
}

func boolStr(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
