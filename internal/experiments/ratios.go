package experiments

import (
	"fmt"

	"overlaymatch/internal/matching"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/stats"
)

// E1LICWeightRatio (Theorem 2): measure LIC(=LID) weight against the
// exact maximum-weight many-to-many matching on oracle-sized random
// graphs. The proven floor is ½; the table reports observed min and
// mean ratios per (n, p, b) cell — the shape to verify is "min ≥ 0.5,
// typically far above".
func E1LICWeightRatio(cfg Config) ([]*stats.Table, error) {
	t := stats.NewTable("E1 (Theorem 2): LIC/OPT weight ratio, exact oracle",
		"n", "p", "b", "instances", "min ratio", "mean ratio", "bound")
	seeds := cfg.pick(8, 120)
	ns := []int{8, 10, 12}
	if cfg.Quick {
		ns = []int{8, 10}
	}
	for _, n := range ns {
		for _, p := range []float64{0.3, 0.5} {
			for _, b := range []int{1, 2, 3} {
				// The exact-oracle comparisons are independent; sweep
				// them in parallel (-1 marks a skipped instance).
				n, p, b := n, p, b
				vals, err := parallelFor(cfg.Workers, seeds, func(s int) (float64, error) {
					seed := cfg.Seed ^ uint64(s)*0x9e37 + uint64(n*1000) + uint64(b)
					sys, err := smallGNPSystem(seed, n, p, b)
					if err != nil {
						return -1, err
					}
					if sys.Graph().NumEdges() > matching.MaxOracleEdges || sys.Graph().NumEdges() == 0 {
						return -1, nil
					}
					tbl := satisfaction.NewTable(sys)
					licW := matching.LIC(sys, tbl).Weight(sys)
					_, optW, err := matching.MaxWeightBMatching(sys, tbl)
					if err != nil {
						return -1, err
					}
					if optW == 0 {
						return -1, nil
					}
					return licW / optW, nil
				})
				if err != nil {
					return nil, err
				}
				var ratios []float64
				for _, v := range vals {
					if v >= 0 {
						ratios = append(ratios, v)
					}
				}
				if len(ratios) == 0 {
					continue
				}
				sum := stats.Summarize(ratios)
				t.AddRowf(n, p, b, sum.N, sum.Min, sum.Mean, 0.5)
				if sum.Min < 0.5-1e-9 {
					return nil, fmt.Errorf("E1: observed ratio %v under the proven bound", sum.Min)
				}
			}
		}
	}
	return []*stats.Table{t}, nil
}

// E3SatisfactionRatio (Theorem 3): LID total satisfaction against the
// exact maximizing-satisfaction optimum; the floor is ¼(1+1/bmax).
func E3SatisfactionRatio(cfg Config) ([]*stats.Table, error) {
	t := stats.NewTable("E3 (Theorem 3): LID satisfaction / OPT satisfaction, exact oracle",
		"n", "b", "instances", "min ratio", "mean ratio", "bound ¼(1+1/b)")
	seeds := cfg.pick(6, 80)
	ns := []int{8, 9, 10}
	if cfg.Quick {
		ns = []int{8}
	}
	for _, n := range ns {
		for _, b := range []int{1, 2, 3, 4} {
			n, b := n, b
			vals, err := parallelFor(cfg.Workers, seeds, func(s int) (float64, error) {
				seed := cfg.Seed ^ uint64(s)*0x85eb + uint64(n*77+b)
				sys, err := smallGNPSystem(seed, n, 0.4, b)
				if err != nil {
					return -1, err
				}
				if sys.Graph().NumEdges() > 24 || sys.Graph().NumEdges() == 0 {
					return -1, nil
				}
				tbl := satisfaction.NewTable(sys)
				lidSat := matching.LIC(sys, tbl).TotalSatisfaction(sys) // ≡ LID by E2
				_, opt, err := matching.MaxSatisfactionBMatching(sys)
				if err != nil {
					return -1, err
				}
				if opt == 0 {
					return -1, nil
				}
				return lidSat / opt, nil
			})
			if err != nil {
				return nil, err
			}
			var ratios []float64
			for _, v := range vals {
				if v >= 0 {
					ratios = append(ratios, v)
				}
			}
			if len(ratios) == 0 {
				continue
			}
			sum := stats.Summarize(ratios)
			bound := satisfaction.Theorem3Bound(b)
			t.AddRowf(n, b, sum.N, sum.Min, sum.Mean, bound)
			if sum.Min < bound-1e-9 {
				return nil, fmt.Errorf("E3: observed ratio %v under the proven bound %v", sum.Min, bound)
			}
		}
	}
	return []*stats.Table{t}, nil
}

// E4StaticShare (Lemma 1): across full-size workloads, the per-node
// static share Sis/Si must stay above ½(1+1/bi); the adversarial
// bottom-of-list instance attains the bound exactly (second table).
func E4StaticShare(cfg Config) ([]*stats.Table, error) {
	sweep := stats.NewTable("E4a (Lemma 1): observed static share of satisfaction vs bound",
		"topology", "b", "nodes", "min share", "mean share", "bound ½(1+1/b)")
	n := cfg.pick(60, 300)
	for _, topo := range topologies()[:3] { // gnp, geometric, ba
		for _, b := range []int{1, 2, 4, 8} {
			w, err := buildWorkload(cfg.Seed+uint64(b), topo, metrics()[0], n, b)
			if err != nil {
				return nil, err
			}
			sys := w.System
			tbl := satisfaction.NewTable(sys)
			m := matching.LIC(sys, tbl)
			var shares []float64
			for i := 0; i < sys.Graph().NumNodes(); i++ {
				static, dynamic := satisfaction.Split(sys, i, m.Connections(i))
				if static+dynamic <= 1e-12 {
					continue
				}
				shares = append(shares, static/(static+dynamic))
			}
			if len(shares) == 0 {
				continue
			}
			sum := stats.Summarize(shares)
			bound := satisfaction.Lemma1Bound(b)
			sweep.AddRowf(topo.name, b, sum.N, sum.Min, sum.Mean, bound)
			if sum.Min < bound-1e-9 {
				return nil, fmt.Errorf("E4: share %v under bound %v", sum.Min, bound)
			}
		}
	}

	tight := stats.NewTable("E4b (Lemma 1): adversarial bottom-of-list instance attains the bound",
		"L", "b", "static share", "bound ½(1+1/b)", "gap")
	for _, tc := range []struct{ l, b int }{{6, 2}, {10, 5}, {16, 4}, {20, 10}} {
		share, bound := lemma1WorstCase(tc.l, tc.b)
		tight.AddRowf(tc.l, tc.b, share, bound, share-bound)
	}
	return []*stats.Table{sweep, tight}, nil
}

// lemma1WorstCase reproduces the proof's worst case analytically: a
// node with list length l and quota b connected to the bottom b
// entries. Returns (share, bound).
func lemma1WorstCase(l, b int) (float64, float64) {
	static := (float64(b) + 1) / (2 * float64(l))
	dynamic := (float64(b) - 1) / (2 * float64(l))
	return static / (static + dynamic), satisfaction.Lemma1Bound(b)
}

// E8Identities quantifies the §3 identities on large random workloads:
// eq. 1 must equal Σ eq. 4, and Split must reassemble Value; the table
// reports the maximum absolute deviation seen (pure float noise).
func E8Identities(cfg Config) ([]*stats.Table, error) {
	t := stats.NewTable("E8 (§3, Fig. 1): satisfaction identity residuals",
		"topology", "nodes", "max |eq1 - Σeq4|", "max |eq1 - (static+dynamic)|")
	n := cfg.pick(50, 200)
	for _, topo := range topologies()[:3] {
		w, err := buildWorkload(cfg.Seed+7, topo, metrics()[0], n, 3)
		if err != nil {
			return nil, err
		}
		sys := w.System
		tbl := satisfaction.NewTable(sys)
		m := matching.LIC(sys, tbl)
		var maxSum, maxSplit float64
		for i := 0; i < sys.Graph().NumNodes(); i++ {
			conns := m.Connections(i)
			v := satisfaction.Value(sys, i, conns)
			var sum float64
			for q, j := range satisfaction.ConnectionList(sys, i, conns) {
				sum += satisfaction.Delta(sys, i, j, q)
			}
			if d := abs(v - sum); d > maxSum {
				maxSum = d
			}
			st, dy := satisfaction.Split(sys, i, conns)
			if d := abs(v - (st + dy)); d > maxSplit {
				maxSplit = d
			}
		}
		t.AddRowf(topo.name, n, maxSum, maxSplit)
		if maxSum > 1e-9 || maxSplit > 1e-9 {
			return nil, fmt.Errorf("E8: identity residual too large (%v, %v)", maxSum, maxSplit)
		}
	}
	return []*stats.Table{t}, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
