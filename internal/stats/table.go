package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them as aligned text, Markdown,
// or CSV. The experiment harness prints one Table per paper-style
// table/figure series.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Title returns the table's title.
func (t *Table) Title() string { return t.title }

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// AddRow appends a row of already-formatted cells. It panics if the
// arity does not match the header.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.headers) {
		panic(fmt.Sprintf("stats: row with %d cells in a %d-column table", len(cells), len(t.headers)))
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row, formatting each value: strings verbatim, ints
// with %d, floats with %.4g, everything else with %v.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			cells[i] = x
		case int:
			cells[i] = fmt.Sprintf("%d", x)
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.AddRow(cells...)
}

// WriteText renders the table as aligned monospaced text.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMarkdown renders the table as GitHub-flavored Markdown.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.headers, " | "))
	seps := make([]string, len(t.headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as RFC-4180-ish CSV (quotes only when a
// cell contains a comma, quote, or newline).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
