package stats

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("T1: demo", "name", "count", "ratio")
	t.AddRowf("alpha", 3, 0.5)
	t.AddRowf("beta, the 2nd", 12, 0.25)
	return t
}

func TestTableText(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"T1: demo", "name", "count", "ratio", "alpha", "12", "0.25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	// Alignment: the header and the first data row start columns at the
	// same offsets.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	if strings.Index(lines[1], "count") != strings.Index(lines[3], "3")-0 &&
		!strings.Contains(lines[3], "3") {
		t.Fatalf("column misalignment:\n%s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"### T1: demo", "| name | count | ratio |", "| --- | --- | --- |", "| alpha | 3 | 0.5 |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "name,count,ratio\n") {
		t.Fatalf("csv header wrong:\n%s", out)
	}
	// Comma-containing cell must be quoted.
	if !strings.Contains(out, `"beta, the 2nd"`) {
		t.Fatalf("csv quoting wrong:\n%s", out)
	}
}

func TestTableCSVQuoteEscaping(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow(`say "hi"`)
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"say ""hi"""`) {
		t.Fatalf("quote escaping wrong: %s", b.String())
	}
}

func TestTableArityPanic(t *testing.T) {
	tbl := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	tbl.AddRow("only one")
}

func TestTableAccessors(t *testing.T) {
	tbl := sampleTable()
	if tbl.Title() != "T1: demo" || tbl.NumRows() != 2 {
		t.Fatalf("accessors wrong: %q %d", tbl.Title(), tbl.NumRows())
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow("1")
	var b strings.Builder
	if err := tbl.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(b.String(), "\n") {
		t.Fatal("empty title should not emit a blank line")
	}
}
