package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !almostEqual(s.Mean, 5) {
		t.Fatalf("N/mean = %d/%v", s.N, s.Mean)
	}
	// Sample std of this classic sample: sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); !almostEqual(s.Std, want) {
		t.Fatalf("std = %v, want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5) {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Fatal("empty summary nonzero")
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.P95 != 7 {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
	// Every quantile of a single-element sample is that element.
	if s.P50 != 7 || s.P99 != 7 || s.P25 != 7 || s.P75 != 7 {
		t.Fatalf("single-sample quantiles wrong: %+v", s)
	}
}

func TestSummarizeQuantileFields(t *testing.T) {
	// 1..100: the interpolated quantiles are easy to state exactly.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if s.P50 != s.Median {
		t.Fatalf("P50 %v != Median %v", s.P50, s.Median)
	}
	if !almostEqual(s.P50, 50.5) {
		t.Fatalf("p50 = %v, want 50.5", s.P50)
	}
	if !almostEqual(s.P95, 95.05) {
		t.Fatalf("p95 = %v, want 95.05", s.P95)
	}
	if !almostEqual(s.P99, 99.01) {
		t.Fatalf("p99 = %v, want 99.01", s.P99)
	}
	if !(s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
}

func TestSummarizeDuplicateHeavy(t *testing.T) {
	// 97 copies of 1 and three outliers: the high quantiles must sit on
	// the flat mass until the very tail.
	xs := make([]float64, 0, 100)
	for i := 0; i < 97; i++ {
		xs = append(xs, 1)
	}
	xs = append(xs, 50, 80, 100)
	s := Summarize(xs)
	if s.P50 != 1 || s.P25 != 1 || s.P75 != 1 {
		t.Fatalf("bulk quantiles should be 1: %+v", s)
	}
	if s.P95 != 1 {
		t.Fatalf("p95 = %v, want 1 (95th rank is still inside the flat mass)", s.P95)
	}
	if s.P99 <= 1 || s.P99 > 100 {
		t.Fatalf("p99 = %v, want in (1,100]", s.P99)
	}
	// All-identical sample: zero spread, all quantiles equal.
	same := Summarize([]float64{3, 3, 3, 3, 3})
	if same.Std != 0 || same.P50 != 3 || same.P95 != 3 || same.P99 != 3 {
		t.Fatalf("identical sample summary wrong: %+v", same)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := map[float64]float64{0: 10, 1: 40, 0.5: 25, 0.25: 17.5}
	for p, want := range cases {
		if got := Percentile(sorted, p); !almostEqual(got, want) {
			t.Fatalf("P%v = %v, want %v", p, got, want)
		}
	}
	for name, f := range map[string]func(){
		"empty": func() { Percentile(nil, 0.5) },
		"p<0":   func() { Percentile(sorted, -0.1) },
		"p>1":   func() { Percentile(sorted, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPercentileMonotone(t *testing.T) {
	check := func(seedVals []float64) bool {
		if len(seedVals) == 0 {
			return true
		}
		sorted := append([]float64(nil), seedVals...)
		for i := range sorted {
			if math.IsNaN(sorted[i]) || math.IsInf(sorted[i], 0) {
				sorted[i] = 0
			}
		}
		sortFloats(sorted)
		last := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			v := Percentile(sorted, p)
			if v < last-1e-12 {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestMeanSumMinMax(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 || Sum(xs) != 10 || Min(xs) != 1 || Max(xs) != 4 {
		t.Fatal("basic aggregates wrong")
	}
	if Mean(nil) != 0 || Sum(nil) != 0 {
		t.Fatal("empty aggregates wrong")
	}
	for name, f := range map[string]func(){
		"min": func() { Min(nil) },
		"max": func() { Max(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s of empty: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestJainFairness(t *testing.T) {
	if !almostEqual(JainFairness([]float64{5, 5, 5}), 1) {
		t.Fatal("equal allocation should be 1")
	}
	// One node takes all: 1/n.
	if !almostEqual(JainFairness([]float64{9, 0, 0}), 1.0/3) {
		t.Fatal("single-taker should be 1/n")
	}
	if !almostEqual(JainFairness(nil), 1) || !almostEqual(JainFairness([]float64{0, 0}), 1) {
		t.Fatal("degenerate cases should be 1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative value should panic")
		}
	}()
	JainFairness([]float64{1, -1})
}

func TestJainFairnessRange(t *testing.T) {
	check := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		f := JainFairness(xs)
		return f >= 1.0/float64(len(xs))-1e-9 && f <= 1+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{0.1, 0.2, 0.6, 0.9, -5, 7}, 0, 1, 2)
	// Bucket 0: 0.1, 0.2, -5(clamped) = 3; bucket 1: 0.6, 0.9, 7(clamped) = 3.
	if counts[0] != 3 || counts[1] != 3 {
		t.Fatalf("histogram = %v", counts)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad params should panic")
		}
	}()
	Histogram(nil, 1, 0, 3)
}
