// Package stats provides the descriptive statistics and table
// rendering the experiment harness uses to report results: summaries
// (mean, standard deviation, percentiles, min/max), Jain's fairness
// index for per-node satisfaction vectors, histograms, and
// Markdown/CSV table writers. Stdlib only, no plotting — experiment
// outputs are text tables and CSV series, as EXPERIMENTS.md records.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample. P50 equals Median
// (both kept: Median for the table writers, P50 for symmetry with the
// metrics exporters' p50/p95/p99 vocabulary).
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	P25    float64
	Median float64
	P50    float64
	P75    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))
	var ss float64
	for _, x := range sorted {
		d := x - mean
		ss += d * d
	}
	std := 0.0
	if len(sorted) > 1 {
		std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	p50 := Percentile(sorted, 0.50)
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Std:    std,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P25:    Percentile(sorted, 0.25),
		Median: p50,
		P50:    p50,
		P75:    Percentile(sorted, 0.75),
		P95:    Percentile(sorted, 0.95),
		P99:    Percentile(sorted, 0.99),
	}
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of an ascending-sorted
// sample using linear interpolation between closest ranks. It panics
// on an empty sample or p outside [0,1].
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: Percentile with p=%v", p))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the total of the sample.
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Min returns the smallest element; it panics on an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty sample")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element; it panics on an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty sample")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// JainFairness returns Jain's fairness index (Σx)²/(n·Σx²) of a
// non-negative sample: 1 for perfectly equal allocations, 1/n when one
// node takes everything. An all-zero or empty sample returns 1 (vacuous
// equality).
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 || math.IsNaN(x) {
			panic("stats: JainFairness needs non-negative values")
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Histogram counts a sample into `bins` equal-width buckets spanning
// [lo, hi]; values outside clamp to the first/last bucket. It panics
// unless bins ≥ 1 and hi > lo.
func Histogram(xs []float64, lo, hi float64, bins int) []int {
	if bins < 1 || hi <= lo {
		panic("stats: Histogram needs bins >= 1 and hi > lo")
	}
	counts := make([]int, bins)
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts
}
