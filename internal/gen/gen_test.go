package gen

import (
	"math"
	"testing"
	"testing/quick"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/rng"
)

func TestGNPExtremes(t *testing.T) {
	src := rng.New(1)
	if g := GNP(src, 10, 0); g.NumEdges() != 0 {
		t.Fatalf("GNP(p=0) has %d edges", g.NumEdges())
	}
	if g := GNP(src, 10, 1); g.NumEdges() != 45 {
		t.Fatalf("GNP(p=1) has %d edges, want 45", g.NumEdges())
	}
	if g := GNP(src, 0, 0.5); g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("GNP(n=0) not empty")
	}
	if g := GNP(src, 1, 0.5); g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Fatal("GNP(n=1) wrong")
	}
}

func TestGNPEdgeCountConcentration(t *testing.T) {
	// E[m] = p*n(n-1)/2. With n=200, p=0.1: mean=1990, sd≈42. Average
	// over 20 seeds and allow 5 standard errors.
	const n, p, reps = 200, 0.1, 20
	mean := 0.0
	for seed := uint64(0); seed < reps; seed++ {
		mean += float64(GNP(rng.New(seed), n, p).NumEdges())
	}
	mean /= reps
	want := p * float64(n*(n-1)) / 2
	se := math.Sqrt(want*(1-p)) / math.Sqrt(reps)
	if math.Abs(mean-want) > 5*se {
		t.Fatalf("GNP mean edges %.1f, want %.1f ± %.1f", mean, want, 5*se)
	}
}

func TestGNPPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"p<0":  func() { GNP(rng.New(0), 5, -0.1) },
		"p>1":  func() { GNP(rng.New(0), 5, 1.1) },
		"pNaN": func() { GNP(rng.New(0), 5, math.NaN()) },
		"n<0":  func() { GNP(rng.New(0), -1, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestGNMExactCount(t *testing.T) {
	check := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%20 + 2
		maxM := n * (n - 1) / 2
		m := int(mRaw) % (maxM + 1)
		g := GNM(rng.New(seed), n, m)
		return g.NumNodes() == n && g.NumEdges() == m
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGNMDensePath(t *testing.T) {
	// m > maxM/2 exercises the index-sampling path.
	n := 12
	maxM := n * (n - 1) / 2
	g := GNM(rng.New(7), n, maxM-3)
	if g.NumEdges() != maxM-3 {
		t.Fatalf("dense GNM edges = %d", g.NumEdges())
	}
	full := GNM(rng.New(7), n, maxM)
	if full.NumEdges() != maxM {
		t.Fatalf("complete GNM edges = %d", full.NumEdges())
	}
}

func TestGNMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GNM with m too large did not panic")
		}
	}()
	GNM(rng.New(0), 4, 7)
}

func TestPairFromIndexBijection(t *testing.T) {
	n := 40
	seen := make(map[[2]int]bool)
	for idx := 0; idx < n*(n-1)/2; idx++ {
		u, v := pairFromIndex(idx)
		if u < 0 || v <= u || v >= n {
			t.Fatalf("pairFromIndex(%d) = (%d,%d) invalid", idx, u, v)
		}
		if seen[[2]int{u, v}] {
			t.Fatalf("pairFromIndex(%d) = (%d,%d) repeated", idx, u, v)
		}
		seen[[2]int{u, v}] = true
	}
}

func TestGeometric(t *testing.T) {
	g, pts := Geometric(rng.New(3), 150, 0.2)
	if g.NumNodes() != 150 || len(pts) != 150 {
		t.Fatal("wrong sizes")
	}
	// Verify against the O(n^2) definition.
	for u := 0; u < 150; u++ {
		for v := u + 1; v < 150; v++ {
			dx := pts[u][0] - pts[v][0]
			dy := pts[u][1] - pts[v][1]
			within := dx*dx+dy*dy <= 0.2*0.2
			if within != g.HasEdge(u, v) {
				t.Fatalf("edge (%d,%d): distance test %v, graph %v", u, v, within, g.HasEdge(u, v))
			}
		}
	}
}

func TestGeometricExtremeRadius(t *testing.T) {
	g, _ := Geometric(rng.New(1), 20, 2.0) // radius covers the square
	if g.NumEdges() != 190 {
		t.Fatalf("radius-2 geometric not complete: %d edges", g.NumEdges())
	}
	g0, _ := Geometric(rng.New(1), 20, 0)
	if g0.NumEdges() != 0 {
		t.Fatalf("radius-0 geometric has %d edges", g0.NumEdges())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	n, m := 100, 3
	g := BarabasiAlbert(rng.New(5), n, m)
	if g.NumNodes() != n {
		t.Fatal("wrong node count")
	}
	// Exact edge count: clique on m+1 nodes + m per added node.
	want := (m+1)*m/2 + (n-(m+1))*m
	if g.NumEdges() != want {
		t.Fatalf("BA edges = %d, want %d", g.NumEdges(), want)
	}
	if !g.IsConnected() {
		t.Fatal("BA graph disconnected")
	}
	// Preferential attachment should produce a hub: max degree well
	// above m (for n=100, m=3, typical max degree is > 15).
	if g.MaxDegree() <= 2*m {
		t.Fatalf("BA max degree %d suspiciously small", g.MaxDegree())
	}
	if g.MinDegree() < m {
		t.Fatalf("BA min degree %d < m", g.MinDegree())
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"m=0":  func() { BarabasiAlbert(rng.New(0), 5, 0) },
		"m>=n": func() { BarabasiAlbert(rng.New(0), 5, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestWattsStrogatz(t *testing.T) {
	n, k := 60, 4
	lattice := WattsStrogatz(rng.New(9), n, k, 0)
	if lattice.NumEdges() != n*k/2 {
		t.Fatalf("beta=0 lattice edges = %d, want %d", lattice.NumEdges(), n*k/2)
	}
	for u := 0; u < n; u++ {
		if lattice.Degree(u) != k {
			t.Fatalf("beta=0 node %d degree %d, want %d", u, lattice.Degree(u), k)
		}
		if !lattice.HasEdge(u, (u+1)%n) || !lattice.HasEdge(u, (u+2)%n) {
			t.Fatalf("beta=0 lattice missing ring edge at %d", u)
		}
	}
	rewired := WattsStrogatz(rng.New(9), n, k, 0.5)
	if rewired.NumNodes() != n {
		t.Fatal("wrong node count")
	}
	// Rewiring keeps edges when targets collide, so count stays n*k/2
	// unless fallbacks also collide; it can only stay equal or drop by
	// rare fallback duplicates. It must differ structurally from the
	// lattice with overwhelming probability.
	same := true
	for u := 0; u < n && same; u++ {
		if rewired.Degree(u) != k {
			same = false
		}
		if !rewired.HasEdge(u, (u+1)%n) {
			same = false
		}
	}
	if same {
		t.Fatal("beta=0.5 produced the exact lattice")
	}
}

func TestWattsStrogatzPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"odd k":  func() { WattsStrogatz(rng.New(0), 10, 3, 0.1) },
		"k>=n":   func() { WattsStrogatz(rng.New(0), 4, 4, 0.1) },
		"beta<0": func() { WattsStrogatz(rng.New(0), 10, 2, -0.1) },
		"beta>1": func() { WattsStrogatz(rng.New(0), 10, 2, 1.5) },
		"zero k": func() { WattsStrogatz(rng.New(0), 10, 0, 0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSBM(t *testing.T) {
	sizes := []int{30, 30, 30}
	g, community := SBM(rng.New(11), sizes, 0.5, 0.02)
	if g.NumNodes() != 90 || len(community) != 90 {
		t.Fatal("wrong sizes")
	}
	if community[0] != 0 || community[29] != 0 || community[30] != 1 || community[89] != 2 {
		t.Fatalf("community labels wrong: %v", community[:3])
	}
	in, out := 0, 0
	for _, e := range g.Edges() {
		if community[e.U] == community[e.V] {
			in++
		} else {
			out++
		}
	}
	// Expected: in ≈ 0.5 * 3 * C(30,2) = 652.5; out ≈ 0.02 * 2700 = 54.
	if in < 500 || in > 800 {
		t.Fatalf("in-community edges = %d, expected ≈650", in)
	}
	if out < 20 || out > 100 {
		t.Fatalf("cross-community edges = %d, expected ≈54", out)
	}
}

func TestDeterministicFamilies(t *testing.T) {
	cases := []struct {
		name         string
		g            *graph.Graph
		nodes, edges int
		connected    bool
	}{
		{"ring10", Ring(10), 10, 10, true},
		{"ring2", Ring(2), 2, 1, true},
		{"ring1", Ring(1), 1, 0, true},
		{"path6", Path(6), 6, 5, true},
		{"path0", Path(0), 0, 0, true},
		{"complete7", Complete(7), 7, 21, true},
		{"star9", Star(9), 9, 8, true},
		{"grid3x4", Grid(3, 4), 12, 17, true},
		{"tree15", BinaryTree(15), 15, 14, true},
		{"k23", CompleteBipartite(2, 3), 5, 6, true},
	}
	for _, c := range cases {
		if c.g.NumNodes() != c.nodes {
			t.Errorf("%s: nodes = %d, want %d", c.name, c.g.NumNodes(), c.nodes)
		}
		if c.g.NumEdges() != c.edges {
			t.Errorf("%s: edges = %d, want %d", c.name, c.g.NumEdges(), c.edges)
		}
		if c.g.IsConnected() != c.connected {
			t.Errorf("%s: connected = %v", c.name, c.g.IsConnected())
		}
	}
}

func TestGridStructure(t *testing.T) {
	g := Grid(2, 3)
	// Node (r,c) = r*3+c. Check a few adjacencies.
	for _, e := range []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 3}, {U: 2, V: 5}} {
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("grid missing edge %v", e)
		}
	}
	if g.HasEdge(2, 3) {
		t.Error("grid has wraparound edge")
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%50 + 2
		g := RandomTree(rng.New(seed), n)
		return g.NumNodes() == n && g.NumEdges() == n-1 && g.IsConnected()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTreeSmall(t *testing.T) {
	if g := RandomTree(rng.New(0), 0); g.NumNodes() != 0 {
		t.Fatal("n=0")
	}
	if g := RandomTree(rng.New(0), 1); g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Fatal("n=1")
	}
	if g := RandomTree(rng.New(0), 2); g.NumEdges() != 1 {
		t.Fatal("n=2")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	// Same seed ⇒ identical graphs; different seed ⇒ (almost surely)
	// different edge sets for the random families.
	a := GNP(rng.New(42), 50, 0.2)
	b := GNP(rng.New(42), 50, 0.2)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("GNP not deterministic")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("GNP not deterministic")
		}
	}
	c := GNP(rng.New(43), 50, 0.2)
	diff := c.NumEdges() != a.NumEdges()
	if !diff {
		ec := c.Edges()
		for i := range ea {
			if ea[i] != ec[i] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical GNP graphs")
	}
}
