// Package gen generates the overlay topologies used by the experiment
// suite. The paper's setting (§1) is a peer-to-peer overlay in which each
// peer knows part of the network as potential neighbors; the generators
// here provide the standard families such overlays are modelled with:
// Erdős–Rényi (uniform random), random geometric (distance-limited
// radios/latency), Barabási–Albert (power-law peer popularity),
// Watts–Strogatz (rewired small world), stochastic block model
// (interest communities), and the deterministic families (ring, grid,
// complete, star, path, full binary tree) used by the bound-tightness
// tests. All generators are deterministic given the rng.Source.
package gen

import (
	"fmt"
	"math"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/rng"
)

// GNP returns an Erdős–Rényi G(n,p) graph: every pair is an edge
// independently with probability p. It panics if p is outside [0,1] or
// n is negative.
func GNP(src *rng.Source, n int, p float64) *graph.Graph {
	if n < 0 {
		panic("gen: GNP with negative n")
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("gen: GNP with p=%v outside [0,1]", p))
	}
	b := graph.NewBuilder(n)
	switch {
	case p == 0:
	case p == 1:
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(u, v)
			}
		}
	default:
		// Geometric skipping (Batagelj–Brandes): walk the strictly
		// upper-triangular pair sequence jumping Geom(p) slots at a
		// time, O(m) instead of O(n^2) for sparse p.
		logq := math.Log1p(-p)
		u, v := 0, 0
		for u < n {
			r := src.Float64()
			skip := int(math.Floor(math.Log1p(-r) / logq))
			v += 1 + skip
			for v >= n && u < n {
				u++
				v = v - n + u + 1
			}
			if u < n-1 && v < n {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustGraph()
}

// GNM returns a uniform random graph with exactly m edges among n
// nodes. It panics if m exceeds the number of possible edges.
func GNM(src *rng.Source, n, m int) *graph.Graph {
	maxM := n * (n - 1) / 2
	if m < 0 || m > maxM {
		panic(fmt.Sprintf("gen: GNM with m=%d outside [0,%d]", m, maxM))
	}
	b := graph.NewBuilder(n)
	if m > maxM/2 {
		// Dense: sample edge indices without replacement.
		for _, idx := range src.Sample(maxM, m) {
			u, v := pairFromIndex(idx)
			b.AddEdge(u, v)
		}
		return b.MustGraph()
	}
	for b.NumEdges() < m {
		b.TryAddEdge(src.Intn(n), src.Intn(n))
	}
	return b.MustGraph()
}

// pairFromIndex maps an index in [0, n(n-1)/2) to the corresponding
// pair (u,v), u<v, in the row-major upper-triangular enumeration
// (0,1),(0,2),...,(0,n-1),(1,2),...
func pairFromIndex(idx int) (int, int) {
	// Solve for u: idx >= u*n - u(u+1)/2 boundaries; simpler to derive v
	// from the triangular enumeration (u,v) with v>u using the inverse
	// of t = v(v-1)/2 + u with u<v (column-major lower triangle), which
	// is equivalent and cheap:
	v := int((1 + math.Sqrt(1+8*float64(idx))) / 2)
	for v*(v-1)/2 > idx {
		v--
	}
	for (v+1)*v/2 <= idx {
		v++
	}
	u := idx - v*(v-1)/2
	return u, v
}

// Geometric returns a random geometric graph: n points uniform in the
// unit square, an edge whenever Euclidean distance ≤ radius. It also
// returns the coordinates (x,y per node) so distance-based preference
// metrics can reuse them.
func Geometric(src *rng.Source, n int, radius float64) (*graph.Graph, [][2]float64) {
	if radius < 0 {
		panic("gen: Geometric with negative radius")
	}
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{src.Float64(), src.Float64()}
	}
	b := graph.NewBuilder(n)
	r2 := radius * radius
	// Grid bucketing for near-linear construction.
	cell := radius
	if cell <= 0 || cell > 1 {
		cell = 1
	}
	buckets := make(map[[2]int][]int)
	key := func(p [2]float64) [2]int {
		return [2]int{int(p[0] / cell), int(p[1] / cell)}
	}
	for i, p := range pts {
		buckets[key(p)] = append(buckets[key(p)], i)
	}
	for i, p := range pts {
		k := key(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[[2]int{k[0] + dx, k[1] + dy}] {
					if j <= i {
						continue
					}
					ddx := p[0] - pts[j][0]
					ddy := p[1] - pts[j][1]
					if ddx*ddx+ddy*ddy <= r2 {
						b.AddEdge(i, j)
					}
				}
			}
		}
	}
	return b.MustGraph(), pts
}

// BarabasiAlbert returns a preferential-attachment graph: starts from a
// clique on m0 = m+1 nodes, then each new node attaches to m existing
// nodes chosen proportionally to their current degree (without
// replacement). It panics unless 1 ≤ m < n.
func BarabasiAlbert(src *rng.Source, n, m int) *graph.Graph {
	if m < 1 || m >= n {
		panic(fmt.Sprintf("gen: BarabasiAlbert needs 1 <= m < n, got n=%d m=%d", n, m))
	}
	b := graph.NewBuilder(n)
	// repeated holds one entry per endpoint per edge; sampling an index
	// uniformly from it is degree-proportional sampling.
	var repeated []int
	m0 := m + 1
	for u := 0; u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			b.AddEdge(u, v)
			repeated = append(repeated, u, v)
		}
	}
	for u := m0; u < n; u++ {
		// Collect m distinct degree-proportional targets in draw order;
		// map iteration would make the pool (and thus the whole graph)
		// nondeterministic.
		chosen := make(map[int]struct{}, m)
		targets := make([]int, 0, m)
		for len(targets) < m {
			t := repeated[src.Intn(len(repeated))]
			if _, dup := chosen[t]; dup {
				continue
			}
			chosen[t] = struct{}{}
			targets = append(targets, t)
		}
		for _, v := range targets {
			b.AddEdge(u, v)
			repeated = append(repeated, u, v)
		}
	}
	return b.MustGraph()
}

// WattsStrogatz returns a small-world graph: a ring lattice where each
// node connects to its k nearest neighbors (k even), with each edge
// rewired with probability beta to a uniform random non-duplicate
// target. It panics unless k is even, 0 < k < n, and beta in [0,1].
func WattsStrogatz(src *rng.Source, n, k int, beta float64) *graph.Graph {
	if k <= 0 || k%2 != 0 || k >= n {
		panic(fmt.Sprintf("gen: WattsStrogatz needs even 0 < k < n, got n=%d k=%d", n, k))
	}
	if beta < 0 || beta > 1 || math.IsNaN(beta) {
		panic(fmt.Sprintf("gen: WattsStrogatz with beta=%v outside [0,1]", beta))
	}
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for d := 1; d <= k/2; d++ {
			v := (u + d) % n
			if !src.Bool(beta) {
				b.TryAddEdge(u, v)
				continue
			}
			// Rewire: keep u, pick a fresh target.
			placed := false
			for attempts := 0; attempts < 4*n; attempts++ {
				w := src.Intn(n)
				if b.TryAddEdge(u, w) {
					placed = true
					break
				}
			}
			if !placed {
				b.TryAddEdge(u, v) // fall back to the lattice edge
			}
		}
	}
	return b.MustGraph()
}

// SBM returns a stochastic block model graph over the given community
// sizes: nodes in the same community connect with probability pIn,
// across communities with pOut. It returns the graph and each node's
// community index. Node IDs are assigned community-by-community.
func SBM(src *rng.Source, sizes []int, pIn, pOut float64) (*graph.Graph, []int) {
	for _, p := range []float64{pIn, pOut} {
		if p < 0 || p > 1 || math.IsNaN(p) {
			panic(fmt.Sprintf("gen: SBM with probability %v outside [0,1]", p))
		}
	}
	n := 0
	for _, s := range sizes {
		if s < 0 {
			panic("gen: SBM with negative community size")
		}
		n += s
	}
	community := make([]int, n)
	id := 0
	for c, s := range sizes {
		for k := 0; k < s; k++ {
			community[id] = c
			id++
		}
	}
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if community[u] == community[v] {
				p = pIn
			}
			if src.Bool(p) {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustGraph(), community
}

// Ring returns the cycle graph C_n (n ≥ 3); for n < 3 it returns the
// path on n nodes instead, so small inputs remain valid graphs.
func Ring(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u+1 < n; u++ {
		b.AddEdge(u, u+1)
	}
	if n >= 3 {
		b.AddEdge(n-1, 0)
	}
	return b.MustGraph()
}

// Path returns the path graph P_n.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u+1 < n; u++ {
		b.AddEdge(u, u+1)
	}
	return b.MustGraph()
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.MustGraph()
}

// Star returns the star graph on n nodes with node 0 at the center.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.MustGraph()
}

// Grid returns the rows×cols 2D grid graph; node (r,c) has ID r*cols+c.
func Grid(rows, cols int) *graph.Graph {
	if rows < 0 || cols < 0 {
		panic("gen: Grid with negative dimension")
	}
	b := graph.NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := r*cols + c
			if c+1 < cols {
				b.AddEdge(id, id+1)
			}
			if r+1 < rows {
				b.AddEdge(id, id+cols)
			}
		}
	}
	return b.MustGraph()
}

// BinaryTree returns the complete binary tree on n nodes where node i
// has children 2i+1 and 2i+2.
func BinaryTree(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		if l := 2*i + 1; l < n {
			b.AddEdge(i, l)
		}
		if r := 2*i + 2; r < n {
			b.AddEdge(i, r)
		}
	}
	return b.MustGraph()
}

// CompleteBipartite returns K_{a,b}: nodes 0..a-1 on one side,
// a..a+b-1 on the other, all cross edges present.
func CompleteBipartite(a, b int) *graph.Graph {
	if a < 0 || b < 0 {
		panic("gen: CompleteBipartite with negative side")
	}
	bld := graph.NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			bld.AddEdge(u, v)
		}
	}
	return bld.MustGraph()
}

// RandomTree returns a uniform random labelled tree on n nodes via a
// random Prüfer sequence (n ≥ 2; n ≤ 1 returns an edgeless graph).
func RandomTree(src *rng.Source, n int) *graph.Graph {
	if n <= 1 {
		return graph.NewBuilder(max(n, 0)).MustGraph() // built-in max: clamp n=-? to 0
	}
	if n == 2 {
		return graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}})
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = src.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	b := graph.NewBuilder(n)
	// Standard Prüfer decoding with a scan pointer and a "leaf" cursor.
	ptr := 0
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range prufer {
		b.AddEdge(leaf, v)
		degree[v]--
		if degree[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	// Join the last two leaves: leaf and n-1.
	b.AddEdge(leaf, n-1)
	return b.MustGraph()
}
