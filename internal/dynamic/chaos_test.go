package dynamic

import (
	"fmt"
	"testing"

	"overlaymatch/internal/faults"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/workload"
)

// TestChaosGateEngine is the PR's chaos gate: seed-swept churn over
// three workload families (drift included), each run under seeded
// faults crash windows — one healing, one permanent — merged into the
// membership feed, at three repair budgets. The gates:
//
//   - full budget: every epoch drains completely (no truncation, no
//     deferred backlog, zero blocking edges) and the final matching
//     equals the live-LIC fixed point;
//   - truncated (k = 1): every epoch's measured blocking-edge count
//     stays within the certified Deferred bound, validity always
//     holds, and healing epochs reconverge to live-LIC;
//   - shedding (depth 2 under a hot feed): sheds actually engage,
//     the bound still holds, validity always holds, and healing
//     reconverges.
//
// 36 seeds × 3 families = 108 instances ≥ the 100-seed floor.
func TestChaosGateEngine(t *testing.T) {
	families := []string{"swarm:n=64", "geo:n=64", "drift:n=64,epochs=4"}
	const seedsPerFamily = 36
	for fi, fam := range families {
		spec, err := workload.Parse(fam)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < seedsPerFamily; s++ {
			seed := uint64(fi*1000 + s + 1)
			inst, err := workload.Build(spec, seed, 1)
			if err != nil {
				t.Fatal(err)
			}
			base := inst.System
			if len(inst.Epochs) > 0 {
				base = inst.Epochs[0]
			}
			n := base.Graph().NumNodes()

			churn := ChurnSpec{Events: 30, LeaveProb: 0.55, MinAlive: 8, Rate: 4}
			sched, err := churn.Schedule(n, seed^0xc4a0)
			if err != nil {
				t.Fatal(err)
			}
			// Two seeded crash windows: one heals mid-run, one never
			// does. Stale overlaps with the churn feed are no-ops.
			fs := faults.Spec{Crashes: []faults.Crash{
				{Start: 1.5, End: 6.5, Node: int(seed % uint64(n))},
				{Start: 4.0, End: faults.NoHeal, Node: int((seed*7 + 13) % uint64(n))},
			}}
			if err := fs.Validate(); err != nil {
				t.Fatal(err)
			}
			sched = MergeSchedules(sched, CrashSchedule(fs, n))
			if len(inst.Epochs) > 1 {
				sched = MergeSchedules(sched, DriftSchedule(inst.Epochs, 2.0, 3.0))
			}

			for _, cfg := range []struct {
				name string
				opts EngineOptions
			}{
				{"full", EngineOptions{MeasureStability: true}},
				{"k1", EngineOptions{RepairRounds: 1, MeasureStability: true}},
				{"shed", EngineOptions{ShedDepth: 2, MeasureStability: true}},
			} {
				e, err := NewEngine(base, cfg.opts)
				if err != nil {
					t.Fatal(err)
				}
				recs, err := RunSchedule(e, sched)
				if err != nil {
					t.Fatalf("%s seed %d %s: %v", fam, seed, cfg.name, err)
				}
				tag := fmt.Sprintf("%s seed %d %s", fam, seed, cfg.name)
				for _, r := range recs {
					if r.Blocking > r.Deferred {
						t.Fatalf("%s epoch %d: blocking %d > certified bound %d",
							tag, r.Epoch, r.Blocking, r.Deferred)
					}
					if cfg.name == "full" && (r.Truncated || r.Deferred != 0 || r.Blocking != 0) {
						t.Fatalf("%s epoch %d: full budget left work behind: %+v", tag, r.Epoch, r)
					}
				}
				if err := e.Overlay().Validate(); err != nil {
					t.Fatalf("%s: invalid overlay: %v", tag, err)
				}
				if cfg.name != "full" {
					e.Heal()
				}
				if err := e.Overlay().Validate(); err != nil {
					t.Fatalf("%s: invalid after heal: %v", tag, err)
				}
				if bl := e.Overlay().BlockingEdges(); bl != 0 {
					t.Fatalf("%s: %d blocking edges after heal", tag, bl)
				}
				if !e.Overlay().Matching().Equal(e.Overlay().LiveLICInherited()) {
					t.Fatalf("%s: healed matching != live-LIC fixed point", tag)
				}
			}
		}
	}
}

// TestChaosShedEngagement pins down that the shedding third of the
// chaos gate actually exercises the shed path for a healthy share of
// instances (the gate would be vacuous if batches never exceeded the
// threshold).
func TestChaosShedEngagement(t *testing.T) {
	shedRuns := 0
	const runs = 20
	for s := 0; s < runs; s++ {
		e := mustEngine(t, uint64(s+900), 64, 0.15, 2, EngineOptions{ShedDepth: 2})
		spec := ChurnSpec{Events: 60, LeaveProb: 0.5, MinAlive: 8, Rate: 24}
		if _, err := RunEngineChurn(e, spec, uint64(s)); err != nil {
			t.Fatal(err)
		}
		if e.TotalSheds() > 0 {
			shedRuns++
		}
	}
	if shedRuns < runs/2 {
		t.Fatalf("shedding engaged in only %d/%d hot runs", shedRuns, runs)
	}
}

// TestDriftScheduleDirtySets sanity-checks the rerank plumbing: drift
// epochs share one contact graph, DirtyNodes finds a nonempty diff,
// and a pure rerank feed (no membership churn) still converges to the
// new system's LIC.
func TestDriftScheduleDirtySets(t *testing.T) {
	spec, err := workload.Parse("drift:n=48,epochs=3")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := workload.Build(spec, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Epochs) != 3 {
		t.Fatalf("expected 3 epochs, got %d", len(inst.Epochs))
	}
	for i := 1; i < len(inst.Epochs); i++ {
		if inst.Epochs[i].Graph() != inst.Epochs[0].Graph() {
			t.Fatal("drift epochs do not share a contact graph")
		}
	}
	evs := DriftSchedule(inst.Epochs, 1.0, 2.0)
	if len(evs) != 2 {
		t.Fatalf("expected 2 rerank events, got %d", len(evs))
	}
	sawDirty := false
	for _, ev := range evs {
		if len(ev.Dirty) > 0 {
			sawDirty = true
		}
	}
	if !sawDirty {
		t.Fatal("drift produced no dirty nodes at all")
	}
	e, err := NewEngine(inst.Epochs[0], EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSchedule(e, evs); err != nil {
		t.Fatal(err)
	}
	if e.Overlay().System() != inst.Epochs[2] {
		t.Fatal("engine did not land on the final drift epoch")
	}
	assertConverged(t, e)
}

// TestDirtyNodesDiff checks the diff helper on a hand-built case.
func TestDirtyNodesDiff(t *testing.T) {
	s := randomSystem(t, 77, 12, 0.6, 2)
	same := DirtyNodes(s, s)
	if len(same) != 0 {
		t.Fatalf("self-diff reported %d dirty nodes", len(same))
	}
	// Rebuild with a different metric: some node must differ.
	s2 := randomSystem(t, 78, 12, 0.6, 2)
	if s2.Graph() == s.Graph() {
		t.Skip("independent builds shared a graph?")
	}
	// DirtyNodes is defined over the same graph; emulate by comparing a
	// system against a quota-perturbed clone via pref.FromRanks.
	g := s.Graph()
	lists := make([][]int, g.NumNodes())
	quotas := make([]int, g.NumNodes())
	for x := 0; x < g.NumNodes(); x++ {
		lists[x] = append([]int(nil), s.List(x)...)
		quotas[x] = s.Quota(x)
	}
	quotas[3]++
	pert, err := pref.FromRanks(g, lists, quotas)
	if err != nil {
		t.Fatal(err)
	}
	dirty := DirtyNodes(s, pert)
	if len(dirty) != 1 || dirty[0] != 3 {
		t.Fatalf("quota perturbation of node 3 diffed as %v", dirty)
	}
}
