package dynamic

import "testing"

// FuzzChurnSpecParse mirrors the other grammar fuzzers: anything
// ParseChurnSpec accepts must validate, render to a canonical string
// that re-parses to the identical spec, and keep that canonical form
// stable — and neither parse nor render may panic on any input.
func FuzzChurnSpecParse(f *testing.F) {
	f.Add("")
	f.Add("off")
	f.Add("events=100")
	f.Add("events=200,leave=0.5,minalive=8,rate=2")
	f.Add("events=1,leave=0,minalive=0,rate=1e-3")
	f.Add("events=10,leave=1")
	f.Add("leave=0.5")
	f.Add("events=0")
	f.Add("events=-4")
	f.Add("events=10,leave=1.5")
	f.Add("events=10,leave=NaN")
	f.Add("events=10,rate=0")
	f.Add("events=10,rate=1e300")
	f.Add("events=99999999999")
	f.Add("events=10,minalive=-2")
	f.Add("events=10,bogus=1")
	f.Add("events")
	f.Add(",,,")
	f.Add("events=10,events=20")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseChurnSpec(in)
		if err != nil {
			return // rejected input is fine; not panicking is the point
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("ParseChurnSpec(%q) accepted an invalid spec: %v", in, verr)
		}
		canon := s.String()
		s2, err := ParseChurnSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", canon, in, err)
		}
		if s2 != s {
			t.Fatalf("round trip of %q changed the spec: %+v -> %+v", in, s, s2)
		}
		if s2.String() != canon {
			t.Fatalf("canonical form unstable: %q -> %q", canon, s2.String())
		}
	})
}
