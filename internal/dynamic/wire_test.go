package dynamic

import (
	"testing"

	"overlaymatch/internal/dlid"
	"overlaymatch/internal/transport"
)

// The churn engine is centralized — it has no simnet messages of its
// own. What crosses a wire in a deployment is its membership feed:
// leave/join events, which map one-to-one onto dlid's environment
// commands. This test pins that mapping to the codec registry so a
// remote churn driver can always speak the events over the transport
// layer.
func TestChurnFeedEventsHaveCodecs(t *testing.T) {
	if id, _, ok := transport.CodecFor(dlid.CmdLeave{}); !ok || id != transport.IDDlidCmdLeave {
		t.Fatalf("dlid.CmdLeave codec = (%#04x, %v), want (%#04x, true)", id, ok, transport.IDDlidCmdLeave)
	}
	if id, _, ok := transport.CodecFor(dlid.CmdJoin{}); !ok || id != transport.IDDlidCmdJoin {
		t.Fatalf("dlid.CmdJoin codec = (%#04x, %v), want (%#04x, true)", id, ok, transport.IDDlidCmdJoin)
	}
}
