// Package dynamic implements the paper's future-work extension (§7):
// handling dynamicity — joins and leaves of peers and changing
// preference lists — with the same greedy, locally-heaviest-edge
// strategy that LID/LIC use for the static problem.
//
// The model is a fixed universe graph of potential connections whose
// peers come and go: a live overlay is the subgraph induced by the
// alive nodes. On every event the overlay repairs its matching
// locally instead of recomputing from scratch:
//
//   - Completion repair adds, heaviest first, every unmatched edge
//     whose endpoints are alive and have free quota — restoring the
//     maximality LIC guarantees.
//   - Preemptive repair (Policy PreemptLighter) additionally lets a
//     candidate edge displace a strictly lighter connection at a full
//     endpoint, cascading until no displacement applies. Each swap
//     strictly increases total weight, so repair terminates.
//
// Repair is measured (edges examined ≈ message cost, edges changed)
// and judged against the fresh LIC matching of the live subgraph —
// experiment E9 reports both. Preemptive repair tracks fresh LIC
// closely; completion-only repair is cheaper but drifts, which is
// exactly the trade-off the paper's future-work discussion anticipates.
package dynamic

import (
	"container/heap"
	"fmt"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
)

// Policy selects the repair strategy.
type Policy int

const (
	// CompleteOnly restores maximality but never displaces an
	// established connection.
	CompleteOnly Policy = iota
	// PreemptLighter also displaces strictly lighter connections,
	// cascading repairs to the displaced peers.
	PreemptLighter
)

// EventStats reports the cost of one churn event's repair.
type EventStats struct {
	Examined int // candidate edges inspected (proxy for repair messages)
	Added    int // connections created
	Removed  int // connections dropped (leave cleanup + preemptions)
}

// Overlay is a live matching over the alive subset of a universe
// graph, repaired incrementally under churn.
type Overlay struct {
	s      *pref.System
	tbl    *satisfaction.Table
	m      *matching.Matching
	alive  []bool
	policy Policy
}

// NewOverlay starts an overlay with every node alive and the LIC
// matching of the full graph.
func NewOverlay(s *pref.System, policy Policy) *Overlay {
	tbl := satisfaction.NewTable(s)
	alive := make([]bool, s.Graph().NumNodes())
	for i := range alive {
		alive[i] = true
	}
	return &Overlay{
		s:      s,
		tbl:    tbl,
		m:      matching.LIC(s, tbl),
		alive:  alive,
		policy: policy,
	}
}

// Matching returns the current live matching (shared; do not modify).
func (o *Overlay) Matching() *matching.Matching { return o.m }

// System returns the current preference system.
func (o *Overlay) System() *pref.System { return o.s }

// Alive reports whether node x is currently alive.
func (o *Overlay) Alive(x graph.NodeID) bool { return o.alive[x] }

// NumAlive returns the number of alive nodes.
func (o *Overlay) NumAlive() int {
	c := 0
	for _, a := range o.alive {
		if a {
			c++
		}
	}
	return c
}

// Leave removes node x from the overlay: its connections are dropped
// and the freed partners repair locally. It panics if x is not alive.
func (o *Overlay) Leave(x graph.NodeID) EventStats {
	if !o.alive[x] {
		panic(fmt.Sprintf("dynamic: Leave of dead node %d", x))
	}
	o.alive[x] = false
	var st EventStats
	freed := o.m.Connections(x)
	for _, v := range freed {
		o.m.Remove(x, v)
		st.Removed++
	}
	o.repair(freed, &st)
	return st
}

// Join restores node x to the overlay and repairs around it. It panics
// if x is already alive.
func (o *Overlay) Join(x graph.NodeID) EventStats {
	if o.alive[x] {
		panic(fmt.Sprintf("dynamic: Join of alive node %d", x))
	}
	o.alive[x] = true
	var st EventStats
	o.repair([]graph.NodeID{x}, &st)
	return st
}

// SetSystem replaces the preference system (same graph required) after
// some nodes changed their preference lists or quotas, then repairs
// around the dirty nodes. Connections that now exceed a reduced quota
// are dropped lightest-first before repair.
func (o *Overlay) SetSystem(s2 *pref.System, dirty []graph.NodeID) EventStats {
	if s2.Graph() != o.s.Graph() {
		panic("dynamic: SetSystem requires the same underlying graph")
	}
	o.s = s2
	o.tbl = satisfaction.NewTable(s2)
	var st EventStats
	seeds := append([]graph.NodeID(nil), dirty...)
	for _, x := range dirty {
		for o.m.DegreeOf(x) > s2.Quota(x) {
			v := o.lightestConnection(x)
			o.m.Remove(x, v)
			st.Removed++
			seeds = append(seeds, v)
		}
	}
	o.repair(seeds, &st)
	return st
}

// lightestConnection returns x's lightest current connection by the
// weight order.
func (o *Overlay) lightestConnection(x graph.NodeID) graph.NodeID {
	conns := o.m.Connections(x)
	if len(conns) == 0 {
		panic("dynamic: lightestConnection of unmatched node")
	}
	lightest := conns[0]
	for _, v := range conns[1:] {
		if o.tbl.Key(x, lightest).Heavier(o.tbl.Key(x, v)) {
			lightest = v
		}
	}
	return lightest
}

// candidateHeap orders candidate edges heaviest-first.
type candidateHeap struct {
	keys []satisfaction.WeightKey
}

func (h candidateHeap) Len() int            { return len(h.keys) }
func (h candidateHeap) Less(i, j int) bool  { return h.keys[i].Heavier(h.keys[j]) }
func (h candidateHeap) Swap(i, j int)       { h.keys[i], h.keys[j] = h.keys[j], h.keys[i] }
func (h *candidateHeap) Push(x interface{}) { h.keys = append(h.keys, x.(satisfaction.WeightKey)) }
func (h *candidateHeap) Pop() interface{} {
	old := h.keys
	n := len(old)
	k := old[n-1]
	h.keys = old[:n-1]
	return k
}

// repair processes the seed nodes: every edge incident to a seed is a
// candidate; candidates are tried heaviest-first; preemption (if the
// policy allows) re-seeds the displaced partner.
func (o *Overlay) repair(seeds []graph.NodeID, st *EventStats) {
	g := o.s.Graph()
	h := &candidateHeap{}
	pushed := make(map[graph.Edge]bool)
	pushNode := func(x graph.NodeID) {
		if !o.alive[x] {
			return
		}
		for _, nb := range g.Neighbors(x) {
			e := graph.Edge{U: x, V: nb}.Normalize()
			if !pushed[e] {
				pushed[e] = true
				heap.Push(h, o.tbl.Key(e.U, e.V))
			}
		}
	}
	for _, x := range seeds {
		pushNode(x)
	}
	for h.Len() > 0 {
		k := heap.Pop(h).(satisfaction.WeightKey)
		e := k.Edge()
		st.Examined++
		if !o.alive[e.U] || !o.alive[e.V] || o.m.Has(e.U, e.V) {
			continue
		}
		uFree := o.m.DegreeOf(e.U) < o.s.Quota(e.U)
		vFree := o.m.DegreeOf(e.V) < o.s.Quota(e.V)
		if uFree && vFree {
			o.m.Add(e.U, e.V)
			st.Added++
			continue
		}
		if o.policy != PreemptLighter {
			continue
		}
		// Preemption: e must be heavier than the lightest connection at
		// every full endpoint; displace those, re-seed their partners.
		var drops []graph.Edge
		ok := true
		for _, x := range []graph.NodeID{e.U, e.V} {
			if o.m.DegreeOf(x) < o.s.Quota(x) {
				continue
			}
			l := o.lightestConnection(x)
			if !k.Heavier(o.tbl.Key(x, l)) {
				ok = false
				break
			}
			drops = append(drops, graph.Edge{U: x, V: l})
		}
		if !ok {
			continue
		}
		if swapHook != nil {
			dk := make([]satisfaction.WeightKey, 0, len(drops))
			for _, d := range drops {
				if o.m.Has(d.U, d.V) {
					dk = append(dk, o.tbl.Key(d.U, d.V))
				}
			}
			swapHook(k, dk)
		}
		for _, d := range drops {
			if o.m.Has(d.U, d.V) { // both endpoints full with the same lightest edge
				o.m.Remove(d.U, d.V)
				st.Removed++
				// Re-seed the displaced partner: allow its edges to be
				// reconsidered, including ones popped earlier.
				partner := d.V
				for _, nb := range g.Neighbors(partner) {
					pe := graph.Edge{U: partner, V: nb}.Normalize()
					if !o.m.Has(pe.U, pe.V) {
						heap.Push(h, o.tbl.Key(pe.U, pe.V))
					}
				}
			}
		}
		o.m.Add(e.U, e.V)
		st.Added++
	}
}

// LiveLIC computes the fresh LIC matching of the live subgraph — the
// quality yardstick for repair. It builds the induced subgraph,
// re-derives preference lists restricted to alive neighbors, runs LIC,
// and maps the result back to universe IDs.
func (o *Overlay) LiveLIC() (*matching.Matching, error) {
	g := o.s.Graph()
	var keep []graph.NodeID
	for x := 0; x < g.NumNodes(); x++ {
		if o.alive[x] {
			keep = append(keep, x)
		}
	}
	sub, back, err := g.Subgraph(keep)
	if err != nil {
		return nil, err
	}
	fwd := make(map[graph.NodeID]int, len(back))
	for newID, oldID := range back {
		fwd[oldID] = newID
	}
	lists := make([][]graph.NodeID, sub.NumNodes())
	quotas := make([]int, sub.NumNodes())
	for newID, oldID := range back {
		for _, j := range o.s.List(oldID) {
			if o.alive[j] {
				lists[newID] = append(lists[newID], fwd[j])
			}
		}
		quotas[newID] = o.s.Quota(oldID)
	}
	s2, err := pref.FromRanks(sub, lists, quotas)
	if err != nil {
		return nil, err
	}
	subM := matching.LIC(s2, satisfaction.NewTable(s2))
	m := matching.New(g.NumNodes())
	for _, e := range subM.Edges() {
		m.Add(back[e.U], back[e.V])
	}
	return m, nil
}

// LiveSatisfaction returns Σ Si over alive nodes for the current
// matching, evaluated against the live preference lists (dead
// neighbors removed from the lists, since a peer cannot rank a peer
// that is gone).
func (o *Overlay) LiveSatisfaction() float64 {
	return o.liveSatisfactionOf(o.m)
}

// liveSatisfactionOf evaluates a matching's total satisfaction against
// the live-restricted preference lists.
func (o *Overlay) liveSatisfactionOf(m *matching.Matching) float64 {
	g := o.s.Graph()
	var total float64
	for x := 0; x < g.NumNodes(); x++ {
		if !o.alive[x] {
			continue
		}
		// Rank among alive neighbors only.
		var li, rankSum float64
		rank := 0
		connRanks := make(map[graph.NodeID]int)
		for _, j := range o.s.List(x) {
			if !o.alive[j] {
				continue
			}
			connRanks[j] = rank
			rank++
		}
		li = float64(rank)
		bi := float64(o.s.Quota(x))
		if li == 0 || bi == 0 {
			continue
		}
		if bi > li {
			bi = li // quota effectively clamps to the live list length
		}
		conns := m.Connections(x)
		ci := float64(len(conns))
		for _, j := range conns {
			rankSum += float64(connRanks[j])
		}
		total += ci/bi + ci*(ci-1)/(2*bi*li) - rankSum/(bi*li)
	}
	return total
}

// QualityRatio returns current-weight / fresh-LIC-weight over the live
// subgraph (1 means repair kept up exactly; ratios can exceed 1 since
// LIC itself is only a ½-approximation).
func (o *Overlay) QualityRatio() (float64, error) {
	fresh, err := o.LiveLIC()
	if err != nil {
		return 0, err
	}
	fw := fresh.Weight(o.s)
	if fw == 0 {
		return 1, nil
	}
	return o.m.Weight(o.s) / fw, nil
}

// Validate checks the live-matching invariants: only alive endpoints,
// only graph edges, quotas respected.
func (o *Overlay) Validate() error {
	for _, e := range o.m.Edges() {
		if !o.alive[e.U] || !o.alive[e.V] {
			return fmt.Errorf("dynamic: edge %v touches a dead node", e)
		}
	}
	return o.m.Validate(o.s)
}
