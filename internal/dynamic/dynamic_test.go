package dynamic

import (
	"testing"
	"testing/quick"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
)

func randomSystem(tb testing.TB, seed uint64, n int, p float64, b int) *pref.System {
	tb.Helper()
	src := rng.New(seed)
	g := gen.GNP(src, n, p)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(b))
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestNewOverlayStartsAtLIC(t *testing.T) {
	s := randomSystem(t, 1, 20, 0.3, 2)
	o := NewOverlay(s, PreemptLighter)
	if o.NumAlive() != 20 {
		t.Fatal("not everyone alive at start")
	}
	fresh, err := o.LiveLIC()
	if err != nil {
		t.Fatal(err)
	}
	if !o.Matching().Equal(fresh) {
		t.Fatal("initial matching is not LIC")
	}
	if q, err := o.QualityRatio(); err != nil || q != 1 {
		t.Fatalf("initial quality = %v, %v", q, err)
	}
}

func TestLeaveDropsConnections(t *testing.T) {
	s := randomSystem(t, 2, 15, 0.5, 2)
	o := NewOverlay(s, CompleteOnly)
	// Pick a matched node.
	var x graph.NodeID = -1
	for i := 0; i < 15; i++ {
		if o.Matching().DegreeOf(i) > 0 {
			x = i
			break
		}
	}
	if x < 0 {
		t.Skip("no matched node")
	}
	st := o.Leave(x)
	if st.Removed == 0 {
		t.Fatal("leave removed nothing")
	}
	if o.Matching().DegreeOf(x) != 0 {
		t.Fatal("dead node still matched")
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveJoinPanics(t *testing.T) {
	s := randomSystem(t, 3, 6, 0.8, 1)
	o := NewOverlay(s, CompleteOnly)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Join of alive node should panic")
			}
		}()
		o.Join(0)
	}()
	o.Leave(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Leave of dead node should panic")
			}
		}()
		o.Leave(0)
	}()
}

// TestRepairMaximality: after any churn sequence, the live matching is
// maximal — no unmatched live edge has free quota at both ends (both
// policies guarantee this).
func TestRepairMaximality(t *testing.T) {
	check := func(seed uint64, nRaw uint8, preempt bool) bool {
		s := randomSystem(t, seed, int(nRaw)%15+5, 0.4, 2)
		policy := CompleteOnly
		if preempt {
			policy = PreemptLighter
		}
		o := NewOverlay(s, policy)
		if _, err := RunChurn(o, ChurnOptions{Events: 20, Seed: seed ^ 0xaa, SkipQuality: true}); err != nil {
			return false
		}
		if o.Validate() != nil {
			return false
		}
		for _, e := range s.Graph().Edges() {
			if !o.Alive(e.U) || !o.Alive(e.V) || o.Matching().Has(e.U, e.V) {
				continue
			}
			if o.Matching().DegreeOf(e.U) < s.Quota(e.U) && o.Matching().DegreeOf(e.V) < s.Quota(e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptiveLocalStability: under PreemptLighter no unmatched live
// edge is heavier than the lightest connection at both of its (full)
// endpoints — the local-stability property fresh LIC would give.
func TestPreemptiveLocalStability(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		s := randomSystem(t, seed, 16, 0.4, 2)
		o := NewOverlay(s, PreemptLighter)
		if _, err := RunChurn(o, ChurnOptions{Events: 30, Seed: seed, SkipQuality: true}); err != nil {
			t.Fatal(err)
		}
		m := o.Matching()
		for _, e := range s.Graph().Edges() {
			if !o.Alive(e.U) || !o.Alive(e.V) || m.Has(e.U, e.V) {
				continue
			}
			k := o.tbl.Key(e.U, e.V)
			blocked := false
			for _, x := range []graph.NodeID{e.U, e.V} {
				if m.DegreeOf(x) < s.Quota(x) {
					continue
				}
				if o.tbl.Key(x, o.lightestConnection(x)).Heavier(k) {
					blocked = true
				}
			}
			if !blocked {
				t.Fatalf("seed %d: edge %v would preempt but was not applied", seed, e)
			}
		}
	}
}

// TestPreemptiveQualityBeatsCompletion: averaged over many churn runs,
// preemptive repair must track fresh LIC at least as well as
// completion-only repair.
func TestPreemptiveQualityBeatsCompletion(t *testing.T) {
	var qComplete, qPreempt float64
	const runs = 10
	for seed := uint64(0); seed < runs; seed++ {
		s := randomSystem(t, seed, 18, 0.4, 2)
		oc := NewOverlay(s, CompleteOnly)
		op := NewOverlay(s, PreemptLighter)
		rc, err := RunChurn(oc, ChurnOptions{Events: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rp, err := RunChurn(op, ChurnOptions{Events: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := range rc {
			qComplete += rc[i].Quality
			qPreempt += rp[i].Quality
		}
	}
	if qPreempt < qComplete-1e-9 {
		t.Fatalf("preemptive quality %v < completion quality %v", qPreempt, qComplete)
	}
}

// TestQualityRatioBounded: repair never leaves more than 2x weight on
// the table relative to fresh LIC (both are maximal matchings with the
// greedy ½-approx structure), and preemptive repair stays close to 1.
func TestQualityRatioBounded(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		s := randomSystem(t, seed, 15, 0.5, 2)
		o := NewOverlay(s, PreemptLighter)
		recs, err := RunChurn(o, ChurnOptions{Events: 20, Seed: seed * 7})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range recs {
			if r.Quality < 0.5-1e-9 {
				t.Fatalf("seed %d event %d: quality %v below greedy floor", seed, i, r.Quality)
			}
		}
	}
}

func TestSetSystemQuotaReduction(t *testing.T) {
	s := randomSystem(t, 9, 12, 0.7, 3)
	o := NewOverlay(s, PreemptLighter)
	// Reduce node 0's quota to 1 via a rebuilt system.
	g := s.Graph()
	lists := make([][]graph.NodeID, g.NumNodes())
	quotas := make([]int, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		lists[i] = append([]graph.NodeID(nil), s.List(i)...)
		quotas[i] = s.Quota(i)
	}
	quotas[0] = 1
	s2, err := pref.FromRanks(g, lists, quotas)
	if err != nil {
		t.Fatal(err)
	}
	before := o.Matching().DegreeOf(0)
	st := o.SetSystem(s2, []graph.NodeID{0})
	if o.Matching().DegreeOf(0) > 1 {
		t.Fatalf("node 0 still has %d connections after quota cut", o.Matching().DegreeOf(0))
	}
	if before > 1 && st.Removed == 0 {
		t.Fatal("quota cut removed nothing")
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetSystemPreferenceFlip(t *testing.T) {
	// Flipping a node's preference list upside down must keep the
	// overlay valid and locally stable after repair.
	s := randomSystem(t, 11, 12, 0.6, 2)
	o := NewOverlay(s, PreemptLighter)
	g := s.Graph()
	lists := make([][]graph.NodeID, g.NumNodes())
	quotas := make([]int, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		lists[i] = append([]graph.NodeID(nil), s.List(i)...)
		quotas[i] = s.Quota(i)
	}
	for a, b := 0, len(lists[0])-1; a < b; a, b = a+1, b-1 {
		lists[0][a], lists[0][b] = lists[0][b], lists[0][a]
	}
	s2, err := pref.FromRanks(g, lists, quotas)
	if err != nil {
		t.Fatal(err)
	}
	o.SetSystem(s2, []graph.NodeID{0})
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.System() != s2 {
		t.Fatal("system not swapped")
	}
}

func TestChurnDeterminism(t *testing.T) {
	run := func() []ChurnRecord {
		s := randomSystem(t, 21, 14, 0.4, 2)
		o := NewOverlay(s, PreemptLighter)
		recs, err := RunChurn(o, ChurnOptions{Events: 15, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestChurnRespectsMinAlive(t *testing.T) {
	s := randomSystem(t, 31, 10, 0.5, 1)
	o := NewOverlay(s, CompleteOnly)
	recs, err := RunChurn(o, ChurnOptions{Events: 100, LeaveProb: 0.99, MinAlive: 5, Seed: 2, SkipQuality: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if r.Alive < 5 {
			t.Fatalf("event %d dropped population to %d", i, r.Alive)
		}
	}
}

// TestLiveLICAfterChurnMatchesManualSubgraph: the quality yardstick
// itself must be correct — compare against LIC on a hand-built
// restricted system.
func TestLiveLICAfterChurn(t *testing.T) {
	s := randomSystem(t, 41, 12, 0.5, 2)
	o := NewOverlay(s, PreemptLighter)
	o.Leave(3)
	o.Leave(7)
	fresh, err := o.LiveLIC()
	if err != nil {
		t.Fatal(err)
	}
	if fresh.DegreeOf(3) != 0 || fresh.DegreeOf(7) != 0 {
		t.Fatal("LiveLIC matched dead nodes")
	}
	if err := fresh.Validate(s); err != nil {
		t.Fatal(err)
	}
}

func TestSetSystemRequiresSameGraph(t *testing.T) {
	s1 := randomSystem(t, 51, 10, 0.5, 2)
	s2 := randomSystem(t, 52, 10, 0.5, 2) // different graph object
	o := NewOverlay(s1, CompleteOnly)
	defer func() {
		if recover() == nil {
			t.Fatal("SetSystem with a foreign graph should panic")
		}
	}()
	o.SetSystem(s2, nil)
}
