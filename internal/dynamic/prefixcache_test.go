package dynamic

import (
	"reflect"
	"testing"
)

// TestEnginePrefixCacheBitIdentical is the exactness proof of the
// weight-list-prefix cache: under shed-heavy churn (the only consumer
// of the cached scan) an engine with the cache must produce the same
// epoch records — rounds, examined counts, added/removed edges,
// deferred bounds — and the same final matching as one without it,
// while actually skipping work.
func TestEnginePrefixCacheBitIdentical(t *testing.T) {
	var totalSkipped int64
	for seed := uint64(0); seed < 12; seed++ {
		run := func(disable bool) *Engine {
			e := mustEngine(t, seed, 50, 0.25, 2, EngineOptions{
				ShedDepth:          1, // every multi-update epoch sheds
				RepairRounds:       2,
				MeasureStability:   true,
				DisablePrefixCache: disable,
			})
			// Low rate spreads the events over many epochs so nodes are
			// re-scanned across sheds — the regime the cache exists for.
			spec := ChurnSpec{Events: 600, LeaveProb: 0.5, MinAlive: 5, Rate: 2}
			if _, err := RunEngineChurn(e, spec, seed^0xcafe); err != nil {
				t.Fatal(err)
			}
			return e
		}
		cached, plain := run(false), run(true)
		if !reflect.DeepEqual(cached.Records(), plain.Records()) {
			t.Fatalf("seed %d: epoch records diverge with the prefix cache", seed)
		}
		if !cached.Overlay().Matching().Equal(plain.Overlay().Matching()) {
			t.Fatalf("seed %d: final matching diverges with the prefix cache", seed)
		}
		if err := cached.Overlay().Validate(); err != nil {
			t.Fatalf("seed %d: cached overlay invalid: %v", seed, err)
		}
		if cached.cache != nil {
			totalSkipped += cached.cache.SkippedTotal()
		}
	}
	if totalSkipped == 0 {
		t.Fatal("the cache never skipped an entry across 12 shed-heavy runs — the equivalence test is vacuous")
	}
	t.Logf("prefix cache skipped %d weight-list entries across the sweep", totalSkipped)
}

// TestEnginePrefixCacheSurvivesDrain: after churn stops, draining to
// quiescence (full-budget epochs use the uncached bounded path) still
// converges to the live LIC — the cache never leaks staleness into the
// final state.
func TestEnginePrefixCacheSurvivesDrain(t *testing.T) {
	for seed := uint64(20); seed < 26; seed++ {
		e := mustEngine(t, seed, 40, 0.3, 3, EngineOptions{ShedDepth: 2, MeasureStability: true})
		spec := ChurnSpec{Events: 50, LeaveProb: 0.6, MinAlive: 4, Rate: 6}
		if _, err := RunEngineChurn(e, spec, seed); err != nil {
			t.Fatal(err)
		}
		e.Heal()
		assertConverged(t, e)
	}
}
