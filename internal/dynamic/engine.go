// Churn-survival engine: an epoch-batched, budget-bounded incremental
// repair loop over the dynamic Overlay.
//
// Where Overlay.Leave/Join/SetSystem repair synchronously per event,
// the Engine models the operating regime the ROADMAP targets — a
// streaming membership feed against a live overlay — with three
// defenses layered on top of the same locally-heaviest repair rule:
//
//   - Epoch batching. Updates are queued and coalesced; a repair epoch
//     launches only when the previous one has finished (epoch cost is
//     a deterministic virtual-time model, so latency columns are
//     golden-safe). An update arriving while an epoch is in flight is
//     a collision: the flush retries with doubled backoff, and the
//     whole backlog lands in one batch — churn bursts amortize.
//
//   - Bounded repair regions + round budget. Each epoch repairs only
//     the frontier reachable from the batch's seed nodes (region size
//     is recorded per epoch). With RepairRounds = k > 0 the repair is
//     truncated after k cascade rounds in the spirit of Floréen et
//     al.'s almost-stable matchings: every candidate edge left
//     unprocessed at truncation is parked in a deferred set whose size
//     is a certified upper bound on the number of blocking edges
//     (see the invariant note on repairBounded). Deferred edges
//     re-seed the next epoch, so the overlay heals once load drops.
//
//   - Overload shedding. If the batch exceeds ShedDepth the epoch
//     degrades to a one-round, region-local backup placement
//     (Barenboim–Oren style, as in internal/tournament/backup.go):
//     membership cleanup still runs (a leave always drops its edges —
//     that is correctness, not quality), free nodes propose to their
//     heaviest free neighbors, mutual-feasible proposals land, and
//     every unresolved candidate is deferred. Shedding reduces work,
//     never validity: quota and aliveness invariants hold after every
//     epoch, bounded or shed.
package dynamic

import (
	"container/heap"
	"fmt"
	"sort"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/metrics"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
)

// Virtual cost model of one repair epoch. Epoch latency is derived
// from work actually done (rounds swept and candidate edges examined),
// not wall clock, so every latency figure in experiments and tests is
// bit-reproducible.
const (
	epochBaseCost     = 1.0
	epochRoundCost    = 0.25
	epochExaminedCost = 1.0 / 64
	// Collision backoff: first retry waits retryBaseDelay after the
	// in-flight epoch ends; each further collision doubles the wait,
	// capped at retryMaxDelay.
	retryBaseDelay = 0.5
	retryMaxDelay  = 8.0
)

// UpdateKind labels one queued overlay update.
type UpdateKind int

const (
	// UpdateJoin restores a node (no-op if already alive at apply time).
	UpdateJoin UpdateKind = iota
	// UpdateLeave removes a node (no-op if already dead at apply time).
	UpdateLeave
	// UpdateRerank swaps in a new preference system over the same
	// graph; Dirty names the nodes whose lists or quotas changed.
	UpdateRerank
)

func (k UpdateKind) String() string {
	switch k {
	case UpdateJoin:
		return "join"
	case UpdateLeave:
		return "leave"
	case UpdateRerank:
		return "rerank"
	}
	return fmt.Sprintf("UpdateKind(%d)", int(k))
}

// Update is one entry of the engine's pending queue.
type Update struct {
	Kind UpdateKind
	At   float64 // submission time (virtual)
	Node graph.NodeID
	// Rerank only:
	System *pref.System
	Dirty  []graph.NodeID
}

// EpochRecord is the per-epoch telemetry row: what was coalesced, how
// far repair got, and how tight the degradation bound is.
type EpochRecord struct {
	Epoch     int
	Start     float64 // flush launch time
	End       float64 // Start + virtual epoch cost
	Batch     int     // updates coalesced into this epoch
	Retries   int     // collisions absorbed before this flush won
	Rounds    int     // cascade rounds actually swept
	Truncated bool    // round budget exhausted with candidates left
	Shed      bool    // epoch degraded to one-round backup placement
	Region    int     // nodes in the repair region
	Stats     EventStats
	Deferred  int // certified blocking-edge bound after this epoch
	Blocking  int // measured blocking edges (-1 unless MeasureStability)
}

// Latency returns the virtual repair latency of the epoch.
func (r EpochRecord) Latency() float64 { return r.End - r.Start }

// EngineOptions configures a churn-survival Engine.
type EngineOptions struct {
	// RepairRounds truncates each epoch's repair after k cascade
	// rounds; 0 means full budget (repair runs to quiescence).
	RepairRounds int
	// ShedDepth sheds epochs whose batch exceeds it to one-round
	// backup placement; 0 disables shedding.
	ShedDepth int
	// Workers parallelizes the initial table/LIC build and rerank
	// table rebuilds (bit-identical for any count; ≤1 is serial).
	Workers int
	// MeasureStability counts blocking edges (O(m)) after every epoch
	// so records carry Blocking alongside the Deferred bound.
	MeasureStability bool
	// DisablePrefixCache turns off the weight-list-prefix cache that
	// shed epochs reuse across repairs (satisfaction.PrefixCache). The
	// cache is exact — results are bit-identical either way — so this
	// exists only for A/B equivalence tests and benchmarks.
	DisablePrefixCache bool
	// Obs, when non-nil, receives one "dynamic.repair" span per epoch
	// and a "dynamic.shed" point per shed decision.
	Obs *obs.Recorder
	// Metrics, when non-nil, receives epoch/region/latency instruments.
	Metrics *metrics.Registry
}

func (o EngineOptions) validate() error {
	if o.RepairRounds < 0 {
		return fmt.Errorf("dynamic: RepairRounds %d negative", o.RepairRounds)
	}
	if o.ShedDepth < 0 {
		return fmt.Errorf("dynamic: ShedDepth %d negative", o.ShedDepth)
	}
	return nil
}

// Engine maintains the live matching under a streaming update feed.
// It is single-goroutine by design (determinism is the contract);
// Workers only parallelizes table builds behind the internal/par
// bit-identity guarantee.
type Engine struct {
	o    *Overlay
	opts EngineOptions

	now       float64
	busyUntil float64 // end of the in-flight epoch
	backoff   float64 // current collision backoff (0 = none pending)
	retries   int     // collisions since the last flush

	pending  []Update
	deferred map[graph.Edge]bool

	// cache is the cross-epoch weight-list-prefix cache shed scans
	// resume from (nil when opts.DisablePrefixCache). Every matching
	// removal and every rejoin must invalidate through it — the
	// invalidation sites are the ones DESIGN.md §13 lists.
	cache       *satisfaction.PrefixCache
	lastSkipped int64

	incarnation []uint64
	epoch       int
	records     []EpochRecord

	totalRetries int64
	totalSheds   int64

	// Region scratch, reused across epochs.
	inRegion []bool
	region   []graph.NodeID

	// Metrics instruments (nil when opts.Metrics is nil).
	mEpochs, mUpdates, mSheds, mRetries *metrics.Counter
	mPrefixSkip                         *metrics.Counter
	mLatency, mRegion                   *metrics.Histogram
	mDeferred, mQueue                   *metrics.Gauge
}

// swapHook, when non-nil, observes every preemptive swap: the added
// edge's key and the keys of the connection(s) it displaced. Test-only;
// the nil check keeps the hot path allocation- and behavior-free.
var swapHook func(added satisfaction.WeightKey, dropped []satisfaction.WeightKey)

// NewEngine starts an engine over a fresh all-alive overlay (parallel
// table + LIC build under opts.Workers) with preemptive repair.
func NewEngine(s *pref.System, opts EngineOptions) (*Engine, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := s.Graph().NumNodes()
	e := &Engine{
		o:           NewOverlayParallel(s, PreemptLighter, opts.Workers),
		opts:        opts,
		deferred:    make(map[graph.Edge]bool),
		incarnation: make([]uint64, n),
		inRegion:    make([]bool, n),
	}
	if !opts.DisablePrefixCache {
		e.cache = satisfaction.NewPrefixCache(s, e.o.tbl)
	}
	if reg := opts.Metrics; reg != nil {
		e.mEpochs = reg.Counter("dynamic_epochs_total", "repair epochs launched")
		e.mUpdates = reg.Counter("dynamic_updates_total", "updates applied")
		e.mSheds = reg.Counter("dynamic_sheds_total", "epochs shed to backup placement")
		e.mRetries = reg.Counter("dynamic_retries_total", "flush collisions with an in-flight epoch")
		e.mPrefixSkip = reg.Counter("dynamic_prefix_skipped_total", "weight-list entries shed scans resumed past via the prefix cache")
		e.mLatency = reg.Histogram("dynamic_epoch_latency", "virtual repair latency per epoch",
			[]float64{1, 2, 4, 8, 16, 32, 64})
		e.mRegion = reg.Histogram("dynamic_region_size", "repair-region size per epoch",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
		e.mDeferred = reg.Gauge("dynamic_deferred_edges", "deferred-candidate backlog (blocking-edge bound)")
		e.mQueue = reg.Gauge("dynamic_queue_depth", "pending updates at last submit")
	}
	return e, nil
}

// NewOverlayParallel is NewOverlay with the table and LIC built under
// `workers` goroutines — bit-identical to the serial build for any
// worker count (the internal/par contract).
func NewOverlayParallel(s *pref.System, policy Policy, workers int) *Overlay {
	tbl := satisfaction.NewTableParallel(s, workers)
	alive := make([]bool, s.Graph().NumNodes())
	for i := range alive {
		alive[i] = true
	}
	return &Overlay{
		s:      s,
		tbl:    tbl,
		m:      matching.LICParallel(s, tbl, workers),
		alive:  alive,
		policy: policy,
	}
}

// Overlay exposes the live overlay (shared; treat as read-only).
func (e *Engine) Overlay() *Overlay { return e.o }

// Now returns the engine's virtual clock.
func (e *Engine) Now() float64 { return e.now }

// Records returns the per-epoch telemetry rows (shared slice).
func (e *Engine) Records() []EpochRecord { return e.records }

// PendingDepth returns the current update-queue depth.
func (e *Engine) PendingDepth() int { return len(e.pending) }

// DeferredBound returns the current certified blocking-edge bound —
// the number of parked candidate edges awaiting a future epoch.
func (e *Engine) DeferredBound() int { return len(e.deferred) }

// TotalRetries returns the cumulative flush-collision count.
func (e *Engine) TotalRetries() int64 { return e.totalRetries }

// TotalSheds returns how many epochs degraded to backup placement.
func (e *Engine) TotalSheds() int64 { return e.totalSheds }

// Incarnation returns node x's membership version: bumped on every
// applied join or leave, so a reader can disambiguate crossing
// leave/join pairs exactly as dlid's repair epochs do.
func (e *Engine) Incarnation(x graph.NodeID) uint64 { return e.incarnation[x] }

// SubmitJoin queues a join of node x at virtual time at.
func (e *Engine) SubmitJoin(at float64, x graph.NodeID) error {
	return e.submit(Update{Kind: UpdateJoin, At: at, Node: x})
}

// SubmitLeave queues a leave of node x at virtual time at.
func (e *Engine) SubmitLeave(at float64, x graph.NodeID) error {
	return e.submit(Update{Kind: UpdateLeave, At: at, Node: x})
}

// SubmitRerank queues a preference-system swap (same graph required)
// at virtual time at; dirty names the nodes whose lists or quotas
// changed.
func (e *Engine) SubmitRerank(at float64, s2 *pref.System, dirty []graph.NodeID) error {
	if s2 == nil {
		return fmt.Errorf("dynamic: SubmitRerank with nil system")
	}
	if s2.Graph() != e.o.s.Graph() {
		return fmt.Errorf("dynamic: SubmitRerank requires the same underlying graph")
	}
	return e.submit(Update{Kind: UpdateRerank, At: at, System: s2, Dirty: dirty})
}

// Submit queues an arbitrary update (the Submit* helpers in one call).
func (e *Engine) Submit(u Update) error { return e.submit(u) }

func (e *Engine) submit(u Update) error {
	if u.At < e.now {
		return fmt.Errorf("dynamic: update at t=%v submitted after engine clock t=%v", u.At, e.now)
	}
	if u.Kind != UpdateRerank {
		if u.Node < 0 || u.Node >= len(e.inRegion) {
			return fmt.Errorf("dynamic: node %d out of range [0,%d)", u.Node, len(e.inRegion))
		}
	}
	e.now = u.At
	e.pending = append(e.pending, u)
	if e.mQueue != nil {
		e.mQueue.Set(float64(len(e.pending)))
	}
	e.tryFlush()
	return nil
}

// notBefore returns the earliest time the next flush may launch.
func (e *Engine) notBefore() float64 { return e.busyUntil + e.backoff }

// tryFlush launches an epoch if the engine is idle; a collision with
// an in-flight epoch records a retry and doubles the backoff.
func (e *Engine) tryFlush() {
	if len(e.pending) == 0 {
		return
	}
	if e.now < e.notBefore() {
		e.retries++
		e.totalRetries++
		if e.mRetries != nil {
			e.mRetries.Inc()
		}
		if e.backoff == 0 {
			e.backoff = retryBaseDelay
		} else {
			e.backoff = min(e.backoff*2, retryMaxDelay)
		}
		return
	}
	e.flush()
}

// Drain flushes until the queue is empty and the deferred backlog has
// had one final full chance, advancing the virtual clock past busy
// windows instead of recording collisions.
func (e *Engine) Drain() {
	for len(e.pending) > 0 {
		if e.now < e.notBefore() {
			e.now = e.notBefore()
		}
		e.flush()
	}
	if e.now < e.busyUntil {
		e.now = e.busyUntil
	}
}

// Heal runs repair epochs with no new updates until the deferred
// backlog drains. Termination: every truncated epoch that re-defers
// work performed at least one swap, and each swap strictly raises the
// matching's lexicographic weight vector, so the backlog cannot
// persist forever; the stall check is a safety valve, not a path taken
// by any budget ≥ 1. Returns the number of healing epochs run.
func (e *Engine) Heal() int {
	ran := 0
	for len(e.deferred) > 0 {
		before := len(e.deferred)
		if e.now < e.busyUntil {
			e.now = e.busyUntil
		}
		e.flush()
		ran++
		r := e.records[len(e.records)-1]
		if len(e.deferred) >= before && r.Stats.Added+r.Stats.Removed == 0 {
			break
		}
	}
	return ran
}

// flush coalesces the pending queue into one repair epoch.
func (e *Engine) flush() {
	batch := e.pending
	e.pending = nil
	e.epoch++
	rec := EpochRecord{
		Epoch:    e.epoch,
		Start:    e.now,
		Batch:    len(batch),
		Retries:  e.retries,
		Blocking: -1,
	}
	e.retries = 0
	e.backoff = 0
	shed := e.opts.ShedDepth > 0 && len(batch) > e.opts.ShedDepth
	rec.Shed = shed
	sid := e.opts.Obs.OpenSpan(0, "dynamic.repair",
		fmt.Sprintf("epoch=%d batch=%d shed=%v", e.epoch, len(batch), shed), rec.Start)

	// Phase 1 — apply the batch in arrival order. Membership cleanup
	// always runs, shed or not: a leave dropping its edges is a
	// correctness action, never sheddable work.
	var seeds []graph.NodeID
	st := &rec.Stats
	for _, u := range batch {
		switch u.Kind {
		case UpdateLeave:
			if !e.o.alive[u.Node] {
				continue // stale: already down
			}
			e.o.alive[u.Node] = false
			e.incarnation[u.Node]++
			freed := e.o.m.Connections(u.Node)
			for _, v := range freed {
				e.o.m.Remove(u.Node, v)
				e.invalidateEdge(u.Node, v)
				st.Removed++
			}
			seeds = append(seeds, freed...)
		case UpdateJoin:
			if e.o.alive[u.Node] {
				continue // stale: already up
			}
			e.o.alive[u.Node] = true
			e.incarnation[u.Node]++
			if e.cache != nil {
				e.cache.InvalidateNode(u.Node)
			}
			seeds = append(seeds, u.Node)
		case UpdateRerank:
			e.o.s = u.System
			e.o.tbl = satisfaction.NewTableParallel(u.System, e.opts.Workers)
			// A new table reorders every weight list: the old cursors
			// are meaningless, so the cache restarts from scratch.
			if e.cache != nil {
				e.cache = satisfaction.NewPrefixCache(u.System, e.o.tbl)
				e.lastSkipped = 0
			}
			for _, x := range u.Dirty {
				seeds = append(seeds, x)
				for e.o.m.DegreeOf(x) > u.System.Quota(x) {
					v := e.o.lightestConnection(x)
					e.o.m.Remove(x, v)
					st.Removed++
					seeds = append(seeds, v)
				}
			}
		}
		if e.mUpdates != nil {
			e.mUpdates.Inc()
		}
	}

	// Phase 2 — repair within the region, full-budget, truncated, or
	// shed.
	if shed {
		e.totalSheds++
		if e.mSheds != nil {
			e.mSheds.Inc()
		}
		e.opts.Obs.Point(0, "dynamic.shed",
			fmt.Sprintf("epoch=%d depth=%d threshold=%d", e.epoch, len(batch), e.opts.ShedDepth), rec.Start)
		e.shedRepair(seeds, &rec)
	} else {
		e.repairBounded(seeds, &rec)
	}
	rec.Region = len(e.region)
	for _, x := range e.region {
		e.inRegion[x] = false
	}
	e.region = e.region[:0]
	e.pruneDeferred()
	rec.Deferred = len(e.deferred)
	if e.opts.MeasureStability {
		rec.Blocking = e.o.BlockingEdges()
	}

	rec.End = rec.Start + epochBaseCost + epochRoundCost*float64(rec.Rounds) +
		epochExaminedCost*float64(rec.Stats.Examined)
	e.busyUntil = rec.End
	e.records = append(e.records, rec)
	e.opts.Obs.CloseSpan(0, sid,
		fmt.Sprintf("rounds=%d region=%d deferred=%d", rec.Rounds, rec.Region, rec.Deferred), rec.End)
	if e.mEpochs != nil {
		e.mEpochs.Inc()
		e.mLatency.Observe(rec.Latency())
		e.mRegion.Observe(float64(rec.Region))
		e.mDeferred.Set(float64(rec.Deferred))
		e.mQueue.Set(0)
		if e.cache != nil {
			if s := e.cache.SkippedTotal(); s > e.lastSkipped {
				e.mPrefixSkip.Add(s - e.lastSkipped)
				e.lastSkipped = s
			}
		}
	}
}

// invalidateEdge forwards a matching removal to the prefix cache: both
// endpoints must rescan the edge's weight-list position.
func (e *Engine) invalidateEdge(u, v graph.NodeID) {
	if e.cache != nil {
		e.cache.InvalidateEdge(u, v)
	}
}

// mark adds x to the current repair region.
func (e *Engine) mark(x graph.NodeID) {
	if !e.inRegion[x] {
		e.inRegion[x] = true
		e.region = append(e.region, x)
	}
}

// takeDeferred drains the deferred set in canonical edge order (the
// map's iteration order must never reach the repair heap: heap pops
// are order-insensitive for a fixed key set, but Examined counts and
// region marking follow processing order, so the hand-off is sorted).
func (e *Engine) takeDeferred() []graph.Edge {
	if len(e.deferred) == 0 {
		return nil
	}
	edges := make([]graph.Edge, 0, len(e.deferred))
	for eg := range e.deferred {
		edges = append(edges, eg)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	clear(e.deferred)
	return edges
}

// pruneDeferred drops deferred candidates that died or got matched —
// the published bound stays honest.
func (e *Engine) pruneDeferred() {
	for eg := range e.deferred {
		if !e.o.alive[eg.U] || !e.o.alive[eg.V] || e.o.m.Has(eg.U, eg.V) {
			delete(e.deferred, eg)
		}
	}
}

// repairBounded runs preemptive repair from the seeds plus the
// deferred backlog, sweeping cascade rounds until quiescence or the
// round budget.
//
// Invariant (the certified bound): entering an epoch, every blocking
// edge of the live matching is in the deferred set; edges that *become*
// blocking through this batch are incident to a seed. During repair an
// edge can only become blocking when an endpoint loses a connection,
// and every such loss re-pushes the loser's unmatched edges. So at any
// stopping point, blocking ⊆ {unprocessed candidates}, which is
// exactly what truncation parks in deferred: Blocking ≤ Deferred holds
// after every epoch, and a full-budget epoch (empty heaps, empty
// deferred) has zero blocking edges — i.e. the unique stable matching
// of the live edge set under the inherited order, LiveLICInherited.
func (e *Engine) repairBounded(seeds []graph.NodeID, rec *EpochRecord) {
	g := e.o.s.Graph()
	st := &rec.Stats
	cur, next := &candidateHeap{}, &candidateHeap{}
	pushed := make(map[graph.Edge]bool)
	pushNode := func(x graph.NodeID) {
		if !e.o.alive[x] {
			return
		}
		e.mark(x)
		for _, nb := range g.Neighbors(x) {
			eg := graph.Edge{U: x, V: nb}.Normalize()
			if !pushed[eg] {
				pushed[eg] = true
				heap.Push(cur, e.o.tbl.Key(eg.U, eg.V))
			}
		}
	}
	for _, x := range seeds {
		pushNode(x)
	}
	for _, eg := range e.takeDeferred() {
		if !e.o.alive[eg.U] || !e.o.alive[eg.V] || e.o.m.Has(eg.U, eg.V) {
			continue
		}
		if !pushed[eg] {
			pushed[eg] = true
			heap.Push(cur, e.o.tbl.Key(eg.U, eg.V))
		}
	}

	budget := e.opts.RepairRounds
	for cur.Len() > 0 {
		if budget > 0 && rec.Rounds >= budget {
			rec.Truncated = true
			break
		}
		rec.Rounds++
		for cur.Len() > 0 {
			k := heap.Pop(cur).(satisfaction.WeightKey)
			eg := k.Edge()
			st.Examined++
			if !e.o.alive[eg.U] || !e.o.alive[eg.V] || e.o.m.Has(eg.U, eg.V) {
				continue
			}
			e.mark(eg.U)
			e.mark(eg.V)
			uFree := e.o.m.DegreeOf(eg.U) < e.o.s.Quota(eg.U)
			vFree := e.o.m.DegreeOf(eg.V) < e.o.s.Quota(eg.V)
			if uFree && vFree {
				e.o.m.Add(eg.U, eg.V)
				st.Added++
				continue
			}
			// Preemption: heavier than the lightest connection at
			// every full endpoint, else skip.
			var drops []graph.Edge
			ok := true
			for _, x := range []graph.NodeID{eg.U, eg.V} {
				if e.o.m.DegreeOf(x) < e.o.s.Quota(x) {
					continue
				}
				if e.o.m.DegreeOf(x) == 0 {
					ok = false // quota 0: can never accept
					break
				}
				l := e.o.lightestConnection(x)
				if !k.Heavier(e.o.tbl.Key(x, l)) {
					ok = false
					break
				}
				drops = append(drops, graph.Edge{U: x, V: l})
			}
			if !ok {
				continue
			}
			if swapHook != nil {
				dk := make([]satisfaction.WeightKey, 0, len(drops))
				for _, d := range drops {
					if e.o.m.Has(d.U, d.V) {
						dk = append(dk, e.o.tbl.Key(d.U, d.V))
					}
				}
				swapHook(k, dk)
			}
			for _, d := range drops {
				if e.o.m.Has(d.U, d.V) { // both endpoints may share the same lightest edge
					e.o.m.Remove(d.U, d.V)
					e.invalidateEdge(d.U, d.V)
					st.Removed++
					partner := d.V
					e.mark(partner)
					// Re-seed the displaced partner in the next round:
					// its unmatched edges may now be blocking.
					for _, nb := range g.Neighbors(partner) {
						pe := graph.Edge{U: partner, V: nb}.Normalize()
						if !e.o.m.Has(pe.U, pe.V) {
							heap.Push(next, e.o.tbl.Key(pe.U, pe.V))
						}
					}
				}
			}
			e.o.m.Add(eg.U, eg.V)
			st.Added++
		}
		cur, next = next, cur
	}
	// Park whatever the budget left behind.
	for _, h := range []*candidateHeap{cur, next} {
		for _, k := range h.keys {
			eg := k.Edge()
			if e.o.alive[eg.U] && e.o.alive[eg.V] && !e.o.m.Has(eg.U, eg.V) {
				e.deferred[eg] = true
			}
		}
	}
}

// shedRepair is the overload path: one round of region-local backup
// placement. Every free region node proposes to its heaviest free
// slots' worth of alive unmatched neighbors; proposals are granted
// heaviest-first while both endpoints still have free quota. A node
// proposes at most (quota − degree) edges and a grant re-checks both
// quotas, so validity is structural. All candidate edges incident to
// the region that did not land — plus the untouched deferred backlog —
// stay parked, keeping the blocking-edge bound intact.
func (e *Engine) shedRepair(seeds []graph.NodeID, rec *EpochRecord) {
	g := e.o.s.Graph()
	st := &rec.Stats
	rec.Rounds = 1
	for _, x := range seeds {
		if e.o.alive[x] {
			e.mark(x)
		}
	}
	var props []satisfaction.WeightKey
	for _, x := range e.region {
		free := e.o.s.Quota(x) - e.o.m.DegreeOf(x)
		if free <= 0 {
			continue
		}
		neigh := e.o.tbl.SortedNeighbors(e.o.s, x)
		// Resume past the prefix previous epochs proved exhausted. The
		// cursor may only extend over entries skipped here for a
		// persistent reason (dead neighbor or matched edge) with no
		// consumed candidate in between — consumed entries may still be
		// free next epoch and must be rescanned.
		start := 0
		if e.cache != nil {
			start = e.cache.Start(x)
		}
		run, contig := start, true
		cnt := 0
		for pos := start; pos < len(neigh); pos++ {
			if cnt >= free {
				break
			}
			nb := neigh[pos]
			if !e.o.alive[nb] || e.o.m.Has(x, nb) {
				if contig {
					run = pos + 1
				}
				continue
			}
			contig = false
			st.Examined++
			props = append(props, e.o.tbl.Key(x, nb))
			cnt++
		}
		if e.cache != nil {
			e.cache.Advance(x, run)
		}
	}
	sort.Slice(props, func(i, j int) bool { return props[i].Heavier(props[j]) })
	for _, k := range props {
		eg := k.Edge()
		if e.o.m.Has(eg.U, eg.V) {
			continue // proposed from both sides
		}
		if e.o.m.DegreeOf(eg.U) < e.o.s.Quota(eg.U) && e.o.m.DegreeOf(eg.V) < e.o.s.Quota(eg.V) {
			e.o.m.Add(eg.U, eg.V)
			st.Added++
		}
	}
	// Defer every unresolved candidate incident to the region: the
	// bound must cover everything a bounded epoch would have examined.
	for _, x := range e.region {
		for _, nb := range g.Neighbors(x) {
			eg := graph.Edge{U: x, V: nb}.Normalize()
			if e.o.alive[eg.U] && e.o.alive[eg.V] && !e.o.m.Has(eg.U, eg.V) {
				e.deferred[eg] = true
			}
		}
	}
}

// LiveLICInherited computes the LIC matching of the live edge set
// under the current weight table — weights inherited from the full
// preference lists, unlike LiveLIC, which models the surviving peers
// re-ranking each other from scratch (the paper's quality yardstick).
// Under the inherited order the stable matching of the live subgraph
// is unique and this greedy scan constructs it, so it is the exact
// fixed point full-budget repair converges to.
func (o *Overlay) LiveLICInherited() *matching.Matching {
	g := o.s.Graph()
	keys := make([]satisfaction.WeightKey, 0, g.NumEdges())
	for id := 0; id < g.NumEdges(); id++ {
		eg := g.EdgeByID(graph.EdgeID(id))
		if o.alive[eg.U] && o.alive[eg.V] {
			keys = append(keys, o.tbl.KeyByID(graph.EdgeID(id)))
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Heavier(keys[j]) })
	quota := make([]int, g.NumNodes())
	for i := range quota {
		quota[i] = o.s.Quota(i)
	}
	m := matching.New(g.NumNodes())
	for _, k := range keys {
		if quota[k.U] > 0 && quota[k.V] > 0 {
			m.Add(k.U, k.V)
			quota[k.U]--
			quota[k.V]--
		}
	}
	return m
}

// BlockingEdges counts live unmatched edges that are blocking under
// the shared weight order: both endpoints would accept — an endpoint
// accepts when it has free quota, or when the edge is strictly heavier
// than its lightest current connection. Zero blocking edges means the
// matching is the unique stable (locally-heaviest) matching of the
// live subgraph.
func (o *Overlay) BlockingEdges() int {
	g := o.s.Graph()
	count := 0
	for id := 0; id < g.NumEdges(); id++ {
		eg := g.EdgeByID(graph.EdgeID(id))
		if !o.alive[eg.U] || !o.alive[eg.V] || o.m.Has(eg.U, eg.V) {
			continue
		}
		k := o.tbl.Key(eg.U, eg.V)
		blocking := true
		for _, x := range []graph.NodeID{eg.U, eg.V} {
			if o.m.DegreeOf(x) < o.s.Quota(x) {
				continue // free: accepts
			}
			if o.m.DegreeOf(x) == 0 || !k.Heavier(o.tbl.Key(x, o.lightestConnection(x))) {
				blocking = false
				break
			}
		}
		if blocking {
			count++
		}
	}
	return count
}
