package dynamic

import (
	"reflect"
	"testing"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/metrics"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/satisfaction"
)

// mustEngine builds an engine over a fresh random system.
func mustEngine(tb testing.TB, seed uint64, n int, p float64, b int, opts EngineOptions) *Engine {
	tb.Helper()
	e, err := NewEngine(randomSystem(tb, seed, n, p, b), opts)
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

// assertConverged checks the full-heal postcondition: a valid matching
// with zero blocking edges that equals the fresh LIC of the live edge
// set under the inherited weight order — the unique stable matching
// repair can reach. (LiveLIC with re-ranked lists is a different,
// quality-only yardstick: restricting lists changes ranks and hence
// weights.)
func assertConverged(tb testing.TB, e *Engine) {
	tb.Helper()
	if err := e.Overlay().Validate(); err != nil {
		tb.Fatalf("overlay invalid: %v", err)
	}
	if bl := e.Overlay().BlockingEdges(); bl != 0 {
		tb.Fatalf("converged state has %d blocking edges", bl)
	}
	if !e.Overlay().Matching().Equal(e.Overlay().LiveLICInherited()) {
		tb.Fatal("converged matching != live-LIC (inherited order)")
	}
}

func TestChurnOptionsValidate(t *testing.T) {
	const n = 20
	bad := []ChurnOptions{
		{Events: 0},
		{Events: -5},
		{Events: 10, LeaveProb: -0.1},
		{Events: 10, LeaveProb: 1.5},
		{Events: 10, MinAlive: -1},
		{Events: 10, MinAlive: n},
		{Events: 10, MinAlive: n + 3},
	}
	for i, opts := range bad {
		if err := opts.Validate(n); err == nil {
			t.Errorf("case %d: Validate(%+v) accepted invalid options", i, opts)
		}
	}
	good := []ChurnOptions{
		{Events: 1},
		{Events: 10, LeaveProb: 1, MinAlive: n - 1},
		{Events: 10, LeaveProb: 0.25, MinAlive: 2},
	}
	for i, opts := range good {
		if err := opts.Validate(n); err != nil {
			t.Errorf("case %d: Validate(%+v) rejected valid options: %v", i, opts, err)
		}
	}
	// RunChurn surfaces the same errors instead of looping silently.
	o := NewOverlay(randomSystem(t, 11, n, 0.3, 2), PreemptLighter)
	if _, err := RunChurn(o, ChurnOptions{Events: 10, MinAlive: n}); err == nil {
		t.Fatal("RunChurn accepted MinAlive = n")
	}
	if _, err := RunChurn(o, ChurnOptions{Events: 10, LeaveProb: 2}); err == nil {
		t.Fatal("RunChurn accepted LeaveProb = 2")
	}
}

func TestEngineOptionsValidate(t *testing.T) {
	s := randomSystem(t, 3, 10, 0.4, 2)
	if _, err := NewEngine(s, EngineOptions{RepairRounds: -1}); err == nil {
		t.Fatal("negative RepairRounds accepted")
	}
	if _, err := NewEngine(s, EngineOptions{ShedDepth: -2}); err == nil {
		t.Fatal("negative ShedDepth accepted")
	}
}

func TestEngineStartsAtLIC(t *testing.T) {
	e := mustEngine(t, 4, 30, 0.3, 2, EngineOptions{})
	assertConverged(t, e)
	if e.DeferredBound() != 0 || e.PendingDepth() != 0 {
		t.Fatal("fresh engine has backlog")
	}
}

func TestEngineFullBudgetEqualsLiveLIC(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		e := mustEngine(t, seed, 40, 0.2, 2, EngineOptions{MeasureStability: true})
		spec := ChurnSpec{Events: 40, LeaveProb: 0.6, MinAlive: 5, Rate: 2}
		recs, err := RunEngineChurn(e, spec, seed^0x5eed)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if r.Truncated || r.Shed {
				t.Fatalf("seed %d: full-budget epoch truncated/shed: %+v", seed, r)
			}
			if r.Deferred != 0 {
				t.Fatalf("seed %d: full-budget epoch left deferred=%d", seed, r.Deferred)
			}
			if r.Blocking != 0 {
				t.Fatalf("seed %d: full-budget epoch left blocking=%d", seed, r.Blocking)
			}
		}
		assertConverged(t, e)
	}
}

func TestEngineCoalescingAndBackoff(t *testing.T) {
	e := mustEngine(t, 7, 40, 0.25, 2, EngineOptions{})
	// First event at t=0 launches epoch 1 immediately (batch of 1).
	if err := e.SubmitLeave(0, 0); err != nil {
		t.Fatal(err)
	}
	if len(e.Records()) != 1 || e.Records()[0].Batch != 1 {
		t.Fatalf("expected immediate epoch of batch 1, got %+v", e.Records())
	}
	busy := e.Records()[0].End
	// A burst inside the busy window collides and queues.
	for i := 1; i <= 5; i++ {
		if err := e.SubmitLeave(busy/2, graph.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(e.Records()) != 1 {
		t.Fatal("epoch launched while another was in flight")
	}
	if e.PendingDepth() != 5 {
		t.Fatalf("queue depth %d, want 5", e.PendingDepth())
	}
	if e.TotalRetries() != 5 {
		t.Fatalf("retries %d, want 5", e.TotalRetries())
	}
	// Backoff pushed the launch past busyUntil: an arrival just after
	// the busy window still collides...
	if err := e.SubmitJoin(busy+0.01, 0); err != nil {
		t.Fatal(err)
	}
	if len(e.Records()) != 1 {
		t.Fatal("flush ignored the collision backoff")
	}
	// ...and the whole backlog coalesces once the backoff expires.
	e.Drain()
	if len(e.Records()) != 2 {
		t.Fatalf("drain ran %d epochs, want exactly 1 more", len(e.Records())-1)
	}
	if got := e.Records()[1].Batch; got != 6 {
		t.Fatalf("coalesced batch %d, want 6", got)
	}
	if e.Records()[1].Retries != 6 {
		t.Fatalf("epoch 2 absorbed %d retries, want 6", e.Records()[1].Retries)
	}
	assertConverged(t, e)
}

func TestEngineTruncationBoundAndHeal(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		e := mustEngine(t, seed+100, 50, 0.25, 2, EngineOptions{RepairRounds: 1, MeasureStability: true})
		spec := ChurnSpec{Events: 60, LeaveProb: 0.6, MinAlive: 6, Rate: 4}
		recs, err := RunEngineChurn(e, spec, seed)
		if err != nil {
			t.Fatal(err)
		}
		truncated := 0
		for _, r := range recs {
			if r.Blocking < 0 {
				t.Fatal("MeasureStability did not populate Blocking")
			}
			if r.Blocking > r.Deferred {
				t.Fatalf("seed %d epoch %d: blocking %d exceeds certified bound %d",
					seed, r.Epoch, r.Blocking, r.Deferred)
			}
			if r.Truncated {
				truncated++
			}
		}
		if err := e.Overlay().Validate(); err != nil {
			t.Fatalf("seed %d: truncated overlay invalid: %v", seed, err)
		}
		// With load gone, healing epochs consume the backlog and land
		// on the stable matching.
		e.Heal()
		assertConverged(t, e)
	}
}

func TestEngineSheddingPreservesValidity(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		e := mustEngine(t, seed+200, 50, 0.25, 2, EngineOptions{ShedDepth: 2, MeasureStability: true})
		// High rate forces deep batches → shedding.
		spec := ChurnSpec{Events: 80, LeaveProb: 0.55, MinAlive: 6, Rate: 16}
		recs, err := RunEngineChurn(e, spec, seed)
		if err != nil {
			t.Fatal(err)
		}
		if e.TotalSheds() == 0 {
			t.Fatalf("seed %d: shedding never engaged (tune the spec)", seed)
		}
		for _, r := range recs {
			if r.Blocking > r.Deferred {
				t.Fatalf("seed %d epoch %d: blocking %d > bound %d under shedding",
					seed, r.Epoch, r.Blocking, r.Deferred)
			}
			if r.Shed && r.Rounds != 1 {
				t.Fatalf("shed epoch swept %d rounds, want 1", r.Rounds)
			}
		}
		if err := e.Overlay().Validate(); err != nil {
			t.Fatalf("seed %d: shed overlay invalid: %v", seed, err)
		}
		e.Heal()
		assertConverged(t, e)
	}
}

func TestEngineWorkerDeterminism(t *testing.T) {
	var base []EpochRecord
	var baseEdges []graph.Edge
	for _, workers := range []int{1, 2, 4} {
		e := mustEngine(t, 42, 60, 0.2, 3, EngineOptions{
			RepairRounds: 2, ShedDepth: 4, Workers: workers, MeasureStability: true,
		})
		spec := ChurnSpec{Events: 50, LeaveProb: 0.5, MinAlive: 8, Rate: 8}
		recs, err := RunEngineChurn(e, spec, 9)
		if err != nil {
			t.Fatal(err)
		}
		edges := e.Overlay().Matching().Edges()
		if workers == 1 {
			base, baseEdges = recs, edges
			continue
		}
		if !reflect.DeepEqual(recs, base) {
			t.Fatalf("workers=%d: epoch records differ from serial run", workers)
		}
		if !reflect.DeepEqual(edges, baseEdges) {
			t.Fatalf("workers=%d: final matching differs from serial run", workers)
		}
	}
}

func TestEngineIncarnationsAndStaleEvents(t *testing.T) {
	e := mustEngine(t, 8, 20, 0.4, 2, EngineOptions{})
	if e.Incarnation(3) != 0 {
		t.Fatal("fresh node has nonzero incarnation")
	}
	for _, step := range []struct {
		at    float64
		kind  UpdateKind
		wantI uint64
	}{
		{10, UpdateLeave, 1},  // applied
		{20, UpdateLeave, 1},  // stale: already down
		{30, UpdateJoin, 2},   // applied
		{40, UpdateJoin, 2},   // stale: already up
		{50, UpdateLeave, 3},  // applied
	} {
		var err error
		if step.kind == UpdateLeave {
			err = e.SubmitLeave(step.at, 3)
		} else {
			err = e.SubmitJoin(step.at, 3)
		}
		if err != nil {
			t.Fatal(err)
		}
		e.Drain()
		if got := e.Incarnation(3); got != step.wantI {
			t.Fatalf("after %v at t=%v: incarnation %d, want %d", step.kind, step.at, got, step.wantI)
		}
	}
	if e.Overlay().Alive(3) {
		t.Fatal("node should be down")
	}
	// A leave/join pair coalesced into one epoch still bumps twice.
	if err := e.SubmitJoin(e.Now()+100, 3); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if got := e.Incarnation(3); got != 4 {
		t.Fatalf("incarnation %d after final join, want 4", got)
	}
	assertConverged(t, e)
}

func TestEngineSubmitErrors(t *testing.T) {
	e := mustEngine(t, 9, 10, 0.4, 1, EngineOptions{})
	if err := e.SubmitLeave(5, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitLeave(1, 1); err == nil {
		t.Fatal("time-travel submit accepted")
	}
	if err := e.SubmitJoin(6, -1); err == nil {
		t.Fatal("negative node accepted")
	}
	if err := e.SubmitJoin(6, 10); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	other := randomSystem(t, 10, 10, 0.4, 1)
	if err := e.SubmitRerank(7, other, nil); err == nil {
		t.Fatal("rerank onto a different graph accepted")
	}
	if err := e.SubmitRerank(7, nil, nil); err == nil {
		t.Fatal("nil rerank system accepted")
	}
}

func TestEngineRegionBounded(t *testing.T) {
	// A single leave/join in a quiet overlay repairs a region far
	// smaller than the graph: the frontier stays local.
	e := mustEngine(t, 12, 200, 0.05, 2, EngineOptions{})
	n := e.Overlay().System().Graph().NumNodes()
	if err := e.SubmitLeave(1, 17); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	recs := e.Records()
	last := recs[len(recs)-1]
	if last.Region >= n/2 {
		t.Fatalf("single-event region %d spans half the overlay (n=%d)", last.Region, n)
	}
	assertConverged(t, e)
}

func TestEngineObsAndMetrics(t *testing.T) {
	reg := metrics.New()
	rec := obs.NewRecorder(40)
	e, err := NewEngine(randomSystem(t, 13, 40, 0.25, 2), EngineOptions{
		ShedDepth: 1, Metrics: reg, Obs: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := ChurnSpec{Events: 30, LeaveProb: 0.5, MinAlive: 5, Rate: 16}
	if _, err := RunEngineChurn(e, spec, 3); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no dynamic.repair spans recorded")
	}
	kinds := map[string]bool{}
	for _, ev := range rec.Events() {
		kinds[ev.Kind] = true
	}
	if !kinds["dynamic.repair"] {
		t.Fatal("missing dynamic.repair span")
	}
	if e.TotalSheds() > 0 && !kinds["dynamic.shed"] {
		t.Fatal("shed epochs ran without dynamic.shed points")
	}
	if reg.Counter("dynamic_epochs_total", "").Value() != int64(len(e.Records())) {
		t.Fatal("epoch counter out of sync with records")
	}
	if reg.Counter("dynamic_retries_total", "").Value() != e.TotalRetries() {
		t.Fatal("retry counter out of sync")
	}
}

// TestPreemptiveCascadeProperty is the cascade property test: across
// 200 seeds, every PreemptLighter swap must strictly improve — the
// added connection is strictly heavier, in the shared total order,
// than every connection it displaces (the lexicographic potential that
// proves termination) — and the repaired state must equal the fresh
// live-LIC (inherited order) of the surviving subgraph. Two caveats
// keep the naive "each swap raises total weight" phrasing honest: a
// swap displacing one connection at BOTH endpoints trades two edges
// for one, so the increase holds per displaced edge rather than per
// sum (the sorted weight vector is what strictly increases); and on an
// exact weight tie the order falls back to the canonical endpoint
// tiebreak, so single-displacement swaps are checked for numeric
// non-decrease.
func TestPreemptiveCascadeProperty(t *testing.T) {
	defer func() { swapHook = nil }()
	for seed := uint64(0); seed < 200; seed++ {
		var swaps, weightChecked int
		failed := false
		swapHook = func(added satisfaction.WeightKey, dropped []satisfaction.WeightKey) {
			swaps++
			var droppedSum float64
			for _, d := range dropped {
				if !added.Heavier(d) {
					t.Errorf("seed %d: swap added %v not strictly heavier than displaced %v", seed, added, d)
					failed = true
				}
				droppedSum += d.W
			}
			// For a single displacement the strict total-order
			// increase asserted above is a numeric weight increase
			// too — except on exact weight ties, where Heavier falls
			// back to the canonical endpoint tiebreak. Total weight
			// must then never decrease.
			if len(dropped) == 1 {
				weightChecked++
				if added.W < droppedSum {
					t.Errorf("seed %d: single-displacement swap decreased total weight (%v -> %v)",
						seed, droppedSum, added.W)
					failed = true
				}
			}
		}
		// Half the seeds drive the synchronous Overlay path, half the
		// batched Engine path: the hook guards both repair loops.
		if seed%2 == 0 {
			o := NewOverlay(randomSystem(t, seed, 35, 0.25, 2), PreemptLighter)
			if _, err := RunChurn(o, ChurnOptions{Events: 30, Seed: seed ^ 0xc0de, SkipQuality: true}); err != nil {
				t.Fatal(err)
			}
			if !o.Matching().Equal(o.LiveLICInherited()) {
				t.Fatalf("seed %d: overlay post-repair != live-LIC (inherited order)", seed)
			}
		} else {
			e, err := NewEngine(randomSystem(t, seed, 35, 0.25, 2), EngineOptions{})
			if err != nil {
				t.Fatal(err)
			}
			spec := ChurnSpec{Events: 30, LeaveProb: 0.55, MinAlive: 4, Rate: 4}
			if _, err := RunEngineChurn(e, spec, seed^0xbeef); err != nil {
				t.Fatal(err)
			}
			assertConverged(t, e)
		}
		if failed {
			t.FailNow()
		}
	}
	swapHook = nil
}
