package dynamic

import (
	"fmt"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/rng"
)

// ChurnEventKind labels one churn event.
type ChurnEventKind int

const (
	// EventLeave removes a uniformly chosen alive node.
	EventLeave ChurnEventKind = iota
	// EventJoin restores a uniformly chosen dead node.
	EventJoin
)

// ChurnRecord captures one event and the state right after its repair.
type ChurnRecord struct {
	Kind         ChurnEventKind
	Node         graph.NodeID
	Stats        EventStats
	Alive        int
	Quality      float64 // live weight / fresh live-LIC weight
	Satisfaction float64 // live total satisfaction after repair
}

// ChurnOptions configures a churn run.
type ChurnOptions struct {
	Events      int
	LeaveProb   float64 // probability an event is a leave (0 = default 0.5)
	MinAlive    int     // leaves are suppressed below this population (0/1 = default 2)
	Seed        uint64
	SkipQuality bool // skip per-event LiveLIC (O(m log m)) for large sweeps
}

// Validate rejects option combinations that would previously run but
// silently misbehave: a probability outside [0,1], a floor the
// population can never satisfy, or an empty run. The zero values of
// LeaveProb and MinAlive keep their documented defaults. n is the
// universe size of the overlay the options will drive.
func (opts ChurnOptions) Validate(n int) error {
	if opts.Events <= 0 {
		return fmt.Errorf("dynamic: ChurnOptions.Events %d must be positive", opts.Events)
	}
	if opts.LeaveProb < 0 || opts.LeaveProb > 1 {
		return fmt.Errorf("dynamic: ChurnOptions.LeaveProb %v outside [0,1]", opts.LeaveProb)
	}
	if opts.MinAlive < 0 {
		return fmt.Errorf("dynamic: ChurnOptions.MinAlive %d negative", opts.MinAlive)
	}
	if opts.MinAlive >= n {
		return fmt.Errorf("dynamic: ChurnOptions.MinAlive %d must be < n=%d", opts.MinAlive, n)
	}
	return nil
}

// RunChurn drives `Events` random leave/join events through the
// overlay, recording repair cost and quality after each. The event
// stream is deterministic for a given seed.
func RunChurn(o *Overlay, opts ChurnOptions) ([]ChurnRecord, error) {
	n := o.s.Graph().NumNodes()
	if err := opts.Validate(n); err != nil {
		return nil, err
	}
	src := rng.New(opts.Seed)
	if opts.LeaveProb == 0 {
		opts.LeaveProb = 0.5
	}
	if opts.MinAlive < 2 {
		opts.MinAlive = 2
	}
	records := make([]ChurnRecord, 0, opts.Events)
	for ev := 0; ev < opts.Events; ev++ {
		var alive, dead []graph.NodeID
		for x := 0; x < n; x++ {
			if o.Alive(x) {
				alive = append(alive, x)
			} else {
				dead = append(dead, x)
			}
		}
		leave := src.Bool(opts.LeaveProb)
		if len(dead) == 0 {
			leave = true
		}
		if len(alive) <= opts.MinAlive {
			leave = false
		}
		if !leave && len(dead) == 0 {
			// Nothing can join and nothing may leave: population pinned.
			continue
		}
		rec := ChurnRecord{}
		if leave {
			rec.Kind = EventLeave
			rec.Node = alive[src.Intn(len(alive))]
			rec.Stats = o.Leave(rec.Node)
		} else {
			rec.Kind = EventJoin
			rec.Node = dead[src.Intn(len(dead))]
			rec.Stats = o.Join(rec.Node)
		}
		rec.Alive = o.NumAlive()
		if !opts.SkipQuality {
			q, err := o.QualityRatio()
			if err != nil {
				return records, err
			}
			rec.Quality = q
			rec.Satisfaction = o.LiveSatisfaction()
		}
		records = append(records, rec)
	}
	return records, nil
}
