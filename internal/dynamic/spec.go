package dynamic

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"overlaymatch/internal/faults"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
)

// ChurnSpec is the replayable grammar for a synthetic membership feed,
// in the style of faults.Spec / workload.Spec:
//
//	events=200,leave=0.5,minalive=8,rate=2
//
//   - events: number of membership events to generate (required > 0)
//   - leave: probability an event is a leave when both directions are
//     possible (default 0.5)
//   - minalive: leaves are suppressed at or below this population
//     (default 2)
//   - rate: mean events per unit of virtual time; inter-arrival gaps
//     are exponential, so the feed is a Poisson process (default 1)
//
// The empty string and "off" parse to the zero spec (no churn).
// ParseChurnSpec(s.String()) round-trips for any valid spec.
type ChurnSpec struct {
	Events    int
	LeaveProb float64
	MinAlive  int
	Rate      float64
}

// IsZero reports whether the spec generates no events.
func (s ChurnSpec) IsZero() bool { return s.Events == 0 }

// String renders the canonical form ("off" for the zero spec).
func (s ChurnSpec) String() string {
	if s.IsZero() {
		return "off"
	}
	return fmt.Sprintf("events=%d,leave=%s,minalive=%d,rate=%s",
		s.Events,
		strconv.FormatFloat(s.LeaveProb, 'g', -1, 64),
		s.MinAlive,
		strconv.FormatFloat(s.Rate, 'g', -1, 64))
}

// Validate range-checks a non-zero spec.
func (s ChurnSpec) Validate() error {
	if s.IsZero() {
		return nil
	}
	if s.Events < 0 || s.Events > 10_000_000 {
		return fmt.Errorf("dynamic: churn events=%d out of range [0,1e7]", s.Events)
	}
	if !(s.LeaveProb >= 0 && s.LeaveProb <= 1) { // negated form: rejects NaN too
		return fmt.Errorf("dynamic: churn leave=%v outside [0,1]", s.LeaveProb)
	}
	if s.MinAlive < 0 {
		return fmt.Errorf("dynamic: churn minalive=%d negative", s.MinAlive)
	}
	if !(s.Rate > 0) || s.Rate > 1e6 {
		return fmt.Errorf("dynamic: churn rate=%v outside (0,1e6]", s.Rate)
	}
	return nil
}

// ParseChurnSpec parses the grammar above; absent keys take their
// documented defaults.
func ParseChurnSpec(in string) (ChurnSpec, error) {
	s := strings.TrimSpace(in)
	if s == "" || s == "off" {
		return ChurnSpec{}, nil
	}
	spec := ChurnSpec{LeaveProb: 0.5, MinAlive: 2, Rate: 1}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, found := strings.Cut(part, "=")
		if !found {
			return ChurnSpec{}, fmt.Errorf("dynamic: churn spec term %q is not key=value", part)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "events", "minalive":
			n, err := strconv.Atoi(val)
			if err != nil {
				return ChurnSpec{}, fmt.Errorf("dynamic: churn %s=%q: %v", key, val, err)
			}
			if key == "events" {
				spec.Events = n
			} else {
				spec.MinAlive = n
			}
		case "leave", "rate":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return ChurnSpec{}, fmt.Errorf("dynamic: churn %s=%q: %v", key, val, err)
			}
			if key == "leave" {
				spec.LeaveProb = f
			} else {
				spec.Rate = f
			}
		default:
			return ChurnSpec{}, fmt.Errorf("dynamic: unknown churn spec key %q", key)
		}
	}
	if spec.Events == 0 {
		return ChurnSpec{}, fmt.Errorf("dynamic: churn spec %q needs events=<n> (or use %q)", in, "off")
	}
	if err := spec.Validate(); err != nil {
		return ChurnSpec{}, err
	}
	return spec, nil
}

// TimedEvent is one entry of a pre-computed update schedule.
type TimedEvent struct {
	At     float64
	Kind   UpdateKind
	Node   graph.NodeID
	System *pref.System   // UpdateRerank only
	Dirty  []graph.NodeID // UpdateRerank only
}

// Schedule expands the spec into a concrete membership feed over an
// n-node overlay that starts fully alive. The feed is deterministic
// for a given seed and respects MinAlive against its own projection of
// the population (the engine applies stale events as no-ops, so a
// merged crash schedule cannot break it).
func (s ChurnSpec) Schedule(n int, seed uint64) ([]TimedEvent, error) {
	if s.IsZero() {
		return nil, nil
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.MinAlive >= n {
		return nil, fmt.Errorf("dynamic: churn minalive=%d must be < n=%d", s.MinAlive, n)
	}
	src := rng.New(seed)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	nAlive := n
	t := 0.0
	evs := make([]TimedEvent, 0, s.Events)
	var pool []graph.NodeID
	for i := 0; i < s.Events; i++ {
		t += src.ExpFloat64() / s.Rate
		leave := src.Bool(s.LeaveProb)
		if nAlive == n {
			leave = true
		}
		if nAlive <= s.MinAlive {
			leave = false
		}
		if !leave && nAlive == n {
			continue // population pinned at full with leaves suppressed
		}
		pool = pool[:0]
		for x := 0; x < n; x++ {
			if alive[x] == leave {
				pool = append(pool, x)
			}
		}
		x := pool[src.Intn(len(pool))]
		if leave {
			alive[x] = false
			nAlive--
			evs = append(evs, TimedEvent{At: t, Kind: UpdateLeave, Node: x})
		} else {
			alive[x] = true
			nAlive++
			evs = append(evs, TimedEvent{At: t, Kind: UpdateJoin, Node: x})
		}
	}
	return evs, nil
}

// CrashSchedule translates a faults.Spec's crash windows into timed
// membership events: a leave at each window start and, for healing
// windows, a join at the restart. Windows naming nodes outside [0,n)
// are ignored, matching the injector's behavior on small overlays.
func CrashSchedule(fs faults.Spec, n int) []TimedEvent {
	var evs []TimedEvent
	for _, c := range fs.Crashes {
		if c.Node < 0 || c.Node >= n {
			continue
		}
		evs = append(evs, TimedEvent{At: c.Start, Kind: UpdateLeave, Node: c.Node})
		if c.End != faults.NoHeal {
			evs = append(evs, TimedEvent{At: c.End, Kind: UpdateJoin, Node: c.Node})
		}
	}
	sortSchedule(evs)
	return evs
}

// DriftSchedule turns a drift workload's epoch sequence into rerank
// events: epochs[i] lands at start+interval·i with the dirty set
// diffed against its predecessor. epochs[0] is assumed to be the
// system the engine was built on.
func DriftSchedule(epochs []*pref.System, start, interval float64) []TimedEvent {
	var evs []TimedEvent
	for i := 1; i < len(epochs); i++ {
		evs = append(evs, TimedEvent{
			At:     start + interval*float64(i),
			Kind:   UpdateRerank,
			System: epochs[i],
			Dirty:  DirtyNodes(epochs[i-1], epochs[i]),
		})
	}
	return evs
}

// DirtyNodes diffs two preference systems over the same graph: the
// nodes whose list order or quota changed.
func DirtyNodes(a, b *pref.System) []graph.NodeID {
	n := b.Graph().NumNodes()
	var dirty []graph.NodeID
	for x := 0; x < n; x++ {
		if a.Quota(x) != b.Quota(x) {
			dirty = append(dirty, x)
			continue
		}
		la, lb := a.List(x), b.List(x)
		if len(la) != len(lb) {
			dirty = append(dirty, x)
			continue
		}
		for i := range la {
			if la[i] != lb[i] {
				dirty = append(dirty, x)
				break
			}
		}
	}
	return dirty
}

// MergeSchedules interleaves schedules by time, stably (ties keep the
// argument order: a's events land before b's).
func MergeSchedules(a, b []TimedEvent) []TimedEvent {
	out := make([]TimedEvent, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sortSchedule(out)
	return out
}

func sortSchedule(evs []TimedEvent) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
}

// RunSchedule submits a time-sorted schedule to the engine and drains
// it. Returns the engine's epoch records.
func RunSchedule(e *Engine, evs []TimedEvent) ([]EpochRecord, error) {
	for i, ev := range evs {
		var err error
		switch ev.Kind {
		case UpdateRerank:
			err = e.SubmitRerank(ev.At, ev.System, ev.Dirty)
		case UpdateJoin:
			err = e.SubmitJoin(ev.At, ev.Node)
		case UpdateLeave:
			err = e.SubmitLeave(ev.At, ev.Node)
		default:
			err = fmt.Errorf("dynamic: unknown event kind %v", ev.Kind)
		}
		if err != nil {
			return e.Records(), fmt.Errorf("dynamic: schedule event %d: %w", i, err)
		}
	}
	e.Drain()
	return e.Records(), nil
}

// RunEngineChurn generates the spec's membership feed and drives it
// through the engine — the engine-level counterpart of RunChurn.
func RunEngineChurn(e *Engine, spec ChurnSpec, seed uint64) ([]EpochRecord, error) {
	evs, err := spec.Schedule(e.o.s.Graph().NumNodes(), seed)
	if err != nil {
		return nil, err
	}
	return RunSchedule(e, evs)
}
