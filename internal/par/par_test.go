package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, w := range []int{1, 2, 7, 64} {
		if got := Workers(w); got != w {
			t.Fatalf("Workers(%d) = %d", w, got)
		}
	}
}

// TestForEachChunkCoverage verifies every index is visited exactly once
// for a grid of (n, workers), including the degenerate shapes (empty
// range, more workers than items, workers=1 inline path).
func TestForEachChunkCoverage(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		for _, workers := range []int{1, 2, 3, 8, 100} {
			visits := make([]int32, n)
			ForEachChunk(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("n=%d workers=%d: bad chunk [%d,%d)", n, workers, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, v)
				}
			}
		}
	}
}

// TestForEachChunkInline pins the workers<=1 contract: the whole range
// arrives as one chunk on the calling goroutine (no goroutine spawn),
// and an empty range never calls fn.
func TestForEachChunkInline(t *testing.T) {
	calls := 0
	ForEachChunk(10, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("inline chunk [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("inline path called fn %d times", calls)
	}
	ForEachChunk(0, 4, func(lo, hi int) { t.Fatal("fn called for empty range") })
}

func TestForEachShard(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 1001} {
		for _, workers := range []int{1, 2, 3, 8} {
			want := NumShards(n, workers)
			seen := make(map[int][2]int)
			var mu sync.Mutex
			ForEachShard(n, workers, func(shard, lo, hi int) {
				mu.Lock()
				seen[shard] = [2]int{lo, hi}
				mu.Unlock()
			})
			if n == 0 {
				if len(seen) != 0 {
					t.Fatalf("n=0: fn called")
				}
				continue
			}
			if len(seen) != want {
				t.Fatalf("n=%d workers=%d: %d shards, NumShards says %d", n, workers, len(seen), want)
			}
			// Shards must tile the range in shard order.
			next := 0
			for s := 0; s < len(seen); s++ {
				r, ok := seen[s]
				if !ok {
					t.Fatalf("n=%d workers=%d: missing shard %d", n, workers, s)
				}
				if r[0] != next {
					t.Fatalf("n=%d workers=%d: shard %d starts at %d, want %d", n, workers, s, r[0], next)
				}
				next = r[1]
			}
			if next != n {
				t.Fatalf("n=%d workers=%d: shards end at %d, want %d", n, workers, next, n)
			}
		}
	}
}

func TestMapOrderAndError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: Map[%d] = %d", workers, i, v)
			}
		}
		// Lowest-index error wins regardless of scheduling.
		_, err = Map(workers, 100, func(i int) (int, error) {
			if i%30 == 7 {
				return 0, fmt.Errorf("boom %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "boom 7" {
			t.Fatalf("workers=%d: err = %v, want boom 7", workers, err)
		}
	}
	if _, err := Map(4, 0, func(i int) (int, error) { return 0, errors.New("x") }); err != nil {
		t.Fatalf("empty Map returned %v", err)
	}
}
