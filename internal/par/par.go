// Package par hosts the shard/join primitives the deterministic
// parallel layer is built from. The contract every user of this
// package upholds (DESIGN.md §8):
//
//   - Work is split into shards whose OUTPUT regions are disjoint
//     slices of preallocated flat arrays, so workers never contend and
//     the result is byte-for-byte independent of scheduling.
//   - Any reduction (errors, counts) is materialized per shard and
//     folded in fixed index order after the join, never as-completed.
//   - workers <= 1 runs the loop inline on the calling goroutine with
//     no goroutine, channel, or WaitGroup involved — the exact legacy
//     serial code path, so `workers=1` is not merely equivalent but
//     identical machine code to the pre-parallel implementation.
//
// The package deliberately offers only block partitioning (contiguous
// ranges) for uniform work and one dynamic work queue (Map) for uneven
// work whose outputs are still index-addressed; both make determinism
// structural rather than something each call site re-argues.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: values <= 0 mean GOMAXPROCS,
// anything else is returned unchanged. Call sites thread the resolved
// count so nested fans do not re-read GOMAXPROCS mid-run.
func Workers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ForEachChunk partitions 0..n-1 into contiguous chunks, one per
// worker goroutine, and runs fn once per chunk. Callers needing
// per-worker scratch allocate it at the top of fn, amortizing it over
// the chunk instead of per item. With workers <= 1 (or too little work
// to matter) fn runs once, inline, over the whole range.
func ForEachChunk(n, workers int, fn func(lo, hi int)) {
	if workers <= 1 || n < 2*workers {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForEachShard is ForEachChunk with the shard index exposed: fn is
// called as fn(shard, lo, hi) where shard counts chunks from 0 in range
// order. Callers that accumulate per-shard partial results (counts,
// errors) index a preallocated slice by shard and fold it in shard
// order after the join — the fixed reduction order of the determinism
// contract. NumShards reports how many calls to expect.
func ForEachShard(n, workers int, fn func(shard, lo, hi int)) {
	if workers <= 1 || n < 2*workers {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	shard := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			fn(shard, lo, hi)
		}(shard, lo, hi)
		shard++
	}
	wg.Wait()
}

// NumShards returns the number of shards ForEachShard/ForEachChunk
// will use for the given range and worker count (always >= 1 for
// n > 0, and exactly 1 when the range runs inline).
func NumShards(n, workers int) int {
	if workers <= 1 || n < 2*workers {
		return 1
	}
	chunk := (n + workers - 1) / workers
	return (n + chunk - 1) / chunk
}

// ForEachIndex runs fn(0..n-1) fanned out over workers goroutines
// (block-partitioned; see ForEachChunk for the inline workers<=1
// path). For item work too uneven for block partitioning, use Map.
func ForEachIndex(n, workers int, fn func(i int)) {
	ForEachChunk(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Map evaluates fn(0..n-1) across workers goroutines with a dynamic
// work queue (for uneven per-item cost) and returns the results in
// index order, so output is bit-identical to the serial run regardless
// of scheduling. The first error in INDEX order wins (not completion
// order); remaining work still drains. workers <= 1 runs serially
// inline.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					results[i], errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
