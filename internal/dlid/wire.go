package dlid

import (
	"encoding/binary"
	"fmt"
	"reflect"

	"overlaymatch/internal/rng"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/transport"
)

// Wire codecs for the maintenance protocol (package transport).
//
// Msg is one opcode byte (the wireKind, BYE..DROP) followed by the two
// big-endian uint32 sequencing fields — Seq then Ver — matching the
// 17-byte nominal WireSize model. The environment commands CmdLeave
// and CmdJoin carry no payload; registering them lets a deployment
// feed membership events (package dynamic's churn schedules translate
// into exactly these) to remote nodes over the same wire the protocol
// uses, instead of the Runner.Schedule side door.
func init() {
	transport.Register(transport.IDDlidMsg, transport.Codec{
		Name:    "dlid.Msg",
		Version: 1,
		Type:    reflect.TypeOf(Msg{}),
		Encode: func(msg simnet.Message, buf []byte) []byte {
			m := msg.(Msg)
			buf = append(buf, byte(m.K))
			buf = binary.BigEndian.AppendUint32(buf, m.Seq)
			return binary.BigEndian.AppendUint32(buf, m.Ver)
		},
		Decode: func(payload []byte) (simnet.Message, error) {
			if len(payload) != 9 {
				return nil, fmt.Errorf("dlid payload is %d bytes, want 9", len(payload))
			}
			k := wireKind(payload[0])
			if k > kDrop {
				return nil, fmt.Errorf("dlid opcode %d out of range", payload[0])
			}
			return Msg{
				K:   k,
				Seq: binary.BigEndian.Uint32(payload[1:5]),
				Ver: binary.BigEndian.Uint32(payload[5:9]),
			}, nil
		},
		Sample: func(src *rng.Source) simnet.Message {
			return Msg{
				K:   wireKind(src.Uint64n(uint64(kDrop) + 1)),
				Seq: uint32(src.Uint64()),
				Ver: uint32(src.Uint64()),
			}
		},
	})
	transport.Register(transport.IDDlidCmdLeave, emptyCodec("dlid.CmdLeave",
		reflect.TypeOf(CmdLeave{}), func() simnet.Message { return CmdLeave{} }))
	transport.Register(transport.IDDlidCmdJoin, emptyCodec("dlid.CmdJoin",
		reflect.TypeOf(CmdJoin{}), func() simnet.Message { return CmdJoin{} }))
}

// emptyCodec builds the codec for a payload-less message type.
func emptyCodec(name string, typ reflect.Type, make_ func() simnet.Message) transport.Codec {
	return transport.Codec{
		Name:    name,
		Version: 1,
		Type:    typ,
		Encode:  func(_ simnet.Message, buf []byte) []byte { return buf },
		Decode: func(payload []byte) (simnet.Message, error) {
			if len(payload) != 0 {
				return nil, fmt.Errorf("%s payload is %d bytes, want 0", name, len(payload))
			}
			return make_(), nil
		},
		Sample: func(*rng.Source) simnet.Message { return make_() },
	}
}
