package dlid

import (
	"fmt"

	"overlaymatch/internal/detector"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/reliable"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// SelfHealConfig assembles the self-healing stack around the
// maintenance nodes: an optional reliable transport below an optional
// heartbeat failure detector (detector.Monitor wrapping
// reliable.Endpoint wrapping Node). Zero-valued layers are simply not
// stacked, so the zero config reproduces a plain RunMode.
type SelfHealConfig struct {
	Mode Mode
	// Detector enables the heartbeat monitor layer when
	// Detector.Enabled(). Suspicions and restores reach the nodes as
	// synthesized BYEs and HELLO resyncs.
	Detector detector.Config
	// Reliable enables the transport layer when Reliable.RTO > 0.
	// With MaxRetries set, exhausted frames escalate LinkDown to the
	// node — the crash-stop detection path that needs no heartbeats.
	Reliable reliable.Config
	// Excluded marks nodes silenced by a permanent (never healing)
	// link cut. They are formally alive — a cut node sends no BYE —
	// but unreachable, so extraction ignores their state and
	// maximality is owed only by the rest of the graph.
	Excluded map[graph.NodeID]bool
}

// SelfHealResult extends Result with the stack's own telemetry.
type SelfHealResult struct {
	Result
	// Monitors are the detector layer instances (nil when disabled);
	// Monitors[i].Events holds the verdict log for latency analysis.
	Monitors []*detector.Monitor
	// Endpoints are the transport layer instances (nil when disabled).
	Endpoints []*reliable.Endpoint
	Suspicions int
	Restores   int
}

// Adjacency returns the per-node neighbor lists of the system's graph
// (the monitor set for the detector layer).
func Adjacency(s *pref.System) [][]int {
	g := s.Graph()
	adj := make([][]int, g.NumNodes())
	for i := range adj {
		adj[i] = g.Neighbors(i)
	}
	return adj
}

// RunSelfHeal seeds the maintenance protocol with the LID/LIC
// matching, stacks the configured detection layers, injects the churn
// schedule, runs to global quiescence under the options' link policy
// (crash windows are injected there), and verifies the structural
// invariants. Faults that the stack failed to repair surface as
// errors, exactly as protocol bugs do in Run.
func RunSelfHeal(s *pref.System, tbl *satisfaction.Table, cfg SelfHealConfig, schedule []Event, opts simnet.Options) (SelfHealResult, error) {
	initial := matching.LIC(s, tbl)
	nodes := NewNodesMode(s, tbl, initial, cfg.Mode)
	handlers := Handlers(nodes)
	var res SelfHealResult
	if cfg.Reliable.RTO > 0 {
		res.Endpoints = reliable.WrapConfig(handlers, cfg.Reliable)
		handlers = reliable.Handlers(res.Endpoints)
	}
	if cfg.Detector.Enabled() {
		res.Monitors = detector.Wrap(handlers, Adjacency(s), cfg.Detector)
		handlers = detector.Handlers(res.Monitors)
	}
	opts.Quiesce = true
	runner := simnet.NewRunner(s.Graph().NumNodes(), opts)
	for _, ev := range schedule {
		if ev.Leave {
			runner.Schedule(ev.At, ev.Node, CmdLeave{})
		} else {
			runner.Schedule(ev.At, ev.Node, CmdJoin{})
		}
	}
	stats, err := runner.Run(handlers)
	res.Stats = stats
	res.Nodes = nodes
	if err != nil {
		return res, err
	}
	for _, nd := range nodes {
		res.Proposals += nd.Proposals
		res.Accepts += nd.Accepts
		res.Declines += nd.Declines
		res.Preemptions += nd.Preemptions
		res.SynthByes += nd.SynthByes
		res.Resyncs += nd.Resyncs
	}
	res.Suspicions = detector.TotalSuspicions(res.Monitors)
	res.Restores = detector.TotalRestores(res.Monitors)
	if opts.Metrics != nil {
		detector.PublishMetrics(opts.Metrics, res.Monitors)
		reliable.PublishMetrics(opts.Metrics, res.Endpoints)
		opts.Metrics.Counter("dlid_preemptions_total", "connections dropped for a better proposer").
			Add(int64(res.Preemptions))
		opts.Metrics.Counter("dlid_synth_byes_total", "suspected peers handled as synthesized BYEs").
			Add(int64(res.SynthByes))
		opts.Metrics.Counter("dlid_resyncs_total", "restored peers re-greeted with HELLO").
			Add(int64(res.Resyncs))
	}
	live, err := extractLiveExcluding(s, nodes, cfg.Excluded)
	if err != nil {
		return res, err
	}
	res.Live = live
	if err := VerifyMaximalExcluding(s, nodes, live, cfg.Excluded); err != nil {
		return res, err
	}
	return res, nil
}

// extractLiveExcluding is extractLive with silenced nodes ignored: an
// excluded node's own view is untrusted (it may still believe in
// connections its partners repaired away), but every reachable node
// must have dropped its edges toward the silenced ones.
func extractLiveExcluding(s *pref.System, nodes []*Node, excluded map[graph.NodeID]bool) (*matching.Matching, error) {
	if len(excluded) == 0 {
		return extractLive(s, nodes)
	}
	m := matching.New(len(nodes))
	for _, nd := range nodes {
		if excluded[nd.id] {
			continue
		}
		if !nd.Alive() {
			if len(nd.Connections()) != 0 {
				return nil, fmt.Errorf("dlid: dead node %d holds connections", nd.id)
			}
			continue
		}
		for _, v := range nd.Connections() {
			if excluded[v] {
				return nil, fmt.Errorf("dlid: node %d still connected to silenced %d", nd.id, v)
			}
			if !nodes[v].Alive() {
				return nil, fmt.Errorf("dlid: node %d connected to dead %d", nd.id, v)
			}
			if nd.id < v {
				m.Add(nd.id, v)
			} else if !nodes[v].neighborView(nd.id).connected {
				return nil, fmt.Errorf("dlid: asymmetric connection %d-%d", nd.id, v)
			}
		}
	}
	for _, nd := range nodes {
		if excluded[nd.id] || !nd.Alive() {
			continue
		}
		conns := nd.Connections()
		if len(conns) != m.DegreeOf(nd.id) {
			return nil, fmt.Errorf("dlid: asymmetric connections at node %d", nd.id)
		}
		if len(conns) > s.Quota(nd.id) {
			return nil, fmt.Errorf("dlid: node %d over quota", nd.id)
		}
	}
	return m, nil
}
