package dlid

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"overlaymatch/internal/detector"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// cutNode drops every message to or from node during [start, end).
type cutNode struct {
	node       graph.NodeID
	start, end float64
}

func (c cutNode) Verdict(now float64, from, to int, msg simnet.Message) simnet.LinkVerdict {
	if (from == c.node || to == c.node) && now >= c.start && now < c.end {
		return simnet.LinkVerdict{Drop: true}
	}
	return simnet.LinkVerdict{}
}

// sendRecorder captures sends for white-box upcall tests.
type sendRecorder struct {
	discardCtx
	sent []Msg
	to   []graph.NodeID
}

func (c *sendRecorder) Send(to int, msg simnet.Message) {
	c.sent = append(c.sent, msg.(Msg))
	c.to = append(c.to, to)
}

// TestPeerDownUpcalls drives the suspect/linkdown/restore upcalls
// directly: a suspected connected peer is mourned like a BYE, and a
// restore re-greets with HELLO.
func TestPeerDownUpcalls(t *testing.T) {
	s := randomSystem(t, 3, 10, 0.8, 2)
	tbl := satisfaction.NewTable(s)
	lic := matching.LIC(s, tbl)
	nodes := NewNodes(s, tbl, lic)
	var u graph.NodeID = -1
	for i := range nodes {
		if lic.DegreeOf(i) > 0 {
			u = i
			break
		}
	}
	if u < 0 {
		t.Skip("nothing matched")
	}
	peer := lic.Connections(u)[0]
	ctx := &sendRecorder{}
	nodes[u].HandleSuspect(ctx, peer)
	if nodes[u].SynthByes != 1 {
		t.Fatalf("SynthByes = %d, want 1", nodes[u].SynthByes)
	}
	if nv := nodes[u].neighborView(peer); nv.connected || nv.alive {
		t.Fatal("suspected peer still held")
	}
	// A second verdict for the same outage (e.g. LinkDown after the
	// detector already spoke) is a no-op.
	nodes[u].HandleLinkDown(ctx, peer)
	if nodes[u].SynthByes != 1 {
		t.Fatalf("double-mourned: SynthByes = %d", nodes[u].SynthByes)
	}
	ctx.sent, ctx.to = nil, nil
	nodes[u].HandleRestore(ctx, peer)
	if nodes[u].Resyncs != 1 {
		t.Fatalf("Resyncs = %d, want 1", nodes[u].Resyncs)
	}
	if len(ctx.sent) == 0 || ctx.sent[0].K != kHello || ctx.to[0] != peer {
		t.Fatalf("restore did not HELLO the peer: %v -> %v", ctx.sent, ctx.to)
	}
	// Restoring a peer that was never mourned is a no-op.
	other := -1
	for _, nb := range s.Graph().Neighbors(u) {
		if nb != peer {
			other = nb
			break
		}
	}
	if other >= 0 {
		nodes[u].HandleRestore(ctx, other)
		if nodes[u].Resyncs != 1 {
			t.Fatal("restore of an unmourned peer resynced")
		}
	}
}

// TestRematchIdleStaysSilent pins that the preemptive discipline adds
// no traffic when the LIC seed is already stable (it is the greedy
// stable state, so nothing may move).
func TestRematchIdleStaysSilent(t *testing.T) {
	s := randomSystem(t, 5, 20, 0.4, 2)
	tbl := satisfaction.NewTable(s)
	res, err := RunMode(s, tbl, Rematch, nil, simnet.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalSent() != 0 {
		t.Fatalf("idle Rematch overlay sent %d messages", res.Stats.TotalSent())
	}
	if !res.Live.Equal(matching.LIC(s, tbl)) {
		t.Fatal("idle Rematch overlay changed the matching")
	}
}

// greedyLiveLIC is the unique stable b-matching of the live subgraph
// under the ORIGINAL symmetric weights: edges among alive nodes added
// in descending weight order while both quotas last. (LiveLICWeight is
// NOT this — it re-ranks preferences inside the subgraph, which
// shifts the satisfaction weights; the distributed nodes keep their
// original weight lists, so their stable point is this one.)
func greedyLiveLIC(s *pref.System, nodes []*Node) *matching.Matching {
	type wedge struct {
		e graph.Edge
		w float64
	}
	var edges []wedge
	for _, e := range s.Graph().Edges() {
		if nodes[e.U].Alive() && nodes[e.V].Alive() {
			edges = append(edges, wedge{e, satisfaction.EdgeWeight(s, e)})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].e.U != edges[j].e.U {
			return edges[i].e.U < edges[j].e.U
		}
		return edges[i].e.V < edges[j].e.V
	})
	m := matching.New(len(nodes))
	for _, we := range edges {
		if m.DegreeOf(we.e.U) < s.Quota(we.e.U) && m.DegreeOf(we.e.V) < s.Quota(we.e.V) {
			m.Add(we.e.U, we.e.V)
		}
	}
	return m
}

// TestRematchEqualsLICUnderChurn is the stability property the
// self-healing story rests on: the preemptive discipline does not just
// reach a maximal matching after churn — it reaches *the* greedy LIC
// matching of the live subgraph (the unique stable b-matching under
// symmetric distinct weights).
func TestRematchEqualsLICUnderChurn(t *testing.T) {
	check := func(seed uint64, nRaw, bRaw uint8) bool {
		n := int(nRaw)%20 + 6
		b := int(bRaw)%3 + 1
		s := randomSystem(t, seed, n, 0.4, b)
		tbl := satisfaction.NewTable(s)
		schedule := Schedule(s, rng.New(seed^0xbeef), 10, 60, 0.5, n/3)
		res, err := RunMode(s, tbl, Rematch, schedule, simnet.Options{
			Seed:    seed,
			Latency: simnet.ExponentialLatency(0.5),
		})
		if err != nil {
			t.Log(err)
			return false
		}
		if !res.Live.Equal(greedyLiveLIC(s, res.Nodes)) {
			t.Logf("seed %d n=%d b=%d: live matching is not the stable greedy LIC", seed, n, b)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSelfHealCrashRecovery is the headline scenario: a node is cut
// off mid-run (crash), the detector suspects it on both sides of the
// cut, repair re-knits the survivors, and when the window heals the
// HELLO resync reintegrates the node — ending in exactly the LIC
// matching of the full topology.
func TestSelfHealCrashRecovery(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		s := randomSystem(t, seed, 24, 0.3, 2)
		tbl := satisfaction.NewTable(s)
		lic := matching.LIC(s, tbl)
		crash := 0
		for i := 1; i < s.Graph().NumNodes(); i++ {
			if lic.DegreeOf(i) > lic.DegreeOf(crash) {
				crash = i
			}
		}
		if lic.DegreeOf(crash) == 0 {
			continue
		}
		res, err := RunSelfHeal(s, tbl, SelfHealConfig{
			Mode:     Rematch,
			Detector: detector.Default(),
		}, nil, simnet.Options{
			Seed:    seed,
			Latency: simnet.ExponentialLatency(0.5),
			Policy:  cutNode{node: crash, start: 40, end: 200},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Suspicions == 0 || res.SynthByes == 0 {
			t.Fatalf("seed %d: crash went undetected (%d suspicions, %d synth byes)",
				seed, res.Suspicions, res.SynthByes)
		}
		if res.Restores == 0 || res.Resyncs == 0 {
			t.Fatalf("seed %d: heal went unnoticed (%d restores, %d resyncs)",
				seed, res.Restores, res.Resyncs)
		}
		if !res.Live.Equal(lic) {
			t.Fatalf("seed %d: post-heal matching differs from LIC", seed)
		}
	}
}

// TestCrashStopDetectorRepairs covers the never-healing cut: the
// silenced node stays formally alive, so correctness is maximality of
// everyone else — every survivor must have repaired away its edges to
// the dead node, and no restore may ever fire.
func TestCrashStopDetectorRepairs(t *testing.T) {
	s := randomSystem(t, 11, 24, 0.3, 2)
	tbl := satisfaction.NewTable(s)
	lic := matching.LIC(s, tbl)
	crash := 0
	for i := 1; i < s.Graph().NumNodes(); i++ {
		if lic.DegreeOf(i) > lic.DegreeOf(crash) {
			crash = i
		}
	}
	res, err := RunSelfHeal(s, tbl, SelfHealConfig{
		Mode:     Rematch,
		Detector: detector.Default(),
		Excluded: map[graph.NodeID]bool{crash: true},
	}, nil, simnet.Options{
		Seed:    11,
		Latency: simnet.ExponentialLatency(0.5),
		Policy:  cutNode{node: crash, start: 30, end: math.Inf(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Suspicions < lic.DegreeOf(crash) {
		t.Fatalf("only %d suspicions for a node matched %d times", res.Suspicions, lic.DegreeOf(crash))
	}
	if res.Restores != 0 || res.Resyncs != 0 {
		t.Fatalf("restores on a permanent cut: %d/%d", res.Restores, res.Resyncs)
	}
	if res.Live.DegreeOf(crash) != 0 {
		t.Fatal("silenced node still matched in the live extraction")
	}
}

// TestSelfHealZeroFaultControl is the determinism guarantee behind
// E16's control row: with the detector on but no faults, no suspicion
// fires and the protocol layer is never woken — the matching is
// byte-identical to a detector-free run and only HB/HB-ACK traffic
// exists on the wire.
func TestSelfHealZeroFaultControl(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		s := randomSystem(t, seed, 20, 0.4, 2)
		tbl := satisfaction.NewTable(s)
		res, err := RunSelfHeal(s, tbl, SelfHealConfig{
			Mode:     Rematch,
			Detector: detector.Default(),
		}, nil, simnet.Options{Seed: seed, Latency: simnet.ExponentialLatency(0.5)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Suspicions != 0 || res.Restores != 0 {
			t.Fatalf("seed %d: false verdicts on a clean run (%d/%d)", seed, res.Suspicions, res.Restores)
		}
		if !res.Live.Equal(matching.LIC(s, tbl)) {
			t.Fatalf("seed %d: monitored idle overlay changed the matching", seed)
		}
		for kind, cnt := range res.Stats.SentByKind {
			if kind != "HB" && kind != "HB-ACK" && cnt > 0 {
				t.Fatalf("seed %d: protocol traffic %q on a fault-free run", seed, kind)
			}
		}
	}
}
