// Package dlid answers the paper's central future-work question (§7):
// "Can the same greedy strategy employed by our algorithm tackle
// [joins/leaves of peers]? We believe so." It implements a fully
// distributed maintenance protocol that keeps an overlay matching
// alive under churn, using the same ingredients as LID — private
// preferences turned into symmetric weights, proposals in weight
// order, only neighbor-to-neighbor messages.
//
// Operation. The overlay starts from the LID/LIC matching. Afterwards
// each peer runs the maintenance state machine and reacts to events:
//
//   - LEAVE: the departing peer sends BYE to every alive graph
//     neighbor and goes silent. Receivers drop the connection if one
//     existed, mark the peer dead, and — having gained capacity —
//     open a new repair epoch: clear their declined-memory and propose
//     (PROP) to their best alive, unconnected, undeclined neighbors,
//     one proposal per free slot.
//   - JOIN: the (re)joining peer resets its state and sends HELLO to
//     every graph neighbor. Alive receivers mark it alive again,
//     answer HELLO-ACK (so the joiner learns its live neighborhood)
//     and, if they have free capacity, may propose to it; the joiner
//     proposes from its own side as ACKs arrive.
//   - PROP is answered immediately and explicitly: ACCEPT if a slot is
//     free or reserved for a crossing proposal to the same peer (the
//     connection forms on both sides; stale answers are idempotent),
//     DECLINE otherwise. A DECLINE advances the proposer to its next
//     candidate; a declined peer is remembered as a *waiter*, and a
//     slot freed by a failed reservation is offered back to waiters —
//     without this, two mutually-declined peers can both end up free,
//     a maximality hole the churn property test caught. When
//     candidates run out the peer idles until some event grants it a
//     new epoch.
//
// Properties (enforced by tests): the system quiesces after every
// finite event schedule; at quiescence the live matching is feasible,
// symmetric, and maximal on the live subgraph (no unmatched live edge
// with free quota at both ends); and all of it degrades gracefully —
// repair quality relative to a fresh LIC recomputation is measured by
// experiment E14. Unlike LID proper, maintenance repair is greedy
// *completion*: it does not preempt existing connections, trading
// optimality for minimal disruption (the centralized analogue is
// dynamic.CompleteOnly, its quality yardstick).
//
// The protocol runs on the deterministic event Runner with Quiesce
// mode and injected Schedule commands.
package dlid

import (
	"fmt"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// Command messages injected by the environment (via Runner.Schedule).
type (
	// CmdLeave makes the receiving peer leave the overlay.
	CmdLeave struct{}
	// CmdJoin makes the receiving (dead) peer rejoin.
	CmdJoin struct{}
)

// Wire messages.
type wireKind uint8

const (
	kBye wireKind = iota
	kHello
	kHelloAck
	kProp
	kAccept
	kDecline
)

// Msg is the maintenance wire message.
type Msg struct {
	K wireKind
}

// Kind implements simnet.Kinder.
func (m Msg) Kind() string {
	switch m.K {
	case kBye:
		return "BYE"
	case kHello:
		return "HELLO"
	case kHelloAck:
		return "HELLO-ACK"
	case kProp:
		return "PROP"
	case kAccept:
		return "ACCEPT"
	case kDecline:
		return "DECLINE"
	}
	return fmt.Sprintf("dlid(%d)", m.K)
}

// peer-local view of one neighbor.
type neighborState struct {
	alive     bool
	connected bool
	pending   bool // our PROP outstanding
	declined  bool // declined us in the current epoch
	waiting   bool // we declined them; retry when a reservation frees
}

// Node is the per-peer maintenance state machine.
type Node struct {
	id    graph.NodeID
	quota int
	order []graph.NodeID // weight list (descending)
	state map[graph.NodeID]*neighborState
	alive bool

	// Counters for the experiments.
	Proposals int
	Accepts   int
	Declines  int
}

// NewNode builds the maintenance node for id, starting from the given
// initial connections (typically the LID outcome).
func NewNode(s *pref.System, tbl *satisfaction.Table, id graph.NodeID, initial []graph.NodeID) *Node {
	order := tbl.SortedNeighbors(s, id)
	st := make(map[graph.NodeID]*neighborState, len(order))
	for _, nb := range order {
		st[nb] = &neighborState{alive: true}
	}
	n := &Node{
		id:    id,
		quota: s.Quota(id),
		order: order,
		state: st,
		alive: true,
	}
	for _, c := range initial {
		ns, ok := st[c]
		if !ok {
			panic(fmt.Sprintf("dlid: initial connection %d is not a neighbor of %d", c, id))
		}
		ns.connected = true
	}
	return n
}

// NewNodes builds all maintenance nodes seeded with matching m.
func NewNodes(s *pref.System, tbl *satisfaction.Table, m *matching.Matching) []*Node {
	nodes := make([]*Node, s.Graph().NumNodes())
	for id := range nodes {
		nodes[id] = NewNode(s, tbl, id, m.Connections(id))
	}
	return nodes
}

// Handlers adapts nodes for the runtime.
func Handlers(nodes []*Node) []simnet.Handler {
	hs := make([]simnet.Handler, len(nodes))
	for i, n := range nodes {
		hs[i] = n
	}
	return hs
}

// Init implements simnet.Handler. The initial matching is assumed
// stable (it is the LID outcome); nothing to do.
func (n *Node) Init(ctx simnet.Context) { ctx.Halt() }

// connectionsHeld counts current connections.
func (n *Node) connectionsHeld() int {
	c := 0
	for _, ns := range n.state {
		if ns.connected {
			c++
		}
	}
	return c
}

// pendingOut counts outstanding proposals.
func (n *Node) pendingOut() int {
	c := 0
	for _, ns := range n.state {
		if ns.pending {
			c++
		}
	}
	return c
}

// freeSlots returns unreserved quota capacity.
func (n *Node) freeSlots() int {
	return n.quota - n.connectionsHeld() - n.pendingOut()
}

// HandleMessage implements simnet.Handler.
func (n *Node) HandleMessage(ctx simnet.Context, from int, msg simnet.Message) {
	switch msg.(type) {
	case CmdLeave:
		n.leave(ctx)
		return
	case CmdJoin:
		n.join(ctx)
		return
	}
	if !n.alive {
		return // the dead ignore everything
	}
	m, ok := msg.(Msg)
	if !ok {
		panic(fmt.Sprintf("dlid: node %d received %T", n.id, msg))
	}
	ns, known := n.state[from]
	if !known {
		panic(fmt.Sprintf("dlid: node %d received message from non-neighbor %d", n.id, from))
	}
	switch m.K {
	case kBye:
		n.onBye(ctx, from, ns)
	case kHello:
		n.onHello(ctx, from, ns)
	case kHelloAck:
		n.onHelloAck(ctx, from, ns)
	case kProp:
		n.onProp(ctx, from, ns)
	case kAccept:
		n.onAccept(ctx, from, ns)
	case kDecline:
		n.onDecline(ctx, from, ns)
	}
}

// leave processes a CmdLeave.
func (n *Node) leave(ctx simnet.Context) {
	if !n.alive {
		panic(fmt.Sprintf("dlid: CmdLeave to dead node %d", n.id))
	}
	n.alive = false
	for _, nb := range n.order { // weight-list order: deterministic
		ns := n.state[nb]
		if ns.alive {
			ctx.Send(nb, Msg{K: kBye})
		}
		// Reset the local view; it is rebuilt on rejoin.
		ns.connected = false
		ns.pending = false
		ns.declined = false
		ns.waiting = false
	}
}

// join processes a CmdJoin.
func (n *Node) join(ctx simnet.Context) {
	if n.alive {
		panic(fmt.Sprintf("dlid: CmdJoin to alive node %d", n.id))
	}
	n.alive = true
	for _, nb := range n.order { // weight-list order: deterministic
		ns := n.state[nb]
		// Optimistically greet everyone; dead neighbors ignore it. The
		// alive view is rebuilt from HELLO-ACKs.
		ns.alive = false
		ns.connected = false
		ns.pending = false
		ns.declined = false
		ns.waiting = false
		ctx.Send(nb, Msg{K: kHello})
	}
}

// onBye: the neighbor left.
func (n *Node) onBye(ctx simnet.Context, from graph.NodeID, ns *neighborState) {
	freed := ns.connected
	hadPending := ns.pending
	ns.alive = false
	ns.connected = false
	ns.pending = false
	ns.declined = false
	ns.waiting = false
	if freed {
		// Capacity gained: new repair epoch.
		n.newEpoch(ctx)
		return
	}
	if hadPending {
		// Our reservation evaporated; the freed slot must also serve
		// peers we declined while it was reserved.
		n.proposeMore(ctx)
	}
}

// onHello: the neighbor (re)joined.
func (n *Node) onHello(ctx simnet.Context, from graph.NodeID, ns *neighborState) {
	ns.alive = true
	ns.connected = false
	ns.pending = false
	ns.declined = false
	ns.waiting = false
	ctx.Send(from, Msg{K: kHelloAck})
	// A fresh candidate appeared; try to use spare capacity on it.
	n.proposeMore(ctx)
}

// onHelloAck: our HELLO was answered; the sender is alive.
func (n *Node) onHelloAck(ctx simnet.Context, from graph.NodeID, ns *neighborState) {
	ns.alive = true
	n.proposeMore(ctx)
}

// onProp: answer immediately and explicitly. There is deliberately no
// silent crossing-lock (unlike static LID): under churn a peer's
// pending flag can be stale — its proposal may already have been
// declined by a message still in flight — so the only safe rule is
// that every connection is confirmed by an explicit ACCEPT in at
// least one direction, and ACCEPTs for already-connected pairs are
// idempotent.
func (n *Node) onProp(ctx simnet.Context, from graph.NodeID, ns *neighborState) {
	ns.alive = true
	if ns.connected {
		// Duplicate/stale proposal for an existing connection; confirm.
		ctx.Send(from, Msg{K: kAccept})
		return
	}
	if ns.pending {
		// Crossing proposals: accept, consuming the slot we reserved
		// for our own proposal to the same peer. Whatever answer our
		// own proposal gets (their symmetric accept, or a stale
		// decline) is idempotent against the connected state.
		ns.pending = false
		ns.connected = true
		n.Accepts++
		ctx.Send(from, Msg{K: kAccept})
		return
	}
	if n.quota-n.connectionsHeld()-n.pendingOut() > 0 {
		ns.connected = true
		n.Accepts++
		ctx.Send(from, Msg{K: kAccept})
		return
	}
	n.Declines++
	// Remember the asker: if a reservation of ours later falls
	// through, the freed slot must be offered back (otherwise two
	// mutually-declined peers can both end up free — a maximality
	// hole).
	ns.waiting = true
	ctx.Send(from, Msg{K: kDecline})
}

// onAccept: our proposal succeeded.
func (n *Node) onAccept(ctx simnet.Context, from graph.NodeID, ns *neighborState) {
	if ns.connected {
		return // already established by a crossing accept
	}
	if !ns.pending {
		// Stale ACCEPT (e.g. confirmation of an old state); ignore.
		return
	}
	ns.pending = false
	ns.connected = true
}

// onDecline: advance to the next candidate.
func (n *Node) onDecline(ctx simnet.Context, from graph.NodeID, ns *neighborState) {
	if !ns.pending {
		return // stale
	}
	ns.pending = false
	ns.declined = true
	n.proposeMore(ctx)
}

// newEpoch clears declined memory and proposes afresh.
func (n *Node) newEpoch(ctx simnet.Context) {
	for _, nb := range n.order {
		n.state[nb].declined = false
	}
	n.proposeMore(ctx)
}

// proposeMore sends one PROP per free slot to the best eligible
// candidates (alive, not connected, no proposal outstanding, not
// declined this epoch), in weight order.
func (n *Node) proposeMore(ctx simnet.Context) {
	free := n.freeSlots()
	if free <= 0 {
		return
	}
	for _, nb := range n.order {
		if free == 0 {
			return
		}
		ns := n.state[nb]
		if !ns.alive || ns.connected || ns.pending {
			continue
		}
		// A declined candidate is retried only if it asked us since (we
		// owe the freed capacity to waiters); otherwise skip until an
		// epoch clears the flag.
		if ns.declined && !ns.waiting {
			continue
		}
		ns.pending = true
		ns.waiting = false
		n.Proposals++
		ctx.Send(nb, Msg{K: kProp})
		free--
	}
}

// Alive reports whether the node is currently in the overlay.
func (n *Node) Alive() bool { return n.alive }

// Connections returns the node's current connections.
func (n *Node) Connections() []graph.NodeID {
	var out []graph.NodeID
	for _, nb := range n.order {
		if n.state[nb].connected {
			out = append(out, nb)
		}
	}
	return out
}
