// Package dlid answers the paper's central future-work question (§7):
// "Can the same greedy strategy employed by our algorithm tackle
// [joins/leaves of peers]? We believe so." It implements a fully
// distributed maintenance protocol that keeps an overlay matching
// alive under churn, using the same ingredients as LID — private
// preferences turned into symmetric weights, proposals in weight
// order, only neighbor-to-neighbor messages.
//
// Operation. The overlay starts from the LID/LIC matching. Afterwards
// each peer runs the maintenance state machine and reacts to events:
//
//   - LEAVE: the departing peer sends BYE to every alive graph
//     neighbor and goes silent. Receivers drop the connection if one
//     existed, mark the peer dead, and — having gained capacity —
//     open a new repair epoch: clear their declined-memory and propose
//     (PROP) to their best alive, unconnected, undeclined neighbors,
//     one proposal per free slot.
//   - JOIN: the (re)joining peer resets its state and sends HELLO to
//     every graph neighbor. Alive receivers mark it alive again,
//     answer HELLO-ACK (so the joiner learns its live neighborhood)
//     and, if they have free capacity, may propose to it; the joiner
//     proposes from its own side as ACKs arrive.
//   - PROP is answered immediately and explicitly: ACCEPT if a slot is
//     free or reserved for a crossing proposal to the same peer (the
//     connection forms on both sides; stale answers are idempotent),
//     DECLINE otherwise. A DECLINE advances the proposer to its next
//     candidate; a declined peer is remembered as a *waiter*, and a
//     slot freed by a failed reservation is offered back to waiters —
//     without this, two mutually-declined peers can both end up free,
//     a maximality hole the churn property test caught. When
//     candidates run out the peer idles until some event grants it a
//     new epoch.
//
// Properties (enforced by tests): the system quiesces after every
// finite event schedule; at quiescence the live matching is feasible,
// symmetric, and maximal on the live subgraph (no unmatched live edge
// with free quota at both ends); and all of it degrades gracefully —
// repair quality relative to a fresh LIC recomputation is measured by
// experiment E14. Unlike LID proper, maintenance repair is greedy
// *completion*: it does not preempt existing connections, trading
// optimality for minimal disruption (the centralized analogue is
// dynamic.CompleteOnly, its quality yardstick).
//
// The protocol runs on the deterministic event Runner with Quiesce
// mode and injected Schedule commands.
package dlid

import (
	"fmt"
	"sort"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// Command messages injected by the environment (via Runner.Schedule).
type (
	// CmdLeave makes the receiving peer leave the overlay.
	CmdLeave struct{}
	// CmdJoin makes the receiving (dead) peer rejoin.
	CmdJoin struct{}
)

// Wire messages.
type wireKind uint8

const (
	kBye wireKind = iota
	kHello
	kHelloAck
	kProp
	kAccept
	kDecline
	kDrop
)

// Msg is the maintenance wire message. Seq is a per-(sender, receiver)
// monotone counter: Rematch mode discards overtaken messages, turning
// each pair link into a lossy-FIFO channel. Ver is the pair
// *incarnation* version (Rematch only): each PROP draws a fresh
// version from a shared per-pair counter, ACCEPT/DECLINE echo the
// version of the proposal they answer, and DROP names the incarnation
// it revokes. Preemption needs both — a revocation racing the
// messages that formed (or re-form) a connection must be orderable
// against them, or the two views diverge. Complete mode never revokes,
// tolerates reordering by idempotence, and leaves both fields zero
// (keeping its behavior byte-identical).
type Msg struct {
	K   wireKind
	Seq uint32
	Ver uint32
}

// Kind implements simnet.Kinder.
func (m Msg) Kind() string {
	switch m.K {
	case kBye:
		return "BYE"
	case kHello:
		return "HELLO"
	case kHelloAck:
		return "HELLO-ACK"
	case kProp:
		return "PROP"
	case kAccept:
		return "ACCEPT"
	case kDecline:
		return "DECLINE"
	case kDrop:
		return "DROP"
	}
	return fmt.Sprintf("dlid(%d)", m.K)
}

// WireSize implements simnet.Sizer: an 8-byte header plus the opcode
// byte plus the two uint32 sequencing fields.
func (Msg) WireSize() int { return 17 }

// peer-local view of one neighbor.
type neighborState struct {
	alive     bool
	connected bool
	pending   bool // our PROP outstanding
	declined  bool // declined us in the current epoch
	waiting   bool // we declined them; retry when a reservation frees

	// Pair incarnation versions (Rematch only; all zero in Complete
	// mode). ver is the shared per-pair counter: the highest version
	// seen from the peer or spent on an own proposal. It is never
	// reset — like outSeq — so versions stay comparable across
	// leave/rejoin and suspect/restore cycles. pendVer is the version
	// of the outstanding PROP (valid while pending); connVer the
	// version under which the current connection formed (valid while
	// connected).
	ver     uint32
	pendVer uint32
	connVer uint32
}

// Mode selects the repair discipline.
type Mode uint8

const (
	// Complete is the non-preemptive discipline described in the
	// package comment: existing connections are never dropped for a
	// better candidate, repair only fills free capacity.
	Complete Mode = iota
	// Rematch adds preemption: a full node accepts a better-ranked
	// proposer by DROPping its worst connection, and keeps proposals
	// outstanding to every candidate it prefers over its current
	// partners. Quiescent states are stable b-matchings, which under
	// the symmetric distinct LID weights coincide with the greedy LIC
	// on the live subgraph — the convergence target self-healing needs
	// to reach after a crash window closes. Each preemption replaces
	// edges by a strictly heavier one (on both sides), so the sorted
	// weight multiset of the matching grows lexicographically and the
	// dynamics terminate.
	Rematch
)

// Node is the per-peer maintenance state machine. All per-neighbor
// state is held in slices indexed by weight-list position — a
// neighbor's position doubles as its preference rank — and senders are
// located through the shared CSR index (sorted adjacency + flat
// position table), so a node allocates no maps at all.
type Node struct {
	id    graph.NodeID
	quota int
	mode  Mode
	order []graph.NodeID // weight list (descending); index = rank
	// neighbors is the sorted adjacency, pos the CSR-aligned weight-list
	// position of each adjacency slot (both shared, read-only).
	neighbors []graph.NodeID
	pos       []int32
	state     []neighborState // indexed by weight-list position
	alive     bool

	// scanFrom is the propose-scan cursor: every weight-list position
	// before it is in the scan's skip set, so proposeMore/proposeRematch
	// resume there instead of re-walking the heavy prefix on every
	// repair event. The invariant is maintained by wake(): every state
	// transition that can lift a position out of its skip set rewinds
	// the cursor to that position (and epoch-level resets rewind to 0),
	// so the cursored scan is behavior-identical to the full scan — same
	// proposals, same messages, same order. The skip sets differ by
	// mode: Complete may pass connected/pending/declined positions (its
	// slot budget is computed globally), Rematch only dead and declined
	// ones (held and pending positions consume its rank budget, so the
	// scan must still visit them).
	scanFrom int32

	// Per-pair wire sequencing (see Msg.Seq), indexed by weight-list
	// position. Never reset, not even across leave/rejoin, so
	// receivers' high-water marks stay valid.
	outSeq  []uint32
	lastSeq []uint32

	// Counters for the experiments.
	Proposals   int
	Accepts     int
	Declines    int
	Preemptions int // connections dropped for a better proposer (Rematch)
	SynthByes   int // suspected/dead peers handled as synthesized BYEs
	Resyncs     int // restored peers re-greeted with HELLO
	Epochs      int // repair epochs opened (capacity-gain events)

	// repairSpan is the open telemetry span of the current repair epoch
	// (0 when none, or when no recorder is attached).
	repairSpan obs.SpanID
}

// NewNode builds the maintenance node for id, starting from the given
// initial connections (typically the LID outcome).
func NewNode(s *pref.System, tbl *satisfaction.Table, id graph.NodeID, initial []graph.NodeID) *Node {
	return NewNodeMode(s, tbl, id, initial, Complete)
}

// NewNodeMode is NewNode with an explicit repair discipline.
func NewNodeMode(s *pref.System, tbl *satisfaction.Table, id graph.NodeID, initial []graph.NodeID, mode Mode) *Node {
	order := tbl.SortedNeighbors(s, id)
	n := &Node{
		id:        id,
		quota:     s.Quota(id),
		mode:      mode,
		order:     order,
		neighbors: s.Graph().Neighbors(id),
		pos:       tbl.WeightListPos(s, id),
		state:     make([]neighborState, len(order)),
		alive:     true,
		outSeq:    make([]uint32, len(order)),
		lastSeq:   make([]uint32, len(order)),
	}
	for i := range n.state {
		n.state[i].alive = true
	}
	for _, c := range initial {
		p, ok := n.posOf(c)
		if !ok {
			panic(fmt.Sprintf("dlid: initial connection %d is not a neighbor of %d", c, id))
		}
		n.state[p].connected = true
	}
	return n
}

// wake rewinds the propose-scan cursor to position p: some transition
// just made p potentially proposable again (or moved it between skip
// classes — rewinding is always safe, never rewinding is not).
func (n *Node) wake(p int32) {
	if p < n.scanFrom {
		n.scanFrom = p
	}
}

// posOf locates v's weight-list position through the shared CSR index
// (binary search in the sorted adjacency, then the flat position
// table). Reports false if v is not a neighbor.
func (n *Node) posOf(v graph.NodeID) (int32, bool) {
	i := sort.SearchInts(n.neighbors, v)
	if i >= len(n.neighbors) || n.neighbors[i] != v {
		return 0, false
	}
	return n.pos[i], true
}

// neighborView returns the state record for neighbor v; it panics if v
// is not a neighbor. Package-internal observers (the self-heal harness
// and tests) use it where they used to index the state map.
func (n *Node) neighborView(v graph.NodeID) *neighborState {
	p, ok := n.posOf(v)
	if !ok {
		panic(fmt.Sprintf("dlid: node %d is not a neighbor of %d", v, n.id))
	}
	return &n.state[p]
}

// NewNodes builds all maintenance nodes seeded with matching m.
func NewNodes(s *pref.System, tbl *satisfaction.Table, m *matching.Matching) []*Node {
	return NewNodesMode(s, tbl, m, Complete)
}

// NewNodesMode builds all maintenance nodes with an explicit mode.
func NewNodesMode(s *pref.System, tbl *satisfaction.Table, m *matching.Matching, mode Mode) []*Node {
	nodes := make([]*Node, s.Graph().NumNodes())
	for id := range nodes {
		nodes[id] = NewNodeMode(s, tbl, id, m.Connections(id), mode)
	}
	return nodes
}

// Handlers adapts nodes for the runtime.
func Handlers(nodes []*Node) []simnet.Handler {
	hs := make([]simnet.Handler, len(nodes))
	for i, n := range nodes {
		hs[i] = n
	}
	return hs
}

// Init implements simnet.Handler. The initial matching is assumed
// stable (it is the LID outcome); nothing to do.
func (n *Node) Init(ctx simnet.Context) { ctx.Halt() }

// connectionsHeld counts current connections.
func (n *Node) connectionsHeld() int {
	c := 0
	for i := range n.state {
		if n.state[i].connected {
			c++
		}
	}
	return c
}

// pendingOut counts outstanding proposals.
func (n *Node) pendingOut() int {
	c := 0
	for i := range n.state {
		if n.state[i].pending {
			c++
		}
	}
	return c
}

// freeSlots returns unreserved quota capacity.
func (n *Node) freeSlots() int {
	return n.quota - n.connectionsHeld() - n.pendingOut()
}

// sendMsg stamps the per-pair sequence number and sends an unversioned
// message (node-level kinds, and everything in Complete mode). The
// recipient is addressed by weight-list position.
func (n *Node) sendMsg(ctx simnet.Context, toPos int32, k wireKind) {
	n.sendMsgVer(ctx, toPos, k, 0)
}

// sendMsgVer is sendMsg with an explicit pair incarnation version.
func (n *Node) sendMsgVer(ctx simnet.Context, toPos int32, k wireKind, ver uint32) {
	n.outSeq[toPos]++
	ctx.Send(n.order[toPos], Msg{K: k, Seq: n.outSeq[toPos], Ver: ver})
}

// HandleMessage implements simnet.Handler.
func (n *Node) HandleMessage(ctx simnet.Context, from int, msg simnet.Message) {
	switch msg.(type) {
	case CmdLeave:
		n.leave(ctx)
		return
	case CmdJoin:
		n.join(ctx)
		return
	}
	if !n.alive {
		return // the dead ignore everything
	}
	m, ok := msg.(Msg)
	if !ok {
		panic(fmt.Sprintf("dlid: node %d received %T", n.id, msg))
	}
	p, known := n.posOf(from)
	if !known {
		panic(fmt.Sprintf("dlid: node %d received message from non-neighbor %d", n.id, from))
	}
	ns := &n.state[p]
	if n.mode == Rematch && m.Seq != 0 {
		// Enforce lossy-FIFO per pair: a message overtaken by a newer
		// one from the same sender is superseded state — discard it.
		if m.Seq <= n.lastSeq[p] {
			return
		}
		n.lastSeq[p] = m.Seq
		// Merge the pair version counter so fresh proposals always draw
		// versions above everything either side has used.
		if m.Ver > ns.ver {
			ns.ver = m.Ver
		}
	}
	switch m.K {
	case kBye:
		n.onBye(ctx, p)
	case kHello:
		n.onHello(ctx, p)
	case kHelloAck:
		n.onHelloAck(ctx, p)
	case kProp:
		n.onProp(ctx, p, m.Ver)
	case kAccept:
		n.onAccept(ctx, p, m.Ver)
	case kDecline:
		n.onDecline(ctx, p, m.Ver)
	case kDrop:
		n.onDrop(ctx, p, m.Ver)
	}
	n.noteRepair(ctx)
}

// HandleSuspect implements simnet.SuspectHandler: a failure detector
// stacked above the node suspects peer. The verdict is handled as a
// synthesized BYE — same state transition a voluntary leave causes,
// including the repair epoch when a connection was freed.
func (n *Node) HandleSuspect(ctx simnet.Context, peer int) {
	n.peerDown(ctx, peer)
}

// HandleLinkDown implements simnet.LinkDownHandler: the transport
// exhausted its retry budget toward peer. Same synthesized-BYE path as
// a detector suspicion.
func (n *Node) HandleLinkDown(ctx simnet.Context, peer int) {
	n.peerDown(ctx, peer)
}

func (n *Node) peerDown(ctx simnet.Context, peer graph.NodeID) {
	if !n.alive {
		return
	}
	p, ok := n.posOf(peer)
	if !ok || !n.state[p].alive {
		return // not a neighbor, or already mourned
	}
	n.SynthByes++
	n.onBye(ctx, p)
	n.noteRepair(ctx)
}

// HandleRestore implements simnet.SuspectHandler: a previously
// suspected peer is audibly alive again. The pair state may have
// diverged arbitrarily during the outage (the peer may still believe
// an old connection exists, or may have been falsely suspected and
// never noticed anything), so recovery is a full re-greeting: reset
// the local view and send HELLO, exactly as if the peer had rejoined.
// The peer's onHello resets its own view symmetrically and answers
// HELLO-ACK, after which both sides propose afresh.
func (n *Node) HandleRestore(ctx simnet.Context, peer int) {
	if !n.alive {
		return
	}
	p, ok := n.posOf(peer)
	if !ok || n.state[p].alive {
		return // not a neighbor, or never mourned (no resync needed)
	}
	ns := &n.state[p]
	n.Resyncs++
	ns.connected = false
	ns.pending = false
	ns.declined = false
	ns.waiting = false
	n.wake(p)
	n.sendMsg(ctx, p, kHello)
}

// leave processes a CmdLeave.
func (n *Node) leave(ctx simnet.Context) {
	if !n.alive {
		panic(fmt.Sprintf("dlid: CmdLeave to dead node %d", n.id))
	}
	n.alive = false
	if n.repairSpan != 0 {
		if rec := simnet.ObserverOf(ctx); rec != nil {
			rec.CloseSpan(n.id, n.repairSpan, "left", ctx.Time())
		}
		n.repairSpan = 0
	}
	for i := range n.order { // weight-list order: deterministic
		ns := &n.state[i]
		if ns.alive {
			n.sendMsg(ctx, int32(i), kBye)
		}
		// Reset the local view; it is rebuilt on rejoin.
		ns.connected = false
		ns.pending = false
		ns.declined = false
		ns.waiting = false
	}
	n.scanFrom = 0
}

// join processes a CmdJoin.
func (n *Node) join(ctx simnet.Context) {
	if n.alive {
		panic(fmt.Sprintf("dlid: CmdJoin to alive node %d", n.id))
	}
	n.alive = true
	for i := range n.order { // weight-list order: deterministic
		ns := &n.state[i]
		// Optimistically greet everyone; dead neighbors ignore it. The
		// alive view is rebuilt from HELLO-ACKs.
		ns.alive = false
		ns.connected = false
		ns.pending = false
		ns.declined = false
		ns.waiting = false
		n.sendMsg(ctx, int32(i), kHello)
	}
	n.scanFrom = 0
}

// onBye: the neighbor left.
func (n *Node) onBye(ctx simnet.Context, p int32) {
	ns := &n.state[p]
	freed := ns.connected
	hadPending := ns.pending
	ns.alive = false
	ns.connected = false
	ns.pending = false
	ns.declined = false
	ns.waiting = false
	n.wake(p)
	if freed {
		// Capacity gained: new repair epoch.
		n.newEpoch(ctx)
		return
	}
	if hadPending {
		// Our reservation evaporated; the freed slot must also serve
		// peers we declined while it was reserved.
		n.proposeMore(ctx)
	}
}

// onHello: the neighbor (re)joined, or re-greets after a suspected
// outage (HandleRestore). The reset may free a connection we still
// believed in — one-sided suspicion leaves exactly that asymmetry —
// in which case the regained capacity opens a full repair epoch.
func (n *Node) onHello(ctx simnet.Context, p int32) {
	ns := &n.state[p]
	freed := ns.connected
	ns.alive = true
	ns.connected = false
	ns.pending = false
	ns.declined = false
	ns.waiting = false
	n.wake(p)
	n.sendMsg(ctx, p, kHelloAck)
	if freed {
		n.newEpoch(ctx)
		return
	}
	// A fresh candidate appeared; try to use spare capacity on it.
	n.proposeMore(ctx)
}

// onHelloAck: our HELLO was answered; the sender is alive.
func (n *Node) onHelloAck(ctx simnet.Context, p int32) {
	n.state[p].alive = true
	n.wake(p)
	n.proposeMore(ctx)
}

// onProp: answer immediately and explicitly. There is deliberately no
// silent crossing-lock (unlike static LID): under churn a peer's
// pending flag can be stale — its proposal may already have been
// declined by a message still in flight — so the only safe rule is
// that every connection is confirmed by an explicit ACCEPT in at
// least one direction, and ACCEPTs for already-connected pairs are
// idempotent.
func (n *Node) onProp(ctx simnet.Context, fromPos int32, p uint32) {
	ns := &n.state[fromPos]
	ns.alive = true
	n.wake(fromPos) // the sender is audibly alive and interacting
	if ns.connected {
		if n.mode == Rematch && p < ns.connVer {
			// The proposal predates our current connection incarnation
			// (it was resolved at the sender by the crossing that formed
			// it); answering would revive a dead conversation.
			return
		}
		// Duplicate/stale proposal for an existing connection — or, with
		// p > connVer, a fresh proposal from a peer that no longer
		// believes in the incarnation we hold (its DROP is in flight and
		// will arrive overtaken). Confirm under the newest version.
		if p > ns.connVer {
			ns.connVer = p
		}
		n.sendMsgVer(ctx, fromPos, kAccept, p)
		return
	}
	if ns.pending {
		// Crossing proposals: accept, consuming the slot we reserved
		// for our own proposal to the same peer. Both sides compute the
		// same incarnation, max(ours, theirs), regardless of delivery
		// order. Whatever answer our own proposal gets (their symmetric
		// accept, or a stale decline) is idempotent against the
		// connected state.
		ns.pending = false
		ns.connected = true
		ns.connVer = ns.pendVer
		if p > ns.connVer {
			ns.connVer = p
		}
		n.Accepts++
		n.sendMsgVer(ctx, fromPos, kAccept, p)
		if n.mode == Rematch {
			n.enforceQuota(ctx)
			n.proposeMore(ctx)
		}
		return
	}
	if n.mode == Rematch {
		// Preemptive discipline: a held slot is never safe from a
		// better proposer. Reservations (pendingOut) are ignored here —
		// a crossing accept can transiently push past quota, which
		// enforceQuota repairs by dropping the worst connection.
		if n.connectionsHeld() < n.quota {
			ns.connected = true
			ns.connVer = p
			n.Accepts++
			n.sendMsgVer(ctx, fromPos, kAccept, p)
			return
		}
		if worstPos, ok := n.worstConnected(); ok && fromPos < worstPos {
			n.dropConnection(ctx, worstPos)
			ns.connected = true
			ns.connVer = p
			n.Accepts++
			n.sendMsgVer(ctx, fromPos, kAccept, p)
			return
		}
		n.Declines++
		ns.waiting = true
		n.sendMsgVer(ctx, fromPos, kDecline, p)
		return
	}
	if n.quota-n.connectionsHeld()-n.pendingOut() > 0 {
		ns.connected = true
		n.Accepts++
		n.sendMsgVer(ctx, fromPos, kAccept, p)
		return
	}
	n.Declines++
	// Remember the asker: if a reservation of ours later falls
	// through, the freed slot must be offered back (otherwise two
	// mutually-declined peers can both end up free — a maximality
	// hole).
	ns.waiting = true
	n.sendMsgVer(ctx, fromPos, kDecline, p)
}

// onAccept: our proposal succeeded.
func (n *Node) onAccept(ctx simnet.Context, p int32, v uint32) {
	ns := &n.state[p]
	if ns.connected {
		if v > ns.connVer {
			ns.connVer = v // late confirmation of a newer incarnation
		}
		return // already established by a crossing accept
	}
	if ns.pending {
		if v < ns.pendVer {
			// Answers a proposal that was already resolved locally; the
			// live proposal's own answer (or our in-flight PROP, which
			// the peer will confirm under the newer version) is still
			// coming — nothing to do yet.
			return
		}
		ns.pending = false
		ns.connected = true
		ns.connVer = v
		n.wake(p)
		if n.mode == Rematch {
			// Crossing accepts can overfill the quota; shed the worst.
			n.enforceQuota(ctx)
			// The resolved reservation (and any shed connection) changes
			// the rank-budget walk: candidates it was hiding — a blocking
			// edge in waiting — must be proposed to now.
			n.proposeMore(ctx)
		}
		return
	}
	if n.mode == Rematch {
		// An ACCEPT for an incarnation we have no context for: our
		// pending state was resolved by a concurrent DROP or reset, so
		// the sender now believes in a connection we do not. Ignoring it
		// (the Complete-mode rule) would freeze that asymmetry — revoke
		// exactly that incarnation instead. If the peer has since moved
		// to a newer one, the version makes our revocation a no-op.
		n.sendMsgVer(ctx, p, kDrop, v)
	}
	// Stale ACCEPT (e.g. confirmation of an old state); ignore.
}

// onDrop: the neighbor preempted our connection for a better
// proposer (Rematch mode). Losing the slot frees capacity, so a new
// epoch opens — but the dropper just proved it is full with peers it
// prefers over us, so it is marked declined for this epoch to avoid a
// pointless immediate re-proposal.
func (n *Node) onDrop(ctx simnet.Context, p int32, v uint32) {
	ns := &n.state[p]
	if ns.pending {
		if v < ns.pendVer {
			// Revokes an incarnation older than our live proposal (a
			// crossing DROP of the connection we already tore down
			// ourselves). The peer had not seen our PROP when it sent
			// this, so the proposal's real answer is still in flight.
			return
		}
		// The peer accepted our proposal (forming incarnation >= pendVer)
		// and revoked it before the ACCEPT arrived; the ACCEPT was
		// overtaken and discarded. Net effect of the accept-then-revoke
		// pair is a decline.
		ns.pending = false
		ns.declined = true
		n.wake(p)
		n.proposeMore(ctx)
		return
	}
	if !ns.connected {
		return // stale (e.g. we already processed its BYE)
	}
	if v < ns.connVer {
		return // revokes an incarnation we have since replaced
	}
	ns.connected = false
	for i := range n.state {
		n.state[i].declined = false
	}
	ns.declined = true
	n.scanFrom = 0 // declined memory cleared everywhere: full rescan
	n.proposeMore(ctx)
}

// onDecline: advance to the next candidate.
func (n *Node) onDecline(ctx simnet.Context, p int32, v uint32) {
	ns := &n.state[p]
	if !ns.pending || v != ns.pendVer {
		return // stale, or answers an older proposal than the live one
	}
	ns.pending = false
	ns.declined = true
	n.wake(p)
	n.proposeMore(ctx)
}

// newEpoch clears declined memory and proposes afresh.
func (n *Node) newEpoch(ctx simnet.Context) {
	n.Epochs++
	if rec := simnet.ObserverOf(ctx); rec != nil {
		// A new capacity gain supersedes the running repair epoch: close
		// its span and open the next. Spans still open at run end mark
		// repairs unsettled at quiescence (there should be none).
		if n.repairSpan != 0 {
			rec.CloseSpan(n.id, n.repairSpan, "superseded", ctx.Time())
		}
		n.repairSpan = rec.OpenSpan(n.id, "dlid.repair",
			fmt.Sprintf("epoch=%d", n.Epochs), ctx.Time())
	}
	for i := range n.state {
		n.state[i].declined = false
	}
	n.scanFrom = 0
	n.proposeMore(ctx)
}

// noteRepair closes the open repair-epoch span once the node has no
// outstanding proposals (the epoch locally settled). The state scan
// only runs while a span is open, so runs without a recorder never pay
// for it.
func (n *Node) noteRepair(ctx simnet.Context) {
	if n.repairSpan == 0 {
		return
	}
	for i := range n.state {
		if n.state[i].pending {
			return
		}
	}
	if rec := simnet.ObserverOf(ctx); rec != nil {
		rec.CloseSpan(n.id, n.repairSpan, "settled", ctx.Time())
	}
	n.repairSpan = 0
}

// proposeMore sends one PROP per free slot to the best eligible
// candidates (alive, not connected, no proposal outstanding, not
// declined this epoch), in weight order. In Rematch mode the budget
// is rank-based instead: the node keeps a proposal outstanding to
// every candidate it prefers over the partners filling its quota, so
// a blocking edge (both ends prefer each other over someone they
// hold) is always attacked from at least one side.
func (n *Node) proposeMore(ctx simnet.Context) {
	if n.mode == Rematch {
		n.proposeRematch(ctx)
		return
	}
	free := n.freeSlots()
	if free <= 0 {
		return
	}
	// Resume at the cursor: the prefix holds only dead, connected,
	// pending, or declined-and-not-waiting positions (all skip classes
	// here — the slot budget was computed globally above), and every
	// exit from those classes rewinds via wake. Every position this
	// scan visits lands in a skip class too (proposing makes it
	// pending), so the cursor simply tracks the scan.
	for i := int(n.scanFrom); i < len(n.order); i++ {
		if free == 0 {
			return
		}
		ns := &n.state[i]
		n.scanFrom = int32(i + 1)
		// A declined candidate is retried only if it asked us since (we
		// owe the freed capacity to waiters); otherwise skip until an
		// epoch clears the flag.
		if !ns.alive || ns.connected || ns.pending || (ns.declined && !ns.waiting) {
			continue
		}
		ns.pending = true
		ns.waiting = false
		n.Proposals++
		n.sendMsg(ctx, int32(i), kProp)
		free--
	}
}

// proposeRematch walks the weight list spending a budget of quota
// slots: held connections and outstanding proposals consume budget in
// rank order, and every better-ranked alive candidate not yet tried
// this epoch gets a proposal. Unlike the Complete rule this proposes
// even when the quota is full — acceptance there preempts the worst.
func (n *Node) proposeRematch(ctx simnet.Context) {
	budget := n.quota
	// Resume at the cursor. Unlike the Complete scan, held and pending
	// positions consume the rank budget, so the cursor may only pass
	// budget-neutral skips (dead, or declined without a waiter claim) —
	// the first budget-consuming position pins it.
	contig := true
	for i := int(n.scanFrom); i < len(n.order); i++ {
		if budget <= 0 {
			return
		}
		ns := &n.state[i]
		if ns.connected || ns.pending {
			contig = false
			budget--
			continue
		}
		if !ns.alive || (ns.declined && !ns.waiting) {
			if contig {
				n.scanFrom = int32(i + 1)
			}
			continue
		}
		contig = false
		ns.pending = true
		ns.waiting = false
		ns.ver++
		ns.pendVer = ns.ver
		n.Proposals++
		n.sendMsgVer(ctx, int32(i), kProp, ns.pendVer)
		budget--
	}
}

// worstConnected returns the weight-list position of the
// lowest-ranked current connection.
func (n *Node) worstConnected() (int32, bool) {
	for i := len(n.state) - 1; i >= 0; i-- {
		if n.state[i].connected {
			return int32(i), true
		}
	}
	return 0, false
}

// dropConnection preempts the connection to nb, notifying it. The DROP
// names the revoked incarnation so a crossing re-formation under a
// newer version is immune to it.
func (n *Node) dropConnection(ctx simnet.Context, p int32) {
	ns := &n.state[p]
	ns.connected = false
	n.wake(p)
	n.Preemptions++
	n.sendMsgVer(ctx, p, kDrop, ns.connVer)
}

// enforceQuota sheds worst connections until the quota holds again
// (crossing accepts in Rematch mode can transiently overfill it).
func (n *Node) enforceQuota(ctx simnet.Context) {
	for n.connectionsHeld() > n.quota {
		worst, ok := n.worstConnected()
		if !ok {
			return
		}
		n.dropConnection(ctx, worst)
	}
}

// Alive reports whether the node is currently in the overlay.
func (n *Node) Alive() bool { return n.alive }

// Connections returns the node's current connections.
func (n *Node) Connections() []graph.NodeID {
	var out []graph.NodeID
	for i, nb := range n.order {
		if n.state[i].connected {
			out = append(out, nb)
		}
	}
	return out
}
