package dlid

import (
	"testing"

	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// TestChurnSweep drives the full protocol across many deterministic
// workloads and schedules; Run verifies quiescence, symmetry,
// feasibility and live-subgraph maximality on each. This sweep caught
// two real protocol bugs during development (a stale crossing-lock and
// the mutual-decline maximality hole), so it stays.
func TestChurnSweep(t *testing.T) {
	seeds := uint64(3000)
	if testing.Short() {
		seeds = 300
	}
	for seed := uint64(0); seed < seeds; seed++ {
		n := int(seed%25) + 6
		b := int(seed%3) + 1
		s := randomSystem(t, seed*2654435761+17, n, 0.4, b)
		tbl := satisfaction.NewTable(s)
		schedule := Schedule(s, rng.New(seed^0xd11d), 15, 50, 0.5, n/3)
		_, err := Run(s, tbl, schedule, simnet.Options{
			Seed:    seed,
			Latency: simnet.ExponentialLatency(0.5),
		})
		if err != nil {
			t.Fatalf("seed=%d n=%d b=%d: %v", seed, n, b, err)
		}
	}
}
