package dlid

import (
	"testing"
	"testing/quick"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

func randomSystem(tb testing.TB, seed uint64, n int, p float64, b int) *pref.System {
	tb.Helper()
	src := rng.New(seed)
	g := gen.GNP(src, n, p)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(b))
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestNoEventsNoMessages(t *testing.T) {
	// Seeded with the LIC matching and no churn, the maintenance layer
	// must stay completely silent (the matching is already maximal).
	s := randomSystem(t, 1, 20, 0.4, 2)
	tbl := satisfaction.NewTable(s)
	res, err := Run(s, tbl, nil, simnet.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalSent() != 0 {
		t.Fatalf("idle overlay sent %d messages", res.Stats.TotalSent())
	}
	if !res.Live.Equal(matching.LIC(s, tbl)) {
		t.Fatal("idle overlay changed the matching")
	}
}

func TestSingleLeaveRepairs(t *testing.T) {
	s := randomSystem(t, 2, 20, 0.5, 2)
	tbl := satisfaction.NewTable(s)
	lic := matching.LIC(s, tbl)
	// Leave the highest-degree matched node for maximal disruption.
	leaver := 0
	for i := 1; i < 20; i++ {
		if lic.DegreeOf(i) > lic.DegreeOf(leaver) {
			leaver = i
		}
	}
	res, err := Run(s, tbl, []Event{{At: 10, Node: leaver, Leave: true}},
		simnet.Options{Seed: 3, Latency: simnet.ExponentialLatency(0.3)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[leaver].Alive() {
		t.Fatal("leaver still alive")
	}
	if res.Live.DegreeOf(leaver) != 0 {
		t.Fatal("dead node still matched")
	}
	// Some repair activity must have happened (the leaver was matched).
	if res.Proposals == 0 {
		t.Fatal("no repair proposals after a disruptive leave")
	}
}

// TestChurnInvariants is the core property test: any consistent
// schedule must quiesce with a symmetric, feasible, maximal live
// matching (Run verifies all of it and errors otherwise).
func TestChurnInvariants(t *testing.T) {
	check := func(seed uint64, nRaw, bRaw uint8) bool {
		n := int(nRaw)%25 + 6
		b := int(bRaw)%3 + 1
		s := randomSystem(t, seed, n, 0.4, b)
		tbl := satisfaction.NewTable(s)
		schedule := Schedule(s, rng.New(seed^0xd11d), 15, 50, 0.5, n/3)
		_, err := Run(s, tbl, schedule, simnet.Options{
			Seed:    seed,
			Latency: simnet.ExponentialLatency(0.5),
		})
		return err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveThenRejoin(t *testing.T) {
	// A node that leaves and rejoins should get reconnected (it has
	// free quota and so do the peers its departure freed).
	s := randomSystem(t, 7, 15, 0.6, 2)
	tbl := satisfaction.NewTable(s)
	lic := matching.LIC(s, tbl)
	var x graph.NodeID = -1
	for i := 0; i < 15; i++ {
		if lic.DegreeOf(i) > 0 {
			x = i
			break
		}
	}
	if x < 0 {
		t.Skip("nothing matched")
	}
	res, err := Run(s, tbl, []Event{
		{At: 10, Node: x, Leave: true},
		{At: 60, Node: x, Leave: false},
	}, simnet.Options{Seed: 4, Latency: simnet.ExponentialLatency(0.3)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Nodes[x].Alive() {
		t.Fatal("rejoined node not alive")
	}
	// Maximality (already verified by Run) plus: the rejoined node,
	// whose neighborhood had free capacity from its own departure,
	// should usually reconnect. Check it is not isolated while a
	// neighbor has spare quota (that would violate maximality anyway).
	if res.Live.DegreeOf(x) == 0 {
		for _, nb := range s.Graph().Neighbors(x) {
			if res.Nodes[nb].Alive() && res.Live.DegreeOf(nb) < s.Quota(nb) {
				t.Fatal("rejoined node isolated despite free neighbor capacity")
			}
		}
	}
}

func TestRepairQualityTracksFreshLIC(t *testing.T) {
	// Completion-style distributed repair must stay within a sane band
	// of the fresh-LIC weight (it is a maximal matching built greedily,
	// so >= 1/2 is the theoretical floor; empirically it is far above).
	worst := 2.0
	for seed := uint64(0); seed < 25; seed++ {
		s := randomSystem(t, seed, 30, 0.3, 2)
		tbl := satisfaction.NewTable(s)
		schedule := Schedule(s, rng.New(seed+500), 20, 40, 0.5, 10)
		res, err := Run(s, tbl, schedule, simnet.Options{
			Seed:    seed,
			Latency: simnet.ExponentialLatency(0.4),
		})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := LiveLICWeight(s, res.Nodes)
		if err != nil {
			t.Fatal(err)
		}
		if fresh == 0 {
			continue
		}
		ratio := liveWeight(s, res.Live) / fresh
		if ratio < worst {
			worst = ratio
		}
		if ratio < 0.5-1e-9 {
			t.Fatalf("seed %d: repair quality %v below the greedy floor", seed, ratio)
		}
	}
	t.Logf("worst distributed-repair quality vs fresh LIC: %.4f", worst)
}

func liveWeight(s *pref.System, m *matching.Matching) float64 {
	return m.Weight(s)
}

func TestScheduleConsistency(t *testing.T) {
	s := randomSystem(t, 9, 20, 0.4, 2)
	sched := Schedule(s, rng.New(1), 40, 25, 0.6, 8)
	alive := make([]bool, 20)
	for i := range alive {
		alive[i] = true
	}
	count := 20
	lastT := 0.0
	for _, ev := range sched {
		if ev.At <= lastT {
			t.Fatal("events not strictly increasing in time")
		}
		lastT = ev.At
		if ev.Leave {
			if !alive[ev.Node] {
				t.Fatal("leave of dead node scheduled")
			}
			alive[ev.Node] = false
			count--
		} else {
			if alive[ev.Node] {
				t.Fatal("join of alive node scheduled")
			}
			alive[ev.Node] = true
			count++
		}
		if count < 8 {
			t.Fatal("population below minAlive")
		}
	}
}

func TestMessageCostBounded(t *testing.T) {
	// Per event, repair cost should be modest: bounded by a small
	// multiple of (max degree × quota). Check a loose global bound.
	s := randomSystem(t, 11, 40, 0.2, 2)
	tbl := satisfaction.NewTable(s)
	const events = 30
	schedule := Schedule(s, rng.New(3), events, 40, 0.5, 15)
	res, err := Run(s, tbl, schedule, simnet.Options{Seed: 6, Latency: simnet.ExponentialLatency(0.4)})
	if err != nil {
		t.Fatal(err)
	}
	bound := events * s.Graph().MaxDegree() * 6
	if res.Stats.TotalSent() > bound {
		t.Fatalf("churn repair sent %d messages, loose bound %d", res.Stats.TotalSent(), bound)
	}
}

func TestCommandsToWrongStatePanic(t *testing.T) {
	s := randomSystem(t, 1, 6, 1.0, 1)
	tbl := satisfaction.NewTable(s)
	nodes := NewNodes(s, tbl, matching.LIC(s, tbl))
	defer func() {
		if recover() == nil {
			t.Fatal("CmdJoin to alive node should panic")
		}
	}()
	nodes[0].HandleMessage(discardCtx{}, 0, CmdJoin{})
}

type discardCtx struct{}

func (discardCtx) ID() int                  { return 0 }
func (discardCtx) Send(int, simnet.Message) {}
func (discardCtx) Halt()                    {}
func (discardCtx) Time() float64            { return 0 }
