package dlid

import (
	"fmt"
	"sort"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// Event is one scheduled churn command.
type Event struct {
	At    float64
	Node  graph.NodeID
	Leave bool // false = join
}

// Schedule builds a consistent random churn schedule: events spaced
// `gap` time units apart (wide enough for repairs to quiesce between
// events under unit-ish latencies), alternating between leaves of
// random alive nodes and joins of random dead nodes with probability
// leaveProb, never dropping the population below minAlive.
func Schedule(s *pref.System, src *rng.Source, events int, gap, leaveProb float64, minAlive int) []Event {
	n := s.Graph().NumNodes()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	numAlive := n
	var out []Event
	t := gap
	for len(out) < events {
		var aliveIDs, deadIDs []graph.NodeID
		for i, a := range alive {
			if a {
				aliveIDs = append(aliveIDs, i)
			} else {
				deadIDs = append(deadIDs, i)
			}
		}
		leave := src.Bool(leaveProb)
		if len(deadIDs) == 0 {
			leave = true
		}
		if numAlive <= minAlive {
			leave = false
			if len(deadIDs) == 0 {
				break // population pinned
			}
		}
		var ev Event
		if leave {
			ev = Event{At: t, Node: aliveIDs[src.Intn(len(aliveIDs))], Leave: true}
			alive[ev.Node] = false
			numAlive--
		} else {
			ev = Event{At: t, Node: deadIDs[src.Intn(len(deadIDs))], Leave: false}
			alive[ev.Node] = true
			numAlive++
		}
		out = append(out, ev)
		t += gap
	}
	return out
}

// Result reports a maintenance run.
type Result struct {
	Nodes []*Node
	Stats simnet.Stats
	// Live is the final matching among alive peers.
	Live *matching.Matching
	// Aggregated protocol counters.
	Proposals   int
	Accepts     int
	Declines    int
	Preemptions int
	SynthByes   int
	Resyncs     int
}

// Run seeds the maintenance protocol with the LID/LIC matching,
// injects the event schedule, runs to global quiescence, and verifies
// the structural invariants (symmetry, feasibility, liveness of
// endpoints, maximality on the live subgraph). Any violation is an
// error — the tests treat it as a protocol bug.
func Run(s *pref.System, tbl *satisfaction.Table, schedule []Event, opts simnet.Options) (Result, error) {
	return RunMode(s, tbl, Complete, schedule, opts)
}

// RunMode is Run with an explicit repair discipline.
func RunMode(s *pref.System, tbl *satisfaction.Table, mode Mode, schedule []Event, opts simnet.Options) (Result, error) {
	initial := matching.LIC(s, tbl)
	nodes := NewNodesMode(s, tbl, initial, mode)
	opts.Quiesce = true
	runner := simnet.NewRunner(s.Graph().NumNodes(), opts)
	for _, ev := range schedule {
		if ev.Leave {
			runner.Schedule(ev.At, ev.Node, CmdLeave{})
		} else {
			runner.Schedule(ev.At, ev.Node, CmdJoin{})
		}
	}
	stats, err := runner.Run(Handlers(nodes))
	if err != nil {
		return Result{Stats: stats}, err
	}
	res := Result{Nodes: nodes, Stats: stats}
	for _, nd := range nodes {
		res.Proposals += nd.Proposals
		res.Accepts += nd.Accepts
		res.Declines += nd.Declines
		res.Preemptions += nd.Preemptions
		res.SynthByes += nd.SynthByes
		res.Resyncs += nd.Resyncs
	}
	// The simnet message instruments already merged into opts.Metrics
	// when the runner finished; add the protocol-level counters on top.
	// The per-node ints stay the exact per-run view.
	if opts.Metrics != nil {
		opts.Metrics.Counter("dlid_runs_total", "completed maintenance runs").Inc()
		opts.Metrics.Counter("dlid_churn_events_total", "join/leave commands injected").
			Add(int64(len(schedule)))
		opts.Metrics.Counter("dlid_proposals_total", "repair proposals sent").
			Add(int64(res.Proposals))
		opts.Metrics.Counter("dlid_accepts_total", "repair proposals accepted").
			Add(int64(res.Accepts))
		opts.Metrics.Counter("dlid_declines_total", "repair proposals declined").
			Add(int64(res.Declines))
		opts.Metrics.Counter("dlid_preemptions_total", "connections dropped for a better proposer").
			Add(int64(res.Preemptions))
		opts.Metrics.Counter("dlid_synth_byes_total", "suspected peers handled as synthesized BYEs").
			Add(int64(res.SynthByes))
		opts.Metrics.Counter("dlid_resyncs_total", "restored peers re-greeted with HELLO").
			Add(int64(res.Resyncs))
	}
	live, err := extractLive(s, nodes)
	if err != nil {
		return res, err
	}
	res.Live = live
	if err := verifyMaximal(s, nodes, live); err != nil {
		return res, err
	}
	return res, nil
}

// extractLive builds the live matching and verifies symmetry,
// feasibility and endpoint liveness.
func extractLive(s *pref.System, nodes []*Node) (*matching.Matching, error) {
	m := matching.New(len(nodes))
	for _, nd := range nodes {
		if !nd.Alive() {
			if len(nd.Connections()) != 0 {
				return nil, fmt.Errorf("dlid: dead node %d holds connections", nd.id)
			}
			continue
		}
		for _, v := range nd.Connections() {
			if !nodes[v].Alive() {
				return nil, fmt.Errorf("dlid: node %d connected to dead %d", nd.id, v)
			}
			if nd.id < v {
				m.Add(nd.id, v)
			}
		}
	}
	for _, nd := range nodes {
		if !nd.Alive() {
			continue
		}
		conns := nd.Connections()
		if len(conns) != m.DegreeOf(nd.id) {
			return nil, fmt.Errorf("dlid: asymmetric connections at node %d", nd.id)
		}
		if len(conns) > s.Quota(nd.id) {
			return nil, fmt.Errorf("dlid: node %d over quota", nd.id)
		}
		sort.Ints(conns)
		got := m.Connections(nd.id)
		for i := range conns {
			if conns[i] != got[i] {
				return nil, fmt.Errorf("dlid: asymmetric connection %d-%d", nd.id, conns[i])
			}
		}
	}
	return m, nil
}

// verifyMaximal checks that no unmatched live edge has free quota at
// both endpoints.
func verifyMaximal(s *pref.System, nodes []*Node, live *matching.Matching) error {
	return VerifyMaximalExcluding(s, nodes, live, nil)
}

// VerifyMaximalExcluding checks maximality of the live matching while
// ignoring edges incident to the excluded nodes. Crash-stop runs need
// this weaker check: a node silenced by a permanent link cut is still
// formally alive (it never sent BYE), yet no edge across the cut can
// be repaired, so only the rest of the graph owes maximality.
func VerifyMaximalExcluding(s *pref.System, nodes []*Node, live *matching.Matching, excluded map[graph.NodeID]bool) error {
	for _, e := range s.Graph().Edges() {
		if excluded[e.U] || excluded[e.V] {
			continue
		}
		if !nodes[e.U].Alive() || !nodes[e.V].Alive() || live.Has(e.U, e.V) {
			continue
		}
		if live.DegreeOf(e.U) < s.Quota(e.U) && live.DegreeOf(e.V) < s.Quota(e.V) {
			return fmt.Errorf("dlid: live matching not maximal at edge %v", e)
		}
	}
	return nil
}

// LiveLICWeight computes the weight of a fresh LIC on the live
// subgraph — the repair-quality yardstick.
func LiveLICWeight(s *pref.System, nodes []*Node) (float64, error) {
	g := s.Graph()
	var keep []graph.NodeID
	for id, nd := range nodes {
		if nd.Alive() {
			keep = append(keep, id)
		}
	}
	sub, back, err := g.Subgraph(keep)
	if err != nil {
		return 0, err
	}
	fwd := make(map[graph.NodeID]int, len(back))
	for newID, oldID := range back {
		fwd[oldID] = newID
	}
	lists := make([][]graph.NodeID, sub.NumNodes())
	quotas := make([]int, sub.NumNodes())
	for newID, oldID := range back {
		for _, j := range s.List(oldID) {
			if nj, ok := fwd[j]; ok {
				lists[newID] = append(lists[newID], nj)
			}
		}
		quotas[newID] = s.Quota(oldID)
	}
	s2, err := pref.FromRanks(sub, lists, quotas)
	if err != nil {
		return 0, err
	}
	m := matching.LIC(s2, satisfaction.NewTable(s2))
	// Weight must be computed against the ORIGINAL system so it is
	// comparable to the live matching's weight.
	var w float64
	for _, e := range m.Edges() {
		w += satisfaction.EdgeWeight(s, graph.Edge{U: back[e.U], V: back[e.V]}.Normalize())
	}
	return w, nil
}
