package dlid

import (
	"testing"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// TestRepairSpansBalanced runs a churn schedule with a telemetry
// recorder attached: every repair epoch opens exactly one dlid.repair
// span (matching the per-node Epochs counters) and each span is closed
// by quiescence — settled, superseded by the next epoch, or abandoned
// by a leave. Recording must not change the repair outcome.
func TestRepairSpansBalanced(t *testing.T) {
	src := rng.New(9)
	g := gen.GNP(src, 30, 0.25)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(2))
	if err != nil {
		t.Fatal(err)
	}
	tbl := satisfaction.NewTable(s)
	sched := Schedule(s, src.Split(), 12, 50, 0.6, 5)

	plain, err := Run(s, tbl, sched, simnet.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(g.NumNodes())
	res, err := Run(s, tbl, sched, simnet.Options{Seed: 9, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Live.Equal(res.Live) {
		t.Fatal("recording changed the repair outcome")
	}
	opens, closes, epochs := 0, 0, 0
	for _, e := range rec.Events() {
		switch {
		case e.Type == obs.EvOpen && e.Kind == "dlid.repair":
			opens++
		case e.Type == obs.EvClose:
			closes++
		}
	}
	for _, nd := range res.Nodes {
		epochs += nd.Epochs
	}
	if opens == 0 {
		t.Fatal("churn ran but no repair epochs recorded")
	}
	if opens != epochs {
		t.Fatalf("span opens = %d, Epochs counters say %d", opens, epochs)
	}
	if opens != closes {
		t.Fatalf("repair spans open/close = %d/%d, want balanced", opens, closes)
	}
}
