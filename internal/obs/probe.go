package obs

import (
	"fmt"
	"sort"

	"overlaymatch/internal/metrics"
)

// StabilitySample is one per-round stability measurement, produced by
// a protocol-specific sampler (lid.StabilitySampler) and recorded by a
// Prober. The fields mirror the stability scores of the p2p
// matching-theory literature: blocking pairs (Floréen et al.'s
// almost-stability measure), unmatched node mass, and the matched
// weight the run has locked so far.
type StabilitySample struct {
	// BlockingPairs counts edges {u,v} outside the current matching
	// where both endpoints would accept the other (free quota or a
	// strict preference over their worst connection).
	BlockingPairs int
	// UnmatchedNodes counts nodes with zero locked connections.
	UnmatchedNodes int
	// MatchedWeight is the total eq.-9 weight of locked connections.
	MatchedWeight float64
	// Msgs and Bytes are the cumulative network send totals at probe
	// time, attributing traffic to the convergence phase it bought.
	Msgs  int64
	Bytes int64
}

// Epsilons is the default ε ladder of the rounds-to-ε summary: the
// first probe time at which blocking pairs ≤ ε·|E|, down to exact
// stability at ε = 0.
var Epsilons = []float64{0.1, 0.01, 0.001, 0}

// NeverConverged is the sentinel value of a rounds-to-ε rung the run
// never reached within its probe budget. It is a real published gauge
// value — a non-convergent run writes stability_rounds_to_eps_* = -1
// rather than leaving the gauge absent (see DESIGN.md §9) — and the
// value SummaryValue reports for a rung missing from a summary map, so
// consumers cannot conflate "never" with "converged at round 0".
const NeverConverged = -1.0

// SummaryValue reads one ε rung from a RoundsToEps summary map,
// returning NeverConverged when the rung is absent. Table-rendering
// consumers must use this (not a bare map index, whose zero value
// reads as instant convergence).
func SummaryValue(m map[string]float64, eps float64) float64 {
	if v, ok := m[EpsKey(eps)]; ok {
		return v
	}
	return NeverConverged
}

// Prober samples a stability sampler on a fixed virtual-time interval
// and appends the results to metrics.Series instruments in a registry.
// Plug Probe into simnet.Options.Probe / simnet.Options.ProbeInterval.
// A nil *Prober is valid and inert, mirroring the Recorder contract.
type Prober struct {
	interval  float64
	edges     int
	optWeight float64
	sample    func(t float64) StabilitySample

	bp        *metrics.Series
	unmatched *metrics.Series
	frac      *metrics.Series
	msgs      *metrics.Series
	bytes     *metrics.Series
}

// NewProber builds a prober that records into reg every interval time
// units. edges is |E| of the workload (the denominator of the ε
// thresholds); optWeight is the LIC-optimal matched weight used for
// the matched-weight fraction series (0 disables the fraction and
// records the raw weight instead).
func NewProber(reg *metrics.Registry, interval float64, edges int, optWeight float64, sample func(t float64) StabilitySample) *Prober {
	if interval <= 0 {
		panic("obs: NewProber needs a positive interval")
	}
	if sample == nil {
		panic("obs: NewProber needs a sampler")
	}
	return &Prober{
		interval:  interval,
		edges:     edges,
		optWeight: optWeight,
		sample:    sample,
		bp:        reg.Series("probe_blocking_pairs", "blocking pairs at each probe"),
		unmatched: reg.Series("probe_unmatched_nodes", "nodes with zero locked connections at each probe"),
		frac:      reg.Series("probe_matched_weight_frac", "locked weight / LIC-optimal weight at each probe"),
		msgs:      reg.Series("probe_msgs_sent", "cumulative messages sent at each probe"),
		bytes:     reg.Series("probe_bytes_sent", "cumulative payload bytes sent at each probe"),
	}
}

// Interval returns the probe interval (0 on nil — simnet treats that
// as probing disabled).
func (p *Prober) Interval() float64 {
	if p == nil {
		return 0
	}
	return p.interval
}

// Probe takes one sample at virtual time t.
func (p *Prober) Probe(t float64) {
	if p == nil {
		return
	}
	s := p.sample(t)
	p.bp.Append(t, float64(s.BlockingPairs))
	p.unmatched.Append(t, float64(s.UnmatchedNodes))
	if p.optWeight > 0 {
		p.frac.Append(t, s.MatchedWeight/p.optWeight)
	} else {
		p.frac.Append(t, s.MatchedWeight)
	}
	p.msgs.Append(t, float64(s.Msgs))
	p.bytes.Append(t, float64(s.Bytes))
}

// Curve returns the recorded blocking-pair series (nil on nil).
func (p *Prober) Curve() []metrics.SeriesPoint {
	if p == nil {
		return nil
	}
	return p.bp.Points()
}

// RoundsToEps computes the rounds-to-ε summary from the recorded
// blocking-pair curve: for each ε the first probe time with blocking
// pairs ≤ ε·edges, or -1 if the run never got there. Keys are
// rendered as fixed-precision strings so the summary marshals
// deterministically.
func (p *Prober) RoundsToEps(eps []float64) map[string]float64 {
	if p == nil {
		return nil
	}
	if eps == nil {
		eps = Epsilons
	}
	points := p.bp.Points()
	out := make(map[string]float64, len(eps))
	for _, e := range eps {
		threshold := e * float64(p.edges)
		t := NeverConverged
		for _, pt := range points {
			if pt.V <= threshold {
				t = pt.T
				break
			}
		}
		out[EpsKey(e)] = t
	}
	return out
}

// EpsKey renders one ε level as the summary map key / gauge suffix.
func EpsKey(eps float64) string {
	return fmt.Sprintf("%.3f", eps)
}

// SummaryPrefix is the gauge-name prefix PublishSummary writes under;
// the experiments manifest collects every gauge with this prefix into
// its rounds-to-ε block.
const SummaryPrefix = "stability_rounds_to_eps_"

// PublishSummary writes the rounds-to-ε summary into reg as gauges
// named SummaryPrefix + EpsKey(ε), e.g. stability_rounds_to_eps_0.010.
func (p *Prober) PublishSummary(reg *metrics.Registry, eps []float64) {
	if p == nil || reg == nil {
		return
	}
	summary := p.RoundsToEps(eps)
	keys := make([]string, 0, len(summary))
	for k := range summary {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		reg.Gauge(SummaryPrefix+k, "first probe time with blocking pairs <= eps*|E| (-1 = never)").Set(summary[k])
	}
}
