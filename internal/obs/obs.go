// Package obs is the convergence-telemetry plane (DESIGN.md S28): a
// deterministic recorder for message-level causality and protocol
// spans, plus a per-round stability prober backed by metrics.Series.
//
// The paper's guarantees are round-convergence arguments — Lemma 5
// bounds messages, E6 measures rounds — but end-state statistics say
// nothing about the *trajectory*: how fast blocking pairs decay
// (Floréen et al., "Almost stable matchings in constant time"), which
// proposal wave locked which edge, whether a repair epoch stalled on a
// retransmit chain. The Recorder captures that trajectory as a single
// ordered event log with per-node Lamport clocks:
//
//   - Send/Deliver events carry the sender's Lamport stamp across the
//     link, so happens-before is reconstructible offline from the log
//     alone (deliver.lam > send.lam for the matching pair).
//   - Spans bracket protocol phases: LID proposal waves, dlid repair
//     epochs, detector suspicion→restore arcs, reliable retransmit
//     chains. Open/close pairs share a SpanID.
//   - Point events mark instants that have no duration (a lock, a
//     timeout, a revocation).
//
// Exports: NDJSON (one event per line), Chrome trace-event JSON
// (Perfetto-loadable: spans as B/E slices per node track, message
// causality as s/f flow arrows), and a nested text span tree.
//
// Determinism and cost contract: the Recorder mutates no protocol
// state and reads no RNG, so recorded runs are bit-identical to
// unrecorded ones; on the event runtime the log itself is
// deterministic (deliveries are (time,seq)-ordered), and -workers
// never changes it because workers only parallelize the preference
// table build. Every method is a no-op on a nil *Recorder, so the
// hot paths pay one nil check and zero allocations when telemetry is
// off (enforced by an AllocsPerRun budget in simnet).
package obs

import "sync"

// EventType discriminates recorder events.
type EventType uint8

const (
	// EvSend is a network send; Peer is the destination.
	EvSend EventType = iota
	// EvDeliver is a network delivery; Peer is the source and SendLam
	// the Lamport stamp of the matching send.
	EvDeliver
	// EvOpen opens a span (Span carries its id).
	EvOpen
	// EvClose closes a span (Span matches the EvOpen).
	EvClose
	// EvPoint is an instantaneous annotation.
	EvPoint
)

func (t EventType) String() string {
	switch t {
	case EvSend:
		return "send"
	case EvDeliver:
		return "deliver"
	case EvOpen:
		return "open"
	case EvClose:
		return "close"
	case EvPoint:
		return "point"
	}
	return "?"
}

// SpanID identifies one open/close pair. 0 is never issued.
type SpanID uint64

// Event is one record of the telemetry log.
type Event struct {
	Seq     int     // global record order (0-based)
	Type    EventType
	Node    int     // acting node
	Peer    int     // send: destination; deliver: source; else -1
	Kind    string  // message kind, span kind, or point kind
	Detail  string  // optional annotation ("" = none)
	Time    float64 // virtual time (0 on the goroutine runtime)
	Lam     uint64  // Lamport stamp of this event at Node
	SendLam uint64  // deliver only: stamp of the matching send
	Span    SpanID  // open/close only
}

// Recorder accumulates events under a mutex (the goroutine runtime
// records concurrently). A nil *Recorder is valid and every method on
// it is a free no-op — callers thread a possibly-nil recorder through
// unconditionally instead of branching at each site.
type Recorder struct {
	mu       sync.Mutex
	clocks   []uint64 // per-node Lamport clocks
	events   []Event
	nextSpan SpanID
}

// NewRecorder returns a recorder for n nodes (ids 0..n-1).
func NewRecorder(n int) *Recorder {
	if n < 0 {
		panic("obs: negative node count")
	}
	return &Recorder{clocks: make([]uint64, n)}
}

// tick advances node's Lamport clock for a local event. Callers hold mu.
func (r *Recorder) tick(node int) uint64 {
	r.clocks[node]++
	return r.clocks[node]
}

// Send records a network send and returns the Lamport stamp to carry
// on the message; the matching Deliver call feeds it back. Returns 0
// on a nil recorder.
func (r *Recorder) Send(node, to int, kind string, t float64) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	lam := r.tick(node)
	r.events = append(r.events, Event{
		Seq: len(r.events), Type: EvSend, Node: node, Peer: to,
		Kind: kind, Time: t, Lam: lam,
	})
	r.mu.Unlock()
	return lam
}

// Deliver records a delivery at node from peer `from`, merging the
// sender's stamp into node's clock (Lamport receive rule).
func (r *Recorder) Deliver(node, from int, kind string, t float64, sendLam uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if sendLam > r.clocks[node] {
		r.clocks[node] = sendLam
	}
	lam := r.tick(node)
	r.events = append(r.events, Event{
		Seq: len(r.events), Type: EvDeliver, Node: node, Peer: from,
		Kind: kind, Time: t, Lam: lam, SendLam: sendLam,
	})
	r.mu.Unlock()
}

// OpenSpan opens a span of the given kind at node and returns its id
// (0 on a nil recorder; CloseSpan ignores id 0).
func (r *Recorder) OpenSpan(node int, kind, detail string, t float64) SpanID {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	r.nextSpan++
	id := r.nextSpan
	lam := r.tick(node)
	r.events = append(r.events, Event{
		Seq: len(r.events), Type: EvOpen, Node: node, Peer: -1,
		Kind: kind, Detail: detail, Time: t, Lam: lam, Span: id,
	})
	r.mu.Unlock()
	return id
}

// CloseSpan closes a span opened by OpenSpan. Closing id 0 (the nil-
// recorder sentinel) is a no-op, so callers never branch.
func (r *Recorder) CloseSpan(node int, id SpanID, detail string, t float64) {
	if r == nil || id == 0 {
		return
	}
	r.mu.Lock()
	lam := r.tick(node)
	r.events = append(r.events, Event{
		Seq: len(r.events), Type: EvClose, Node: node, Peer: -1,
		Detail: detail, Time: t, Lam: lam, Span: id,
	})
	r.mu.Unlock()
}

// Point records an instantaneous event at node.
func (r *Recorder) Point(node int, kind, detail string, t float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	lam := r.tick(node)
	r.events = append(r.events, Event{
		Seq: len(r.events), Type: EvPoint, Node: node, Peer: -1,
		Kind: kind, Detail: detail, Time: t, Lam: lam,
	})
	r.mu.Unlock()
}

// Len returns the number of recorded events (0 on nil).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the log in record order (nil on nil).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}
