package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ndjsonEvent is the wire schema of one WriteNDJSON record. Optional
// fields are omitted so the common send/deliver records stay short.
type ndjsonEvent struct {
	Seq     int     `json:"seq"`
	Type    string  `json:"type"`
	Node    int     `json:"node"`
	Peer    *int    `json:"peer,omitempty"`
	Kind    string  `json:"kind,omitempty"`
	Detail  string  `json:"detail,omitempty"`
	Time    float64 `json:"t"`
	Lam     uint64  `json:"lam"`
	SendLam uint64  `json:"send_lam,omitempty"`
	Span    uint64  `json:"span,omitempty"`
}

// WriteNDJSON renders the log as newline-delimited JSON, one event per
// line in record order — the machine-readable causal trace. On the
// event runtime the bytes are a pure function of (workload, seed),
// independent of -workers (golden-tested in internal/trace).
func (r *Recorder) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events() {
		rec := ndjsonEvent{
			Seq: e.Seq, Type: e.Type.String(), Node: e.Node,
			Kind: e.Kind, Detail: e.Detail, Time: e.Time,
			Lam: e.Lam, SendLam: e.SendLam, Span: uint64(e.Span),
		}
		if e.Type == EvSend || e.Type == EvDeliver {
			peer := e.Peer
			rec.Peer = &peer
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// flowID builds the Chrome-trace flow id binding a send to its
// delivery: the sender's id and Lamport stamp, unique because every
// send ticks the sender's clock.
func flowID(sender int, lam uint64) uint64 {
	return uint64(sender)<<32 | (lam & 0xffffffff)
}

// chromeTS maps an event to a trace timestamp in microseconds. The
// event runtime provides virtual time; the goroutine runtime has no
// clock (all times 0), so record order stands in for time there.
func chromeTS(e Event, useSeq bool) float64 {
	if useSeq {
		return float64(e.Seq)
	}
	return e.Time * 1e6
}

// WriteChromeTrace renders the log in the Chrome trace-event JSON
// format (load in Perfetto or chrome://tracing): one track (tid) per
// node, spans as B/E duration slices, sends/delivers as instant
// events connected by s/f flow arrows, points as instants.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	useSeq := true
	for _, e := range events {
		if e.Time > 0 {
			useSeq = false
			break
		}
	}
	// Span kinds live on the open event; closes reference it by id.
	openKind := make(map[SpanID]string)
	type traceEvent struct {
		Name string                 `json:"name"`
		Ph   string                 `json:"ph"`
		Pid  int                    `json:"pid"`
		Tid  int                    `json:"tid"`
		TS   float64                `json:"ts"`
		ID   string                 `json:"id,omitempty"`
		S    string                 `json:"s,omitempty"`
		BP   string                 `json:"bp,omitempty"`
		Args map[string]interface{} `json:"args,omitempty"`
	}
	out := make([]traceEvent, 0, 2*len(events))
	for _, e := range events {
		te := traceEvent{Name: e.Kind, Pid: 0, Tid: e.Node, TS: chromeTS(e, useSeq)}
		args := map[string]interface{}{"lam": e.Lam}
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		switch e.Type {
		case EvSend:
			args["to"] = e.Peer
			te.Ph, te.Args = "i", args
			te.S = "t"
			out = append(out, te)
			flow := te
			flow.Ph, flow.S, flow.Args = "s", "", nil
			flow.ID = fmt.Sprintf("0x%x", flowID(e.Node, e.Lam))
			out = append(out, flow)
		case EvDeliver:
			args["from"] = e.Peer
			te.Ph, te.Args = "i", args
			te.S = "t"
			out = append(out, te)
			if e.SendLam != 0 {
				flow := te
				flow.Ph, flow.S, flow.Args = "f", "", nil
				flow.BP = "e"
				flow.ID = fmt.Sprintf("0x%x", flowID(e.Peer, e.SendLam))
				out = append(out, flow)
			}
		case EvOpen:
			openKind[e.Span] = e.Kind
			te.Ph, te.Args = "B", args
			out = append(out, te)
		case EvClose:
			te.Name = openKind[e.Span]
			te.Ph, te.Args = "E", args
			out = append(out, te)
		case EvPoint:
			te.Ph, te.S, te.Args = "i", "t", args
			out = append(out, te)
		}
	}
	data, err := json.Marshal(map[string]interface{}{"traceEvents": out})
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteSpanTree renders a nested text dump, one section per node that
// recorded anything: spans indent by nesting depth with their open and
// close times and Lamport interval; points and message events print at
// the current depth. The quick human-readable view of an execution.
func (r *Recorder) WriteSpanTree(w io.Writer) error {
	events := r.Events()
	byNode := map[int][]Event{}
	for _, e := range events {
		byNode[e.Node] = append(byNode[e.Node], e)
	}
	nodes := make([]int, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	closeOf := make(map[SpanID]Event)
	for _, e := range events {
		if e.Type == EvClose {
			closeOf[e.Span] = e
		}
	}
	var b strings.Builder
	for _, n := range nodes {
		fmt.Fprintf(&b, "node %d\n", n)
		depth := 1
		for _, e := range byNode[n] {
			indent := strings.Repeat("  ", depth)
			switch e.Type {
			case EvOpen:
				if c, ok := closeOf[e.Span]; ok {
					fmt.Fprintf(&b, "%s%s%s [%.3f, %.3f] lam=%d..%d", indent, e.Kind, detailSuffix(e), e.Time, c.Time, e.Lam, c.Lam)
					if c.Detail != "" {
						fmt.Fprintf(&b, " -> %s", c.Detail)
					}
					b.WriteByte('\n')
				} else {
					fmt.Fprintf(&b, "%s%s%s [%.3f, ...] lam=%d.. (unclosed)\n", indent, e.Kind, detailSuffix(e), e.Time, e.Lam)
				}
				depth++
			case EvClose:
				if depth > 1 {
					depth--
				}
			case EvSend:
				fmt.Fprintf(&b, "%s-> %d %s @%.3f lam=%d\n", indent, e.Peer, e.Kind, e.Time, e.Lam)
			case EvDeliver:
				fmt.Fprintf(&b, "%s<- %d %s @%.3f lam=%d (send lam=%d)\n", indent, e.Peer, e.Kind, e.Time, e.Lam, e.SendLam)
			case EvPoint:
				fmt.Fprintf(&b, "%s* %s%s @%.3f lam=%d\n", indent, e.Kind, detailSuffix(e), e.Time, e.Lam)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func detailSuffix(e Event) string {
	if e.Detail == "" {
		return ""
	}
	return "(" + e.Detail + ")"
}

// WriteFormat dispatches on a -trace-spans-format flag value:
// "ndjson", "chrome", or "tree".
func (r *Recorder) WriteFormat(w io.Writer, format string) error {
	switch format {
	case "", "ndjson":
		return r.WriteNDJSON(w)
	case "chrome":
		return r.WriteChromeTrace(w)
	case "tree":
		return r.WriteSpanTree(w)
	}
	return fmt.Errorf("obs: unknown span format %q (want ndjson, chrome or tree)", format)
}
