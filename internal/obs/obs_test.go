package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"overlaymatch/internal/metrics"
)

// record builds a small fixed log: node 0 opens a wave, sends to 1,
// 1 delivers, points, replies, 0 delivers and closes.
func record(r *Recorder) {
	id := r.OpenSpan(0, "lid.wave", "q=2", 0)
	lam := r.Send(0, 1, "PROP", 0)
	r.Deliver(1, 0, "PROP", 1, lam)
	r.Point(1, "lock", "edge 0-1", 1)
	lam2 := r.Send(1, 0, "REJ", 1)
	r.Deliver(0, 1, "REJ", 2, lam2)
	r.CloseSpan(0, id, "locked=1", 2)
}

func TestLamportClocks(t *testing.T) {
	r := NewRecorder(2)
	record(r)
	ev := r.Events()
	if len(ev) != 7 {
		t.Fatalf("got %d events, want 7", len(ev))
	}
	// open(0):lam1, send(0):lam2, deliver(1): max(0,2)+1=3,
	// point(1):4, send(1):5, deliver(0): max(2,5)+1=6, close(0):7.
	wantLam := []uint64{1, 2, 3, 4, 5, 6, 7}
	for i, e := range ev {
		if e.Lam != wantLam[i] {
			t.Fatalf("event %d (%s) lam=%d, want %d", i, e.Type, e.Lam, wantLam[i])
		}
		if e.Seq != i {
			t.Fatalf("event %d seq=%d", i, e.Seq)
		}
	}
	// The deliver must carry the matching send's stamp.
	if ev[2].SendLam != ev[1].Lam {
		t.Fatalf("deliver send_lam=%d, want %d", ev[2].SendLam, ev[1].Lam)
	}
	// Causality: every deliver strictly after its send.
	for _, e := range ev {
		if e.Type == EvDeliver && e.Lam <= e.SendLam {
			t.Fatalf("deliver lam=%d not after send lam=%d", e.Lam, e.SendLam)
		}
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if lam := r.Send(0, 1, "PROP", 0); lam != 0 {
		t.Fatalf("nil Send returned %d", lam)
	}
	r.Deliver(0, 1, "PROP", 0, 0)
	if id := r.OpenSpan(0, "x", "", 0); id != 0 {
		t.Fatalf("nil OpenSpan returned %d", id)
	}
	r.CloseSpan(0, 0, "", 0)
	r.Point(0, "x", "", 0)
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder not empty")
	}
	allocs := testing.AllocsPerRun(100, func() {
		lam := r.Send(0, 1, "PROP", 0)
		r.Deliver(1, 0, "PROP", 1, lam)
		r.CloseSpan(0, r.OpenSpan(0, "w", "", 0), "", 1)
		r.Point(0, "p", "", 1)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocates %v per run, want 0", allocs)
	}
}

func TestExportsDeterministic(t *testing.T) {
	render := func() (string, string, string) {
		r := NewRecorder(2)
		record(r)
		var nd, ch, tr bytes.Buffer
		if err := r.WriteNDJSON(&nd); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteChromeTrace(&ch); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteSpanTree(&tr); err != nil {
			t.Fatal(err)
		}
		return nd.String(), ch.String(), tr.String()
	}
	nd1, ch1, tr1 := render()
	nd2, ch2, tr2 := render()
	if nd1 != nd2 || ch1 != ch2 || tr1 != tr2 {
		t.Fatal("exports differ across identical runs")
	}
	if got := strings.Count(nd1, "\n"); got != 7 {
		t.Fatalf("ndjson has %d lines, want 7", got)
	}
	for _, want := range []string{`"type":"send"`, `"type":"deliver"`, `"send_lam":2`, `"span":1`, `"kind":"lid.wave"`} {
		if !strings.Contains(nd1, want) {
			t.Fatalf("ndjson missing %q:\n%s", want, nd1)
		}
	}
	// Chrome trace must parse as JSON and pair B/E and s/f events.
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(ch1), &doc); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	phases := map[string]int{}
	for _, te := range doc.TraceEvents {
		phases[te["ph"].(string)]++
	}
	if phases["B"] != 1 || phases["E"] != 1 {
		t.Fatalf("span slices B=%d E=%d, want 1/1", phases["B"], phases["E"])
	}
	if phases["s"] != 2 || phases["f"] != 2 {
		t.Fatalf("flow events s=%d f=%d, want 2/2", phases["s"], phases["f"])
	}
	for _, want := range []string{"node 0", "node 1", "lid.wave(q=2)", "lam=1..7", "-> locked=1", "* lock(edge 0-1)"} {
		if !strings.Contains(tr1, want) {
			t.Fatalf("span tree missing %q:\n%s", want, tr1)
		}
	}
	// Unknown format rejected.
	if err := NewRecorder(1).WriteFormat(&bytes.Buffer{}, "xml"); err == nil {
		t.Fatal("unknown span format accepted")
	}
}

func TestProberRoundsToEps(t *testing.T) {
	// A decaying blocking-pair curve over 100 edges: 40, 8, 0.
	curve := []StabilitySample{
		{BlockingPairs: 40, UnmatchedNodes: 10, MatchedWeight: 5, Msgs: 100, Bytes: 800},
		{BlockingPairs: 8, UnmatchedNodes: 4, MatchedWeight: 8, Msgs: 200, Bytes: 1600},
		{BlockingPairs: 0, UnmatchedNodes: 0, MatchedWeight: 10, Msgs: 240, Bytes: 1920},
	}
	reg := metrics.New()
	i := 0
	p := NewProber(reg, 1, 100, 10, func(t float64) StabilitySample {
		s := curve[i]
		i++
		return s
	})
	for round := 0; round < len(curve); round++ {
		p.Probe(float64(round))
	}
	if pts := p.Curve(); len(pts) != 3 || pts[0].V != 40 || pts[2].V != 0 {
		t.Fatalf("curve = %+v", pts)
	}
	if last := reg.Series("probe_matched_weight_frac", "").Last(); last.V != 1 {
		t.Fatalf("final weight fraction = %v, want 1", last.V)
	}
	got := p.RoundsToEps(nil)
	want := map[string]float64{"0.100": 1, "0.010": 2, "0.001": 2, "0.000": 2}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("rounds-to-eps[%s] = %v, want %v (all: %v)", k, got[k], v, got)
		}
	}
	p.PublishSummary(reg, nil)
	if g := reg.Gauge(SummaryPrefix+"0.100", "").Value(); g != 1 {
		t.Fatalf("published gauge = %v, want 1", g)
	}

	// Never-converging curve reports -1.
	reg2 := metrics.New()
	p2 := NewProber(reg2, 1, 100, 0, func(float64) StabilitySample {
		return StabilitySample{BlockingPairs: 50}
	})
	p2.Probe(0)
	if got := p2.RoundsToEps([]float64{0}); got["0.000"] != -1 {
		t.Fatalf("unconverged rounds-to-eps = %v, want -1", got["0.000"])
	}

	// Nil prober is inert.
	var np *Prober
	np.Probe(0)
	if np.Interval() != 0 || np.Curve() != nil || np.RoundsToEps(nil) != nil {
		t.Fatal("nil prober not inert")
	}
	np.PublishSummary(reg, nil)
}
