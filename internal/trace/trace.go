// Package trace records and renders protocol executions: a Collector
// captures every delivery from the event simulator, and renderers turn
// the capture into (a) a human-readable message-sequence log, (b) a
// per-kind/per-time summary, and (c) Graphviz DOT of the final overlay
// (potential edges gray, locked connections bold, labelled with their
// eq.-9 weights). cmd/overlaysim exposes all three.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// Collector accumulates deliveries; plug its Record method into
// simnet.Options.Trace. Not safe for concurrent use (the event Runner
// is single-threaded).
type Collector struct {
	entries []simnet.TraceEntry
}

// Record implements the simnet trace callback.
func (c *Collector) Record(e simnet.TraceEntry) {
	c.entries = append(c.entries, e)
}

// Len returns the number of recorded deliveries.
func (c *Collector) Len() int { return len(c.entries) }

// Entries returns the recorded deliveries in delivery order.
func (c *Collector) Entries() []simnet.TraceEntry { return c.entries }

// WriteLog renders the message-sequence log: one line per delivery,
// time-ordered, e.g. "  3.42  7 -> 12  PROP".
func (c *Collector) WriteLog(w io.Writer) error {
	var b strings.Builder
	for _, e := range c.entries {
		kind := simnet.KindOf(e.Msg)
		if kind == "" {
			kind = fmt.Sprintf("%v", e.Msg)
		}
		fmt.Fprintf(&b, "%8.3f  %4d -> %-4d %s\n", e.Time, e.From, e.To, kind)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Summary aggregates the capture per message kind.
type Summary struct {
	Kind      string
	Count     int
	FirstTime float64
	LastTime  float64
}

// Summarize returns per-kind aggregates sorted by kind.
func (c *Collector) Summarize() []Summary {
	agg := map[string]*Summary{}
	for _, e := range c.entries {
		kind := simnet.KindOf(e.Msg)
		s, ok := agg[kind]
		if !ok {
			s = &Summary{Kind: kind, FirstTime: e.Time}
			agg[kind] = s
		}
		s.Count++
		if e.Time < s.FirstTime {
			s.FirstTime = e.Time
		}
		if e.Time > s.LastTime {
			s.LastTime = e.Time
		}
	}
	out := make([]Summary, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// WriteDOT renders the overlay and its matching as Graphviz DOT:
// every potential edge in light gray, locked connections bold with
// their eq.-9 weight as label, nodes annotated "id (ci/bi)".
func WriteDOT(w io.Writer, s *pref.System, m *matching.Matching) error {
	var b strings.Builder
	b.WriteString("graph overlay {\n")
	b.WriteString("  layout=neato;\n  node [shape=circle, fontsize=10];\n")
	g := s.Graph()
	for i := 0; i < g.NumNodes(); i++ {
		fmt.Fprintf(&b, "  %d [label=\"%d (%d/%d)\"];\n", i, i, m.DegreeOf(i), s.Quota(i))
	}
	for _, e := range g.Edges() {
		if m.Has(e.U, e.V) {
			fmt.Fprintf(&b, "  %d -- %d [penwidth=2.2, label=\"%.3f\", fontsize=8];\n",
				e.U, e.V, satisfaction.EdgeWeight(s, e))
		} else {
			fmt.Fprintf(&b, "  %d -- %d [color=gray80];\n", e.U, e.V)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
