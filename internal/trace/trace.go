// Package trace records and renders protocol executions: a Collector
// captures every delivery from either simnet runtime, and renderers
// turn the capture into (a) a human-readable message-sequence log,
// (b) a per-kind/per-time summary, (c) newline-delimited JSON
// (one structured record per delivery — the machine-readable form),
// and (d) Graphviz DOT of the final overlay (potential edges gray,
// locked connections bold, labelled with their eq.-9 weights).
// cmd/overlaysim exposes all of them.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// Collector accumulates deliveries; plug its Record method into
// simnet.Options.Trace (event runtime) or GoRunner.SetTrace
// (goroutine runtime). It is mutex-guarded and safe for concurrent
// use, which the goroutine runtime requires: its per-node goroutines
// record deliveries concurrently, in scheduler order.
type Collector struct {
	mu      sync.Mutex
	entries []simnet.TraceEntry
}

// Record implements the simnet trace callback.
func (c *Collector) Record(e simnet.TraceEntry) {
	c.mu.Lock()
	c.entries = append(c.entries, e)
	c.mu.Unlock()
}

// Len returns the number of recorded deliveries.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Entries returns a copy of the recorded deliveries in record order.
func (c *Collector) Entries() []simnet.TraceEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]simnet.TraceEntry(nil), c.entries...)
}

// kindOrValue renders a message's kind label, falling back to its
// value for unkinded messages.
func kindOrValue(msg simnet.Message) string {
	if kind := simnet.KindOf(msg); kind != "" {
		return kind
	}
	return fmt.Sprintf("%v", msg)
}

// WriteLog renders the message-sequence log: one line per delivery,
// in record order, e.g. "  3.42  7 -> 12  PROP".
func (c *Collector) WriteLog(w io.Writer) error {
	var b strings.Builder
	for _, e := range c.Entries() {
		fmt.Fprintf(&b, "%8.3f  %4d -> %-4d %s\n", e.Time, e.From, e.To, kindOrValue(e.Msg))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ndjsonEntry is the wire schema of one WriteNDJSON record.
type ndjsonEntry struct {
	Seq  int     `json:"seq"`
	Time float64 `json:"time"`
	From int     `json:"from"`
	To   int     `json:"to"`
	Kind string  `json:"kind"`
}

// WriteNDJSON renders the capture as newline-delimited JSON, one
// record per delivery with a record-order sequence number — the
// structured trace format shared by both runtimes (the goroutine
// runtime has no virtual clock, so its records carry time 0 and rely
// on seq for ordering).
func (c *Collector) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i, e := range c.Entries() {
		rec := ndjsonEntry{Seq: i, Time: e.Time, From: e.From, To: e.To, Kind: kindOrValue(e.Msg)}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// Summary aggregates the capture per message kind.
type Summary struct {
	Kind      string
	Count     int
	FirstTime float64
	LastTime  float64
}

// Summarize returns per-kind aggregates sorted by kind.
func (c *Collector) Summarize() []Summary {
	agg := map[string]*Summary{}
	for _, e := range c.Entries() {
		kind := simnet.KindOf(e.Msg)
		s, ok := agg[kind]
		if !ok {
			s = &Summary{Kind: kind, FirstTime: e.Time}
			agg[kind] = s
		}
		s.Count++
		if e.Time < s.FirstTime {
			s.FirstTime = e.Time
		}
		if e.Time > s.LastTime {
			s.LastTime = e.Time
		}
	}
	out := make([]Summary, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// WriteDOT renders the overlay and its matching as Graphviz DOT:
// every potential edge in light gray, locked connections bold with
// their eq.-9 weight as label, nodes annotated "id (ci/bi)".
func WriteDOT(w io.Writer, s *pref.System, m *matching.Matching) error {
	var b strings.Builder
	b.WriteString("graph overlay {\n")
	b.WriteString("  layout=neato;\n  node [shape=circle, fontsize=10];\n")
	g := s.Graph()
	for i := 0; i < g.NumNodes(); i++ {
		fmt.Fprintf(&b, "  %d [label=\"%d (%d/%d)\"];\n", i, i, m.DegreeOf(i), s.Quota(i))
	}
	for _, e := range g.Edges() {
		if m.Has(e.U, e.V) {
			fmt.Fprintf(&b, "  %d -- %d [penwidth=2.2, label=\"%.3f\", fontsize=8];\n",
				e.U, e.V, satisfaction.EdgeWeight(s, e))
		} else {
			fmt.Fprintf(&b, "  %d -- %d [color=gray80];\n", e.U, e.V)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
