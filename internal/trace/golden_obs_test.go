package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden span-trace file")

// goldenSpanTrace runs the canonical telemetry workload with the given
// worker count and returns the NDJSON span trace. Everything is seeded:
// the bytes must be a pure function of (workload, seed) and of nothing
// else.
func goldenSpanTrace(t *testing.T, workers int) []byte {
	t.Helper()
	src := rng.New(42)
	g := gen.GNP(src, 30, 0.2)
	sys, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(2))
	if err != nil {
		t.Fatal(err)
	}
	tbl := satisfaction.NewTableParallel(sys, workers)
	rec := obs.NewRecorder(g.NumNodes())
	if _, err := lid.RunEvent(sys, tbl, simnet.Options{
		Seed:    7,
		Latency: simnet.ExponentialLatency(2),
		Obs:     rec,
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestObsNDJSONGolden pins the causal span trace of a seeded event-
// runtime LID run to a committed golden file, at several worker counts:
// -workers only parallelizes the preference-table build, so the
// telemetry bytes must be identical at every count — a worker-dependent
// diff means scheduling state leaked into the telemetry plane, and any
// diff at all is a (possibly intentional) trace-format or protocol
// change. Regenerate with:
//
//	go test ./internal/trace -run TestObsNDJSONGolden -args -update
func TestObsNDJSONGolden(t *testing.T) {
	golden := filepath.Join("testdata", "obs_spans_golden.ndjson")
	base := goldenSpanTrace(t, 1)
	for _, workers := range []int{2, 8} {
		if got := goldenSpanTrace(t, workers); !bytes.Equal(got, base) {
			t.Fatalf("span trace with %d workers differs from 1 worker (%d vs %d bytes) — telemetry must be schedule-free",
				workers, len(got), len(base))
		}
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, base, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(base))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -args -update)", err)
	}
	if !bytes.Equal(base, want) {
		// Find the first differing line for a readable failure.
		gotLines, wantLines := bytes.Split(base, []byte("\n")), bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
			if !bytes.Equal(gotLines[i], wantLines[i]) {
				t.Fatalf("span trace drifted from golden at line %d:\n got: %s\nwant: %s",
					i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("span trace drifted from golden: %d lines vs %d", len(gotLines), len(wantLines))
	}
}
