package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

func tracedRun(t *testing.T) (*Collector, *pref.System, lid.Result) {
	t.Helper()
	src := rng.New(3)
	g := gen.GNP(src, 15, 0.4)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(2))
	if err != nil {
		t.Fatal(err)
	}
	tbl := satisfaction.NewTable(s)
	var c Collector
	res, err := lid.RunEvent(s, tbl, simnet.Options{
		Seed:    1,
		Latency: simnet.ExponentialLatency(2),
		Trace:   c.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &c, s, res
}

func TestCollectorCapturesEveryDelivery(t *testing.T) {
	c, _, res := tracedRun(t)
	if c.Len() != res.Stats.Deliveries {
		t.Fatalf("captured %d, delivered %d", c.Len(), res.Stats.Deliveries)
	}
	// Deliveries arrive in nondecreasing time order.
	for i := 1; i < len(c.Entries()); i++ {
		if c.Entries()[i].Time < c.Entries()[i-1].Time {
			t.Fatal("trace out of time order")
		}
	}
}

func TestWriteLog(t *testing.T) {
	c, _, _ := tracedRun(t)
	var b strings.Builder
	if err := c.WriteLog(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "PROP") {
		t.Fatalf("log missing PROP lines:\n%.200s", out)
	}
	if lines := strings.Count(out, "\n"); lines != c.Len() {
		t.Fatalf("log has %d lines for %d entries", lines, c.Len())
	}
}

func TestSummarize(t *testing.T) {
	c, _, res := tracedRun(t)
	sums := c.Summarize()
	byKind := map[string]Summary{}
	total := 0
	for _, s := range sums {
		byKind[s.Kind] = s
		total += s.Count
	}
	if total != res.Stats.Deliveries {
		t.Fatalf("summary total %d != deliveries %d", total, res.Stats.Deliveries)
	}
	if byKind["PROP"].Count == 0 {
		t.Fatal("no PROP messages summarized")
	}
	if p := byKind["PROP"]; p.FirstTime > p.LastTime {
		t.Fatal("first/last times inverted")
	}
}

func TestWriteDOT(t *testing.T) {
	_, s, res := tracedRun(t)
	var b strings.Builder
	if err := WriteDOT(&b, s, res.Matching); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "graph overlay {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatal("not a DOT document")
	}
	if strings.Count(out, "penwidth") != res.Matching.Size() {
		t.Fatalf("bold edges %d != matching size %d",
			strings.Count(out, "penwidth"), res.Matching.Size())
	}
	if strings.Count(out, " -- ") != s.Graph().NumEdges() {
		t.Fatal("edge count mismatch in DOT")
	}
}

func TestWriteNDJSON(t *testing.T) {
	c, _, res := tracedRun(t)
	var b bytes.Buffer
	if err := c.WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != res.Stats.Deliveries {
		t.Fatalf("ndjson has %d records, want %d", len(lines), res.Stats.Deliveries)
	}
	for i, line := range lines {
		var rec struct {
			Seq  int     `json:"seq"`
			Time float64 `json:"time"`
			From int     `json:"from"`
			To   int     `json:"to"`
			Kind string  `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("record %d invalid: %v (%s)", i, err, line)
		}
		if rec.Seq != i {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
		if rec.Kind != "PROP" && rec.Kind != "REJ" {
			t.Fatalf("record %d has kind %q", i, rec.Kind)
		}
	}
}

// TestCollectorConcurrentRecord exercises the mutex guard: the
// goroutine runtime records from many goroutines at once.
func TestCollectorConcurrentRecord(t *testing.T) {
	var c Collector
	const writers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Record(simnet.TraceEntry{From: w, To: i})
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != writers*per {
		t.Fatalf("captured %d, want %d", c.Len(), writers*per)
	}
}

// TestCollectorOnGoroutineRuntime runs LID on the goroutine runtime
// with the collector attached — the satellite fix for
// `-tracelog -runtime goroutine`.
func TestCollectorOnGoroutineRuntime(t *testing.T) {
	src := rng.New(3)
	g := gen.GNP(src, 15, 0.4)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(2))
	if err != nil {
		t.Fatal(err)
	}
	tbl := satisfaction.NewTable(s)
	var c Collector
	res, err := lid.RunGoroutinesOpts(s, tbl, lid.GoOptions{Trace: c.Record})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != res.Stats.Deliveries {
		t.Fatalf("captured %d, delivered %d", c.Len(), res.Stats.Deliveries)
	}
	var b bytes.Buffer
	if err := c.WriteLog(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "PROP") {
		t.Fatal("goroutine-runtime log missing PROP lines")
	}
}
