package trace

import (
	"strings"
	"testing"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

func tracedRun(t *testing.T) (*Collector, *pref.System, lid.Result) {
	t.Helper()
	src := rng.New(3)
	g := gen.GNP(src, 15, 0.4)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(2))
	if err != nil {
		t.Fatal(err)
	}
	tbl := satisfaction.NewTable(s)
	var c Collector
	res, err := lid.RunEvent(s, tbl, simnet.Options{
		Seed:    1,
		Latency: simnet.ExponentialLatency(2),
		Trace:   c.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &c, s, res
}

func TestCollectorCapturesEveryDelivery(t *testing.T) {
	c, _, res := tracedRun(t)
	if c.Len() != res.Stats.Deliveries {
		t.Fatalf("captured %d, delivered %d", c.Len(), res.Stats.Deliveries)
	}
	// Deliveries arrive in nondecreasing time order.
	for i := 1; i < len(c.Entries()); i++ {
		if c.Entries()[i].Time < c.Entries()[i-1].Time {
			t.Fatal("trace out of time order")
		}
	}
}

func TestWriteLog(t *testing.T) {
	c, _, _ := tracedRun(t)
	var b strings.Builder
	if err := c.WriteLog(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "PROP") {
		t.Fatalf("log missing PROP lines:\n%.200s", out)
	}
	if lines := strings.Count(out, "\n"); lines != c.Len() {
		t.Fatalf("log has %d lines for %d entries", lines, c.Len())
	}
}

func TestSummarize(t *testing.T) {
	c, _, res := tracedRun(t)
	sums := c.Summarize()
	byKind := map[string]Summary{}
	total := 0
	for _, s := range sums {
		byKind[s.Kind] = s
		total += s.Count
	}
	if total != res.Stats.Deliveries {
		t.Fatalf("summary total %d != deliveries %d", total, res.Stats.Deliveries)
	}
	if byKind["PROP"].Count == 0 {
		t.Fatal("no PROP messages summarized")
	}
	if p := byKind["PROP"]; p.FirstTime > p.LastTime {
		t.Fatal("first/last times inverted")
	}
}

func TestWriteDOT(t *testing.T) {
	_, s, res := tracedRun(t)
	var b strings.Builder
	if err := WriteDOT(&b, s, res.Matching); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "graph overlay {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatal("not a DOT document")
	}
	if strings.Count(out, "penwidth") != res.Matching.Size() {
		t.Fatalf("bold edges %d != matching size %d",
			strings.Count(out, "penwidth"), res.Matching.Size())
	}
	if strings.Count(out, " -- ") != s.Graph().NumEdges() {
		t.Fatal("edge count mismatch in DOT")
	}
}
