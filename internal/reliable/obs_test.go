package reliable

import (
	"testing"

	"overlaymatch/internal/obs"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/simnet"
)

// TestRetxSpansBalanced: under heavy loss with a telemetry recorder
// attached, every retransmit chain opens exactly one reliable.retx
// span and closes it when the frame is finally acked; no chain leaks
// past termination. Byte accounting must see the framing: every frame
// (DATA or ACK) costs the 9-byte transport framing, and the int
// payloads of the fixture have no nominal size of their own.
func TestRetxSpansBalanced(t *testing.T) {
	const msgs = 60
	sender := &counterHandler{want: msgs}
	receiver := &counterHandler{n: msgs}
	eps := Wrap([]simnet.Handler{sender, receiver}, 5, 0)
	rec := obs.NewRecorder(2)
	r := simnet.NewRunner(2, simnet.Options{
		Seed:    7,
		Drop:    simnet.UniformDrop(0.4),
		Latency: simnet.ExponentialLatency(2),
		Obs:     rec,
	})
	if _, err := r.Run(Handlers(eps)); err != nil {
		t.Fatal(err)
	}
	opens, closes := 0, 0
	for _, e := range rec.Events() {
		switch {
		case e.Type == obs.EvOpen && e.Kind == "reliable.retx":
			opens++
		case e.Type == obs.EvClose:
			closes++
		}
	}
	if opens == 0 {
		t.Fatal("40% loss but no retransmit chains recorded")
	}
	if opens != closes {
		t.Fatalf("retx spans open/close = %d/%d, want balanced", opens, closes)
	}
	for i, e := range eps {
		if len(e.retxSpans) != 0 {
			t.Fatalf("endpoint %d leaked %d open retx spans", i, len(e.retxSpans))
		}
	}
	frames := sum(eps, (*Endpoint).Frames) + sum(eps, (*Endpoint).Acks)
	sent, bytes := r.SentTotals()
	if sent != int64(frames) {
		t.Fatalf("runner counted %d sends, endpoints sent %d frames", sent, frames)
	}
	if bytes != int64(frameHeader*frames) {
		t.Fatalf("runner counted %d bytes, want %d", bytes, frameHeader*frames)
	}
}

// TestRetxSpanAbandonClosed: a dead link with a bounded retry budget
// must close its retransmit chains as abandoned, not leak them.
func TestRetxSpanAbandonClosed(t *testing.T) {
	sender := &counterHandler{want: 5}
	receiver := &counterHandler{n: 0}
	eps := Wrap([]simnet.Handler{sender, receiver}, 2, 3)
	rec := obs.NewRecorder(2)
	r := simnet.NewRunner(2, simnet.Options{
		Seed: 3,
		Drop: func(from, to int, _ *rng.Source) bool { return to == 1 },
		Obs:  rec,
	})
	if _, err := r.Run(Handlers(eps)); err != nil {
		t.Fatal(err)
	}
	opens, abandoned := 0, 0
	for _, e := range rec.Events() {
		switch {
		case e.Type == obs.EvOpen && e.Kind == "reliable.retx":
			opens++
		case e.Type == obs.EvClose && e.Detail == "abandoned":
			abandoned++
		}
	}
	if opens != 5 || abandoned != 5 {
		t.Fatalf("retx spans opened/abandoned = %d/%d, want 5/5", opens, abandoned)
	}
	if len(eps[0].retxSpans) != 0 {
		t.Fatal("abandoned chains leaked open spans")
	}
}
