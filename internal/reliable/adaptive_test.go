package reliable

import (
	"testing"

	"overlaymatch/internal/metrics"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/simnet"
)

// stubCtx is a controllable simnet.Context for driving an Endpoint's
// state machine directly (time set by the test, sends and timers
// recorded and dropped).
type stubCtx struct {
	id     int
	time   float64
	sends  int
	timers int
}

func (c *stubCtx) ID() int                                { return c.id }
func (c *stubCtx) Time() float64                          { return c.time }
func (c *stubCtx) Halt()                                  {}
func (c *stubCtx) Send(to int, msg simnet.Message)        { c.sends++ }
func (c *stubCtx) SetTimer(d float64, msg simnet.Message) { c.timers++ }

// downRecorder is an inner handler implementing the LinkDown upcall.
type downRecorder struct {
	counterHandler
	downs []int
}

func (h *downRecorder) HandleLinkDown(ctx simnet.Context, peer int) {
	h.downs = append(h.downs, peer)
}

func TestAdaptiveRTOEstimation(t *testing.T) {
	inner := &counterHandler{}
	e := NewEndpointConfig(inner, Config{RTO: 100, Adaptive: true, MaxRetries: 2})
	ctx := &stubCtx{id: 0}
	rc := &relCtx{e: e, ctx: ctx}

	// First frame: acked in 4 units -> srtt=4, rttvar=2, rto = 4+4*2.
	rc.Send(1, "a")
	ctx.time = 4
	e.HandleMessage(ctx, 1, ackMsg{Seq: 0})
	if e.RTTSamples() != 1 {
		t.Fatalf("samples = %d, want 1", e.RTTSamples())
	}
	if s, ok := e.SRTT(1); !ok || s != 4 {
		t.Fatalf("srtt = %v,%v, want 4,true", s, ok)
	}
	if got := e.rtoFor(1, 1); got != 12 {
		t.Fatalf("adaptive rto = %v, want srtt+4*rttvar = 12", got)
	}
	// Exponential backoff doubles per retry and caps at MaxRTO (16*RTO).
	if got := e.rtoFor(1, 3); got != 48 {
		t.Fatalf("backed-off rto = %v, want 48", got)
	}
	if got := e.rtoFor(1, 20); got != 1600 {
		t.Fatalf("capped rto = %v, want 1600", got)
	}

	// Karn's rule: a retransmitted frame's ack yields no sample.
	rc.Send(1, "b") // seq 1 at t=4
	e.HandleMessage(ctx, 0, retransmitToken{To: 1, Seq: 1})
	ctx.time = 50
	e.HandleMessage(ctx, 1, ackMsg{Seq: 1})
	if e.RTTSamples() != 1 {
		t.Fatalf("retransmitted frame produced a sample (Karn violated): %d", e.RTTSamples())
	}

	// A peer without samples falls back to the static base, clamped.
	if got := e.rtoFor(7, 1); got != 100 {
		t.Fatalf("no-sample rto = %v, want the static 100", got)
	}
}

func TestLinkDownEscalation(t *testing.T) {
	inner := &downRecorder{}
	e := NewEndpointConfig(inner, Config{RTO: 10, MaxRetries: 2})
	ctx := &stubCtx{id: 0}
	rc := &relCtx{e: e, ctx: ctx}

	exhaust := func(seq uint32) {
		for i := 0; i < 3; i++ {
			e.HandleMessage(ctx, 0, retransmitToken{To: 1, Seq: seq})
		}
	}
	rc.Send(1, "a")
	exhaust(0)
	if e.Abandoned() != 1 || e.AbandonedBy()[1] != 1 {
		t.Fatalf("abandoned=%d byPeer=%v, want 1/map[1:1]", e.Abandoned(), e.AbandonedBy())
	}
	if len(inner.downs) != 1 || inner.downs[0] != 1 || e.LinkDowns() != 1 {
		t.Fatalf("downs = %v (%d), want one for peer 1", inner.downs, e.LinkDowns())
	}
	if !e.Down(1) {
		t.Fatal("peer 1 should be marked down")
	}
	// A second exhausted frame while already down must not re-escalate.
	rc.Send(1, "b")
	exhaust(1)
	if len(inner.downs) != 1 {
		t.Fatalf("re-escalated while down: %v", inner.downs)
	}
	// Hearing from the peer clears down; the next exhaustion escalates
	// again.
	e.HandleMessage(ctx, 1, dataMsg{Seq: 0, Payload: 42})
	if e.Down(1) {
		t.Fatal("down not cleared by incoming traffic")
	}
	rc.Send(1, "c")
	exhaust(2)
	if len(inner.downs) != 2 || e.LinkDowns() != 2 {
		t.Fatalf("downs = %v, want a second escalation", inner.downs)
	}
}

// TestLinkDownEndToEnd runs the escalation through the event runtime:
// all frames toward node 1 are dropped, the retry budget expires, and
// the inner handler hears exactly one LinkDown for the dead peer.
func TestLinkDownEndToEnd(t *testing.T) {
	sender := &downRecorder{counterHandler: counterHandler{want: 5}}
	receiver := &counterHandler{n: 0}
	eps := []*Endpoint{
		NewEndpointConfig(sender, Config{RTO: 2, MaxRetries: 3, Adaptive: true}),
		NewEndpointConfig(receiver, Config{RTO: 2, MaxRetries: 3, Adaptive: true}),
	}
	r := simnet.NewRunner(2, simnet.Options{
		Seed: 3,
		Drop: func(from, to int, _ *rng.Source) bool { return to == 1 },
	})
	if _, err := r.Run(Handlers(eps)); err != nil {
		t.Fatal(err)
	}
	if eps[0].Abandoned() != 5 || eps[0].AbandonedBy()[1] != 5 {
		t.Fatalf("abandoned %d / byPeer %v, want 5 toward peer 1", eps[0].Abandoned(), eps[0].AbandonedBy())
	}
	if len(sender.downs) != 1 || sender.downs[0] != 1 {
		t.Fatalf("downs = %v, want exactly [1]", sender.downs)
	}
	reg := metrics.New()
	PublishMetrics(reg, eps)
	if got := reg.Counter("reliable_linkdown_total", "").Value(); got != 1 {
		t.Fatalf("linkdown counter = %d, want 1", got)
	}
	if got := reg.Family("reliable_abandoned_by_peer", "", "peer").With("1").Value(); got != 5 {
		t.Fatalf("per-peer abandoned counter = %d, want 5", got)
	}
}

// TestAdaptiveExactlyOnce re-runs the headline loss property through
// the adaptive path: estimation and backoff must not break
// exactly-once delivery.
func TestAdaptiveExactlyOnce(t *testing.T) {
	const msgs = 100
	sender := &counterHandler{want: msgs}
	receiver := &counterHandler{n: msgs}
	eps := WrapConfig([]simnet.Handler{sender, receiver}, Config{RTO: 5, Adaptive: true})
	r := simnet.NewRunner(2, simnet.Options{
		Seed:    7,
		Drop:    simnet.UniformDrop(0.4),
		Latency: simnet.ExponentialLatency(2),
	})
	if _, err := r.Run(Handlers(eps)); err != nil {
		t.Fatal(err)
	}
	if len(receiver.got) != msgs {
		t.Fatalf("received %d distinct messages, want %d", len(receiver.got), msgs)
	}
	for v, c := range receiver.got {
		if c != 1 {
			t.Fatalf("message %d delivered %d times", v, c)
		}
	}
	if eps[0].RTTSamples() == 0 {
		t.Fatal("adaptive endpoint accepted no RTT samples")
	}
}

// suspectRecorder records forwarded suspect/restore upcalls.
type suspectRecorder struct {
	counterHandler
	suspects, restores []int
}

func (h *suspectRecorder) HandleSuspect(ctx simnet.Context, peer int) {
	h.suspects = append(h.suspects, peer)
}
func (h *suspectRecorder) HandleRestore(ctx simnet.Context, peer int) {
	h.restores = append(h.restores, peer)
}

// TestSuspectPassThrough pins the stacking contract: a detector above
// the transport reaches the protocol below it.
func TestSuspectPassThrough(t *testing.T) {
	inner := &suspectRecorder{}
	e := NewEndpoint(inner, 10, 0)
	ctx := &stubCtx{id: 0}
	e.HandleSuspect(ctx, 3)
	e.HandleRestore(ctx, 3)
	if len(inner.suspects) != 1 || inner.suspects[0] != 3 || len(inner.restores) != 1 {
		t.Fatalf("upcalls not forwarded: %v / %v", inner.suspects, inner.restores)
	}
	// An inner handler without the interface is silently fine.
	plain := NewEndpoint(&counterHandler{}, 10, 0)
	plain.HandleSuspect(ctx, 1)
	plain.HandleRestore(ctx, 1)
}
