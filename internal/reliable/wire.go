package reliable

import (
	"encoding/binary"
	"fmt"
	"reflect"

	"overlaymatch/internal/rng"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/transport"
)

// Wire codecs for the ack/retransmit framing (package transport).
//
// A DATA frame is the big-endian sequence number followed by the inner
// protocol message encoded as a complete nested frame — the nesting is
// literal on the wire, exactly as the Endpoint nests payloads in Go
// values, so any registered protocol message rides the reliable layer
// with no per-protocol cases here. An ACK frame is the sequence number
// alone. The retransmit timer token never crosses the wire (it is a
// local self-delivery) and has no codec on purpose: encoding it would
// hide a protocol bug.
func init() {
	transport.Register(transport.IDReliableData, transport.Codec{
		Name:    "reliable.dataMsg",
		Version: 1,
		Type:    reflect.TypeOf(dataMsg{}),
		Encode: func(msg simnet.Message, buf []byte) []byte {
			m := msg.(dataMsg)
			buf = binary.BigEndian.AppendUint32(buf, m.Seq)
			buf, err := transport.AppendFrame(buf, m.Payload)
			if err != nil {
				// Send-side failure: the inner protocol handed the
				// transport an unregistered type. That is a wiring bug,
				// not a runtime condition — fail loudly.
				panic(fmt.Sprintf("reliable: encoding DATA payload: %v", err))
			}
			return buf
		},
		Decode: func(payload []byte) (simnet.Message, error) {
			if len(payload) < 4 {
				return nil, fmt.Errorf("DATA payload is %d bytes, want >= 4", len(payload))
			}
			seq := binary.BigEndian.Uint32(payload)
			inner, consumed, err := transport.DecodeFrame(payload[4:])
			if err != nil {
				return nil, fmt.Errorf("DATA inner frame: %v", err)
			}
			if consumed != len(payload)-4 {
				return nil, fmt.Errorf("DATA inner frame leaves %d trailing bytes", len(payload)-4-consumed)
			}
			return dataMsg{Seq: seq, Payload: inner}, nil
		},
		Sample: func(src *rng.Source) simnet.Message {
			// The nested payload samples transport.Raw so this package
			// stays below the protocols in the import order.
			inner := make(transport.Raw, src.Uint64n(16))
			for i := range inner {
				inner[i] = byte(src.Uint64())
			}
			return dataMsg{Seq: uint32(src.Uint64()), Payload: inner}
		},
	})
	transport.Register(transport.IDReliableAck, transport.Codec{
		Name:    "reliable.ackMsg",
		Version: 1,
		Type:    reflect.TypeOf(ackMsg{}),
		Encode: func(msg simnet.Message, buf []byte) []byte {
			return binary.BigEndian.AppendUint32(buf, msg.(ackMsg).Seq)
		},
		Decode: func(payload []byte) (simnet.Message, error) {
			if len(payload) != 4 {
				return nil, fmt.Errorf("ACK payload is %d bytes, want 4", len(payload))
			}
			return ackMsg{Seq: binary.BigEndian.Uint32(payload)}, nil
		},
		Sample: func(src *rng.Source) simnet.Message {
			return ackMsg{Seq: uint32(src.Uint64())}
		},
	})
}
