package reliable

import (
	"sync"
	"testing"
	"testing/quick"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/metrics"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// counterHandler counts deliveries of each payload value.
type counterHandler struct {
	mu   sync.Mutex
	got  map[int]int
	want int
	n    int
}

func (h *counterHandler) Init(ctx simnet.Context) {
	if ctx.ID() == 0 {
		for i := 0; i < h.want; i++ {
			ctx.Send(1, i)
		}
		ctx.Halt()
		return
	}
	if h.want == 0 {
		ctx.Halt()
	}
}

func (h *counterHandler) HandleMessage(ctx simnet.Context, from int, msg simnet.Message) {
	h.mu.Lock()
	if h.got == nil {
		h.got = map[int]int{}
	}
	h.got[msg.(int)]++
	done := len(h.got) == h.n
	h.mu.Unlock()
	if done {
		ctx.Halt()
	}
}

func TestExactlyOnceUnderHeavyLoss(t *testing.T) {
	const msgs = 100
	sender := &counterHandler{want: msgs}
	receiver := &counterHandler{n: msgs}
	eps := Wrap([]simnet.Handler{sender, receiver}, 5, 0)
	r := simnet.NewRunner(2, simnet.Options{
		Seed:    7,
		Drop:    simnet.UniformDrop(0.4),
		Latency: simnet.ExponentialLatency(2),
	})
	stats, err := r.Run(Handlers(eps))
	if err != nil {
		t.Fatal(err)
	}
	if len(receiver.got) != msgs {
		t.Fatalf("received %d distinct messages, want %d", len(receiver.got), msgs)
	}
	for v, c := range receiver.got {
		if c != 1 {
			t.Fatalf("message %d delivered %d times to the inner protocol", v, c)
		}
	}
	if TotalRetransmits(eps) == 0 {
		t.Fatal("40%% loss but zero retransmissions — loss model inert?")
	}
	if stats.Dropped == 0 {
		t.Fatal("no drops recorded")
	}
}

func TestNoLossNoRetransmitWithGenerousRTO(t *testing.T) {
	const msgs = 50
	sender := &counterHandler{want: msgs}
	receiver := &counterHandler{n: msgs}
	eps := Wrap([]simnet.Handler{sender, receiver}, 1000, 0)
	r := simnet.NewRunner(2, simnet.Options{Seed: 1})
	if _, err := r.Run(Handlers(eps)); err != nil {
		t.Fatal(err)
	}
	if got := TotalRetransmits(eps); got != 0 {
		t.Fatalf("lossless run retransmitted %d frames", got)
	}
	if got := TotalDuplicates(eps); got != 0 {
		t.Fatalf("lossless run saw %d duplicates", got)
	}
}

func TestSpuriousRetransmitsAreSuppressed(t *testing.T) {
	// An RTO far below the round trip forces spurious retransmissions;
	// the receiver must still deliver exactly once.
	const msgs = 30
	sender := &counterHandler{want: msgs}
	receiver := &counterHandler{n: msgs}
	eps := Wrap([]simnet.Handler{sender, receiver}, 0.1, 0)
	r := simnet.NewRunner(2, simnet.Options{Seed: 2, Latency: simnet.UniformLatency(5, 10)})
	if _, err := r.Run(Handlers(eps)); err != nil {
		t.Fatal(err)
	}
	for v, c := range receiver.got {
		if c != 1 {
			t.Fatalf("message %d delivered %d times", v, c)
		}
	}
	if TotalRetransmits(eps) == 0 {
		t.Fatal("expected spurious retransmissions with rto << rtt")
	}
	if TotalDuplicates(eps) == 0 {
		t.Fatal("expected suppressed duplicates")
	}
}

func TestMaxRetriesAbandons(t *testing.T) {
	// 100% of messages to node 1 dropped via a directional drop func;
	// with maxRetries=3 the sender abandons and still halts.
	sender := &counterHandler{want: 5}
	receiver := &counterHandler{n: 0} // halts immediately
	eps := Wrap([]simnet.Handler{sender, receiver}, 2, 3)
	r := simnet.NewRunner(2, simnet.Options{
		Seed: 3,
		Drop: func(from, to int, _ *rng.Source) bool { return to == 1 },
	})
	if _, err := r.Run(Handlers(eps)); err != nil {
		t.Fatal(err)
	}
	if eps[0].Abandoned() != 5 {
		t.Fatalf("abandoned = %d, want 5", eps[0].Abandoned())
	}
}

func TestBadRTOPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEndpoint(&counterHandler{}, 0, 0)
}

// lidOverLossySystem builds a workload and runs LID through reliable
// endpoints over a lossy network.
func lidOverLossy(tb testing.TB, seed uint64, n int, dropP float64) (*matching.Matching, *pref.System, []*Endpoint, simnet.Stats) {
	tb.Helper()
	src := rng.New(seed)
	g := gen.GNP(src, n, 0.35)
	sys, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(2))
	if err != nil {
		tb.Fatal(err)
	}
	tbl := satisfaction.NewTable(sys)
	nodes := lid.NewNodes(sys, tbl)
	eps := Wrap(lid.Handlers(nodes), 25, 0)
	r := simnet.NewRunner(g.NumNodes(), simnet.Options{
		Seed:    seed*2654435761 + 1,
		Drop:    simnet.UniformDrop(dropP),
		Latency: simnet.ExponentialLatency(3),
	})
	stats, err := r.Run(Handlers(eps))
	if err != nil {
		tb.Fatalf("LID over lossy network failed: %v", err)
	}
	m, err := lid.BuildMatching(nodes)
	if err != nil {
		tb.Fatal(err)
	}
	return m, sys, eps, stats
}

// TestLIDOverLossyEqualsLIC is the substrate's headline property: with
// the reliability layer underneath, LID on a lossy network still
// produces exactly the LIC matching (the paper's reliable-link
// assumption is restored).
func TestLIDOverLossyEqualsLIC(t *testing.T) {
	check := func(seed uint64, nRaw uint8, dropRaw uint8) bool {
		n := int(nRaw)%15 + 5
		dropP := float64(dropRaw%50) / 100.0
		m, sys, _, _ := lidOverLossy(t, seed, n, dropP)
		return m.Equal(matching.LIC(sys, satisfaction.NewTable(sys)))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPublishMetrics(t *testing.T) {
	_, _, eps, stats := lidOverLossy(t, 11, 20, 0.3)
	reg := metrics.New()
	PublishMetrics(reg, eps)
	PublishMetrics(nil, eps) // nil sink must be a no-op, not a panic

	counter := func(name string) int { return int(reg.Counter(name, "").Value()) }
	if counter("reliable_retransmits_total") != TotalRetransmits(eps) {
		t.Fatal("retransmit counter disagrees with endpoint view")
	}
	if counter("reliable_duplicates_total") != TotalDuplicates(eps) {
		t.Fatal("duplicate counter disagrees with endpoint view")
	}
	if counter("reliable_abandoned_total") != TotalAbandoned(eps) {
		t.Fatal("abandoned counter disagrees with endpoint view")
	}
	// Every DATA frame and every ACK the endpoints sent went through
	// simnet (drops happen after send), so the frame/ack totals must
	// equal the per-kind send counts.
	if counter("reliable_acks_total") != stats.SentByKind["ACK"] {
		t.Fatalf("acks: registry %d, simnet %d",
			counter("reliable_acks_total"), stats.SentByKind["ACK"])
	}
	wantFrames := stats.TotalSent() - stats.SentByKind["ACK"]
	if counter("reliable_frames_total") != wantFrames {
		t.Fatalf("frames: registry %d, simnet non-ack sends %d",
			counter("reliable_frames_total"), wantFrames)
	}
}

func TestLIDOverLossyRetransmissionCost(t *testing.T) {
	_, _, epsLossy, statsLossy := lidOverLossy(t, 9, 20, 0.3)
	_, _, epsClean, _ := lidOverLossy(t, 9, 20, 0.0)
	if TotalRetransmits(epsLossy) <= TotalRetransmits(epsClean) {
		t.Fatalf("lossy run should retransmit more: %d vs %d",
			TotalRetransmits(epsLossy), TotalRetransmits(epsClean))
	}
	if statsLossy.SentByKind["ACK"] == 0 {
		t.Fatal("no acks counted")
	}
	if statsLossy.SentByKind["PROP"] == 0 {
		t.Fatal("PROP kind lost through the wrapper")
	}
}
