// Package reliable implements the transport substrate the paper
// implicitly assumes: reliable delivery between neighbors. The paper's
// model (§5) takes lossless asynchronous links as given; real overlay
// links (UDP, unstable TCP peers) drop messages. This package restores
// the assumption on top of a lossy network with the classic
// positive-acknowledgment scheme:
//
//   - every protocol message is wrapped in a sequenced DATA frame;
//   - the receiver acks every DATA frame (including duplicates, since
//     the duplicate means the ack was lost);
//   - the sender retransmits unacked frames on a timer until acked;
//   - the receiver deduplicates by (sender, seq), so the inner
//     protocol sees exactly-once delivery.
//
// An Endpoint wraps any simnet.Handler; local termination is deferred
// until the inner protocol has halted AND every frame this endpoint
// sent has been acknowledged, so global quiescence still certifies
// protocol termination. Experiment E11 runs LID through Endpoints over
// 0–50% loss and checks the outcome still equals LIC.
package reliable

import (
	"fmt"

	"overlaymatch/internal/metrics"
	"overlaymatch/internal/simnet"
)

// dataMsg is a sequenced frame carrying one inner protocol message.
type dataMsg struct {
	Seq     uint32
	Payload simnet.Message
}

// Kind reports the payload's kind so per-kind statistics keep counting
// protocol messages (retransmissions included — that is the point).
func (m dataMsg) Kind() string { return simnet.KindOf(m.Payload) }

// ackMsg acknowledges one DATA frame.
type ackMsg struct {
	Seq uint32
}

// Kind implements simnet.Kinder.
func (ackMsg) Kind() string { return "ACK" }

// retransmitToken is the Endpoint's private timer token.
type retransmitToken struct {
	To  int
	Seq uint32
}

type frameKey struct {
	to  int
	seq uint32
}

// Endpoint wraps an inner protocol handler with reliable delivery.
type Endpoint struct {
	inner      simnet.Handler
	rto        float64
	maxRetries int // 0 = retry forever

	nextSeq   map[int]uint32
	unacked   map[frameKey]simnet.Message
	attempts  map[frameKey]int
	delivered map[int]map[uint32]bool

	innerHalted bool
	realHalted  bool
	abandoned   int // frames given up after maxRetries

	// Counters for the experiments.
	frames      int // DATA frames sent, retransmissions included
	acks        int // ACK frames sent
	retransmits int
	duplicates  int
	corrupted   int // frames discarded as corrupted (failed checksum)
}

// NewEndpoint wraps inner. rto is the retransmission timeout in
// virtual time units (must exceed the typical round trip to avoid
// spurious retransmissions; correctness does not depend on it).
// maxRetries bounds retransmissions per frame (0 = unlimited, the
// default the paper's model needs).
func NewEndpoint(inner simnet.Handler, rto float64, maxRetries int) *Endpoint {
	if rto <= 0 {
		panic("reliable: rto must be positive")
	}
	return &Endpoint{
		inner:      inner,
		rto:        rto,
		maxRetries: maxRetries,
		nextSeq:    make(map[int]uint32),
		unacked:    make(map[frameKey]simnet.Message),
		attempts:   make(map[frameKey]int),
		delivered:  make(map[int]map[uint32]bool),
	}
}

// Frames returns the number of DATA frames sent, retransmissions
// included.
func (e *Endpoint) Frames() int { return e.frames }

// Acks returns the number of ACK frames sent.
func (e *Endpoint) Acks() int { return e.acks }

// Retransmits returns the number of retransmitted frames.
func (e *Endpoint) Retransmits() int { return e.retransmits }

// Duplicates returns the number of duplicate frames suppressed.
func (e *Endpoint) Duplicates() int { return e.duplicates }

// Abandoned returns the number of frames dropped after maxRetries.
func (e *Endpoint) Abandoned() int { return e.abandoned }

// Corrupted returns the number of frames discarded with a failed
// checksum (simnet.Corrupted deliveries from a fault-injecting link
// policy). A corrupted DATA frame is recovered by the sender's
// retransmission; a corrupted ACK by the duplicate-ack rule.
func (e *Endpoint) Corrupted() int { return e.corrupted }

// relCtx is the context handed to the inner protocol: sends become
// sequenced frames, Halt is deferred until all frames are acked.
type relCtx struct {
	e   *Endpoint
	ctx simnet.Context
}

func (c *relCtx) ID() int       { return c.ctx.ID() }
func (c *relCtx) Time() float64 { return c.ctx.Time() }

func (c *relCtx) Send(to int, msg simnet.Message) {
	e := c.e
	seq := e.nextSeq[to]
	e.nextSeq[to] = seq + 1
	k := frameKey{to: to, seq: seq}
	e.unacked[k] = msg
	e.attempts[k] = 1
	e.frames++
	c.ctx.Send(to, dataMsg{Seq: seq, Payload: msg})
	simnet.SetTimerOn(c.ctx, e.rto, retransmitToken{To: to, Seq: seq})
}

func (c *relCtx) Halt() {
	c.e.innerHalted = true
	c.e.maybeHalt(c.ctx)
}

// SetTimer passes inner-protocol timers straight through.
func (c *relCtx) SetTimer(delay float64, msg simnet.Message) {
	simnet.SetTimerOn(c.ctx, delay, msg)
}

func (e *Endpoint) maybeHalt(ctx simnet.Context) {
	if e.innerHalted && len(e.unacked) == 0 && !e.realHalted {
		e.realHalted = true
		ctx.Halt()
	}
}

// Init implements simnet.Handler.
func (e *Endpoint) Init(ctx simnet.Context) {
	e.inner.Init(&relCtx{e: e, ctx: ctx})
	e.maybeHalt(ctx)
}

// HandleMessage implements simnet.Handler.
func (e *Endpoint) HandleMessage(ctx simnet.Context, from int, msg simnet.Message) {
	switch m := msg.(type) {
	case retransmitToken:
		if from != ctx.ID() {
			panic(fmt.Sprintf("reliable: retransmit token from foreign node %d", from))
		}
		k := frameKey{to: m.To, seq: m.Seq}
		payload, pending := e.unacked[k]
		if !pending {
			return // acked in the meantime
		}
		if e.maxRetries > 0 && e.attempts[k] > e.maxRetries {
			delete(e.unacked, k)
			delete(e.attempts, k)
			e.abandoned++
			e.maybeHalt(ctx)
			return
		}
		e.attempts[k]++
		e.retransmits++
		e.frames++
		ctx.Send(m.To, dataMsg{Seq: m.Seq, Payload: payload})
		simnet.SetTimerOn(ctx, e.rto, retransmitToken{To: m.To, Seq: m.Seq})
	case dataMsg:
		// Always ack: a duplicate means our previous ack was lost.
		e.acks++
		ctx.Send(from, ackMsg{Seq: m.Seq})
		seen := e.delivered[from]
		if seen == nil {
			seen = make(map[uint32]bool)
			e.delivered[from] = seen
		}
		if seen[m.Seq] {
			e.duplicates++
			return
		}
		seen[m.Seq] = true
		e.inner.HandleMessage(&relCtx{e: e, ctx: ctx}, from, m.Payload)
		e.maybeHalt(ctx)
	case ackMsg:
		delete(e.unacked, frameKey{to: from, seq: m.Seq})
		delete(e.attempts, frameKey{to: from, seq: m.Seq})
		e.maybeHalt(ctx)
	case simnet.Corrupted:
		// Failed checksum: discard the whole frame without looking
		// inside. If it was DATA the retransmission timer re-sends it;
		// if it was an ACK the duplicate DATA re-triggers one.
		e.corrupted++
	default:
		// Inner-protocol timer token or other self-delivery.
		e.inner.HandleMessage(&relCtx{e: e, ctx: ctx}, from, msg)
		e.maybeHalt(ctx)
	}
}

// Wrap builds one Endpoint per handler with shared parameters.
func Wrap(handlers []simnet.Handler, rto float64, maxRetries int) []*Endpoint {
	out := make([]*Endpoint, len(handlers))
	for i, h := range handlers {
		out[i] = NewEndpoint(h, rto, maxRetries)
	}
	return out
}

// Handlers converts endpoints to the simnet.Handler slice.
func Handlers(endpoints []*Endpoint) []simnet.Handler {
	out := make([]simnet.Handler, len(endpoints))
	for i, e := range endpoints {
		out[i] = e
	}
	return out
}

// TotalRetransmits sums retransmissions across endpoints.
func TotalRetransmits(endpoints []*Endpoint) int {
	total := 0
	for _, e := range endpoints {
		total += e.retransmits
	}
	return total
}

// TotalDuplicates sums suppressed duplicates across endpoints.
func TotalDuplicates(endpoints []*Endpoint) int {
	total := 0
	for _, e := range endpoints {
		total += e.duplicates
	}
	return total
}

// TotalAbandoned sums frames given up after maxRetries across
// endpoints.
func TotalAbandoned(endpoints []*Endpoint) int {
	total := 0
	for _, e := range endpoints {
		total += e.abandoned
	}
	return total
}

// TotalCorrupted sums checksum-discarded frames across endpoints.
func TotalCorrupted(endpoints []*Endpoint) int {
	total := 0
	for _, e := range endpoints {
		total += e.corrupted
	}
	return total
}

// PublishMetrics adds the transport totals of one finished run to reg.
// The per-endpoint int counters stay the source of truth for the
// experiments (single-threaded event runtime, no synchronization
// needed on the hot path); the registry view is for suite-level
// aggregation and the exporters. Nil-safe: a nil registry is a no-op.
func PublishMetrics(reg *metrics.Registry, endpoints []*Endpoint) {
	if reg == nil {
		return
	}
	reg.Counter("reliable_frames_total", "DATA frames sent, retransmissions included").
		Add(int64(sum(endpoints, (*Endpoint).Frames)))
	reg.Counter("reliable_acks_total", "ACK frames sent").
		Add(int64(sum(endpoints, (*Endpoint).Acks)))
	reg.Counter("reliable_retransmits_total", "frames retransmitted after RTO").
		Add(int64(TotalRetransmits(endpoints)))
	reg.Counter("reliable_duplicates_total", "duplicate frames suppressed by receivers").
		Add(int64(TotalDuplicates(endpoints)))
	reg.Counter("reliable_abandoned_total", "frames given up after maxRetries").
		Add(int64(TotalAbandoned(endpoints)))
	reg.Counter("reliable_corrupted_total", "frames discarded with a failed checksum").
		Add(int64(TotalCorrupted(endpoints)))
}

func sum(endpoints []*Endpoint, f func(*Endpoint) int) int {
	total := 0
	for _, e := range endpoints {
		total += f(e)
	}
	return total
}
