// Package reliable implements the transport substrate the paper
// implicitly assumes: reliable delivery between neighbors. The paper's
// model (§5) takes lossless asynchronous links as given; real overlay
// links (UDP, unstable TCP peers) drop messages. This package restores
// the assumption on top of a lossy network with the classic
// positive-acknowledgment scheme:
//
//   - every protocol message is wrapped in a sequenced DATA frame;
//   - the receiver acks every DATA frame (including duplicates, since
//     the duplicate means the ack was lost);
//   - the sender retransmits unacked frames on a timer until acked;
//   - the receiver deduplicates by (sender, seq), so the inner
//     protocol sees exactly-once delivery.
//
// An Endpoint wraps any simnet.Handler; local termination is deferred
// until the inner protocol has halted AND every frame this endpoint
// sent has been acknowledged, so global quiescence still certifies
// protocol termination. Experiment E11 runs LID through Endpoints over
// 0–50% loss and checks the outcome still equals LIC.
package reliable

import (
	"fmt"
	"sort"
	"strconv"

	"overlaymatch/internal/metrics"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/simnet"
)

// frameHeader is the nominal wire cost of the transport framing: an
// 8-byte header (seq, flags) plus the opcode byte.
const frameHeader = 9

// dataMsg is a sequenced frame carrying one inner protocol message.
type dataMsg struct {
	Seq     uint32
	Payload simnet.Message
}

// Kind reports the payload's kind so per-kind statistics keep counting
// protocol messages (retransmissions included — that is the point).
func (m dataMsg) Kind() string { return simnet.KindOf(m.Payload) }

// WireSize implements simnet.Sizer: framing plus the payload's own
// nominal size, so byte counters see the transport overhead.
func (m dataMsg) WireSize() int { return frameHeader + simnet.SizeOf(m.Payload) }

// ackMsg acknowledges one DATA frame.
type ackMsg struct {
	Seq uint32
}

// Kind implements simnet.Kinder.
func (ackMsg) Kind() string { return "ACK" }

// WireSize implements simnet.Sizer.
func (ackMsg) WireSize() int { return frameHeader }

// retransmitToken is the Endpoint's private timer token.
type retransmitToken struct {
	To  int
	Seq uint32
}

type frameKey struct {
	to  int
	seq uint32
}

// Config parameterizes an Endpoint beyond the classic static-RTO
// scheme. The zero value of the optional fields reproduces the
// original behavior exactly: a constant retransmission timeout with no
// backoff (the experiment goldens depend on it).
type Config struct {
	// RTO is the (initial) retransmission timeout in virtual time
	// units; must be positive.
	RTO float64
	// MaxRetries bounds retransmissions per frame (0 = unlimited).
	// When the budget is exhausted the frame is abandoned, counted
	// per-peer, and the first abandonment toward a peer escalates as
	// a LinkDown upcall to the inner handler (simnet.LinkDownHandler).
	MaxRetries int
	// Adaptive enables RFC-6298-style RTO estimation: SRTT/RTTVAR per
	// peer fed by acknowledged first transmissions (Karn's rule —
	// retransmitted frames never produce samples), plus exponential
	// backoff per retry, capped at MaxRTO. On a runtime without a
	// clock (Context.Time reporting 0) no samples accumulate and the
	// static RTO is used, still with backoff.
	Adaptive bool
	// MinRTO clamps the adaptive estimate from below (default 1).
	MinRTO float64
	// MaxRTO caps estimate and backoff (default 16×RTO).
	MaxRTO float64
}

func (c Config) minRTO() float64 {
	if c.MinRTO > 0 {
		return c.MinRTO
	}
	return 1
}

func (c Config) maxRTO() float64 {
	if c.MaxRTO > 0 {
		return c.MaxRTO
	}
	return 16 * c.RTO
}

// Endpoint wraps an inner protocol handler with reliable delivery.
type Endpoint struct {
	inner      simnet.Handler
	cfg        Config
	rto        float64
	maxRetries int // 0 = retry forever

	nextSeq   map[int]uint32
	unacked   map[frameKey]simnet.Message
	attempts  map[frameKey]int
	delivered map[int]map[uint32]bool

	// Adaptive-RTO state (RFC 6298), all per peer.
	sendTime map[frameKey]float64
	srtt     map[int]float64
	rttvar   map[int]float64

	// down marks peers that exhausted their retry budget; cleared on
	// the next arrival from the peer so a later loss burst can
	// escalate again.
	down map[int]bool

	// retxSpans tracks open telemetry spans per retransmit chain (first
	// retransmission opens one, ack or abandonment closes it). Allocated
	// lazily, so runs without a recorder never touch it.
	retxSpans map[frameKey]obs.SpanID

	innerHalted bool
	realHalted  bool
	abandoned   int // frames given up after maxRetries

	// Counters for the experiments.
	frames          int // DATA frames sent, retransmissions included
	acks            int // ACK frames sent
	retransmits     int
	duplicates      int
	corrupted       int // frames discarded as corrupted (failed checksum)
	linkDowns       int // down transitions escalated
	rttSamples      int // RTT samples accepted into the estimator
	abandonedByPeer map[int]int
}

// NewEndpoint wraps inner. rto is the retransmission timeout in
// virtual time units (must exceed the typical round trip to avoid
// spurious retransmissions; correctness does not depend on it).
// maxRetries bounds retransmissions per frame (0 = unlimited, the
// default the paper's model needs).
func NewEndpoint(inner simnet.Handler, rto float64, maxRetries int) *Endpoint {
	return NewEndpointConfig(inner, Config{RTO: rto, MaxRetries: maxRetries})
}

// NewEndpointConfig wraps inner with the full configuration.
func NewEndpointConfig(inner simnet.Handler, cfg Config) *Endpoint {
	if cfg.RTO <= 0 {
		panic("reliable: rto must be positive")
	}
	return &Endpoint{
		inner:           inner,
		cfg:             cfg,
		rto:             cfg.RTO,
		maxRetries:      cfg.MaxRetries,
		nextSeq:         make(map[int]uint32),
		unacked:         make(map[frameKey]simnet.Message),
		attempts:        make(map[frameKey]int),
		delivered:       make(map[int]map[uint32]bool),
		sendTime:        make(map[frameKey]float64),
		srtt:            make(map[int]float64),
		rttvar:          make(map[int]float64),
		down:            make(map[int]bool),
		abandonedByPeer: make(map[int]int),
	}
}

// Frames returns the number of DATA frames sent, retransmissions
// included.
func (e *Endpoint) Frames() int { return e.frames }

// Acks returns the number of ACK frames sent.
func (e *Endpoint) Acks() int { return e.acks }

// Retransmits returns the number of retransmitted frames.
func (e *Endpoint) Retransmits() int { return e.retransmits }

// Duplicates returns the number of duplicate frames suppressed.
func (e *Endpoint) Duplicates() int { return e.duplicates }

// Abandoned returns the number of frames dropped after maxRetries.
func (e *Endpoint) Abandoned() int { return e.abandoned }

// Corrupted returns the number of frames discarded with a failed
// checksum (simnet.Corrupted deliveries from a fault-injecting link
// policy). A corrupted DATA frame is recovered by the sender's
// retransmission; a corrupted ACK by the duplicate-ack rule.
func (e *Endpoint) Corrupted() int { return e.corrupted }

// LinkDowns returns the number of down transitions this endpoint
// escalated (at most one per silent stretch per peer).
func (e *Endpoint) LinkDowns() int { return e.linkDowns }

// RTTSamples returns how many RTT samples fed the adaptive estimator.
func (e *Endpoint) RTTSamples() int { return e.rttSamples }

// SRTT returns the smoothed round-trip estimate toward peer and
// whether any sample has been accepted.
func (e *Endpoint) SRTT(peer int) (float64, bool) {
	v, ok := e.srtt[peer]
	return v, ok
}

// AbandonedBy returns the frames abandoned toward each peer (only
// peers with at least one abandonment appear). The returned map is the
// endpoint's own bookkeeping; callers must not mutate it.
func (e *Endpoint) AbandonedBy() map[int]int { return e.abandonedByPeer }

// Down reports whether the endpoint currently considers the link to
// peer dead (retry budget exhausted, nothing heard since).
func (e *Endpoint) Down(peer int) bool { return e.down[peer] }

// rtoFor computes the timeout armed for the given transmission attempt
// (1 = first send). The static path is a constant — byte-identical to
// the original scheme; the adaptive path uses SRTT + 4·RTTVAR when
// samples exist, clamped to [MinRTO, MaxRTO], doubled per retry.
func (e *Endpoint) rtoFor(to, attempt int) float64 {
	if !e.cfg.Adaptive {
		return e.rto
	}
	base := e.rto
	if s, ok := e.srtt[to]; ok {
		base = s + 4*e.rttvar[to]
	}
	if min := e.cfg.minRTO(); base < min {
		base = min
	}
	max := e.cfg.maxRTO()
	for i := 1; i < attempt && base < max; i++ {
		base *= 2
	}
	if base > max {
		base = max
	}
	return base
}

// observeRTT feeds one sample into the RFC 6298 estimator.
func (e *Endpoint) observeRTT(peer int, sample float64) {
	if sample <= 0 {
		return // clockless runtime (or same-instant ack): no information
	}
	e.rttSamples++
	if _, ok := e.srtt[peer]; !ok {
		e.srtt[peer] = sample
		e.rttvar[peer] = sample / 2
		return
	}
	d := e.srtt[peer] - sample
	if d < 0 {
		d = -d
	}
	e.rttvar[peer] = 0.75*e.rttvar[peer] + 0.25*d
	e.srtt[peer] = 0.875*e.srtt[peer] + 0.125*sample
}

// relCtx is the context handed to the inner protocol: sends become
// sequenced frames, Halt is deferred until all frames are acked.
type relCtx struct {
	e   *Endpoint
	ctx simnet.Context
}

func (c *relCtx) ID() int       { return c.ctx.ID() }
func (c *relCtx) Time() float64 { return c.ctx.Time() }

// Observer forwards the runtime's telemetry recorder (the
// simnet.Observable capability) through the transport wrapper, so the
// inner protocol's spans land in the same causal log as the frames
// carrying them.
func (c *relCtx) Observer() *obs.Recorder { return simnet.ObserverOf(c.ctx) }

func (c *relCtx) Send(to int, msg simnet.Message) {
	e := c.e
	seq := e.nextSeq[to]
	e.nextSeq[to] = seq + 1
	k := frameKey{to: to, seq: seq}
	e.unacked[k] = msg
	e.attempts[k] = 1
	if e.cfg.Adaptive {
		e.sendTime[k] = c.ctx.Time()
	}
	e.frames++
	c.ctx.Send(to, dataMsg{Seq: seq, Payload: msg})
	simnet.SetTimerOn(c.ctx, e.rtoFor(to, 1), retransmitToken{To: to, Seq: seq})
}

func (c *relCtx) Halt() {
	c.e.innerHalted = true
	c.e.maybeHalt(c.ctx)
}

// SetTimer passes inner-protocol timers straight through.
func (c *relCtx) SetTimer(delay float64, msg simnet.Message) {
	simnet.SetTimerOn(c.ctx, delay, msg)
}

// retxOpen opens the retransmit-chain span for frame k on its first
// retransmission; later retries extend the same chain. No-op without a
// recorder on the runtime.
func (e *Endpoint) retxOpen(ctx simnet.Context, k frameKey) {
	rec := simnet.ObserverOf(ctx)
	if rec == nil {
		return
	}
	if _, open := e.retxSpans[k]; open {
		return
	}
	if e.retxSpans == nil {
		e.retxSpans = make(map[frameKey]obs.SpanID)
	}
	e.retxSpans[k] = rec.OpenSpan(ctx.ID(), "reliable.retx",
		fmt.Sprintf("to=%d seq=%d", k.to, k.seq), ctx.Time())
}

// retxClose ends frame k's retransmit chain (acked or abandoned), if
// one is open.
func (e *Endpoint) retxClose(ctx simnet.Context, k frameKey, outcome string) {
	id, open := e.retxSpans[k]
	if !open {
		return
	}
	delete(e.retxSpans, k)
	if rec := simnet.ObserverOf(ctx); rec != nil {
		rec.CloseSpan(ctx.ID(), id, outcome, ctx.Time())
	}
}

func (e *Endpoint) maybeHalt(ctx simnet.Context) {
	if e.innerHalted && len(e.unacked) == 0 && !e.realHalted {
		e.realHalted = true
		ctx.Halt()
	}
}

// Init implements simnet.Handler.
func (e *Endpoint) Init(ctx simnet.Context) {
	e.inner.Init(&relCtx{e: e, ctx: ctx})
	e.maybeHalt(ctx)
}

// HandleMessage implements simnet.Handler.
func (e *Endpoint) HandleMessage(ctx simnet.Context, from int, msg simnet.Message) {
	switch m := msg.(type) {
	case retransmitToken:
		if from != ctx.ID() {
			panic(fmt.Sprintf("reliable: retransmit token from foreign node %d", from))
		}
		k := frameKey{to: m.To, seq: m.Seq}
		payload, pending := e.unacked[k]
		if !pending {
			return // acked in the meantime
		}
		if e.maxRetries > 0 && e.attempts[k] > e.maxRetries {
			delete(e.unacked, k)
			delete(e.attempts, k)
			delete(e.sendTime, k)
			e.retxClose(ctx, k, "abandoned")
			e.abandoned++
			e.abandonedByPeer[m.To]++
			if !e.down[m.To] {
				// First abandonment of a silent stretch: escalate. The
				// upcall runs through relCtx so repairs the inner
				// protocol launches are themselves reliably framed.
				e.down[m.To] = true
				e.linkDowns++
				if lh, ok := e.inner.(simnet.LinkDownHandler); ok {
					lh.HandleLinkDown(&relCtx{e: e, ctx: ctx}, m.To)
				}
			}
			e.maybeHalt(ctx)
			return
		}
		e.retxOpen(ctx, k)
		e.attempts[k]++
		e.retransmits++
		e.frames++
		ctx.Send(m.To, dataMsg{Seq: m.Seq, Payload: payload})
		simnet.SetTimerOn(ctx, e.rtoFor(m.To, e.attempts[k]), retransmitToken{To: m.To, Seq: m.Seq})
	case dataMsg:
		delete(e.down, from) // the link is audibly alive again
		// Always ack: a duplicate means our previous ack was lost.
		e.acks++
		ctx.Send(from, ackMsg{Seq: m.Seq})
		seen := e.delivered[from]
		if seen == nil {
			seen = make(map[uint32]bool)
			e.delivered[from] = seen
		}
		if seen[m.Seq] {
			e.duplicates++
			return
		}
		seen[m.Seq] = true
		e.inner.HandleMessage(&relCtx{e: e, ctx: ctx}, from, m.Payload)
		e.maybeHalt(ctx)
	case ackMsg:
		delete(e.down, from)
		k := frameKey{to: from, seq: m.Seq}
		if e.cfg.Adaptive {
			// Karn's rule: only never-retransmitted frames produce RTT
			// samples (a retransmitted frame's ack is ambiguous).
			if e.attempts[k] == 1 {
				e.observeRTT(from, ctx.Time()-e.sendTime[k])
			}
			delete(e.sendTime, k)
		}
		delete(e.unacked, k)
		delete(e.attempts, k)
		e.retxClose(ctx, k, "acked")
		e.maybeHalt(ctx)
	case simnet.Corrupted:
		// Failed checksum: discard the whole frame without looking
		// inside. If it was DATA the retransmission timer re-sends it;
		// if it was an ACK the duplicate DATA re-triggers one.
		e.corrupted++
	default:
		// Inner-protocol timer token or other self-delivery.
		e.inner.HandleMessage(&relCtx{e: e, ctx: ctx}, from, msg)
		e.maybeHalt(ctx)
	}
}

// HandleSuspect implements simnet.SuspectHandler by forwarding the
// verdict to the inner handler (when it cares), wrapped in relCtx so
// any repair traffic it triggers is reliably framed. A failure
// detector stacked above the transport (detector.Monitor wrapping an
// Endpoint) therefore composes transparently.
func (e *Endpoint) HandleSuspect(ctx simnet.Context, peer int) {
	if sh, ok := e.inner.(simnet.SuspectHandler); ok {
		sh.HandleSuspect(&relCtx{e: e, ctx: ctx}, peer)
	}
}

// HandleRestore implements simnet.SuspectHandler; see HandleSuspect.
func (e *Endpoint) HandleRestore(ctx simnet.Context, peer int) {
	if sh, ok := e.inner.(simnet.SuspectHandler); ok {
		sh.HandleRestore(&relCtx{e: e, ctx: ctx}, peer)
	}
}

// Wrap builds one Endpoint per handler with shared parameters.
func Wrap(handlers []simnet.Handler, rto float64, maxRetries int) []*Endpoint {
	out := make([]*Endpoint, len(handlers))
	for i, h := range handlers {
		out[i] = NewEndpoint(h, rto, maxRetries)
	}
	return out
}

// WrapConfig builds one Endpoint per handler with a shared config.
func WrapConfig(handlers []simnet.Handler, cfg Config) []*Endpoint {
	out := make([]*Endpoint, len(handlers))
	for i, h := range handlers {
		out[i] = NewEndpointConfig(h, cfg)
	}
	return out
}

// Handlers converts endpoints to the simnet.Handler slice.
func Handlers(endpoints []*Endpoint) []simnet.Handler {
	out := make([]simnet.Handler, len(endpoints))
	for i, e := range endpoints {
		out[i] = e
	}
	return out
}

// TotalRetransmits sums retransmissions across endpoints.
func TotalRetransmits(endpoints []*Endpoint) int {
	total := 0
	for _, e := range endpoints {
		total += e.retransmits
	}
	return total
}

// TotalDuplicates sums suppressed duplicates across endpoints.
func TotalDuplicates(endpoints []*Endpoint) int {
	total := 0
	for _, e := range endpoints {
		total += e.duplicates
	}
	return total
}

// TotalAbandoned sums frames given up after maxRetries across
// endpoints.
func TotalAbandoned(endpoints []*Endpoint) int {
	total := 0
	for _, e := range endpoints {
		total += e.abandoned
	}
	return total
}

// TotalCorrupted sums checksum-discarded frames across endpoints.
func TotalCorrupted(endpoints []*Endpoint) int {
	total := 0
	for _, e := range endpoints {
		total += e.corrupted
	}
	return total
}

// TotalLinkDowns sums escalated down transitions across endpoints.
func TotalLinkDowns(endpoints []*Endpoint) int {
	total := 0
	for _, e := range endpoints {
		total += e.linkDowns
	}
	return total
}

// PublishMetrics adds the transport totals of one finished run to reg.
// The per-endpoint int counters stay the source of truth for the
// experiments (single-threaded event runtime, no synchronization
// needed on the hot path); the registry view is for suite-level
// aggregation and the exporters. Nil-safe: a nil registry is a no-op.
func PublishMetrics(reg *metrics.Registry, endpoints []*Endpoint) {
	if reg == nil {
		return
	}
	reg.Counter("reliable_frames_total", "DATA frames sent, retransmissions included").
		Add(int64(sum(endpoints, (*Endpoint).Frames)))
	reg.Counter("reliable_acks_total", "ACK frames sent").
		Add(int64(sum(endpoints, (*Endpoint).Acks)))
	reg.Counter("reliable_retransmits_total", "frames retransmitted after RTO").
		Add(int64(TotalRetransmits(endpoints)))
	reg.Counter("reliable_duplicates_total", "duplicate frames suppressed by receivers").
		Add(int64(TotalDuplicates(endpoints)))
	reg.Counter("reliable_abandoned_total", "frames given up after maxRetries").
		Add(int64(TotalAbandoned(endpoints)))
	reg.Counter("reliable_corrupted_total", "frames discarded with a failed checksum").
		Add(int64(TotalCorrupted(endpoints)))
	reg.Counter("reliable_linkdown_total", "link-death escalations after exhausted retries").
		Add(int64(TotalLinkDowns(endpoints)))
	reg.Counter("reliable_rtt_samples_total", "RTT samples accepted by the adaptive estimator").
		Add(int64(sum(endpoints, (*Endpoint).RTTSamples)))
	// Per-peer abandonment so a single dead link is visible instead of
	// dissolving into the global total (the silent-abandonment fix).
	byPeer := reg.Family("reliable_abandoned_by_peer", "frames given up, by destination peer", "peer")
	for _, e := range endpoints {
		peers := make([]int, 0, len(e.abandonedByPeer))
		for p := range e.abandonedByPeer {
			peers = append(peers, p)
		}
		sort.Ints(peers)
		for _, p := range peers {
			byPeer.With(strconv.Itoa(p)).Add(int64(e.abandonedByPeer[p]))
		}
	}
	// The final smoothed RTT estimates, one observation per (endpoint,
	// peer) with samples — the adaptive-RTO family's distribution view.
	srtt := reg.Histogram("reliable_srtt", "final smoothed RTT estimates per peer link",
		[]float64{1, 2, 5, 10, 20, 50, 100, 200, 500})
	for _, e := range endpoints {
		peers := make([]int, 0, len(e.srtt))
		for p := range e.srtt {
			peers = append(peers, p)
		}
		sort.Ints(peers)
		for _, p := range peers {
			srtt.Observe(e.srtt[p])
		}
	}
}

func sum(endpoints []*Endpoint, f func(*Endpoint) int) int {
	total := 0
	for _, e := range endpoints {
		total += f(e)
	}
	return total
}
