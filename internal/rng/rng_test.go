package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// TestStreamFrozen pins the first values of the seed-1 stream so that a
// behavioural change in the generator (which would silently change every
// experiment in the repository) fails loudly.
func TestStreamFrozen(t *testing.T) {
	s := New(1)
	want := []uint64{
		0x910a2dec89025cc1,
		0xbeeb8da1658eec67,
		0xf893a2eefb32555e,
		0x71c18690ee42c90b,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("seed-1 stream value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("consecutive Splits produced identical first values")
	}
	// Split must be deterministic: re-derive and compare.
	parent2 := New(7)
	d1 := parent2.Split()
	d1v := d1.Uint64()
	c1b := New(7).Split()
	if c1b.Uint64() != d1v {
		t.Fatal("Split is not deterministic")
	}
}

func TestUint64nRange(t *testing.T) {
	s := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 64, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(0).Uint64n(0)
}

func TestIntnUniformityChiSquare(t *testing.T) {
	// Coarse uniformity: chi-square over 10 buckets, 100k draws.
	// 99.9th percentile of chi2 with 9 dof is ~27.9.
	s := New(99)
	const buckets, draws = 10, 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.9 {
		t.Fatalf("chi-square = %.2f, suggests non-uniform Intn", chi2)
	}
}

func TestIntRange(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		v := s.IntRange(-5, 5)
		if v < -5 || v >= 5 {
			t.Fatalf("IntRange(-5,5) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(17)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		if len(p) != int(n) {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermShuffles(t *testing.T) {
	// With n=50 the identity permutation is essentially impossible.
	p := New(21).Perm(50)
	identity := true
	for i, v := range p {
		if v != i {
			identity = false
			break
		}
	}
	if identity {
		t.Fatal("Perm(50) returned the identity permutation")
	}
}

func TestSampleDistinctAndInRange(t *testing.T) {
	check := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%60 + 1
		k := int(kRaw) % (n + 1)
		out := New(seed).Sample(n, k)
		if len(out) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3, 4) did not panic")
		}
	}()
	New(0).Sample(3, 4)
}

func TestSampleFullRange(t *testing.T) {
	out := New(9).Sample(10, 10)
	seen := make([]bool, 10)
	for _, v := range out {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("Sample(10,10) missing value %d", i)
		}
	}
}

func TestWeightedIndex(t *testing.T) {
	s := New(23)
	weights := []float64{0, 1, 3, 0, 6}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.WeightedIndex(weights)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight indices selected: %v", counts)
	}
	// Expected proportions 0.1, 0.3, 0.6 within 2%.
	for i, want := range map[int]float64{1: 0.1, 2: 0.3, 4: 0.6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("index %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestWeightedIndexPanics(t *testing.T) {
	for name, w := range map[string][]float64{
		"negative": {1, -1},
		"allzero":  {0, 0},
		"empty":    {},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("WeightedIndex(%s) did not panic", name)
				}
			}()
			New(0).WeightedIndex(w)
		}()
	}
}

func TestShuffleSwapCoverage(t *testing.T) {
	s := New(31)
	vals := []string{"a", "b", "c", "d", "e", "f"}
	orig := append([]string(nil), vals...)
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	// Same multiset.
	seen := map[string]int{}
	for _, v := range vals {
		seen[v]++
	}
	for _, v := range orig {
		seen[v]--
	}
	for k, c := range seen {
		if c != 0 {
			t.Fatalf("Shuffle changed multiset: %s count off by %d", k, c)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(37)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	if got := float64(hits) / n; math.Abs(got-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency %v", got)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Intn(1000003)
	}
	_ = sink
}

func BenchmarkPerm1000(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Perm(1000)
	}
}
