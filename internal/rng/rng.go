// Package rng provides a small, deterministic, seedable pseudo-random
// number generator used throughout the repository.
//
// Experiments in this repository must be exactly reproducible across
// machines and Go versions. The standard library's math/rand does not
// guarantee a stable stream across Go releases for all helpers, and its
// global functions carry hidden state; this package instead implements
// splitmix64 (Steele, Lea, Flood; used as the seeding generator of
// xoshiro) with an explicit state value, plus the sampling helpers the
// generators and schedulers need. The stream for a given seed is frozen
// by the tests in rng_test.go.
package rng

import "math"

// Source is a deterministic pseudo-random number generator. The zero
// value is a valid generator seeded with 0. Source is not safe for
// concurrent use; give each goroutine its own Source (see Split).
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds yield streams
// that are, for all practical purposes, independent.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives a new, independent Source from s. The derived stream is
// a function of s's current state, so Split is itself deterministic:
// the n-th Split of a freshly seeded Source is always the same. Use it
// to hand private generators to concurrent workers.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next value of the splitmix64 stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Lemire's multiply-shift rejection method keeps the distribution exact.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits to avoid modulo bias.
	threshold := -n % n // = (2^64 - n) mod n
	for {
		v := s.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// IntRange returns a uniform int in [lo, hi). It panics if hi <= lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi <= lo {
		panic("rng: IntRange with hi <= lo")
	}
	return lo + s.Intn(hi-lo)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// NormFloat64 returns a standard normal variate via the polar
// (Marsaglia) method. Deterministic given the stream.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) as a fresh slice,
// using the Fisher–Yates shuffle.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles p in place.
func (s *Source) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the given swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct values drawn uniformly from [0, n) in
// selection order. It panics if k > n or k < 0. For small k relative to
// n it uses rejection from a set; otherwise a partial Fisher–Yates.
func (s *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample with k out of range")
	}
	if k == 0 {
		return nil
	}
	if k*4 <= n {
		// Sparse: rejection sampling.
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := s.Intn(n)
			if _, dup := seen[v]; !dup {
				seen[v] = struct{}{}
				out = append(out, v)
			}
		}
		return out
	}
	// Dense: partial shuffle.
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := s.IntRange(i, n)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k:k]
}

// WeightedIndex returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative with a
// positive sum; otherwise it panics.
func (s *Source) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: WeightedIndex with negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: WeightedIndex with non-positive total weight")
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1 // numeric slack: x accumulated to ~total
}
