// Package variants prototypes the two algorithmic directions the
// paper's conclusion (§7) calls out:
//
//   - "give minimum satisfaction guarantees individually to each
//     collaborating peer": CoverageFirst runs the greedy in two
//     phases — first a maximal weighted 1-matching (everyone's first
//     connection), then the residual quotas — so no peer is starved of
//     its first connection by a neighbor's third.
//   - "achieve a better approximation ratio": Improve is a local
//     search pass over any feasible matching (additions plus 1-for-1
//     swaps by the shared weight order) that strictly increases weight
//     until a local optimum; experiment E13 measures how much of the
//     LIC-to-OPT gap it closes.
//
// Both are centralized prototypes; distributing them is the same open
// problem the paper leaves. They reuse the exact machinery of package
// matching, so the ablation comparisons are apples to apples.
package variants

import (
	"sort"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
)

// CoverageFirst computes a two-phase greedy matching: phase 1 is the
// LIC scan with every quota clamped to 1 (a maximal weighted
// 1-matching — everyone who can be covered is covered before anyone
// gets a second connection); phase 2 continues the LIC scan with the
// remaining per-node capacities. The result is feasible for the
// original quotas and maximal.
func CoverageFirst(s *pref.System, tbl *satisfaction.Table) *matching.Matching {
	g := s.Graph()
	edges := sortedEdges(s, tbl)

	m := matching.New(g.NumNodes())
	// Phase 1: clamp quotas to min(1, bi).
	cap1 := make([]int, g.NumNodes())
	for i := range cap1 {
		if s.Quota(i) > 0 {
			cap1[i] = 1
		}
	}
	for _, e := range edges {
		if cap1[e.U] > 0 && cap1[e.V] > 0 {
			m.Add(e.U, e.V)
			cap1[e.U]--
			cap1[e.V]--
		}
	}
	// Phase 2: residual capacities, same scan order.
	capR := make([]int, g.NumNodes())
	for i := range capR {
		capR[i] = s.Quota(i) - m.DegreeOf(i)
	}
	for _, e := range edges {
		if !m.Has(e.U, e.V) && capR[e.U] > 0 && capR[e.V] > 0 {
			m.Add(e.U, e.V)
			capR[e.U]--
			capR[e.V]--
		}
	}
	return m
}

// sortedEdges returns the graph's edges in decreasing weight order.
func sortedEdges(s *pref.System, tbl *satisfaction.Table) []graph.Edge {
	edges := append([]graph.Edge(nil), s.Graph().Edges()...)
	sort.Slice(edges, func(a, b int) bool {
		return tbl.Key(edges[a].U, edges[a].V).Heavier(tbl.Key(edges[b].U, edges[b].V))
	})
	return edges
}

// ImproveStats reports what one Improve call did.
type ImproveStats struct {
	Additions     int
	Swaps         int
	Augmentations int // 2-for-1 moves
	Rounds        int
}

// Improve runs local search on a feasible matching until no improving
// move remains:
//
//   - addition: an unmatched edge whose endpoints both have free quota;
//   - 1-for-1 swap: replace a matched edge e by a strictly heavier
//     unmatched edge f that becomes feasible once e is removed (f and
//     e share at least one endpoint);
//   - 2-for-1 augmentation: replace a matched edge e = (a,b) by two
//     unmatched edges f at a and g at b whose combined weight exceeds
//     w(e) — the move that escapes the greedy's local optima (LIC is
//     provably stable under the first two moves alone, by Lemma 4).
//
// Every move strictly increases total weight, so the search
// terminates. The input matching is modified in place.
func Improve(s *pref.System, tbl *satisfaction.Table, m *matching.Matching) ImproveStats {
	edges := sortedEdges(s, tbl)
	var st ImproveStats
	for {
		st.Rounds++
		improved := false
		for _, f := range edges {
			if m.Has(f.U, f.V) {
				continue
			}
			uFree := m.DegreeOf(f.U) < s.Quota(f.U)
			vFree := m.DegreeOf(f.V) < s.Quota(f.V)
			if uFree && vFree {
				m.Add(f.U, f.V)
				st.Additions++
				improved = true
				continue
			}
			// Try a 1-for-1 swap: drop the lightest conflicting edge at
			// each saturated endpoint if f outweighs their sum... a
			// single-edge swap only: pick ONE saturated endpoint's
			// lightest edge e with w(f) > w(e); the other endpoint must
			// be free (otherwise removing one edge is not enough).
			if uFree != vFree {
				full := f.U
				if uFree {
					full = f.V
				}
				e := lightestAt(s, tbl, m, full)
				fk := tbl.Key(f.U, f.V)
				if fk.Heavier(tbl.Key(full, e)) {
					m.Remove(full, e)
					m.Add(f.U, f.V)
					st.Swaps++
					improved = true
				}
				continue
			}
			if !uFree && !vFree {
				// Double swap: both endpoints saturated; replace both
				// lightest edges if f is heavier than each AND the
				// total strictly increases.
				eu := lightestAt(s, tbl, m, f.U)
				ev := lightestAt(s, tbl, m, f.V)
				fk := tbl.Key(f.U, f.V)
				if (graph.Edge{U: f.U, V: eu}).Normalize() == (graph.Edge{U: f.V, V: ev}).Normalize() {
					// Same edge at both ends: removing it frees both.
					if fk.Heavier(tbl.Key(f.U, eu)) {
						m.Remove(f.U, eu)
						m.Add(f.U, f.V)
						st.Swaps++
						improved = true
					}
					continue
				}
				wf := satisfaction.EdgeWeight(s, graph.Edge{U: f.U, V: f.V}.Normalize())
				we := satisfaction.EdgeWeight(s, graph.Edge{U: f.U, V: eu}.Normalize()) +
					satisfaction.EdgeWeight(s, graph.Edge{U: f.V, V: ev}.Normalize())
				if wf > we {
					m.Remove(f.U, eu)
					m.Remove(f.V, ev)
					m.Add(f.U, f.V)
					st.Swaps++
					improved = true
				}
			}
		}
		if augment2for1(s, tbl, m, &st) {
			improved = true
		}
		if !improved {
			return st
		}
	}
}

// augment2for1 scans matched edges for a profitable 2-for-1
// replacement and applies the first found. Returns whether a move was
// applied.
func augment2for1(s *pref.System, tbl *satisfaction.Table, m *matching.Matching, st *ImproveStats) bool {
	for _, e := range m.Edges() {
		a, b := e.U, e.V
		we := satisfaction.EdgeWeight(s, e)
		// Candidate replacement edges at each endpoint: unmatched, the
		// far endpoint has free quota, and the far endpoint is not the
		// other end of e (that would re-add e). Keep the top two per
		// side to resolve shared-far-endpoint conflicts.
		candsA := topCandidates(s, tbl, m, a, b, 2)
		candsB := topCandidates(s, tbl, m, b, a, 2)
		for _, x := range candsA {
			for _, y := range candsB {
				if x == y && freeQuota(s, m, x) < 2 {
					continue
				}
				wf := satisfaction.EdgeWeight(s, (graph.Edge{U: a, V: x}).Normalize())
				wg := satisfaction.EdgeWeight(s, (graph.Edge{U: b, V: y}).Normalize())
				if wf+wg > we {
					m.Remove(a, b)
					m.Add(a, x)
					m.Add(b, y)
					st.Augmentations++
					return true
				}
			}
		}
	}
	return false
}

// topCandidates returns up to k heaviest unmatched neighbors x of node
// u with free quota, excluding the node `skip`.
func topCandidates(s *pref.System, tbl *satisfaction.Table, m *matching.Matching, u, skip graph.NodeID, k int) []graph.NodeID {
	var out []graph.NodeID
	for _, x := range tbl.SortedNeighbors(s, u) {
		if x == skip || m.Has(u, x) {
			continue
		}
		if freeQuota(s, m, x) == 0 {
			continue
		}
		out = append(out, x)
		if len(out) == k {
			break
		}
	}
	return out
}

func freeQuota(s *pref.System, m *matching.Matching, x graph.NodeID) int {
	return s.Quota(x) - m.DegreeOf(x)
}

// lightestAt returns x's lightest current connection.
func lightestAt(s *pref.System, tbl *satisfaction.Table, m *matching.Matching, x graph.NodeID) graph.NodeID {
	conns := m.Connections(x)
	lightest := conns[0]
	for _, v := range conns[1:] {
		if tbl.Key(x, lightest).Heavier(tbl.Key(x, v)) {
			lightest = v
		}
	}
	return lightest
}
