package variants

import (
	"testing"
	"testing/quick"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/stats"
)

func randomSystem(tb testing.TB, seed uint64, n int, p float64, b int) *pref.System {
	tb.Helper()
	src := rng.New(seed)
	g := gen.GNP(src, n, p)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(b))
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestCoverageFirstFeasibleAndMaximal(t *testing.T) {
	check := func(seed uint64, nRaw, bRaw uint8) bool {
		s := randomSystem(t, seed, int(nRaw)%15+5, 0.4, int(bRaw)%3+1)
		tbl := satisfaction.NewTable(s)
		m := CoverageFirst(s, tbl)
		if m.Validate(s) != nil {
			return false
		}
		for _, e := range s.Graph().Edges() {
			if m.Has(e.U, e.V) {
				continue
			}
			if m.DegreeOf(e.U) < s.Quota(e.U) && m.DegreeOf(e.V) < s.Quota(e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestCoverageFirstPhase1Maximal: zero-connection nodes must form an
// independent set even restricted to *phase-1* availability — i.e. an
// unmatched node cannot have an unmatched neighbor.
func TestCoverageFirstCoverageProperty(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		s := randomSystem(t, seed, 20, 0.4, 3)
		tbl := satisfaction.NewTable(s)
		m := CoverageFirst(s, tbl)
		for _, e := range s.Graph().Edges() {
			if m.DegreeOf(e.U) == 0 && m.DegreeOf(e.V) == 0 {
				t.Fatalf("seed %d: both %d and %d unmatched with an edge between them", seed, e.U, e.V)
			}
		}
	}
}

// TestCoverageFirstHelpsWorstOff: across many instances, the number of
// peers left with zero connections never exceeds plain LIC's and the
// worst-off satisfaction is at least as good on aggregate.
func TestCoverageFirstHelpsWorstOff(t *testing.T) {
	var covZero, licZero int
	var covMinSum, licMinSum float64
	for seed := uint64(0); seed < 40; seed++ {
		s := randomSystem(t, seed, 30, 0.2, 3)
		tbl := satisfaction.NewTable(s)
		cov := CoverageFirst(s, tbl)
		lic := matching.LIC(s, tbl)
		for i := 0; i < 30; i++ {
			if s.Graph().Degree(i) == 0 {
				continue
			}
			if cov.DegreeOf(i) == 0 {
				covZero++
			}
			if lic.DegreeOf(i) == 0 {
				licZero++
			}
		}
		covMinSum += stats.Min(cov.PerNodeSatisfaction(s))
		licMinSum += stats.Min(lic.PerNodeSatisfaction(s))
	}
	if covZero > licZero {
		t.Fatalf("coverage-first starved more peers (%d) than LIC (%d)", covZero, licZero)
	}
	t.Logf("zero-connection peers: coverage-first %d vs LIC %d; min-sat sums %.3f vs %.3f",
		covZero, licZero, covMinSum, licMinSum)
}

func TestImproveNeverDecreasesWeightAndStaysFeasible(t *testing.T) {
	check := func(seed uint64, nRaw, bRaw uint8) bool {
		s := randomSystem(t, seed, int(nRaw)%15+5, 0.4, int(bRaw)%3+1)
		tbl := satisfaction.NewTable(s)
		// Start from a deliberately bad matching: random maximal.
		m := matching.RandomMaximal(s, rng.New(seed^0xabc))
		before := m.Weight(s)
		Improve(s, tbl, m)
		if m.Validate(s) != nil {
			return false
		}
		return m.Weight(s) >= before-1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestImproveReachesLocalOptimum(t *testing.T) {
	// After Improve, a second Improve must find nothing.
	s := randomSystem(t, 5, 18, 0.4, 2)
	tbl := satisfaction.NewTable(s)
	m := matching.RandomMaximal(s, rng.New(77))
	Improve(s, tbl, m)
	st := Improve(s, tbl, m)
	if st.Additions != 0 || st.Swaps != 0 {
		t.Fatalf("second Improve still found moves: %+v", st)
	}
}

// TestImproveClosesGapTowardOptimum: on oracle-sized instances the
// improved LIC matching must be at least as close to OPT as plain LIC,
// and strictly closer summed across instances (otherwise the variant
// is pointless).
func TestImproveClosesGapTowardOptimum(t *testing.T) {
	var licSum, impSum, optSum float64
	for seed := uint64(0); seed < 40; seed++ {
		s := randomSystem(t, seed, 10, 0.4, 2)
		if s.Graph().NumEdges() > matching.MaxOracleEdges || s.Graph().NumEdges() == 0 {
			continue
		}
		tbl := satisfaction.NewTable(s)
		lic := matching.LIC(s, tbl)
		licW := lic.Weight(s)
		imp := lic.Clone()
		Improve(s, tbl, imp)
		impW := imp.Weight(s)
		if impW < licW-1e-12 {
			t.Fatalf("seed %d: Improve reduced weight", seed)
		}
		_, optW, err := matching.MaxWeightBMatching(s, tbl)
		if err != nil {
			t.Fatal(err)
		}
		licSum += licW
		impSum += impW
		optSum += optW
	}
	t.Logf("aggregate weights: LIC %.4f, LIC+Improve %.4f, OPT %.4f", licSum, impSum, optSum)
	if impSum < licSum {
		t.Fatal("improvement pass lost weight in aggregate")
	}
	if impSum > optSum+1e-9 {
		t.Fatal("improved matching exceeds the optimum — oracle or search is broken")
	}
}

// TestImproveFromEmpty: starting from the empty matching, local search
// alone must reach a maximal matching (additions suffice).
func TestImproveFromEmpty(t *testing.T) {
	s := randomSystem(t, 9, 15, 0.5, 2)
	tbl := satisfaction.NewTable(s)
	m := matching.New(15)
	st := Improve(s, tbl, m)
	if st.Additions == 0 {
		t.Fatal("no additions from empty")
	}
	for _, e := range s.Graph().Edges() {
		if m.Has(e.U, e.V) {
			continue
		}
		if m.DegreeOf(e.U) < s.Quota(e.U) && m.DegreeOf(e.V) < s.Quota(e.V) {
			t.Fatal("not maximal after Improve")
		}
	}
}

func TestCoverageFirstEqualsLICWhenQuotaOne(t *testing.T) {
	// With b=1 the two phases collapse and CoverageFirst must equal LIC.
	for seed := uint64(0); seed < 20; seed++ {
		s := randomSystem(t, seed, 16, 0.4, 1)
		tbl := satisfaction.NewTable(s)
		if !CoverageFirst(s, tbl).Equal(matching.LIC(s, tbl)) {
			t.Fatalf("seed %d: b=1 coverage-first differs from LIC", seed)
		}
	}
}
