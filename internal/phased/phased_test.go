package phased

import (
	"testing"
	"testing/quick"
	"time"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/variants"
)

func randomSystem(tb testing.TB, seed uint64, n int, p float64, b int) *pref.System {
	tb.Helper()
	src := rng.New(seed)
	g := gen.GNP(src, n, p)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(b))
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// TestEqualsCentralizedCoverageFirst is the package's headline
// property: the distributed two-phase protocol must produce exactly
// the variants.CoverageFirst matching under any interleaving.
func TestEqualsCentralizedCoverageFirst(t *testing.T) {
	check := func(seed uint64, nRaw, bRaw uint8, latSeed uint64) bool {
		s := randomSystem(t, seed, int(nRaw)%20+3, 0.4, int(bRaw)%3+1)
		tbl := satisfaction.NewTable(s)
		m, _, err := Run(s, tbl, simnet.Options{
			Seed:    latSeed,
			Latency: simnet.ExponentialLatency(5),
		})
		if err != nil {
			return false
		}
		return m.Equal(variants.CoverageFirst(s, tbl))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFeasibleAndValidates(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		s := randomSystem(t, seed, 25, 0.3, 3)
		tbl := satisfaction.NewTable(s)
		m, stats, err := Run(s, tbl, simnet.Options{Seed: seed, Latency: simnet.ExponentialLatency(2)})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(s); err != nil {
			t.Fatal(err)
		}
		// Two phases can at most double the message budget: ≤ 4m.
		if stats.TotalSent() > 4*s.Graph().NumEdges() {
			t.Fatalf("seed %d: %d messages for %d edges", seed, stats.TotalSent(), s.Graph().NumEdges())
		}
	}
}

// TestCoverageBeatsPlainLIDOnStarvation reconstructs the scenario the
// variant exists for: a popular hub whose heavy edges eat its quota in
// plain LID while a fringe peer starves.
func TestCoverageAggregate(t *testing.T) {
	// Aggregate over seeds: the two-phase protocol never leaves more
	// zero-connection peers than plain LID.
	var phasedZero, lidZero int
	for seed := uint64(0); seed < 30; seed++ {
		s := randomSystem(t, seed, 30, 0.2, 3)
		tbl := satisfaction.NewTable(s)
		m, _, err := Run(s, tbl, simnet.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		lic := matching.LIC(s, tbl)
		for i := 0; i < 30; i++ {
			if s.Graph().Degree(i) == 0 {
				continue
			}
			if m.DegreeOf(i) == 0 {
				phasedZero++
			}
			if lic.DegreeOf(i) == 0 {
				lidZero++
			}
		}
	}
	if phasedZero > lidZero {
		t.Fatalf("two-phase protocol starved more peers (%d) than plain LID (%d)", phasedZero, lidZero)
	}
	t.Logf("zero-connection peers: phased %d vs plain LID %d", phasedZero, lidZero)
}

func TestQuotaOneCollapsesToLID(t *testing.T) {
	// With b=1 both phases collapse into plain LID (phase 2 has zero
	// residual work) and the outcome must equal LIC.
	for seed := uint64(0); seed < 15; seed++ {
		s := randomSystem(t, seed, 18, 0.4, 1)
		tbl := satisfaction.NewTable(s)
		m, _, err := Run(s, tbl, simnet.Options{Seed: seed, Latency: simnet.ExponentialLatency(3)})
		if err != nil {
			t.Fatal(err)
		}
		if !m.Equal(matching.LIC(s, tbl)) {
			t.Fatalf("seed %d: b=1 phased != LIC", seed)
		}
	}
}

func TestInterleavingInvariance(t *testing.T) {
	s := randomSystem(t, 77, 22, 0.4, 3)
	tbl := satisfaction.NewTable(s)
	want := variants.CoverageFirst(s, tbl)
	for latSeed := uint64(0); latSeed < 20; latSeed++ {
		m, _, err := Run(s, tbl, simnet.Options{Seed: latSeed, Latency: simnet.ExponentialLatency(8)})
		if err != nil {
			t.Fatal(err)
		}
		if !m.Equal(want) {
			t.Fatalf("latSeed %d: matching differs", latSeed)
		}
	}
}

func TestForeignMessagePanics(t *testing.T) {
	s := randomSystem(t, 1, 5, 1.0, 1)
	tbl := satisfaction.NewTable(s)
	nd := NewNode(s, tbl, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	nd.HandleMessage(noopCtx{}, 1, "garbage")
}

type noopCtx struct{}

func (noopCtx) ID() int                  { return 0 }
func (noopCtx) Send(int, simnet.Message) {}
func (noopCtx) Halt()                    {}
func (noopCtx) Time() float64            { return 0 }

func TestGoroutineRuntime(t *testing.T) {
	// The two-phase protocol uses only Send/Halt, so it also runs on
	// the real concurrent runtime; the outcome must still equal the
	// centralized coverage-first matching.
	for seed := uint64(0); seed < 8; seed++ {
		s := randomSystem(t, seed, 25, 0.3, 2)
		tbl := satisfaction.NewTable(s)
		nodes := NewNodes(s, tbl)
		runner := simnet.NewGoRunner(s.Graph().NumNodes(), 20*time.Second)
		if _, err := runner.Run(Handlers(nodes)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m := matching.New(s.Graph().NumNodes())
		for _, nd := range nodes {
			for _, v := range nd.Connections() {
				if nd.id < v {
					m.Add(nd.id, v)
				}
			}
		}
		if !m.Equal(variants.CoverageFirst(s, tbl)) {
			t.Fatalf("seed %d: goroutine phased != centralized coverage-first", seed)
		}
	}
}
