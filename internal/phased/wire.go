package phased

import (
	"fmt"
	"reflect"

	"overlaymatch/internal/lid"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/transport"
)

// Wire codec for the phase-tagged LID message (package transport):
// one phase byte (1 or 2) followed by the inner LID opcode byte.
func init() {
	transport.Register(transport.IDPhasedMsg, transport.Codec{
		Name:    "phased.Msg",
		Version: 1,
		Type:    reflect.TypeOf(Msg{}),
		Encode: func(msg simnet.Message, buf []byte) []byte {
			m := msg.(Msg)
			op := byte(0)
			if m.Inner.IsProp {
				op = 1
			}
			return append(buf, m.Phase, op)
		},
		Decode: func(payload []byte) (simnet.Message, error) {
			if len(payload) != 2 {
				return nil, fmt.Errorf("phased payload is %d bytes, want 2", len(payload))
			}
			if payload[0] != 1 && payload[0] != 2 {
				return nil, fmt.Errorf("phased phase %d is not 1 or 2", payload[0])
			}
			if payload[1] > 1 {
				return nil, fmt.Errorf("phased opcode %#02x is not 0 or 1", payload[1])
			}
			return Msg{Phase: payload[0], Inner: lid.Msg{IsProp: payload[1] == 1}}, nil
		},
		Sample: func(src *rng.Source) simnet.Message {
			return Msg{
				Phase: byte(1 + src.Uint64n(2)),
				Inner: lid.Msg{IsProp: src.Uint64n(2) == 1},
			}
		},
	})
}
