// Package phased implements the distributed coverage-first protocol —
// the fully distributed counterpart of variants.CoverageFirst and the
// protocol-level answer to §7's "minimum satisfaction guarantees
// individually to each collaborating peer".
//
// The idea: run LID twice. Phase 1 clamps every quota to 1, so the
// network first negotiates a maximal weighted 1-matching — everyone's
// *first* connection — before anyone spends capacity on a second.
// Phase 2 then runs LID on the residual instance (remaining quota,
// phase-1 partner excluded).
//
// There is no global barrier: each peer switches to phase 2 the moment
// its own phase-1 protocol terminates locally, tagging messages with
// their phase and buffering phase-2 messages that arrive early. Since
// LID's outcome is interleaving-invariant (Lemmas 3–6), deferred
// delivery cannot change either phase's result, so the union of the
// two phases equals the centralized variants.CoverageFirst matching
// exactly — the equivalence test drives both and compares.
package phased

import (
	"fmt"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// Msg tags a LID message with its phase.
type Msg struct {
	Phase uint8
	Inner lid.Msg
}

// Kind implements simnet.Kinder, e.g. "P1-PROP".
func (m Msg) Kind() string {
	return fmt.Sprintf("P%d-%s", m.Phase, m.Inner.Kind())
}

// Node runs the two-phase protocol for one peer.
type Node struct {
	s   *pref.System
	tbl *satisfaction.Table
	id  graph.NodeID

	phase  uint8
	p1, p2 *lid.Node
	buffer []buffered
	halted bool
}

type buffered struct {
	from int
	msg  lid.Msg
}

// NewNode builds the two-phase peer.
func NewNode(s *pref.System, tbl *satisfaction.Table, id graph.NodeID) *Node {
	return &Node{s: s, tbl: tbl, id: id, phase: 1}
}

// NewNodes builds one Node per graph node.
func NewNodes(s *pref.System, tbl *satisfaction.Table) []*Node {
	nodes := make([]*Node, s.Graph().NumNodes())
	for id := range nodes {
		nodes[id] = NewNode(s, tbl, id)
	}
	return nodes
}

// Handlers adapts nodes for the simnet runtimes.
func Handlers(nodes []*Node) []simnet.Handler {
	hs := make([]simnet.Handler, len(nodes))
	for i, n := range nodes {
		hs[i] = n
	}
	return hs
}

// phaseCtx tags outgoing messages and suppresses the inner Halt (the
// wrapper owns termination).
type phaseCtx struct {
	simnet.Context
	phase uint8
}

func (c *phaseCtx) Send(to int, msg simnet.Message) {
	c.Context.Send(to, Msg{Phase: c.phase, Inner: msg.(lid.Msg)})
}

func (c *phaseCtx) Halt() {}

// Init implements simnet.Handler.
func (n *Node) Init(ctx simnet.Context) {
	q1 := n.s.Quota(n.id)
	if q1 > 1 {
		q1 = 1
	}
	n.p1 = lid.NewNodeRestricted(n.s, n.tbl, n.id, q1, nil)
	n.p1.Init(&phaseCtx{Context: ctx, phase: 1})
	n.maybeTransition(ctx)
}

// HandleMessage implements simnet.Handler.
func (n *Node) HandleMessage(ctx simnet.Context, from int, msg simnet.Message) {
	m, ok := msg.(Msg)
	if !ok {
		panic(fmt.Sprintf("phased: node %d received %T", n.id, msg))
	}
	switch m.Phase {
	case 1:
		// Phase-1 messages are always delivered to the phase-1 machine:
		// even after its local termination it can legally receive
		// crossing PROPs/REJs, which it absorbs.
		n.p1.HandleMessage(&phaseCtx{Context: ctx, phase: 1}, from, m.Inner)
		n.maybeTransition(ctx)
	case 2:
		if n.phase == 1 {
			// Our phase 1 is still running; the sender's is done. Defer.
			n.buffer = append(n.buffer, buffered{from: from, msg: m.Inner})
			return
		}
		n.p2.HandleMessage(&phaseCtx{Context: ctx, phase: 2}, from, m.Inner)
		n.checkDone(ctx)
	default:
		panic(fmt.Sprintf("phased: node %d received phase %d", n.id, m.Phase))
	}
}

// maybeTransition starts phase 2 once phase 1 has locally terminated.
func (n *Node) maybeTransition(ctx simnet.Context) {
	if n.phase != 1 || !n.p1.Halted() {
		return
	}
	n.phase = 2
	firstConns := n.p1.Locked()
	exclude := make(map[graph.NodeID]bool, len(firstConns))
	for _, v := range firstConns {
		exclude[v] = true
	}
	q2 := n.s.Quota(n.id) - len(firstConns)
	n.p2 = lid.NewNodeRestricted(n.s, n.tbl, n.id, q2, exclude)
	p2ctx := &phaseCtx{Context: ctx, phase: 2}
	n.p2.Init(p2ctx)
	for _, b := range n.buffer {
		n.p2.HandleMessage(p2ctx, b.from, b.msg)
	}
	n.buffer = nil
	n.checkDone(ctx)
}

func (n *Node) checkDone(ctx simnet.Context) {
	if n.phase == 2 && n.p2.Halted() && !n.halted {
		n.halted = true
		ctx.Halt()
	}
}

// Halted reports local termination of both phases.
func (n *Node) Halted() bool { return n.halted }

// Connections returns the union of both phases' locked sets.
func (n *Node) Connections() []graph.NodeID {
	out := append([]graph.NodeID(nil), n.p1.Locked()...)
	return append(out, n.p2.Locked()...)
}

// Run executes the two-phase protocol on the event simulator and
// returns the combined matching plus run statistics.
func Run(s *pref.System, tbl *satisfaction.Table, opts simnet.Options) (*matching.Matching, simnet.Stats, error) {
	nodes := NewNodes(s, tbl)
	runner := simnet.NewRunner(s.Graph().NumNodes(), opts)
	stats, err := runner.Run(Handlers(nodes))
	if err != nil {
		return nil, stats, err
	}
	m := matching.New(s.Graph().NumNodes())
	for _, nd := range nodes {
		for _, v := range nd.Connections() {
			if nd.id < v {
				m.Add(nd.id, v)
			}
		}
	}
	// Symmetry check across both phases.
	for _, nd := range nodes {
		if len(nd.Connections()) != m.DegreeOf(nd.id) {
			return nil, stats, fmt.Errorf("phased: asymmetric connections at node %d", nd.id)
		}
	}
	return m, stats, nil
}
