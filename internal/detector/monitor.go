package detector

import (
	"fmt"
	"sort"

	"overlaymatch/internal/metrics"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/simnet"
)

// hbMsg is a heartbeat ping.
type hbMsg struct{}

// Kind implements simnet.Kinder.
func (hbMsg) Kind() string { return "HB" }

// WireSize implements simnet.Sizer: an 8-byte header plus opcode.
func (hbMsg) WireSize() int { return 9 }

// hbAckMsg answers a heartbeat.
type hbAckMsg struct{}

// Kind implements simnet.Kinder.
func (hbAckMsg) Kind() string { return "HB-ACK" }

// WireSize implements simnet.Sizer.
func (hbAckMsg) WireSize() int { return 9 }

// tickToken is the Monitor's private timer token.
type tickToken struct{}

// bootstrapTicks is the fixed suspicion threshold (in heartbeat ticks)
// used before MinSamples inter-arrival samples have accumulated.
const bootstrapTicks = 4

// SuspectEvent records one verdict transition, for the detection
// latency and accuracy measurements of experiment E16.
type SuspectEvent struct {
	Peer    int
	Tick    int     // monitor tick at the verdict
	Time    float64 // virtual time (0 on the goroutine runtime)
	Restore bool    // false = suspect, true = restore
}

// peerView is the monitor's local evidence about one neighbor.
type peerView struct {
	est        *Estimator
	lastHeard  int // tick of the last arrival of any kind
	lastSample int // tick of the last sampled (HB/HB-ACK) arrival
	suspected  bool
	span       obs.SpanID // telemetry: the open suspicion->restore arc
}

// Monitor wraps an inner handler with heartbeat failure detection of a
// fixed neighbor set. It composes like reliable.Endpoint: heartbeats
// travel as raw simnet messages beside the inner protocol's traffic,
// every arriving message counts as evidence of life, and verdicts are
// delivered through the simnet.SuspectHandler upcall when the inner
// handler implements it (counted either way).
type Monitor struct {
	inner simnet.Handler
	cfg   Config
	order []int // monitored neighbors, ascending
	peers map[int]*peerView
	tick  int

	// Counters for the experiments.
	Heartbeats int // HB pings sent
	AcksSent   int // HB-ACK replies sent
	Suspicions int
	Restores   int
	// Events is the verdict transition log in delivery order.
	Events []SuspectEvent
}

// NewMonitor wraps inner, monitoring the given neighbors. The config
// must be enabled (use the raw handler instead of a disabled monitor —
// the zero-config hook guarantee is "no Monitor, no change").
func NewMonitor(inner simnet.Handler, neighbors []int, cfg Config) *Monitor {
	if !cfg.Enabled() {
		panic("detector: NewMonitor with a disabled config")
	}
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("detector: %v", err))
	}
	order := append([]int(nil), neighbors...)
	sort.Ints(order)
	peers := make(map[int]*peerView, len(order))
	for _, p := range order {
		peers[p] = &peerView{est: NewEstimator(cfg.window(), cfg.floor())}
	}
	return &Monitor{inner: inner, cfg: cfg, order: order, peers: peers}
}

// Init implements simnet.Handler.
func (m *Monitor) Init(ctx simnet.Context) {
	if len(m.order) > 0 {
		simnet.SetTimerOn(ctx, m.cfg.interval(), tickToken{})
	}
	m.inner.Init(ctx)
}

// HandleMessage implements simnet.Handler.
func (m *Monitor) HandleMessage(ctx simnet.Context, from int, msg simnet.Message) {
	switch msg.(type) {
	case tickToken:
		if from != ctx.ID() {
			panic(fmt.Sprintf("detector: tick token from foreign node %d", from))
		}
		m.onTick(ctx)
		return
	case hbMsg:
		m.evidence(ctx, from, true)
		m.AcksSent++
		ctx.Send(from, hbAckMsg{})
		return
	case hbAckMsg:
		m.evidence(ctx, from, true)
		return
	}
	if from != ctx.ID() {
		// Protocol traffic is as good a liveness proof as a heartbeat,
		// but only HB/HB-ACK arrivals feed the gap estimator: protocol
		// bursts would otherwise drive the estimated gap toward zero
		// and turn routine silence into suspicion.
		m.evidence(ctx, from, false)
	}
	m.inner.HandleMessage(ctx, from, msg)
}

// evidence records an arrival from peer, restoring it first if it was
// suspected (the upcall precedes the delivery that revived the peer).
func (m *Monitor) evidence(ctx simnet.Context, peer int, sample bool) {
	pv, ok := m.peers[peer]
	if !ok {
		return // not monitored (e.g. a corrupted frame's forged sender)
	}
	if pv.suspected {
		pv.suspected = false
		m.Restores++
		m.Events = append(m.Events, SuspectEvent{Peer: peer, Tick: m.tick, Time: ctx.Time(), Restore: true})
		// Telemetry: the restore closes the suspicion arc.
		if rec := simnet.ObserverOf(ctx); rec != nil {
			rec.CloseSpan(ctx.ID(), pv.span, "restored", ctx.Time())
			pv.span = 0
		}
		// The gap that just ended spans the whole outage; feeding it to
		// the estimator would poison the window, so only re-anchor.
		pv.lastSample = m.tick
		if sh, ok := m.inner.(simnet.SuspectHandler); ok {
			sh.HandleRestore(ctx, peer)
		}
	} else if sample {
		pv.est.Observe(float64(m.tick - pv.lastSample))
		pv.lastSample = m.tick
	}
	pv.lastHeard = m.tick
}

// onTick evaluates suspicion for every monitored peer, then pings them
// all (suspected peers included — the probe is how recovery is
// noticed), then schedules the next tick while budget remains.
func (m *Monitor) onTick(ctx simnet.Context) {
	m.tick++
	for _, p := range m.order {
		pv := m.peers[p]
		if !pv.suspected {
			elapsed := float64(m.tick - pv.lastHeard)
			threshold := float64(bootstrapTicks)
			if pv.est.Count() >= m.cfg.minSamples() {
				threshold = pv.est.Threshold(m.cfg.phi())
			}
			if elapsed > threshold {
				pv.suspected = true
				m.Suspicions++
				m.Events = append(m.Events, SuspectEvent{Peer: p, Tick: m.tick, Time: ctx.Time()})
				// Telemetry: a suspicion opens an arc that the next
				// evidence from the peer (restore) closes; arcs still
				// open at run end mark unrecovered peers.
				if rec := simnet.ObserverOf(ctx); rec != nil {
					pv.span = rec.OpenSpan(ctx.ID(), "detector.suspicion", fmt.Sprintf("peer=%d", p), ctx.Time())
				}
				if sh, ok := m.inner.(simnet.SuspectHandler); ok {
					sh.HandleSuspect(ctx, p)
				}
			}
		}
		m.Heartbeats++
		ctx.Send(p, hbMsg{})
	}
	if m.tick < m.cfg.ticks() {
		simnet.SetTimerOn(ctx, m.cfg.interval(), tickToken{})
	}
}

// Suspected reports the monitor's current verdict about peer.
func (m *Monitor) Suspected(peer int) bool {
	pv, ok := m.peers[peer]
	return ok && pv.suspected
}

// Tick returns how many heartbeat rounds have run.
func (m *Monitor) Tick() int { return m.tick }

// Interval returns the effective heartbeat period (for converting
// ticks to virtual time in reports).
func (m *Monitor) Interval() float64 { return m.cfg.interval() }

// Wrap builds one Monitor per handler using the graph adjacency:
// monitor i watches neighbors[i]. Handlers with an empty neighbor set
// get a Monitor too (it stays silent), keeping indexes aligned.
func Wrap(handlers []simnet.Handler, neighbors [][]int, cfg Config) []*Monitor {
	if len(handlers) != len(neighbors) {
		panic(fmt.Sprintf("detector: %d handlers, %d neighbor sets", len(handlers), len(neighbors)))
	}
	out := make([]*Monitor, len(handlers))
	for i, h := range handlers {
		out[i] = NewMonitor(h, neighbors[i], cfg)
	}
	return out
}

// Handlers converts monitors to the simnet.Handler slice.
func Handlers(monitors []*Monitor) []simnet.Handler {
	out := make([]simnet.Handler, len(monitors))
	for i, m := range monitors {
		out[i] = m
	}
	return out
}

// TotalSuspicions sums suspect verdicts across monitors.
func TotalSuspicions(monitors []*Monitor) int {
	total := 0
	for _, m := range monitors {
		total += m.Suspicions
	}
	return total
}

// TotalRestores sums restore verdicts across monitors.
func TotalRestores(monitors []*Monitor) int {
	total := 0
	for _, m := range monitors {
		total += m.Restores
	}
	return total
}

// PublishMetrics adds the detection totals of one finished run to reg.
// Nil-safe: a nil registry is a no-op.
func PublishMetrics(reg *metrics.Registry, monitors []*Monitor) {
	if reg == nil {
		return
	}
	var hb, acks int
	for _, m := range monitors {
		hb += m.Heartbeats
		acks += m.AcksSent
	}
	reg.Counter("detector_heartbeats_total", "HB pings sent").Add(int64(hb))
	reg.Counter("detector_acks_total", "HB-ACK replies sent").Add(int64(acks))
	events := reg.Family("detector_events_total", "verdict transitions by kind", "kind")
	events.With("suspect").Add(int64(TotalSuspicions(monitors)))
	events.With("restore").Add(int64(TotalRestores(monitors)))
}

// PublishVerdicts scores every monitor verdict against ground truth
// and publishes the totals — the registry-backed form of the verdict
// log, so accuracy checks (experiment E16's zero-false-suspicion
// control) read instruments instead of scraping Events. wasDown
// reports whether peer was actually down at the given virtual time;
// a nil wasDown means "nothing was ever down", making every suspicion
// false — the correct truth function for a fault-free control run.
// Nil-safe on reg.
func PublishVerdicts(reg *metrics.Registry, monitors []*Monitor, wasDown func(peer int, at float64) bool) {
	if reg == nil {
		return
	}
	var suspicions, restores, falseSusp int
	for _, m := range monitors {
		suspicions += m.Suspicions
		restores += m.Restores
		for _, ev := range m.Events {
			if !ev.Restore && (wasDown == nil || !wasDown(ev.Peer, ev.Time)) {
				falseSusp++
			}
		}
	}
	reg.Counter("detector_suspicions_total", "suspect verdicts issued").Add(int64(suspicions))
	reg.Counter("detector_restores_total", "restore verdicts issued").Add(int64(restores))
	reg.Counter("detector_false_suspicions_total", "suspect verdicts contradicting ground truth").Add(int64(falseSusp))
}
