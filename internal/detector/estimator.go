package detector

import "math"

// Estimator is the phi-accrual core: a sliding window of positive
// samples (inter-arrival gaps, response times, ...) summarized as a
// normal distribution with a floored standard deviation. It is shared
// by the Monitor (heartbeat gaps in ticks) and by robust.TolerantNode
// (proposal response times in virtual time units) — "the timeout paths
// reuse the detector clock".
type Estimator struct {
	window []float64
	idx    int
	count  int
	floor  float64
}

// NewEstimator builds an estimator over a sliding window of the given
// size with the given standard-deviation floor.
func NewEstimator(window int, floor float64) *Estimator {
	if window < 1 {
		window = 1
	}
	if floor < 0 {
		floor = 0
	}
	return &Estimator{window: make([]float64, window), floor: floor}
}

// Observe records one sample, evicting the oldest when the window is
// full.
func (e *Estimator) Observe(v float64) {
	e.window[e.idx] = v
	e.idx = (e.idx + 1) % len(e.window)
	if e.count < len(e.window) {
		e.count++
	}
}

// Count returns the number of samples currently in the window.
func (e *Estimator) Count() int { return e.count }

// MeanStd returns the windowed mean and the floored standard
// deviation. With no samples it returns (0, floor).
func (e *Estimator) MeanStd() (mean, std float64) {
	if e.count == 0 {
		return 0, e.floor
	}
	for i := 0; i < e.count; i++ {
		mean += e.window[i]
	}
	mean /= float64(e.count)
	var ss float64
	for i := 0; i < e.count; i++ {
		d := e.window[i] - mean
		ss += d * d
	}
	std = math.Sqrt(ss / float64(e.count))
	if std < e.floor {
		std = e.floor
	}
	return mean, std
}

// phiCap bounds the accrual value so arithmetic stays finite when the
// tail probability underflows to zero.
const phiCap = 350

// Phi returns the accrual suspicion value for the given elapsed
// silence: -log10 of the probability that a normally distributed gap
// exceeds elapsed. Larger phi = less plausible that the peer is merely
// slow. Returns 0 with no samples (no evidence either way).
func (e *Estimator) Phi(elapsed float64) float64 {
	if e.count == 0 {
		return 0
	}
	mean, std := e.MeanStd()
	if std <= 0 {
		if elapsed > mean {
			return phiCap
		}
		return 0
	}
	p := 0.5 * math.Erfc((elapsed-mean)/(std*math.Sqrt2))
	if p <= 0 {
		return phiCap
	}
	phi := -math.Log10(p)
	if phi > phiCap {
		return phiCap
	}
	if phi < 0 {
		return 0
	}
	return phi
}

// Threshold returns the smallest elapsed value whose Phi reaches the
// given threshold — the adaptive timeout implied by the current
// window. With no samples it returns +Inf (no adaptive verdict yet).
func (e *Estimator) Threshold(phi float64) float64 {
	if e.count == 0 {
		return math.Inf(1)
	}
	mean, std := e.MeanStd()
	if std <= 0 {
		return mean
	}
	// Invert phi = -log10(0.5·erfc(z/√2)) for z by bisection; the
	// function is monotone and the cap bounds the search interval.
	if phi >= phiCap {
		phi = phiCap
	}
	lo, hi := 0.0, 45.0 // erfc(45/√2) underflows well past phiCap
	for i := 0; i < 64; i++ {
		z := (lo + hi) / 2
		got := -math.Log10(0.5 * math.Erfc(z/math.Sqrt2))
		if math.IsInf(got, 1) || got >= phi {
			hi = z
		} else {
			lo = z
		}
	}
	return mean + hi*std
}
