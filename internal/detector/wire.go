package detector

import (
	"fmt"
	"reflect"

	"overlaymatch/internal/rng"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/transport"
)

// Wire codecs for the heartbeat messages (package transport). Both are
// payload-less — a heartbeat's information is its arrival. The tick
// token is a local timer and deliberately has no codec.
func init() {
	transport.Register(transport.IDDetectorHB, hbCodec("detector.hbMsg",
		reflect.TypeOf(hbMsg{}), func() simnet.Message { return hbMsg{} }))
	transport.Register(transport.IDDetectorHBAck, hbCodec("detector.hbAckMsg",
		reflect.TypeOf(hbAckMsg{}), func() simnet.Message { return hbAckMsg{} }))
}

func hbCodec(name string, typ reflect.Type, make_ func() simnet.Message) transport.Codec {
	return transport.Codec{
		Name:    name,
		Version: 1,
		Type:    typ,
		Encode:  func(_ simnet.Message, buf []byte) []byte { return buf },
		Decode: func(payload []byte) (simnet.Message, error) {
			if len(payload) != 0 {
				return nil, fmt.Errorf("%s payload is %d bytes, want 0", name, len(payload))
			}
			return make_(), nil
		},
		Sample: func(*rng.Source) simnet.Message { return make_() },
	}
}
