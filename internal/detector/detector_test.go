package detector

import (
	"math"
	"testing"
	"time"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/metrics"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

func TestConfigRoundTrip(t *testing.T) {
	cases := []Config{
		Default(),
		{Interval: 5},
		{Phi: 12.5, Ticks: 200},
		{Interval: 0.25, Phi: 3, Window: 16, MinSamples: 2, Floor: 1.5, Ticks: 40},
	}
	for _, c := range cases {
		got, err := Parse(c.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.String(), err)
		}
		if got != c {
			t.Fatalf("round trip %q: got %+v want %+v", c.String(), got, c)
		}
	}
	for _, s := range []string{"off", ""} {
		c, err := Parse(s)
		if err != nil || c.Enabled() {
			t.Fatalf("Parse(%q) = %+v, %v; want disabled", s, c, err)
		}
	}
	if c, err := Parse("on"); err != nil || c != Default() {
		t.Fatalf("Parse(on) = %+v, %v; want Default()", c, err)
	}
	bad := []string{
		"hb=0", "hb=-3", "phi=nan", "phi=400", "window=0", "window=99999999",
		"min=5,window=2", "ticks=x", "hb=5,hb=6", "wat=1", "hb", "hb=5,,phi=8",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Fatalf("Parse(%q) accepted", s)
		}
	}
}

func TestEstimator(t *testing.T) {
	e := NewEstimator(8, 0.5)
	if got := e.Phi(10); got != 0 {
		t.Fatalf("empty estimator Phi = %v, want 0", got)
	}
	if !math.IsInf(e.Threshold(8), 1) {
		t.Fatal("empty estimator must have an infinite threshold")
	}
	for i := 0; i < 20; i++ {
		e.Observe(1)
	}
	if e.Count() != 8 {
		t.Fatalf("window count = %d, want 8", e.Count())
	}
	mean, std := e.MeanStd()
	if mean != 1 || std != 0.5 {
		t.Fatalf("mean/std = %v/%v, want 1/0.5 (floored)", mean, std)
	}
	// Phi must be monotone in elapsed and ~0 near the mean.
	if e.Phi(1) > 1 {
		t.Fatalf("Phi(mean) = %v, want small", e.Phi(1))
	}
	prev := -1.0
	for _, x := range []float64{1, 2, 3, 5, 8, 13} {
		phi := e.Phi(x)
		if phi < prev {
			t.Fatalf("Phi not monotone at %v: %v < %v", x, phi, prev)
		}
		prev = phi
	}
	// Threshold inverts Phi (within bisection tolerance).
	for _, phi := range []float64{1, 4, 8, 16} {
		at := e.Threshold(phi)
		if got := e.Phi(at); math.Abs(got-phi) > 1e-6 {
			t.Fatalf("Phi(Threshold(%v)) = %v", phi, got)
		}
	}
}

// buildLID constructs a small LID workload: nodes, adjacency, system.
func buildLID(tb testing.TB, seed uint64, n int) (*pref.System, *satisfaction.Table, []*lid.Node, [][]int) {
	tb.Helper()
	src := rng.New(seed)
	g := gen.GNP(src, n, 0.3)
	sys, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(2))
	if err != nil {
		tb.Fatal(err)
	}
	tbl := satisfaction.NewTable(sys)
	nodes := lid.NewNodes(sys, tbl)
	adj := make([][]int, g.NumNodes())
	for i := range adj {
		adj[i] = g.Neighbors(i)
	}
	return sys, tbl, nodes, adj
}

// TestZeroFaultAccuracyPin is the detector accuracy pin: on a clean
// network the monitor must never suspect anyone, and the monitored run
// must produce the identical matching to an unmonitored one.
func TestZeroFaultAccuracyPin(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		sys, tbl, nodes, adj := buildLID(t, seed, 24)
		mons := Wrap(lid.Handlers(nodes), adj, Default())
		r := simnet.NewRunner(len(nodes), simnet.Options{
			Seed:    seed,
			Latency: simnet.ExponentialLatency(3),
		})
		stats, err := r.Run(Handlers(mons))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if s := TotalSuspicions(mons); s != 0 {
			t.Fatalf("seed %d: %d false suspicions on a fault-free network", seed, s)
		}
		if TotalRestores(mons) != 0 {
			t.Fatalf("seed %d: restores without suspicions", seed)
		}
		m, err := lid.BuildMatching(nodes)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !m.Equal(matching.LIC(sys, tbl)) {
			t.Fatalf("seed %d: monitored LID diverged from LIC", seed)
		}
		if stats.SentByKind["HB"] == 0 || stats.SentByKind["HB-ACK"] == 0 {
			t.Fatalf("seed %d: heartbeats not flowing (%v)", seed, stats.SentByKind)
		}
	}
}

// recorder is a minimal inner handler implementing the suspect upcall.
type recorder struct {
	suspects []int
	restores []int
}

func (r *recorder) Init(ctx simnet.Context)                                        { ctx.Halt() }
func (r *recorder) HandleMessage(ctx simnet.Context, from int, msg simnet.Message) {}
func (r *recorder) HandleSuspect(ctx simnet.Context, peer int)                     { r.suspects = append(r.suspects, peer) }
func (r *recorder) HandleRestore(ctx simnet.Context, peer int)                     { r.restores = append(r.restores, peer) }

// cutWindow drops every message to or from node during [start, end).
type cutWindow struct {
	node       int
	start, end float64
}

func (c cutWindow) Verdict(now float64, from, to int, msg simnet.Message) simnet.LinkVerdict {
	if (from == c.node || to == c.node) && now >= c.start && now < c.end {
		return simnet.LinkVerdict{Drop: true}
	}
	return simnet.LinkVerdict{}
}

// TestSuspectAndRestore drives a healing crash through a pair of
// monitors and checks the full verdict cycle: detection within a
// bounded latency, the suspect upcall, and the restore upcall once the
// peer is heard again — delivered in order.
func TestSuspectAndRestore(t *testing.T) {
	const crashStart, crashEnd = 50.0, 200.0
	recs := []*recorder{{}, {}}
	cfg := Config{Interval: 5, Ticks: 80}
	mons := Wrap([]simnet.Handler{recs[0], recs[1]}, [][]int{{1}, {0}}, cfg)
	r := simnet.NewRunner(2, simnet.Options{
		Seed:    3,
		Latency: simnet.ExponentialLatency(0.5),
		Policy:  cutWindow{node: 1, start: crashStart, end: crashEnd},
		Quiesce: true,
	})
	if _, err := r.Run(Handlers(mons)); err != nil {
		t.Fatal(err)
	}
	if len(recs[0].suspects) != 1 || recs[0].suspects[0] != 1 {
		t.Fatalf("node 0 suspects = %v, want [1]", recs[0].suspects)
	}
	if len(recs[0].restores) != 1 || recs[0].restores[0] != 1 {
		t.Fatalf("node 0 restores = %v, want [1]", recs[0].restores)
	}
	// Node 1 is cut off too: from its side the whole world went silent.
	if len(recs[1].suspects) != 1 || len(recs[1].restores) != 1 {
		t.Fatalf("node 1 verdicts = %v/%v, want one of each", recs[1].suspects, recs[1].restores)
	}
	var suspectAt, restoreAt float64 = -1, -1
	for _, ev := range mons[0].Events {
		if ev.Restore {
			restoreAt = ev.Time
		} else {
			suspectAt = ev.Time
		}
	}
	if suspectAt < crashStart || suspectAt > crashEnd {
		t.Fatalf("suspicion at %v outside the crash window [%v,%v)", suspectAt, crashStart, crashEnd)
	}
	// Detection latency: the bootstrap threshold is 4 ticks; allow
	// slack for estimator adaptation and latency jitter.
	if lat := suspectAt - crashStart; lat > 10*cfg.Interval {
		t.Fatalf("detection latency %v exceeds 10 intervals", lat)
	}
	if restoreAt < crashEnd {
		t.Fatalf("restore at %v before the window healed at %v", restoreAt, crashEnd)
	}
	if mons[0].Suspected(1) || mons[1].Suspected(0) {
		t.Fatal("still suspected after heal")
	}
}

// TestGoRunnerQuiesces pins the goroutine-runtime path: tick timers
// count as outstanding work, so a bounded tick budget must let the run
// terminate (no suspicion assertions — wall-clock jitter is real
// there).
func TestGoRunnerQuiesces(t *testing.T) {
	sys, _, nodes, adj := buildLID(t, 5, 12)
	mons := Wrap(lid.Handlers(nodes), adj, Config{Interval: 3, Ticks: 5})
	r := simnet.NewGoRunner(sys.Graph().NumNodes(), 30*time.Second)
	if _, err := r.Run(Handlers(mons)); err != nil {
		t.Fatal(err)
	}
	if _, err := lid.BuildMatching(nodes); err != nil {
		t.Fatal(err)
	}
}

func TestPublishMetrics(t *testing.T) {
	_, _, nodes, adj := buildLID(t, 2, 16)
	mons := Wrap(lid.Handlers(nodes), adj, Config{Interval: 5, Ticks: 10})
	r := simnet.NewRunner(len(nodes), simnet.Options{Seed: 2})
	if _, err := r.Run(Handlers(mons)); err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	PublishMetrics(reg, mons)
	PublishMetrics(nil, mons) // nil sink must be a no-op
	var hb int
	for _, m := range mons {
		hb += m.Heartbeats
	}
	if got := int(reg.Counter("detector_heartbeats_total", "").Value()); got != hb {
		t.Fatalf("heartbeat counter %d, monitors say %d", got, hb)
	}
}
