package detector

import "testing"

// FuzzDetectorConfigParse pins the parser's safety (no panics on
// arbitrary input) and the canonical round trip: any accepted spec
// re-renders and re-parses to the identical config.
func FuzzDetectorConfigParse(f *testing.F) {
	f.Add("off")
	f.Add("on")
	f.Add("hb=5,phi=8")
	f.Add("hb=0.25,phi=3,window=16,min=2,floor=1.5,ticks=40")
	f.Add("window=64,min=3")
	f.Add("ticks=200")
	f.Add("hb=1e3,phi=299")
	f.Add("hb=5,hb=6")
	f.Add("wat=1")
	f.Add(" hb = 5 , phi = 8 ")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := Parse(s)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted an invalid config: %v", s, verr)
		}
		rendered := c.String()
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", rendered, s, err)
		}
		if back != c {
			t.Fatalf("round trip drift: %q -> %+v -> %q -> %+v", s, c, rendered, back)
		}
	})
}
