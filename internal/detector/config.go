// Package detector implements a deterministic heartbeat failure
// detector for the overlay maintenance protocols. The paper's model
// (§5) has no failures to detect; the §7 future-work questions —
// churn and misbehavior — need one: an unannounced crash never sends
// the BYE that dlid's repair relies on, so without detection the
// matching silently stops being maximal on the live subgraph.
//
// A Monitor wraps any simnet.Handler (the same composition pattern as
// reliable.Endpoint). Every heartbeat interval it pings each monitored
// neighbor (HB), answers pings (HB-ACK), and treats *any* arriving
// message as evidence of life. Suspicion is phi-accrual style
// (Hayashibara et al.): the observed inter-arrival gaps feed a
// windowed normal estimate, and a peer is suspected when the
// improbability of its current silence, phi = -log10 P(gap > elapsed),
// crosses a threshold. Verdicts are delivered to the wrapped handler
// through the optional simnet.SuspectHandler upcall interface —
// Suspect when silence crosses the threshold, Restore when a suspected
// peer is heard from again — making crash-recovery observable, not
// just crash-stop.
//
// Determinism: all bookkeeping is in heartbeat ticks (the monitor's
// own timer count), never wall-clock time, so the detector behaves
// bit-identically on the event runtime and still works on the
// goroutine runtime where Context.Time reports nothing.
package detector

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Config parameterizes one Monitor. The zero value means "disabled";
// zero-valued fields of an otherwise non-zero config take the
// defaults below (the same convention as faults.TrialOptions).
type Config struct {
	// Interval is the heartbeat period in virtual time units
	// (default 5).
	Interval float64
	// Phi is the suspicion threshold on the accrual scale: suspect
	// when the current silence has probability below 10^-Phi
	// (default 8).
	Phi float64
	// Window is the inter-arrival sample window (default 64).
	Window int
	// MinSamples is how many inter-arrival samples must accumulate
	// before the adaptive threshold applies; until then a fixed
	// bootstrap threshold of bootstrapTicks heartbeat ticks is used
	// (default 3).
	MinSamples int
	// Floor is the minimum standard deviation (in ticks) of the
	// adaptive estimate, guarding against a degenerate zero-variance
	// window over a deterministic network (default 0.5).
	Floor float64
	// Ticks bounds how many heartbeat rounds the monitor runs; after
	// the budget the detector goes quiet so event-runtime runs can
	// drain to quiescence (default 64).
	Ticks int
}

// Default is the enabled configuration with every knob at its default.
func Default() Config {
	return Config{Interval: 5, Phi: 8, Window: 64, MinSamples: 3, Floor: 0.5, Ticks: 64}
}

// Enabled reports whether the config turns the detector on.
func (c Config) Enabled() bool { return c != Config{} }

func (c Config) interval() float64 {
	if c.Interval > 0 {
		return c.Interval
	}
	return 5
}

func (c Config) phi() float64 {
	if c.Phi > 0 {
		return c.Phi
	}
	return 8
}

func (c Config) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return 64
}

func (c Config) minSamples() int {
	if c.MinSamples > 0 {
		return c.MinSamples
	}
	return 3
}

func (c Config) floor() float64 {
	if c.Floor > 0 {
		return c.Floor
	}
	return 0.5
}

func (c Config) ticks() int {
	if c.Ticks > 0 {
		return c.Ticks
	}
	return 64
}

// Validate bounds every field so corrupted flag strings fail fast.
func (c Config) Validate() error {
	if c.Interval < 0 || c.Interval > 1e9 {
		return fmt.Errorf("detector: hb=%v outside (0,1e9]", c.Interval)
	}
	if c.Phi < 0 || c.Phi > 300 {
		return fmt.Errorf("detector: phi=%v outside (0,300]", c.Phi)
	}
	if c.Window < 0 || c.Window > 1<<16 {
		return fmt.Errorf("detector: window=%d outside [1,65536]", c.Window)
	}
	if c.MinSamples < 0 || c.MinSamples > c.window() {
		return fmt.Errorf("detector: min=%d outside [1,window]", c.MinSamples)
	}
	if c.Floor < 0 || c.Floor > 1e9 {
		return fmt.Errorf("detector: floor=%v outside (0,1e9]", c.Floor)
	}
	if c.Ticks < 0 || c.Ticks > 1<<24 {
		return fmt.Errorf("detector: ticks=%d outside [1,2^24]", c.Ticks)
	}
	return nil
}

// String renders the canonical spec form: comma-separated key=value
// pairs in fixed order, zero (defaulted) fields omitted, "off" for the
// zero config. Parse(c.String()) == c for every valid config.
func (c Config) String() string {
	if !c.Enabled() {
		return "off"
	}
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if c.Interval != 0 {
		add("hb", formatFloat(c.Interval))
	}
	if c.Phi != 0 {
		add("phi", formatFloat(c.Phi))
	}
	if c.Window != 0 {
		add("window", strconv.Itoa(c.Window))
	}
	if c.MinSamples != 0 {
		add("min", strconv.Itoa(c.MinSamples))
	}
	if c.Floor != 0 {
		add("floor", formatFloat(c.Floor))
	}
	if c.Ticks != 0 {
		add("ticks", strconv.Itoa(c.Ticks))
	}
	return strings.Join(parts, ",")
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Parse reads the canonical spec form. "off" and "" give the disabled
// zero config; "on" gives Default(). Keys: hb, phi, window, min,
// floor, ticks. Duplicate keys, unknown keys, and out-of-range values
// are errors.
func Parse(s string) (Config, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "", "off":
		return Config{}, nil
	case "on":
		return Default(), nil
	}
	var c Config
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return Config{}, fmt.Errorf("detector: empty clause in %q", s)
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return Config{}, fmt.Errorf("detector: clause %q is not key=value", part)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		if seen[key] {
			return Config{}, fmt.Errorf("detector: duplicate key %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "hb":
			c.Interval, err = parsePositiveFloat(val)
		case "phi":
			c.Phi, err = parsePositiveFloat(val)
		case "window":
			c.Window, err = parsePositiveInt(val)
		case "min":
			c.MinSamples, err = parsePositiveInt(val)
		case "floor":
			c.Floor, err = parsePositiveFloat(val)
		case "ticks":
			c.Ticks, err = parsePositiveInt(val)
		default:
			keys := []string{"hb", "phi", "window", "min", "floor", "ticks"}
			sort.Strings(keys)
			return Config{}, fmt.Errorf("detector: unknown key %q (want one of %s)",
				key, strings.Join(keys, ", "))
		}
		if err != nil {
			return Config{}, fmt.Errorf("detector: %s: %v", key, err)
		}
	}
	if !c.Enabled() {
		return Config{}, fmt.Errorf("detector: spec %q sets no field", s)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

func parsePositiveFloat(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if !(v > 0) { // rejects zero, negatives and NaN alike
		return 0, fmt.Errorf("%v is not positive", v)
	}
	return v, nil
}

func parsePositiveInt(s string) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if v <= 0 {
		return 0, fmt.Errorf("%d is not positive", v)
	}
	return v, nil
}
