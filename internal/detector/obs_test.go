package detector

import (
	"testing"

	"overlaymatch/internal/metrics"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/simnet"
)

// TestSuspicionSpansAndVerdicts drives the healing-crash scenario of
// TestSuspectAndRestore with a telemetry recorder attached: each
// suspicion opens a detector.suspicion span that the restore closes,
// and PublishVerdicts scores the verdict log against ground truth.
// Node 1 is cut off during the window, so node 0's suspicion of it is
// correct while node 1's mirror-image suspicion of the healthy node 0
// is false — the asymmetry the registry must expose.
func TestSuspicionSpansAndVerdicts(t *testing.T) {
	const crashStart, crashEnd = 50.0, 200.0
	recs := []*recorder{{}, {}}
	mons := Wrap([]simnet.Handler{recs[0], recs[1]}, [][]int{{1}, {0}}, Config{Interval: 5, Ticks: 80})
	rec := obs.NewRecorder(2)
	r := simnet.NewRunner(2, simnet.Options{
		Seed:    3,
		Latency: simnet.ExponentialLatency(0.5),
		Policy:  cutWindow{node: 1, start: crashStart, end: crashEnd},
		Quiesce: true,
		Obs:     rec,
	})
	if _, err := r.Run(Handlers(mons)); err != nil {
		t.Fatal(err)
	}
	opens, closes := 0, 0
	for _, e := range rec.Events() {
		switch {
		case e.Type == obs.EvOpen && e.Kind == "detector.suspicion":
			opens++
		case e.Type == obs.EvClose:
			closes++
		}
	}
	if want := TotalSuspicions(mons); opens != want || opens == 0 {
		t.Fatalf("suspicion spans opened = %d, want %d (nonzero)", opens, want)
	}
	if want := TotalRestores(mons); closes != want {
		t.Fatalf("suspicion spans closed = %d, want %d", closes, want)
	}

	// Scored against the real crash window (the closure mirrors
	// faults.Spec.NodeDownAt, which package boundaries keep out of this
	// test — faults imports dlid imports detector): node 0's verdict
	// about node 1 is true, node 1's about node 0 is false.
	wasDown := func(peer int, at float64) bool {
		return peer == 1 && at >= crashStart && at < crashEnd
	}
	reg := metrics.New()
	PublishVerdicts(reg, mons, wasDown)
	if got := reg.Counter("detector_suspicions_total", "").Value(); got != int64(TotalSuspicions(mons)) {
		t.Fatalf("suspicions published = %d, want %d", got, TotalSuspicions(mons))
	}
	if got := reg.Counter("detector_false_suspicions_total", "").Value(); got != 1 {
		t.Fatalf("false suspicions = %d, want exactly node 1's verdict about node 0", got)
	}

	// A nil truth function means nothing was ever down: every suspicion
	// is false — the control-run scoring of experiment E16.
	ctrl := metrics.New()
	PublishVerdicts(ctrl, mons, nil)
	if got := ctrl.Counter("detector_false_suspicions_total", "").Value(); got != int64(TotalSuspicions(mons)) {
		t.Fatalf("nil truth: false = %d, want all %d", got, TotalSuspicions(mons))
	}
	PublishVerdicts(nil, mons, nil) // nil registry must be a no-op
}
