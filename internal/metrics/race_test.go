package metrics

import (
	"bytes"
	"sync"
	"testing"
)

// TestConcurrentWriters hammers every instrument kind from parallel
// goroutines while snapshots are being taken — the acceptance test the
// registry must pass under `go test -race`. Totals are checked after
// the fact: atomic instruments must not lose updates.
func TestConcurrentWriters(t *testing.T) {
	const (
		writers = 8
		perW    = 2000
	)
	r := New()
	c := r.Counter("c_total", "")
	g := r.Gauge("g_max", "")
	h := r.Histogram("h", "", []float64{1, 4, 16})
	v := r.Vector("v", "", writers)
	f := r.Family("f", "", "kind")

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := "even"
			if w%2 == 1 {
				kind = "odd"
			}
			for i := 0; i < perW; i++ {
				c.Inc()
				g.SetMax(float64(w*perW + i))
				h.Observe(float64(i % 20))
				v.Inc(w)
				f.With(kind).Inc()
			}
		}(w)
	}
	// Snapshot concurrently with the writers: must not race and must
	// render without error.
	var sg sync.WaitGroup
	for s := 0; s < 4; s++ {
		sg.Add(1)
		go func() {
			defer sg.Done()
			for i := 0; i < 50; i++ {
				var b bytes.Buffer
				if err := r.Snapshot().WriteText(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	sg.Wait()

	total := int64(writers * perW)
	if c.Value() != total {
		t.Fatalf("counter lost updates: %d != %d", c.Value(), total)
	}
	if h.Count() != total {
		t.Fatalf("histogram lost updates: %d != %d", h.Count(), total)
	}
	var vsum int64
	for i := 0; i < v.Len(); i++ {
		if v.Value(i) != perW {
			t.Fatalf("vector[%d] = %d, want %d", i, v.Value(i), perW)
		}
		vsum += v.Value(i)
	}
	if f.Value("even")+f.Value("odd") != total {
		t.Fatalf("family lost updates: %v", f.Counts())
	}
	if g.Value() != float64(writers*perW-1) {
		t.Fatalf("gauge max = %v, want %d", g.Value(), writers*perW-1)
	}
}

// TestConcurrentGetOrCreate races many goroutines creating the same
// named instruments; all must observe the same instance.
func TestConcurrentGetOrCreate(t *testing.T) {
	r := New()
	const n = 16
	out := make([]*Counter, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = r.Counter("shared_total", "")
			out[i].Inc()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if out[i] != out[0] {
			t.Fatal("Counter returned different instances")
		}
	}
	if out[0].Value() != n {
		t.Fatalf("count = %d, want %d", out[0].Value(), n)
	}
}
