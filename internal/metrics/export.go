package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// LabelCount is one (label value, count) pair of a family sample.
type LabelCount struct {
	Value string `json:"value"`
	Count int64  `json:"count"`
}

// Sample is one instrument's state at snapshot time. Field use by
// kind: Counter → Count; Gauge → Value; Histogram → Count (number of
// observations), Value (sum), Bounds/BucketCounts, P50/P95/P99;
// Vector → Values; Family → Label, LabelValues (sorted by value).
type Sample struct {
	Name         string
	Kind         Kind
	Help         string
	Count        int64
	Value        float64
	Bounds       []float64
	BucketCounts []int64
	P50          float64
	P95          float64
	P99          float64
	Label        string
	LabelValues  []LabelCount
	Values       []int64
	Points       []SeriesPoint
}

// Snapshot is a consistent-enough view of a registry: every individual
// instrument value is an atomic read; the set of samples is sorted by
// name, so rendering is deterministic for a quiesced registry.
type Snapshot struct {
	Samples []Sample
}

// Snapshot captures all instruments, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := r.names()
	entries := make([]*entry, len(names))
	for i, n := range names {
		entries[i] = r.entries[n]
	}
	r.mu.Unlock()

	out := Snapshot{Samples: make([]Sample, 0, len(names))}
	for i, name := range names {
		e := entries[i]
		s := Sample{Name: name, Kind: e.kind, Help: e.help}
		switch e.kind {
		case KindCounter:
			s.Count = e.inst.(*Counter).Value()
		case KindGauge:
			s.Value = e.inst.(*Gauge).Value()
		case KindHistogram:
			h := e.inst.(*Histogram)
			s.Count = h.Count()
			s.Value = h.Sum()
			s.Bounds = append([]float64(nil), h.bounds...)
			s.BucketCounts = make([]int64, len(h.counts))
			for b := range h.counts {
				s.BucketCounts[b] = h.counts[b].Load()
			}
			s.P50 = h.Quantile(0.50)
			s.P95 = h.Quantile(0.95)
			s.P99 = h.Quantile(0.99)
		case KindVector:
			s.Values = e.inst.(*Vector).Values()
		case KindSeries:
			s.Points = e.inst.(*Series).Points()
		case KindFamily:
			f := e.inst.(*Family)
			s.Label = f.Label()
			counts := f.Counts()
			values := make([]string, 0, len(counts))
			for v := range counts {
				values = append(values, v)
			}
			sort.Strings(values)
			for _, v := range values {
				s.LabelValues = append(s.LabelValues, LabelCount{Value: v, Count: counts[v]})
			}
		}
		out.Samples = append(out.Samples, s)
	}
	return out
}

// vectorStats summarizes a vector sample for rendering.
func vectorStats(values []int64) (sum, max int64) {
	for _, v := range values {
		sum += v
		if v > max {
			max = v
		}
	}
	return sum, max
}

// WriteText renders the snapshot as aligned, deterministic text — the
// default of the -metrics CLI flags.
func (s Snapshot) WriteText(w io.Writer) error {
	type line struct{ name, value string }
	var lines []line
	for _, smp := range s.Samples {
		switch smp.Kind {
		case KindCounter:
			lines = append(lines, line{smp.Name, fmt.Sprintf("%d", smp.Count)})
		case KindGauge:
			lines = append(lines, line{smp.Name, fmt.Sprintf("%g", smp.Value)})
		case KindHistogram:
			lines = append(lines, line{smp.Name, fmt.Sprintf(
				"count=%d sum=%g p50=%g p95=%g p99=%g",
				smp.Count, smp.Value, smp.P50, smp.P95, smp.P99)})
		case KindVector:
			sum, max := vectorStats(smp.Values)
			lines = append(lines, line{smp.Name, fmt.Sprintf(
				"n=%d sum=%d max=%d", len(smp.Values), sum, max)})
		case KindSeries:
			last := SeriesPoint{}
			if len(smp.Points) > 0 {
				last = smp.Points[len(smp.Points)-1]
			}
			lines = append(lines, line{smp.Name, fmt.Sprintf(
				"n=%d last_t=%g last=%g", len(smp.Points), last.T, last.V)})
		case KindFamily:
			for _, lv := range smp.LabelValues {
				lines = append(lines, line{
					fmt.Sprintf("%s{%s=%q}", smp.Name, smp.Label, lv.Value),
					fmt.Sprintf("%d", lv.Count)})
			}
		}
	}
	width := 0
	for _, l := range lines {
		if len(l.name) > width {
			width = len(l.name)
		}
	}
	var b strings.Builder
	for _, l := range lines {
		fmt.Fprintf(&b, "%-*s  %s\n", width, l.name, l.value)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the snapshot as one indented JSON object keyed by
// instrument name. encoding/json sorts map keys, so the output is
// deterministic.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s.toJSON(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// MarshalJSON lets a Snapshot embed directly into larger JSON
// documents (the experiment run manifests).
func (s Snapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.toJSON())
}

func (s Snapshot) toJSON() map[string]interface{} {
	out := make(map[string]interface{}, len(s.Samples))
	for _, smp := range s.Samples {
		m := map[string]interface{}{"kind": smp.Kind.String()}
		if smp.Help != "" {
			m["help"] = smp.Help
		}
		switch smp.Kind {
		case KindCounter:
			m["value"] = smp.Count
		case KindGauge:
			m["value"] = smp.Value
		case KindHistogram:
			m["count"] = smp.Count
			m["sum"] = smp.Value
			m["bounds"] = smp.Bounds
			m["buckets"] = smp.BucketCounts
			m["p50"], m["p95"], m["p99"] = smp.P50, smp.P95, smp.P99
		case KindVector:
			sum, max := vectorStats(smp.Values)
			m["n"], m["sum"], m["max"] = len(smp.Values), sum, max
			m["values"] = smp.Values
		case KindSeries:
			points := make([][2]float64, len(smp.Points))
			for i, p := range smp.Points {
				points[i] = [2]float64{p.T, p.V}
			}
			m["n"] = len(smp.Points)
			m["points"] = points
		case KindFamily:
			byValue := make(map[string]int64, len(smp.LabelValues))
			for _, lv := range smp.LabelValues {
				byValue[lv.Value] = lv.Count
			}
			m["label"] = smp.Label
			m["values"] = byValue
		}
		out[smp.Name] = m
	}
	return out
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format (counters, gauges, classic histograms with cumulative "le"
// buckets, vectors as one series per index, families as one series
// per label value).
func (s Snapshot) WriteProm(w io.Writer) error {
	var b strings.Builder
	for _, smp := range s.Samples {
		if smp.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", smp.Name, smp.Help)
		}
		switch smp.Kind {
		case KindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", smp.Name, smp.Name, smp.Count)
		case KindGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", smp.Name, smp.Name, smp.Value)
		case KindHistogram:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", smp.Name)
			var cum int64
			for i, bound := range smp.Bounds {
				cum += smp.BucketCounts[i]
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", smp.Name, fmt.Sprintf("%g", bound), cum)
			}
			cum += smp.BucketCounts[len(smp.BucketCounts)-1]
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", smp.Name, cum)
			fmt.Fprintf(&b, "%s_sum %g\n", smp.Name, smp.Value)
			fmt.Fprintf(&b, "%s_count %d\n", smp.Name, smp.Count)
		case KindVector:
			fmt.Fprintf(&b, "# TYPE %s counter\n", smp.Name)
			for i, v := range smp.Values {
				fmt.Fprintf(&b, "%s{index=\"%d\"} %d\n", smp.Name, i, v)
			}
		case KindSeries:
			// Prometheus has no native series type; expose the latest
			// sample as a gauge (the full series lives in the JSON form).
			fmt.Fprintf(&b, "# TYPE %s gauge\n", smp.Name)
			last := SeriesPoint{}
			if len(smp.Points) > 0 {
				last = smp.Points[len(smp.Points)-1]
			}
			fmt.Fprintf(&b, "%s %g\n", smp.Name, last.V)
		case KindFamily:
			fmt.Fprintf(&b, "# TYPE %s counter\n", smp.Name)
			for _, lv := range smp.LabelValues {
				fmt.Fprintf(&b, "%s{%s=%q} %d\n", smp.Name, smp.Label, lv.Value, lv.Count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteFormat dispatches on a -metrics-format flag value: "text",
// "json", or "prom".
func (s Snapshot) WriteFormat(w io.Writer, format string) error {
	switch format {
	case "", "text":
		return s.WriteText(w)
	case "json":
		return s.WriteJSON(w)
	case "prom":
		return s.WriteProm(w)
	}
	return fmt.Errorf("metrics: unknown format %q (want text, json or prom)", format)
}
