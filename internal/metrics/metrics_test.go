package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c_total", "a counter") != c {
		t.Fatal("Counter is not get-or-create")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(1.5)
	if g.Value() != 4 {
		t.Fatalf("gauge = %v, want 4", g.Value())
	}
	g.SetMax(3) // lower: no-op
	if g.Value() != 4 {
		t.Fatalf("SetMax lowered the gauge to %v", g.Value())
	}
	g.SetMax(10)
	if g.Value() != 10 {
		t.Fatalf("SetMax = %v, want 10", g.Value())
	}
}

func TestCounterNegativeAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	new(Counter).Add(-1)
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 113.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	s := r.Snapshot().Samples[0]
	// Buckets: ≤1 holds {0.5, 1}; ≤2 holds {1.5, 2}; ≤4 holds {3};
	// overflow holds {5, 100}.
	want := []int64{2, 2, 1, 2}
	for i, c := range want {
		if s.BucketCounts[i] != c {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.BucketCounts[i], c, s.BucketCounts)
		}
	}
	// Quantiles are bucket interpolations: monotone and within range.
	q50, q95, q99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if !(q50 <= q95 && q95 <= q99) {
		t.Fatalf("quantiles not monotone: %v %v %v", q50, q95, q99)
	}
	if q99 > 4 {
		t.Fatalf("q99 = %v beyond the last finite bound", q99)
	}
	if h.Quantile(0) < 0 || h.Quantile(1) != 4 {
		t.Fatalf("extreme quantiles wrong: q0=%v q1=%v", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("h", "", nil) // DefBuckets
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	r := New()
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds did not panic")
		}
	}()
	r.Histogram("bad", "", []float64{2, 1})
}

func TestHistogramReboundPanics(t *testing.T) {
	r := New()
	r.Histogram("h", "", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with different bounds did not panic")
		}
	}()
	r.Histogram("h", "", []float64{1, 3})
}

func TestVector(t *testing.T) {
	r := New()
	v := r.Vector("v", "", 3)
	v.Inc(0)
	v.Add(2, 5)
	if got := v.Values(); got[0] != 1 || got[1] != 0 || got[2] != 5 {
		t.Fatalf("values = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("vector resize did not panic")
		}
	}()
	r.Vector("v", "", 4)
}

func TestFamily(t *testing.T) {
	r := New()
	f := r.Family("msgs_total", "", "kind")
	f.With("PROP").Add(3)
	f.With("REJ").Inc()
	f.With("PROP").Inc()
	if f.Value("PROP") != 4 || f.Value("REJ") != 1 || f.Value("nope") != 0 {
		t.Fatalf("family counts wrong: %v", f.Counts())
	}
}

func TestSnapshotDeterministicRendering(t *testing.T) {
	build := func() Snapshot {
		r := New()
		r.Counter("b_total", "second").Add(2)
		r.Counter("a_total", "first").Add(1)
		r.Gauge("g", "").Set(1.5)
		h := r.Histogram("h", "", []float64{1, 10})
		h.Observe(0.5)
		h.Observe(20)
		r.Vector("v", "", 2).Add(1, 7)
		f := r.Family("f", "", "kind")
		f.With("z").Inc()
		f.With("a").Add(2)
		return r.Snapshot()
	}
	var t1, t2, j1, p1 bytes.Buffer
	if err := build().WriteText(&t1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteText(&t2); err != nil {
		t.Fatal(err)
	}
	if t1.String() != t2.String() {
		t.Fatalf("text rendering not deterministic:\n%s\nvs\n%s", t1.String(), t2.String())
	}
	if !strings.Contains(t1.String(), `f{kind="a"}`) {
		t.Fatalf("family line missing:\n%s", t1.String())
	}
	if strings.Index(t1.String(), "a_total") > strings.Index(t1.String(), "b_total") {
		t.Fatalf("names not sorted:\n%s", t1.String())
	}

	if err := build().WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]map[string]interface{}
	if err := json.Unmarshal(j1.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON output invalid: %v\n%s", err, j1.String())
	}
	if decoded["a_total"]["value"].(float64) != 1 {
		t.Fatalf("JSON counter wrong: %v", decoded["a_total"])
	}
	if decoded["h"]["count"].(float64) != 2 {
		t.Fatalf("JSON histogram wrong: %v", decoded["h"])
	}

	if err := build().WriteProm(&p1); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE a_total counter", "a_total 1",
		"h_bucket{le=\"+Inf\"} 2", "h_count 2",
		`f{kind="a"} 2`, `v{index="1"} 7`,
	} {
		if !strings.Contains(p1.String(), want) {
			t.Fatalf("prom output missing %q:\n%s", want, p1.String())
		}
	}
}

func TestWriteFormatDispatch(t *testing.T) {
	r := New()
	r.Counter("c", "").Inc()
	for _, f := range []string{"", "text", "json", "prom"} {
		var b bytes.Buffer
		if err := r.Snapshot().WriteFormat(&b, f); err != nil {
			t.Fatalf("format %q: %v", f, err)
		}
		if b.Len() == 0 {
			t.Fatalf("format %q produced no output", f)
		}
	}
	var b bytes.Buffer
	if err := r.Snapshot().WriteFormat(&b, "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestMerge(t *testing.T) {
	runReg := func(k int) *Registry {
		r := New()
		r.Counter("deliveries_total", "").Add(int64(10 * k))
		r.Gauge("final_time", "").Set(float64(k))
		h := r.Histogram("lat", "", []float64{1, 2})
		h.Observe(0.5)
		h.Observe(float64(k))
		f := r.Family("sent", "", "kind")
		f.With("PROP").Add(int64(k))
		r.Vector("by_node", "", k+1).Inc(0)
		return r
	}
	shared := New()
	shared.Merge(runReg(1).Snapshot())
	shared.Merge(runReg(3).Snapshot())
	s := shared.Snapshot()
	byName := map[string]Sample{}
	for _, smp := range s.Samples {
		byName[smp.Name] = smp
	}
	if byName["deliveries_total"].Count != 40 {
		t.Fatalf("merged counter = %d, want 40", byName["deliveries_total"].Count)
	}
	if byName["final_time"].Value != 3 {
		t.Fatalf("merged gauge = %v, want max 3", byName["final_time"].Value)
	}
	if byName["lat"].Count != 4 {
		t.Fatalf("merged histogram count = %d, want 4", byName["lat"].Count)
	}
	if got := byName["sent"].LabelValues; len(got) != 1 || got[0].Count != 4 {
		t.Fatalf("merged family = %v", got)
	}
	if _, ok := byName["by_node"]; ok {
		t.Fatal("vectors must not merge (per-run artifacts)")
	}
}

func TestSeries(t *testing.T) {
	r := New()
	s := r.Series("probe_bp", "blocking pairs per round")
	if r.Series("probe_bp", "blocking pairs per round") != s {
		t.Fatal("Series is not get-or-create")
	}
	if s.Len() != 0 || (s.Last() != SeriesPoint{}) {
		t.Fatal("empty series not zero")
	}
	s.Append(0, 12)
	s.Append(1, 7)
	s.Append(2, 0)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if last := s.Last(); last.T != 2 || last.V != 0 {
		t.Fatalf("Last = %+v", last)
	}
	pts := s.Points()
	pts[0].V = 99 // must be a copy
	if s.Points()[0].V != 12 {
		t.Fatal("Points returned shared storage")
	}

	snap := r.Snapshot()
	if len(snap.Samples) != 1 || snap.Samples[0].Kind != KindSeries {
		t.Fatalf("snapshot = %+v", snap.Samples)
	}
	var text, jsonBuf, prom bytes.Buffer
	if err := snap.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if want := "n=3 last_t=2 last=0"; !strings.Contains(text.String(), want) {
		t.Fatalf("text missing %q:\n%s", want, text.String())
	}
	if err := snap.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	compact, err := snap.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"series"`, `[0,12]`, `[1,7]`, `[2,0]`} {
		if !strings.Contains(string(compact), want) {
			t.Fatalf("json missing %q:\n%s", want, compact)
		}
	}
	if err := snap.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if want := "probe_bp 0\n"; !strings.Contains(prom.String(), want) {
		t.Fatalf("prom missing %q:\n%s", want, prom.String())
	}

	// Series are per-run artifacts: Merge must skip them.
	sink := New()
	sink.Merge(snap)
	if len(sink.Snapshot().Samples) != 0 {
		t.Fatal("series must not merge (per-run artifacts)")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Counter("probe_bp", "")
}
