// Package metrics is the unified observability layer (DESIGN.md S23):
// a dependency-free, race-safe metrics registry shared by the simnet
// runtimes and the protocol packages. The paper's evaluation claims
// are quantitative — message complexity per node (Lemma 5 / E5),
// convergence rounds (E6), retransmission overhead (E11), repair cost
// under churn (E14) — and before this package each subsystem scraped
// those numbers from bespoke counter structs that only worked on the
// single-threaded event runtime. The registry gives every runtime and
// protocol the same instruments:
//
//   - Counter: monotonically increasing atomic int64.
//   - Gauge: float64 with Set/Add/SetMax semantics (atomic bit CAS).
//   - Histogram: fixed upper-bound buckets with atomic counts, total
//     and sum; p50/p95/p99 estimated by linear interpolation within
//     the owning bucket (the same quantile semantics stats.Summary
//     reports for raw samples).
//   - Vector: a fixed-length array of atomic int64 — the per-node
//     counters (SentByNode, ReceivedByNode) of a single run.
//   - Family: counters keyed by one label value (messages by kind).
//
// All write paths are lock-free atomics, so instruments are safe under
// the goroutine runtime and the race detector; Snapshot can be taken
// while writers are running. Snapshots render deterministically (names
// and labels sorted) as aligned text, JSON, or Prometheus exposition
// text — see export.go. Instruments do not touch any RNG and never
// feed back into protocol decisions, so instrumented runs are
// bit-identical to uninstrumented ones (enforced by tests in
// internal/lid and internal/experiments).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates instrument types inside a registry namespace.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
	KindVector
	KindFamily
	KindSeries
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindVector:
		return "vector"
	case KindFamily:
		return "family"
	case KindSeries:
		return "series"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Counter is a monotonically increasing integer.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (must be non-negative; counters are monotone).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: Counter.Add with negative delta")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is larger — the idiom for
// high-water marks (max queue depth, final virtual time).
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets.
// Bounds are the inclusive upper edges of the finite buckets; one
// overflow bucket collects everything above the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	count  atomic.Int64
	sum    Gauge // atomic float64 accumulator
}

// DefBuckets is the default latency bucket layout: powers of two
// spanning the unit-latency to heavy-jitter range of the simulations.
var DefBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~10) and the scan beats
	// binary search at that size; the adds are atomic so concurrent
	// observers never lock.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) from the bucket
// counts by linear interpolation inside the owning bucket, taking the
// previous bound (or 0) as the bucket's lower edge. The overflow
// bucket reports the last finite bound. An empty histogram returns 0.
func (h *Histogram) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("metrics: Quantile with p=%v", p))
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	var cum float64
	lower := 0.0
	for i, bound := range h.bounds {
		c := float64(h.counts[i].Load())
		if cum+c >= rank && c > 0 {
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lower + (bound-lower)*frac
		}
		cum += c
		lower = bound
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Vector is a fixed-length array of counters, indexed by a dense id
// (node id in the simulations). Element writes are atomic.
type Vector struct {
	vals []atomic.Int64
}

// Inc adds 1 to element i.
func (v *Vector) Inc(i int) { v.vals[i].Add(1) }

// Add adds n to element i.
func (v *Vector) Add(i int, n int64) { v.vals[i].Add(n) }

// Value returns element i.
func (v *Vector) Value(i int) int64 { return v.vals[i].Load() }

// Len returns the vector length.
func (v *Vector) Len() int { return len(v.vals) }

// Values returns a copy of all elements.
func (v *Vector) Values() []int64 {
	out := make([]int64, len(v.vals))
	for i := range v.vals {
		out[i] = v.vals[i].Load()
	}
	return out
}

// Family is a set of counters keyed by one label value, e.g. messages
// by protocol kind. With is cheap on the hit path (RLock + map read).
type Family struct {
	label    string
	mu       sync.RWMutex
	children map[string]*Counter
}

// Label returns the label name the family is keyed by.
func (f *Family) Label() string { return f.label }

// With returns the counter for the given label value, creating it on
// first use.
func (f *Family) With(value string) *Counter {
	f.mu.RLock()
	c, ok := f.children[value]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.children[value]; ok {
		return c
	}
	c = &Counter{}
	f.children[value] = c
	return c
}

// Value returns the count for one label value (0 if absent).
func (f *Family) Value(value string) int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if c, ok := f.children[value]; ok {
		return c.Value()
	}
	return 0
}

// Counts returns a copy of all (label value, count) pairs.
func (f *Family) Counts() map[string]int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[string]int64, len(f.children))
	for k, c := range f.children {
		out[k] = c.Value()
	}
	return out
}

// SeriesPoint is one (time, value) sample of a Series.
type SeriesPoint struct {
	T float64
	V float64
}

// Series is an append-only (time, value) time series — the instrument
// behind the per-round stability probes (package obs). Unlike the
// other instruments it is mutex-guarded rather than lock-free: probes
// fire once per sampling interval, never per message, so the series
// write path is off the hot path by construction. Like Vector it is a
// per-run artifact and is skipped by Merge.
type Series struct {
	mu     sync.Mutex
	points []SeriesPoint
}

// Append records one sample. Times should be non-decreasing (probe
// order); Append does not enforce this so replayed snapshots stay
// byte-faithful.
func (s *Series) Append(t, v float64) {
	s.mu.Lock()
	s.points = append(s.points, SeriesPoint{T: t, V: v})
	s.mu.Unlock()
}

// Len returns the number of recorded points.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// Last returns the most recent point (zero if empty).
func (s *Series) Last() SeriesPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.points) == 0 {
		return SeriesPoint{}
	}
	return s.points[len(s.points)-1]
}

// Points returns a copy of all points in append order.
func (s *Series) Points() []SeriesPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SeriesPoint(nil), s.points...)
}

// entry is one named instrument inside a registry.
type entry struct {
	kind Kind
	help string
	inst interface{}
}

// Registry holds named instruments. Get-or-create accessors are safe
// for concurrent use; re-registering a name with a different kind (or
// an incompatible shape) panics, as that is always a programming
// error.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func (r *Registry) lookup(name, help string, kind Kind) (*entry, bool) {
	e, ok := r.entries[name]
	if !ok {
		return nil, false
	}
	if e.kind != kind {
		panic(fmt.Sprintf("metrics: %q registered as %s, requested as %s", name, e.kind, kind))
	}
	return e, true
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(name, help, KindCounter); ok {
		return e.inst.(*Counter)
	}
	c := &Counter{}
	r.entries[name] = &entry{kind: KindCounter, help: help, inst: c}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	g, _ := r.gauge(name, help)
	return g
}

// gauge is Gauge plus a created flag — Merge needs to distinguish a
// gauge it is creating from one that already carries a value.
func (r *Registry) gauge(name, help string) (*Gauge, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(name, help, KindGauge); ok {
		return e.inst.(*Gauge), false
	}
	g := &Gauge{}
	r.entries[name] = &entry{kind: KindGauge, help: help, inst: g}
	return g, true
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use. bounds must be strictly ascending
// and non-empty; nil means DefBuckets. Re-requesting an existing
// histogram with different bounds panics.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	if len(bounds) == 0 {
		panic("metrics: Histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: Histogram bounds must be strictly ascending")
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(name, help, KindHistogram); ok {
		h := e.inst.(*Histogram)
		if len(h.bounds) != len(bounds) {
			panic(fmt.Sprintf("metrics: histogram %q re-registered with different bounds", name))
		}
		for i := range bounds {
			if h.bounds[i] != bounds[i] {
				panic(fmt.Sprintf("metrics: histogram %q re-registered with different bounds", name))
			}
		}
		return h
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.entries[name] = &entry{kind: KindHistogram, help: help, inst: h}
	return h
}

// Vector returns the named fixed-length vector, creating it on first
// use. Re-requesting with a different size panics: a vector is tied to
// one run's node count.
func (r *Registry) Vector(name, help string, size int) *Vector {
	if size < 0 {
		panic("metrics: Vector with negative size")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(name, help, KindVector); ok {
		v := e.inst.(*Vector)
		if v.Len() != size {
			panic(fmt.Sprintf("metrics: vector %q re-registered with size %d != %d", name, size, v.Len()))
		}
		return v
	}
	v := &Vector{vals: make([]atomic.Int64, size)}
	r.entries[name] = &entry{kind: KindVector, help: help, inst: v}
	return v
}

// Family returns the named counter family keyed by the given label
// name, creating it on first use.
func (r *Registry) Family(name, help, label string) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(name, help, KindFamily); ok {
		f := e.inst.(*Family)
		if f.label != label {
			panic(fmt.Sprintf("metrics: family %q re-registered with label %q != %q", name, label, f.label))
		}
		return f
	}
	f := &Family{label: label, children: make(map[string]*Counter)}
	r.entries[name] = &entry{kind: KindFamily, help: help, inst: f}
	return f
}

// Series returns the named time series, creating it on first use.
func (r *Registry) Series(name, help string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(name, help, KindSeries); ok {
		return e.inst.(*Series)
	}
	s := &Series{}
	r.entries[name] = &entry{kind: KindSeries, help: help, inst: s}
	return s
}

// names returns all registered names sorted.
func (r *Registry) names() []string {
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Merge folds a snapshot into this registry: counters and histogram
// buckets add, families add per label value, gauges adopt the incoming
// value on first merge and take the maximum afterwards (every gauge in
// this codebase is a high-water mark or a final time, for which max is
// the meaningful cross-run aggregate — but maxing against a fresh zero
// gauge would destroy negative sentinel values). Vector
// samples are NOT merged — a vector is a per-run, per-node-count
// artifact; its totals already flow through the corresponding
// counters. Merge is how a shared suite-level registry aggregates many
// single-run registries without putting shared state on any hot path.
func (r *Registry) Merge(s Snapshot) {
	for _, smp := range s.Samples {
		switch smp.Kind {
		case KindCounter:
			r.Counter(smp.Name, smp.Help).Add(smp.Count)
		case KindGauge:
			// A gauge Merge itself creates adopts the incoming value
			// verbatim: SetMax against the fresh zero value would
			// silently erase negative sentinels (a never-converged
			// stability rung of -1 would merge into the sink as 0,
			// reading as instant convergence). Established gauges keep
			// the high-water semantics.
			if g, created := r.gauge(smp.Name, smp.Help); created {
				g.Set(smp.Value)
			} else {
				g.SetMax(smp.Value)
			}
		case KindHistogram:
			h := r.Histogram(smp.Name, smp.Help, smp.Bounds)
			for i, c := range smp.BucketCounts {
				if c > 0 {
					h.counts[i].Add(c)
				}
			}
			h.count.Add(smp.Count)
			h.sum.Add(smp.Value)
		case KindFamily:
			f := r.Family(smp.Name, smp.Help, smp.Label)
			for _, lv := range smp.LabelValues {
				f.With(lv.Value).Add(lv.Count)
			}
		case KindVector, KindSeries:
			// Per-run artifacts; see doc comment.
		}
	}
}
