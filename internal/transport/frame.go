// Package transport lifts the protocol stack off the in-process
// simulator and onto a real wire. It provides the two things simnet
// never needed: a binary representation for protocol messages (simnet
// passes Go values between goroutines; a socket passes bytes), and a
// socket-backed runtime (udp.go, cluster.go) that implements the same
// simnet.Transport contract as the Runner and GoRunner, so the
// lid/reliable/detector stack runs on it unchanged.
//
// # Frame format
//
// A frame is one encoded protocol message, length-prefixed so frames
// concatenate into datagrams (coalescing) or byte streams (a future
// TCP backend) without any out-of-band delimiters:
//
//	offset 0  uint32 (big-endian)  frame length L = 3 + len(payload)
//	offset 4  uint8                codec version of the message type
//	offset 5  uint16 (big-endian)  registered message type ID
//	offset 7  byte[L-3]            type-specific payload
//
// Encodings are canonical and deterministic: every codec writes
// fixed-width big-endian fields, and every decoder is strict — wrong
// length, out-of-range enum, non-0/1 bool byte, or unknown version all
// fail instead of being silently tolerated. Strictness buys the
// invariant the round-trip tests and FuzzFrameDecode enforce: any
// byte string that decodes at all re-encodes to exactly itself, so
// there is one wire representation per message and goldens over
// captured traffic are meaningful.
//
// # Codec registry
//
// Message types register a Codec under a fixed ID (the ID* constants
// below — a central, append-only number space). Registration happens
// in each protocol package's wire.go init, so importing a protocol
// brings its wire format along; the registry is how the socket runtime
// turns simnet.Message values into frames and back without importing
// any protocol package (which would invert the layering).
package transport

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"sort"
	"sync"

	"overlaymatch/internal/rng"
	"overlaymatch/internal/simnet"
)

// Registered message type IDs. The space is append-only: an ID, once
// assigned, keeps its meaning forever (frames may be captured to disk).
// Low byte groups by package so hexdumps stay readable.
const (
	// IDRaw is transport's own opaque byte payload (see Raw).
	IDRaw uint16 = 0x0001

	// Package lid (robust's TolerantNode speaks the same messages).
	IDLIDMsg uint16 = 0x0101
	// Package phased (phase-tagged lid messages).
	IDPhasedMsg uint16 = 0x0102

	// Package dlid: maintenance wire messages and the environment
	// commands its churn schedules inject.
	IDDlidMsg      uint16 = 0x0201
	IDDlidCmdLeave uint16 = 0x0202
	IDDlidCmdJoin  uint16 = 0x0203

	// Package reliable: the ack/retransmit framing.
	IDReliableData uint16 = 0x0301
	IDReliableAck  uint16 = 0x0302

	// Package detector: heartbeat liveness probes.
	IDDetectorHB    uint16 = 0x0401
	IDDetectorHBAck uint16 = 0x0402
)

// frameOverhead is the fixed header cost: 4-byte length prefix, 1-byte
// codec version, 2-byte type ID.
const frameOverhead = 7

// MaxFrame bounds one frame's total size (header included). It caps
// decoder recursion (a reliable DATA frame nests its payload frame)
// and keeps a single frame inside what a UDP datagram can carry.
const MaxFrame = 1 << 16

// Codec is one message type's wire representation. Encode appends the
// canonical payload bytes (no header) to buf; Decode parses exactly
// those bytes back, rejecting anything non-canonical. Sample draws a
// pseudo-random valid instance — the generator behind the round-trip
// property tests and the fuzz seed corpus, so every registered type is
// exercised without the test layer knowing any type's shape.
type Codec struct {
	// Name labels the type in errors and test output, e.g. "lid.Msg".
	Name string
	// Version is the codec version stamped into every frame header;
	// bump it when the payload layout changes incompatibly.
	Version uint8
	// Type is the concrete Go type this codec handles.
	Type reflect.Type
	// Encode appends msg's canonical payload to buf.
	Encode func(msg simnet.Message, buf []byte) []byte
	// Decode parses one payload. It must consume exactly payload and
	// reject non-canonical bytes.
	Decode func(payload []byte) (simnet.Message, error)
	// Sample returns a valid pseudo-random instance drawn from src.
	Sample func(src *rng.Source) simnet.Message
}

var registry = struct {
	sync.RWMutex
	byID   map[uint16]Codec
	byType map[reflect.Type]uint16
}{
	byID:   make(map[uint16]Codec),
	byType: make(map[reflect.Type]uint16),
}

// Register installs a codec under id. It is meant to be called from
// protocol packages' init functions; duplicate IDs, duplicate types,
// and incomplete codecs are programming errors and panic.
func Register(id uint16, c Codec) {
	if c.Name == "" || c.Type == nil || c.Encode == nil || c.Decode == nil || c.Sample == nil {
		panic(fmt.Sprintf("transport: incomplete codec registration for ID %#04x", id))
	}
	registry.Lock()
	defer registry.Unlock()
	if prev, dup := registry.byID[id]; dup {
		panic(fmt.Sprintf("transport: ID %#04x registered twice (%s, %s)", id, prev.Name, c.Name))
	}
	if prevID, dup := registry.byType[c.Type]; dup {
		panic(fmt.Sprintf("transport: type %v registered twice (%#04x, %#04x)", c.Type, prevID, id))
	}
	registry.byID[id] = c
	registry.byType[c.Type] = id
}

// CodecByID returns the codec registered under id.
func CodecByID(id uint16) (Codec, bool) {
	registry.RLock()
	defer registry.RUnlock()
	c, ok := registry.byID[id]
	return c, ok
}

// CodecFor returns the registered ID and codec for msg's concrete type.
func CodecFor(msg simnet.Message) (uint16, Codec, bool) {
	registry.RLock()
	defer registry.RUnlock()
	id, ok := registry.byType[reflect.TypeOf(msg)]
	if !ok {
		return 0, Codec{}, false
	}
	return id, registry.byID[id], true
}

// RegisteredIDs returns every registered type ID in ascending order —
// the iteration surface of the generic round-trip tests and the fuzz
// corpus builder.
func RegisteredIDs() []uint16 {
	registry.RLock()
	defer registry.RUnlock()
	ids := make([]uint16, 0, len(registry.byID))
	for id := range registry.byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// AppendFrame encodes msg as one complete frame (header + payload)
// appended to buf. It fails if msg's type has no registered codec or
// the encoded frame would exceed MaxFrame.
func AppendFrame(buf []byte, msg simnet.Message) ([]byte, error) {
	id, c, ok := CodecFor(msg)
	if !ok {
		return buf, fmt.Errorf("transport: no codec registered for %T", msg)
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, c.Version, byte(id>>8), byte(id))
	buf = c.Encode(msg, buf)
	frameLen := len(buf) - start - 4 // version + id + payload
	if frameLen+4 > MaxFrame {
		return buf[:start], fmt.Errorf("transport: %s frame of %d bytes exceeds MaxFrame", c.Name, frameLen+4)
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(frameLen))
	return buf, nil
}

// EncodeFrame is AppendFrame into a fresh buffer.
func EncodeFrame(msg simnet.Message) ([]byte, error) {
	return AppendFrame(nil, msg)
}

// DecodeFrame parses the first frame of data and returns the decoded
// message and the number of bytes consumed (header included). Frames
// concatenate, so callers loop: decode, advance by consumed, repeat.
func DecodeFrame(data []byte) (simnet.Message, int, error) {
	if len(data) < frameOverhead {
		return nil, 0, fmt.Errorf("transport: short frame header (%d bytes)", len(data))
	}
	frameLen := binary.BigEndian.Uint32(data)
	if frameLen < frameOverhead-4 {
		return nil, 0, fmt.Errorf("transport: frame length %d below header minimum", frameLen)
	}
	if frameLen+4 > MaxFrame {
		return nil, 0, fmt.Errorf("transport: frame length %d exceeds MaxFrame", frameLen+4)
	}
	total := int(frameLen) + 4
	if len(data) < total {
		return nil, 0, fmt.Errorf("transport: truncated frame (%d of %d bytes)", len(data), total)
	}
	ver := data[4]
	id := uint16(data[5])<<8 | uint16(data[6])
	c, ok := CodecByID(id)
	if !ok {
		return nil, 0, fmt.Errorf("transport: unknown message type %#04x", id)
	}
	if ver != c.Version {
		return nil, 0, fmt.Errorf("transport: %s version %d, codec speaks %d", c.Name, ver, c.Version)
	}
	msg, err := c.Decode(data[frameOverhead:total])
	if err != nil {
		return nil, 0, fmt.Errorf("transport: %s payload: %v", c.Name, err)
	}
	return msg, total, nil
}

// Raw is transport's own opaque payload type: a byte string carried
// verbatim. It gives the wire layer a message type of its own (loop
// tests, nested-frame samples, future control traffic) and demonstrates
// the registration pattern without touching any protocol package.
type Raw []byte

// Kind implements simnet.Kinder.
func (Raw) Kind() string { return "RAW" }

// WireSize implements simnet.Sizer: header plus the bytes themselves.
func (r Raw) WireSize() int { return frameOverhead + len(r) }

func init() {
	Register(IDRaw, Codec{
		Name:    "transport.Raw",
		Version: 1,
		Type:    reflect.TypeOf(Raw(nil)),
		Encode: func(msg simnet.Message, buf []byte) []byte {
			return append(buf, msg.(Raw)...)
		},
		Decode: func(payload []byte) (simnet.Message, error) {
			return Raw(append([]byte(nil), payload...)), nil
		},
		Sample: func(src *rng.Source) simnet.Message {
			b := make(Raw, src.Uint64n(24))
			for i := range b {
				b[i] = byte(src.Uint64())
			}
			return b
		},
	})
}
