package transport

import (
	"fmt"
	"hash/crc32"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"overlaymatch/internal/metrics"
	"overlaymatch/internal/simnet"
)

// Datagram envelope: [magic uint32][sender uint32][crc32 uint32] then
// one or more concatenated frames. The CRC (IEEE, over the frame bytes)
// is the end-to-end integrity check the reliable layer's recovery story
// assumes: a damaged datagram is dropped whole and retransmission
// restores it, exactly like a simnet.Corrupted verdict under the
// simulator's fault policies.
const (
	datagramMagic  = 0x4F564D31 // "OVM1"
	envelopeLen    = 12
	defaultBudget  = 1200 // coalesced frame bytes per datagram (under common MTUs)
	recvBufferSize = 1 << 16
)

// UDPConfig parameterizes one socket-backed node.
type UDPConfig struct {
	// NodeID is this node's protocol identity in [0, N).
	NodeID int
	// N is the overlay size; sends outside [0, N) panic, like simnet.
	N int
	// Listen is the UDP listen address, e.g. "127.0.0.1:7000" or
	// "127.0.0.1:0" (kernel-assigned port, see LocalAddr).
	Listen string
	// Peers maps node IDs to UDP addresses. It may be set (or extended)
	// after ListenUDP via SetPeers — the loopback cluster binds every
	// socket first, then exchanges the kernel-assigned ports — but must
	// cover every destination before Start.
	Peers map[int]string
	// TimeUnit is the real duration of one virtual time unit for
	// timers, like GoRunner.SetTimeUnit (default 1ms).
	TimeUnit time.Duration
	// CoalesceBytes is the frame-byte budget per datagram: queued
	// frames toward one peer are packed together up to this size
	// (default 1200). A single frame larger than the budget still goes
	// out, alone.
	CoalesceBytes int
}

func (c UDPConfig) timeUnit() time.Duration {
	if c.TimeUnit > 0 {
		return c.TimeUnit
	}
	return time.Millisecond
}

func (c UDPConfig) budget() int {
	if c.CoalesceBytes > 0 {
		return c.CoalesceBytes
	}
	return defaultBudget
}

// UDPCounters is a snapshot of one node's wire accounting. Frames are
// protocol messages (what simnet counts as sends/deliveries);
// datagrams are the socket-level packets they coalesce into.
type UDPCounters struct {
	FramesSent     int64
	FramesDelivered int64
	DatagramsSent  int64
	DatagramsRecv  int64
	BytesSent      int64
	BytesRecv      int64
	TimersFired    int64
	// Dropped counts ingress discards: CRC or envelope damage, decode
	// failures, and frames arriving for an unknown sender.
	Dropped int64
}

// delivery is one queued upcall for the node's handler goroutine.
type udpDelivery struct {
	from  int
	msg   simnet.Message
	timer bool
}

// inbox is the unbounded MPSC delivery queue (the same discipline as
// simnet's goroutine mailboxes: senders never block, one owner pops).
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []udpDelivery
	closed bool
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) push(d udpDelivery) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return
	}
	ib.items = append(ib.items, d)
	ib.cond.Signal()
}

func (ib *inbox) pop() (udpDelivery, bool) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for len(ib.items) == 0 && !ib.closed {
		ib.cond.Wait()
	}
	if len(ib.items) == 0 {
		return udpDelivery{}, false
	}
	d := ib.items[0]
	ib.items = ib.items[1:]
	return d, true
}

func (ib *inbox) len() int {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return len(ib.items)
}

func (ib *inbox) close() {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	ib.closed = true
	ib.cond.Broadcast()
}

// peerLink is the per-peer egress queue its send loop drains: frames
// accumulate while a datagram is on the wire, which is where
// coalescing comes from — a burst toward one peer (a proposal wave, a
// retransmission volley) shares envelopes instead of paying one packet
// per message.
type peerLink struct {
	mu     sync.Mutex
	cond   *sync.Cond
	frames [][]byte
	closed bool
}

func newPeerLink() *peerLink {
	l := &peerLink{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *peerLink) push(frame []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.frames = append(l.frames, frame)
	l.cond.Signal()
}

// take blocks until frames are queued (returning them all) or the link
// closes (returning nil).
func (l *peerLink) take() [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.frames) == 0 && !l.closed {
		l.cond.Wait()
	}
	if len(l.frames) == 0 {
		return nil
	}
	frames := l.frames
	l.frames = nil
	return frames
}

func (l *peerLink) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.cond.Broadcast()
}

// UDPNode is one overlay node attached to a real UDP socket. It drives
// a simnet.Handler exactly like the in-process runtimes do — Init then
// sequential HandleMessage calls on one goroutine, timers as
// self-deliveries — but its sends are encoded frames coalesced into
// datagrams, and its deliveries come off the wire. The whole protocol
// stack (lid under reliable under detector) runs on it unchanged.
type UDPNode struct {
	cfg   UDPConfig
	conn  *net.UDPConn
	peers map[int]*net.UDPAddr

	inbox *inbox

	linkMu sync.Mutex
	links  map[int]*peerLink

	wg      sync.WaitGroup
	started bool
	closed  atomic.Bool

	halted        atomic.Bool
	pendingTimers atomic.Int64
	lastActivity  atomic.Int64 // UnixNano of the most recent wire/timer event

	framesSent      atomic.Int64
	framesDelivered atomic.Int64
	datagramsSent   atomic.Int64
	datagramsRecv   atomic.Int64
	bytesSent       atomic.Int64
	bytesRecv       atomic.Int64
	timersFired     atomic.Int64
	dropped         atomic.Int64

	// sentByKind/receivedFrom are only touched on the delivery
	// goroutine (Send happens inside handler calls), so they need no
	// lock; they are read after the node is stopped.
	sentByKind map[string]int
}

// ListenUDP binds cfg.Listen and returns the node, not yet started.
func ListenUDP(cfg UDPConfig) (*UDPNode, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("transport: node count %d must be positive", cfg.N)
	}
	if cfg.NodeID < 0 || cfg.NodeID >= cfg.N {
		return nil, fmt.Errorf("transport: node ID %d outside [0,%d)", cfg.NodeID, cfg.N)
	}
	if cfg.Listen == "" {
		return nil, fmt.Errorf("transport: empty listen address")
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %v", cfg.Listen, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %v", cfg.Listen, err)
	}
	// A generous kernel buffer: a proposal wave at n=32+ bursts many
	// datagrams at one socket, and every loss costs a retransmission
	// round trip. Best effort — some systems clamp it.
	_ = conn.SetReadBuffer(1 << 20)
	nd := &UDPNode{
		cfg:        cfg,
		conn:       conn,
		peers:      make(map[int]*net.UDPAddr),
		inbox:      newInbox(),
		links:      make(map[int]*peerLink),
		sentByKind: make(map[string]int),
	}
	nd.touch()
	if err := nd.SetPeers(cfg.Peers); err != nil {
		conn.Close()
		return nil, err
	}
	return nd, nil
}

// LocalAddr returns the bound socket address (resolving ":0" listens).
func (nd *UDPNode) LocalAddr() *net.UDPAddr { return nd.conn.LocalAddr().(*net.UDPAddr) }

// ID returns the node's protocol identity.
func (nd *UDPNode) ID() int { return nd.cfg.NodeID }

// SetPeers resolves and installs id -> address routes (adding to any
// set at ListenUDP). An entry for the node itself is allowed and
// ignored. Call before Start.
func (nd *UDPNode) SetPeers(peers map[int]string) error {
	for id, addr := range peers {
		if id < 0 || id >= nd.cfg.N {
			return fmt.Errorf("transport: peer ID %d outside [0,%d)", id, nd.cfg.N)
		}
		if id == nd.cfg.NodeID {
			continue
		}
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return fmt.Errorf("transport: peer %d address %q: %v", id, addr, err)
		}
		nd.peers[id] = ua
	}
	return nil
}

// touch records wire activity for the quiescence detector.
func (nd *UDPNode) touch() { nd.lastActivity.Store(time.Now().UnixNano()) }

// udpCtx implements simnet.Endpoint for handler calls on this node.
type udpCtx struct {
	nd *UDPNode
}

func (c *udpCtx) ID() int { return c.nd.cfg.NodeID }

// Time implements simnet.Context. Like the GoRunner, a socket node has
// no global virtual clock; layers that need one (adaptive RTO
// sampling) fall back to their clockless behavior.
func (c *udpCtx) Time() float64 { return 0 }

func (c *udpCtx) Halt() { c.nd.halted.Store(true) }

func (c *udpCtx) Send(to int, msg simnet.Message) {
	nd := c.nd
	if to < 0 || to >= nd.cfg.N {
		panic(fmt.Sprintf("transport: send to %d outside [0,%d)", to, nd.cfg.N))
	}
	frame, err := EncodeFrame(msg)
	if err != nil {
		// An unregistered message type is a wiring bug (the simulator
		// would have carried it silently; the wire cannot) — fail at
		// the send site where the stack trace names the protocol.
		panic(fmt.Sprintf("transport: node %d sending %T: %v", nd.cfg.NodeID, msg, err))
	}
	nd.framesSent.Add(1)
	nd.sentByKind[simnet.KindOf(msg)]++
	nd.link(to).push(frame)
}

// SetTimer implements simnet.TimerSetter: msg comes back to this node
// after delay virtual units of wall-clock time, like the GoRunner.
func (c *udpCtx) SetTimer(delay float64, msg simnet.Message) {
	if delay <= 0 {
		panic("transport: SetTimer needs a positive delay")
	}
	nd := c.nd
	nd.pendingTimers.Add(1)
	d := time.Duration(delay * float64(nd.cfg.timeUnit()))
	time.AfterFunc(d, func() {
		nd.pendingTimers.Add(-1)
		nd.touch()
		nd.inbox.push(udpDelivery{from: nd.cfg.NodeID, msg: msg, timer: true})
	})
}

// link returns (creating on first use) the egress queue toward peer
// and its send loop.
func (nd *UDPNode) link(to int) *peerLink {
	nd.linkMu.Lock()
	defer nd.linkMu.Unlock()
	l, ok := nd.links[to]
	if !ok {
		addr, known := nd.peers[to]
		if !known {
			panic(fmt.Sprintf("transport: node %d has no address for peer %d", nd.cfg.NodeID, to))
		}
		l = newPeerLink()
		nd.links[to] = l
		nd.wg.Add(1)
		go nd.sendLoop(l, addr)
	}
	return l
}

// sendLoop drains one peer's egress queue, coalescing queued frames
// into enveloped datagrams up to the byte budget.
func (nd *UDPNode) sendLoop(l *peerLink, addr *net.UDPAddr) {
	defer nd.wg.Done()
	budget := nd.cfg.budget()
	buf := make([]byte, 0, envelopeLen+budget)
	for {
		frames := l.take()
		if frames == nil {
			return
		}
		i := 0
		for i < len(frames) {
			buf = buf[:0]
			magic := uint32(datagramMagic)
			sender := uint32(nd.cfg.NodeID)
			buf = append(buf,
				byte(magic>>24), byte(magic>>16), byte(magic>>8), byte(magic),
				byte(sender>>24), byte(sender>>16), byte(sender>>8), byte(sender),
				0, 0, 0, 0) // CRC patched below
			// At least one frame per datagram; more while they fit.
			for i < len(frames) && (len(buf) == envelopeLen || len(buf)+len(frames[i]) <= envelopeLen+budget) {
				buf = append(buf, frames[i]...)
				i++
			}
			crc := crc32.ChecksumIEEE(buf[envelopeLen:])
			buf[8], buf[9], buf[10], buf[11] = byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc)
			if _, err := nd.conn.WriteToUDP(buf, addr); err != nil {
				if nd.closed.Load() {
					return
				}
				nd.dropped.Add(1)
				continue
			}
			nd.datagramsSent.Add(1)
			nd.bytesSent.Add(int64(len(buf)))
			nd.touch()
		}
	}
}

// readLoop parses incoming datagrams into frame deliveries.
func (nd *UDPNode) readLoop() {
	defer nd.wg.Done()
	buf := make([]byte, recvBufferSize)
	for {
		n, _, err := nd.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		nd.touch()
		nd.datagramsRecv.Add(1)
		nd.bytesRecv.Add(int64(n))
		data := buf[:n]
		if len(data) < envelopeLen ||
			uint32(data[0])<<24|uint32(data[1])<<16|uint32(data[2])<<8|uint32(data[3]) != datagramMagic {
			nd.dropped.Add(1)
			continue
		}
		from := int(uint32(data[4])<<24 | uint32(data[5])<<16 | uint32(data[6])<<8 | uint32(data[7]))
		crc := uint32(data[8])<<24 | uint32(data[9])<<16 | uint32(data[10])<<8 | uint32(data[11])
		if from < 0 || from >= nd.cfg.N || from == nd.cfg.NodeID {
			nd.dropped.Add(1)
			continue
		}
		if crc32.ChecksumIEEE(data[envelopeLen:]) != crc {
			// Damaged in transit: drop the whole datagram. The reliable
			// layer's retransmission recovers, exactly as it does from a
			// simulated corrupt verdict.
			nd.dropped.Add(1)
			continue
		}
		rest := data[envelopeLen:]
		for len(rest) > 0 {
			msg, consumed, err := DecodeFrame(rest)
			if err != nil {
				// One bad frame poisons the remainder (lengths can no
				// longer be trusted); count and discard.
				nd.dropped.Add(1)
				break
			}
			rest = rest[consumed:]
			nd.inbox.push(udpDelivery{from: from, msg: msg})
		}
	}
}

// Start attaches the handler and begins delivery: Init runs first on
// the delivery goroutine, then arriving frames and timers, one at a
// time, until Close — the same per-node sequentiality contract the
// simulator runtimes guarantee.
func (nd *UDPNode) Start(h simnet.Handler) {
	if nd.started {
		panic("transport: UDPNode started twice")
	}
	nd.started = true
	nd.wg.Add(2)
	go nd.readLoop()
	go func() {
		defer nd.wg.Done()
		ctx := &udpCtx{nd: nd}
		h.Init(ctx)
		for {
			d, ok := nd.inbox.pop()
			if !ok {
				return
			}
			h.HandleMessage(ctx, d.from, d.msg)
			if d.timer {
				nd.timersFired.Add(1)
			} else {
				nd.framesDelivered.Add(1)
			}
			nd.touch()
		}
	}()
}

// Halted reports whether the handler stack called Halt.
func (nd *UDPNode) Halted() bool { return nd.halted.Load() }

// Quiet reports whether the node is locally quiescent: handler halted,
// no queued deliveries, no pending timers, and no wire or timer
// activity for the given window. On a real network this is necessarily
// a heuristic — a datagram can always still be in flight — but with
// the reliable layer active, "halted" already certifies every frame
// this node sent was acknowledged, so the window only needs to cover
// residual peer traffic (duplicate acks, trailing heartbeats).
func (nd *UDPNode) Quiet(window time.Duration) bool {
	if !nd.halted.Load() || nd.inbox.len() > 0 || nd.pendingTimers.Load() > 0 {
		return false
	}
	last := time.Unix(0, nd.lastActivity.Load())
	return time.Since(last) >= window
}

// AwaitQuiescence blocks until Quiet(window) holds or the timeout
// expires (error). The standalone-binary form of Cluster.Run's
// termination wait.
func (nd *UDPNode) AwaitQuiescence(timeout, window time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if nd.Quiet(window) {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("transport: node %d not quiescent after %v (halted=%v queued=%d timers=%d)",
		nd.cfg.NodeID, timeout, nd.halted.Load(), nd.inbox.len(), nd.pendingTimers.Load())
}

// Close stops the node: the socket closes (ending the read loop), the
// delivery queue drains no further, and the send loops exit. Close is
// idempotent and safe to call after a failed Await.
func (nd *UDPNode) Close() {
	if nd.closed.Swap(true) {
		return
	}
	nd.conn.Close()
	nd.inbox.close()
	nd.linkMu.Lock()
	for _, l := range nd.links {
		l.close()
	}
	nd.linkMu.Unlock()
	nd.wg.Wait()
}

// Counters snapshots the node's wire accounting.
func (nd *UDPNode) Counters() UDPCounters {
	return UDPCounters{
		FramesSent:      nd.framesSent.Load(),
		FramesDelivered: nd.framesDelivered.Load(),
		DatagramsSent:   nd.datagramsSent.Load(),
		DatagramsRecv:   nd.datagramsRecv.Load(),
		BytesSent:       nd.bytesSent.Load(),
		BytesRecv:       nd.bytesRecv.Load(),
		TimersFired:     nd.timersFired.Load(),
		Dropped:         nd.dropped.Load(),
	}
}

// PublishMetrics adds the node's wire counters to reg with the node ID
// as a label value, mirroring the publish pattern of the protocol
// layers. Nil-safe. Call after the node is closed.
func (nd *UDPNode) PublishMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	c := nd.Counters()
	reg.Counter("transport_frames_sent_total", "protocol frames encoded and queued").Add(c.FramesSent)
	reg.Counter("transport_frames_delivered_total", "frames decoded and delivered").Add(c.FramesDelivered)
	reg.Counter("transport_datagrams_sent_total", "UDP datagrams written").Add(c.DatagramsSent)
	reg.Counter("transport_datagrams_recv_total", "UDP datagrams read").Add(c.DatagramsRecv)
	reg.Counter("transport_bytes_sent_total", "UDP payload bytes written, envelopes included").Add(c.BytesSent)
	reg.Counter("transport_bytes_recv_total", "UDP payload bytes read, envelopes included").Add(c.BytesRecv)
	reg.Counter("transport_dropped_total", "ingress discards (CRC, decode, unknown sender)").Add(c.Dropped)
	kinds := make([]string, 0, len(nd.sentByKind))
	for k := range nd.sentByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fam := reg.Family("transport_sent_by_kind", "frames sent by protocol kind", "kind")
	for _, k := range kinds {
		fam.With(k).Add(int64(nd.sentByKind[k]))
	}
}
