package transport_test

// The generic wire-codec suite. It lives in an external test package so
// it can import every protocol package for the side effect of its
// wire.go registration — exactly how a deployment binary acquires its
// codec table — while package transport itself stays below the
// protocols in the import order.

import (
	"bytes"
	"testing"

	_ "overlaymatch/internal/detector"
	_ "overlaymatch/internal/dlid"
	_ "overlaymatch/internal/phased"
	_ "overlaymatch/internal/reliable"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/transport"

	_ "overlaymatch/internal/lid"
)

// roundTripSeeds is the per-type sample count of the property test.
const roundTripSeeds = 200

// TestRegistryCoversProtocolStack pins the registered ID set: every
// wire message of every protocol package must be present, so silently
// dropping a wire.go registration (or its import) fails here rather
// than at the first socket run.
func TestRegistryCoversProtocolStack(t *testing.T) {
	want := []uint16{
		transport.IDRaw,
		transport.IDLIDMsg,
		transport.IDPhasedMsg,
		transport.IDDlidMsg,
		transport.IDDlidCmdLeave,
		transport.IDDlidCmdJoin,
		transport.IDReliableData,
		transport.IDReliableAck,
		transport.IDDetectorHB,
		transport.IDDetectorHBAck,
	}
	got := transport.RegisteredIDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d codecs, want %d (%#04x)", len(got), len(want), got)
	}
	for i, id := range want {
		if got[i] != id {
			t.Fatalf("RegisteredIDs()[%d] = %#04x, want %#04x", i, got[i], id)
		}
	}
}

// TestRoundTripProperty is the satellite property test: for every
// registered type, encode -> decode -> encode must be byte-identical
// across roundTripSeeds sampled instances. Byte-identity of the
// second encoding (rather than value equality of the messages) is the
// stronger claim: it proves the decoder is exact and the encoding
// canonical, which is what FuzzFrameDecode's accept-implies-canonical
// invariant rests on.
func TestRoundTripProperty(t *testing.T) {
	for _, id := range transport.RegisteredIDs() {
		c, ok := transport.CodecByID(id)
		if !ok {
			t.Fatalf("CodecByID(%#04x) missing after RegisteredIDs listed it", id)
		}
		t.Run(c.Name, func(t *testing.T) {
			src := rng.New(0xF4A7C15 ^ uint64(id))
			for i := 0; i < roundTripSeeds; i++ {
				msg := c.Sample(src)
				first, err := transport.EncodeFrame(msg)
				if err != nil {
					t.Fatalf("sample %d: encode: %v", i, err)
				}
				decoded, consumed, err := transport.DecodeFrame(first)
				if err != nil {
					t.Fatalf("sample %d: decode: %v", i, err)
				}
				if consumed != len(first) {
					t.Fatalf("sample %d: decode consumed %d of %d bytes", i, consumed, len(first))
				}
				second, err := transport.EncodeFrame(decoded)
				if err != nil {
					t.Fatalf("sample %d: re-encode: %v", i, err)
				}
				if !bytes.Equal(first, second) {
					t.Fatalf("sample %d: round trip not byte-identical\n first: %x\nsecond: %x", i, first, second)
				}
			}
		})
	}
}

// TestFrameHeader checks the documented layout directly on one frame:
// big-endian length covering version+ID+payload, then version, then ID.
func TestFrameHeader(t *testing.T) {
	frame, err := transport.EncodeFrame(transport.Raw("abc"))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	want := []byte{0, 0, 0, 6, 1, 0, 1, 'a', 'b', 'c'}
	if !bytes.Equal(frame, want) {
		t.Fatalf("frame = %x, want %x", frame, want)
	}
}

// TestFrameConcatenation streams one sample of every registered type
// into a single buffer and decodes them back in order — the coalesced
// datagram body in miniature.
func TestFrameConcatenation(t *testing.T) {
	src := rng.New(7)
	var buf []byte
	var frames [][]byte
	for _, id := range transport.RegisteredIDs() {
		c, _ := transport.CodecByID(id)
		msg := c.Sample(src)
		single, err := transport.EncodeFrame(msg)
		if err != nil {
			t.Fatalf("%s: encode: %v", c.Name, err)
		}
		frames = append(frames, single)
		if buf, err = transport.AppendFrame(buf, msg); err != nil {
			t.Fatalf("%s: append: %v", c.Name, err)
		}
	}
	rest := buf
	for i, want := range frames {
		msg, consumed, err := transport.DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		re, err := transport.EncodeFrame(msg)
		if err != nil {
			t.Fatalf("frame %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(re, want) {
			t.Fatalf("frame %d decoded to %x, want %x", i, re, want)
		}
		rest = rest[consumed:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after decoding every frame", len(rest))
	}
}

// TestDecodeStrictness enumerates the malformed-input classes the
// decoder must reject.
func TestDecodeStrictness(t *testing.T) {
	good, err := transport.EncodeFrame(transport.Raw("payload"))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", good[:6]},
		{"truncated payload", good[:len(good)-2]},
		{"length below header minimum", []byte{0, 0, 0, 2, 1, 0, 1}},
		{"length above MaxFrame", []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 0, 1}},
		{"unknown type ID", []byte{0, 0, 0, 3, 1, 0xEE, 0xEE}},
		{"wrong codec version", []byte{0, 0, 0, 3, 99, 0, 1}},
		{"non-canonical lid opcode", []byte{0, 0, 0, 4, 1, 1, 1, 7}},
		{"lid payload too long", []byte{0, 0, 0, 5, 1, 1, 1, 1, 1}},
	}
	for _, tc := range cases {
		if _, _, err := transport.DecodeFrame(tc.data); err == nil {
			t.Errorf("%s: decode accepted %x", tc.name, tc.data)
		}
	}
}

// unregistered is a message type deliberately missing from the registry.
type unregistered struct{}

func (unregistered) Kind() string { return "NOPE" }

func TestUnregisteredTypeFails(t *testing.T) {
	var msg simnet.Message = unregistered{}
	if _, err := transport.EncodeFrame(msg); err == nil {
		t.Fatal("EncodeFrame accepted an unregistered type")
	}
	if _, err := transport.AppendFrame(nil, msg); err == nil {
		t.Fatal("AppendFrame accepted an unregistered type")
	}
}

// TestCodecForAgreesWithRegistry ties the type-directed lookup to the
// ID-directed one.
func TestCodecForAgreesWithRegistry(t *testing.T) {
	src := rng.New(11)
	for _, id := range transport.RegisteredIDs() {
		c, _ := transport.CodecByID(id)
		gotID, gotC, ok := transport.CodecFor(c.Sample(src))
		if !ok || gotID != id || gotC.Name != c.Name {
			t.Fatalf("CodecFor(%s sample) = (%#04x, %q, %v), want (%#04x, %q, true)",
				c.Name, gotID, gotC.Name, ok, id, c.Name)
		}
	}
}
