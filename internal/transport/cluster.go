package transport

import (
	"fmt"
	"strings"
	"time"

	"overlaymatch/internal/simnet"
)

// Cluster boots n UDPNodes on loopback sockets in one process and runs
// a handler set over real datagrams. It is the third simnet.Transport
// backend — after the deterministic Runner and the in-memory GoRunner
// — and the conformance bridge between them and a deployment: a test
// seeds the same workload into a Runner and a Cluster and asserts the
// matchings agree.
//
// Every socket binds 127.0.0.1:0 first; the kernel-assigned ports are
// then exchanged as each node's peer table, so cluster tests never
// race over fixed port numbers.
type Cluster struct {
	nodes []*UDPNode
	cfg   ClusterConfig
}

// Compile-time proof that a real-socket cluster satisfies the same
// contract as the simulator runtimes. (Asserted here, not in package
// simnet, to keep simnet import-free of the wire layer.)
var _ simnet.Transport = (*Cluster)(nil)

// ClusterConfig parameterizes a loopback cluster. The zero value is
// usable.
type ClusterConfig struct {
	// TimeUnit is the wall-clock duration of one virtual timer unit on
	// every node (default 1ms, like GoRunner.SetTimeUnit).
	TimeUnit time.Duration
	// CoalesceBytes is each node's per-datagram frame budget (default
	// 1200).
	CoalesceBytes int
	// Timeout bounds Run's wait for cluster quiescence (default 30s).
	Timeout time.Duration
	// IdleWindow is how long every node must be silent — halted, empty
	// inbox, no pending timers, no wire activity — before Run declares
	// the run complete (default 150ms). With the reliable layer in the
	// stack, Halt already certifies full acknowledgment, so the window
	// only has to outlast residual duplicate/heartbeat traffic.
	IdleWindow time.Duration
}

func (c ClusterConfig) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 30 * time.Second
}

func (c ClusterConfig) idleWindow() time.Duration {
	if c.IdleWindow > 0 {
		return c.IdleWindow
	}
	return 150 * time.Millisecond
}

// NewLoopbackCluster binds n loopback sockets and wires the full peer
// mesh. No handler runs until Run. Callers must Close (Run leaves the
// cluster closed already; Close is idempotent).
func NewLoopbackCluster(n int, cfg ClusterConfig) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: cluster size %d must be positive", n)
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < n; i++ {
		nd, err := ListenUDP(UDPConfig{
			NodeID:        i,
			N:             n,
			Listen:        "127.0.0.1:0",
			TimeUnit:      cfg.TimeUnit,
			CoalesceBytes: cfg.CoalesceBytes,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, nd)
	}
	// Exchange the kernel-assigned ports as everyone's peer table.
	addrs := make(map[int]string, n)
	for i, nd := range c.nodes {
		addrs[i] = nd.LocalAddr().String()
	}
	for _, nd := range c.nodes {
		if err := nd.SetPeers(addrs); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// Nodes exposes the cluster's members (for counter assertions).
func (c *Cluster) Nodes() []*UDPNode { return c.nodes }

// Run implements simnet.Transport: it starts handlers[i] on node i,
// waits for cluster-wide quiescence, and returns aggregate Stats with
// the same shape the simulator runtimes produce (FinalTime is 0 — a
// socket cluster has no global virtual clock; Dropped counts ingress
// discards: CRC damage, decode failures, unknown senders).
//
// Unlike the Runner there is no omniscient "event queue empty"
// condition on a real network, so termination is the quiescence
// heuristic documented on UDPNode.Quiet. Protocol stacks that ride a
// lossy wire should include the reliable layer, whose deferred Halt
// makes "every node halted" a genuine all-frames-acknowledged
// certificate. On timeout Run returns the stats gathered so far and an
// error naming the stuck nodes, mirroring GoRunner's deadline error.
func (c *Cluster) Run(handlers []simnet.Handler) (simnet.Stats, error) {
	if len(handlers) != len(c.nodes) {
		return simnet.Stats{}, fmt.Errorf("transport: %d handlers for %d nodes", len(handlers), len(c.nodes))
	}
	for i, nd := range c.nodes {
		nd.Start(handlers[i])
	}

	window := c.cfg.idleWindow()
	deadline := time.Now().Add(c.cfg.timeout())
	var timedOut bool
	for {
		quiet := true
		for _, nd := range c.nodes {
			if !nd.Quiet(window) {
				quiet = false
				break
			}
		}
		if quiet {
			break
		}
		if time.Now().After(deadline) {
			timedOut = true
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Close before reading stats: stopping every goroutine both
	// quiesces the counters and establishes the happens-before edge
	// that makes the unlocked sentByKind maps safe to read.
	var stuck []string
	if timedOut {
		for _, nd := range c.nodes {
			if !nd.Quiet(window) {
				stuck = append(stuck, fmt.Sprintf("node %d (halted=%v queued=%d timers=%d)",
					nd.ID(), nd.Halted(), nd.inbox.len(), nd.pendingTimers.Load()))
			}
		}
	}
	c.Close()

	stats := simnet.Stats{
		SentByNode:     make([]int, len(c.nodes)),
		ReceivedByNode: make([]int, len(c.nodes)),
		SentByKind:     make(map[string]int),
	}
	for i, nd := range c.nodes {
		cnt := nd.Counters()
		stats.SentByNode[i] = int(cnt.FramesSent)
		stats.ReceivedByNode[i] = int(cnt.FramesDelivered)
		stats.Deliveries += int(cnt.FramesDelivered)
		stats.TimersFired += int(cnt.TimersFired)
		stats.Dropped += int(cnt.Dropped)
		for k, v := range nd.sentByKind {
			stats.SentByKind[k] += v
		}
	}
	if timedOut {
		return stats, fmt.Errorf("transport: cluster not quiescent after %v: %s",
			c.cfg.timeout(), strings.Join(stuck, "; "))
	}
	return stats, nil
}

// Close shuts every node down. Idempotent.
func (c *Cluster) Close() {
	for _, nd := range c.nodes {
		nd.Close()
	}
}
