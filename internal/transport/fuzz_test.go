package transport_test

import (
	"bytes"
	"testing"

	"overlaymatch/internal/rng"
	"overlaymatch/internal/transport"
)

// FuzzFrameDecode fuzzes the frame decoder with a seed corpus drawn
// from every registered message type (so mutation starts from valid
// frames of each shape, including reliable's nested DATA frames) plus
// hand-picked malformed headers. The invariants under fuzz:
//
//  1. DecodeFrame never panics and never over-consumes.
//  2. Accept implies canonical: anything that decodes re-encodes to
//     exactly the bytes consumed. With strict per-type decoders this
//     means each message has one wire representation — the property
//     that makes byte-level goldens over captured traffic meaningful.
func FuzzFrameDecode(f *testing.F) {
	src := rng.New(0x5EEDC0DE)
	for _, id := range transport.RegisteredIDs() {
		c, ok := transport.CodecByID(id)
		if !ok {
			f.Fatalf("CodecByID(%#04x) missing", id)
		}
		for i := 0; i < 4; i++ {
			frame, err := transport.EncodeFrame(c.Sample(src))
			if err != nil {
				f.Fatalf("%s: seed encode: %v", c.Name, err)
			}
			f.Add(frame)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 3, 1, 0, 1})                // minimal empty-payload frame shape
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 0, 1})    // absurd length
	f.Add([]byte{0, 0, 0, 4, 1, 1, 1, 2})             // non-canonical lid opcode
	f.Add([]byte{0, 0, 0, 10, 1, 3, 1, 0, 0, 0, 0, 0, 0, 0}) // truncated DATA nest

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, consumed, err := transport.DecodeFrame(data)
		if err != nil {
			return
		}
		if consumed < 7 || consumed > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", consumed, len(data))
		}
		re, err := transport.EncodeFrame(msg)
		if err != nil {
			t.Fatalf("decoded a %T the encoder rejects: %v", msg, err)
		}
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("non-canonical accept:\n    input: %x\nre-encode: %x", data[:consumed], re)
		}
	})
}
