package transport_test

import (
	"strings"
	"testing"
	"time"

	"overlaymatch/internal/detector"
	"overlaymatch/internal/faults"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/metrics"
	"overlaymatch/internal/reliable"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/transport"
)

// TestLoopbackClusterLIC is the PR's conformance anchor: the same
// seeded workload runs once on the deterministic Runner and once on a
// real-socket loopback cluster with the full reliable/detector stack,
// and both must produce exactly the LIC matching. LID's outcome is
// determined by the preference system alone — every delivery order
// converges to the same locally-ideal configuration — which is what
// makes a byte-level nondeterministic transport verifiable against the
// simulator at all.
func TestLoopbackClusterLIC(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket cluster run in -short mode")
	}
	spec := faults.WorkloadSpec{Topology: "gnp", N: 32, B: 3, Metric: "random", Seed: 42}
	sys, err := spec.Build()
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	tbl := satisfaction.NewTable(sys)

	ref, err := lid.RunEvent(sys, tbl, simnet.Options{Seed: 1})
	if err != nil {
		t.Fatalf("runner reference: %v", err)
	}
	if lic := matching.LIC(sys, tbl); !ref.Matching.Equal(lic) {
		t.Fatalf("runner matching differs from centralized LIC — workload unusable as reference")
	}

	g := sys.Graph()
	nodes := lid.NewNodes(sys, tbl)
	handlers := lid.Handlers(nodes)
	eps := reliable.WrapConfig(handlers, reliable.Config{RTO: 40})
	handlers = reliable.Handlers(eps)
	adj := make([][]int, g.NumNodes())
	for i := range adj {
		adj[i] = g.Neighbors(i)
	}
	det := detector.Default()
	det.Ticks = 8 // short heartbeat budget: liveness is exercised, the test stays fast
	mons := detector.Wrap(handlers, adj, det)
	handlers = detector.Handlers(mons)

	cluster, err := transport.NewLoopbackCluster(g.NumNodes(), transport.ClusterConfig{
		Timeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer cluster.Close()
	st, err := cluster.Run(handlers)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}

	got, err := lid.BuildMatching(nodes)
	if err != nil {
		t.Fatalf("matching: %v", err)
	}
	if !got.Equal(ref.Matching) {
		t.Fatalf("cluster matching differs from runner LIC matching\ncluster: %v\n runner: %v", got, ref.Matching)
	}

	if st.Deliveries == 0 || st.TotalSent() == 0 {
		t.Fatalf("cluster stats look empty: %+v", st)
	}
	// The stack's kinds all crossed the real wire. (reliable's DATA
	// frames report their payload's kind, so PROP/REJ stand in for
	// the data path and ACK for the reverse path.)
	for _, kind := range []string{"PROP", "REJ", "ACK", "HB"} {
		if st.SentByKind[kind] == 0 {
			t.Errorf("no %s frames on the wire; SentByKind = %v", kind, st.SentByKind)
		}
	}
}

// burstSender floods one peer from Init and halts; burstSink counts
// arrivals and halts at the target. Between them they exercise
// coalescing: frames queued behind an in-flight datagram share
// envelopes.
type burstSender struct {
	to    int
	count int
}

func (b *burstSender) Init(ctx simnet.Context) {
	for i := 0; i < b.count; i++ {
		ctx.Send(b.to, transport.Raw("burst"))
	}
	ctx.Halt()
}
func (b *burstSender) HandleMessage(simnet.Context, int, simnet.Message) {}

type burstSink struct {
	want int
	got  int
}

func (b *burstSink) Init(simnet.Context) {}
func (b *burstSink) HandleMessage(ctx simnet.Context, _ int, _ simnet.Message) {
	b.got++
	if b.got == b.want {
		ctx.Halt()
	}
}

func TestClusterCoalescing(t *testing.T) {
	const frames = 200
	cluster, err := transport.NewLoopbackCluster(2, transport.ClusterConfig{
		Timeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer cluster.Close()
	sink := &burstSink{want: frames}
	st, err := cluster.Run([]simnet.Handler{&burstSender{to: 1, count: frames}, sink})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if sink.got != frames {
		t.Fatalf("sink received %d of %d frames", sink.got, frames)
	}
	c := cluster.Nodes()[0].Counters()
	if c.FramesSent != frames {
		t.Fatalf("sender counted %d frames sent, want %d", c.FramesSent, frames)
	}
	// A tight Init loop queues frames far faster than datagrams leave,
	// so the send loop must have packed at least one multi-frame
	// envelope.
	if c.DatagramsSent >= c.FramesSent {
		t.Errorf("no coalescing: %d datagrams for %d frames", c.DatagramsSent, c.FramesSent)
	}
	if c.BytesSent == 0 || st.SentByKind["RAW"] != frames {
		t.Errorf("counters inconsistent: %+v, kinds %v", c, st.SentByKind)
	}
}

// echoTimer exercises the timer path: Init arms a timer, the timer
// delivery halts.
type echoTimer struct{ fired bool }

func (e *echoTimer) Init(ctx simnet.Context) {
	ctx.(simnet.TimerSetter).SetTimer(5, transport.Raw("tick"))
}
func (e *echoTimer) HandleMessage(ctx simnet.Context, from int, _ simnet.Message) {
	if from == ctx.ID() {
		e.fired = true
		ctx.Halt()
	}
}

func TestClusterTimers(t *testing.T) {
	cluster, err := transport.NewLoopbackCluster(1, transport.ClusterConfig{
		Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer cluster.Close()
	h := &echoTimer{}
	st, err := cluster.Run([]simnet.Handler{h})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !h.fired || st.TimersFired != 1 {
		t.Fatalf("timer not delivered: fired=%v stats=%+v", h.fired, st)
	}
}

func TestListenUDPValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  transport.UDPConfig
		want string
	}{
		{"zero nodes", transport.UDPConfig{N: 0, Listen: "127.0.0.1:0"}, "node count"},
		{"id out of range", transport.UDPConfig{NodeID: 3, N: 3, Listen: "127.0.0.1:0"}, "outside"},
		{"empty listen", transport.UDPConfig{NodeID: 0, N: 2}, "empty listen"},
		{"bad listen", transport.UDPConfig{NodeID: 0, N: 2, Listen: "not an address"}, "listen"},
		{"bad peer id", transport.UDPConfig{NodeID: 0, N: 2, Listen: "127.0.0.1:0",
			Peers: map[int]string{5: "127.0.0.1:1"}}, "peer ID"},
		{"bad peer addr", transport.UDPConfig{NodeID: 0, N: 2, Listen: "127.0.0.1:0",
			Peers: map[int]string{1: "nope"}}, "address"},
	}
	for _, tc := range cases {
		nd, err := transport.ListenUDP(tc.cfg)
		if err == nil {
			nd.Close()
			t.Errorf("%s: ListenUDP accepted %+v", tc.name, tc.cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestClusterHandlerCountMismatch(t *testing.T) {
	cluster, err := transport.NewLoopbackCluster(2, transport.ClusterConfig{})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer cluster.Close()
	if _, err := cluster.Run([]simnet.Handler{&echoTimer{}}); err == nil {
		t.Fatal("Run accepted 1 handler for 2 nodes")
	}
}

// TestUDPNodeMetrics publishes one closed node's counters into a
// registry, checking the export surface the standalone binary uses.
func TestUDPNodeMetrics(t *testing.T) {
	cluster, err := transport.NewLoopbackCluster(2, transport.ClusterConfig{Timeout: 20 * time.Second})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer cluster.Close()
	if _, err := cluster.Run([]simnet.Handler{&burstSender{to: 1, count: 3}, &burstSink{want: 3}}); err != nil {
		t.Fatalf("run: %v", err)
	}
	reg := metrics.New()
	cluster.Nodes()[0].PublishMetrics(reg)
	if got := reg.Counter("transport_frames_sent_total", "").Value(); got != 3 {
		t.Fatalf("published frames_sent = %d, want 3", got)
	}
	cluster.Nodes()[0].PublishMetrics(nil) // nil-safe
}
