package pref

import (
	"reflect"
	"testing"
	"testing/quick"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/rng"
)

func triangle() *graph.Graph {
	return graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
}

func TestFromRanksBasics(t *testing.T) {
	g := triangle()
	s, err := FromRanks(g,
		[][]graph.NodeID{{1, 2}, {2, 0}, {0, 1}},
		[]int{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Rank(0, 1) != 0 || s.Rank(0, 2) != 1 {
		t.Fatal("ranks of node 0 wrong")
	}
	if s.Quota(0) != 1 || s.Quota(1) != 2 || s.Quota(2) != 1 {
		t.Fatal("quotas wrong")
	}
	if s.ListLen(0) != 2 {
		t.Fatal("list length wrong")
	}
	if s.MaxQuota() != 2 {
		t.Fatal("MaxQuota wrong")
	}
	if s.Graph() != g {
		t.Fatal("Graph() identity lost")
	}
}

func TestFromRanksQuotaClamping(t *testing.T) {
	g := triangle()
	s, err := FromRanks(g,
		[][]graph.NodeID{{1, 2}, {2, 0}, {0, 1}},
		[]int{99, 0, -5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Quota(0) != 2 { // clamped to |L0|
		t.Fatalf("quota 0 = %d, want 2", s.Quota(0))
	}
	if s.Quota(1) != 1 || s.Quota(2) != 1 { // raised to 1
		t.Fatalf("quotas = %d,%d, want 1,1", s.Quota(1), s.Quota(2))
	}
}

func TestFromRanksIsolatedNode(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}})
	s, err := FromRanks(g, [][]graph.NodeID{{1}, {0}, {}}, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Quota(2) != 0 || s.ListLen(2) != 0 {
		t.Fatal("isolated node should have empty list and zero quota")
	}
}

func TestFromRanksRejectsBadLists(t *testing.T) {
	g := triangle()
	cases := map[string][][]graph.NodeID{
		"missing neighbor": {{1}, {2, 0}, {0, 1}},
		"non-neighbor":     {{1, 2}, {2, 0}, {0, 0}},
		"duplicate":        {{1, 1}, {2, 0}, {0, 1}},
	}
	for name, lists := range cases {
		if _, err := FromRanks(g, lists, []int{1, 1, 1}); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := FromRanks(g, [][]graph.NodeID{{1, 2}}, []int{1}); err == nil {
		t.Error("short lists slice: expected error")
	}
}

func TestRankPanicsOnNonNeighbor(t *testing.T) {
	s, _ := FromRanks(triangle(), [][]graph.NodeID{{1, 2}, {2, 0}, {0, 1}}, []int{1, 1, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("Rank on non-neighbor did not panic")
		}
	}()
	s.Rank(0, 0)
}

func TestBuildSortsByScoreDescending(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	capacity := []float64{0, 5, 9, 1}
	s, err := Build(g, ResourceMetric{Capacity: capacity}, UniformQuota(2))
	if err != nil {
		t.Fatal(err)
	}
	if want := []graph.NodeID{2, 1, 3}; !reflect.DeepEqual(s.List(0), want) {
		t.Fatalf("list(0) = %v, want %v", s.List(0), want)
	}
	if s.Quota(0) != 2 || s.Quota(1) != 1 {
		t.Fatalf("quotas = %d,%d", s.Quota(0), s.Quota(1))
	}
}

func TestBuildTieBreakByID(t *testing.T) {
	g := gen.Star(5)
	s, err := Build(g, MetricFunc(func(i, j graph.NodeID) float64 { return 7 }), UniformQuota(2))
	if err != nil {
		t.Fatal(err)
	}
	if want := []graph.NodeID{1, 2, 3, 4}; !reflect.DeepEqual(s.List(0), want) {
		t.Fatalf("tied list = %v, want ascending IDs %v", s.List(0), want)
	}
}

func TestBuildValidatesOnRandomGraphs(t *testing.T) {
	check := func(seed uint64, nRaw uint8, bRaw uint8) bool {
		n := int(nRaw)%25 + 2
		b := int(bRaw)%4 + 1
		src := rng.New(seed)
		g := gen.GNP(src, n, 0.4)
		s, err := Build(g, NewRandomMetric(src.Split()), UniformQuota(b))
		if err != nil {
			return false
		}
		return s.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeFractionQuota(t *testing.T) {
	g := gen.Star(11) // center degree 10, leaves degree 1
	q := DegreeFractionQuota(g, 0.3)
	if q(0) != 3 {
		t.Fatalf("center quota = %d, want 3", q(0))
	}
	if q(1) != 1 {
		t.Fatalf("leaf quota = %d, want 1 (floor raised)", q(1))
	}
}

func TestDistanceMetric(t *testing.T) {
	m := DistanceMetric{Coords: [][2]float64{{0, 0}, {1, 0}, {0, 3}}}
	if m.Score(0, 1) <= m.Score(0, 2) {
		t.Fatal("nearer node should score higher")
	}
	if m.Score(0, 1) != -1 {
		t.Fatalf("score = %v, want -1", m.Score(0, 1))
	}
}

func TestInterestMetric(t *testing.T) {
	m := InterestMetric{Interests: [][]float64{
		{1, 0, 0},
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 0},
	}}
	if got := m.Score(0, 1); got != 1 {
		t.Fatalf("identical interests score %v, want 1", got)
	}
	if got := m.Score(0, 2); got != 0 {
		t.Fatalf("orthogonal interests score %v, want 0", got)
	}
	if got := m.Score(0, 3); got != 0 {
		t.Fatalf("zero vector score %v, want 0", got)
	}
}

func TestInterestMetricPanicsOnLengthMismatch(t *testing.T) {
	m := InterestMetric{Interests: [][]float64{{1}, {1, 2}}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Score(0, 1)
}

func TestTransactionMetricAsymmetry(t *testing.T) {
	m := TransactionMetric{History: [][]float64{{0, 4}, {-2, 0}}}
	if m.Score(0, 1) != 4 || m.Score(1, 0) != -2 {
		t.Fatal("TransactionMetric must read History[i][j]")
	}
}

func TestRandomMetricMemoized(t *testing.T) {
	m := NewRandomMetric(rng.New(1))
	a := m.Score(3, 5)
	if m.Score(3, 5) != a {
		t.Fatal("RandomMetric not memoized")
	}
	if m.Score(5, 3) == a {
		t.Fatal("RandomMetric should be asymmetric with overwhelming probability")
	}
}

func TestSymmetricRandomMetric(t *testing.T) {
	m := NewSymmetricRandomMetric(rng.New(2))
	if m.Score(3, 5) != m.Score(5, 3) {
		t.Fatal("SymmetricRandomMetric not symmetric")
	}
}

func TestCompositeMetric(t *testing.T) {
	m := CompositeMetric{
		Metrics: []Metric{
			MetricFunc(func(i, j graph.NodeID) float64 { return 1 }),
			MetricFunc(func(i, j graph.NodeID) float64 { return 10 }),
		},
		Weights: []float64{0.5, 0.25},
	}
	if got := m.Score(0, 1); got != 3 {
		t.Fatalf("composite score = %v, want 3", got)
	}
}

func TestCompositeMetricPanicsOnMismatch(t *testing.T) {
	m := CompositeMetric{Metrics: []Metric{MetricFunc(func(i, j graph.NodeID) float64 { return 0 })}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Score(0, 1)
}

func TestPerNodeMetric(t *testing.T) {
	m := PerNodeMetric{ByNode: []Metric{
		MetricFunc(func(i, j graph.NodeID) float64 { return float64(j) }),
		MetricFunc(func(i, j graph.NodeID) float64 { return -float64(j) }),
	}}
	if m.Score(0, 5) != 5 || m.Score(1, 5) != -5 {
		t.Fatal("PerNodeMetric did not dispatch by node")
	}
}
