package pref

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadJSON: the workload parser must never panic on arbitrary
// input; anything it accepts must validate and round-trip.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"graph":{"n":3,"edges":[[0,1],[1,2]]},"lists":[[1],[0,2],[1]],"quotas":[1,2,1]}`)
	f.Add(`{"graph":{"n":0,"edges":[]},"lists":[],"quotas":[]}`)
	f.Add(`{}`)
	f.Add(`{"graph":{"n":2,"edges":[[0,1]]},"lists":[[1],[5]],"quotas":[1,1]}`)
	f.Add(`not json at all`)
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted workload fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, s); err != nil {
			t.Fatalf("serializing accepted workload: %v", err)
		}
		s2, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("reparsing own output: %v", err)
		}
		for i := 0; i < s.Graph().NumNodes(); i++ {
			if !reflect.DeepEqual(s2.List(i), s.List(i)) || s2.Quota(i) != s.Quota(i) {
				t.Fatal("round trip changed the workload")
			}
		}
	})
}
