package pref

import (
	"testing"
	"testing/quick"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/rng"
)

// classicCycleSystem builds the canonical 3-cycle of cyclic preferences
// on a triangle: 0 prefers 1 over 2, 1 prefers 2 over 0, 2 prefers 0
// over 1. Edge (0,1) ≻ (0,2) at node 0, (1,2) ≻ (0,1) at node 1,
// (0,2) ≻ (1,2) at node 2 — a directed cycle on edges.
func classicCycleSystem(t *testing.T) *System {
	t.Helper()
	s, err := FromRanks(triangle(),
		[][]graph.NodeID{{1, 2}, {2, 0}, {0, 1}},
		[]int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestClassicCycleDetected(t *testing.T) {
	s := classicCycleSystem(t)
	if IsAcyclic(s) {
		t.Fatal("classic cyclic triangle reported acyclic")
	}
	cycle := FindPreferenceCycle(s)
	if len(cycle) < 2 {
		t.Fatalf("witness cycle too short: %v", cycle)
	}
	// Verify the witness: consecutive edges must share a node that
	// strictly prefers the former to the latter.
	for k := range cycle {
		a, b := cycle[k], cycle[(k+1)%len(cycle)]
		shared := -1
		for _, u := range []graph.NodeID{a.U, a.V} {
			if u == b.U || u == b.V {
				shared = u
			}
		}
		if shared < 0 {
			t.Fatalf("witness edges %v and %v share no endpoint", a, b)
		}
		ra := s.Rank(shared, a.Other(shared))
		rb := s.Rank(shared, b.Other(shared))
		if ra >= rb {
			t.Fatalf("witness not decreasing at node %d: rank %d !< %d", shared, ra, rb)
		}
	}
}

func TestSymmetricWeightsAcyclic(t *testing.T) {
	// Preferences induced by symmetric edge scores are acyclic
	// (Gai et al. Lemma): around any would-be cycle the shared scores
	// would have to strictly decrease and return to the start.
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%20 + 3
		src := rng.New(seed)
		g := gen.GNP(src, n, 0.5)
		s, err := Build(g, NewSymmetricRandomMetric(src.Split()), UniformQuota(2))
		if err != nil {
			return false
		}
		return IsAcyclic(s)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalCapacityAcyclic(t *testing.T) {
	// A global desirability order (ResourceMetric) is acyclic too.
	src := rng.New(9)
	g := gen.GNP(src, 30, 0.3)
	capacity := make([]float64, 30)
	for i := range capacity {
		capacity[i] = src.Float64()
	}
	s, err := Build(g, ResourceMetric{Capacity: capacity}, UniformQuota(3))
	if err != nil {
		t.Fatal(err)
	}
	if !IsAcyclic(s) {
		t.Fatal("global-capacity preferences reported cyclic")
	}
}

func TestRandomMetricUsuallyCyclic(t *testing.T) {
	// Independent per-direction scores on a dense graph produce cycles
	// with overwhelming probability; require that at least 80% of 25
	// seeds are cyclic so the suite exercises the regime prior work
	// cannot handle.
	cyclic := 0
	for seed := uint64(0); seed < 25; seed++ {
		src := rng.New(seed)
		g := gen.GNP(src, 20, 0.6)
		s, err := Build(g, NewRandomMetric(src.Split()), UniformQuota(2))
		if err != nil {
			t.Fatal(err)
		}
		if !IsAcyclic(s) {
			cyclic++
		}
	}
	if cyclic < 20 {
		t.Fatalf("only %d/25 random-metric systems were cyclic", cyclic)
	}
}

func TestWitnessValidOnRandomCyclicSystems(t *testing.T) {
	// Whenever a cycle is reported, the witness must check out.
	for seed := uint64(0); seed < 30; seed++ {
		src := rng.New(seed)
		g := gen.GNP(src, 15, 0.5)
		s, err := Build(g, NewRandomMetric(src.Split()), UniformQuota(2))
		if err != nil {
			t.Fatal(err)
		}
		cycle := FindPreferenceCycle(s)
		if cycle == nil {
			continue
		}
		for k := range cycle {
			a, b := cycle[k], cycle[(k+1)%len(cycle)]
			shared := -1
			for _, u := range []graph.NodeID{a.U, a.V} {
				if u == b.U || u == b.V {
					shared = u
				}
			}
			if shared < 0 {
				t.Fatalf("seed %d: witness edges %v, %v disjoint", seed, a, b)
			}
			if s.Rank(shared, a.Other(shared)) >= s.Rank(shared, b.Other(shared)) {
				t.Fatalf("seed %d: witness not strictly preferred at %d", seed, shared)
			}
		}
	}
}

func TestEmptyAndTinyGraphsAcyclic(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.NewBuilder(0).MustGraph(),
		graph.NewBuilder(3).MustGraph(),
		gen.Path(2),
	} {
		s, err := Build(g, MetricFunc(func(i, j graph.NodeID) float64 { return 0 }), UniformQuota(1))
		if err != nil {
			t.Fatal(err)
		}
		if !IsAcyclic(s) {
			t.Fatalf("%v reported cyclic", g)
		}
	}
}
