package pref

import (
	"slices"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/par"
)

// BuildParallel is Build with the per-node scoring and sorting fanned
// out over `workers` goroutines (0 = GOMAXPROCS). The result is
// bit-identical to Build for the same inputs.
//
// The metric MUST be safe for concurrent use: pure functions and the
// value metrics (DistanceMetric, InterestMetric, ResourceMetric,
// TransactionMetric, compositions of these) qualify; the memoizing
// RandomMetric and SymmetricRandomMetric do NOT — use Build for those,
// or pre-materialize their scores into a TransactionMetric.
//
// Building preferences is the one super-linear step of overlay setup
// (Σ deg·log deg scoring and sorting); at 10⁵+ peers it dominates, and
// it is embarrassingly parallel per node.
func BuildParallel(g *graph.Graph, metric Metric, quota func(i graph.NodeID) int, workers int) (*System, error) {
	workers = par.Workers(workers)
	n := g.NumNodes()
	lists := make([][]graph.NodeID, n)
	quotas := make([]int, n)

	forEachNode(n, workers, func(i int) {
		lists[i] = rankedNeighbors(g, metric, i)
		quotas[i] = quota(i)
	})
	return fromOwnedLists(g, lists, quotas, workers)
}

// forEachNode and forEachChunk are the package's historical names for
// the shared shard/join primitives, now hosted in internal/par (node
// work here is uniform enough that contiguous ranges beat a work
// channel; per-worker scratch goes at the top of a chunk fn).
func forEachNode(n, workers int, fn func(i int)) { par.ForEachIndex(n, workers, fn) }

func forEachChunk(n, workers int, fn func(lo, hi int)) { par.ForEachChunk(n, workers, fn) }

// rankedNeighbors scores and sorts one neighborhood; shared by Build
// and BuildParallel so the orders cannot diverge. Scores are sorted as
// (score, id) pairs in a flat slice — map lookups inside the sort
// comparator were the profiled hot spot of overlay setup.
func rankedNeighbors(g *graph.Graph, metric Metric, i graph.NodeID) []graph.NodeID {
	neigh := g.Neighbors(i)
	type scored struct {
		id    graph.NodeID
		score float64
	}
	pairs := make([]scored, len(neigh))
	for k, j := range neigh {
		pairs[k] = scored{id: j, score: metric.Score(i, j)}
	}
	slices.SortFunc(pairs, func(a, b scored) int {
		switch {
		case a.score > b.score:
			return -1
		case a.score < b.score:
			return 1
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		}
		return 0
	})
	list := make([]graph.NodeID, len(pairs))
	for k, p := range pairs {
		list[k] = p.id
	}
	return list
}
