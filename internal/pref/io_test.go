package pref

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/rng"
)

func TestWorkloadRoundTrip(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%20 + 2
		src := rng.New(seed)
		g := gen.GNP(src, n, 0.4)
		s, err := Build(g, NewRandomMetric(src.Split()), UniformQuota(2))
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, s); err != nil {
			return false
		}
		s2, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		if s2.Graph().NumNodes() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if !reflect.DeepEqual(s2.List(i), s.List(i)) || s2.Quota(i) != s.Quota(i) {
				return false
			}
		}
		return s2.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadWireFormat(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	s, err := FromRanks(g, [][]graph.NodeID{{1}, {2, 0}, {1}}, []int{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"graph"`, `"edges":[[0,1],[1,2]]`, `"lists":[[1],[2,0],[1]]`, `"quotas":[1,2,1]`} {
		if !strings.Contains(out, want) {
			t.Fatalf("wire format missing %q:\n%s", want, out)
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"not json":       `{`,
		"missing graph":  `{"lists":[],"quotas":[]}`,
		"bad list":       `{"graph":{"n":2,"edges":[[0,1]]},"lists":[[1],[5]],"quotas":[1,1]}`,
		"short lists":    `{"graph":{"n":2,"edges":[[0,1]]},"lists":[[1]],"quotas":[1]}`,
		"inconsistent":   `{"graph":{"n":2,"edges":[[0,1]]},"lists":[[1],[0,0]],"quotas":[1,1]}`,
		"self loop edge": `{"graph":{"n":2,"edges":[[1,1]]},"lists":[[],[]],"quotas":[0,0]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
