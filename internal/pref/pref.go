// Package pref implements the preference systems of the paper's problem
// model (§2): each node i keeps a strict preference list Li ranking its
// whole neighborhood Γi (rank Ri(j) ∈ {0,...,|Li|−1}, 0 = most
// desirable) and a connection quota bi ≤ |Li|. Preference lists are
// private to each node; algorithms only ever learn the derived
// satisfaction increases (package satisfaction).
//
// The package also implements the suitability metrics the paper's
// introduction motivates (distance, interests, recommendations /
// transaction history, available resources, or any private choice), and
// the acyclicity test of Gai et al. [3], which characterizes the
// instances for which prior work could guarantee stabilization — the
// paper's algorithms need no such restriction, and the experiment suite
// uses the test to partition workloads.
package pref

import (
	"fmt"

	"overlaymatch/internal/graph"
)

// System holds the preference lists and quotas of every node of a
// graph. Construct one with Build, FromRanks, or Random; a System is
// immutable afterwards and safe for concurrent reads.
type System struct {
	g     *graph.Graph
	lists [][]graph.NodeID // lists[i] = Li: neighbors in decreasing desirability
	// rank is one flat array aligned with the graph's CSR adjacency:
	// rank[off(i)+k] = Ri(adj(i)[k]), where off is the graph's incidence
	// offset and adj(i) the sorted neighbor list. Lookups go through
	// graph.NeighborIndex (O(log deg)) instead of a per-node map.
	rank  []int32
	quota []int
}

// Graph returns the underlying graph.
func (s *System) Graph() *graph.Graph { return s.g }

// List returns node i's preference list, most desirable first. The
// returned slice is shared and must not be modified.
func (s *System) List(i graph.NodeID) []graph.NodeID { return s.lists[i] }

// ListLen returns |Li|, the length of node i's preference list, which
// equals deg(i) because lists rank the full neighborhood.
func (s *System) ListLen(i graph.NodeID) int { return len(s.lists[i]) }

// Rank returns Ri(j), node j's rank in node i's preference list
// (0 = best). It panics if j is not a neighbor of i.
func (s *System) Rank(i, j graph.NodeID) int {
	k, ok := s.g.NeighborIndex(i, j)
	if !ok {
		panic(fmt.Sprintf("pref: node %d is not in node %d's preference list", j, i))
	}
	return int(s.rank[s.g.IncidenceOffset(i)+int32(k)])
}

// RankAt returns Ri(adj(i)[k]) for neighbor position k of node i — the
// map-free rank lookup for callers already iterating CSR adjacency.
func (s *System) RankAt(i graph.NodeID, k int) int {
	return int(s.rank[s.g.IncidenceOffset(i)+int32(k)])
}

// Quota returns bi, node i's connection quota.
func (s *System) Quota(i graph.NodeID) int { return s.quota[i] }

// MaxQuota returns bmax = max_i bi (0 for an empty graph).
func (s *System) MaxQuota() int {
	bmax := 0
	for _, b := range s.quota {
		if b > bmax {
			bmax = b
		}
	}
	return bmax
}

// Validate checks the §2 model invariants: every list is a permutation
// of the node's neighborhood and 0 ≤ bi ≤ |Li| (bi = 0 only where
// |Li| = 0). Build establishes these; Validate re-checks them, which
// tests and fuzzing use as the single source of truth.
func (s *System) Validate() error {
	return s.validate(1)
}

// validate checks the invariants with per-node work fanned out across
// `workers` goroutines; the reported error is the lowest-node one so
// output does not depend on scheduling.
func (s *System) validate(workers int) error {
	n := s.g.NumNodes()
	if len(s.lists) != n || len(s.quota) != n {
		return fmt.Errorf("pref: per-node slices sized %d/%d for %d nodes",
			len(s.lists), len(s.quota), n)
	}
	if len(s.rank) != 2*s.g.NumEdges() {
		return fmt.Errorf("pref: rank table sized %d for %d edges", len(s.rank), s.g.NumEdges())
	}
	errs := make([]error, n)
	// Each worker reuses one NodeID-indexed scratch slice for duplicate
	// detection, stamped per node (seen[j] == i+1 means node i already
	// ranked j), instead of allocating a map per node.
	forEachChunk(n, workers, func(lo, hi int) {
		seen := make([]int32, n)
		for i := lo; i < hi; i++ {
			errs[i] = s.validateNode(i, seen)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (s *System) validateNode(i int, seen []int32) error {
	neigh := s.g.Neighbors(i)
	if len(s.lists[i]) != len(neigh) {
		return fmt.Errorf("pref: node %d list length %d != degree %d", i, len(s.lists[i]), len(neigh))
	}
	stamp := int32(i) + 1
	for r, j := range s.lists[i] {
		if !s.g.HasEdge(i, j) {
			return fmt.Errorf("pref: node %d ranks non-neighbor %d", i, j)
		}
		if seen[j] == stamp {
			return fmt.Errorf("pref: node %d ranks %d twice", i, j)
		}
		seen[j] = stamp
		if got := s.Rank(i, j); got != r {
			return fmt.Errorf("pref: node %d rank table says R(%d)=%d, list says %d", i, j, got, r)
		}
	}
	if s.quota[i] < 0 || s.quota[i] > len(s.lists[i]) {
		return fmt.Errorf("pref: node %d quota %d outside [0,%d]", i, s.quota[i], len(s.lists[i]))
	}
	if s.quota[i] == 0 && len(s.lists[i]) > 0 {
		return fmt.Errorf("pref: node %d has neighbors but zero quota", i)
	}
	return nil
}

// FromRanks builds a System from explicit preference lists (most
// desirable first) and quotas. Quotas larger than the list length are
// clamped, mirroring the paper's "we can easily take bi = |Li|". It
// validates the model invariants.
func FromRanks(g *graph.Graph, lists [][]graph.NodeID, quotas []int) (*System, error) {
	n := g.NumNodes()
	if len(lists) != n || len(quotas) != n {
		return nil, fmt.Errorf("pref: need %d lists and quotas, got %d and %d", n, len(lists), len(quotas))
	}
	owned := make([][]graph.NodeID, n)
	for i := range lists {
		owned[i] = append([]graph.NodeID(nil), lists[i]...)
	}
	return fromOwnedLists(g, owned, append([]int(nil), quotas...), 1)
}

// fromOwnedLists finalizes a System from lists the caller hands over
// (no copies). Rank-map construction and quota clamping are fanned out
// per node across `workers` goroutines; the result is identical for
// any worker count. Validation runs afterwards as the single source of
// truth for the §2 invariants.
func fromOwnedLists(g *graph.Graph, lists [][]graph.NodeID, quotas []int, workers int) (*System, error) {
	n := g.NumNodes()
	s := &System{
		g:     g,
		lists: lists,
		rank:  make([]int32, 2*g.NumEdges()),
		quota: quotas,
	}
	buildNode := func(i int) {
		off := g.IncidenceOffset(i)
		for r, j := range lists[i] {
			// Entries that are not neighbors (or repeat one) cannot be
			// placed in the CSR-aligned table; validate rejects the list
			// afterwards, so skipping here loses nothing.
			if k, ok := g.NeighborIndex(i, j); ok {
				s.rank[off+int32(k)] = int32(r)
			}
		}
		b := quotas[i]
		if b > len(lists[i]) {
			b = len(lists[i])
		}
		if b < 1 && len(lists[i]) > 0 {
			b = 1 // the model assumes every non-isolated node wants at least one connection
		}
		if len(lists[i]) == 0 {
			b = 0
		}
		s.quota[i] = b
	}
	forEachNode(n, workers, buildNode)
	if err := s.validate(workers); err != nil {
		return nil, err
	}
	return s, nil
}

// Build constructs a System by scoring every neighbor of every node
// with the given metric and sorting each neighborhood by descending
// score. Ties are broken by ascending node ID so the list is always a
// strict total order, as §2 requires. quota is evaluated per node and
// clamped to [1, |Li|] (0 for isolated nodes).
func Build(g *graph.Graph, metric Metric, quota func(i graph.NodeID) int) (*System, error) {
	n := g.NumNodes()
	lists := make([][]graph.NodeID, n)
	quotas := make([]int, n)
	for i := 0; i < n; i++ {
		lists[i] = rankedNeighbors(g, metric, i)
		quotas[i] = quota(i)
	}
	return FromRanks(g, lists, quotas)
}

// UniformQuota returns a quota function assigning b to every node.
func UniformQuota(b int) func(graph.NodeID) int {
	return func(graph.NodeID) int { return b }
}

// DegreeFractionQuota returns a quota function assigning
// max(1, round(frac*deg(i))) to every node of graph g.
func DegreeFractionQuota(g *graph.Graph, frac float64) func(graph.NodeID) int {
	return func(i graph.NodeID) int {
		b := int(frac*float64(g.Degree(i)) + 0.5)
		if b < 1 {
			b = 1
		}
		return b
	}
}
