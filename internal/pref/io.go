package pref

import (
	"encoding/json"
	"fmt"
	"io"

	"overlaymatch/internal/graph"
)

// Workload file support: a System (graph + preference lists + quotas)
// serializes to a single JSON document so experiments can be re-run on
// frozen inputs and results audited. Wire form:
//
//	{
//	  "graph":  {"n": 4, "edges": [[0,1],[1,2]]},
//	  "lists":  [[1],[0,2],[1],[]],
//	  "quotas": [1,2,1,0]
//	}

type jsonSystem struct {
	Graph  *graph.Graph     `json:"graph"`
	Lists  [][]graph.NodeID `json:"lists"`
	Quotas []int            `json:"quotas"`
}

// WriteJSON serializes the system.
func WriteJSON(w io.Writer, s *System) error {
	doc := jsonSystem{
		Graph:  s.g,
		Lists:  s.lists,
		Quotas: s.quota,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ReadJSON parses and validates a serialized system.
func ReadJSON(r io.Reader) (*System, error) {
	var doc jsonSystem
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("pref: decoding workload: %w", err)
	}
	if doc.Graph == nil {
		return nil, fmt.Errorf("pref: workload missing graph")
	}
	s, err := FromRanks(doc.Graph, doc.Lists, doc.Quotas)
	if err != nil {
		return nil, fmt.Errorf("pref: invalid workload: %w", err)
	}
	return s, nil
}
