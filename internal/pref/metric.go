package pref

import (
	"fmt"
	"math"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/rng"
)

// Metric scores how suitable neighbor j looks to node i; higher is more
// desirable. Score is evaluated once per directed neighbor pair when a
// System is built, so implementations may be slow but must be
// deterministic for the lifetime of the build. A Metric models the
// node's private suitability function from the paper's introduction:
// nothing outside the node ever sees the scores, only the resulting
// ranks enter the protocol (via satisfaction increases).
type Metric interface {
	Score(i, j graph.NodeID) float64
}

// MetricFunc adapts a plain function to the Metric interface.
type MetricFunc func(i, j graph.NodeID) float64

// Score implements Metric.
func (f MetricFunc) Score(i, j graph.NodeID) float64 { return f(i, j) }

// DistanceMetric prefers nearby nodes: score is the negated Euclidean
// distance between stored coordinates. It models latency-driven
// preferences (e.g. the coordinates returned by gen.Geometric).
type DistanceMetric struct {
	Coords [][2]float64
}

// Score implements Metric.
func (m DistanceMetric) Score(i, j graph.NodeID) float64 {
	dx := m.Coords[i][0] - m.Coords[j][0]
	dy := m.Coords[i][1] - m.Coords[j][1]
	return -math.Sqrt(dx*dx + dy*dy)
}

// InterestMetric prefers nodes with similar interest vectors: score is
// the cosine similarity of the two nodes' interest vectors. It models
// content/interest-driven overlays. Zero vectors score 0 against
// everything.
type InterestMetric struct {
	Interests [][]float64
}

// Score implements Metric.
func (m InterestMetric) Score(i, j graph.NodeID) float64 {
	a, b := m.Interests[i], m.Interests[j]
	if len(a) != len(b) {
		panic(fmt.Sprintf("pref: interest vectors of %d and %d have different lengths", i, j))
	}
	var dot, na, nb float64
	for k := range a {
		dot += a[k] * b[k]
		na += a[k] * a[k]
		nb += b[k] * b[k]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// ResourceMetric prefers well-provisioned nodes: score is the target's
// advertised capacity (bandwidth, storage, compute). Every node ranks
// by the same capacities, which yields a globally acyclic preference
// system — the regime of Gai et al. [3].
type ResourceMetric struct {
	Capacity []float64
}

// Score implements Metric.
func (m ResourceMetric) Score(_, j graph.NodeID) float64 { return m.Capacity[j] }

// TransactionMetric prefers nodes with a good past-interaction balance:
// score is History[i][j] (e.g. bytes served minus bytes taken, or a
// reputation/recommendation score). Asymmetric by nature, so it readily
// produces the cyclic preference relations that break stabilization in
// prior work.
type TransactionMetric struct {
	History [][]float64
}

// Score implements Metric.
func (m TransactionMetric) Score(i, j graph.NodeID) float64 { return m.History[i][j] }

// RandomMetric gives every directed pair an independent uniform score,
// the harshest stress test for cyclic preferences. Scores are drawn
// lazily and memoized so a Metric value is deterministic.
type RandomMetric struct {
	src   *rng.Source
	cache map[[2]graph.NodeID]float64
}

// NewRandomMetric returns a RandomMetric drawing from src.
func NewRandomMetric(src *rng.Source) *RandomMetric {
	return &RandomMetric{src: src, cache: make(map[[2]graph.NodeID]float64)}
}

// Score implements Metric.
func (m *RandomMetric) Score(i, j graph.NodeID) float64 {
	k := [2]graph.NodeID{i, j}
	if v, ok := m.cache[k]; ok {
		return v
	}
	v := m.src.Float64()
	m.cache[k] = v
	return v
}

// SymmetricRandomMetric is RandomMetric with symmetric scores
// (score(i,j) = score(j,i)), modelling shared pairwise affinity such as
// measured round-trip time. Symmetric scores make the preference
// system acyclic in the pairwise sense of Gai et al. [3].
type SymmetricRandomMetric struct {
	src   *rng.Source
	cache map[graph.Edge]float64
}

// NewSymmetricRandomMetric returns a SymmetricRandomMetric drawing from src.
func NewSymmetricRandomMetric(src *rng.Source) *SymmetricRandomMetric {
	return &SymmetricRandomMetric{src: src, cache: make(map[graph.Edge]float64)}
}

// Score implements Metric.
func (m *SymmetricRandomMetric) Score(i, j graph.NodeID) float64 {
	k := graph.Edge{U: i, V: j}.Normalize()
	if v, ok := m.cache[k]; ok {
		return v
	}
	v := m.src.Float64()
	m.cache[k] = v
	return v
}

// CompositeMetric blends several metrics with non-negative weights,
// modelling a peer that scores neighbors by, say, 0.7·distance +
// 0.3·reputation.
type CompositeMetric struct {
	Metrics []Metric
	Weights []float64
}

// Score implements Metric.
func (m CompositeMetric) Score(i, j graph.NodeID) float64 {
	if len(m.Metrics) != len(m.Weights) {
		panic("pref: CompositeMetric with mismatched metrics and weights")
	}
	var s float64
	for k, sub := range m.Metrics {
		s += m.Weights[k] * sub.Score(i, j)
	}
	return s
}

// PerNodeMetric gives each node its own private metric, the fully
// heterogeneous scenario of the paper's introduction where "every peer
// may follow an individually chosen metric".
type PerNodeMetric struct {
	ByNode []Metric
}

// Score implements Metric.
func (m PerNodeMetric) Score(i, j graph.NodeID) float64 { return m.ByNode[i].Score(i, j) }
