package pref

import (
	"overlaymatch/internal/graph"
)

// Acyclicity of preference systems, after Gai, Lebedev, Mathieu,
// de Montgolfier, Reynier, Viennot, "Acyclic preference systems in P2P
// networks" (Euro-Par 2007) — reference [3] of the paper. A preference
// system is acyclic when the "prefers" relation it induces on edges has
// no directed cycle; equivalently, when it can be represented by
// symmetric edge weights that every node ranks by. Prior work
// guarantees stabilization of b-matching dynamics only for acyclic
// systems; the paper's LID needs no such restriction (it synthesizes
// its own symmetric weights, eq. 9), and the experiment suite uses this
// test to label workloads.

// edgeIndexer assigns dense indices to canonical edges.
type edgeIndexer struct {
	idx map[graph.Edge]int
	all []graph.Edge
}

func newEdgeIndexer(g *graph.Graph) *edgeIndexer {
	ei := &edgeIndexer{idx: make(map[graph.Edge]int, g.NumEdges()), all: g.Edges()}
	for i, e := range ei.all {
		ei.idx[e] = i
	}
	return ei
}

func (ei *edgeIndexer) index(u, v graph.NodeID) int {
	return ei.idx[graph.Edge{U: u, V: v}.Normalize()]
}

// IsAcyclic reports whether the preference system is acyclic in the
// Gai et al. sense. It builds the edge-preference digraph — an arc from
// edge (i, Li[r]) to edge (i, Li[r+1]) for every node i and consecutive
// rank r (transitive pairs are implied) — and checks it for directed
// cycles. Runs in O(n + m).
func IsAcyclic(s *System) bool {
	return FindPreferenceCycle(s) == nil
}

// FindPreferenceCycle returns a witness cycle of edges e0, e1, ..., ek-1
// such that each ei is strictly preferred to e(i+1 mod k) by their
// shared endpoint, or nil if the system is acyclic. The witness closes
// on itself (last element precedes the first in the preference order).
func FindPreferenceCycle(s *System) []graph.Edge {
	g := s.Graph()
	ei := newEdgeIndexer(g)
	m := g.NumEdges()
	adj := make([][]int, m) // adj[e] = edges directly less preferred than e
	for i := 0; i < g.NumNodes(); i++ {
		list := s.List(i)
		for r := 0; r+1 < len(list); r++ {
			from := ei.index(i, list[r])
			to := ei.index(i, list[r+1])
			adj[from] = append(adj[from], to)
		}
	}
	// Iterative DFS with colors; record the stack to extract a witness.
	const (
		white = iota
		gray
		black
	)
	color := make([]int8, m)
	parent := make([]int, m)
	for i := range parent {
		parent[i] = -1
	}
	for start := 0; start < m; start++ {
		if color[start] != white {
			continue
		}
		type frame struct {
			node, next int
		}
		stack := []frame{{start, 0}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.node]) {
				child := adj[f.node][f.next]
				f.next++
				switch color[child] {
				case white:
					color[child] = gray
					parent[child] = f.node
					stack = append(stack, frame{child, 0})
				case gray:
					// Found a cycle: walk parents from f.node back to child.
					var rev []int
					for x := f.node; ; x = parent[x] {
						rev = append(rev, x)
						if x == child {
							break
						}
					}
					cycle := make([]graph.Edge, 0, len(rev))
					for k := len(rev) - 1; k >= 0; k-- {
						cycle = append(cycle, ei.all[rev[k]])
					}
					return cycle
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}
