package pref

import (
	"reflect"
	"testing"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/rng"
)

// pureMetric is deterministic and concurrency-safe.
func pureMetric(i, j graph.NodeID) float64 {
	return float64((i*2654435761 + j*40503) % 9973)
}

func TestBuildParallelMatchesSerial(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8} {
		for seed := uint64(0); seed < 5; seed++ {
			g := gen.GNP(rng.New(seed), 60, 0.3)
			serial, err := Build(g, MetricFunc(pureMetric), UniformQuota(3))
			if err != nil {
				t.Fatal(err)
			}
			par, err := BuildParallel(g, MetricFunc(pureMetric), UniformQuota(3), workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < g.NumNodes(); i++ {
				if !reflect.DeepEqual(serial.List(i), par.List(i)) {
					t.Fatalf("workers=%d seed=%d: node %d lists differ", workers, seed, i)
				}
				if serial.Quota(i) != par.Quota(i) {
					t.Fatalf("workers=%d seed=%d: node %d quotas differ", workers, seed, i)
				}
			}
		}
	}
}

func TestBuildParallelValidates(t *testing.T) {
	g := gen.BarabasiAlbert(rng.New(3), 200, 3)
	s, err := BuildParallel(g, MetricFunc(pureMetric), DegreeFractionQuota(g, 0.4), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Note: the CI box this repository was developed on has a single CPU,
// so BuildParallel cannot beat Build on wall clock there; the
// benchmarks exist to compare on multi-core hardware. Correctness and
// determinism of the parallel path are covered by the tests above
// (run under -race).
func BenchmarkBuildSerial(b *testing.B) {
	g := gen.GNP(rng.New(1), 5000, 16.0/4999.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, MetricFunc(pureMetric), UniformQuota(3)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildParallel(b *testing.B) {
	g := gen.GNP(rng.New(1), 5000, 16.0/4999.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildParallel(g, MetricFunc(pureMetric), UniformQuota(3), 0); err != nil {
			b.Fatal(err)
		}
	}
}
