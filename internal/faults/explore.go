package faults

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ExploreOptions configures one adversarial sweep.
type ExploreOptions struct {
	// Spec is the adversary swept across seeds.
	Spec Spec
	// BaseSeed is the first trial seed; Count seeds run in total
	// (BaseSeed, BaseSeed+1, ...). Each trial derives its injection
	// stream from the trial seed, so trial i is fully identified by
	// (Spec, BaseSeed+i).
	BaseSeed uint64
	Count    int
	// Workers bounds trial parallelism (0 = 4). Trials are independent;
	// the report is deterministic regardless of worker count.
	Workers int
	// MaxShrinkRuns caps re-executions per violation during
	// minimization (0 = 500).
	MaxShrinkRuns int
	// MaxViolations stops the sweep early once this many failures are
	// in hand (0 = 16) — shrinking dominates cost, not finding.
	MaxViolations int
}

func (o ExploreOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return 4
}

func (o ExploreOptions) maxShrinkRuns() int {
	if o.MaxShrinkRuns > 0 {
		return o.MaxShrinkRuns
	}
	return 500
}

func (o ExploreOptions) maxViolations() int {
	if o.MaxViolations > 0 {
		return o.MaxViolations
	}
	return 16
}

// injectionSeed derives the injector's stream from a trial seed,
// decorrelating it from the runner's latency stream (both are
// splitmix64; seeding them identically would make every latency draw
// reuse an injection coin flip).
func injectionSeed(seed uint64) uint64 {
	return seed ^ 0x5fa7_15ca_11ed_c0de
}

// Violation is one failing trial, with its injection schedule
// minimized to a locally irreducible subset.
type Violation struct {
	Seed uint64  `json:"seed"`
	Err  string  `json:"err"`
	// Events is the minimized schedule; RawEvents counts the schedule
	// as recorded before shrinking.
	Events     []Event `json:"events"`
	RawEvents  int     `json:"raw_events"`
	ShrinkRuns int     `json:"shrink_runs"`
}

// Report summarizes one sweep.
type Report struct {
	Trials     int
	Injections int // probabilistic injections applied across all trials
	// Degraded counts trials that quiesced with permanently lost
	// frames (DegradedError): a bounded-retry transport gave up under
	// an unhealed fault. These are expected under crash-stop
	// adversaries and are kept apart from Violations — the oracle
	// distinguishing "quiesced with abandoned frames" from both clean
	// termination and genuine invariant breakage.
	Degraded   int
	Violations []Violation
}

// Explore sweeps Count seeds of the adversary over the trial, collects
// every invariant violation (errors and recovered panics alike), and
// shrinks each violation's event schedule. Violations come back sorted
// by seed; the report is a pure function of (opts, trial).
func Explore(opts ExploreOptions, trial Trial) Report {
	type outcome struct {
		seed   uint64
		err    error
		events []Event
		sends  int
	}
	var (
		mu         sync.Mutex
		next       int
		rep        Report
		violations []outcome
	)
	nWorkers := opts.workers()
	if nWorkers > opts.Count {
		nWorkers = opts.Count
	}
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= opts.Count || len(violations) >= opts.maxViolations() {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				seed := opts.BaseSeed + uint64(i)
				inj := NewInjector(opts.Spec, injectionSeed(seed))
				err := runTrial(trial, seed, inj)

				var degraded *DegradedError
				if errors.As(err, &degraded) {
					err = nil
				}

				mu.Lock()
				rep.Trials++
				rep.Injections += len(inj.Events())
				if degraded != nil {
					rep.Degraded++
				}
				if err != nil {
					violations = append(violations, outcome{
						seed:   seed,
						err:    err,
						events: append([]Event(nil), inj.Events()...),
						sends:  inj.Sends(),
					})
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	sort.Slice(violations, func(i, j int) bool { return violations[i].seed < violations[j].seed })
	if len(violations) > opts.maxViolations() {
		violations = violations[:opts.maxViolations()]
	}
	for _, v := range violations {
		min, runs := Shrink(opts.Spec, v.seed, v.events, trial, opts.maxShrinkRuns())
		// Minimization may land on a different (smaller) failure than
		// the recorded one; report the error the minimized schedule
		// actually produces so a frozen replay file is self-consistent.
		errStr := v.err.Error()
		if minErr := runTrial(trial, v.seed, NewReplayInjector(opts.Spec, min)); minErr != nil {
			errStr = minErr.Error()
		}
		rep.Violations = append(rep.Violations, Violation{
			Seed:       v.seed,
			Err:        errStr,
			Events:     min,
			RawEvents:  len(v.events),
			ShrinkRuns: runs,
		})
	}
	return rep
}

// Shrink minimizes a failing injection schedule by greedy chunked
// removal (delta debugging's ddmin skeleton): try dropping chunks of
// events, halving the chunk size whenever a whole pass removes
// nothing, down to single events. A candidate subset counts only if
// replaying it still fails the trial — re-execution is the oracle, so
// the sequence-number drift that removal causes in later sends is
// self-correcting (a candidate that no longer lines up simply fails to
// reproduce and is rejected). Returns a 1-minimal schedule when the
// run budget allows, or the best found when maxRuns is exhausted.
func Shrink(spec Spec, seed uint64, events []Event, trial Trial, maxRuns int) (min []Event, runs int) {
	cur := append([]Event(nil), events...)
	fails := func(candidate []Event) bool {
		if runs >= maxRuns {
			return false
		}
		runs++
		err := runTrial(trial, seed, NewReplayInjector(spec, candidate))
		// A degraded run is not the violation being minimized — a
		// candidate that merely degrades must be rejected, or the
		// shrinker drifts away from the genuine failure.
		var degraded *DegradedError
		if errors.As(err, &degraded) {
			return false
		}
		return err != nil
	}
	// The schedule must reproduce under replay at all before removal
	// means anything (it can fail to: GoRunner schedules drift).
	if !fails(cur) {
		return cur, runs
	}
	for chunk := len(cur); chunk >= 1 && len(cur) > 0 && runs < maxRuns; {
		if chunk > len(cur) {
			chunk = len(cur)
		}
		removedAny := false
		for start := 0; start < len(cur) && runs < maxRuns; {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			candidate := make([]Event, 0, len(cur)-(end-start))
			candidate = append(candidate, cur[:start]...)
			candidate = append(candidate, cur[end:]...)
			if fails(candidate) {
				cur = candidate
				removedAny = true
				// Same start now addresses the next chunk.
			} else {
				start = end
			}
		}
		if !removedAny {
			chunk /= 2
		}
	}
	return cur, runs
}

// Summary renders a one-line human summary of the report.
func (r Report) Summary() string {
	return fmt.Sprintf("trials=%d injections=%d degraded=%d violations=%d",
		r.Trials, r.Injections, r.Degraded, len(r.Violations))
}
