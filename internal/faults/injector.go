package faults

import (
	"math"
	"sort"

	"overlaymatch/internal/rng"
	"overlaymatch/internal/simnet"
)

// Event is one probabilistic injection the adversary applied, keyed by
// the global send sequence number of the message it hit (sequence
// numbers count every network send the policy sees, in order). Timed
// windows (partitions, crashes) are NOT events: they are deterministic
// functions of the Spec and replay from it directly.
type Event struct {
	Seq    int     `json:"seq"`
	Kind   string  `json:"kind"` // drop | dup | corrupt | delay
	Copies int     `json:"copies,omitempty"`
	Delay  float64 `json:"delay,omitempty"`
}

// Event kinds.
const (
	KindDrop    = "drop"
	KindDup     = "dup"
	KindCorrupt = "corrupt"
	KindDelay   = "delay"
)

// validEvent checks one replay event's fields.
func validEvent(e Event) bool {
	if e.Seq < 0 {
		return false
	}
	switch e.Kind {
	case KindDrop, KindCorrupt:
		return e.Copies == 0 && e.Delay == 0
	case KindDup:
		return e.Copies > 0 && e.Copies <= 64 && e.Delay == 0
	case KindDelay:
		return e.Copies == 0 && e.Delay > 0 && !math.IsInf(e.Delay, 0) && !math.IsNaN(e.Delay)
	}
	return false
}

// Injector implements simnet.LinkPolicy for one run. In record mode
// (NewInjector) it draws injections from its own seeded splitmix64
// stream and logs every applied one; in replay mode
// (NewReplayInjector) it applies exactly the given events at their
// recorded send sequence numbers and draws nothing. Timed windows come
// from the Spec in both modes.
//
// An Injector is single-use and single-threaded: the event Runner
// calls it from its scheduler thread and the GoRunner serializes
// verdicts under its policy mutex.
type Injector struct {
	spec   Spec
	src    *rng.Source // nil in replay mode
	seq    int
	log    []Event
	replay map[int][]Event
}

// NewInjector returns a recording injector: (spec, seed) fully
// determines every verdict on the deterministic event runtime.
func NewInjector(spec Spec, seed uint64) *Injector {
	return &Injector{spec: spec, src: rng.New(seed)}
}

// NewReplayInjector returns an injector that re-applies exactly the
// given recorded events (plus the spec's timed windows).
func NewReplayInjector(spec Spec, events []Event) *Injector {
	m := make(map[int][]Event, len(events))
	for _, e := range events {
		m[e.Seq] = append(m[e.Seq], e)
	}
	return &Injector{spec: spec, replay: m}
}

// Events returns the injections applied so far, in send order. The
// slice is the injector's log; callers must copy before mutating.
func (in *Injector) Events() []Event { return in.log }

// Sends returns the number of sends the injector has seen.
func (in *Injector) Sends() int { return in.seq }

// cut reports whether a timed window severs the from->to link at time
// now.
func (in *Injector) cut(now float64, from, to int) bool {
	for _, c := range in.spec.Crashes {
		if now >= c.Start && (c.End == NoHeal || now < c.End) && (from == c.Node || to == c.Node) {
			return true
		}
	}
	for _, p := range in.spec.Partitions {
		if now >= p.Start && (p.End == NoHeal || now < p.End) {
			inA := from >= p.Lo && from <= p.Hi
			inB := to >= p.Lo && to <= p.Hi
			if inA != inB {
				return true
			}
		}
	}
	return false
}

// Verdict implements simnet.LinkPolicy.
func (in *Injector) Verdict(now float64, from, to int, msg simnet.Message) simnet.LinkVerdict {
	seq := in.seq
	in.seq++
	if in.cut(now, from, to) {
		// Deterministic window cut: replayed from the spec, not logged.
		return simnet.LinkVerdict{Drop: true}
	}
	if in.replay != nil {
		var v simnet.LinkVerdict
		for _, e := range in.replay[seq] {
			switch e.Kind {
			case KindDrop:
				v.Drop = true
			case KindDup:
				v.Copies += e.Copies
			case KindCorrupt:
				v.Corrupt = true
			case KindDelay:
				v.ExtraDelay += e.Delay
			}
		}
		return v
	}
	// Record mode. Draw each fault class in fixed order so the stream
	// is a pure function of (spec, seed, send count).
	var v simnet.LinkVerdict
	if in.spec.Drop > 0 && in.src.Bool(in.spec.Drop) {
		in.log = append(in.log, Event{Seq: seq, Kind: KindDrop})
		v.Drop = true
		return v
	}
	if in.spec.Dup > 0 && in.src.Bool(in.spec.Dup) {
		v.Copies = 1
		in.log = append(in.log, Event{Seq: seq, Kind: KindDup, Copies: 1})
	}
	if in.spec.Corrupt > 0 && in.src.Bool(in.spec.Corrupt) {
		v.Corrupt = true
		in.log = append(in.log, Event{Seq: seq, Kind: KindCorrupt})
	}
	if in.spec.Delay > 0 && in.src.Bool(in.spec.Delay) {
		v.ExtraDelay = pareto(in.src, in.spec.delayScale())
		in.log = append(in.log, Event{Seq: seq, Kind: KindDelay, Delay: v.ExtraDelay})
	}
	return v
}

// delayScale returns the Pareto scale with its documented default.
func (s Spec) delayScale() float64 {
	if s.DelayScale > 0 {
		return s.DelayScale
	}
	return 1
}

// pareto draws a heavy-tailed extra delay: scale · (u^(-1/α) − 1) with
// α = 1.5, a distribution with finite mean and infinite variance — the
// "harshest asynchrony" knob, occasionally holding one message back
// for a very long time while the rest of the run proceeds.
func pareto(src *rng.Source, scale float64) float64 {
	const alpha = 1.5
	u := src.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	d := scale * (math.Pow(u, -1/alpha) - 1)
	// Cap at 10^4·scale: the tail must stretch schedules, not make a
	// single run effectively non-terminating.
	if max := 1e4 * scale; d > max {
		d = max
	}
	return d
}

// sortEvents orders events by (seq, kind) — the canonical replay-file
// order.
func sortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		if events[i].Seq != events[j].Seq {
			return events[i].Seq < events[j].Seq
		}
		return events[i].Kind < events[j].Kind
	})
}
