package faults

import (
	"bytes"
	"runtime"
	"testing"
)

// TestExploreSweepFindsNoViolations is the acceptance sweep: thousands
// of adversarial schedules over gnp/geometric/ba at n=80, b ∈ {1,2,3},
// through the reliable substrate — zero violations expected. The full
// 3000-seed run is long; -short keeps a 10% slice of every combo.
func TestExploreSweepFindsNoViolations(t *testing.T) {
	perCombo := 334 // 9 combos ≈ 3000 seeds
	if testing.Short() {
		perCombo = 34
	}
	spec := Spec{Drop: 0.08, Dup: 0.06, Corrupt: 0.04, Delay: 0.12, DelayScale: 5}
	trials, injections := 0, 0
	for _, topo := range []string{"gnp", "geometric", "ba"} {
		for b := 1; b <= 3; b++ {
			w := WorkloadSpec{Topology: topo, Metric: "random", N: 80, B: b, Seed: uint64(b)*31 + 17}
			sys, err := w.Build()
			if err != nil {
				t.Fatalf("%s/b=%d: build: %v", topo, b, err)
			}
			rep := Explore(ExploreOptions{
				Spec:     spec,
				BaseSeed: uint64(b) * 100_000,
				Count:    perCombo,
				Workers:  runtime.GOMAXPROCS(0),
			}, LIDTrial(sys, TrialOptions{Reliable: true}))
			if len(rep.Violations) != 0 {
				v := rep.Violations[0]
				t.Fatalf("%s/b=%d: %d violations; first: seed=%d err=%q events=%d",
					topo, b, len(rep.Violations), v.Seed, v.Err, len(v.Events))
			}
			if rep.Trials != perCombo {
				t.Fatalf("%s/b=%d: ran %d trials, want %d", topo, b, rep.Trials, perCombo)
			}
			trials += rep.Trials
			injections += rep.Injections
		}
	}
	if injections == 0 {
		t.Fatal("sweep injected nothing — the adversary is disconnected")
	}
	t.Logf("trials=%d injections=%d", trials, injections)
}

// TestExploreGreedySchedulerFindsNoViolations reruns the adversarial
// sweep with the heaviest-frontier admission scheduler threaded into
// the trial (TrialOptions.Scheduler): every oracle — LID ≡ LIC,
// validity, termination — must stay green, the proof the scheduler is
// a pure scheduling win under faults and asynchrony, not just on the
// clean runs the equivalence corpus covers.
func TestExploreGreedySchedulerFindsNoViolations(t *testing.T) {
	perCombo := 120
	if testing.Short() {
		perCombo = 20
	}
	spec := Spec{Drop: 0.08, Dup: 0.06, Corrupt: 0.04, Delay: 0.12, DelayScale: 5}
	trials, injections := 0, 0
	for _, topo := range []string{"gnp", "geometric", "ba"} {
		w := WorkloadSpec{Topology: topo, Metric: "random", N: 60, B: 2, Seed: 77}
		sys, err := w.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", topo, err)
		}
		rep := Explore(ExploreOptions{
			Spec:     spec,
			BaseSeed: 9_000_000,
			Count:    perCombo,
			Workers:  runtime.GOMAXPROCS(0),
		}, LIDTrial(sys, TrialOptions{Reliable: true, Scheduler: "greedy"}))
		if len(rep.Violations) != 0 {
			v := rep.Violations[0]
			t.Fatalf("%s: %d violations under greedy scheduling; first: seed=%d err=%q events=%d",
				topo, len(rep.Violations), v.Seed, v.Err, len(v.Events))
		}
		trials += rep.Trials
		injections += rep.Injections
	}
	if injections == 0 {
		t.Fatal("sweep injected nothing — the adversary is disconnected")
	}
	t.Logf("greedy trials=%d injections=%d", trials, injections)
}

// TestExploreCatchesBrokenProtocol is the negative control the
// acceptance criteria demand: an intentionally broken configuration —
// bare LID with message duplication, which violates the paper's
// exactly-once link model — must be caught, and the shrinker must
// minimize the replay to at most 25 events (the real minimum is one
// duplicated PROP).
func TestExploreCatchesBrokenProtocol(t *testing.T) {
	w := WorkloadSpec{Topology: "gnp", Metric: "random", N: 30, B: 2, Seed: 9}
	sys, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	broken := LIDTrial(sys, TrialOptions{Reliable: false, MaxDeliveries: 200000})
	rep := Explore(ExploreOptions{
		Spec:          Spec{Dup: 0.3},
		BaseSeed:      1,
		Count:         60,
		Workers:       4,
		MaxViolations: 3,
	}, broken)
	if len(rep.Violations) == 0 {
		t.Fatal("duplication on bare LID went undetected across 60 seeds")
	}
	v := rep.Violations[0]
	if len(v.Events) == 0 || len(v.Events) > 25 {
		t.Fatalf("minimized replay has %d events, want 1..25 (raw %d)", len(v.Events), v.RawEvents)
	}
	if len(v.Events) > v.RawEvents {
		t.Fatalf("shrinker grew the schedule: %d -> %d", v.RawEvents, len(v.Events))
	}
	// The minimized schedule must still reproduce by replay.
	if err := runTrial(broken, v.Seed, NewReplayInjector(Spec{Dup: 0.3}, v.Events)); err == nil {
		t.Fatal("minimized schedule no longer reproduces the violation")
	}
	t.Logf("violation seed=%d %q: %d raw events shrunk to %d in %d runs",
		v.Seed, v.Err, v.RawEvents, len(v.Events), v.ShrinkRuns)
}

// TestShrinkIsOneMinimal checks the shrinker contract on the broken
// variant: removing ANY single event from the minimized schedule makes
// the failure vanish (local 1-minimality), given budget.
func TestShrinkIsOneMinimal(t *testing.T) {
	w := WorkloadSpec{Topology: "gnp", Metric: "random", N: 24, B: 2, Seed: 2}
	sys, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	broken := LIDTrial(sys, TrialOptions{Reliable: false, MaxDeliveries: 200000})
	var seed uint64
	var events []Event
	for s := uint64(0); s < 80; s++ {
		inj := NewInjector(Spec{Dup: 0.25}, injectionSeed(s))
		if runTrial(broken, s, inj) != nil {
			seed, events = s, append([]Event(nil), inj.Events()...)
			break
		}
	}
	if events == nil {
		t.Skip("no failing seed in range (spec too gentle for this instance)")
	}
	min, runs := Shrink(Spec{Dup: 0.25}, seed, events, broken, 500)
	if runs >= 500 {
		t.Logf("shrink budget exhausted at %d events", len(min))
	}
	for i := range min {
		cand := append(append([]Event(nil), min[:i]...), min[i+1:]...)
		if runTrial(broken, seed, NewReplayInjector(Spec{Dup: 0.25}, cand)) != nil {
			t.Fatalf("schedule not 1-minimal: still fails without event %d (%+v)", i, min[i])
		}
	}
}

// TestReplayFileRoundTrip freezes a shrunk violation into a replay
// file, reloads it through the strict loader, and re-executes it — the
// overlaysim -replay path end to end, minus the CLI.
func TestReplayFileRoundTrip(t *testing.T) {
	w := WorkloadSpec{Topology: "gnp", Metric: "random", N: 30, B: 2, Seed: 9}
	sys, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Dup: 0.3}
	broken := LIDTrial(sys, TrialOptions{Reliable: false})
	rep := Explore(ExploreOptions{Spec: spec, BaseSeed: 1, Count: 60, Workers: 4, MaxViolations: 1}, broken)
	if len(rep.Violations) == 0 {
		t.Fatal("no violation to freeze")
	}
	v := rep.Violations[0]
	f := &ReplayFile{
		Version:  ReplayVersion,
		Workload: w,
		Seed:     v.Seed,
		Spec:     spec.String(),
		Reliable: false,
		Err:      v.Err,
		Events:   v.Events,
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReplay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	out, err := loaded.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == "" {
		t.Fatal("replay did not reproduce the violation")
	}
	if !out.Matches {
		t.Fatalf("replay reproduced a different violation: %q vs recorded %q", out.Violation, loaded.Err)
	}
}

// TestLoadReplayRejectsGarbage spot-checks the strict loader (the fuzz
// target explores this space much harder).
func TestLoadReplayRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"not json",
		"{}",
		`{"version":99,"workload":{"topology":"gnp","n":10,"b":1,"metric":"random"},"spec":"off","events":[]}`,
		`{"version":1,"workload":{"topology":"gnp","n":10,"b":1,"metric":"random"},"spec":"off","events":[]} trailing`,
		`{"version":1,"workload":{"topology":"evil","n":10,"b":1,"metric":"random"},"spec":"off","events":[]}`,
		`{"version":1,"workload":{"topology":"gnp","n":10,"b":1,"metric":"random"},"spec":"drop=2","events":[]}`,
		`{"version":1,"workload":{"topology":"gnp","n":10,"b":1,"metric":"random"},"spec":"off","events":[{"seq":-1,"kind":"drop"}]}`,
		`{"version":1,"workload":{"topology":"gnp","n":10,"b":1,"metric":"random"},"spec":"off","events":[],"surprise":1}`,
	} {
		if _, err := LoadReplay(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("LoadReplay(%q) succeeded, want error", in)
		}
	}
}

// TestExploreDeterministicReport pins Explore's worker-count
// independence: the same sweep with 1 and 8 workers yields the same
// violations (trials and injections are scheduling-independent too,
// because every trial always runs to completion once started and the
// early-stop check happens before claiming a seed — with MaxViolations
// high enough neither stop path triggers).
func TestExploreDeterministicReport(t *testing.T) {
	w := WorkloadSpec{Topology: "gnp", Metric: "random", N: 24, B: 2, Seed: 2}
	sys, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	broken := LIDTrial(sys, TrialOptions{Reliable: false, MaxDeliveries: 200000})
	run := func(workers int) Report {
		return Explore(ExploreOptions{
			Spec: Spec{Dup: 0.25}, BaseSeed: 0, Count: 40,
			Workers: workers, MaxViolations: 1000,
		}, broken)
	}
	a, b := run(1), run(8)
	if a.Trials != b.Trials || a.Injections != b.Injections {
		t.Fatalf("totals diverge: %s vs %s", a.Summary(), b.Summary())
	}
	if len(a.Violations) != len(b.Violations) {
		t.Fatalf("violation counts diverge: %d vs %d", len(a.Violations), len(b.Violations))
	}
	for i := range a.Violations {
		if a.Violations[i].Seed != b.Violations[i].Seed || a.Violations[i].Err != b.Violations[i].Err {
			t.Fatalf("violation %d diverges: %+v vs %+v", i, a.Violations[i], b.Violations[i])
		}
	}
}
