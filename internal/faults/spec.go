// Package faults is the repository's standing network adversary: a
// deterministic fault-injection layer over both simnet runtimes, plus
// a seed-sweeping schedule explorer that hunts for interleavings
// violating the paper's correctness claims (Lemmas 3–6: LID locks
// exactly the LIC edges under arbitrary asynchrony; §5's reliable-link
// assumption as discharged by package reliable).
//
// The pieces:
//
//   - Spec describes an adversary declaratively: per-message
//     drop/duplicate/corrupt probabilities, heavy-tailed extra delays,
//     timed network partitions (healing or not) and node crash/restart
//     windows. Specs round-trip through a compact flag-friendly string
//     form ("drop=0.1,dup=0.05,partition=20:60:0-9").
//   - Injector turns a (Spec, seed) pair into a simnet.LinkPolicy.
//     Injection decisions are drawn from the injector's OWN splitmix64
//     stream, never the runner's, so a (seed, Spec) pair replays
//     bit-identically and a zero Spec leaves runs byte-identical to no
//     policy at all. Every probabilistic injection is logged as an
//     Event keyed by the global send sequence number.
//   - ReplayFile freezes a failing run — workload descriptor, seeds,
//     Spec, and the (minimized) event list — as JSON that
//     `overlaysim -replay` re-executes.
//   - Explore sweeps seeds, recovers panics (the protocols' invariant
//     checks) and invariant errors as Violations, and shrinks each
//     failure's event list by greedy chunked removal until no event can
//     be removed without losing the failure.
//
// The adversary subsumes the earlier fault models: uniform loss (E11)
// is Spec{Drop: p} under package reliable, churn (E14) is crash/join
// at the protocol layer, and E15 sweeps the full mix.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// NoHeal as a window End means the fault never heals. Any End < 0
// parses/normalizes to NoHeal. A never-healing partition or crash
// breaks eventual delivery: protocols that rely on it (everything in
// this repository) will correctly be reported as non-terminating.
const NoHeal = -1

// Partition isolates the ID range [Lo, Hi] from the rest of the
// network during [Start, End): messages crossing the cut are dropped.
// Messages inside either side flow normally.
type Partition struct {
	Start, End float64
	Lo, Hi     int
}

// Crash isolates one node during [Start, End): every message to or
// from it is dropped, modelling a crashed process; End is the restart
// (messages flow again — state is the protocol's own problem, which is
// exactly what dlid's CmdLeave/CmdJoin repair handles at the protocol
// layer).
type Crash struct {
	Start, End float64
	Node       int
}

// Spec declares one adversary. The zero value is the fault-free
// network.
type Spec struct {
	// Drop, Dup and Corrupt are independent per-message probabilities
	// in [0, 1): lose the message, deliver one extra copy, or mangle
	// the payload (simnet.Corrupted).
	Drop    float64
	Dup     float64
	Corrupt float64
	// Delay is the per-message probability of an extra heavy-tailed
	// delay; DelayScale is the Pareto scale of that delay in virtual
	// time units (default 1 when Delay > 0 and DelayScale == 0).
	Delay      float64
	DelayScale float64
	// Partitions and Crashes are timed windows, only meaningful on the
	// event runtime (the GoRunner has no global clock).
	Partitions []Partition
	Crashes    []Crash
}

// NodeDownAt reports whether node is inside any crash window at
// virtual time `at` — the ground-truth function detector verdict
// scoring (detector.PublishVerdicts) checks suspicions against.
func (s Spec) NodeDownAt(node int, at float64) bool {
	for _, c := range s.Crashes {
		if c.Node != node || at < c.Start {
			continue
		}
		if c.End == NoHeal || at < c.End {
			return true
		}
	}
	return false
}

// IsZero reports whether the spec injects nothing.
func (s Spec) IsZero() bool {
	return s.Drop == 0 && s.Dup == 0 && s.Corrupt == 0 && s.Delay == 0 &&
		len(s.Partitions) == 0 && len(s.Crashes) == 0
}

// PreservesDelivery reports whether every message is eventually
// delivered at least once under the spec alone (no transport): no
// drops, no corruption, no unhealed windows. Duplication, delay and
// healing windows reorder and repeat but never lose — the regime the
// Lemma 3–6 property tests exercise on bare LID. Dropping/corrupting
// specs need package reliable underneath.
func (s Spec) PreservesDelivery() bool {
	if s.Drop != 0 || s.Corrupt != 0 {
		return false
	}
	for _, p := range s.Partitions {
		if p.End == NoHeal {
			return false
		}
	}
	for _, c := range s.Crashes {
		if c.End == NoHeal {
			return false
		}
	}
	return true
}

// Validate checks ranges; Parse output always validates.
func (s Spec) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", s.Drop}, {"dup", s.Dup}, {"corrupt", s.Corrupt}, {"delay", s.Delay}} {
		// The negated form rejects NaN along with out-of-range values.
		if !(p.v >= 0 && p.v < 1) {
			return fmt.Errorf("faults: %s=%v outside [0,1)", p.name, p.v)
		}
	}
	if !(s.DelayScale >= 0) || s.DelayScale > 1e12 {
		return fmt.Errorf("faults: delayscale=%v invalid", s.DelayScale)
	}
	for _, p := range s.Partitions {
		if !(p.Start >= 0) || (p.End != NoHeal && !(p.End > p.Start)) {
			return fmt.Errorf("faults: partition window [%v,%v) invalid", p.Start, p.End)
		}
		if p.Lo < 0 || p.Hi < p.Lo {
			return fmt.Errorf("faults: partition range %d-%d invalid", p.Lo, p.Hi)
		}
	}
	for _, c := range s.Crashes {
		if !(c.Start >= 0) || (c.End != NoHeal && !(c.End > c.Start)) {
			return fmt.Errorf("faults: crash window [%v,%v) invalid", c.Start, c.End)
		}
		if c.Node < 0 {
			return fmt.Errorf("faults: crash node %d negative", c.Node)
		}
	}
	return nil
}

// String renders the canonical spec string: probability fields in fixed
// order with zero fields omitted, then partitions, then crashes (each
// sorted). Parse(s.String()) reproduces the normalized spec; the empty
// spec renders as "off".
func (s Spec) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v != 0 {
			parts = append(parts, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	add("drop", s.Drop)
	add("dup", s.Dup)
	add("corrupt", s.Corrupt)
	add("delay", s.Delay)
	add("delayscale", s.DelayScale)
	ps := append([]Partition(nil), s.Partitions...)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Start != ps[j].Start {
			return ps[i].Start < ps[j].Start
		}
		return ps[i].Lo < ps[j].Lo
	})
	for _, p := range ps {
		parts = append(parts, fmt.Sprintf("partition=%s:%s:%d-%d",
			formatTime(p.Start), formatEnd(p.End), p.Lo, p.Hi))
	}
	cs := append([]Crash(nil), s.Crashes...)
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Start != cs[j].Start {
			return cs[i].Start < cs[j].Start
		}
		return cs[i].Node < cs[j].Node
	})
	for _, c := range cs {
		parts = append(parts, fmt.Sprintf("crash=%s:%s:%d",
			formatTime(c.Start), formatEnd(c.End), c.Node))
	}
	if len(parts) == 0 {
		return "off"
	}
	return strings.Join(parts, ",")
}

func formatTime(t float64) string { return strconv.FormatFloat(t, 'g', -1, 64) }

func formatEnd(t float64) string {
	if t == NoHeal {
		return "inf"
	}
	return formatTime(t)
}

// Parse builds a Spec from its string form: comma-separated key=value
// fields. Keys: drop, dup, corrupt, delay, delayscale (floats);
// partition=START:END:LO-HI and crash=START:END:NODE may repeat, END
// may be "inf" for a window that never heals. "" and "off" are the
// zero spec. The result is normalized (windows sorted) and validated.
func Parse(in string) (Spec, error) {
	var s Spec
	in = strings.TrimSpace(in)
	if in == "" || in == "off" {
		return s, nil
	}
	for _, field := range strings.Split(in, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			return s, fmt.Errorf("faults: empty field in %q", in)
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return s, fmt.Errorf("faults: field %q is not key=value", field)
		}
		switch k {
		case "drop", "dup", "corrupt", "delay", "delayscale":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return s, fmt.Errorf("faults: %s: %v", k, err)
			}
			switch k {
			case "drop":
				s.Drop = f
			case "dup":
				s.Dup = f
			case "corrupt":
				s.Corrupt = f
			case "delay":
				s.Delay = f
			case "delayscale":
				s.DelayScale = f
			}
		case "partition":
			start, end, rest, err := parseWindow(v)
			if err != nil {
				return s, err
			}
			loS, hiS, ok := strings.Cut(rest, "-")
			if !ok {
				return s, fmt.Errorf("faults: partition range %q is not LO-HI", rest)
			}
			lo, err := strconv.Atoi(loS)
			if err != nil {
				return s, fmt.Errorf("faults: partition lo: %v", err)
			}
			hi, err := strconv.Atoi(hiS)
			if err != nil {
				return s, fmt.Errorf("faults: partition hi: %v", err)
			}
			s.Partitions = append(s.Partitions, Partition{Start: start, End: end, Lo: lo, Hi: hi})
		case "crash":
			start, end, rest, err := parseWindow(v)
			if err != nil {
				return s, err
			}
			node, err := strconv.Atoi(rest)
			if err != nil {
				return s, fmt.Errorf("faults: crash node: %v", err)
			}
			s.Crashes = append(s.Crashes, Crash{Start: start, End: end, Node: node})
		default:
			return s, fmt.Errorf("faults: unknown field %q", k)
		}
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	// Normalize: round-trip through String so Parse(String()) is the
	// identity on the parsed form.
	sort.Slice(s.Partitions, func(i, j int) bool {
		if s.Partitions[i].Start != s.Partitions[j].Start {
			return s.Partitions[i].Start < s.Partitions[j].Start
		}
		return s.Partitions[i].Lo < s.Partitions[j].Lo
	})
	sort.Slice(s.Crashes, func(i, j int) bool {
		if s.Crashes[i].Start != s.Crashes[j].Start {
			return s.Crashes[i].Start < s.Crashes[j].Start
		}
		return s.Crashes[i].Node < s.Crashes[j].Node
	})
	return s, nil
}

// parseWindow splits "START:END:REST", with END possibly "inf".
func parseWindow(v string) (start, end float64, rest string, err error) {
	fields := strings.SplitN(v, ":", 3)
	if len(fields) != 3 {
		return 0, 0, "", fmt.Errorf("faults: window %q is not START:END:ARG", v)
	}
	start, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, 0, "", fmt.Errorf("faults: window start: %v", err)
	}
	if fields[1] == "inf" {
		end = NoHeal
	} else {
		end, err = strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0, 0, "", fmt.Errorf("faults: window end: %v", err)
		}
		if end < 0 {
			end = NoHeal
		}
	}
	return start, end, fields[2], nil
}
