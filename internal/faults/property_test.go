package faults

import (
	"testing"
	"time"

	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/reliable"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// workloadFor spreads the property seeds across topologies, metrics
// and quotas so the 500-schedule sweep also varies the instance.
func workloadFor(seed uint64) WorkloadSpec {
	topos := []string{"gnp", "geometric", "ba", "ring"}
	metrics := []string{"random", "symmetric", "distance"}
	return WorkloadSpec{
		Topology: topos[seed%uint64(len(topos))],
		Metric:   metrics[(seed/4)%uint64(len(metrics))],
		N:        20 + int(seed%5)*10, // 20..60
		B:        1 + int(seed%3),     // 1..3
		Seed:     seed * 1_000_003,
	}
}

// TestPropertyLIDEqualsLICUnderFaults is the PR's headline property
// (extending E2): across 500+ seeded fault schedules, LID run through
// the reliable substrate under drops, duplicates, corruption and
// heavy-tailed delays still locks exactly the LIC edges, with
// symmetric locks and respected quotas (BuildMatching + Validate
// inside the trial check both). Delivery is restored by reliable, so
// Lemmas 3–6 must hold schedule-for-schedule.
func TestPropertyLIDEqualsLICUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("500-seed property sweep")
	}
	spec := Spec{Drop: 0.1, Dup: 0.08, Corrupt: 0.05, Delay: 0.15, DelayScale: 6}
	const seeds = 520
	for seed := uint64(0); seed < seeds; seed++ {
		w := workloadFor(seed)
		sys, err := w.Build()
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		trial := LIDTrial(sys, TrialOptions{Reliable: true})
		inj := NewInjector(spec, injectionSeed(seed))
		if err := runTrial(trial, seed, inj); err != nil {
			t.Fatalf("seed %d (%+v): %v", seed, w, err)
		}
	}
}

// TestPropertyBareLIDUnderDeliveryPreservingFaults checks the paper's
// own model: bare LID (no transport) under an adversary that reorders
// and delays arbitrarily but never loses or corrupts. This is the
// regime of Lemmas 3–6 and must hold without any substrate.
func TestPropertyBareLIDUnderDeliveryPreservingFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	spec := Spec{Delay: 0.4, DelayScale: 25}
	if !spec.PreservesDelivery() {
		t.Fatal("test spec must preserve delivery")
	}
	for seed := uint64(0); seed < 200; seed++ {
		w := workloadFor(seed)
		sys, err := w.Build()
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		trial := LIDTrial(sys, TrialOptions{Reliable: false})
		if err := runTrial(trial, seed, NewInjector(spec, injectionSeed(seed))); err != nil {
			t.Fatalf("seed %d (%+v): %v", seed, w, err)
		}
	}
}

// TestPropertyHealingPartitionAndCrash drives reliable-wrapped LID
// through a partition that heals and a crash that restarts: the
// retransmission timers must carry the protocol across the outage and
// the outcome must still equal LIC.
func TestPropertyHealingPartitionAndCrash(t *testing.T) {
	spec := Spec{
		Partitions: []Partition{{Start: 5, End: 120, Lo: 0, Hi: 9}},
		Crashes:    []Crash{{Start: 10, End: 150, Node: 12}},
	}
	for seed := uint64(0); seed < 40; seed++ {
		w := WorkloadSpec{Topology: "gnp", Metric: "random", N: 30, B: 2, Seed: seed + 1}
		sys, err := w.Build()
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		trial := LIDTrial(sys, TrialOptions{Reliable: true, RTO: 40})
		if err := runTrial(trial, seed, NewInjector(spec, injectionSeed(seed))); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestPropertyGoRunnerUnderFaults runs the goroutine runtime through
// the same policy: the schedule is the Go scheduler's, the verdicts
// are serialized by the runner, and the outcome must still be the
// unique LIC matching. Bare LID gets a delivery-preserving adversary
// (delay only); the drop/dup/corrupt mix goes through reliable, whose
// retransmission timers ride the GoRunner's wall clock.
func TestPropertyGoRunnerUnderFaults(t *testing.T) {
	cases := []struct {
		name     string
		spec     Spec
		reliable bool
	}{
		{"bare-delay", Spec{Delay: 0.2, DelayScale: 0.01}, false},
		{"reliable-mixed", Spec{Drop: 0.1, Dup: 0.1, Corrupt: 0.05, Delay: 0.1, DelayScale: 0.01}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(0); seed < 6; seed++ {
				w := WorkloadSpec{Topology: "gnp", Metric: "random", N: 24, B: 2, Seed: seed + 7}
				sys, err := w.Build()
				if err != nil {
					t.Fatalf("seed %d: build: %v", seed, err)
				}
				tbl := satisfaction.NewTable(sys)
				want := matching.LIC(sys, tbl)
				nodes := lid.NewNodes(sys, tbl)
				handlers := lid.Handlers(nodes)
				if tc.reliable {
					// RTO 50 virtual units = 50ms of GoRunner wall
					// clock per retry.
					handlers = reliable.Handlers(reliable.Wrap(handlers, 50, 0))
				}
				runner := simnet.NewGoRunner(sys.Graph().NumNodes(), 30*time.Second)
				runner.SetPolicy(NewInjector(tc.spec, injectionSeed(seed)))
				if _, err := runner.Run(handlers); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				m, err := lid.BuildMatching(nodes)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !m.Equal(want) {
					t.Fatalf("seed %d: goroutine LID under faults differs from LIC", seed)
				}
				if err := m.Validate(sys); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestTrialCatchesBrokenOutcome sanity-checks the oracle itself: a
// trial whose expected matching is perturbed must report a violation.
func TestTrialCatchesBrokenOutcome(t *testing.T) {
	w := WorkloadSpec{Topology: "gnp", Metric: "random", N: 20, B: 2, Seed: 3}
	sys, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	trial := LIDTrial(sys, TrialOptions{Reliable: true})
	// A drop-everything adversary on BARE lid would hang; through
	// reliable it converges. Instead break the run by duplicating on
	// bare LID: the duplicate PROP hits a node in a resolved state and
	// the protocol's own invariant check panics, which runTrial must
	// surface as an error.
	bare := LIDTrial(sys, TrialOptions{Reliable: false, MaxDeliveries: 100000})
	var caught error
	for seed := uint64(0); seed < 50 && caught == nil; seed++ {
		caught = runTrial(bare, seed, NewInjector(Spec{Dup: 0.5}, injectionSeed(seed)))
	}
	if caught == nil {
		t.Fatal("bare LID under 50% duplication never violated — the oracle is blind")
	}
	t.Logf("oracle caught: %v", caught)
	// And the reliable-wrapped trial stays clean on the same adversary.
	if err := runTrial(trial, 1, NewInjector(Spec{Dup: 0.5}, injectionSeed(1))); err != nil {
		t.Fatalf("reliable trial violated under duplication: %v", err)
	}
}

// TestMaxDeliveriesGuardFires proves the non-termination invariant is
// detectable: an unhealed partition plus retry-forever reliable links
// can never terminate, and the delivery bound must turn that into an
// error rather than an infinite loop.
func TestMaxDeliveriesGuardFires(t *testing.T) {
	w := WorkloadSpec{Topology: "gnp", Metric: "random", N: 16, B: 2, Seed: 5}
	sys, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Partitions: []Partition{{Start: 0, End: NoHeal, Lo: 0, Hi: 7}}}
	trial := LIDTrial(sys, TrialOptions{Reliable: true, MaxDeliveries: 20000})
	verr := runTrial(trial, 1, NewInjector(spec, 2))
	if verr == nil {
		t.Fatal("unhealed partition terminated — the guard never fired")
	}
	t.Logf("guard: %v", verr)
}
