package faults

import (
	"bytes"
	"testing"

	"overlaymatch/internal/lid"
	"overlaymatch/internal/reliable"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/trace"
)

// runTraced executes one reliable-wrapped LID run on the event runtime
// under (seed, spec, faultSeed) and returns the NDJSON trace.
func runTraced(t *testing.T, w WorkloadSpec, seed uint64, spec Spec, faultSeed uint64) []byte {
	t.Helper()
	sys, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	tbl := satisfaction.NewTable(sys)
	nodes := lid.NewNodes(sys, tbl)
	eps := reliable.Wrap(lid.Handlers(nodes), 30, 0)
	var col trace.Collector
	runner := simnet.NewRunner(sys.Graph().NumNodes(), simnet.Options{
		Seed:    seed,
		Latency: simnet.ExponentialLatency(4),
		Policy:  NewInjector(spec, faultSeed),
		Trace:   col.Record,
	})
	if _, err := runner.Run(reliable.Handlers(eps)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := col.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenFaultTraceDeterminism is the golden determinism check: a
// fixed (seed, FaultSpec) pair yields a byte-identical NDJSON delivery
// trace run-over-run on the event runtime — the property the whole
// record/replay design rests on.
func TestGoldenFaultTraceDeterminism(t *testing.T) {
	w := WorkloadSpec{Topology: "geometric", Metric: "distance", N: 40, B: 2, Seed: 11}
	spec := Spec{Drop: 0.12, Dup: 0.08, Corrupt: 0.04, Delay: 0.2, DelayScale: 5,
		Partitions: []Partition{{Start: 8, End: 60, Lo: 0, Hi: 12}}}
	first := runTraced(t, w, 99, spec, injectionSeed(99))
	if len(first) == 0 {
		t.Fatal("empty trace")
	}
	for i := 0; i < 3; i++ {
		if got := runTraced(t, w, 99, spec, injectionSeed(99)); !bytes.Equal(got, first) {
			t.Fatalf("run %d: trace differs from first run", i+2)
		}
	}
	// A different fault seed must actually change the schedule,
	// otherwise the determinism above is vacuous.
	if got := runTraced(t, w, 99, spec, injectionSeed(100)); bytes.Equal(got, first) {
		t.Fatal("changing the fault seed left the trace unchanged")
	}
}

// TestZeroSpecMatchesNilPolicy pins the hook's no-op guarantee at the
// trace level: a zero-spec injector and no policy at all produce
// byte-identical NDJSON traces (the injector draws nothing from any
// stream the runner uses).
func TestZeroSpecMatchesNilPolicy(t *testing.T) {
	w := WorkloadSpec{Topology: "gnp", Metric: "random", N: 30, B: 2, Seed: 4}
	sys, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	run := func(policy simnet.LinkPolicy) []byte {
		tbl := satisfaction.NewTable(sys)
		nodes := lid.NewNodes(sys, tbl)
		var col trace.Collector
		runner := simnet.NewRunner(sys.Graph().NumNodes(), simnet.Options{
			Seed:    7,
			Latency: simnet.ExponentialLatency(4),
			Policy:  policy,
			Trace:   col.Record,
		})
		if _, err := runner.Run(lid.Handlers(nodes)); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := col.WriteNDJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	withNil := run(nil)
	withZero := run(NewInjector(Spec{}, 123))
	if !bytes.Equal(withNil, withZero) {
		t.Fatal("zero-spec policy perturbed the run")
	}
}
