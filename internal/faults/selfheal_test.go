package faults

import (
	"errors"
	"testing"
	"time"

	"overlaymatch/internal/detector"
	"overlaymatch/internal/dlid"
	"overlaymatch/internal/reliable"
	"overlaymatch/internal/robust"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// TestNoHealCrashQuiesces pins the termination half of the crash-stop
// story: a node silenced forever plus a transport with a *bounded*
// retry budget must still reach global quiescence — the retransmission
// timers drain instead of retrying into eternity — with the loss
// surfaced as abandonment and a LinkDown escalation, never as a hang.
// Both runtimes are exercised: the event runtime in Quiesce mode via
// LIDTrial's bounded-retry path (which must classify the run as
// degraded, not as a violation), and the goroutine runtime with the
// timeout-tolerant protocol on top (the GoRunner has no quiesce mode,
// so termination there means every node actually halts).
func TestNoHealCrashQuiesces(t *testing.T) {
	w := WorkloadSpec{Topology: "gnp", Metric: "random", N: 20, B: 2, Seed: 9}
	sys, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	const crashed = 3
	if len(sys.Graph().Neighbors(crashed)) == 0 {
		t.Fatal("workload gave the crash victim no neighbors; pick another seed")
	}
	spec := Spec{Crashes: []Crash{{Start: 0, End: NoHeal, Node: crashed}}}

	t.Run("event", func(t *testing.T) {
		trial := LIDTrial(sys, TrialOptions{Reliable: true, RTO: 20, MaxRetries: 3})
		for seed := uint64(0); seed < 8; seed++ {
			err := runTrial(trial, seed, NewInjector(spec, injectionSeed(seed)))
			var de *DegradedError
			if !errors.As(err, &de) {
				t.Fatalf("seed %d: want degraded quiescence, got %v", seed, err)
			}
			if de.Abandoned == 0 || de.LinkDowns == 0 {
				t.Fatalf("seed %d: degraded without abandonment? %+v", seed, de)
			}
			total := 0
			for _, n := range de.ByPeer {
				total += n
			}
			if total != de.Abandoned {
				t.Fatalf("seed %d: per-peer counts (%d) do not add up to the total (%d)",
					seed, total, de.Abandoned)
			}
		}
	})

	t.Run("goroutine", func(t *testing.T) {
		tbl := satisfaction.NewTable(sys)
		n := sys.Graph().NumNodes()
		handlers := make([]simnet.Handler, n)
		for id := 0; id < n; id++ {
			// Timeout comfortably past rto * (1 + retries) so honest
			// answers beat the reaper.
			handlers[id] = robust.NewTolerantNode(sys, tbl, id, 400)
		}
		eps := reliable.Wrap(handlers, 20, 3)
		runner := simnet.NewGoRunner(n, 60*time.Second)
		runner.SetPolicy(NewInjector(spec, injectionSeed(42)))
		if _, err := runner.Run(reliable.Handlers(eps)); err != nil {
			t.Fatalf("goroutine runtime did not quiesce: %v", err)
		}
		if reliable.TotalAbandoned(eps) == 0 {
			t.Fatal("no frames abandoned across an unhealed crash")
		}
		if reliable.TotalLinkDowns(eps) == 0 {
			t.Fatal("no LinkDown escalation across an unhealed crash")
		}
	})
}

// TestExploreClassifiesDegraded runs the sweep itself over the
// crash-stop adversary: every trial must land in Degraded — quiesced
// with abandoned frames — and none in Violations, proving the
// termination oracle distinguishes loss-degradation from breakage.
func TestExploreClassifiesDegraded(t *testing.T) {
	w := WorkloadSpec{Topology: "gnp", Metric: "random", N: 16, B: 2, Seed: 9}
	sys, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Crashes: []Crash{{Start: 0, End: NoHeal, Node: 2}}}
	rep := Explore(ExploreOptions{Spec: spec, BaseSeed: 10, Count: 6},
		LIDTrial(sys, TrialOptions{Reliable: true, RTO: 20, MaxRetries: 3}))
	if len(rep.Violations) != 0 {
		t.Fatalf("crash-stop degradation misreported as violations: %+v", rep.Violations)
	}
	if rep.Degraded != rep.Trials {
		t.Fatalf("only %d/%d trials classified degraded (%s)", rep.Degraded, rep.Trials, rep.Summary())
	}
}

// TestExploreSelfHealCrashWindows sweeps the full self-healing stack
// (Rematch repair + heartbeat detector) through healing crash windows:
// the detector must carry every trial through suspicion, repair and
// restore without a single structural violation.
func TestExploreSelfHealCrashWindows(t *testing.T) {
	w := WorkloadSpec{Topology: "gnp", Metric: "random", N: 24, B: 2, Seed: 4}
	sys, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Crashes: []Crash{{Start: 40, End: 260, Node: 5}}}
	trial := SelfHealTrial(sys, dlid.SelfHealConfig{
		Mode:     dlid.Rematch,
		Detector: detector.Default(),
	}, nil, TrialOptions{Jitter: 0.5})
	rep := Explore(ExploreOptions{Spec: spec, BaseSeed: 1, Count: 8}, trial)
	if len(rep.Violations) != 0 {
		t.Fatalf("self-heal stack violated under crash windows: %+v", rep.Violations)
	}
	// No transport in this stack, so nothing can be abandoned.
	if rep.Degraded != 0 {
		t.Fatalf("transport-free stack reported %d degraded trials", rep.Degraded)
	}
}
