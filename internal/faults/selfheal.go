package faults

import (
	"overlaymatch/internal/dlid"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/reliable"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// SelfHealTrial builds a trial for the self-healing overlay stack
// (dlid maintenance under a failure detector and optional bounded-retry
// transport, see dlid.RunSelfHeal): run the stack under the injector
// and require the full structural invariant set — quiescence, symmetry,
// feasibility, and maximality on the live subgraph excluding silenced
// nodes. Unlike LIDTrial, abandonment does NOT waive the invariants:
// converting lost links into repairs is exactly what the stack is for,
// so a structural violation in a degraded run is still a violation.
// Runs that quiesced cleanly but lost frames come back as
// *DegradedError so Explore tallies them apart from clean runs.
func SelfHealTrial(sys *pref.System, cfg dlid.SelfHealConfig, schedule []dlid.Event, opts TrialOptions) Trial {
	tbl := satisfaction.NewTable(sys)
	return func(seed uint64, inj *Injector) error {
		res, err := dlid.RunSelfHeal(sys, tbl, cfg, schedule, simnet.Options{
			Seed:          seed,
			Latency:       simnet.ExponentialLatency(opts.jitter()),
			Policy:        inj,
			MaxDeliveries: opts.maxDeliveries(sys),
		})
		if err != nil {
			return err
		}
		if ab := reliable.TotalAbandoned(res.Endpoints); ab > 0 {
			return &DegradedError{
				Abandoned: ab,
				ByPeer:    abandonedByPeer(res.Endpoints),
				LinkDowns: reliable.TotalLinkDowns(res.Endpoints),
			}
		}
		return nil
	}
}
