package faults

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/reliable"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// WorkloadSpec describes a reproducible workload compactly enough to
// freeze into a replay file: generator family, size, quota, metric and
// the workload seed. Zero-valued shape parameters get the same
// defaults the experiment suite uses (average degree ≈ 8).
type WorkloadSpec struct {
	Topology string  `json:"topology"` // gnp | geometric | ba | ring
	N        int     `json:"n"`
	B        int     `json:"b"`
	Metric   string  `json:"metric"` // random | symmetric | distance
	Seed     uint64  `json:"seed"`
	P        float64 `json:"p,omitempty"`      // gnp edge probability
	Radius   float64 `json:"radius,omitempty"` // geometric radius
	M        int     `json:"m,omitempty"`      // ba attachments
}

// Validate bounds the spec so corrupted replay files fail fast instead
// of allocating absurd instances.
func (w WorkloadSpec) Validate() error {
	switch w.Topology {
	case "gnp", "geometric", "ba", "ring":
	default:
		return fmt.Errorf("faults: unknown topology %q", w.Topology)
	}
	switch w.Metric {
	case "random", "symmetric", "distance":
	default:
		return fmt.Errorf("faults: unknown metric %q", w.Metric)
	}
	if w.N < 1 || w.N > 1<<20 {
		return fmt.Errorf("faults: n=%d outside [1,2^20]", w.N)
	}
	if w.B < 0 || w.B > w.N {
		return fmt.Errorf("faults: b=%d outside [0,n]", w.B)
	}
	if !(w.P >= 0 && w.P <= 1) {
		return fmt.Errorf("faults: p=%v outside [0,1]", w.P)
	}
	if !(w.Radius >= 0 && w.Radius <= 2) {
		return fmt.Errorf("faults: radius=%v outside [0,2]", w.Radius)
	}
	if w.M < 0 || w.M > w.N {
		return fmt.Errorf("faults: m=%d outside [0,n]", w.M)
	}
	return nil
}

// Build materializes the workload.
func (w WorkloadSpec) Build() (*pref.System, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(w.Seed)
	var g *graph.Graph
	var coords [][2]float64
	switch w.Topology {
	case "gnp":
		p := w.P
		if p == 0 {
			p = 8.0 / float64(maxInt(w.N-1, 1))
			if p > 1 {
				p = 1
			}
		}
		g = gen.GNP(src.Split(), w.N, p)
	case "geometric":
		r := w.Radius
		if r == 0 {
			r = 1.6 / sqrt(float64(w.N))
		}
		g, coords = gen.Geometric(src.Split(), w.N, r)
	case "ba":
		m := w.M
		if m == 0 {
			m = 4
		}
		if m >= w.N {
			m = maxInt(w.N-1, 1)
		}
		if w.N < 2 {
			g = graph.NewBuilder(w.N).MustGraph()
		} else {
			g = gen.BarabasiAlbert(src.Split(), w.N, m)
		}
	case "ring":
		g = gen.Ring(w.N)
	}
	var metric pref.Metric
	switch w.Metric {
	case "random":
		metric = pref.NewRandomMetric(src.Split())
	case "symmetric":
		metric = pref.NewSymmetricRandomMetric(src.Split())
	case "distance":
		if coords == nil {
			coords = make([][2]float64, g.NumNodes())
			for i := range coords {
				coords[i] = [2]float64{src.Float64(), src.Float64()}
			}
		}
		metric = pref.DistanceMetric{Coords: coords}
	}
	return pref.Build(g, metric, pref.UniformQuota(w.B))
}

// TrialOptions configures how one LID execution runs under the
// adversary.
type TrialOptions struct {
	// Reliable wraps the LID handlers in the ack/retransmit substrate.
	// Required for specs that drop or corrupt (bare LID assumes the
	// paper's reliable links).
	Reliable bool
	// RTO is the retransmission timeout (default 30).
	RTO float64
	// Jitter is the exponential latency jitter scale (default 4).
	Jitter float64
	// MaxRetries bounds the transport's retransmissions per frame
	// (0 = retry forever, the eventual-delivery regime). A bounded
	// budget changes the termination oracle: under an unhealed cut the
	// transport eventually abandons its frames and the run *quiesces*
	// instead of retrying forever, so the runner is put in Quiesce mode
	// and a run that drained with abandoned frames is classified as a
	// DegradedError rather than a violation.
	MaxRetries int
	// MaxDeliveries guards against non-termination; 0 derives a bound
	// from the instance size (the non-termination invariant).
	MaxDeliveries int
	// Scheduler selects the admission scheduling of the proposal loop,
	// in lid.ParseSchedulerSpec's grammar ("" = canonical). Scheduling
	// must never change the outcome, so every oracle — LID ≡ LIC,
	// validity, termination — runs unchanged under "greedy"; sweeping
	// Explore with it is the proof the scheduler is a pure scheduling
	// win, not an approximation.
	Scheduler string
}

func (o TrialOptions) rto() float64 {
	if o.RTO > 0 {
		return o.RTO
	}
	return 30
}

func (o TrialOptions) jitter() float64 {
	if o.Jitter > 0 {
		return o.Jitter
	}
	return 4
}

func (o TrialOptions) maxDeliveries(sys *pref.System) int {
	if o.MaxDeliveries > 0 {
		return o.MaxDeliveries
	}
	// Generous: LID needs <= 2m messages; reliable multiplies by
	// acks + retransmissions; heavy delay tails stretch further.
	return 400*sys.Graph().NumEdges() + 100*sys.Graph().NumNodes() + 20000
}

// Trial is one seeded protocol execution under an injector: it returns
// nil when every invariant held, or an error describing the violation.
// Explore calls it with recording injectors, the shrinker with replay
// injectors; both recover panics (the protocols' built-in invariant
// checks) into errors.
type Trial func(seed uint64, inj *Injector) error

// DegradedError classifies a run that terminated but lost frames for
// good: a bounded-retry transport (TrialOptions.MaxRetries) exhausted
// its budget against an unhealed fault and abandoned sends. Such a run
// quiesced — the "stuck forever retrying" failure mode did not occur —
// but the eventual-delivery assumption underlying the LIC-equality
// oracle is void, so equality (and any structural wreckage downstream
// of the lost frames, carried in Err) is reported as degradation, not
// as a protocol violation. Explore counts these separately.
type DegradedError struct {
	// Abandoned is the total number of frames given up; ByPeer breaks
	// it down by destination so a single dead link is visible.
	Abandoned int
	ByPeer    map[int]int
	// LinkDowns counts the transport's down-transition escalations.
	LinkDowns int
	// Err is the oracle failure observed in the degraded run, if any
	// (nil when the run quiesced with a clean partial outcome).
	Err error
}

func (e *DegradedError) Error() string {
	msg := fmt.Sprintf("faults: degraded run: %d frames abandoned toward %d peers, %d link-down escalations",
		e.Abandoned, len(e.ByPeer), e.LinkDowns)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *DegradedError) Unwrap() error { return e.Err }

// runError marks failures of the run itself — deadlock or the
// delivery-bound guard — which the degraded-run classification must
// never waive: a bounded-retry transport is supposed to quiesce.
type runError struct{ error }

func (e runError) Unwrap() error { return e.error }

// LIDTrial builds the standard trial: run LID on sys under the
// injector and verify the full invariant set — termination (bounded
// deliveries), symmetric locks and quota feasibility (BuildMatching +
// Validate), and outcome ≡ LIC edge-for-edge (Lemmas 3–6). With
// bounded retries (opts.MaxRetries > 0) a run whose transport
// abandoned frames comes back as a *DegradedError instead: it must
// still quiesce, but the LIC oracle is void without eventual delivery.
func LIDTrial(sys *pref.System, opts TrialOptions) Trial {
	tbl := satisfaction.NewTable(sys)
	want := matching.LIC(sys, tbl)
	return func(seed uint64, inj *Injector) error {
		m, eps, _, err := runLID(sys, tbl, seed, inj, opts)
		if _, isRun := err.(runError); isRun {
			return err
		}
		if ab := reliable.TotalAbandoned(eps); ab > 0 {
			return &DegradedError{
				Abandoned: ab,
				ByPeer:    abandonedByPeer(eps),
				LinkDowns: reliable.TotalLinkDowns(eps),
				Err:       err,
			}
		}
		if err != nil {
			return err
		}
		if !m.Equal(want) {
			return fmt.Errorf("faults: LID outcome differs from LIC (%d vs %d edges)", m.Size(), want.Size())
		}
		return nil
	}
}

// abandonedByPeer merges the per-endpoint abandonment maps.
func abandonedByPeer(eps []*reliable.Endpoint) map[int]int {
	merged := make(map[int]int)
	for _, e := range eps {
		for peer, n := range e.AbandonedBy() {
			merged[peer] += n
		}
	}
	return merged
}

// runLID executes one LID run under the injector and checks the
// structural invariants, returning the resulting matching, the
// transport endpoints (nil when bare) and stats. Runner failures come
// back as runError; structural violations as plain errors.
func runLID(sys *pref.System, tbl *satisfaction.Table, seed uint64, inj *Injector, opts TrialOptions) (*matching.Matching, []*reliable.Endpoint, simnet.Stats, error) {
	sched, err := lid.ParseSchedulerSpec(opts.Scheduler)
	if err != nil {
		return nil, nil, simnet.Stats{}, runError{err}
	}
	nodes := lid.NewNodes(sys, tbl)
	handlers := lid.Handlers(nodes)
	var eps []*reliable.Endpoint
	if opts.Reliable {
		eps = reliable.Wrap(handlers, opts.rto(), opts.MaxRetries)
		handlers = reliable.Handlers(eps)
	}
	simOpts := simnet.Options{
		Seed:          seed,
		Latency:       simnet.ExponentialLatency(opts.jitter()),
		Policy:        inj,
		MaxDeliveries: opts.maxDeliveries(sys),
		// With a bounded retry budget abandonment is a legal outcome:
		// nodes starved of answers idle rather than halt, and the run
		// ends when the event queue drains.
		Quiesce: opts.MaxRetries > 0,
	}
	if sched.Greedy() {
		// The admitter watches the LID state machines directly; the
		// reliable wrapping is transparent to it (endpoints are safe
		// to receive through before their own deferred Init).
		simOpts.Admitter = lid.NewGreedyAdmitter(sys, tbl, nodes, sched)
	}
	runner := simnet.NewRunner(sys.Graph().NumNodes(), simOpts)
	stats, err := runner.Run(handlers)
	if err != nil {
		return nil, eps, stats, runError{fmt.Errorf("faults: run: %w", err)}
	}
	m, err := lid.BuildMatching(nodes)
	if err != nil {
		return nil, eps, stats, fmt.Errorf("faults: %w", err)
	}
	if err := m.Validate(sys); err != nil {
		return nil, eps, stats, fmt.Errorf("faults: %w", err)
	}
	return m, eps, stats, nil
}

// ReplayFile freezes one failing (or interesting) run: everything
// needed to re-execute it bit-identically on the event runtime.
type ReplayFile struct {
	Version  int          `json:"version"`
	Workload WorkloadSpec `json:"workload"`
	// Seed is the event-runner seed (latency stream).
	Seed uint64 `json:"seed"`
	// Spec is the adversary in canonical string form; its timed
	// windows replay from here, its probabilistic part from Events.
	Spec     string `json:"spec"`
	Reliable bool   `json:"reliable"`
	RTO      float64 `json:"rto,omitempty"`
	Jitter   float64 `json:"jitter,omitempty"`
	// MaxRetries freezes the transport's retry budget (0 = unbounded).
	MaxRetries int `json:"max_retries,omitempty"`
	// Scheduler freezes the admission scheduler spec ("" = canonical).
	Scheduler string `json:"scheduler,omitempty"`
	// Err is the violation the run reproduced when it was recorded.
	Err string `json:"err,omitempty"`
	// Events is the (minimized) injection schedule.
	Events []Event `json:"events"`
}

// ReplayVersion is the current replay file format version.
const ReplayVersion = 1

// Validate checks the file strictly; Load calls it.
func (f *ReplayFile) Validate() error {
	if f.Version != ReplayVersion {
		return fmt.Errorf("faults: replay version %d unsupported (want %d)", f.Version, ReplayVersion)
	}
	if err := f.Workload.Validate(); err != nil {
		return err
	}
	if _, err := Parse(f.Spec); err != nil {
		return err
	}
	if !(f.RTO >= 0) || f.RTO > 1e9 {
		return fmt.Errorf("faults: rto=%v invalid", f.RTO)
	}
	if !(f.Jitter >= 0) || f.Jitter > 1e9 {
		return fmt.Errorf("faults: jitter=%v invalid", f.Jitter)
	}
	if f.MaxRetries < 0 || f.MaxRetries > 1<<20 {
		return fmt.Errorf("faults: max_retries=%d invalid", f.MaxRetries)
	}
	if _, err := lid.ParseSchedulerSpec(f.Scheduler); err != nil {
		return err
	}
	if len(f.Events) > 1<<22 {
		return fmt.Errorf("faults: %d events exceed the sanity cap", len(f.Events))
	}
	for i, e := range f.Events {
		if !validEvent(e) {
			return fmt.Errorf("faults: event %d (%+v) invalid", i, e)
		}
	}
	return nil
}

// LoadReplay parses and validates a replay file. It never panics on
// corrupted input — any malformation is an error.
func LoadReplay(r io.Reader) (*ReplayFile, error) {
	dec := json.NewDecoder(io.LimitReader(r, 256<<20))
	dec.DisallowUnknownFields()
	var f ReplayFile
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("faults: replay file: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, errors.New("faults: trailing data after replay object")
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Save writes the file as indented JSON.
func (f *ReplayFile) Save(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReplayOutcome reports one re-execution of a replay file.
type ReplayOutcome struct {
	// Violation is the reproduced invariant violation ("" = the run
	// was clean).
	Violation string
	Stats     simnet.Stats
	// Matches reports whether the reproduced violation matches the
	// recorded one (only meaningful when both are non-empty).
	Matches bool
}

// Run re-executes the frozen run and reports whether the recorded
// violation reproduces. Setup failures (unbuildable workload) are
// returned as an error; protocol violations — including panics from
// the protocols' invariant checks — land in the outcome.
func (f *ReplayFile) Run() (ReplayOutcome, error) {
	if err := f.Validate(); err != nil {
		return ReplayOutcome{}, err
	}
	spec, err := Parse(f.Spec)
	if err != nil {
		return ReplayOutcome{}, err
	}
	sys, err := f.Workload.Build()
	if err != nil {
		return ReplayOutcome{}, err
	}
	trial := LIDTrial(sys, TrialOptions{Reliable: f.Reliable, RTO: f.RTO, Jitter: f.Jitter, MaxRetries: f.MaxRetries, Scheduler: f.Scheduler})
	verr := runTrial(trial, f.Seed, NewReplayInjector(spec, f.Events))
	out := ReplayOutcome{}
	if verr != nil {
		out.Violation = verr.Error()
		out.Matches = f.Err != "" && out.Violation == f.Err
	}
	return out, nil
}

// runTrial invokes trial, converting a panic (the protocols' invariant
// checks fire as panics by design) into a violation error.
func runTrial(trial Trial, seed uint64, inj *Injector) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("faults: protocol panic: %v", r)
		}
	}()
	return trial(seed, inj)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sqrt by Newton iteration (keeps the file's import set stable).
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}
