package faults

import (
	"strings"
	"testing"
)

func TestSpecStringParseRoundTrip(t *testing.T) {
	specs := []Spec{
		{},
		{Drop: 0.1},
		{Drop: 0.1, Dup: 0.05, Corrupt: 0.02, Delay: 0.2, DelayScale: 8},
		{Delay: 0.5},
		{Partitions: []Partition{{Start: 20, End: 60, Lo: 0, Hi: 9}}},
		{Partitions: []Partition{{Start: 20, End: NoHeal, Lo: 3, Hi: 3}, {Start: 5, End: 10, Lo: 0, Hi: 1}}},
		{Crashes: []Crash{{Start: 30, End: 50, Node: 5}, {Start: 0, End: NoHeal, Node: 2}}},
		{Drop: 0.25, Partitions: []Partition{{Start: 1.5, End: 2.25, Lo: 0, Hi: 4}}, Crashes: []Crash{{Start: 3, End: 4, Node: 1}}},
	}
	for _, s := range specs {
		str := s.String()
		got, err := Parse(str)
		if err != nil {
			t.Fatalf("Parse(%q): %v", str, err)
		}
		if got.String() != str {
			t.Fatalf("round trip changed: %q -> %q", str, got.String())
		}
	}
}

func TestSpecParseCanonical(t *testing.T) {
	// Unsorted windows normalize to sorted; "inf" and negative ends
	// both mean NoHeal.
	got, err := Parse("crash=9:inf:1,crash=2:4:7,partition=8:-1:0-3,partition=1:2:5-6,drop=0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := "drop=0.5,partition=1:2:5-6,partition=8:inf:0-3,crash=2:4:7,crash=9:inf:1"
	if got.String() != want {
		t.Fatalf("got %q, want %q", got.String(), want)
	}
	if got.Partitions[1].End != NoHeal || got.Crashes[1].End != NoHeal {
		t.Fatalf("NoHeal not normalized: %+v", got)
	}
}

func TestSpecParseZero(t *testing.T) {
	for _, in := range []string{"", "off", "  off  "} {
		s, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if !s.IsZero() {
			t.Fatalf("Parse(%q) = %+v, want zero", in, s)
		}
	}
	if (Spec{}).String() != "off" {
		t.Fatalf("zero spec renders as %q", Spec{}.String())
	}
}

func TestSpecParseErrors(t *testing.T) {
	for _, in := range []string{
		"drop",                  // not key=value
		"drop=x",                // bad float
		"drop=1",                // probability must be < 1
		"drop=-0.1",             // negative
		"drop=NaN",              // NaN rejected
		"delayscale=NaN",        //
		"delayscale=1e13",       // over cap
		"bogus=1",               // unknown key
		"partition=1:2",         // missing range
		"partition=1:2:3",       // range not LO-HI
		"partition=2:1:0-3",     // end before start
		"partition=1:2:5-3",     // hi < lo
		"partition=-1:2:0-3",    // negative start
		"crash=1:2:x",           // bad node
		"crash=1:2:-4",          // negative node
		"drop=0.1,,dup=0.1",     // empty field
		"partition=NaN:2:0-3",   // NaN start
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestPreservesDelivery(t *testing.T) {
	cases := []struct {
		spec Spec
		want bool
	}{
		{Spec{}, true},
		{Spec{Dup: 0.5, Delay: 0.5, DelayScale: 100}, true},
		{Spec{Drop: 0.01}, false},
		{Spec{Corrupt: 0.01}, false},
		{Spec{Partitions: []Partition{{Start: 1, End: 2, Lo: 0, Hi: 3}}}, true},
		{Spec{Partitions: []Partition{{Start: 1, End: NoHeal, Lo: 0, Hi: 3}}}, false},
		{Spec{Crashes: []Crash{{Start: 1, End: 2, Node: 0}}}, true},
		{Spec{Crashes: []Crash{{Start: 1, End: NoHeal, Node: 0}}}, false},
	}
	for _, c := range cases {
		if got := c.spec.PreservesDelivery(); got != c.want {
			t.Errorf("PreservesDelivery(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestSpecStringStable(t *testing.T) {
	// The canonical form is part of the replay-file format; freeze it.
	s := Spec{Drop: 0.1, Dup: 0.05, Corrupt: 0.02, Delay: 0.2, DelayScale: 8,
		Partitions: []Partition{{Start: 20, End: 60, Lo: 0, Hi: 9}},
		Crashes:    []Crash{{Start: 30, End: NoHeal, Node: 5}}}
	want := "drop=0.1,dup=0.05,corrupt=0.02,delay=0.2,delayscale=8,partition=20:60:0-9,crash=30:inf:5"
	if s.String() != want {
		t.Fatalf("canonical form drifted:\n got %q\nwant %q", s.String(), want)
	}
	if !strings.Contains(want, "inf") {
		t.Fatal("sanity")
	}
}
