package faults

import (
	"testing"

	"overlaymatch/internal/dlid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/robust"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// The churn-maintenance and adversary subsystems take simnet.Options
// directly, so the fault policy threads through without any
// subsystem-specific plumbing. These tests pin that wiring: both run
// under a delivery-preserving adversary (heavy reorder via delay
// tails) and must keep their structural invariants — dlid.Run and
// robust's tolerant nodes check their own.

func TestDlidChurnUnderDelayFaults(t *testing.T) {
	w := WorkloadSpec{Topology: "gnp", Metric: "random", N: 30, B: 2, Seed: 6}
	sys, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	tbl := satisfaction.NewTable(sys)
	for seed := uint64(0); seed < 10; seed++ {
		schedule := dlid.Schedule(sys, rng.New(seed+40), 8, 400, 0.5, 8)
		spec := Spec{Delay: 0.3, DelayScale: 10}
		res, err := dlid.Run(sys, tbl, schedule, simnet.Options{
			Seed:    seed,
			Latency: simnet.ExponentialLatency(3),
			Policy:  NewInjector(spec, injectionSeed(seed)),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Live == nil {
			t.Fatalf("seed %d: no live matching", seed)
		}
	}
}

func TestRobustScenarioUnderDelayFaults(t *testing.T) {
	w := WorkloadSpec{Topology: "gnp", Metric: "random", N: 20, B: 2, Seed: 8}
	sys, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Delay: 0.25, DelayScale: 8}
	for seed := uint64(0); seed < 10; seed++ {
		sc := robust.Scenario{
			System:  sys,
			Timeout: 1e7,
			Options: simnet.Options{
				Seed:    seed,
				Latency: simnet.ExponentialLatency(3),
				Policy:  NewInjector(spec, injectionSeed(seed)),
			},
		}
		out, err := sc.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// No adversaries + delivery preserved: the tolerant protocol
		// must still land exactly on LIC despite the reordering.
		want := matching.LIC(sys, satisfaction.NewTable(sys))
		if !out.HonestMatching.Equal(want) {
			t.Fatalf("seed %d: tolerant LID under delay faults differs from LIC", seed)
		}
		if out.Violations != 0 {
			t.Fatalf("seed %d: %d violations", seed, out.Violations)
		}
	}
}
