package faults

import (
	"reflect"
	"testing"

	"overlaymatch/internal/rng"
	"overlaymatch/internal/simnet"
)

type probe struct{}

func (probe) Kind() string { return "PROBE" }

// drive feeds the injector n synthetic sends at the given time and
// returns every verdict.
func drive(in *Injector, n int, now float64) []simnet.LinkVerdict {
	out := make([]simnet.LinkVerdict, n)
	for i := range out {
		out[i] = in.Verdict(now, i%7, (i+1)%7, probe{})
	}
	return out
}

func TestInjectorDeterministic(t *testing.T) {
	spec := Spec{Drop: 0.2, Dup: 0.1, Corrupt: 0.1, Delay: 0.3, DelayScale: 4}
	a := NewInjector(spec, 42)
	b := NewInjector(spec, 42)
	va, vb := drive(a, 500, 0), drive(b, 500, 0)
	if !reflect.DeepEqual(va, vb) {
		t.Fatal("same (spec, seed) produced different verdicts")
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same (spec, seed) produced different event logs")
	}
	if len(a.Events()) == 0 {
		t.Fatal("500 sends at these rates injected nothing")
	}
	c := NewInjector(spec, 43)
	if reflect.DeepEqual(drive(c, 500, 0), va) {
		t.Fatal("different seeds produced identical verdicts")
	}
}

func TestInjectorReplayReproducesRecording(t *testing.T) {
	spec := Spec{Drop: 0.15, Dup: 0.1, Corrupt: 0.05, Delay: 0.2}
	rec := NewInjector(spec, 7)
	want := drive(rec, 300, 0)
	// Windows are stripped for replay of the probabilistic part alone.
	rep := NewReplayInjector(spec, rec.Events())
	got := drive(rep, 300, 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("replaying the recorded events did not reproduce the verdicts")
	}
	if rep.Sends() != rec.Sends() {
		t.Fatalf("sends diverged: %d vs %d", rep.Sends(), rec.Sends())
	}
}

func TestInjectorZeroSpecInjectsNothing(t *testing.T) {
	in := NewInjector(Spec{}, 1)
	for _, v := range drive(in, 200, 5) {
		if v != (simnet.LinkVerdict{}) {
			t.Fatalf("zero spec produced verdict %+v", v)
		}
	}
	if len(in.Events()) != 0 {
		t.Fatalf("zero spec logged %d events", len(in.Events()))
	}
}

func TestInjectorPartitionCut(t *testing.T) {
	spec := Spec{Partitions: []Partition{{Start: 10, End: 20, Lo: 0, Hi: 2}}}
	in := NewInjector(spec, 1)
	check := func(now float64, from, to int, wantDrop bool) {
		t.Helper()
		v := in.Verdict(now, from, to, probe{})
		if v.Drop != wantDrop {
			t.Fatalf("t=%v %d->%d: drop=%v, want %v", now, from, to, v.Drop, wantDrop)
		}
	}
	check(5, 0, 5, false)  // before the window
	check(10, 0, 5, true)  // crossing, window open (start inclusive)
	check(15, 5, 0, true)  // crossing, reverse direction
	check(15, 0, 2, false) // both inside the partition
	check(15, 5, 6, false) // both outside
	check(20, 0, 5, false) // end exclusive: healed
	if len(in.Events()) != 0 {
		t.Fatal("window cuts must not be logged as events (they replay from the spec)")
	}
}

func TestInjectorCrashCut(t *testing.T) {
	spec := Spec{Crashes: []Crash{{Start: 10, End: NoHeal, Node: 3}}}
	in := NewInjector(spec, 1)
	if v := in.Verdict(9, 3, 0, probe{}); v.Drop {
		t.Fatal("crash cut before its window")
	}
	if v := in.Verdict(11, 3, 0, probe{}); !v.Drop {
		t.Fatal("messages from a crashed node must drop")
	}
	if v := in.Verdict(1e9, 0, 3, probe{}); !v.Drop {
		t.Fatal("NoHeal crash healed")
	}
	if v := in.Verdict(1e9, 0, 1, probe{}); v.Drop {
		t.Fatal("crash cut an unrelated link")
	}
}

func TestParetoCapped(t *testing.T) {
	src := rng.New(99)
	for i := 0; i < 10000; i++ {
		d := pareto(src, 2)
		if !(d >= 0) || d > 2e4 {
			t.Fatalf("pareto draw %v outside [0, 2e4]", d)
		}
	}
}

func TestValidEvent(t *testing.T) {
	good := []Event{
		{Seq: 0, Kind: KindDrop},
		{Seq: 5, Kind: KindDup, Copies: 1},
		{Seq: 5, Kind: KindDup, Copies: 64},
		{Seq: 1, Kind: KindCorrupt},
		{Seq: 9, Kind: KindDelay, Delay: 0.5},
	}
	for _, e := range good {
		if !validEvent(e) {
			t.Errorf("validEvent(%+v) = false, want true", e)
		}
	}
	bad := []Event{
		{Seq: -1, Kind: KindDrop},
		{Seq: 0, Kind: "explode"},
		{Seq: 0, Kind: KindDrop, Copies: 1},
		{Seq: 0, Kind: KindDup},
		{Seq: 0, Kind: KindDup, Copies: 65},
		{Seq: 0, Kind: KindDelay},
		{Seq: 0, Kind: KindDelay, Delay: -1},
	}
	for _, e := range bad {
		if validEvent(e) {
			t.Errorf("validEvent(%+v) = true, want false", e)
		}
	}
}
