package faults

import (
	"bytes"
	"testing"
)

// FuzzFaultSpecParse checks the spec grammar's core contract: anything
// Parse accepts must render to a canonical string that re-parses to
// the same canonical string (Parse ∘ String is the identity on parsed
// specs), must validate, and String must never panic.
func FuzzFaultSpecParse(f *testing.F) {
	f.Add("")
	f.Add("off")
	f.Add("drop=0.1")
	f.Add("drop=0.1,dup=0.05,corrupt=0.02,delay=0.2,delayscale=8")
	f.Add("partition=20:60:0-9")
	f.Add("partition=20:inf:0-9,crash=30:50:5")
	f.Add("crash=0:inf:0")
	f.Add("drop=1")
	f.Add("drop=NaN")
	f.Add("delayscale=1e300")
	f.Add("partition=1:2:3-")
	f.Add("crash=:::")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := Parse(in)
		if err != nil {
			return // rejected input is fine; not panicking is the point
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted an invalid spec: %v", in, verr)
		}
		canon := s.String()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", canon, in, err)
		}
		if s2.String() != canon {
			t.Fatalf("canonical form unstable: %q -> %q", canon, s2.String())
		}
	})
}

// FuzzReplayFile checks the strict loader: arbitrary bytes must never
// panic — they either load as a fully valid replay file or return an
// error. Anything that loads must survive Validate and re-Save.
func FuzzReplayFile(f *testing.F) {
	f.Add([]byte(`{"version":1,"workload":{"topology":"gnp","n":10,"b":1,"metric":"random","seed":3},"seed":7,"spec":"dup=0.3","events":[{"seq":4,"kind":"dup","copies":1}]}`))
	f.Add([]byte(`{"version":1,"workload":{"topology":"ring","n":5,"b":1,"metric":"random"},"spec":"off","events":[]}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"version":1,"workload":{"topology":"gnp","n":-1,"b":1,"metric":"random"},"spec":"off","events":[]}`))
	f.Add([]byte(`{"version":1,"workload":{"topology":"gnp","n":10,"b":1,"metric":"random"},"spec":"off","events":[{"seq":0,"kind":"delay","delay":1e308}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rf, err := LoadReplay(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := rf.Validate(); verr != nil {
			t.Fatalf("LoadReplay accepted a file Validate rejects: %v", verr)
		}
		var buf bytes.Buffer
		if serr := rf.Save(&buf); serr != nil {
			t.Fatalf("loaded file does not re-save: %v", serr)
		}
		if _, rerr := LoadReplay(bytes.NewReader(buf.Bytes())); rerr != nil {
			t.Fatalf("re-saved file does not re-load: %v", rerr)
		}
	})
}
