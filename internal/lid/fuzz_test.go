package lid

import (
	"testing"

	"overlaymatch/internal/matching"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// FuzzLIDEquivalence drives the whole pipeline from fuzzer-chosen
// parameters — topology seed, size, quota, latency seed — and checks
// the Lemma 3–6 equivalence on every instance. Run with
// `go test -fuzz FuzzLIDEquivalence ./internal/lid` to explore beyond
// the seed corpus.
func FuzzLIDEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(10), uint8(2), uint64(7))
	f.Add(uint64(42), uint8(25), uint8(1), uint64(0))
	f.Add(uint64(999), uint8(3), uint8(4), uint64(3))
	f.Add(uint64(0), uint8(0), uint8(0), uint64(0))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, bRaw uint8, latSeed uint64) {
		n := int(nRaw)%30 + 2
		b := int(bRaw)%5 + 1
		s := randomSystem(t, seed, n, 0.4, b)
		tbl := satisfaction.NewTable(s)
		res, err := RunEvent(s, tbl, simnet.Options{
			Seed:    latSeed,
			Latency: simnet.ExponentialLatency(5),
		})
		if err != nil {
			t.Fatalf("LID failed: %v", err)
		}
		if err := res.Matching.Validate(s); err != nil {
			t.Fatal(err)
		}
		if !res.Matching.Equal(matching.LIC(s, tbl)) {
			t.Fatal("LID != LIC")
		}
	})
}
