package lid

import (
	"reflect"
	"testing"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/metrics"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// TestMetricsZeroImpact: attaching a metrics sink must not change the
// outcome in any observable way — same matching, same Stats, bit for
// bit. Observability has to be free of behavioural side effects or
// every experiment table becomes suspect.
func TestMetricsZeroImpact(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		src := rng.New(seed)
		g := gen.GNP(src, 40, 0.2)
		s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(3))
		if err != nil {
			t.Fatal(err)
		}
		tbl := satisfaction.NewTable(s)

		plain, err := RunEvent(s, tbl, simnet.Options{
			Seed: seed, Latency: simnet.ExponentialLatency(4),
		})
		if err != nil {
			t.Fatal(err)
		}
		sink := metrics.New()
		instrumented, err := RunEvent(s, tbl, simnet.Options{
			Seed: seed, Latency: simnet.ExponentialLatency(4), Metrics: sink,
		})
		if err != nil {
			t.Fatal(err)
		}

		if !plain.Matching.Equal(instrumented.Matching) {
			t.Fatalf("seed %d: metrics changed the matching", seed)
		}
		if !reflect.DeepEqual(plain.Stats, instrumented.Stats) {
			t.Fatalf("seed %d: metrics changed Stats:\n%+v\nvs\n%+v", seed, plain.Stats, instrumented.Stats)
		}
		if plain.PropMessages != instrumented.PropMessages || plain.RejMessages != instrumented.RejMessages {
			t.Fatalf("seed %d: metrics changed message breakdown", seed)
		}

		// The sink must hold both the simnet-level merge and the
		// lid-level instruments, agreeing with Stats.
		if got := sink.Counter("lid_prop_total", "").Value(); int(got) != instrumented.PropMessages {
			t.Fatalf("sink lid_prop_total = %d, want %d", got, instrumented.PropMessages)
		}
		if got := sink.Counter("lid_locked_edges_total", "").Value(); int(got) != instrumented.Matching.Size() {
			t.Fatalf("sink lid_locked_edges_total = %d, want %d", got, instrumented.Matching.Size())
		}
		if got := sink.Counter("simnet_deliveries_total", "").Value(); int(got) != instrumented.Stats.Deliveries {
			t.Fatalf("sink simnet_deliveries_total = %d, want %d", got, instrumented.Stats.Deliveries)
		}
	}
}

// TestGoroutineMetricsSink: the goroutine runtime feeds the same sink
// through GoOptions.
func TestGoroutineMetricsSink(t *testing.T) {
	src := rng.New(9)
	g := gen.GNP(src, 20, 0.3)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(2))
	if err != nil {
		t.Fatal(err)
	}
	tbl := satisfaction.NewTable(s)
	sink := metrics.New()
	res, err := RunGoroutinesOpts(s, tbl, GoOptions{Metrics: sink})
	if err != nil {
		t.Fatal(err)
	}
	if got := sink.Counter("simnet_deliveries_total", "").Value(); int(got) != res.Stats.Deliveries {
		t.Fatalf("sink deliveries = %d, want %d", got, res.Stats.Deliveries)
	}
	if got := sink.Counter("lid_runs_total", "").Value(); got != 1 {
		t.Fatalf("lid_runs_total = %d, want 1", got)
	}
}
