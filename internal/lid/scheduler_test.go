package lid

import (
	"testing"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/metrics"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

func TestSchedulerSpecParse(t *testing.T) {
	good := []struct {
		in   string
		want SchedulerSpec
	}{
		{"", SchedulerSpec{Kind: SchedCanonical}},
		{"canonical", SchedulerSpec{Kind: SchedCanonical}},
		{"greedy", SchedulerSpec{Kind: SchedGreedy}},
		{"greedy:batch=1", SchedulerSpec{Kind: SchedGreedy, Batch: 1}},
		{"greedy:batch=64", SchedulerSpec{Kind: SchedGreedy, Batch: 64}},
	}
	for _, c := range good {
		got, err := ParseSchedulerSpec(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
		back, err := ParseSchedulerSpec(got.String())
		if err != nil || back != got {
			t.Fatalf("round trip %q -> %q -> %+v (%v)", c.in, got.String(), back, err)
		}
	}
	bad := []string{"canonical:batch=2", "greedy:batch=0", "greedy:batch=-1",
		"greedy:batch=", "greedy:cap=3", "greedy:", "eager", "greedy:batch=1x", "GREEDY"}
	for _, in := range bad {
		if _, err := ParseSchedulerSpec(in); err == nil {
			t.Fatalf("Parse(%q) unexpectedly succeeded", in)
		}
	}
}

func FuzzSchedulerSpecParse(f *testing.F) {
	for _, seed := range []string{"", "canonical", "greedy", "greedy:batch=4",
		"greedy:batch=999999", "greedy:batch=08", "canonical:x", "greedy:batch"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		sp, err := ParseSchedulerSpec(in)
		if err != nil {
			return
		}
		if sp.Kind != SchedCanonical && sp.Kind != SchedGreedy {
			t.Fatalf("Parse(%q) accepted unknown kind %q", in, sp.Kind)
		}
		if sp.Batch < 0 || (sp.Batch > 0 && !sp.Greedy()) {
			t.Fatalf("Parse(%q) produced inconsistent spec %+v", in, sp)
		}
		back, err := ParseSchedulerSpec(sp.String())
		if err != nil {
			t.Fatalf("String() of accepted spec %+v does not reparse: %v", sp, err)
		}
		if back != sp {
			t.Fatalf("round trip %q -> %+v -> %q -> %+v", in, sp, sp.String(), back)
		}
	})
}

// schedulerCorpus mirrors the dense-core equivalence corpus (internal/
// matching's equivSystems): three generator families × quotas 1..4 × a
// seed spread. Short mode trims the seed axis.
func schedulerCorpus(tb testing.TB) []*pref.System {
	tb.Helper()
	seeds := uint64(51)
	if testing.Short() {
		seeds = 12
	}
	var out []*pref.System
	build := func(g *graph.Graph, src *rng.Source, b int) {
		s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(b))
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, s)
	}
	for b := 1; b <= 4; b++ {
		for seed := uint64(0); seed < seeds; seed++ {
			src := rng.New(seed*31 + uint64(b))
			n := 8 + int(seed%12)*2
			switch seed % 3 {
			case 0:
				build(gen.GNP(src, n, 0.4), src, b)
			case 1:
				g, _ := gen.Geometric(src, n, 0.5)
				build(g, src, b)
			default:
				build(gen.BarabasiAlbert(src, n, 2), src, b)
			}
		}
	}
	return out
}

// TestGreedySchedulerEquivalence is the proof that greedy admission is
// scheduling, not approximation: over the full corpus and at every
// worker count, greedy ≡ canonical ≡ LIC edge-for-edge. The tables at
// workers 2 and 8 are rebuilt per run — the scheduler consumes the
// table's order keys, so a table whose parallel build diverged would
// surface here as a matching difference.
func TestGreedySchedulerEquivalence(t *testing.T) {
	workerGrid := []int{1, 2, 8}
	for i, s := range schedulerCorpus(t) {
		tbl := satisfaction.NewTable(s)
		want := matching.LIC(s, tbl)
		canonical, err := RunEvent(s, tbl, simnet.Options{Seed: uint64(i)})
		if err != nil {
			t.Fatalf("system %d canonical: %v", i, err)
		}
		if !canonical.Matching.Equal(want) {
			t.Fatalf("system %d: canonical LID != LIC", i)
		}
		for _, workers := range workerGrid {
			wtbl := satisfaction.NewTableParallel(s, workers)
			greedy, err := RunEventScheduled(s, wtbl, simnet.Options{Seed: uint64(i)}, SchedulerSpec{Kind: SchedGreedy})
			if err != nil {
				t.Fatalf("system %d greedy workers=%d: %v", i, workers, err)
			}
			if !greedy.Matching.Equal(want) {
				t.Fatalf("system %d workers=%d: greedy LID != LIC", i, workers)
			}
		}
	}
}

// TestGreedyBatchCapEquivalence: the batch=N cap changes pacing only —
// the outcome stays the LIC matching for tight and loose caps alike.
func TestGreedyBatchCapEquivalence(t *testing.T) {
	systems := schedulerCorpus(t)
	for _, batch := range []int{1, 3} {
		for i := 0; i < len(systems); i += 7 {
			s := systems[i]
			tbl := satisfaction.NewTable(s)
			want := matching.LIC(s, tbl)
			res, err := RunEventScheduled(s, tbl, simnet.Options{Seed: uint64(i)}, SchedulerSpec{Kind: SchedGreedy, Batch: batch})
			if err != nil {
				t.Fatalf("system %d batch=%d: %v", i, batch, err)
			}
			if !res.Matching.Equal(want) {
				t.Fatalf("system %d batch=%d: greedy LID != LIC", i, batch)
			}
		}
	}
}

// verifyingAdmitter checks the early-termination certificate after
// every admission round of a real run.
type verifyingAdmitter struct {
	inner *GreedyAdmitter
	errs  []error
}

func (a *verifyingAdmitter) NextBatch() []int {
	batch := a.inner.NextBatch()
	if err := a.inner.VerifyDeferred(); err != nil {
		a.errs = append(a.errs, err)
	}
	return batch
}

// TestGreedyEarlyTerminationCertificate is the property test of the
// satellite: early termination never fires while a displacing proposal
// is still possible. After every admission round that stopped early,
// VerifyDeferred re-derives the certificate from live protocol state —
// every deferred node's frontier is at most as heavy as the stop key,
// and the stop node's partner strictly prefers heavier still-live mass
// — under both unit and heavy-tailed latency (the admission points
// interleave differently with message arrival in each).
func TestGreedyEarlyTerminationCertificate(t *testing.T) {
	systems := schedulerCorpus(t)
	latencies := []struct {
		name string
		lat  simnet.LatencyFunc
	}{
		{"unit", nil},
		{"exp", simnet.ExponentialLatency(3)},
	}
	stops := 0
	for i := 0; i < len(systems); i += 3 {
		s := systems[i]
		tbl := satisfaction.NewTable(s)
		want := matching.LIC(s, tbl)
		for _, lc := range latencies {
			nodes := NewNodes(s, tbl)
			adm := &verifyingAdmitter{inner: NewGreedyAdmitter(s, tbl, nodes, SchedulerSpec{Kind: SchedGreedy})}
			runner := simnet.NewRunner(s.Graph().NumNodes(), simnet.Options{
				Seed:     uint64(i),
				Latency:  lc.lat,
				Admitter: adm,
			})
			if _, err := runner.Run(Handlers(nodes)); err != nil {
				t.Fatalf("system %d %s: %v", i, lc.name, err)
			}
			for _, err := range adm.errs {
				t.Errorf("system %d %s: %v", i, lc.name, err)
			}
			m, err := BuildMatching(nodes)
			if err != nil {
				t.Fatalf("system %d %s: %v", i, lc.name, err)
			}
			if !m.Equal(want) {
				t.Fatalf("system %d %s: greedy LID != LIC", i, lc.name)
			}
			stops += adm.inner.Stats().EarlyStops
		}
	}
	if stops == 0 {
		t.Fatal("the corpus never exercised an early termination — the property test is vacuous")
	}
}

// TestGreedyBitIdenticalAcrossWorkers: the full instrument registry of
// a greedy run (message counters, per-node vectors, probe series,
// admission-round counter) must be byte-identical for any worker
// count; workers only parallelize the deterministic table build.
func TestGreedyBitIdenticalAcrossWorkers(t *testing.T) {
	for i, cfg := range []struct {
		n    int
		b    int
		seed uint64
	}{
		{40, 2, 3},
		{60, 3, 9},
	} {
		src := rng.New(cfg.seed)
		g := gen.GNP(src, cfg.n, 0.3)
		s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(cfg.b))
		if err != nil {
			t.Fatal(err)
		}
		var baseline string
		for _, workers := range []int{1, 2, 8} {
			tbl := satisfaction.NewTableParallel(s, workers)
			sink := metrics.New()
			probe := metrics.New()
			_, _, err := RunEventProbedScheduled(s, tbl, simnet.Options{Seed: cfg.seed, Metrics: sink}, 1, probe, SchedulerSpec{Kind: SchedGreedy})
			if err != nil {
				t.Fatalf("cfg %d workers=%d: %v", i, workers, err)
			}
			rawSink, err := sink.Snapshot().MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			rawProbe, err := probe.Snapshot().MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			snap := string(rawSink) + "\n" + string(rawProbe)
			if workers == 1 {
				baseline = snap
			} else if snap != baseline {
				t.Fatalf("cfg %d: greedy run with workers=%d is not bit-identical to workers=1", i, workers)
			}
		}
	}
}

// TestGreedySavesMessages pins the point of the scheduler: across the
// corpus, greedy admission must send strictly fewer messages than
// canonical LID in aggregate (E20 gates the per-family ≥20% figure;
// this is the package-local smoke version).
func TestGreedySavesMessages(t *testing.T) {
	systems := schedulerCorpus(t)
	var canonicalMsgs, greedyMsgs int64
	for i := 0; i < len(systems); i += 5 {
		s := systems[i]
		tbl := satisfaction.NewTable(s)
		c, err := RunEvent(s, tbl, simnet.Options{Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		g, err := RunEventScheduled(s, tbl, simnet.Options{Seed: uint64(i)}, SchedulerSpec{Kind: SchedGreedy})
		if err != nil {
			t.Fatal(err)
		}
		canonicalMsgs += int64(c.Stats.TotalSent())
		greedyMsgs += int64(g.Stats.TotalSent())
	}
	if greedyMsgs >= canonicalMsgs {
		t.Fatalf("greedy sent %d messages, canonical %d — the scheduler must save traffic", greedyMsgs, canonicalMsgs)
	}
	t.Logf("aggregate messages: canonical=%d greedy=%d (%.1f%% saved)",
		canonicalMsgs, greedyMsgs, 100*float64(canonicalMsgs-greedyMsgs)/float64(canonicalMsgs))
}

// TestGreedyAdmitterCoversAllNodes: the admitter must eventually
// release every node, including isolated ones (empty frontier from the
// start) — otherwise the runner's deadlock check fires.
func TestGreedyAdmitterCoversAllNodes(t *testing.T) {
	// A path plus two isolated vertices.
	gb := graph.NewBuilder(5)
	gb.AddEdge(0, 1)
	gb.AddEdge(1, 2)
	s, err := pref.Build(gb.MustGraph(), pref.NewRandomMetric(rng.New(4)), pref.UniformQuota(1))
	if err != nil {
		t.Fatal(err)
	}
	tbl := satisfaction.NewTable(s)
	res, err := RunEventScheduled(s, tbl, simnet.Options{Seed: 1}, SchedulerSpec{Kind: SchedGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matching.Equal(matching.LIC(s, tbl)) {
		t.Fatal("greedy LID != LIC on the path-with-isolates instance")
	}
}

func BenchmarkSchedulers(b *testing.B) {
	for _, sched := range []SchedulerSpec{{Kind: SchedCanonical}, {Kind: SchedGreedy}} {
		b.Run(sched.String(), func(b *testing.B) {
			src := rng.New(11)
			g := gen.GNP(src, 2000, 8.0/1999)
			s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(3))
			if err != nil {
				b.Fatal(err)
			}
			tbl := satisfaction.NewTable(s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunEventScheduled(s, tbl, simnet.Options{Seed: 11}, sched); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
