package lid

import (
	"fmt"
	"reflect"

	"overlaymatch/internal/rng"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/transport"
)

// Wire codec for the LID message (package transport). The payload is a
// single opcode byte — 0x01 PROP, 0x00 REJ — matching the nominal
// WireSize model the byte counters have used all along. Package robust
// registers nothing of its own: TolerantNode speaks exactly these
// messages on the wire (its timeout token never leaves the node).
func init() {
	transport.Register(transport.IDLIDMsg, transport.Codec{
		Name:    "lid.Msg",
		Version: 1,
		Type:    reflect.TypeOf(Msg{}),
		Encode: func(msg simnet.Message, buf []byte) []byte {
			m := msg.(Msg)
			if m.IsProp {
				return append(buf, 1)
			}
			return append(buf, 0)
		},
		Decode: func(payload []byte) (simnet.Message, error) {
			if len(payload) != 1 {
				return nil, fmt.Errorf("lid payload is %d bytes, want 1", len(payload))
			}
			switch payload[0] {
			case 0:
				return Msg{IsProp: false}, nil
			case 1:
				return Msg{IsProp: true}, nil
			}
			return nil, fmt.Errorf("lid opcode %#02x is not 0 or 1", payload[0])
		},
		Sample: func(src *rng.Source) simnet.Message {
			return Msg{IsProp: src.Uint64n(2) == 1}
		},
	})
}
