package lid

import (
	"testing"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// TestLargeScale is the soak test: a 20k-peer overlay (~80k potential
// links) through the full pipeline — parallel preference construction,
// weight table, event-driven LID, equivalence with LIC, satisfaction
// evaluation. Guarded by -short; takes a few hundred ms.
func TestLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale soak test")
	}
	const n = 20000
	src := rng.New(42)
	g := gen.GNP(src, n, 8.0/float64(n-1))
	s, err := pref.BuildParallel(g,
		pref.MetricFunc(func(i, j graph.NodeID) float64 {
			return float64((uint64(i)*2654435761 + uint64(j)*0x9e3779b9) % 1000003)
		}),
		pref.UniformQuota(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	tbl := satisfaction.NewTable(s)
	res, err := RunEvent(s, tbl, simnet.Options{
		Seed:    7,
		Latency: simnet.ExponentialLatency(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Matching.Validate(s); err != nil {
		t.Fatal(err)
	}
	want := matching.LIC(s, tbl)
	if !res.Matching.Equal(want) {
		t.Fatal("20k-peer LID != LIC")
	}
	if res.Stats.TotalSent() > 2*g.NumEdges() {
		t.Fatalf("message bound violated: %d > 2*%d", res.Stats.TotalSent(), g.NumEdges())
	}
	total := res.Matching.TotalSatisfaction(s)
	if total <= 0 || total > float64(n) {
		t.Fatalf("implausible total satisfaction %v", total)
	}
	t.Logf("n=%d m=%d: %d connections, %d messages, %.1f rounds, total satisfaction %.0f",
		n, g.NumEdges(), res.Matching.Size(), res.Stats.TotalSent(), res.Stats.FinalTime, total)
}
