package lid

import (
	"bytes"
	"testing"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/metrics"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

func probeWorkload(t *testing.T, seed uint64, n int, p float64) (*pref.System, *satisfaction.Table) {
	t.Helper()
	src := rng.New(seed)
	g := gen.GNP(src, n, p)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(3))
	if err != nil {
		t.Fatal(err)
	}
	return s, satisfaction.NewTable(s)
}

// TestProbedRunMonotoneConvergence checks the stability trajectory of
// a probed LID run: blocking pairs non-increasing down to exactly 0,
// matched-weight fraction non-decreasing up to exactly 1 (LID ends at
// the LIC matching), traffic counters non-decreasing — and the run
// outcome bit-identical to an unprobed run.
func TestProbedRunMonotoneConvergence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		s, tbl := probeWorkload(t, seed, 40, 0.2)
		opts := simnet.Options{Seed: seed, Latency: simnet.ExponentialLatency(2)}

		plain, err := RunEvent(s, tbl, opts)
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.New()
		probed, prober, err := RunEventProbed(s, tbl, opts, 1, reg)
		if err != nil {
			t.Fatal(err)
		}
		if !plain.Matching.Equal(probed.Matching) {
			t.Fatalf("seed %d: probing changed the matching", seed)
		}

		curve := prober.Curve()
		if len(curve) < 2 {
			t.Fatalf("seed %d: curve has %d points", seed, len(curve))
		}
		for i := 1; i < len(curve); i++ {
			if curve[i].V > curve[i-1].V {
				t.Fatalf("seed %d: blocking pairs increased %v -> %v at t=%v",
					seed, curve[i-1].V, curve[i].V, curve[i].T)
			}
		}
		if final := curve[len(curve)-1].V; final != 0 {
			t.Fatalf("seed %d: final blocking pairs = %v, want 0", seed, final)
		}

		frac := reg.Series("probe_matched_weight_frac", "").Points()
		for i := 1; i < len(frac); i++ {
			if frac[i].V < frac[i-1].V {
				t.Fatalf("seed %d: weight fraction decreased at t=%v", seed, frac[i].T)
			}
		}
		if final := frac[len(frac)-1].V; final != 1 {
			t.Fatalf("seed %d: final weight fraction = %v, want 1 (LID == LIC)", seed, final)
		}

		msgs := reg.Series("probe_msgs_sent", "").Points()
		bytesSeries := reg.Series("probe_bytes_sent", "").Points()
		for i := 1; i < len(msgs); i++ {
			if msgs[i].V < msgs[i-1].V || bytesSeries[i].V < bytesSeries[i-1].V {
				t.Fatalf("seed %d: traffic counters decreased", seed)
			}
		}
		// LID messages are 9 wire bytes each; the byte curve must end
		// at exactly 9x the message curve.
		lastM, lastB := msgs[len(msgs)-1].V, bytesSeries[len(bytesSeries)-1].V
		if lastB != 9*lastM {
			t.Fatalf("seed %d: bytes %v != 9 * msgs %v", seed, lastB, lastM)
		}

		// Rounds-to-eps: reaching eps=0 can't precede eps=0.1, and the
		// published gauges must match the computed summary.
		summary := prober.RoundsToEps(nil)
		if summary["0.000"] < summary["0.100"] {
			t.Fatalf("seed %d: eps ladder inverted: %v", seed, summary)
		}
		for k, v := range summary {
			if g := reg.Gauge(obs.SummaryPrefix+k, "").Value(); g != v {
				t.Fatalf("seed %d: published gauge %s = %v, want %v", seed, k, g, v)
			}
		}
	}
}

// TestWaveSpansBalanced: with a recorder attached, every node opens
// exactly one lid.wave span and closes it at local termination, and
// the NDJSON emission is byte-identical across repeated runs.
func TestWaveSpansBalanced(t *testing.T) {
	s, tbl := probeWorkload(t, 11, 30, 0.25)
	n := s.Graph().NumNodes()
	render := func() ([]obs.Event, string) {
		rec := obs.NewRecorder(n)
		res, err := RunEvent(s, tbl, simnet.Options{Seed: 11, Obs: rec})
		if err != nil {
			t.Fatal(err)
		}
		if lic := matching.LIC(s, tbl); !lic.Equal(res.Matching) {
			t.Fatal("recorded run diverged from LIC")
		}
		var b bytes.Buffer
		if err := rec.WriteNDJSON(&b); err != nil {
			t.Fatal(err)
		}
		return rec.Events(), b.String()
	}
	events, nd1 := render()
	opens, closes, locks := 0, 0, 0
	openPer := make(map[int]int)
	for _, e := range events {
		switch {
		case e.Type == obs.EvOpen && e.Kind == "lid.wave":
			opens++
			openPer[e.Node]++
		case e.Type == obs.EvClose:
			closes++
		case e.Type == obs.EvPoint && e.Kind == "lid.lock":
			locks++
		}
	}
	if opens != n || closes != n {
		t.Fatalf("wave spans open/close = %d/%d, want %d/%d", opens, closes, n, n)
	}
	for node, c := range openPer {
		if c != 1 {
			t.Fatalf("node %d opened %d waves", node, c)
		}
	}
	if locks == 0 {
		t.Fatal("no lid.lock points recorded")
	}
	if _, nd2 := render(); nd1 != nd2 {
		t.Fatal("span emission differs across identical runs")
	}
}
