package lid

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
)

// Scheduler kinds understood by ParseSchedulerSpec.
const (
	SchedCanonical = "canonical"
	SchedGreedy    = "greedy"
)

// SchedulerSpec selects the admission scheduling of the proposal loop.
// The zero value is the canonical scheduler (every node initialized at
// time 0 in ID order — Algorithm 1 as written); the greedy scheduler
// releases nodes in descending order of their heaviest still-live
// frontier edge (see GreedyAdmitter). Scheduling never changes the
// outcome — LID converges to the same LIC either way — only the
// message and round counts.
type SchedulerSpec struct {
	// Kind is SchedCanonical or SchedGreedy ("" = canonical).
	Kind string
	// Batch, for the greedy scheduler, caps how many nodes one
	// admission round may release (0 = no cap).
	Batch int
}

// Greedy reports whether the spec selects greedy admission.
func (sp SchedulerSpec) Greedy() bool { return sp.Kind == SchedGreedy }

// String renders the spec in the grammar ParseSchedulerSpec accepts;
// Parse(String()) round-trips to the normalized spec.
func (sp SchedulerSpec) String() string {
	if sp.Kind == SchedGreedy {
		if sp.Batch > 0 {
			return fmt.Sprintf("greedy:batch=%d", sp.Batch)
		}
		return SchedGreedy
	}
	return SchedCanonical
}

// ParseSchedulerSpec parses the -scheduler grammar:
//
//	canonical          all nodes admitted at time 0 (the default)
//	greedy             heaviest-frontier admission, unbounded batches
//	greedy:batch=N     greedy with at most N nodes per admission round
//
// The empty string normalizes to canonical.
func ParseSchedulerSpec(s string) (SchedulerSpec, error) {
	base, opt, hasOpt := strings.Cut(s, ":")
	switch base {
	case "", SchedCanonical:
		if hasOpt {
			return SchedulerSpec{}, fmt.Errorf("lid: scheduler %q: canonical takes no options", s)
		}
		return SchedulerSpec{Kind: SchedCanonical}, nil
	case SchedGreedy:
		sp := SchedulerSpec{Kind: SchedGreedy}
		if !hasOpt {
			return sp, nil
		}
		k, v, ok := strings.Cut(opt, "=")
		if !ok || k != "batch" {
			return SchedulerSpec{}, fmt.Errorf("lid: scheduler %q: unknown option %q (want batch=N)", s, opt)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return SchedulerSpec{}, fmt.Errorf("lid: scheduler %q: batch must be a positive integer", s)
		}
		sp.Batch = n
		return sp, nil
	default:
		return SchedulerSpec{}, fmt.Errorf("lid: unknown scheduler %q (want %s or %s[:batch=N])", s, SchedCanonical, SchedGreedy)
	}
}

// frontierNone is the frontier key of a node with no live edges left —
// it sorts after every real packed order key.
const frontierNone = math.MaxUint64

// noEdge marks the frontier edge of an empty frontier.
const noEdge = graph.EdgeID(-1)

// frontierEntry is one heap element: a node keyed by its heaviest
// still-live frontier edge. Entries order by (key, edge, node)
// ascending, which under the packed order-key transform is exactly
// heaviest-first with the shared deterministic tie-break.
type frontierEntry struct {
	key  uint64
	edge graph.EdgeID
	node int32
}

type frontierHeap []frontierEntry

func (h frontierHeap) less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	if h[i].edge != h[j].edge {
		return h[i].edge < h[j].edge
	}
	return h[i].node < h[j].node
}

func (h *frontierHeap) push(e frontierEntry) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *frontierHeap) pop() frontierEntry {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	*h = q[:n]
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
}

// GreedyStats counts scheduling events for reporting and tests.
type GreedyStats struct {
	Rounds         int // admission rounds that released at least one node
	Admitted       int // nodes released
	PairAdmits     int // mutually-dominant pairs released together
	EarlyStops     int // rounds cut short by the certificate
	StaleReinserts int // lazy heap refreshes (frontier moved lighter)
}

// GreedyAdmitter implements simnet.Admitter for a set of LID nodes:
// nodes are released for initialization in descending order of their
// heaviest still-live frontier edge (the packed satisfaction.OrderKeys
// order), in rounds. A node's frontier is its first weight-list entry
// still in {untouched, approached}; since pre-admission transitions
// are absorbing, the frontier only moves lighter, which makes lazy
// heap reinsertion sound.
//
// One admission round releases, scanning the heap heaviest-first:
//   - nodes whose frontier partner was admitted in an earlier round
//     (their proposal is already answerable — no heavier mass can
//     interpose),
//   - mutually-dominant pairs — two unadmitted nodes whose frontiers
//     are the same edge; that edge locks under any schedule, so both
//     endpoints are released together,
//   - nodes with no live frontier (fully resolved or isolated; their
//     Init just terminates them).
//
// The scan stops at the first node qualifying under none of the rules
// — the early-termination certificate: by the heap invariant every
// deferred node's frontier key is at least the stop key, and the stop
// node's own partner strictly prefers heavier still-live mass, so no
// deferred proposal could displace any tentative acceptance this
// round. The globally heaviest frontier edge between unadmitted nodes
// is always mutually dominant, so every round releases at least one
// node and the schedule terminates with all nodes admitted.
type GreedyAdmitter struct {
	nodes []*Node
	ord   []uint64          // EdgeID-aligned packed order keys
	inc   [][]graph.EdgeID  // per-node incident EdgeIDs, weight-list aligned
	fcur  []int             // per-node frontier scan cursor (monotone)
	adm   []int32           // admission round per node (0 = unadmitted)
	round int32
	heap  frontierHeap
	cap   int // max nodes per round (0 = unlimited)

	started bool
	stats   GreedyStats

	// last early-termination certificate (test hook, see VerifyDeferred)
	stopped     bool
	stopKey     uint64
	stopEdge    graph.EdgeID
	stopNode    int
	stopPartner int
}

// NewGreedyAdmitter builds the heaviest-frontier admission schedule
// for the given nodes (as returned by NewNodes — node i must be the
// state machine of graph node i). The spec must be a greedy spec.
func NewGreedyAdmitter(s *pref.System, tbl *satisfaction.Table, nodes []*Node, spec SchedulerSpec) *GreedyAdmitter {
	if !spec.Greedy() {
		panic("lid: NewGreedyAdmitter with a non-greedy spec")
	}
	a := &GreedyAdmitter{
		nodes: nodes,
		ord:   tbl.OrderKeys(),
		inc:   make([][]graph.EdgeID, len(nodes)),
		fcur:  make([]int, len(nodes)),
		adm:   make([]int32, len(nodes)),
		cap:   spec.Batch,
	}
	for u := range nodes {
		a.inc[u] = tbl.SortedIncident(s, graph.NodeID(u))
	}
	return a
}

// frontier returns u's current frontier (packed key and weight-list
// position), advancing the monotone cursor past resolved entries.
// Position -1 with key frontierNone means no live edge remains.
func (a *GreedyAdmitter) frontier(u int) (uint64, int) {
	n := a.nodes[u]
	cur := a.fcur[u]
	for cur < len(n.order) {
		switch n.state[cur] {
		case stUntouched, stApproached:
			a.fcur[u] = cur
			return a.ord[a.inc[u][cur]], cur
		}
		cur++
	}
	a.fcur[u] = cur
	return frontierNone, -1
}

// frontierEdge returns the EdgeID at a frontier position (noEdge for
// an empty frontier).
func (a *GreedyAdmitter) frontierEdge(u, pos int) graph.EdgeID {
	if pos < 0 {
		return noEdge
	}
	return a.inc[u][pos]
}

// NextBatch implements simnet.Admitter: release the next admission
// round. An empty return means every node has been admitted.
func (a *GreedyAdmitter) NextBatch() []int {
	if !a.started {
		a.started = true
		for u := range a.nodes {
			key, pos := a.frontier(u)
			a.heap.push(frontierEntry{key: key, edge: a.frontierEdge(u, pos), node: int32(u)})
		}
	}
	a.round++
	a.stopped = false
	var out []int
	admit := func(u int) {
		a.adm[u] = a.round
		out = append(out, u)
	}
	for len(a.heap) > 0 {
		if a.cap > 0 && len(out) >= a.cap {
			break
		}
		top := a.heap[0]
		u := int(top.node)
		if a.adm[u] != 0 {
			a.heap.pop() // admitted as a pair partner; entry is dead
			continue
		}
		key, pos := a.frontier(u)
		edge := a.frontierEdge(u, pos)
		if key != top.key || edge != top.edge {
			// Stale: the frontier moved lighter since the entry was
			// pushed. Refresh in place — keys never move heavier, so
			// the refreshed entry can only sink.
			a.heap.pop()
			a.heap.push(frontierEntry{key: key, edge: edge, node: top.node})
			a.stats.StaleReinserts++
			continue
		}
		if pos < 0 {
			// No live edges: Init only runs the termination path.
			a.heap.pop()
			admit(u)
			continue
		}
		v := a.nodes[u].order[pos]
		switch vr := a.adm[v]; {
		case vr != 0 && vr < a.round:
			// Partner admitted in an earlier round: its PROP or REJ
			// toward u is already in flight or answered.
			a.heap.pop()
			admit(u)
		case vr == 0:
			_, vpos := a.frontier(v)
			if a.frontierEdge(v, vpos) == edge {
				// Mutually dominant: {u,v} is the heaviest live edge
				// at both endpoints and locks under any schedule.
				a.heap.pop()
				admit(u)
				admit(v)
				a.stats.PairAdmits++
				continue
			}
			fallthrough
		default:
			// The heaviest remaining frontier does not qualify:
			// everything below it can wait (see VerifyDeferred for the
			// certificate this records). Partner admitted *this* round
			// also lands here — u qualifies under rule 1 next round.
			a.stopped = true
			a.stopKey, a.stopEdge = top.key, top.edge
			a.stopNode, a.stopPartner = u, v
			a.stats.EarlyStops++
		}
		if a.stopped {
			break
		}
	}
	if len(out) == 0 {
		return nil
	}
	a.stats.Rounds++
	a.stats.Admitted += len(out)
	return out
}

// Stats returns the scheduling counters accumulated so far.
func (a *GreedyAdmitter) Stats() GreedyStats { return a.stats }

// VerifyDeferred checks the early-termination certificate recorded by
// the most recent NextBatch (nil when the round drained the heap):
//
//  1. soundness — every still-unadmitted node's current frontier key
//     is at least the stop key (nothing heavier was deferred), and
//  2. no displacement — the stop node's partner either was admitted in
//     the stopping round (so the stop node qualifies next round), or
//     strictly prefers a heavier still-live edge, i.e. (key, edge) of
//     the partner's frontier is lexicographically smaller than the
//     stop entry — so a proposal from the stop node (and a fortiori
//     from anything lighter) cannot displace a tentative acceptance.
//
// Tests drive it after every batch; a non-nil error is a scheduler bug.
func (a *GreedyAdmitter) VerifyDeferred() error {
	if !a.stopped {
		return nil
	}
	for u := range a.nodes {
		if a.adm[u] != 0 {
			continue
		}
		if key, _ := a.frontier(u); key < a.stopKey {
			return fmt.Errorf("lid: deferred node %d has frontier key %#x heavier than stop key %#x", u, key, a.stopKey)
		}
	}
	v := a.stopPartner
	if a.adm[v] == a.round {
		return nil // admitted in the stopping round; resolves next round
	}
	if a.adm[v] != 0 {
		return fmt.Errorf("lid: stop node %d deferred although partner %d was admitted in round %d < %d", a.stopNode, v, a.adm[v], a.round)
	}
	vkey, vpos := a.frontier(v)
	vedge := a.frontierEdge(v, vpos)
	if vkey > a.stopKey || (vkey == a.stopKey && vedge >= a.stopEdge) {
		return fmt.Errorf("lid: stop partner %d does not strictly prefer heavier mass (frontier %#x/%d vs stop %#x/%d)",
			v, vkey, vedge, a.stopKey, a.stopEdge)
	}
	return nil
}
