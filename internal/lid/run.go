package lid

import (
	"time"

	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// Result bundles the outcome of one LID execution.
type Result struct {
	Matching *matching.Matching
	Stats    simnet.Stats
	// PropMessages and RejMessages break down the message count.
	PropMessages int
	RejMessages  int
}

// RunEvent executes LID on the deterministic event simulator with the
// given options. The returned error is non-nil only on protocol
// failure (non-termination or asymmetric locks), which Lemma 5 and the
// mutual-PROP argument exclude — tests treat an error as a bug.
func RunEvent(s *pref.System, tbl *satisfaction.Table, opts simnet.Options) (Result, error) {
	nodes := NewNodes(s, tbl)
	runner := simnet.NewRunner(s.Graph().NumNodes(), opts)
	stats, err := runner.Run(Handlers(nodes))
	if err != nil {
		return Result{Stats: stats}, err
	}
	return finish(nodes, stats)
}

// RunGoroutines executes LID with one real goroutine per peer. The
// interleaving is up to the Go scheduler; the outcome must still be
// the unique LIC matching.
func RunGoroutines(s *pref.System, tbl *satisfaction.Table, timeout time.Duration) (Result, error) {
	nodes := NewNodes(s, tbl)
	runner := simnet.NewGoRunner(s.Graph().NumNodes(), timeout)
	stats, err := runner.Run(Handlers(nodes))
	if err != nil {
		return Result{Stats: stats}, err
	}
	return finish(nodes, stats)
}

func finish(nodes []*Node, stats simnet.Stats) (Result, error) {
	m, err := BuildMatching(nodes)
	if err != nil {
		return Result{Stats: stats}, err
	}
	return Result{
		Matching:     m,
		Stats:        stats,
		PropMessages: stats.SentByKind["PROP"],
		RejMessages:  stats.SentByKind["REJ"],
	}, nil
}
