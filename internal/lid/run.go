package lid

import (
	"time"

	"overlaymatch/internal/matching"
	"overlaymatch/internal/metrics"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// Result bundles the outcome of one LID execution.
type Result struct {
	Matching *matching.Matching
	Stats    simnet.Stats
	// PropMessages and RejMessages break down the message count.
	PropMessages int
	RejMessages  int
}

// RunEvent executes LID on the deterministic event simulator with the
// given options. The returned error is non-nil only on protocol
// failure (non-termination or asymmetric locks), which Lemma 5 and the
// mutual-PROP argument exclude — tests treat an error as a bug.
func RunEvent(s *pref.System, tbl *satisfaction.Table, opts simnet.Options) (Result, error) {
	return RunEventScheduled(s, tbl, opts, SchedulerSpec{})
}

// RunEventScheduled is RunEvent with an admission scheduler: a greedy
// spec installs the heaviest-frontier GreedyAdmitter (see scheduler.go)
// as the runner's Admitter; the zero/canonical spec is RunEvent
// verbatim. The matching is the same LIC either way — the scheduler
// only changes message and round counts.
func RunEventScheduled(s *pref.System, tbl *satisfaction.Table, opts simnet.Options, spec SchedulerSpec) (Result, error) {
	nodes := NewNodes(s, tbl)
	if spec.Greedy() {
		opts.Admitter = NewGreedyAdmitter(s, tbl, nodes, spec)
	}
	runner := simnet.NewRunner(s.Graph().NumNodes(), opts)
	stats, err := runner.Run(Handlers(nodes))
	if err != nil {
		return Result{Stats: stats}, err
	}
	return finish(nodes, stats, opts.Metrics)
}

// RunEventProbed is RunEvent with the per-round stability prober
// attached: every `interval` units of virtual time a StabilitySampler
// measurement (blocking pairs, unmatched node mass, matched-weight
// fraction of the LIC optimum, cumulative message/byte counters) is
// appended to the probe_* series of reg, and the rounds-to-ε summary
// gauges are published into reg when the run finishes. The returned
// prober exposes the raw curve (Prober.Curve) and the summary
// (Prober.RoundsToEps). Probing reads protocol state only — the run
// itself is bit-identical to an unprobed RunEvent.
func RunEventProbed(s *pref.System, tbl *satisfaction.Table, opts simnet.Options, interval float64, reg *metrics.Registry) (Result, *obs.Prober, error) {
	return RunEventProbedScheduled(s, tbl, opts, interval, reg, SchedulerSpec{})
}

// RunEventProbedScheduled is RunEventProbed with an admission
// scheduler (see RunEventScheduled).
func RunEventProbedScheduled(s *pref.System, tbl *satisfaction.Table, opts simnet.Options, interval float64, reg *metrics.Registry, spec SchedulerSpec) (Result, *obs.Prober, error) {
	nodes := NewNodes(s, tbl)
	g := s.Graph()
	optimum := matching.LIC(s, tbl).Weight(s)
	var runner *simnet.Runner
	sampler := StabilitySampler(s, tbl, nodes, func() (int64, int64) {
		return runner.SentTotals()
	})
	prober := obs.NewProber(reg, interval, g.NumEdges(), optimum, sampler)
	opts.Probe = prober.Probe
	opts.ProbeInterval = interval
	if spec.Greedy() {
		opts.Admitter = NewGreedyAdmitter(s, tbl, nodes, spec)
	}
	runner = simnet.NewRunner(g.NumNodes(), opts)
	stats, err := runner.Run(Handlers(nodes))
	// The summary is published even when the run errored out (budget
	// exhausted, non-termination): rungs the curve never reached carry
	// the obs.NeverConverged sentinel, so a non-convergent run leaves
	// an explicit -1 gauge rather than an absent one — consumers must
	// not conflate "missing" with "converged instantly".
	prober.PublishSummary(reg, nil)
	if err != nil {
		return Result{Stats: stats}, prober, err
	}
	res, err := finish(nodes, stats, opts.Metrics)
	return res, prober, err
}

// GoOptions configures a goroutine-runtime LID execution.
type GoOptions struct {
	// Timeout bounds the wall-clock duration (0 = the GoRunner's 30s
	// default).
	Timeout time.Duration
	// Trace, if non-nil, receives every delivery. It is called from
	// the per-node goroutines concurrently, so it must be thread-safe
	// (trace.Collector is).
	Trace func(simnet.TraceEntry)
	// Metrics, if non-nil, receives a merge of the run's instrument
	// registry when the run finishes.
	Metrics *metrics.Registry
	// Policy, if non-nil, is the fault-injection link policy (see
	// simnet.LinkPolicy); verdicts are serialized by the runner. Only
	// delivery-preserving faults keep bare LID correct — wrap the
	// handlers in package reliable for drop/corrupt faults.
	Policy simnet.LinkPolicy
	// Obs, if non-nil, is the telemetry recorder (package obs). The
	// goroutine runtime has no virtual clock, so events carry time 0
	// and only the Lamport stamps order them; the log's record order is
	// a real interleaving but not reproducible across runs.
	Obs *obs.Recorder
}

// RunGoroutines executes LID with one real goroutine per peer. The
// interleaving is up to the Go scheduler; the outcome must still be
// the unique LIC matching.
func RunGoroutines(s *pref.System, tbl *satisfaction.Table, timeout time.Duration) (Result, error) {
	return RunGoroutinesOpts(s, tbl, GoOptions{Timeout: timeout})
}

// RunGoroutinesOpts is RunGoroutines with tracing and metrics — the
// full observability surface of the event runtime, on the concurrent
// one.
func RunGoroutinesOpts(s *pref.System, tbl *satisfaction.Table, opts GoOptions) (Result, error) {
	nodes := NewNodes(s, tbl)
	runner := simnet.NewGoRunner(s.Graph().NumNodes(), opts.Timeout)
	if opts.Trace != nil {
		runner.SetTrace(opts.Trace)
	}
	if opts.Metrics != nil {
		runner.SetMetricsSink(opts.Metrics)
	}
	if opts.Policy != nil {
		runner.SetPolicy(opts.Policy)
	}
	if opts.Obs != nil {
		runner.SetObserver(opts.Obs)
	}
	stats, err := runner.Run(Handlers(nodes))
	if err != nil {
		return Result{Stats: stats}, err
	}
	return finish(nodes, stats, opts.Metrics)
}

// finish assembles the matching and, when a sink registry is present,
// publishes the protocol-level instruments (the simnet-level message
// instruments were already merged by the runner).
func finish(nodes []*Node, stats simnet.Stats, sink *metrics.Registry) (Result, error) {
	m, err := BuildMatching(nodes)
	if err != nil {
		return Result{Stats: stats}, err
	}
	if sink != nil {
		sink.Counter("lid_runs_total", "completed LID executions").Inc()
		sink.Counter("lid_locked_edges_total", "connections locked across runs").Add(int64(m.Size()))
		sink.Counter("lid_prop_total", "PROP messages sent").Add(int64(stats.SentByKind["PROP"]))
		sink.Counter("lid_rej_total", "REJ messages sent").Add(int64(stats.SentByKind["REJ"]))
	}
	return Result{
		Matching:     m,
		Stats:        stats,
		PropMessages: stats.SentByKind["PROP"],
		RejMessages:  stats.SentByKind["REJ"],
	}, nil
}
