package lid

import (
	"testing"
	"testing/quick"
	"time"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// randomSystem builds a G(n,p) graph with random private preferences.
func randomSystem(tb testing.TB, seed uint64, n int, p float64, b int) *pref.System {
	tb.Helper()
	src := rng.New(seed)
	g := gen.GNP(src, n, p)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(b))
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func mustRunEvent(tb testing.TB, s *pref.System, seed uint64, lat simnet.LatencyFunc) Result {
	tb.Helper()
	tbl := satisfaction.NewTable(s)
	res, err := RunEvent(s, tbl, simnet.Options{Seed: seed, Latency: lat})
	if err != nil {
		tb.Fatalf("LID event run failed: %v", err)
	}
	return res
}

// TestLIDEqualsLICUnitLatency is the heart of experiment E2: the
// distributed protocol must lock exactly the LIC edge set.
func TestLIDEqualsLICUnitLatency(t *testing.T) {
	check := func(seed uint64, nRaw, bRaw uint8) bool {
		s := randomSystem(t, seed, int(nRaw)%25+2, 0.4, int(bRaw)%4+1)
		tbl := satisfaction.NewTable(s)
		res, err := RunEvent(s, tbl, simnet.Options{Seed: seed})
		if err != nil {
			return false
		}
		return res.Matching.Equal(matching.LIC(s, tbl))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLIDEqualsLICRandomLatency: the equality must hold under every
// asynchronous interleaving, here driven by heavy-tailed latencies.
func TestLIDEqualsLICRandomLatency(t *testing.T) {
	check := func(seed uint64, latSeed uint64, nRaw uint8) bool {
		s := randomSystem(t, seed, int(nRaw)%20+3, 0.5, 2)
		tbl := satisfaction.NewTable(s)
		res, err := RunEvent(s, tbl, simnet.Options{Seed: latSeed, Latency: simnet.ExponentialLatency(10)})
		if err != nil {
			return false
		}
		return res.Matching.Equal(matching.LIC(s, tbl))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLIDGoroutineRuntime: the concurrent runtime (Go scheduler
// interleavings, exercised under -race in CI) must agree with LIC too.
func TestLIDGoroutineRuntime(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		s := randomSystem(t, seed, 30, 0.3, 2)
		tbl := satisfaction.NewTable(s)
		res, err := RunGoroutines(s, tbl, 20*time.Second)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Matching.Equal(matching.LIC(s, tbl)) {
			t.Fatalf("seed %d: goroutine LID != LIC", seed)
		}
	}
}

// TestLemma5Termination: every run terminates structurally (no node
// waits forever), across topologies, quotas and latency regimes.
func TestLemma5Termination(t *testing.T) {
	topologies := map[string]func(seed uint64) *graph.Graph{
		"gnp":  func(seed uint64) *graph.Graph { return gen.GNP(rng.New(seed), 40, 0.15) },
		"ring": func(uint64) *graph.Graph { return gen.Ring(40) },
		"star": func(uint64) *graph.Graph { return gen.Star(40) },
		"ba":   func(seed uint64) *graph.Graph { return gen.BarabasiAlbert(rng.New(seed), 40, 2) },
		"grid": func(uint64) *graph.Graph { return gen.Grid(6, 7) },
		"tree": func(seed uint64) *graph.Graph { return gen.RandomTree(rng.New(seed), 40) },
	}
	for name, build := range topologies {
		for seed := uint64(0); seed < 5; seed++ {
			g := build(seed)
			src := rng.New(seed ^ 0xbeef)
			s, err := pref.Build(g, pref.NewRandomMetric(src), pref.UniformQuota(3))
			if err != nil {
				t.Fatal(err)
			}
			tbl := satisfaction.NewTable(s)
			if _, err := RunEvent(s, tbl, simnet.Options{
				Seed:          seed,
				Latency:       simnet.ExponentialLatency(5),
				MaxDeliveries: 100000,
			}); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

// TestCyclicPreferencesStillTerminate: the classic cyclic triangle that
// defeats best-response dynamics terminates under LID, because the
// synthesized eq.-9 weights are symmetric (the point of §5).
func TestCyclicPreferencesStillTerminate(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	s, err := pref.FromRanks(g,
		[][]graph.NodeID{{1, 2}, {2, 0}, {0, 1}},
		[]int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	res := mustRunEvent(t, s, 1, nil)
	if res.Matching.Size() != 1 {
		t.Fatalf("triangle b=1 should lock exactly 1 edge, got %v", res.Matching.Edges())
	}
	if !res.Matching.Equal(matching.LIC(s, satisfaction.NewTable(s))) {
		t.Fatal("triangle outcome differs from LIC")
	}
}

// TestMessageComplexity: every directed pair carries at most one
// message, so total messages ≤ 2m and per-node messages ≤ deg(i).
func TestMessageComplexity(t *testing.T) {
	check := func(seed uint64, nRaw, bRaw uint8) bool {
		s := randomSystem(t, seed, int(nRaw)%20+3, 0.5, int(bRaw)%4+1)
		g := s.Graph()
		res := mustRunEvent(t, s, seed, simnet.ExponentialLatency(3))
		if res.Stats.TotalSent() > 2*g.NumEdges() {
			return false
		}
		for i := 0; i < g.NumNodes(); i++ {
			if res.Stats.SentByNode[i] > g.Degree(i) {
				return false
			}
		}
		return res.PropMessages+res.RejMessages == res.Stats.TotalSent()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestEveryProposalAnswered: in the final state no node still waits on
// a proposal, and every node halted.
func TestEveryProposalAnswered(t *testing.T) {
	s := randomSystem(t, 9, 30, 0.3, 2)
	tbl := satisfaction.NewTable(s)
	nodes := NewNodes(s, tbl)
	runner := simnet.NewRunner(s.Graph().NumNodes(), simnet.Options{Seed: 3})
	if _, err := runner.Run(Handlers(nodes)); err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		if !nd.Halted() {
			t.Fatalf("node %d not halted", nd.id)
		}
		if nd.pending != 0 {
			t.Fatalf("node %d still has %d outstanding proposals", nd.id, nd.pending)
		}
		if nd.unresolved != 0 {
			t.Fatalf("node %d still has %d unresolved neighbors", nd.id, nd.unresolved)
		}
	}
}

// TestLIDMatchingFeasibleAndMaximal mirrors the LIC structural
// properties on the distributed outcome.
func TestLIDMatchingFeasibleAndMaximal(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		s := randomSystem(t, seed, int(nRaw)%20+3, 0.4, 2)
		res := mustRunEvent(t, s, seed, nil)
		if res.Matching.Validate(s) != nil {
			return false
		}
		for _, e := range s.Graph().Edges() {
			if res.Matching.Has(e.U, e.V) {
				continue
			}
			if res.Matching.DegreeOf(e.U) < s.Quota(e.U) && res.Matching.DegreeOf(e.V) < s.Quota(e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestInterleavingInvariance: 30 different latency seeds on the same
// instance must all yield the identical matching (Lemmas 3,4,6).
func TestInterleavingInvariance(t *testing.T) {
	s := randomSystem(t, 1234, 25, 0.4, 3)
	tbl := satisfaction.NewTable(s)
	want := matching.LIC(s, tbl)
	for latSeed := uint64(0); latSeed < 30; latSeed++ {
		res, err := RunEvent(s, tbl, simnet.Options{Seed: latSeed, Latency: simnet.ExponentialLatency(8)})
		if err != nil {
			t.Fatalf("latSeed %d: %v", latSeed, err)
		}
		if !res.Matching.Equal(want) {
			t.Fatalf("latSeed %d: matching differs", latSeed)
		}
	}
}

func TestIsolatedAndTinyGraphs(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"empty":    graph.NewBuilder(0).MustGraph(),
		"isolated": graph.NewBuilder(5).MustGraph(),
		"one edge": gen.Path(2),
		"path3":    gen.Path(3),
	} {
		s, err := pref.Build(g, pref.MetricFunc(func(i, j graph.NodeID) float64 { return float64(i ^ j) }), pref.UniformQuota(1))
		if err != nil {
			t.Fatal(err)
		}
		res := mustRunEvent(t, s, 7, nil)
		if err := res.Matching.Validate(s); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Matching.Equal(matching.LIC(s, satisfaction.NewTable(s))) {
			t.Fatalf("%s: != LIC", name)
		}
	}
}

func TestNonLIDMessagePanics(t *testing.T) {
	s := randomSystem(t, 2, 4, 1.0, 1)
	tbl := satisfaction.NewTable(s)
	nd := NewNode(s, tbl, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on foreign message")
		}
	}()
	nd.HandleMessage(nopCtx{}, 1, "not a lid message")
}

func TestMessageFromNonNeighborPanics(t *testing.T) {
	g := gen.Path(3) // 0-1-2; 0 and 2 are not neighbors
	s, err := pref.Build(g, pref.MetricFunc(func(i, j graph.NodeID) float64 { return 0 }), pref.UniformQuota(1))
	if err != nil {
		t.Fatal(err)
	}
	nd := NewNode(s, satisfaction.NewTable(s), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-neighbor message")
		}
	}()
	nd.HandleMessage(nopCtx{}, 2, propMsg)
}

// nopCtx is a throwaway Context for direct state-machine pokes.
type nopCtx struct{}

func (nopCtx) ID() int                  { return 0 }
func (nopCtx) Send(int, simnet.Message) {}
func (nopCtx) Halt()                    {}
func (nopCtx) Time() float64            { return 0 }

func TestMsgKind(t *testing.T) {
	if propMsg.Kind() != "PROP" || rejMsg.Kind() != "REJ" {
		t.Fatal("message kinds wrong")
	}
}

func TestBuildMatchingDetectsAsymmetry(t *testing.T) {
	s := randomSystem(t, 3, 4, 1.0, 1)
	tbl := satisfaction.NewTable(s)
	nodes := NewNodes(s, tbl)
	// Forge an asymmetric lock.
	nodes[0].locked = append(nodes[0].locked, 1)
	if _, err := BuildMatching(nodes); err == nil {
		t.Fatal("asymmetric lock not detected")
	}
}
