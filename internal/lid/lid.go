// Package lid implements LID (Algorithm 1): the paper's fully
// distributed, Local Information-based algorithm for many-to-many
// maximum weighted matchings, applied to overlay construction with
// preference lists. Each peer runs the same state machine over the four
// sets of §5 — Ui (unresolved neighbors), Pi (proposed-to), Ai
// (approached by), Ki (locked) — exchanging only PROP and REJ messages
// with immediate neighbors:
//
//   - At start a peer proposes (PROP) to its up-to-bi heaviest-weight
//     neighbors, by the symmetric eq.-9 weights of its weight list.
//   - A mutual PROP locks the connection at both endpoints.
//   - An explicit REJ from a proposed neighbor triggers exactly one
//     replacement proposal to the next-heaviest unproposed neighbor.
//   - When a peer's quota fills, it sends REJ to every remaining
//     unresolved neighbor and terminates; a peer also terminates when
//     every neighbor is resolved (Ui = ∅).
//
// The implementation enforces the protocol invariants (never more than
// bi outstanding proposals, REJ never from an approached neighbor, no
// message after resolution) with panics, so simulation tests double as
// protocol-violation detectors. Nodes run unchanged on both simnet
// runtimes; Lemmas 3–6 make the outcome equal to package matching's
// LIC on every workload and interleaving, which experiment E2 checks.
package lid

import (
	"fmt"
	"sort"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// Msg is the LID wire message. The protocol needs nothing beyond the
// kind: weights were exchanged up front when the weight lists were
// built (one ΔS̄ value per direction per edge), as §5 describes.
type Msg struct {
	IsProp bool
}

// Kind implements simnet.Kinder for per-kind accounting.
func (m Msg) Kind() string {
	if m.IsProp {
		return "PROP"
	}
	return "REJ"
}

// WireSize implements simnet.Sizer: a nominal 8-byte frame header plus
// a 1-byte opcode — LID messages carry no other payload (§5: weights
// were exchanged when the weight lists were built).
func (m Msg) WireSize() int { return 9 }

var (
	propMsg = Msg{IsProp: true}
	rejMsg  = Msg{IsProp: false}
)

// neighbor states; absorbing transitions only (see comments on Node).
type nstate uint8

const (
	stUntouched  nstate = iota // in U, not proposed, not approached
	stProposed                 // in U, we proposed, no answer yet (P\K)
	stApproached               // in U, they proposed, we did not (A)
	stLocked                   // in K
	stRejectedUs               // they sent REJ (out of U)
	stWeRejected               // we sent REJ (out of U)
)

// Node is the per-peer LID state machine; it implements simnet.Handler.
// All methods are called sequentially by the runtimes; a Node must not
// be shared between runs.
type Node struct {
	id    graph.NodeID
	quota int
	// order is the weight list: neighbors in decreasing eq.-9 edge
	// weight, the proposal order of the algorithm (shared, read-only).
	order []graph.NodeID
	// neighbors is the sorted adjacency and pos its CSR-aligned
	// weight-list position table (both shared, read-only): a sender is
	// located by binary search in neighbors, and pos maps that
	// adjacency slot to the position in order. state is this node's
	// per-neighbor protocol state, indexed by order position. The split
	// keeps per-run allocations to one small slice — no per-node map.
	neighbors []graph.NodeID
	pos       []int32
	state     []nstate

	cursor     int // next index in order to consider for a proposal
	unresolved int // |U|
	pending    int // |P \ K|
	locked     []graph.NodeID
	halted     bool
	wave       obs.SpanID // telemetry: the node's proposal-wave span
}

// NewNode builds the state machine for node id.
func NewNode(s *pref.System, tbl *satisfaction.Table, id graph.NodeID) *Node {
	return NewNodeRestricted(s, tbl, id, s.Quota(id), nil)
}

// NewNodeRestricted builds the state machine for node id with an
// explicit quota and a set of excluded neighbors the protocol must
// treat as pre-resolved (never proposed to, never answered). Phased
// protocols (the distributed coverage-first variant) use this to run
// LID on a residual instance.
func NewNodeRestricted(s *pref.System, tbl *satisfaction.Table, id graph.NodeID, quota int, exclude map[graph.NodeID]bool) *Node {
	order := tbl.SortedNeighbors(s, id)
	if quota < 0 {
		panic(fmt.Sprintf("lid: negative quota for node %d", id))
	}
	n := &Node{
		id:         id,
		quota:      quota,
		order:      order,
		neighbors:  s.Graph().Neighbors(id),
		pos:        tbl.WeightListPos(s, id),
		state:      make([]nstate, len(order)),
		unresolved: len(order),
	}
	for nb := range exclude {
		pos, ok := n.orderPos(nb)
		if !ok {
			panic(fmt.Sprintf("lid: excluded node %d is not a neighbor of %d", nb, id))
		}
		// Pre-resolved, exactly as if the neighbor had already
		// rejected us: never contacted, not counted unresolved.
		n.state[pos] = stRejectedUs
		n.unresolved--
	}
	return n
}

// orderPos locates v's position in the weight list through the shared
// CSR index: binary search in the sorted adjacency, then the flat
// position table. Reports false if v is not a neighbor.
func (n *Node) orderPos(v graph.NodeID) (int32, bool) {
	i := sort.SearchInts(n.neighbors, v)
	if i >= len(n.neighbors) || n.neighbors[i] != v {
		return 0, false
	}
	return n.pos[i], true
}

// NewNodes builds one Node per graph node.
func NewNodes(s *pref.System, tbl *satisfaction.Table) []*Node {
	nodes := make([]*Node, s.Graph().NumNodes())
	for id := range nodes {
		nodes[id] = NewNode(s, tbl, id)
	}
	return nodes
}

// Handlers adapts nodes for the simnet runtimes.
func Handlers(nodes []*Node) []simnet.Handler {
	hs := make([]simnet.Handler, len(nodes))
	for i, n := range nodes {
		hs[i] = n
	}
	return hs
}

// Init implements simnet.Handler: propose to the top min(bi, |Γi|)
// eligible neighbors of the weight list (Algorithm 1, lines 1–3).
// Pre-resolved (excluded) entries are skipped. Under deferred admission
// (simnet.Admitter) Init may run after messages have already arrived,
// so entries can be approached (answer with the completing PROP and
// lock, as proposeNext does) or resolved (skip) — at time-0 admission
// both cases are unreachable and the loop degenerates to lines 1–3.
func (n *Node) Init(ctx simnet.Context) {
	if n.halted {
		// Deferred admission only: every neighbor resolved us (REJ
		// broadcasts) before we were released, and checkDone already
		// terminated the node from a delivery context.
		return
	}
	// Telemetry: the proposal wave spans the node's whole convergence
	// arc, Init to local termination. The rec != nil guard keeps the
	// detail formatting off the disabled path.
	if rec := simnet.ObserverOf(ctx); rec != nil {
		n.wave = rec.OpenSpan(n.id, "lid.wave", fmt.Sprintf("quota=%d deg=%d", n.quota, len(n.order)), ctx.Time())
	}
	for n.pending+len(n.locked) < n.quota && n.cursor < len(n.order) {
		pos := n.cursor
		v := n.order[pos]
		n.cursor++
		switch n.state[pos] {
		case stUntouched:
			n.state[pos] = stProposed
			n.pending++
			ctx.Send(v, propMsg)
		case stApproached:
			// The neighbor proposed while we were unadmitted: our PROP
			// completes the mutual pair. Locking keeps pending+locked
			// bounded by the loop condition, so the quota-full REJ
			// broadcast inside lock stays sound (pending is provably 0
			// when the quota fills here, as in proposeNext).
			ctx.Send(v, propMsg)
			n.lock(ctx, v, int32(pos), false)
		default:
			// Pre-resolved by NewNodeRestricted, or resolved by a REJ
			// that arrived before admission.
		}
	}
	if n.quota == 0 {
		// Quota full from the start (possible for restricted residual
		// nodes): reject every unresolved neighbor now, exactly as
		// line 15 fires when Pi\Ki = ∅.
		n.broadcastRejects(ctx)
	}
	n.checkDone(ctx)
}

// HandleMessage implements simnet.Handler.
func (n *Node) HandleMessage(ctx simnet.Context, from int, msg simnet.Message) {
	m, ok := msg.(Msg)
	if !ok {
		panic(fmt.Sprintf("lid: node %d received non-LID message %T", n.id, msg))
	}
	pos, known := n.orderPos(from)
	if !known {
		panic(fmt.Sprintf("lid: node %d received message from non-neighbor %d", n.id, from))
	}
	st := n.state[pos]
	if m.IsProp {
		n.handleProp(ctx, from, pos, st)
	} else {
		n.handleRej(ctx, from, pos, st)
	}
	n.checkDone(ctx)
}

// handleProp processes a PROP from `from` (Algorithm 1, lines 6, 12–14).
func (n *Node) handleProp(ctx simnet.Context, from graph.NodeID, pos int32, st nstate) {
	switch st {
	case stUntouched:
		n.state[pos] = stApproached // join A; answered later
	case stProposed:
		// Mutual PROP: lock at once (line 12).
		n.lock(ctx, from, pos, true)
	case stWeRejected:
		// Their PROP crossed our quota-full REJ in flight; it is
		// already answered — ignore.
		if len(n.locked) != n.quota {
			panic(fmt.Sprintf("lid: node %d rejected %d without a full quota", n.id, from))
		}
	default:
		// stApproached would be a duplicate PROP; stLocked or
		// stRejectedUs would mean the neighbor kept talking after
		// resolving us. All are protocol violations.
		panic(fmt.Sprintf("lid: node %d got PROP from %d in state %d", n.id, from, st))
	}
}

// handleRej processes a REJ from `from` (Algorithm 1, lines 7–11).
func (n *Node) handleRej(ctx simnet.Context, from graph.NodeID, pos int32, st nstate) {
	switch st {
	case stProposed:
		// Explicit decline of our proposal: resolve and send exactly
		// one replacement proposal (lines 8–11).
		n.state[pos] = stRejectedUs
		n.unresolved--
		n.pending--
		n.proposeNext(ctx)
	case stUntouched:
		// They filled their quota before we ever talked: resolve.
		n.state[pos] = stRejectedUs
		n.unresolved--
	case stWeRejected:
		// Crossing broadcasts: both quotas filled independently and the
		// two REJs passed each other in flight. Already resolved.
		if len(n.locked) != n.quota {
			panic(fmt.Sprintf("lid: node %d rejected %d without a full quota", n.id, from))
		}
	default:
		// A REJ from an approached neighbor is impossible: their
		// outstanding proposal to us keeps their quota open (Pv\Kv ≠ ∅);
		// likewise REJ from a locked neighbor or a second REJ.
		panic(fmt.Sprintf("lid: node %d got REJ from %d in state %d", n.id, from, st))
	}
}

// proposeNext advances the weight-list cursor to the next proposable
// neighbor and proposes (at most one proposal, per lines 9–11).
func (n *Node) proposeNext(ctx simnet.Context) {
	for n.cursor < len(n.order) {
		pos := n.cursor
		v := n.order[pos]
		n.cursor++
		switch n.state[pos] {
		case stUntouched:
			n.state[pos] = stProposed
			n.pending++
			ctx.Send(v, propMsg)
			return
		case stApproached:
			// They already proposed to us: our PROP completes the
			// mutual pair; send it and lock immediately.
			ctx.Send(v, propMsg)
			n.lock(ctx, v, int32(pos), false)
			return
		default:
			// Resolved while waiting; skip.
		}
	}
}

// lock moves `from` into K (line 12–14). fromProposed says whether the
// neighbor was counted in pending (stProposed) or not (stApproached
// being answered by our own proposal).
func (n *Node) lock(ctx simnet.Context, from graph.NodeID, pos int32, fromProposed bool) {
	n.state[pos] = stLocked
	n.unresolved--
	if fromProposed {
		n.pending--
	}
	n.locked = append(n.locked, from)
	if rec := simnet.ObserverOf(ctx); rec != nil {
		rec.Point(n.id, "lid.lock", fmt.Sprintf("peer=%d", from), ctx.Time())
	}
	if len(n.locked) > n.quota {
		panic(fmt.Sprintf("lid: node %d exceeded quota %d", n.id, n.quota))
	}
	if len(n.locked) == n.quota {
		// Quota full (Pi\Ki = ∅, line 15): reject everyone unresolved.
		if n.pending != 0 {
			panic(fmt.Sprintf("lid: node %d full quota with %d outstanding proposals", n.id, n.pending))
		}
		n.broadcastRejects(ctx)
	}
}

// broadcastRejects sends REJ to every still-unresolved neighbor (the
// line-15 broadcast).
func (n *Node) broadcastRejects(ctx simnet.Context) {
	for pos, v := range n.order {
		switch n.state[pos] {
		case stUntouched, stApproached:
			n.state[pos] = stWeRejected
			n.unresolved--
			ctx.Send(v, rejMsg)
		}
	}
}

// checkDone halts the node once every neighbor is resolved (Ui = ∅).
func (n *Node) checkDone(ctx simnet.Context) {
	if n.unresolved == 0 && !n.halted {
		n.halted = true
		// wave == 0 means the node halted before it was ever admitted
		// (deferred admission): there is no open span to close.
		if rec := simnet.ObserverOf(ctx); rec != nil && n.wave != 0 {
			rec.CloseSpan(n.id, n.wave, fmt.Sprintf("locked=%d", len(n.locked)), ctx.Time())
		}
		ctx.Halt()
	}
}

// Halted reports whether the node has locally terminated.
func (n *Node) Halted() bool { return n.halted }

// Locked returns the connections the node established (the set Ki), in
// lock order. The caller must not modify the result.
func (n *Node) Locked() []graph.NodeID { return n.locked }

// BuildMatching assembles the global matching from all nodes' locked
// sets, verifying that locks are symmetric — i locked j exactly when j
// locked i, the paper's "this will happen in both endpoints".
func BuildMatching(nodes []*Node) (*matching.Matching, error) {
	m := matching.New(len(nodes))
	for _, nd := range nodes {
		for _, v := range nd.locked {
			if nd.id < v {
				m.Add(nd.id, v)
			}
		}
	}
	// Symmetry check: every lock must appear on both sides.
	for _, nd := range nodes {
		for _, v := range nd.locked {
			if !m.Has(nd.id, v) {
				return nil, fmt.Errorf("lid: asymmetric lock %d->%d", nd.id, v)
			}
		}
		if len(nd.locked) != m.DegreeOf(nd.id) {
			return nil, fmt.Errorf("lid: node %d locked %d, matching degree %d",
				nd.id, len(nd.locked), m.DegreeOf(nd.id))
		}
	}
	return m, nil
}
