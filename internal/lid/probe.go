package lid

import (
	"overlaymatch/internal/graph"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
)

// Quota returns the node's connection quota bi.
func (n *Node) Quota() int { return n.quota }

// LockedWith reports whether this node has locked its connection to v.
func (n *Node) LockedWith(v graph.NodeID) bool {
	pos, ok := n.orderPos(v)
	return ok && n.state[pos] == stLocked
}

// StabilitySampler builds the per-round probe for a running LID
// instance: a function the simnet probe hook calls mid-run to measure
// how far the execution is from a stable matching. totals, if non-nil,
// supplies the cumulative (messages, bytes) send counters
// (Runner.SentTotals), attributing traffic to the convergence phase
// that spent it.
//
// Definitions, chosen so every component is provably monotone during
// LID (the invariant experiment E17 enforces):
//
//   - An edge counts as matched once BOTH endpoints locked it. Locks
//     are never revoked, so the matched set only grows and the matched
//     weight is non-decreasing.
//   - {u,v} is a blocking pair if the edge is unmatched and each
//     endpoint would accept the other: free quota, or a strictly
//     heavier WeightKey than the endpoint's lightest locked
//     connection. Preferences here are the eq.-9 weight order the
//     protocol actually proposes in (the shared strict total order of
//     satisfaction.WeightKey), not the raw preference-list ranks —
//     the paper's algorithms optimize weights, and only under the
//     weight order is the final matching exactly stable. Acceptance
//     can only flip true -> false (a node below quota accepts
//     everyone; at quota fill its locked set freezes forever), and
//     matching an edge only removes it, so the blocking-pair count is
//     non-increasing — and reaches 0 at termination: an edge left
//     unmatched by the locally-heaviest matching always has an
//     endpoint whose quota filled with strictly heavier edges.
//
// The sampler only reads protocol state; it never mutates it and
// never feeds back into the run (probed runs stay bit-identical to
// unprobed ones).
func StabilitySampler(s *pref.System, tbl *satisfaction.Table, nodes []*Node, totals func() (msgs, bytes int64)) func(t float64) obs.StabilitySample {
	g := s.Graph()
	// lightest[i] is recomputed per probe: the WeightKey of i's
	// lightest locked connection, meaningful only once i's quota is
	// full (open nodes accept everyone).
	lightest := make([]satisfaction.WeightKey, len(nodes))
	return func(t float64) obs.StabilitySample {
		var smp obs.StabilitySample
		if totals != nil {
			smp.Msgs, smp.Bytes = totals()
		}
		for i, nd := range nodes {
			if len(nd.locked) == 0 {
				smp.UnmatchedNodes++
			}
			if nd.quota > 0 && len(nd.locked) >= nd.quota {
				low := tbl.Key(i, nd.locked[0])
				for _, v := range nd.locked[1:] {
					if k := tbl.Key(i, v); low.Heavier(k) {
						low = k
					}
				}
				lightest[i] = low
			}
		}
		accepts := func(u, v graph.NodeID) bool {
			nd := nodes[u]
			if len(nd.locked) < nd.quota {
				return true
			}
			if nd.quota == 0 {
				return false
			}
			return tbl.Key(u, v).Heavier(lightest[u])
		}
		for _, e := range g.Edges() {
			if nodes[e.U].LockedWith(e.V) && nodes[e.V].LockedWith(e.U) {
				smp.MatchedWeight += satisfaction.EdgeWeight(s, e)
				continue
			}
			if accepts(e.U, e.V) && accepts(e.V, e.U) {
				smp.BlockingPairs++
			}
		}
		return smp
	}
}
