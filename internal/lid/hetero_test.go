package lid

import (
	"testing"
	"testing/quick"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// heteroSystem builds a workload with per-node random quotas in
// [1, deg] — the general §2 model rather than the uniform-b special
// case most other tests use.
func heteroSystem(tb testing.TB, seed uint64, n int, p float64) *pref.System {
	tb.Helper()
	src := rng.New(seed)
	g := gen.GNP(src, n, p)
	qsrc := src.Split()
	quota := func(i graph.NodeID) int {
		d := g.Degree(i)
		if d == 0 {
			return 0
		}
		return qsrc.Intn(d) + 1
	}
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), quota)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestLIDHeterogeneousQuotas(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		s := heteroSystem(t, seed, int(nRaw)%20+4, 0.4)
		tbl := satisfaction.NewTable(s)
		res, err := RunEvent(s, tbl, simnet.Options{
			Seed:    seed + 5,
			Latency: simnet.ExponentialLatency(4),
		})
		if err != nil {
			return false
		}
		if res.Matching.Validate(s) != nil {
			return false
		}
		return res.Matching.Equal(matching.LIC(s, tbl))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLIDDegreeFractionQuotas(t *testing.T) {
	// Hub-heavy graph with proportional quotas: the hub wants many
	// connections, leaves want one.
	src := rng.New(4)
	g := gen.BarabasiAlbert(src, 60, 2)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.DegreeFractionQuota(g, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	tbl := satisfaction.NewTable(s)
	res, err := RunEvent(s, tbl, simnet.Options{Seed: 8, Latency: simnet.ExponentialLatency(2)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matching.Equal(matching.LIC(s, tbl)) {
		t.Fatal("heterogeneous-quota LID != LIC")
	}
	if err := res.Matching.Validate(s); err != nil {
		t.Fatal(err)
	}
}

func TestLIDQuotaEqualsDegree(t *testing.T) {
	// With bi = deg(i) everywhere, every edge is mutually wanted and
	// LID must lock the entire edge set in one round.
	src := rng.New(6)
	g := gen.GNP(src, 25, 0.3)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()),
		func(i graph.NodeID) int { return g.Degree(i) })
	if err != nil {
		t.Fatal(err)
	}
	tbl := satisfaction.NewTable(s)
	res, err := RunEvent(s, tbl, simnet.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matching.Size() != g.NumEdges() {
		t.Fatalf("locked %d of %d edges", res.Matching.Size(), g.NumEdges())
	}
	if res.RejMessages != 0 {
		t.Fatalf("full-quota run sent %d REJ messages", res.RejMessages)
	}
	if res.Stats.FinalTime != 1 {
		t.Fatalf("full-quota run took %v rounds, want 1", res.Stats.FinalTime)
	}
	// Everyone fully satisfied: top-bi = whole list.
	for i := 0; i < g.NumNodes(); i++ {
		if g.Degree(i) == 0 {
			continue
		}
		if sat := satisfaction.Value(s, i, res.Matching.Connections(i)); sat < 1-1e-9 {
			t.Fatalf("node %d satisfaction %v, want 1", i, sat)
		}
	}
}

func TestLIDMultiComponentGraph(t *testing.T) {
	// Two disconnected communities run as one overlay; the protocol in
	// each component must be oblivious to the other.
	b := graph.NewBuilder(12)
	// Component A: complete on 0..5. Component B: ring on 6..11.
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			b.AddEdge(u, v)
		}
	}
	for u := 6; u < 12; u++ {
		b.AddEdge(u, 6+((u-6+1)%6))
	}
	g := b.MustGraph()
	src := rng.New(11)
	s, err := pref.Build(g, pref.NewRandomMetric(src), pref.UniformQuota(2))
	if err != nil {
		t.Fatal(err)
	}
	tbl := satisfaction.NewTable(s)
	res, err := RunEvent(s, tbl, simnet.Options{Seed: 2, Latency: simnet.ExponentialLatency(3)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matching.Equal(matching.LIC(s, tbl)) {
		t.Fatal("multi-component LID != LIC")
	}
	for _, e := range res.Matching.Edges() {
		if (e.U < 6) != (e.V < 6) {
			t.Fatalf("cross-component connection %v", e)
		}
	}
}

func TestLIDCompleteBipartiteContention(t *testing.T) {
	// K_{2,8} with b=2 for the left side and b=1 for the right: a
	// two-sided market. Total connections are limited by the left's
	// quota (4), and LID must fill it exactly.
	g := gen.CompleteBipartite(2, 8)
	src := rng.New(13)
	s, err := pref.Build(g, pref.NewRandomMetric(src),
		func(i graph.NodeID) int {
			if i < 2 {
				return 2
			}
			return 1
		})
	if err != nil {
		t.Fatal(err)
	}
	tbl := satisfaction.NewTable(s)
	res, err := RunEvent(s, tbl, simnet.Options{Seed: 3, Latency: simnet.ExponentialLatency(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matching.Size() != 4 {
		t.Fatalf("locked %d connections, want 4", res.Matching.Size())
	}
	if res.Matching.DegreeOf(0) != 2 || res.Matching.DegreeOf(1) != 2 {
		t.Fatal("left side under-filled")
	}
}
