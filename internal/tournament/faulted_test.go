package tournament

import (
	"testing"

	"overlaymatch/internal/faults"
	"overlaymatch/internal/workload"
)

// TestFaultedBracketValidity sweeps the faulted axis: every
// fault-tolerant contender on every default scenario under a seeded
// healing crash window with the reliable transport stacked
// underneath. Gates: every cell completes, produces a valid matching,
// and LID — whose repair waves resynchronize after the window heals —
// still ends stable (zero blocking pairs) with the full LIC weight on
// the non-adversarial families.
func TestFaultedBracketValidity(t *testing.T) {
	specs := workload.DefaultSuite(40)
	for seed := uint64(1); seed <= 3; seed++ {
		fs := faults.Spec{Crashes: []faults.Crash{
			{Start: 3, End: 25, Node: int(seed % 7)},
			{Start: 10, End: 30, Node: 11 + int(seed%5)},
		}}
		if err := fs.Validate(); err != nil {
			t.Fatal(err)
		}
		opts := Options{
			Seed:       seed,
			Faults:     fs,
			FaultsSeed: seed * 77,
			Reliable:   true,
			RTO:        15,
		}
		results, err := RunBracket(specs, FaultTolerantAlgorithms(), opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, res := range results {
			for _, cell := range res.Cells {
				if cell.WeightFrac < 0 || cell.WeightFrac > 1+1e-9 {
					t.Errorf("seed %d %s/%s: weight frac %v out of range",
						seed, cell.Scenario, cell.Algorithm, cell.WeightFrac)
				}
				if cell.Algorithm == "lid" && !res.Spec.Adversarial() {
					if cell.BlockingPairs != 0 {
						t.Errorf("seed %d %s/lid: %d blocking pairs after heal",
							seed, cell.Scenario, cell.BlockingPairs)
					}
					if cell.WeightFrac != 1 {
						t.Errorf("seed %d %s/lid: weight frac %v != 1",
							seed, cell.Scenario, cell.WeightFrac)
					}
				}
			}
		}
	}
}

// TestGSRefusesFaultedCells pins the contract that Gale–Shapley, whose
// FSM requires per-link FIFO delivery, declines faulted configurations
// with a clear error instead of corrupting its state machine.
func TestGSRefusesFaultedCells(t *testing.T) {
	specs := workload.DefaultSuite(16)[:1]
	inst, err := workload.Build(specs[0], 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = RunCell(inst, GaleShapley{}, Options{Seed: 1, Reliable: true})
	if err == nil {
		t.Fatal("gs accepted a faulted cell")
	}
}
