package tournament

import (
	"encoding/json"
	"fmt"
	"testing"

	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/workload"
)

func buildSuite(t *testing.T, n int, workers int) []*workload.Instance {
	t.Helper()
	var insts []*workload.Instance
	for _, spec := range workload.DefaultSuite(n) {
		inst, err := workload.Build(spec, InstanceSeed(42, spec), workers)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		insts = append(insts, inst)
	}
	return insts
}

// TestLIDCellEquivalence: the LID row of every bracket cell must be
// the very same execution a standalone lid.RunEvent performs — equal
// matching AND equal per-kind message counts, on every scenario
// family. Probing must not perturb the run.
func TestLIDCellEquivalence(t *testing.T) {
	for _, inst := range buildSuite(t, 64, 2) {
		cell, out, err := RunCell(inst, LID{}, Options{Seed: 7, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", inst.Spec, err)
		}
		tbl := satisfaction.NewTable(inst.System)
		ref, err := lid.RunEvent(inst.System, tbl, simnet.Options{Seed: 7})
		if err != nil {
			t.Fatalf("%s standalone: %v", inst.Spec, err)
		}
		if !out.Matching.Equal(ref.Matching) {
			t.Fatalf("%s: bracket LID matching differs from standalone run", inst.Spec)
		}
		if got, want := cell.MsgsByKind["PROP"], ref.PropMessages; got != want {
			t.Fatalf("%s: bracket LID sent %d PROP, standalone %d", inst.Spec, got, want)
		}
		if got, want := cell.MsgsByKind["REJ"], ref.RejMessages; got != want {
			t.Fatalf("%s: bracket LID sent %d REJ, standalone %d", inst.Spec, got, want)
		}
		if cell.WeightFrac != 1 {
			t.Fatalf("%s: LID weight fraction %v, want exactly 1 (LID = LIC)", inst.Spec, cell.WeightFrac)
		}
	}
}

// blockingPairs recomputes the stability measure from scratch — an
// oracle independent of the sampler plumbing the contenders share.
func blockingPairs(t *testing.T, inst *workload.Instance, m *matching.Matching) int {
	t.Helper()
	s := inst.System
	tbl := satisfaction.NewTable(s)
	accepts := func(u, v int) bool {
		conns := m.Connections(u)
		if len(conns) < s.Quota(u) {
			return true
		}
		if s.Quota(u) == 0 {
			return false
		}
		low := tbl.Key(u, conns[0])
		for _, w := range conns[1:] {
			if k := tbl.Key(u, w); low.Heavier(k) {
				low = k
			}
		}
		return tbl.Key(u, v).Heavier(low)
	}
	bp := 0
	for _, e := range s.Graph().Edges() {
		if !m.Has(e.U, e.V) && accepts(e.U, e.V) && accepts(e.V, e.U) {
			bp++
		}
	}
	return bp
}

// TestGSStableOracle: on small random systems across 200 seeds, the
// distributed Gale–Shapley contender must terminate in a matching with
// zero blocking pairs under the shared weight order — and since all
// preference lists follow one total order, the stable matching is
// unique and equals LIC.
func TestGSStableOracle(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		n := 4 + int(seed%9) // 4..12 nodes
		spec := workload.Spec{Family: "master", N: n, B: 1 + int(seed%3), Clique: 0.5}
		inst, err := workload.Build(spec, seed, 1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_, out, err := RunCell(inst, GaleShapley{}, Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d (n=%d): %v", seed, n, err)
		}
		if bp := blockingPairs(t, inst, out.Matching); bp != 0 {
			t.Fatalf("seed %d (n=%d): GS left %d blocking pairs", seed, n, bp)
		}
		tbl := satisfaction.NewTable(inst.System)
		lic := matching.LIC(inst.System, tbl)
		if !out.Matching.Equal(lic) {
			t.Fatalf("seed %d (n=%d): GS matching differs from LIC, the unique stable matching", seed, n)
		}
	}
}

// TestGSMatchesLICOnSuite: the oracle result carries to the full-size
// scenario families — GS converges to the same unique stable matching
// LID locks, just along a different message trajectory.
func TestGSMatchesLICOnSuite(t *testing.T) {
	for _, inst := range buildSuite(t, 64, 2) {
		cell, out, err := RunCell(inst, GaleShapley{}, Options{Seed: 7, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", inst.Spec, err)
		}
		tbl := satisfaction.NewTable(inst.System)
		lic := matching.LIC(inst.System, tbl)
		if !out.Matching.Equal(lic) {
			t.Fatalf("%s: GS matching differs from LIC", inst.Spec)
		}
		if cell.BlockingPairs != 0 {
			t.Fatalf("%s: GS cell reports %d blocking pairs at termination", inst.Spec, cell.BlockingPairs)
		}
	}
}

// TestBPSubsetOfLIC: every edge the one-round heuristic keeps is
// mutually top-quota, hence part of the locally-heaviest matching —
// BP ⊆ LIC on every scenario, so its weight fraction is ≤ 1.
func TestBPSubsetOfLIC(t *testing.T) {
	for _, inst := range buildSuite(t, 64, 2) {
		cell, out, err := RunCell(inst, BackupPlacement{}, Options{Seed: 7, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", inst.Spec, err)
		}
		tbl := satisfaction.NewTable(inst.System)
		lic := matching.LIC(inst.System, tbl)
		for _, e := range out.Matching.Edges() {
			if !lic.Has(e.U, e.V) {
				t.Fatalf("%s: BP kept %v which is not in LIC", inst.Spec, e)
			}
		}
		if cell.WeightFrac > 1 {
			t.Fatalf("%s: BP weight fraction %v > 1", inst.Spec, cell.WeightFrac)
		}
		if got, want := cell.Msgs, int64(cell.MsgsByKind["PROP"]); got != want {
			t.Fatalf("%s: BP cumulative msgs %d, stats say %d", inst.Spec, got, want)
		}
	}
}

// TestBracketDeterminism: the full bracket must be byte-identical
// across worker counts and across repeat runs — the reproducibility
// bar every experiment in this repo meets.
func TestBracketDeterminism(t *testing.T) {
	specs := workload.DefaultSuite(48)
	render := func(workers int) string {
		results, err := RunBracket(specs, DefaultAlgorithms(), Options{Seed: 5, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var cells []Cell
		for _, r := range results {
			cells = append(cells, r.Cells...)
		}
		b, err := json.Marshal(cells)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	base := render(1)
	for _, workers := range []int{2, 8} {
		if got := render(workers); got != base {
			t.Fatalf("bracket output differs between workers=1 and workers=%d", workers)
		}
	}
	if got := render(1); got != base {
		t.Fatal("bracket output differs between repeat runs")
	}
}

// TestBracketScoring: structural guarantees of the ranked tables —
// every scenario ranks all contenders 1..k, LID wins or ties the
// weight fraction on every non-adversarial scenario, and the
// stability/cost columns are populated for every cell.
func TestBracketScoring(t *testing.T) {
	specs := workload.DefaultSuite(48)
	results, err := RunBracket(specs, DefaultAlgorithms(), Options{Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("%d scenario results for %d specs", len(results), len(specs))
	}
	for _, r := range results {
		if len(r.Cells) != 3 {
			t.Fatalf("%s: %d cells, want 3", r.Spec, len(r.Cells))
		}
		var lidCell *Cell
		for i := range r.Cells {
			c := &r.Cells[i]
			if c.Rank != i+1 {
				t.Fatalf("%s: cell %d has rank %d", r.Spec, i, c.Rank)
			}
			if c.Algorithm == "lid" {
				lidCell = c
			}
			if len(c.RoundsToEps) != len(obs.Epsilons) {
				t.Fatalf("%s/%s: rounds-to-eps has %d entries, want %d", r.Spec, c.Algorithm, len(c.RoundsToEps), len(obs.Epsilons))
			}
			for _, eps := range obs.Epsilons {
				if _, ok := c.RoundsToEps[obs.EpsKey(eps)]; !ok {
					t.Fatalf("%s/%s: rounds-to-eps misses key %s", r.Spec, c.Algorithm, obs.EpsKey(eps))
				}
			}
			if c.Msgs <= 0 || c.Bytes <= 0 {
				t.Fatalf("%s/%s: message accounting empty (msgs=%d bytes=%d)", r.Spec, c.Algorithm, c.Msgs, c.Bytes)
			}
			if c.LICWeight <= 0 {
				t.Fatalf("%s/%s: LIC weight %v", r.Spec, c.Algorithm, c.LICWeight)
			}
		}
		if lidCell == nil {
			t.Fatalf("%s: no LID cell", r.Spec)
		}
		for _, c := range r.Cells {
			if !r.Spec.Adversarial() && c.WeightFrac > lidCell.WeightFrac {
				t.Fatalf("%s: %s weight fraction %v beats LID's %v on a non-adversarial scenario",
					r.Spec, c.Algorithm, c.WeightFrac, lidCell.WeightFrac)
			}
		}
	}
}

// TestInstanceSeedStable pins the seed derivation: reordering the
// scenario list must never change any scenario's instance.
func TestInstanceSeedStable(t *testing.T) {
	a := workload.Spec{Family: "swarm", N: 64}
	b := workload.Spec{Family: "geo", N: 64}
	if InstanceSeed(1, a) == InstanceSeed(1, b) {
		t.Fatal("distinct specs derived the same instance seed")
	}
	if InstanceSeed(1, a) != InstanceSeed(1, a) {
		t.Fatal("instance seed not stable")
	}
	if InstanceSeed(1, a) == InstanceSeed(2, a) {
		t.Fatal("master seed ignored by derivation")
	}
}

// TestSamplerMatchesLIDSampler: on a probed LID run, the generic
// sampler fed with the final matching must agree with the cell's final
// probe — same blocking pairs (zero), same matched weight.
func TestSamplerMatchesLIDSampler(t *testing.T) {
	inst, err := workload.Build(workload.Spec{Family: "hetero", N: 64}, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	cell, out, err := RunCell(inst, LID{}, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tbl := satisfaction.NewTable(inst.System)
	sampler := stabilitySampler(inst.System, tbl, out.Matching.Has, nil)
	smp := sampler(0)
	if smp.BlockingPairs != cell.BlockingPairs {
		t.Fatalf("generic sampler found %d blocking pairs, cell %d", smp.BlockingPairs, cell.BlockingPairs)
	}
	if smp.MatchedWeight != cell.MatchedWeight {
		t.Fatalf("generic sampler weight %v, cell %v", smp.MatchedWeight, cell.MatchedWeight)
	}
	if fmt.Sprintf("%.6f", cell.WeightFrac) != "1.000000" {
		t.Fatalf("LID weight fraction %v", cell.WeightFrac)
	}
}
