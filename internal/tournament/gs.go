package tournament

import (
	"fmt"
	"sort"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// GaleShapley is a distributed propose/accept contender in the style
// of deferred acceptance, adapted to the symmetric many-to-many
// setting: every node simultaneously proposes down its weight list
// (the same shared eq.-9 order LID uses) and judges incoming
// proposals against its current holdings.
//
// Four message kinds keep the crossings unambiguous. PROP proposes an
// edge; ACC and REJ are the mandatory immediate answer to a PROP
// (every proposal gets exactly one); DROP abandons the edge from the
// sender's side — cancelling a still-outstanding proposal or breaking
// a tentative engagement, the receiver cannot and need not tell which.
//
// Per neighbor a node tracks one of four states plus a pending-answer
// bit (an ACC/REJ we are still owed for our latest PROP):
//
//	free     may (re-)propose: never talked, or the edge died by our
//	         own decline/drop, so reviving it is our business
//	frozen   the edge died by their decline/drop; only they revive it
//	waiting  our PROP is outstanding — a tentative holding
//	engaged  tentatively matched
//
// The two rules that make the outcome exactly stable under the shared
// order (the oracle test checks it coincides with LIC, the unique
// stable matching when every preference follows one total order):
//
//   - Judging counts outstanding proposals as holdings. A full node
//     facing a heavier proposer evicts its lightest holding (DROP),
//     so a decline always certifies "every slot I hold is heavier
//     than you".
//   - Whoever loses ground rescans: a declined proposal or a broken
//     engagement resets the weight-list cursor to 0, and the rescan
//     re-proposes to free neighbors — including those this node
//     itself declined earlier, whose certificate the loss just
//     invalidated. Frozen edges are left to the other side, whose own
//     rescan revives them; this asymmetry is what keeps mutual
//     re-proposal cycles finite.
//
// Unlike LID, engagements are tentative until the run drains and
// convergence takes multiple waves of proposals — the bracket's
// rounds/messages columns quantify the price. The protocol relies on
// per-link FIFO delivery, so Run pins the unit-latency model
// regardless of options.
type GaleShapley struct{}

// Name implements Algorithm.
func (GaleShapley) Name() string { return "gs" }

type gsMsg uint8

const (
	gsPropMsg gsMsg = iota // propose this edge
	gsAccMsg               // answer: accept your proposal
	gsRejMsg               // answer: decline your proposal
	gsDropMsg              // abandon the edge (cancel or break)
)

// Kind implements simnet.Kinder.
func (m gsMsg) Kind() string {
	switch m {
	case gsPropMsg:
		return "PROP"
	case gsAccMsg:
		return "ACC"
	case gsRejMsg:
		return "REJ"
	default:
		return "DROP"
	}
}

// WireSize implements simnet.Sizer: the same nominal 8-byte frame plus
// 1-byte opcode as LID — the contenders compete on message counts, not
// on framing.
func (m gsMsg) WireSize() int { return 9 }

type gsState uint8

const (
	gsFree gsState = iota
	gsFrozen
	gsWaiting
	gsEngaged
)

// gsNode is the per-peer state machine; it implements simnet.Handler.
// The layout mirrors lid.Node: shared read-only weight list and
// CSR-aligned position table, small per-run state slices.
type gsNode struct {
	id        graph.NodeID
	quota     int
	order     []graph.NodeID
	neighbors []graph.NodeID
	pos       []int32
	state     []gsState
	// pending marks edges whose latest PROP of ours has not been
	// answered yet. waiting implies pending; a pending free edge is a
	// cancelled proposal whose stale answer is still in flight (not
	// proposable until it lands), and a pending engaged/frozen edge
	// went through a proposal crossing.
	pending []bool

	cursor      int // next order index the current scan considers
	outstanding int // edges in gsWaiting
	engaged     int // edges in gsEngaged
}

func newGSNode(s *pref.System, tbl *satisfaction.Table, id graph.NodeID) *gsNode {
	order := tbl.SortedNeighbors(s, id)
	return &gsNode{
		id:        id,
		quota:     s.Quota(id),
		order:     order,
		neighbors: s.Graph().Neighbors(id),
		pos:       tbl.WeightListPos(s, id),
		state:     make([]gsState, len(order)),
		pending:   make([]bool, len(order)),
	}
}

func (n *gsNode) orderPos(v graph.NodeID) (int32, bool) {
	i := sort.SearchInts(n.neighbors, v)
	if i >= len(n.neighbors) || n.neighbors[i] != v {
		return 0, false
	}
	return n.pos[i], true
}

// Init implements simnet.Handler.
func (n *gsNode) Init(ctx simnet.Context) {
	n.proposeMore(ctx)
	n.maybeHalt(ctx)
}

// proposeMore fills the free slots by walking the weight list from the
// cursor: free neighbors without a stale answer in flight are
// (re-)proposed to, holdings are skipped, frozen edges are left to the
// other side.
func (n *gsNode) proposeMore(ctx simnet.Context) {
	for n.outstanding+n.engaged < n.quota && n.cursor < len(n.order) {
		pos := n.cursor
		if n.pending[pos] && n.state[pos] != gsWaiting && n.state[pos] != gsEngaged {
			// A cancelled or broken edge whose stale answer is still
			// in flight: it may become proposable (free) or even
			// engage us (frozen after a crossing break, answered by a
			// fresh ACC) the moment the answer lands — and it is
			// heavier than everything past the cursor. Pause the walk
			// here rather than proposing past it out of weight order;
			// the answer's arrival refills.
			return
		}
		n.cursor++
		if n.state[pos] == gsFree {
			n.state[pos] = gsWaiting
			n.pending[pos] = true
			n.outstanding++
			ctx.Send(n.order[pos], gsPropMsg)
		}
	}
}

// maybeHalt marks the node locally quiescent. Halting is sticky in the
// runner while a later loss can put the node back to work; that is
// fine — the runner only checks that everyone halted once the queue
// drains, and a drained queue means no revival is coming.
func (n *gsNode) maybeHalt(ctx simnet.Context) {
	if n.outstanding == 0 {
		ctx.Halt()
	}
}

// HandleMessage implements simnet.Handler.
func (n *gsNode) HandleMessage(ctx simnet.Context, from int, msg simnet.Message) {
	m, ok := msg.(gsMsg)
	if !ok {
		panic(fmt.Sprintf("tournament: gs node %d received non-GS message %T", n.id, msg))
	}
	pos, known := n.orderPos(from)
	if !known {
		panic(fmt.Sprintf("tournament: gs node %d received message from non-neighbor %d", n.id, from))
	}
	switch m {
	case gsPropMsg:
		n.handleProp(ctx, from, pos)
	case gsAccMsg:
		n.handleAcc(ctx, from, pos)
	case gsRejMsg:
		n.handleRej(ctx, from, pos)
	case gsDropMsg:
		n.handleDrop(ctx, pos)
	}
	n.maybeHalt(ctx)
}

func (n *gsNode) handleProp(ctx simnet.Context, from graph.NodeID, pos int32) {
	switch n.state[pos] {
	case gsWaiting:
		// Crossing proposals: both sides want the edge — accept
		// unconditionally (it already occupies one of our slots).
		// Their answer to our own PROP is still owed.
		n.state[pos] = gsEngaged
		n.outstanding--
		n.engaged++
		ctx.Send(from, gsAccMsg)
	case gsFree, gsFrozen:
		// Fresh proposal, or a revival from either side's rescan:
		// judge it against the current holdings.
		n.decide(ctx, from, pos)
	default:
		// PROP while engaged is impossible: FIFO delivers the breaking
		// DROP before any re-proposal.
		panic(fmt.Sprintf("tournament: gs node %d got PROP from %d in state %d", n.id, from, n.state[pos]))
	}
}

func (n *gsNode) handleAcc(ctx simnet.Context, from graph.NodeID, pos int32) {
	if !n.pending[pos] {
		panic(fmt.Sprintf("tournament: gs node %d got unsolicited ACC from %d", n.id, from))
	}
	n.pending[pos] = false
	switch n.state[pos] {
	case gsWaiting:
		n.state[pos] = gsEngaged
		n.outstanding--
		n.engaged++
	case gsEngaged:
		// Crossing engagement already formed; the answer just settles
		// the books.
	case gsFrozen:
		// They dropped a crossing engagement, then re-accepted our
		// still-unanswered PROP with a fresh decision: engage — evicting
		// the lightest holding (possibly this very edge) if the slots
		// filled while the answer was in flight.
		n.state[pos] = gsEngaged
		n.engaged++
		if n.outstanding+n.engaged > n.quota {
			n.drop(ctx, int32(n.lightestHolding()))
		}
		n.refill(ctx)
	case gsFree:
		// Stale answer to a proposal we cancelled; our DROP is already
		// on the wire and will break their side. The edge just became
		// proposable again.
		n.revive(ctx, pos)
	}
}

func (n *gsNode) handleRej(ctx simnet.Context, from graph.NodeID, pos int32) {
	if !n.pending[pos] {
		panic(fmt.Sprintf("tournament: gs node %d got unsolicited REJ from %d", n.id, from))
	}
	n.pending[pos] = false
	switch n.state[pos] {
	case gsWaiting:
		// They declined our proposal: theirs to revive. We lost a
		// prospective holding, so our earlier decline certificates may
		// no longer hold — rescan.
		n.state[pos] = gsFrozen
		n.outstanding--
		n.rescan(ctx)
	case gsFree:
		// Stale answer to a cancelled proposal; the books are settled,
		// but the edge is proposable again from here on.
		n.revive(ctx, pos)
	case gsFrozen:
		// Stale answer after a crossing break: the edge stays theirs to
		// revive, but its clearance may unpause the walk — refill.
		n.refill(ctx)
	default:
		// REJ on an engaged edge is impossible: a decliner was not
		// waiting on our PROP's arrival, so it had dropped its own
		// proposal first and FIFO delivers that DROP before the REJ.
		panic(fmt.Sprintf("tournament: gs node %d got REJ from %d in state %d", n.id, from, n.state[pos]))
	}
}

func (n *gsNode) handleDrop(ctx simnet.Context, pos int32) {
	if n.state[pos] == gsEngaged {
		// They broke the engagement for a heavier edge: theirs to
		// revive; we lost ground — rescan.
		n.state[pos] = gsFrozen
		n.engaged--
		n.rescan(ctx)
	}
	// Otherwise the DROP crossed our own decline/drop of the same
	// edge: already dead from our side, nothing to settle.
}

// rescan restarts the weight-list walk after a loss: the heaviest free
// neighbors — including ones we declined under a now-invalid
// certificate — get (re-)proposed to.
func (n *gsNode) rescan(ctx simnet.Context) {
	n.cursor = 0
	n.proposeMore(ctx)
}

// refill rescans only when a slot is open — the cheap variant for
// events that make an edge proposable without costing us a holding.
func (n *gsNode) refill(ctx simnet.Context) {
	if n.outstanding+n.engaged < n.quota {
		n.rescan(ctx)
	}
}

// revive handles an edge that just became proposable again (the stale
// answer to a cancelled proposal landed). If the slots filled with
// lighter holdings while the answer was in flight — a crossing PROP can
// be accepted past a paused walk — holding them while this heavier edge
// goes unproposed would freeze a blocking pair in place: evict the
// lightest and rescan so the revived edge is proposed first.
func (n *gsNode) revive(ctx simnet.Context, pos int32) {
	if n.outstanding+n.engaged < n.quota {
		n.rescan(ctx)
		return
	}
	if lp := n.lightestHolding(); lp >= 0 && int(pos) < lp {
		n.drop(ctx, int32(lp))
		n.rescan(ctx)
	}
}

// decide judges an incoming proposal: accept while a slot is free,
// otherwise evict the lightest holding if the proposer is strictly
// heavier, otherwise decline. The weight list is sorted by descending
// weight, so "heavier" is simply a smaller order position.
func (n *gsNode) decide(ctx simnet.Context, from graph.NodeID, pos int32) {
	if n.outstanding+n.engaged < n.quota {
		n.accept(ctx, from, pos)
		return
	}
	if lp := n.lightestHolding(); lp >= 0 && int(pos) < lp {
		n.drop(ctx, int32(lp))
		n.accept(ctx, from, pos)
		return
	}
	// Decline: ours to revive if a loss invalidates this judgment.
	n.state[pos] = gsFree
	ctx.Send(from, gsRejMsg)
}

// drop evicts the holding at order position lp: break the engagement
// or cancel the outstanding proposal. Either way the edge becomes
// free — we abandoned it, so reviving it is our business (a cancelled
// proposal stays unproposable until its stale answer lands).
func (n *gsNode) drop(ctx simnet.Context, lp int32) {
	switch n.state[lp] {
	case gsEngaged:
		n.engaged--
	case gsWaiting:
		n.outstanding--
	default:
		panic(fmt.Sprintf("tournament: gs node %d dropping non-holding at %d", n.id, lp))
	}
	n.state[lp] = gsFree
	ctx.Send(n.order[lp], gsDropMsg)
}

func (n *gsNode) accept(ctx simnet.Context, from graph.NodeID, pos int32) {
	n.state[pos] = gsEngaged
	n.engaged++
	if n.outstanding+n.engaged > n.quota {
		panic(fmt.Sprintf("tournament: gs node %d exceeded quota %d", n.id, n.quota))
	}
	ctx.Send(from, gsAccMsg)
}

// lightestHolding returns the largest order position currently held
// (waiting or engaged), or -1 when nothing is held.
func (n *gsNode) lightestHolding() int {
	for pos := len(n.state) - 1; pos >= 0; pos-- {
		if st := n.state[pos]; st == gsWaiting || st == gsEngaged {
			return pos
		}
	}
	return -1
}

// engagedWith reports whether this node currently holds an engagement
// with v — the sampler's half of the matched predicate.
func (n *gsNode) engagedWith(v graph.NodeID) bool {
	pos, ok := n.orderPos(v)
	return ok && n.state[pos] == gsEngaged
}

// buildGSMatching assembles the matching from the engaged sets,
// verifying engagement symmetry the way lid.BuildMatching verifies
// locks.
func buildGSMatching(nodes []*gsNode) (*matching.Matching, error) {
	m := matching.New(len(nodes))
	for _, nd := range nodes {
		for pos, st := range nd.state {
			if st != gsEngaged {
				continue
			}
			v := nd.order[pos]
			if !nodes[v].engagedWith(nd.id) {
				return nil, fmt.Errorf("tournament: gs asymmetric engagement %d->%d", nd.id, v)
			}
			if nd.id < v {
				m.Add(nd.id, v)
			}
		}
	}
	return m, nil
}

// Run implements Algorithm. The latency model is pinned to unit
// latency: the FSM's crossing rules (stale answers overtaking drops,
// breaks before re-proposals) assume per-link FIFO delivery, which
// the unit-latency event order guarantees. That assumption is also
// why GS declines faulted cells: the reliable transport restores
// exactly-once delivery after a crash window but retransmission can
// reorder a link's frames, and a reordered PROP/ANSWER pair drives
// the FSM into states its crossing rules never anticipate (observed
// as a PROP arriving at an already-engaged position). The faulted
// bracket therefore runs FaultTolerantAlgorithms.
func (GaleShapley) Run(s *pref.System, tbl *satisfaction.Table, opts Options) (Outcome, error) {
	if opts.faulted() {
		return Outcome{}, fmt.Errorf("tournament: gs requires per-link FIFO delivery and cannot run under faults or the reliable transport")
	}
	g := s.Graph()
	nodes := make([]*gsNode, g.NumNodes())
	handlers := make([]simnet.Handler, len(nodes))
	for id := range nodes {
		nodes[id] = newGSNode(s, tbl, id)
		handlers[id] = nodes[id]
	}
	var runner *simnet.Runner
	sampler := stabilitySampler(s, tbl,
		func(u, v graph.NodeID) bool { return nodes[u].engagedWith(v) && nodes[v].engagedWith(u) },
		func() (int64, int64) { return runner.SentTotals() })
	prober := obs.NewProber(opts.Registry, opts.interval(), g.NumEdges(), opts.OptWeight, sampler)
	runner = simnet.NewRunner(g.NumNodes(), simnet.Options{
		Seed:          opts.Seed,
		Probe:         prober.Probe,
		ProbeInterval: opts.interval(),
		// Termination is enforced by the settling argument (the
		// heaviest unsettled edge settles in bounded time); the cap
		// turns a bug into an error instead of a hang.
		MaxDeliveries: 1000*g.NumEdges() + 100_000,
	})
	stats, err := runner.Run(handlers)
	if err != nil {
		return Outcome{Stats: stats, Prober: prober}, err
	}
	prober.PublishSummary(opts.Registry, nil)
	m, err := buildGSMatching(nodes)
	if err != nil {
		return Outcome{Stats: stats, Prober: prober}, err
	}
	return Outcome{Matching: m, Stats: stats, Prober: prober}, nil
}
