package tournament

import (
	"overlaymatch/internal/graph"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
)

// stabilitySampler generalizes lid.StabilitySampler to any contender:
// the protocol exposes only a matched predicate over edges (both
// endpoints consider the connection established) and the sampler
// derives the stability measurements from it, with the exact
// definitions the LID sampler uses so every bracket cell's columns are
// comparable:
//
//   - matched weight sums the eq.-9 weight of matched edges;
//   - a node is unmatched while it has zero matched connections;
//   - {u,v} is a blocking pair if the edge is unmatched and each
//     endpoint would accept the other — free quota, or a strictly
//     heavier WeightKey than the endpoint's lightest matched
//     connection, under the shared eq.-9 weight order.
//
// totals, if non-nil, supplies cumulative (messages, bytes) counters
// (Runner.SentTotals). The sampler only reads protocol state through
// the predicate; its scratch buffers are reused across probes.
func stabilitySampler(s *pref.System, tbl *satisfaction.Table, matched func(u, v graph.NodeID) bool, totals func() (msgs, bytes int64)) func(t float64) obs.StabilitySample {
	g := s.Graph()
	edges := g.Edges()
	deg := make([]int, g.NumNodes())
	lightest := make([]satisfaction.WeightKey, g.NumNodes())
	isMatched := make([]bool, len(edges))
	record := func(u, v graph.NodeID) {
		deg[u]++
		k := tbl.Key(u, v)
		if deg[u] == 1 || lightest[u].Heavier(k) {
			lightest[u] = k
		}
	}
	return func(t float64) obs.StabilitySample {
		var smp obs.StabilitySample
		if totals != nil {
			smp.Msgs, smp.Bytes = totals()
		}
		clear(deg)
		for ei, e := range edges {
			m := matched(e.U, e.V)
			isMatched[ei] = m
			if !m {
				continue
			}
			smp.MatchedWeight += satisfaction.EdgeWeight(s, e)
			record(e.U, e.V)
			record(e.V, e.U)
		}
		for _, d := range deg {
			if d == 0 {
				smp.UnmatchedNodes++
			}
		}
		accepts := func(u, v graph.NodeID) bool {
			q := s.Quota(u)
			if deg[u] < q {
				return true
			}
			if q == 0 {
				return false
			}
			return tbl.Key(u, v).Heavier(lightest[u])
		}
		for ei, e := range edges {
			if isMatched[ei] {
				continue
			}
			if accepts(e.U, e.V) && accepts(e.V, e.U) {
				smp.BlockingPairs++
			}
		}
		return smp
	}
}
