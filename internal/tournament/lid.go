package tournament

import (
	"overlaymatch/internal/lid"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// LID is the paper's Algorithm 1 as a tournament contender: a thin
// adapter over lid.RunEventProbed, so a bracket cell is the very same
// execution a standalone lid.RunEvent with the same seed performs —
// the equivalence the tournament tests pin down to the message counts.
type LID struct{}

// Name implements Algorithm.
func (LID) Name() string { return "lid" }

// Run implements Algorithm.
func (LID) Run(s *pref.System, tbl *satisfaction.Table, opts Options) (Outcome, error) {
	if !opts.faulted() {
		res, prober, err := lid.RunEventProbed(s, tbl, simnet.Options{Seed: opts.Seed}, opts.interval(), opts.Registry)
		return Outcome{Matching: res.Matching, Stats: res.Stats, Prober: prober}, err
	}
	// Faulted cell: the RunEventProbed wiring laid out by hand so the
	// injector slots in as the link policy and the handlers can be
	// wrapped in the reliable transport (a crash window drops every
	// frame in flight; bare LID would wedge on the loss).
	g := s.Graph()
	nodes := lid.NewNodes(s, tbl)
	var runner *simnet.Runner
	sampler := lid.StabilitySampler(s, tbl, nodes, func() (int64, int64) {
		return runner.SentTotals()
	})
	prober := obs.NewProber(opts.Registry, opts.interval(), g.NumEdges(), opts.OptWeight, sampler)
	runner = simnet.NewRunner(g.NumNodes(), simnet.Options{
		Seed:          opts.Seed,
		Policy:        opts.policy(),
		Probe:         prober.Probe,
		ProbeInterval: opts.interval(),
	})
	stats, err := runner.Run(opts.wrapReliable(lid.Handlers(nodes)))
	if err != nil {
		return Outcome{Stats: stats, Prober: prober}, err
	}
	prober.PublishSummary(opts.Registry, nil)
	m, err := lid.BuildMatching(nodes)
	return Outcome{Matching: m, Stats: stats, Prober: prober}, err
}
