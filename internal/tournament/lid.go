package tournament

import (
	"overlaymatch/internal/lid"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// LID is the paper's Algorithm 1 as a tournament contender: a thin
// adapter over lid.RunEventProbed, so a bracket cell is the very same
// execution a standalone lid.RunEvent with the same seed performs —
// the equivalence the tournament tests pin down to the message counts.
type LID struct{}

// Name implements Algorithm.
func (LID) Name() string { return "lid" }

// Run implements Algorithm.
func (LID) Run(s *pref.System, tbl *satisfaction.Table, opts Options) (Outcome, error) {
	res, prober, err := lid.RunEventProbed(s, tbl, simnet.Options{Seed: opts.Seed}, opts.interval(), opts.Registry)
	return Outcome{Matching: res.Matching, Stats: res.Stats, Prober: prober}, err
}
