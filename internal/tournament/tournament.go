// Package tournament pits matching algorithms against each other on
// the production-shaped scenario suite of internal/workload: a
// scenario × algorithm bracket in the spirit of Lebedev–Mathieu et
// al.'s matching-theory analysis of p2p designs. Every cell runs one
// contender on one generated instance under the deterministic event
// simulator and scores it with the stability yardsticks of PR 6's
// telemetry plane:
//
//	weight frac    matched eq.-9 weight / the LIC optimum's weight
//	blocking pairs under the eq.-9 weight order, via obs.Prober
//	rounds-to-ε    first probe time with blocking pairs ≤ ε·|E|
//	msgs / bytes   cumulative network cost at termination
//
// Contenders implement Algorithm; the built-ins are LID (the paper's
// Algorithm 1), a distributed Gale–Shapley-style propose/accept loop
// proposing in the same shared weight order, and a Barenboim–Oren
// one-round backup-placement heuristic (propose to the top-quota
// prefix, keep mutual proposals, stop). Everything is deterministic
// given (Spec, seed) and bit-identical for any worker count.
package tournament

import (
	"fmt"
	"sort"

	"overlaymatch/internal/faults"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/metrics"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/reliable"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/workload"
)

// Options parameterizes one cell run.
type Options struct {
	// Seed drives the simnet schedule (and, through RunBracket, the
	// instance build).
	Seed uint64
	// Workers parallelizes the deterministic builds (preference lists,
	// satisfaction table, LIC); 0 means 1. Output is bit-identical for
	// any value.
	Workers int
	// ProbeInterval is the virtual-time spacing of the stability
	// probes; 0 means 1 (one probe per unit-latency round).
	ProbeInterval float64

	// Faults, when non-zero, is the link-level adversary every cell
	// runs under (crash windows, drops, ...); FaultsSeed seeds the
	// injection stream. Each cell gets its own injector, so the
	// adversary's coin flips are identical across contenders.
	Faults     faults.Spec
	FaultsSeed uint64
	// Reliable wraps each contender's handlers in the ack/retransmit
	// transport — required whenever Faults can lose messages (a
	// healing crash window still drops everything in flight). RTO is
	// the transport's base timeout (0 = 20), with adaptive RFC-6298
	// estimation on top.
	Reliable bool
	RTO      float64

	// Registry and OptWeight are filled by RunCell before handing the
	// options to Algorithm.Run: the per-cell metrics registry the
	// prober records into, and the LIC-optimal weight (the fraction
	// denominator).
	Registry  *metrics.Registry
	OptWeight float64
}

func (o Options) interval() float64 {
	if o.ProbeInterval > 0 {
		return o.ProbeInterval
	}
	return 1
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return 1
}

// policy builds a fresh per-cell fault injector (nil when no faults
// are configured, leaving the zero-spec path byte-identical).
func (o Options) policy() simnet.LinkPolicy {
	if o.Faults.IsZero() {
		return nil
	}
	return faults.NewInjector(o.Faults, o.FaultsSeed)
}

func (o Options) rto() float64 {
	if o.RTO > 0 {
		return o.RTO
	}
	return 20
}

// wrapReliable stacks the ack/retransmit transport under a contender's
// handlers when the options ask for it.
func (o Options) wrapReliable(handlers []simnet.Handler) []simnet.Handler {
	if !o.Reliable {
		return handlers
	}
	eps := reliable.WrapConfig(handlers, reliable.Config{RTO: o.rto(), Adaptive: true})
	return reliable.Handlers(eps)
}

// faulted reports whether this cell deviates from the clean bracket
// configuration.
func (o Options) faulted() bool { return !o.Faults.IsZero() || o.Reliable }

// Outcome is what one contender returns: its matching plus the run's
// accounting.
type Outcome struct {
	Matching *matching.Matching
	Stats    simnet.Stats
	// Prober holds the stability curve the run recorded; RunCell reads
	// the final sample and the rounds-to-ε ladder from it.
	Prober *obs.Prober
}

// Algorithm is one tournament contender. Run executes the contender
// on the instance and must attach a stability prober through
// opts.Registry / opts.interval() so every cell's stability columns
// are populated the same way.
type Algorithm interface {
	Name() string
	Run(s *pref.System, tbl *satisfaction.Table, opts Options) (Outcome, error)
}

// DefaultAlgorithms returns the bracket's standard contenders in
// canonical order: LID, distributed Gale–Shapley, one-round backup
// placement.
func DefaultAlgorithms() []Algorithm {
	return []Algorithm{LID{}, GaleShapley{}, BackupPlacement{}}
}

// FaultTolerantAlgorithms returns the contenders that survive the
// faulted axis: LID (whose replacement waves are idempotent under the
// reliable transport's at-least-once retransmission) and backup
// placement (one round, order-insensitive). Gale–Shapley is excluded —
// its FSM's crossing rules require per-link FIFO delivery, which
// retransmission after a crash window does not preserve.
func FaultTolerantAlgorithms() []Algorithm {
	return []Algorithm{LID{}, BackupPlacement{}}
}

// Cell is one scored (scenario, algorithm) bracket entry.
type Cell struct {
	Scenario  string `json:"scenario"`
	Spec      string `json:"spec"`
	Algorithm string `json:"algorithm"`
	Seed      uint64 `json:"seed"`
	N         int    `json:"n"`
	Edges     int    `json:"edges"`
	Rank      int    `json:"rank"`
	// WeightFrac is MatchedWeight / LICWeight (1 when both are 0).
	WeightFrac    float64 `json:"weight_frac"`
	MatchedWeight float64 `json:"matched_weight"`
	LICWeight     float64 `json:"lic_weight"`
	Matched       int     `json:"matched_edges"`
	BlockingPairs int     `json:"blocking_pairs"`
	Unmatched     int     `json:"unmatched_nodes"`
	// RoundsToEps maps obs.EpsKey(ε) to the first probe time with
	// blocking pairs ≤ ε·|E| (-1 = never), for the obs.Epsilons ladder.
	RoundsToEps map[string]float64 `json:"rounds_to_eps"`
	FinalTime   float64            `json:"final_time"`
	Msgs        int64              `json:"msgs"`
	Bytes       int64              `json:"bytes"`
	MsgsByKind  map[string]int     `json:"msgs_by_kind"`
}

// RunCell executes one contender on one built instance and scores it.
// The returned Outcome carries the raw matching and prober for callers
// that verify beyond the scores (the equivalence guards).
func RunCell(inst *workload.Instance, alg Algorithm, opts Options) (Cell, Outcome, error) {
	sys := inst.System
	g := sys.Graph()
	tbl := satisfaction.NewTableParallel(sys, opts.workers())
	lic := matching.LICParallel(sys, tbl, opts.workers())
	opts.OptWeight = lic.Weight(sys)
	opts.Registry = metrics.New()

	out, err := alg.Run(sys, tbl, opts)
	if err != nil {
		return Cell{}, out, fmt.Errorf("tournament: %s on %s: %w", alg.Name(), inst.Spec, err)
	}
	if err := out.Matching.Validate(sys); err != nil {
		return Cell{}, out, fmt.Errorf("tournament: %s on %s produced an invalid matching: %w", alg.Name(), inst.Spec, err)
	}
	if out.Prober == nil {
		return Cell{}, out, fmt.Errorf("tournament: %s did not attach a stability prober", alg.Name())
	}

	cell := Cell{
		Scenario:      inst.Spec.Family,
		Spec:          inst.Spec.String(),
		Algorithm:     alg.Name(),
		Seed:          opts.Seed,
		N:             g.NumNodes(),
		Edges:         g.NumEdges(),
		MatchedWeight: out.Matching.Weight(sys),
		LICWeight:     opts.OptWeight,
		Matched:       out.Matching.Size(),
		RoundsToEps:   out.Prober.RoundsToEps(nil),
		FinalTime:     out.Stats.FinalTime,
		MsgsByKind:    out.Stats.SentByKind,
	}
	if cell.LICWeight > 0 {
		cell.WeightFrac = cell.MatchedWeight / cell.LICWeight
	} else {
		cell.WeightFrac = 1
	}
	curve := out.Prober.Curve()
	if len(curve) == 0 {
		return Cell{}, out, fmt.Errorf("tournament: %s recorded no probes", alg.Name())
	}
	cell.BlockingPairs = int(curve[len(curve)-1].V)
	reg := opts.Registry
	if pts := reg.Series("probe_unmatched_nodes", "").Points(); len(pts) > 0 {
		cell.Unmatched = int(pts[len(pts)-1].V)
	}
	if pts := reg.Series("probe_msgs_sent", "").Points(); len(pts) > 0 {
		cell.Msgs = int64(pts[len(pts)-1].V)
	}
	if pts := reg.Series("probe_bytes_sent", "").Points(); len(pts) > 0 {
		cell.Bytes = int64(pts[len(pts)-1].V)
	}
	return cell, out, nil
}

// ScenarioResult is one bracket row: the resolved scenario spec and
// its ranked cells (rank 1 first).
type ScenarioResult struct {
	Spec  workload.Spec
	Cells []Cell
}

// RunBracket runs every algorithm on every scenario and ranks each
// scenario's cells: higher weight fraction first, then fewer blocking
// pairs, then fewer messages, then name — a deterministic strict
// order. The instance seed is derived from opts.Seed and the canonical
// spec string, so a bracket cell and a standalone replay of the same
// spec agree.
func RunBracket(specs []workload.Spec, algs []Algorithm, opts Options) ([]ScenarioResult, error) {
	var results []ScenarioResult
	for _, spec := range specs {
		inst, err := workload.Build(spec, InstanceSeed(opts.Seed, spec), opts.workers())
		if err != nil {
			return nil, err
		}
		var cells []Cell
		for _, alg := range algs {
			cell, _, err := RunCell(inst, alg, opts)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
		rankCells(cells)
		results = append(results, ScenarioResult{Spec: inst.Spec, Cells: cells})
	}
	return results, nil
}

// InstanceSeed derives the workload seed of one bracket scenario from
// the master seed and the canonical spec string (FNV-1a), so adding or
// reordering scenarios never reshuffles the others' instances.
func InstanceSeed(seed uint64, spec workload.Spec) uint64 {
	h := uint64(1469598103934665603)
	for _, b := range []byte(spec.String()) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return seed ^ h
}

// rankCells sorts cells into ranked order and stamps Rank 1..k.
func rankCells(cells []Cell) {
	sort.SliceStable(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.WeightFrac != b.WeightFrac {
			return a.WeightFrac > b.WeightFrac
		}
		if a.BlockingPairs != b.BlockingPairs {
			return a.BlockingPairs < b.BlockingPairs
		}
		if a.Msgs != b.Msgs {
			return a.Msgs < b.Msgs
		}
		return a.Algorithm < b.Algorithm
	})
	for i := range cells {
		cells[i].Rank = i + 1
	}
}
