package tournament

import (
	"fmt"
	"sort"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// BackupPlacement is the one-round baseline in the style of Barenboim
// and Oren's backup-placement heuristics: every node proposes to the
// top min(quota, degree) neighbors of its weight list and terminates
// immediately; an edge is kept exactly when both endpoints proposed
// it. One communication round, one message per slot, no negotiation —
// the floor the multi-round contenders must beat.
//
// Every kept edge is mutually top-quota, hence locally heaviest, so
// the result is always a subset of LIC: its weight fraction is ≤ 1
// with equality only when mutual proposals alone realize the whole
// optimum. The blocking pairs it leaves behind are the price of
// refusing the replacement waves.
type BackupPlacement struct{}

// Name implements Algorithm.
func (BackupPlacement) Name() string { return "bp" }

// bpMsg is the single wire message: a proposal, sized like the other
// contenders' frames.
type bpMsg struct{}

// Kind implements simnet.Kinder.
func (bpMsg) Kind() string { return "PROP" }

// WireSize implements simnet.Sizer.
func (bpMsg) WireSize() int { return 9 }

// bpNode implements simnet.Handler: propose and stop, then record who
// proposed back (deliveries keep flowing after Halt).
type bpNode struct {
	id        graph.NodeID
	quota     int
	order     []graph.NodeID
	neighbors []graph.NodeID
	pos       []int32
	proposed  []bool
	received  []bool
}

func newBPNode(s *pref.System, tbl *satisfaction.Table, id graph.NodeID) *bpNode {
	order := tbl.SortedNeighbors(s, id)
	return &bpNode{
		id:        id,
		quota:     s.Quota(id),
		order:     order,
		neighbors: s.Graph().Neighbors(id),
		pos:       tbl.WeightListPos(s, id),
		proposed:  make([]bool, len(order)),
		received:  make([]bool, len(order)),
	}
}

func (n *bpNode) orderPos(v graph.NodeID) (int32, bool) {
	i := sort.SearchInts(n.neighbors, v)
	if i >= len(n.neighbors) || n.neighbors[i] != v {
		return 0, false
	}
	return n.pos[i], true
}

// Init implements simnet.Handler: the whole algorithm.
func (n *bpNode) Init(ctx simnet.Context) {
	top := min(n.quota, len(n.order))
	for pos := 0; pos < top; pos++ {
		n.proposed[pos] = true
		ctx.Send(n.order[pos], bpMsg{})
	}
	ctx.Halt()
}

// HandleMessage implements simnet.Handler: bookkeeping only.
func (n *bpNode) HandleMessage(_ simnet.Context, from int, msg simnet.Message) {
	if _, ok := msg.(bpMsg); !ok {
		panic(fmt.Sprintf("tournament: bp node %d received non-BP message %T", n.id, msg))
	}
	pos, known := n.orderPos(from)
	if !known {
		panic(fmt.Sprintf("tournament: bp node %d received message from non-neighbor %d", n.id, from))
	}
	n.received[pos] = true
}

// linked reports whether this node proposed to v and heard v's
// proposal back — its half of the matched predicate. Mid-run the
// received bit may lag the sender's proposal, so the sampler sees the
// matched set grow as the round's messages land.
func (n *bpNode) linked(v graph.NodeID) bool {
	pos, ok := n.orderPos(v)
	return ok && n.proposed[pos] && n.received[pos]
}

// Run implements Algorithm.
func (BackupPlacement) Run(s *pref.System, tbl *satisfaction.Table, opts Options) (Outcome, error) {
	g := s.Graph()
	nodes := make([]*bpNode, g.NumNodes())
	handlers := make([]simnet.Handler, len(nodes))
	for id := range nodes {
		nodes[id] = newBPNode(s, tbl, id)
		handlers[id] = nodes[id]
	}
	matched := func(u, v graph.NodeID) bool { return nodes[u].linked(v) && nodes[v].linked(u) }
	var runner *simnet.Runner
	sampler := stabilitySampler(s, tbl, matched,
		func() (int64, int64) { return runner.SentTotals() })
	prober := obs.NewProber(opts.Registry, opts.interval(), g.NumEdges(), opts.OptWeight, sampler)
	runner = simnet.NewRunner(g.NumNodes(), simnet.Options{
		Seed:          opts.Seed,
		Policy:        opts.policy(),
		Probe:         prober.Probe,
		ProbeInterval: opts.interval(),
	})
	// One round has no replacement waves to resynchronize, so the
	// reliable wrap simply re-delivers proposals a crash window ate —
	// the mutual-proposal rule is unaffected by reordering.
	stats, err := runner.Run(opts.wrapReliable(handlers))
	if err != nil {
		return Outcome{Stats: stats, Prober: prober}, err
	}
	prober.PublishSummary(opts.Registry, nil)
	m := matching.New(len(nodes))
	for _, e := range g.Edges() {
		if matched(e.U, e.V) {
			m.Add(e.U, e.V)
		}
	}
	return Outcome{Matching: m, Stats: stats, Prober: prober}, nil
}
