package robust

import (
	"fmt"
	"sort"

	"overlaymatch/internal/detector"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/metrics"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// AdversaryKind selects a behavior for Scenario.
type AdversaryKind int

const (
	// AdvCrash is silent from the start.
	AdvCrash AdversaryKind = iota
	// AdvCrashAfter participates correctly for a few deliveries, then
	// fails silently.
	AdvCrashAfter
	// AdvSpammer floods PROP+REJ pairs.
	AdvSpammer
)

func (k AdversaryKind) String() string {
	switch k {
	case AdvCrash:
		return "crash"
	case AdvCrashAfter:
		return "crash-after"
	case AdvSpammer:
		return "spammer"
	}
	return fmt.Sprintf("AdversaryKind(%d)", int(k))
}

// Scenario describes one adversarial run.
type Scenario struct {
	System      *pref.System
	Adversaries map[graph.NodeID]AdversaryKind
	Timeout     float64 // proposal timeout for honest nodes
	// AdaptivePhi, when positive, gives every honest node a per-node
	// phi-accrual estimator over proposal response times
	// (TolerantNode.SetAdaptiveTimeout); Timeout stays the hard ceiling.
	AdaptivePhi float64
	CrashAfterK int // K for AdvCrashAfter (default 5)
	Options     simnet.Options
}

// Outcome reports the result of a Scenario run.
type Outcome struct {
	// HonestMatching contains only honest–honest connections.
	HonestMatching *matching.Matching
	// DeadLocks counts honest connections whose peer was adversarial
	// (e.g. locked right before a crash) — wasted quota slots.
	DeadLocks int
	// HonestSatisfaction is Σ Si over honest nodes, counting only
	// honest–honest connections.
	HonestSatisfaction float64
	// BaselineSatisfaction is the total satisfaction LIC achieves on
	// the honest-induced subgraph — the adversary-free yardstick.
	BaselineSatisfaction float64
	// Revocations, DissolvedLocks and Violations aggregate the
	// tolerant nodes' counters.
	Revocations    int
	DissolvedLocks int
	Violations     int
	// AdaptiveArms counts proposal timers armed from the response-time
	// estimator instead of the static timeout (zero unless AdaptivePhi
	// is set).
	AdaptiveArms int
	Stats        simnet.Stats
}

// Run executes the scenario on the event simulator.
func (sc Scenario) Run() (Outcome, error) {
	s := sc.System
	g := s.Graph()
	tbl := satisfaction.NewTable(s)
	k := sc.CrashAfterK
	if k == 0 {
		k = 5
	}

	handlers := make([]simnet.Handler, g.NumNodes())
	honest := make(map[graph.NodeID]*TolerantNode)
	for id := 0; id < g.NumNodes(); id++ {
		kind, isAdv := sc.Adversaries[id]
		if !isAdv {
			n := NewTolerantNode(s, tbl, id, sc.Timeout)
			if sc.AdaptivePhi > 0 {
				d := detector.Default()
				n.SetAdaptiveTimeout(detector.NewEstimator(d.Window, d.Floor), sc.AdaptivePhi)
			}
			honest[id] = n
			handlers[id] = n
			continue
		}
		switch kind {
		case AdvCrash:
			handlers[id] = Crash{}
		case AdvCrashAfter:
			handlers[id] = &CrashAfter{Inner: NewTolerantNode(s, tbl, id, sc.Timeout), K: k}
		case AdvSpammer:
			handlers[id] = Spammer{Neighbors: g.Neighbors(id)}
		default:
			return Outcome{}, fmt.Errorf("robust: unknown adversary kind %v", kind)
		}
	}

	runner := simnet.NewRunner(g.NumNodes(), sc.Options)
	stats, err := runner.Run(handlers)
	if err != nil {
		return Outcome{Stats: stats}, err
	}

	out := Outcome{Stats: stats}
	m := matching.New(g.NumNodes())
	for id, n := range honest {
		for _, v := range n.Locked() {
			if _, adv := sc.Adversaries[v]; adv {
				out.DeadLocks++
				continue
			}
			if id < v {
				m.Add(id, v)
			}
		}
		out.Revocations += n.Revocations
		out.DissolvedLocks += n.DissolvedLocks
		out.Violations += n.Violations
		out.AdaptiveArms += n.AdaptiveArms
	}
	// Honest–honest locks must be symmetric.
	for id, n := range honest {
		cnt := 0
		for _, v := range n.Locked() {
			if _, adv := sc.Adversaries[v]; !adv {
				cnt++
				if !m.Has(id, v) {
					return out, fmt.Errorf("robust: asymmetric honest lock %d-%d", id, v)
				}
			}
		}
		if cnt != m.DegreeOf(id) {
			return out, fmt.Errorf("robust: node %d lock count mismatch", id)
		}
	}
	out.HonestMatching = m

	for id := range honest {
		var conns []graph.NodeID
		for _, v := range m.Connections(id) {
			conns = append(conns, v)
		}
		out.HonestSatisfaction += satisfaction.Value(s, id, conns)
	}

	base, err := honestBaseline(s, sc.Adversaries)
	if err != nil {
		return out, err
	}
	out.BaselineSatisfaction = base
	out.publish(sc.Options.Metrics)
	return out, nil
}

// publish adds the outcome's tolerance counters to the run's metrics
// sink (the same registry the simnet instruments merged into). The
// Outcome fields remain the exact per-run view; the registry
// aggregates across scenario runs. Nil-safe.
func (out *Outcome) publish(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("robust_runs_total", "completed adversarial scenario runs").Inc()
	reg.Counter("robust_violations_total", "protocol violations detected by honest nodes").
		Add(int64(out.Violations))
	reg.Counter("robust_revocations_total", "timed-out proposals revoked").
		Add(int64(out.Revocations))
	reg.Counter("robust_dissolved_locks_total", "locks dissolved after peer failure").
		Add(int64(out.DissolvedLocks))
	reg.Counter("robust_dead_locks_total", "honest locks wasted on adversarial peers").
		Add(int64(out.DeadLocks))
	reg.Counter("robust_honest_locked_edges_total", "honest-honest connections locked").
		Add(int64(out.HonestMatching.Size()))
}

// honestBaseline computes the total satisfaction of LIC on the
// honest-induced subgraph, evaluated with the original (full) lists so
// it is comparable to HonestSatisfaction.
func honestBaseline(s *pref.System, adversaries map[graph.NodeID]AdversaryKind) (float64, error) {
	g := s.Graph()
	var keep []graph.NodeID
	for id := 0; id < g.NumNodes(); id++ {
		if _, adv := adversaries[id]; !adv {
			keep = append(keep, id)
		}
	}
	sort.Ints(keep)
	sub, back, err := g.Subgraph(keep)
	if err != nil {
		return 0, err
	}
	fwd := make(map[graph.NodeID]int, len(back))
	for newID, oldID := range back {
		fwd[oldID] = newID
	}
	lists := make([][]graph.NodeID, sub.NumNodes())
	quotas := make([]int, sub.NumNodes())
	for newID, oldID := range back {
		for _, j := range s.List(oldID) {
			if nj, ok := fwd[j]; ok {
				lists[newID] = append(lists[newID], nj)
			}
		}
		quotas[newID] = s.Quota(oldID)
	}
	s2, err := pref.FromRanks(sub, lists, quotas)
	if err != nil {
		return 0, err
	}
	m := matching.LIC(s2, satisfaction.NewTable(s2))
	// Evaluate against the ORIGINAL ranks/list lengths for an
	// apples-to-apples comparison with HonestSatisfaction.
	var total float64
	for newID, oldID := range back {
		var conns []graph.NodeID
		for _, v := range m.Connections(newID) {
			conns = append(conns, back[v])
		}
		total += satisfaction.Value(s, oldID, conns)
	}
	return total, nil
}

// FractionAdversaries picks roughly frac·n adversary IDs of the given
// kind deterministically (every ceil(1/frac)-th node), a convenient
// scenario builder for sweeps.
func FractionAdversaries(n int, frac float64, kind AdversaryKind) map[graph.NodeID]AdversaryKind {
	out := make(map[graph.NodeID]AdversaryKind)
	if frac <= 0 || n == 0 {
		return out
	}
	step := int(1 / frac)
	if step < 1 {
		step = 1
	}
	for id := step - 1; id < n; id += step {
		out[id] = kind
	}
	return out
}
