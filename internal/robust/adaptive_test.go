package robust

import (
	"testing"
	"time"

	"overlaymatch/internal/detector"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/reliable"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// TestAdaptiveTimeoutTightens exercises the arming rule directly: with
// no estimator or too few samples the static timeout rules; once the
// window holds samples the phi threshold takes over, and the static
// timeout stays a hard ceiling.
func TestAdaptiveTimeoutTightens(t *testing.T) {
	s := randomSystem(t, 1, 8, 0.6, 2)
	tbl := satisfaction.NewTable(s)
	n := NewTolerantNode(s, tbl, 0, 1000)

	if got := n.proposalTimeout(); got != 1000 {
		t.Fatalf("nil estimator: timeout %v, want static 1000", got)
	}

	est := detector.NewEstimator(64, 0.5)
	n.SetAdaptiveTimeout(est, 8)
	if got := n.proposalTimeout(); got != 1000 {
		t.Fatalf("empty estimator: timeout %v, want static 1000", got)
	}
	for i := 0; i < adaptiveMinSamples-1; i++ {
		est.Observe(3)
	}
	if got := n.proposalTimeout(); got != 1000 {
		t.Fatalf("below min samples: timeout %v, want static 1000", got)
	}
	est.Observe(3)
	got := n.proposalTimeout()
	if got >= 1000 {
		t.Fatalf("armed estimator with tight samples: timeout %v did not tighten below 1000", got)
	}
	if got <= 3 {
		t.Fatalf("adaptive timeout %v at or below the observed response time 3", got)
	}
	if n.AdaptiveArms != 1 {
		t.Fatalf("AdaptiveArms = %d, want 1", n.AdaptiveArms)
	}

	// A huge threshold must be clamped by the static ceiling.
	loose := NewTolerantNode(s, tbl, 0, 5)
	lest := detector.NewEstimator(64, 0.5)
	loose.SetAdaptiveTimeout(lest, 8)
	for i := 0; i < adaptiveMinSamples; i++ {
		lest.Observe(100)
	}
	if got := loose.proposalTimeout(); got != 5 {
		t.Fatalf("static ceiling breached: timeout %v, want 5", got)
	}
	if loose.AdaptiveArms != 0 {
		t.Fatalf("ceiling-clamped arm counted as adaptive: %d", loose.AdaptiveArms)
	}
}

// TestAdaptiveHonestMostlyEqualsLIC pins the good-case semantics of
// the adaptive path: honest peers, event runtime, a generous phi. The
// response time of a proposal is not bounded by the latency tail — an
// honest peer may hold a PROP in the approached state until its own
// quota resolves much later — so the estimator can occasionally revoke
// an honest proposal. The contract is therefore exactly the package
// doc's: spurious revocations cost connections, never consistency.
// Per seed the run must stay violation-free and structurally valid,
// and whenever no revocation fired the outcome must equal LIC; across
// the (deterministic) seed sweep most runs must be revocation-free and
// the estimator must visibly take over the timers. The workload is
// dense (b=4) so nodes keep proposing after the sample gate opens.
func TestAdaptiveHonestMostlyEqualsLIC(t *testing.T) {
	clean, arms := 0, 0
	const seeds = 10
	for seed := uint64(0); seed < seeds; seed++ {
		s := randomSystem(t, seed, 30, 0.5, 4)
		sc := Scenario{
			System:      s,
			Timeout:     1e7,
			AdaptivePhi: 12, // generous: honest tails rarely trip it
			Options:     simnet.Options{Seed: seed, Latency: simnet.UniformLatency(1, 3)},
		}
		out, err := sc.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Violations != 0 {
			t.Fatalf("seed %d: honest-only run counted %d violations", seed, out.Violations)
		}
		if err := out.HonestMatching.Validate(s); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Revocations == 0 && out.DissolvedLocks == 0 {
			clean++
			want := matching.LIC(s, satisfaction.NewTable(s))
			if !out.HonestMatching.Equal(want) {
				t.Fatalf("seed %d: revocation-free adaptive outcome differs from LIC", seed)
			}
		}
		arms += out.AdaptiveArms
	}
	if clean < seeds-2 {
		t.Fatalf("only %d/%d seeds revocation-free; adaptive timers fire far too eagerly", clean, seeds)
	}
	if arms == 0 {
		t.Fatal("estimator never armed a timer across the sweep")
	}
}

// TestAdaptiveAbsorbsCrashes: the adaptive timers must keep the
// crash-adversary guarantees — termination, symmetry, and revocations
// actually firing for dead peers — while typically detecting the dead
// peers faster than the static ceiling would.
func TestAdaptiveAbsorbsCrashes(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		s := randomSystem(t, seed, 30, 0.3, 2)
		sc := Scenario{
			System:      s,
			Adversaries: FractionAdversaries(30, 0.2, AdvCrash),
			Timeout:     200,
			AdaptivePhi: 10,
			Options:     simnet.Options{Seed: seed, Latency: simnet.UniformLatency(1, 3)},
		}
		out, err := sc.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Revocations == 0 {
			t.Fatalf("seed %d: crashes present but nothing revoked", seed)
		}
		if err := out.HonestMatching.Validate(s); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestAdaptiveStaysStaticOnGoRunner: the goroutine runtime reports
// virtual time 0, so the estimator never collects a sample and the
// node must quietly stay on the static timeout — same termination,
// zero adaptive arms.
func TestAdaptiveStaysStaticOnGoRunner(t *testing.T) {
	s := randomSystem(t, 7, 16, 0.4, 2)
	tbl := satisfaction.NewTable(s)
	n := s.Graph().NumNodes()
	handlers := make([]simnet.Handler, n)
	nodes := make([]*TolerantNode, n)
	for id := 0; id < n; id++ {
		tn := NewTolerantNode(s, tbl, id, 400)
		tn.SetAdaptiveTimeout(detector.NewEstimator(64, 0.5), 8)
		nodes[id] = tn
		handlers[id] = tn
	}
	eps := reliable.Wrap(handlers, 20, 0)
	runner := simnet.NewGoRunner(n, 60*time.Second)
	if _, err := runner.Run(reliable.Handlers(eps)); err != nil {
		t.Fatalf("goroutine runtime with adaptive nodes did not terminate: %v", err)
	}
	for id, tn := range nodes {
		if tn.AdaptiveArms != 0 {
			t.Fatalf("node %d armed %d adaptive timers under wall-clock-less runtime", id, tn.AdaptiveArms)
		}
	}
}

// TestSetAdaptiveTimeoutValidation: a non-positive phi is a programming
// error, caught loudly.
func TestSetAdaptiveTimeoutValidation(t *testing.T) {
	s := randomSystem(t, 1, 6, 0.6, 1)
	tbl := satisfaction.NewTable(s)
	n := NewTolerantNode(s, tbl, 0, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("phi <= 0 did not panic")
		}
	}()
	n.SetAdaptiveTimeout(detector.NewEstimator(64, 0.5), 0)
}
