package robust

import (
	"testing"
	"testing/quick"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

func randomSystem(tb testing.TB, seed uint64, n int, p float64, b int) *pref.System {
	tb.Helper()
	src := rng.New(seed)
	g := gen.GNP(src, n, p)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(b))
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// TestHonestOnlyEqualsLIC: with no adversaries and a timeout beyond
// the latency tail, the tolerant protocol must coincide with plain
// LID/LIC exactly — hardening costs nothing in the good case.
func TestHonestOnlyEqualsLIC(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		s := randomSystem(t, seed, int(nRaw)%15+5, 0.4, 2)
		sc := Scenario{
			System:  s,
			Timeout: 1e7, // effectively never fires before quiescence
			Options: simnet.Options{Seed: seed, Latency: simnet.ExponentialLatency(3)},
		}
		out, err := sc.Run()
		if err != nil {
			return false
		}
		if out.Revocations != 0 || out.DissolvedLocks != 0 || out.Violations != 0 {
			return false
		}
		want := matching.LIC(s, satisfaction.NewTable(s))
		return out.HonestMatching.Equal(want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPlainLIDDeadlocksOnCrash documents the motivation: strict LID
// with a silent peer never terminates (the runner reports it).
func TestPlainLIDDeadlocksOnCrash(t *testing.T) {
	s := randomSystem(t, 3, 10, 0.6, 2)
	tbl := satisfaction.NewTable(s)
	nodes := lid.NewNodes(s, tbl)
	handlers := lid.Handlers(nodes)
	handlers[0] = Crash{} // replace one peer with a silent adversary
	runner := simnet.NewRunner(s.Graph().NumNodes(), simnet.Options{Seed: 1})
	_, err := runner.Run(handlers)
	if err == nil {
		t.Fatal("plain LID with a crashed peer should fail to quiesce")
	}
}

// TestCrashAdversariesAbsorbed: tolerant nodes terminate, stay
// symmetric and keep a solid fraction of the adversary-free
// satisfaction when 20% of peers are dead.
func TestCrashAdversariesAbsorbed(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		s := randomSystem(t, seed, 30, 0.3, 2)
		sc := Scenario{
			System:      s,
			Adversaries: FractionAdversaries(30, 0.2, AdvCrash),
			Timeout:     50,
			Options:     simnet.Options{Seed: seed, Latency: simnet.UniformLatency(1, 3)},
		}
		out, err := sc.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Revocations == 0 {
			t.Fatalf("seed %d: crashes present but nothing revoked", seed)
		}
		if out.BaselineSatisfaction > 0 {
			ratio := out.HonestSatisfaction / out.BaselineSatisfaction
			if ratio < 0.5 {
				t.Fatalf("seed %d: honest satisfaction ratio %v under 0.5", seed, ratio)
			}
		}
		if err := out.HonestMatching.Validate(s); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestSpammerAbsorbed: flood adversaries cause dissolutions but never
// break symmetry, feasibility, or termination.
func TestSpammerAbsorbed(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		s := randomSystem(t, seed, 25, 0.35, 2)
		sc := Scenario{
			System:      s,
			Adversaries: FractionAdversaries(25, 0.15, AdvSpammer),
			Timeout:     50,
			Options:     simnet.Options{Seed: seed, Latency: simnet.UniformLatency(1, 3)},
		}
		out, err := sc.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := out.HonestMatching.Validate(s); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestCrashAfterAbsorbed: mid-protocol failures (including right after
// locking) leave dead locks but honest-honest state stays consistent.
func TestCrashAfterAbsorbed(t *testing.T) {
	deadLocksSeen := 0
	for seed := uint64(0); seed < 25; seed++ {
		s := randomSystem(t, seed, 25, 0.4, 2)
		sc := Scenario{
			System:      s,
			Adversaries: FractionAdversaries(25, 0.2, AdvCrashAfter),
			Timeout:     50,
			CrashAfterK: 2,
			Options:     simnet.Options{Seed: seed, Latency: simnet.UniformLatency(1, 3)},
		}
		out, err := sc.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		deadLocksSeen += out.DeadLocks
		if err := out.HonestMatching.Validate(s); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if deadLocksSeen == 0 {
		t.Log("note: no dead locks occurred across seeds (crash windows missed all locks)")
	}
}

// TestAggressiveTimeoutsStayConsistent: a timeout far below honest
// answer delays causes heavy revocation, yet the outcome must remain
// symmetric and feasible (consistency never depends on timing).
func TestAggressiveTimeoutsStayConsistent(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		s := randomSystem(t, seed, 20, 0.5, 2)
		sc := Scenario{
			System:  s,
			Timeout: 1.5, // below typical answer latency
			Options: simnet.Options{Seed: seed, Latency: simnet.UniformLatency(1, 4)},
		}
		out, err := sc.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := out.HonestMatching.Validate(s); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestFractionAdversaries(t *testing.T) {
	advs := FractionAdversaries(100, 0.25, AdvCrash)
	if len(advs) != 25 {
		t.Fatalf("got %d adversaries, want 25", len(advs))
	}
	if len(FractionAdversaries(100, 0, AdvCrash)) != 0 {
		t.Fatal("frac=0 should give none")
	}
	if AdvCrash.String() != "crash" || AdvSpammer.String() != "spammer" || AdvCrashAfter.String() != "crash-after" {
		t.Fatal("kind names wrong")
	}
}

func TestTolerantNodeValidation(t *testing.T) {
	s := randomSystem(t, 1, 5, 1.0, 1)
	tbl := satisfaction.NewTable(s)
	defer func() {
		if recover() == nil {
			t.Fatal("zero timeout should panic")
		}
	}()
	NewTolerantNode(s, tbl, 0, 0)
}

// TestViolationCountingNotPanicking: garbage messages increment the
// violation counter instead of crashing the node.
func TestViolationCounting(t *testing.T) {
	s := randomSystem(t, 2, 4, 1.0, 1)
	tbl := satisfaction.NewTable(s)
	n := NewTolerantNode(s, tbl, 0, 100)
	ctx := discardCtx{}
	n.Init(ctx)
	n.HandleMessage(ctx, 1, "garbage")
	n.HandleMessage(ctx, 99, lid.Msg{IsProp: true}) // non-neighbor
	if n.Violations != 2 {
		t.Fatalf("violations = %d, want 2", n.Violations)
	}
}

// discardCtx supports timers (no-op) for direct state machine pokes.
type discardCtx struct{}

func (discardCtx) ID() int                          { return 0 }
func (discardCtx) Send(int, simnet.Message)         {}
func (discardCtx) Halt()                            {}
func (discardCtx) Time() float64                    { return 0 }
func (discardCtx) SetTimer(float64, simnet.Message) {}

func TestCrashAfterZeroKActsLikeCrash(t *testing.T) {
	// K <= 0 means the peer never participates at all; the scenario
	// must behave exactly like AdvCrash.
	s := randomSystem(t, 61, 15, 0.5, 2)
	sc := Scenario{
		System:      s,
		Adversaries: map[graph.NodeID]AdversaryKind{0: AdvCrashAfter},
		Timeout:     40,
		CrashAfterK: -1,
		Options:     simnet.Options{Seed: 2, Latency: simnet.UniformLatency(1, 2)},
	}
	out, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.HonestMatching.DegreeOf(0) != 0 {
		t.Fatal("crashed-at-zero peer got matched")
	}
}
